// Package hyperprof reproduces "Profiling Hyperscale Big Data Processing"
// (Gonzalez et al., ISCA 2023) as a runnable Go system: deterministic
// simulations of Spanner-, BigTable- and BigQuery-like platforms with
// Dapper-style tracing and GWP-style fleet profiling, the paper's analytical
// "sea of accelerators" model (Equations 1–12), the limit studies of §6, and
// the chained protobuf+SHA3 SoC validation of Table 8.
//
// This package is the public facade: it re-exports the library's primary
// entry points so downstream users never import internal packages.
//
//   - Characterize runs the three platform simulations under calibrated
//     workloads and yields every §3–§5 table and figure (Table 1, Figures
//     2–6, Tables 6–7).
//   - System / Component is the analytical model; DeriveSystem extracts a
//     model instance from a characterization.
//   - Figure9..Figure15 run the §6 limit studies.
//   - ValidateChainedModel reproduces the Table 8 experiment.
package hyperprof

import (
	"hyperprof/internal/experiments"
	"hyperprof/internal/faults"
	"hyperprof/internal/model"
	"hyperprof/internal/obs"
	"hyperprof/internal/profile"
	"hyperprof/internal/soc"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
	"hyperprof/internal/workload"
)

// Unified Study API. StudyConfig is the shared core every study runs from:
// construct one with a Default*StudyConfig helper, adjust the grouped knobs
// (Ops, Faults, Check, Obs, Load, Part, Pipe, Shape), and call the study's
// method entry point — Characterize, Safety, Resilience, Observe, Overload,
// Partition, FleetScale or Pipeline. It is the only way in: the legacy
// per-study config types and Run* wrappers have been deleted.
type (
	// StudyConfig is the unified study configuration.
	StudyConfig = experiments.StudyConfig
	// PlatformOps is the per-platform operation budget.
	PlatformOps = experiments.PlatformOps
	// FaultConfig groups the fault-injection rates.
	FaultConfig = experiments.FaultConfig
	// CheckConfig sizes the safety checker sweep.
	CheckConfig = experiments.CheckConfig
	// ObsConfig switches on the observability plane and sizes its sampling.
	ObsConfig = experiments.ObsConfig
	// PartitionConfig sizes the partition study's nemesis: partition and
	// gray-link rates, clock skew bounds and the uncertainty bound eps.
	PartitionConfig = experiments.PartitionConfig
	// LoadConfig sizes the overload study: open-loop offered load, the
	// retry-storm trigger, and the protected arm's control-plane knobs.
	LoadConfig = experiments.LoadConfig
	// ExecConfig sizes the exec backend's worker process pool.
	ExecConfig = experiments.ExecConfig
	// PipelineConfig sizes the cross-platform pipeline study.
	PipelineConfig = experiments.PipelineConfig
	// ArrivalShape modulates open-loop arrivals (bursts, diurnal swing).
	ArrivalShape = workload.ArrivalShape
)

// Execution backends. StudyConfig.Backend selects where a study's
// independent arms compute — never what they compute: exported bytes are
// identical across all backends (and across the legacy default, the
// in-process pool without serialization, selected by the empty string).
const (
	// BackendPool runs serialized work units on the in-process goroutine pool.
	BackendPool = experiments.BackendPool
	// BackendExec fans work units across hyperprof -worker subprocesses,
	// keeping the coordinator's memory flat on large sweeps and isolating
	// arm crashes.
	BackendExec = experiments.BackendExec
)

// ServeStudyWorker runs the worker half of the exec backend protocol on the
// given streams until EOF. cmd/hyperprof serves this under -worker; a
// custom driver binary embedding this package can do the same.
var ServeStudyWorker = experiments.ServeWorker

// Default study configurations, one per entry point.
var (
	// DefaultCharStudyConfig sizes the characterization study.
	DefaultCharStudyConfig = experiments.DefaultCharStudyConfig
	// DefaultSafetyStudyConfig sizes the safety torture study.
	DefaultSafetyStudyConfig = experiments.DefaultSafetyStudyConfig
	// DefaultResilienceStudyConfig sizes the resilience study.
	DefaultResilienceStudyConfig = experiments.DefaultResilienceStudyConfig
	// DefaultObsStudyConfig sizes the observability study.
	DefaultObsStudyConfig = experiments.DefaultObsStudyConfig
	// DefaultOverloadStudyConfig sizes the overload study.
	DefaultOverloadStudyConfig = experiments.DefaultOverloadStudyConfig
	// DefaultPartitionStudyConfig sizes the partition nemesis study.
	DefaultPartitionStudyConfig = experiments.DefaultPartitionStudyConfig
	// DefaultFleetStudyConfig sizes the fleet-scale characterization:
	// 2000 servers, one million logical users, sketch-mode recording.
	DefaultFleetStudyConfig = experiments.DefaultFleetStudyConfig
	// DefaultPipelineStudyConfig sizes the cross-platform pipeline study.
	DefaultPipelineStudyConfig = experiments.DefaultPipelineStudyConfig
)

// Pipeline study: one simulation chains BigTable ingest into a BigQuery
// iterative PageRank over the shuffle plane into Spanner serving, with every
// logical record carrying one trace ID across the stage boundaries and an
// exactly-once handoff invariant checked at the BigQuery→Spanner boundary.
type (
	// PipelineStudy is the full pipeline study result.
	PipelineStudy = experiments.Pipeline
	// PipelineRow is one (arm, seed) pipeline measurement.
	PipelineRow = experiments.PipelineRow
)

// Pipeline runs the cross-platform pipeline study. Equal configs replay
// bit-identically; the JSON and Chrome exports are byte-identical between
// sequential and parallel runs and across execution backends.
func Pipeline(cfg StudyConfig) (*PipelineStudy, error) {
	return cfg.Pipeline()
}

// RenderPipeline renders the pipeline study as a fixed-width table with the
// per-stage §4.1 breakdown and the handoff verdict.
var RenderPipeline = experiments.RenderPipeline

// Fleet-scale characterization: the three platforms sized to thousands of
// server machines under an open-loop load attributed to millions of logical
// users, with bounded-memory measurement (quantile sketches and reservoir-
// sampled histories) so profiling cost stays flat in the op count.
type (
	// FleetStudy is the full fleet-scale result.
	FleetStudy = experiments.FleetStudy
	// FleetRow is one platform's fleet measurement.
	FleetRow = experiments.FleetRow
	// SketchConfig switches a study's measurement plane to bounded-memory
	// sketching.
	SketchConfig = experiments.SketchConfig
	// FleetConfig sizes the fleet-scale characterization.
	FleetConfig = experiments.FleetConfig
)

// FleetScale runs the fleet-scale characterization. Equal seeds and sizing
// yield byte-identical MarshalFleet artifacts across sequential, parallel
// and all execution backends.
func FleetScale(cfg StudyConfig) (*FleetStudy, error) {
	return cfg.FleetScale()
}

// MarshalFleet renders the canonical fleet artifact (execution knobs and
// measured heap excluded); RenderFleet the human-readable table.
var (
	MarshalFleet = experiments.MarshalFleet
	RenderFleet  = experiments.RenderFleet
)

// Partition study: each platform's contended workload runs under a nemesis
// of split-brain/ring/bridge partitions, asymmetric gray links and bounded
// clock skew, naive (recovery disabled) versus hardened (partition-aware
// recovery: Spanner leader step-down, BigTable tablet reassignment, BigQuery
// shuffle failover). Both arms must stay safe; the hardened arm must stay
// available. Optional broken arms disable the safety mechanisms to prove
// the checkers convict them.
type (
	// PartitionStudy is the full partition study result.
	PartitionStudy = experiments.Partition
	// PartitionRow is one (platform, arm, seed) measurement.
	PartitionRow = experiments.PartitionRow
)

// RenderPartition renders the partition study as a fixed-width table with
// the naive-vs-hardened availability comparison and every violation in full.
var RenderPartition = experiments.RenderPartition

// Overload study: each platform's open-loop multi-tenant workload runs
// through a retry-storm trigger twice — naive versus protected by the
// overload control plane (admission control, retry budgets, circuit
// breakers, per-tenant QoS).
type (
	// OverloadStudy is the full overload study result.
	OverloadStudy = experiments.Overload
	// OverloadRow is one (platform, arm) measurement.
	OverloadRow = experiments.OverloadRow
	// TenantOverload is one tenant's accounting within a row.
	TenantOverload = experiments.TenantOverload
)

// OverloadControl runs the overload study. Equal configs replay
// bit-identically; the JSON export and rendered table are byte-identical
// between sequential and parallel runs.
func OverloadControl(cfg StudyConfig) (*OverloadStudy, error) {
	return cfg.Overload()
}

// RenderOverload renders the overload study as a fixed-width table with the
// naive-vs-protected recovery comparison.
var RenderOverload = experiments.RenderOverload

// Observability study: the characterization workload with the sim-clock
// metrics plane and continuous-profiling hook enabled.
type (
	// ObsStudy is the observability study result.
	ObsStudy = experiments.ObsStudy
	// MetricSeries is one exported metric time series.
	MetricSeries = obs.Series
	// MetricPoint is one (virtual time, value) sample.
	MetricPoint = obs.Point
)

// Observe runs the observability study: a characterization with the metrics
// plane forced on, yielding per-platform time series exportable as JSON or
// Chrome-trace counter tracks. Equal configs replay bit-identically and the
// exports are byte-identical between sequential and parallel runs.
func Observe(cfg StudyConfig) (*ObsStudy, error) {
	return cfg.Observe()
}

// RenderObs renders a per-platform summary of an observability study.
var RenderObs = experiments.RenderObs

// MarshalMetricSeries renders per-platform metric series as one compact JSON
// document in Platforms() order.
var MarshalMetricSeries = experiments.MarshalPlatformSeries

// MetricCounterTracks converts per-platform metric series into Chrome-trace
// counter tracks.
var MetricCounterTracks = experiments.CounterTracks

// QueryTrace is one sampled query trace.
type QueryTrace = trace.Trace

// Chrome-trace export surface, so callers can combine query intervals, fault
// marks and metric counter tracks into one document without importing
// internal packages.
type (
	// ChromeBuilder accumulates one Chrome trace-event document.
	ChromeBuilder = trace.ChromeBuilder
	// CounterTrack is one metric time series destined for a counter track.
	CounterTrack = trace.CounterTrack
	// CounterPoint is one sample of a counter track.
	CounterPoint = trace.CounterPoint
)

// NewChromeBuilder returns an empty Chrome trace-event document builder.
var NewChromeBuilder = trace.NewChromeBuilder

// Platform identifies one of the three profiled platforms.
type Platform = taxonomy.Platform

// The three platforms.
const (
	Spanner  = taxonomy.Spanner
	BigTable = taxonomy.BigTable
	BigQuery = taxonomy.BigQuery
)

// Platforms lists the platforms in presentation order.
func Platforms() []Platform { return taxonomy.Platforms() }

// Category is a fine-grained cycle category (Tables 2–5).
type Category = taxonomy.Category

// Broad is a top-level cycle class (core compute, datacenter tax, system tax).
type Broad = taxonomy.Broad

// Analytical model (the paper's primary contribution, §6).
type (
	// System is the full model input (Figure 7).
	System = model.System
	// Component is one CPU subcomponent t_sub_i.
	Component = model.Component
	// Invocation selects an accelerator execution model (§6.3.2).
	Invocation = model.Invocation
)

// The four §6.3 invocation models.
const (
	SyncOffChip   = model.SyncOffChip
	SyncOnChip    = model.SyncOnChip
	AsyncOnChip   = model.AsyncOnChip
	ChainedOnChip = model.ChainedOnChip
)

// Invocations lists the invocation models in Figure 13 order.
func Invocations() []Invocation { return model.Invocations() }

// Characterization is a completed profiling run over the three platforms.
type Characterization = experiments.Characterization

// Characterize runs the full characterization (the paper's "representative
// day" of traces and profiles).
func Characterize(cfg StudyConfig) (*Characterization, error) {
	return cfg.Characterize()
}

// Characterization artifacts (§3–§5).
var (
	// Table1 extracts the storage-to-storage ratios.
	Table1 = experiments.Table1
	// Figure2 extracts the end-to-end time breakdown by query group.
	Figure2 = experiments.Figure2
	// Figure2Overall extracts the cross-platform average CPU/remote/IO split.
	Figure2Overall = experiments.Figure2Overall
	// Figure3 extracts the broad cycle breakdown.
	Figure3 = experiments.Figure3
	// Figure4 extracts the core-compute category breakdown.
	Figure4 = experiments.Figure4
	// Figure5 extracts the datacenter-tax breakdown.
	Figure5 = experiments.Figure5
	// Figure6 extracts the system-tax breakdown.
	Figure6 = experiments.Figure6
	// Table6 extracts platform IPC/MPKI statistics.
	Table6 = experiments.Table6
	// Table7 extracts IPC/MPKI statistics by broad class.
	Table7 = experiments.Table7
)

// Limit studies (§6.2–§6.3).
var (
	// Figure9 runs the synchronous on-chip upper-bound sweep.
	Figure9 = experiments.Figure9
	// Figure10 runs the per-query-group upper-bound sweep.
	Figure10 = experiments.Figure10
	// Figure13 runs the accelerator feature study.
	Figure13 = experiments.Figure13
	// Figure14 runs the setup-time sweep.
	Figure14 = experiments.Figure14
	// Figure15 runs the prior-accelerator comparison.
	Figure15 = experiments.Figure15
)

// MicroarchStats is an aggregated IPC/MPKI report row.
type MicroarchStats = profile.Stats

// GroupStats is one Figure 2 row.
type GroupStats = trace.GroupStats

// Table8Result holds the §6.4 model-validation outcome.
type Table8Result = soc.Table8

// Table8Config sizes the validation experiment.
type Table8Config = experiments.Table8Config

// DefaultTable8Config returns the paper-calibrated validation setup.
func DefaultTable8Config() Table8Config { return experiments.DefaultTable8Config() }

// ValidateChainedModel reproduces Table 8: measure the simulated SoC running
// real protobuf serialization chained into real SHA3 hashing, then compare
// the chained model's estimate against the measurement.
func ValidateChainedModel(cfg Table8Config) (*Table8Result, error) {
	return experiments.Table8(cfg)
}

// Chain3Result holds the extended three-accelerator validation outcome
// (protobuf serialization -> block compression -> SHA3), the §6.4
// future-work experiment.
type Chain3Result = soc.Chain3Result

// ValidateChain3 runs the extended validation with a real compression stage
// between serialization and hashing.
func ValidateChain3(seed uint64, messages int) (*Chain3Result, error) {
	return experiments.Chain3Experiment(seed, messages)
}

// Extension studies (§6.4 future work).
var (
	// PartialSyncSweep evaluates intermediate synchronization levels
	// between the paper's fully-sync and fully-async endpoints.
	PartialSyncSweep = experiments.PartialSyncSweep
	// ChainScaling evaluates the invocation models as the accelerator
	// chain grows.
	ChainScaling = experiments.ChainScaling
	// RenderLatency renders a latency-under-load curve.
	RenderLatency = experiments.RenderLatency
	// RenderChain3 renders the extended validation.
	RenderChain3 = experiments.RenderChain3
	// RenderMixedPlacement renders a placement-sensitivity study.
	RenderMixedPlacement = experiments.RenderMixedPlacement
	// RenderPriority renders an accelerator-priority ranking.
	RenderPriority = experiments.RenderPriority
)

// LatencyPoint is one (rate, p50, p99) measurement of the latency-under-load
// study.
type LatencyPoint = experiments.LatencyPoint

// LatencyStudy measures p50/p99 latency versus offered load on the Spanner
// simulation (open-loop Poisson arrivals), honouring the config's Parallel
// and Backend knobs.
func LatencyStudy(cfg StudyConfig, rates []float64, opsPerPoint int) ([]LatencyPoint, error) {
	return cfg.Latency(rates, opsPerPoint)
}

// Report is the machine-readable form of the full characterization study.
type Report = experiments.Report

// BuildReport assembles the machine-readable report (serialize with
// Report.JSON).
var BuildReport = experiments.BuildReport

// Resilience types expose the fault-injection study: each platform's
// workload runs fault-free and under a seeded fault schedule, and the study
// compares availability, goodput and tail latency between the arms.
type (
	// Resilience is the full study result.
	Resilience = experiments.Resilience
	// ResilienceRow is one (platform, arm) measurement.
	ResilienceRow = experiments.ResilienceRow
	// FaultEvent records one fault that fired during a faulted arm.
	FaultEvent = faults.Applied
	// TraceMark is a point annotation on an exported trace timeline.
	TraceMark = trace.Mark
)

// ResilienceStudy runs the fault-injection study. Equal configs replay
// bit-identically.
func ResilienceStudy(cfg StudyConfig) (*Resilience, error) {
	return cfg.Resilience()
}

// RenderResilience renders the study as a fixed-width comparison table.
var RenderResilience = experiments.RenderResilience

// Safety types expose the torture study: each platform runs a contended
// read/write workload with operation-history recording enabled, fault-free
// and then across a seed sweep of injected fault schedules, and every run is
// checked for linearizability, structural safety violations (duplicate
// replay, double-counted merges, unsafe elections) and the standing
// invariants (consensus durability, tablet ownership, shuffle slot
// placement, DFS replica consistency).
type (
	// Safety is the full study result.
	Safety = experiments.Safety
	// SafetyRow is one (platform, seed) measurement.
	SafetyRow = experiments.SafetyRow
	// SafetyViolation is one checker finding with its reproducing seed.
	SafetyViolation = experiments.SafetyViolation
)

// SafetyStudy runs the torture study. Equal configs replay bit-identically;
// any violation is reported with the seed that reproduces it and the minimal
// violating subhistory.
func SafetyStudy(cfg StudyConfig) (*Safety, error) {
	return cfg.Safety()
}

// RenderSafety renders the study as a fixed-width table followed by every
// violation in full.
var RenderSafety = experiments.RenderSafety

// Renderers produce the textual equivalents of the paper's tables/figures.
var (
	RenderTable1   = experiments.RenderTable1
	RenderFigure2  = experiments.RenderFigure2
	RenderFigure3  = experiments.RenderFigure3
	RenderFigure4  = experiments.RenderFigure4
	RenderFigure5  = experiments.RenderFigure5
	RenderFigure6  = experiments.RenderFigure6
	RenderTables23 = experiments.RenderTables23
	RenderTables67 = experiments.RenderTables67
	RenderFigure9  = experiments.RenderFigure9
	RenderFigure10 = experiments.RenderFigure10
	RenderFigure13 = experiments.RenderFigure13
	RenderFigure14 = experiments.RenderFigure14
	RenderFigure15 = experiments.RenderFigure15
	RenderTable8   = experiments.RenderTable8
)
