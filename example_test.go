package hyperprof_test

import (
	"fmt"

	"hyperprof"
)

// ExampleSystem_Speedup evaluates the analytical model on the paper's
// Table 8 parameters: protobuf serialization chained into SHA3 hashing on
// the validation SoC.
func ExampleSystem_Speedup() {
	const us = 1e-6
	sys := hyperprof.System{
		CPUTime: (518.3 + 1112.5 + 4948.7) * us,
		F:       1,
		Components: []hyperprof.Component{
			{Name: "proto-ser", Time: 518.3 * us, Accelerated: true, Speedup: 31, Setup: 1488.9 * us, Chained: true},
			{Name: "sha3", Time: 1112.5 * us, Accelerated: true, Speedup: 51.3, Setup: 4.1 * us, Chained: true},
		},
	}
	fmt.Printf("baseline: %.1f us\n", sys.BaselineE2E()/us)
	fmt.Printf("chained:  %.1f us\n", sys.AcceleratedE2E()/us)
	fmt.Printf("speedup:  %.2fx\n", sys.Speedup())
	// Output:
	// baseline: 6579.5 us
	// chained:  6459.3 us
	// speedup:  1.02x
}

// ExampleSystem_Configure compares the four accelerator execution models of
// §6.3 on one synthetic system.
func ExampleSystem_Configure() {
	sys := hyperprof.System{
		CPUTime:   1.0,
		Bandwidth: 4e9,
		Components: []hyperprof.Component{
			{Name: "compression", Time: 0.3, Accelerated: true, Speedup: 8, Setup: 0.01},
			{Name: "protobuf", Time: 0.3, Accelerated: true, Speedup: 8, Setup: 0.01},
		},
	}
	off := map[string]float64{"compression": 2e9, "protobuf": 2e9}
	for _, inv := range hyperprof.Invocations() {
		fmt.Printf("%-18s %.3fx\n", inv, sys.Configure(inv, off).Speedup())
	}
	// Output:
	// Sync + Off-Chip    0.401x
	// Sync + On-Chip     2.020x
	// Async + On-Chip    2.235x
	// Chained + On-Chip  2.235x
}

// ExampleSystem_WithoutDependencies shows the paper's central Amdahl
// argument: with remote work and IO kept, accelerating the CPU barely
// helps; co-designing them away unlocks the acceleration.
func ExampleSystem_WithoutDependencies() {
	sys := hyperprof.System{
		CPUTime: 1.0,
		DepTime: 1.0, // as much time in storage/remote work as on CPU
		F:       0.5,
		Components: []hyperprof.Component{
			{Name: "everything", Time: 1.0, Accelerated: true, Speedup: 1, Sync: 1},
		},
	}
	hw := sys.WithUniformSpeedup(64)
	fmt.Printf("hardware only: %.2fx\n", hw.Speedup())
	codesign := hw.WithoutDependencies()
	fmt.Printf("with co-design: %.2fx\n", sys.BaselineE2E()/codesign.AcceleratedE2E())
	// Output:
	// hardware only: 1.49x
	// with co-design: 96.00x
}
