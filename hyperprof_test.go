package hyperprof

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as a downstream user
// would: characterize, extract artifacts, run a limit study, validate the
// chained model.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultCharStudyConfig()
	cfg.Ops = PlatformOps{Spanner: 300, BigTable: 300, BigQuery: 40}
	ch, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows := Table1(ch); len(rows) != 3 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	fig3 := Figure3(ch)
	for _, p := range Platforms() {
		var sum float64
		for _, f := range fig3[p] {
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s figure3 sums to %v", p, sum)
		}
	}
	fig9, err := Figure9(ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9[Spanner]) == 0 {
		t.Fatal("no figure9 points")
	}
	t8, err := ValidateChainedModel(DefaultTable8Config())
	if err != nil {
		t.Fatal(err)
	}
	if t8.DiffFrac > 0.2 {
		t.Fatalf("validation diff %.1f%%", t8.DiffFrac*100)
	}
	if out := RenderTable8(t8); len(out) < 100 {
		t.Fatal("render too short")
	}
}

func TestModelFacade(t *testing.T) {
	sys := System{
		CPUTime: 1,
		DepTime: 0.5,
		F:       0.5,
		Components: []Component{
			{Name: "compression", Time: 0.3, Accelerated: true, Speedup: 1, Sync: 1},
		},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	base := sys.Speedup()
	if math.Abs(base-1) > 1e-9 {
		t.Fatalf("unit speedup = %v", base)
	}
	acc := sys.WithUniformSpeedup(8)
	if acc.Speedup() <= 1 {
		t.Fatalf("accelerated speedup = %v", acc.Speedup())
	}
	for _, inv := range Invocations() {
		if s := acc.Configure(inv, nil).Speedup(); s <= 0 {
			t.Fatalf("%v speedup = %v", inv, s)
		}
	}
}
