// Package netsim models the datacenter network and RPC substrate the
// platforms communicate over (§2.1): nodes with CPU resources placed in
// racks and regions, latency/bandwidth transfer costs, and an RPC layer with
// real server-side queueing on worker pools. Time classification of RPC
// waits (remote work vs IO) is the caller's concern and is annotated at the
// platform layer.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hyperprof/internal/obs"
	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
)

// Config sets the network's latency and bandwidth parameters. The defaults
// approximate a Jupiter-class Clos fabric with cross-region WAN links.
type Config struct {
	SameRackRTT    time.Duration
	CrossRackRTT   time.Duration
	CrossRegionRTT time.Duration
	BytesPerSec    float64
}

// DefaultConfig returns representative parameters: 10µs in-rack RTT, 50µs
// cross-rack, 30ms cross-region, 5 GB/s per-flow bandwidth.
func DefaultConfig() Config {
	return Config{
		SameRackRTT:    10 * time.Microsecond,
		CrossRackRTT:   50 * time.Microsecond,
		CrossRegionRTT: 30 * time.Millisecond,
		BytesPerSec:    5e9,
	}
}

// Network is a set of nodes and the cost model between them.
type Network struct {
	k   *sim.Kernel
	cfg Config

	// Degradation state (fault injection): every non-local RPC message pays
	// extraDelay, and a dropProb fraction of requests is lost. A dropped
	// request surfaces as ErrNetDropped after the request transfer
	// (connection-reset semantics) so callers never block forever and the
	// simulation stays leak-free even without deadlines.
	extraDelay time.Duration
	dropProb   float64
	dropRNG    *stats.RNG
	// Dropped counts messages lost to injected degradation, global or
	// per-link.
	Dropped int

	// Per-directed-link fault plane (see links.go): extra delay, loss
	// probability or a full block per (from, to) node pair, composed with the
	// global knobs above. nodesByName backs name-addressed link injection;
	// linkSeed is the base of the per-link RNG streams. Blocked counts
	// messages lost to fully blocked links.
	links       map[linkKey]*linkFault
	nodesByName map[string]*Node
	linkSeed    uint64
	Blocked     int

	// Delivery accounting (safety checking): when enabled, the network counts
	// per-(server, call-ID) request arrivals and handler executions, so a
	// checker can prove at-most-once execution under retries and hedging.
	accounting bool
	admits     map[deliveryKey]int
	execs      map[deliveryKey]int

	// nextClientID hands out per-network client IDs for call-ID assignment;
	// keeping the counter on the network (not a package global) preserves
	// determinism across independent simulations.
	nextClientID uint32

	// m aggregates RPC outcomes network-wide into the observability plane.
	// The zero value (all-nil handles) is the disabled state: every record
	// site costs one nil check.
	m netMetrics
}

// netMetrics holds the network's obs series handles. Per-network (not
// per-client/server) aggregation keeps the series set small and stable while
// still separating platforms, which each own their Network.
type netMetrics struct {
	calls, attempts, retries, failovers *obs.Counter
	hedges, hedgeWins, deadlines        *obs.Counter
	sheds, drops, dedupSuppressed       *obs.Counter
	// Overload-control plane series: adaptive sheds, CoDel queue expiries,
	// retry-budget exhaustions, breaker transitions, and the network-wide
	// queued-request level.
	shedsAdaptive, expired         *obs.Counter
	budgetExhausted                *obs.Counter
	breakerOpens, breakerFastFails *obs.Counter
	queueDepth                     *obs.Gauge
}

// EnableMetrics registers the network's RPC-outcome counters ("rpc.*") with
// an observability registry. Calling it with a nil registry is a no-op (the
// handles stay nil and record sites remain single-branch no-ops).
func (n *Network) EnableMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	n.m = netMetrics{
		calls:            r.Counter("rpc.calls"),
		attempts:         r.Counter("rpc.attempts"),
		retries:          r.Counter("rpc.retries"),
		failovers:        r.Counter("rpc.failovers"),
		hedges:           r.Counter("rpc.hedges"),
		hedgeWins:        r.Counter("rpc.hedge_wins"),
		deadlines:        r.Counter("rpc.deadlines"),
		sheds:            r.Counter("rpc.sheds"),
		drops:            r.Counter("rpc.drops"),
		dedupSuppressed:  r.Counter("rpc.dedup_suppressed"),
		shedsAdaptive:    r.Counter("rpc.sheds_adaptive"),
		expired:          r.Counter("rpc.expired"),
		budgetExhausted:  r.Counter("rpc.retry_budget_exhausted"),
		breakerOpens:     r.Counter("rpc.breaker.opens"),
		breakerFastFails: r.Counter("rpc.breaker.fast_fails"),
		queueDepth:       r.Gauge("rpc.queue.depth"),
	}
}

// deliveryKey identifies one logical call's deliveries to one server.
type deliveryKey struct {
	server string
	id     uint64
}

// EnableDeliveryAccounting turns on per-(server, call-ID) delivery counting.
// Only requests carrying a nonzero CallID are tracked.
func (n *Network) EnableDeliveryAccounting() {
	n.accounting = true
	if n.admits == nil {
		n.admits = map[deliveryKey]int{}
		n.execs = map[deliveryKey]int{}
	}
}

// Admits returns how many times a call ID arrived at (was admitted by) the
// named server.
func (n *Network) Admits(server string, id uint64) int {
	return n.admits[deliveryKey{server, id}]
}

// Execs returns how many times a call ID was actually executed (not
// dedup-suppressed) at the named server.
func (n *Network) Execs(server string, id uint64) int {
	return n.execs[deliveryKey{server, id}]
}

// DupExecs returns a sorted description of every (server, call-ID) pair whose
// handler executed more than once — the at-most-once violations. Retried and
// hedged requests legitimately admit twice; with server-side dedup enabled
// they must still execute at most once per server.
func (n *Network) DupExecs() []string {
	var out []string
	for k, c := range n.execs {
		if c > 1 {
			out = append(out, fmt.Sprintf("%s call %#x executed %d times", k.server, k.id, c))
		}
	}
	sort.Strings(out)
	return out
}

// New creates a network on the given kernel.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = DefaultConfig().BytesPerSec
	}
	return &Network{k: k, cfg: cfg}
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Degrade injects network degradation: every non-local RPC message pays an
// extra per-message delay, and each request is dropped with probability
// dropProb, drawn from a generator seeded with seed (deterministic in call
// order). Calling Degrade again replaces the previous parameters — windows
// never stack, the rule TestOverlappingBrownoutsReplaceNotStack pins; the
// per-link plane follows the same replace-not-stack rule in SetLinkFault.
//
// Deprecated: Degrade is the wildcard form of the per-directed-link fault
// plane (links.go) — one (extra, drop) applied to every non-local link at
// once, requests only. New fault scenarios should target individual links
// via SetLinkFault/BlockLink; Degrade is kept so existing brownout
// schedules and their callers keep compiling and behaving identically.
func (n *Network) Degrade(extra time.Duration, dropProb float64, seed uint64) {
	if extra < 0 {
		extra = 0
	}
	if dropProb < 0 {
		dropProb = 0
	}
	if dropProb > 1 {
		dropProb = 1
	}
	n.extraDelay = extra
	n.dropProb = dropProb
	if dropProb > 0 && n.dropRNG == nil {
		n.dropRNG = stats.NewRNG(seed)
	}
}

// Restore clears injected network degradation. The drop generator is kept so
// alternating Degrade/Restore windows stay on one deterministic stream.
//
// Deprecated: Restore pairs with Degrade, the wildcard form of the per-link
// fault plane; per-link faults are cleared with HealLink/HealAllLinks.
func (n *Network) Restore() {
	n.extraDelay = 0
	n.dropProb = 0
}

// Degraded reports whether degradation is currently injected.
func (n *Network) Degraded() bool { return n.extraDelay > 0 || n.dropProb > 0 }

// ExtraDelay returns the currently injected per-message delay. Successive
// Degrade calls replace (never stack) this value, which fault-schedule tests
// assert directly.
func (n *Network) ExtraDelay() time.Duration { return n.extraDelay }

// DropProb returns the currently injected request-drop probability.
func (n *Network) DropProb() float64 { return n.dropProb }

// messageDelay is TransferTime plus any injected per-message delay — the
// global surcharge and the directed link's own, composed; local messages are
// exempt (they never cross the degraded fabric). This is the RPC hot path:
// the len check skips the map lookup entirely on unfaulted networks, and the
// lookup itself uses a value-typed key, so the function allocates nothing
// (pinned by TestMessageDelayZeroAllocs and BenchmarkNetMessageDelay).
func (n *Network) messageDelay(a, b *Node, size int64) time.Duration {
	d := n.TransferTime(a, b, size)
	if a != b {
		d += n.extraDelay
		if len(n.links) != 0 {
			if lf := n.links[linkKey{a.Name, b.Name}]; lf != nil {
				d += lf.extra
			}
		}
	}
	return d
}

// dropRequest decides whether a non-local request is lost to degradation.
func (n *Network) dropRequest(from, to *Node) bool {
	if from == to || n.dropProb <= 0 || n.dropRNG == nil {
		return false
	}
	if n.dropRNG.Bool(n.dropProb) {
		n.Dropped++
		n.m.drops.Inc()
		return true
	}
	return false
}

// Node is one server: a location plus a CPU core pool.
type Node struct {
	Name   string
	Region int
	Rack   int
	CPU    *sim.Resource
	net    *Network
}

// NewNode creates a node with the given core count and registers its name
// for link-plane addressing (later registrations of the same name win).
func (n *Network) NewNode(name string, region, rack, cores int) *Node {
	nd := &Node{
		Name:   name,
		Region: region,
		Rack:   rack,
		CPU:    sim.NewResource(n.k, name+"/cpu", cores),
		net:    n,
	}
	if n.nodesByName == nil {
		n.nodesByName = map[string]*Node{}
	}
	n.nodesByName[name] = nd
	return nd
}

// RTT returns the round-trip latency between two nodes.
func (n *Network) RTT(a, b *Node) time.Duration {
	switch {
	case a == b:
		return 0
	case a.Region != b.Region:
		return n.cfg.CrossRegionRTT
	case a.Rack != b.Rack:
		return n.cfg.CrossRackRTT
	default:
		return n.cfg.SameRackRTT
	}
}

// TransferTime returns the one-way time to move size bytes from a to b:
// half the RTT plus serialization at per-flow bandwidth. Local transfers are
// free.
func (n *Network) TransferTime(a, b *Node, size int64) time.Duration {
	if a == b {
		return 0
	}
	if size < 0 {
		size = 0
	}
	xfer := time.Duration(float64(size) / n.cfg.BytesPerSec * float64(time.Second))
	return n.RTT(a, b)/2 + xfer
}

// Request is an RPC request. CallID, when nonzero, identifies the logical
// call across retries and hedged duplicates: policy clients stamp one ID per
// logical call so servers can deduplicate re-deliveries and the network can
// account at-most-once execution. Zero means untracked (plain Server.Call).
type Request struct {
	Method  string
	Bytes   int64
	CallID  uint64
	Payload interface{}
	// Priority routes the request through the server's priority lane: it
	// overtakes the normal-band backlog, bypasses adaptive shedding and CoDel
	// expiry, and gets a doubled hard queue bound — the lane that keeps
	// system and checker traffic (elections, recovery, lease confirmation)
	// alive through a brownout.
	Priority bool
}

// Response is an RPC response.
type Response struct {
	Bytes   int64
	Payload interface{}
	Err     error
}

// Handler services one request on a server worker process.
type Handler func(p *sim.Proc, req Request) Response

// ErrNoMethod is returned for calls to unregistered methods.
var ErrNoMethod = errors.New("netsim: no such method")

// ErrServerDown is returned for calls to a stopped or crashed server; the
// caller observes it after one request transfer, like a connection refused.
var ErrServerDown = errors.New("netsim: server down")

// ErrNotStarted is returned for calls that arrive before Server.Start, so
// fault scenarios that race startup degrade to a retryable error instead of
// crashing the whole simulation.
var ErrNotStarted = errors.New("netsim: server not started")

// ErrOverloaded is returned when a request arrives at a server whose bounded
// queue is full: the server sheds load instead of building an unbounded
// backlog (the production defense the paper's SLO discussion leans on).
var ErrOverloaded = errors.New("netsim: server overloaded")

// ErrDeadlineExceeded is returned by policy-driven calls whose attempt did
// not complete within the configured deadline.
var ErrDeadlineExceeded = errors.New("netsim: deadline exceeded")

// ErrNetDropped is returned when injected network degradation loses the
// request. It models a reset connection: the caller learns of the loss after
// one request transfer rather than hanging forever.
var ErrNetDropped = errors.New("netsim: request dropped by degraded network")

// Server is an RPC endpoint with a bounded worker pool: calls queue in FIFO
// order and each worker services one call at a time, which is where
// server-side queueing delay comes from.
//
// Admission semantics: a request is admitted when it *arrives* (after the
// request transfer). Admitted requests always run to completion under Stop
// (graceful drain) but fail under Crash; requests arriving after either
// observe ErrServerDown. Whether a concurrent Stop lands before or after a
// request's arrival instant is therefore the single fact that decides its
// outcome — there is no window where an admitted call can still observe
// ErrServerDown, and no window where a post-Stop arrival can sneak in.
type Server struct {
	Node     *Node
	handlers map[string]Handler
	queue    *sim.Queue[*inFlight]
	workers  int
	maxQueue int
	slowdown float64
	started  bool
	stopped  bool
	crashed  bool
	// inService tracks requests currently being handled, in admission order,
	// so Crash can fail them immediately. A slice (not a set) keeps the
	// failure order deterministic: Crash wakes the waiters in the order the
	// requests entered service.
	inService []*inFlight
	// Shed counts requests rejected by the hard queue bound.
	Shed int

	// Overload admission control (see Admission). adm.enabled() gating keeps
	// the unconfigured server on the pre-existing fast path.
	adm     Admission
	shedRNG *stats.RNG
	// ShedAdaptive counts requests rejected by utilization-driven shedding
	// (below the hard bound), Expired counts admitted requests discarded at
	// dequeue by the CoDel sojourn rule. A request is counted in at most one
	// of Shed/ShedAdaptive/Expired — the paths are mutually exclusive.
	ShedAdaptive int
	Expired      int
	// CoDel state: the instant dequeues first went above the sojourn target.
	aboveSince time.Duration
	aboveSet   bool

	// Duplicate suppression (at-most-once execution): with dedup enabled, a
	// second delivery of the same nonzero CallID joins the in-flight execution
	// (singleflight) or replays the cached successful response instead of
	// running the handler again. Production RPC stacks need this so hedged
	// and retried mutations are not applied twice.
	dedup         bool
	pendingByID   map[uint64]*inFlight
	doneByID      map[uint64]Response
	DupSuppressed int
}

type inFlight struct {
	req  Request
	resp Response
	done *sim.Signal
	// enqueuedAt is the admission instant, the basis of the CoDel sojourn.
	enqueuedAt time.Duration
}

// NewServer creates a server on a node with the given worker pool size.
func NewServer(node *Node, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{
		Node:     node,
		handlers: map[string]Handler{},
		queue:    sim.NewQueue[*inFlight](node.net.k),
		workers:  workers,
	}
}

// Handle registers a handler for a method name.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// SetDedup enables duplicate suppression for requests carrying a CallID: a
// re-delivered ID joins the in-flight execution or replays the cached
// successful response. Failed executions are not cached, so a retry after a
// definite failure executes fresh.
func (s *Server) SetDedup(on bool) {
	s.dedup = on
	if on && s.pendingByID == nil {
		s.pendingByID = map[uint64]*inFlight{}
		s.doneByID = map[uint64]Response{}
	}
}

// SetQueueLimit bounds the server's request queue: a request arriving while
// max requests are already waiting is shed with ErrOverloaded. max <= 0
// (the default) leaves the queue unbounded.
func (s *Server) SetQueueLimit(max int) { s.maxQueue = max }

// SetSlowdown injects a straggler: each request's service time is multiplied
// by factor. factor <= 1 clears the injection.
func (s *Server) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	s.slowdown = factor
}

// Start launches the worker pool. It must be called once before any Call.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		name := fmt.Sprintf("%s/rpc-worker-%d", s.Node.Name, i)
		s.Node.net.k.Go(name, func(p *sim.Proc) {
			for {
				c := sim.GetQueue(p, s.queue)
				if c == nil {
					return // shutdown sentinel
				}
				s.Node.net.m.queueDepth.Add(-1)
				if s.expireAtDequeue(p.Now(), c) {
					// CoDel expiry: the request waited above target for a
					// full interval — discard it instead of servicing it, so
					// a deep backlog drains at dequeue speed rather than at
					// service speed (the mechanism that breaks metastable
					// queues).
					s.Expired++
					s.Node.net.m.expired.Inc()
					if !c.done.Fired() {
						c.resp = Response{Err: fmt.Errorf("%w: %s after %v queued",
							ErrExpired, s.Node.Name, p.Now()-c.enqueuedAt)}
						c.done.Fire()
					}
					continue
				}
				if s.Node.net.accounting && c.req.CallID != 0 {
					s.Node.net.execs[deliveryKey{s.Node.Name, c.req.CallID}]++
				}
				s.inService = append(s.inService, c)
				svcStart := p.Now()
				var resp Response
				h, ok := s.handlers[c.req.Method]
				if !ok {
					resp = Response{Err: fmt.Errorf("%w: %q", ErrNoMethod, c.req.Method)}
				} else {
					resp = h(p, c.req)
				}
				if s.slowdown > 1 {
					// Straggler injection: stretch the observed service time.
					p.Sleep(time.Duration(float64(p.Now()-svcStart) * (s.slowdown - 1)))
				}
				for i, e := range s.inService {
					if e == c {
						s.inService = append(s.inService[:i], s.inService[i+1:]...)
						break
					}
				}
				// A crash may have failed this call while it was in service;
				// its response already went out, so drop the handler's.
				if !c.done.Fired() {
					c.resp = resp
					c.done.Fire()
				}
			}
		})
	}
}

// Stop gracefully drains the server: requests already admitted (queued or in
// service) complete in FIFO order, then the workers exit; requests arriving
// after Stop fail fast with ErrServerDown. See the Server admission-semantics
// note: the arrival instant alone decides a racing call's outcome.
func (s *Server) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for i := 0; i < s.workers; i++ {
		s.queue.Put(nil)
	}
}

// Crash fails the server immediately: every queued and in-service request
// errors out with ErrServerDown right now (the work in progress is lost),
// and later arrivals are refused. Unlike Stop there is no drain. A crashed
// server can be replaced by constructing and starting a new Server on the
// same node (see spanner.RestartReplica for the pattern).
func (s *Server) Crash() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.crashed = true
	downErr := fmt.Errorf("%w: %s (crashed)", ErrServerDown, s.Node.Name)
	for _, c := range s.queue.Drain() {
		if c != nil {
			s.Node.net.m.queueDepth.Add(-1)
			if !c.done.Fired() {
				c.resp = Response{Err: downErr}
				c.done.Fire()
			}
		}
	}
	for _, c := range s.inService {
		if !c.done.Fired() {
			c.resp = Response{Err: downErr}
			c.done.Fire()
		}
	}
	// Workers blocked on the (now empty) queue exit via sentinels; workers
	// mid-handler exit after their current (already-failed) call.
	for i := 0; i < s.workers; i++ {
		s.queue.Put(nil)
	}
}

// Stopped reports whether the server has been stopped or crashed.
func (s *Server) Stopped() bool { return s.stopped }

// Crashed reports whether the server went down via Crash.
func (s *Server) Crashed() bool { return s.crashed }

// QueueDepth returns the number of requests waiting (excluding in service).
func (s *Server) QueueDepth() int {
	if s.stopped {
		return 0 // only shutdown sentinels remain
	}
	return s.queue.Len()
}

// Call performs a blocking RPC from the calling process located at `from`:
// request transfer, server queueing and handler execution, response
// transfer. It returns the response and the total elapsed virtual time.
//
// Failures surface as Response.Err after one request transfer (connection
// refused/reset semantics): ErrNotStarted before Start, ErrServerDown after
// Stop or Crash, ErrOverloaded when the bounded queue is full, and
// ErrNetDropped when injected degradation loses the request.
func (s *Server) Call(p *sim.Proc, from *Node, req Request) (Response, time.Duration) {
	start := p.Now()
	net := s.Node.net
	p.Sleep(net.messageDelay(from, s.Node, req.Bytes))
	// Admission point: the request has arrived. All admission checks happen
	// here and nowhere else, so a call's outcome is decided by whether
	// Stop/Crash landed before or after this instant.
	switch {
	case net.linkBlocked(from, s.Node):
		net.Blocked++
		return Response{Err: fmt.Errorf("%w: %s -> %s", ErrLinkBlocked, from.Name, s.Node.Name)}, p.Now() - start
	case net.dropRequest(from, s.Node) || net.linkDrop(from, s.Node):
		return Response{Err: fmt.Errorf("%w: to %s", ErrNetDropped, s.Node.Name)}, p.Now() - start
	case !s.started:
		return Response{Err: fmt.Errorf("%w: %s", ErrNotStarted, s.Node.Name)}, p.Now() - start
	case s.stopped:
		return Response{Err: fmt.Errorf("%w: %s", ErrServerDown, s.Node.Name)}, p.Now() - start
	}
	tracked := req.CallID != 0
	if net.accounting && tracked {
		net.admits[deliveryKey{s.Node.Name, req.CallID}]++
	}
	if s.dedup && tracked {
		// Duplicate delivery of a finished call: replay the cached success.
		if resp, ok := s.doneByID[req.CallID]; ok {
			s.DupSuppressed++
			net.m.dedupSuppressed.Inc()
			return s.respond(p, from, resp), p.Now() - start
		}
		// Duplicate of an in-flight call: join it (singleflight) instead of
		// executing the handler a second time.
		if prev, ok := s.pendingByID[req.CallID]; ok {
			s.DupSuppressed++
			net.m.dedupSuppressed.Inc()
			p.Wait(prev.done)
			return s.respond(p, from, prev.resp), p.Now() - start
		}
	}
	if err := s.admit(req); err != nil {
		return Response{Err: err}, p.Now() - start
	}
	c := &inFlight{req: req, done: sim.NewSignal(net.k), enqueuedAt: p.Now()}
	if s.dedup && tracked {
		id := req.CallID
		s.pendingByID[id] = c
		// The done hook runs on completion and on crash alike: the pending
		// entry always clears, and only definite successes are cached.
		c.done.OnFire(func() {
			delete(s.pendingByID, id)
			if c.resp.Err == nil {
				s.doneByID[id] = c.resp
			}
		})
	}
	net.m.queueDepth.Add(1)
	if req.Priority {
		s.queue.PutHigh(c)
	} else {
		s.queue.Put(c)
	}
	p.Wait(c.done)
	return s.respond(p, from, c.resp), p.Now() - start
}

// respond models the response transfer back to the caller at `from`: the
// message pays the reverse direction's delay and may be lost to a blocked or
// lossy reverse link. This is the gray-failure half of the link plane — the
// handler has already executed (or the cached response already exists), so a
// lost response costs the caller an error for work that actually happened.
// The global degradation knobs deliberately do not apply here: they are
// request-path-only, and changing that would perturb every existing
// brownout schedule's RNG draw order.
func (s *Server) respond(p *sim.Proc, from *Node, resp Response) Response {
	net := s.Node.net
	p.Sleep(net.messageDelay(s.Node, from, resp.Bytes))
	switch {
	case net.linkBlocked(s.Node, from):
		net.Blocked++
		return Response{Err: fmt.Errorf("%w: %s -> %s (response lost)", ErrLinkBlocked, s.Node.Name, from.Name)}
	case net.linkDrop(s.Node, from):
		return Response{Err: fmt.Errorf("%w: response from %s", ErrNetDropped, s.Node.Name)}
	}
	return resp
}
