// Package netsim models the datacenter network and RPC substrate the
// platforms communicate over (§2.1): nodes with CPU resources placed in
// racks and regions, latency/bandwidth transfer costs, and an RPC layer with
// real server-side queueing on worker pools. Time classification of RPC
// waits (remote work vs IO) is the caller's concern and is annotated at the
// platform layer.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"hyperprof/internal/sim"
)

// Config sets the network's latency and bandwidth parameters. The defaults
// approximate a Jupiter-class Clos fabric with cross-region WAN links.
type Config struct {
	SameRackRTT    time.Duration
	CrossRackRTT   time.Duration
	CrossRegionRTT time.Duration
	BytesPerSec    float64
}

// DefaultConfig returns representative parameters: 10µs in-rack RTT, 50µs
// cross-rack, 30ms cross-region, 5 GB/s per-flow bandwidth.
func DefaultConfig() Config {
	return Config{
		SameRackRTT:    10 * time.Microsecond,
		CrossRackRTT:   50 * time.Microsecond,
		CrossRegionRTT: 30 * time.Millisecond,
		BytesPerSec:    5e9,
	}
}

// Network is a set of nodes and the cost model between them.
type Network struct {
	k   *sim.Kernel
	cfg Config
}

// New creates a network on the given kernel.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = DefaultConfig().BytesPerSec
	}
	return &Network{k: k, cfg: cfg}
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Node is one server: a location plus a CPU core pool.
type Node struct {
	Name   string
	Region int
	Rack   int
	CPU    *sim.Resource
	net    *Network
}

// NewNode creates a node with the given core count.
func (n *Network) NewNode(name string, region, rack, cores int) *Node {
	return &Node{
		Name:   name,
		Region: region,
		Rack:   rack,
		CPU:    sim.NewResource(n.k, name+"/cpu", cores),
		net:    n,
	}
}

// RTT returns the round-trip latency between two nodes.
func (n *Network) RTT(a, b *Node) time.Duration {
	switch {
	case a == b:
		return 0
	case a.Region != b.Region:
		return n.cfg.CrossRegionRTT
	case a.Rack != b.Rack:
		return n.cfg.CrossRackRTT
	default:
		return n.cfg.SameRackRTT
	}
}

// TransferTime returns the one-way time to move size bytes from a to b:
// half the RTT plus serialization at per-flow bandwidth. Local transfers are
// free.
func (n *Network) TransferTime(a, b *Node, size int64) time.Duration {
	if a == b {
		return 0
	}
	if size < 0 {
		size = 0
	}
	xfer := time.Duration(float64(size) / n.cfg.BytesPerSec * float64(time.Second))
	return n.RTT(a, b)/2 + xfer
}

// Request is an RPC request.
type Request struct {
	Method  string
	Bytes   int64
	Payload interface{}
}

// Response is an RPC response.
type Response struct {
	Bytes   int64
	Payload interface{}
	Err     error
}

// Handler services one request on a server worker process.
type Handler func(p *sim.Proc, req Request) Response

// ErrNoMethod is returned for calls to unregistered methods.
var ErrNoMethod = errors.New("netsim: no such method")

// ErrServerDown is returned for calls to a stopped server (a crashed or
// drained task); the caller observes it after one request transfer, like a
// connection refused.
var ErrServerDown = errors.New("netsim: server down")

// Server is an RPC endpoint with a bounded worker pool: calls queue in FIFO
// order and each worker services one call at a time, which is where
// server-side queueing delay comes from.
type Server struct {
	Node     *Node
	handlers map[string]Handler
	queue    *sim.Queue[*inFlight]
	workers  int
	started  bool
	stopped  bool
}

type inFlight struct {
	req  Request
	resp Response
	done *sim.Signal
}

// NewServer creates a server on a node with the given worker pool size.
func NewServer(node *Node, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{
		Node:     node,
		handlers: map[string]Handler{},
		queue:    sim.NewQueue[*inFlight](node.net.k),
		workers:  workers,
	}
}

// Handle registers a handler for a method name.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// Start launches the worker pool. It must be called once before any Call.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		name := fmt.Sprintf("%s/rpc-worker-%d", s.Node.Name, i)
		s.Node.net.k.Go(name, func(p *sim.Proc) {
			for {
				c := sim.GetQueue(p, s.queue)
				if c == nil {
					return // shutdown sentinel
				}
				h, ok := s.handlers[c.req.Method]
				if !ok {
					c.resp = Response{Err: fmt.Errorf("%w: %q", ErrNoMethod, c.req.Method)}
				} else {
					c.resp = h(p, c.req)
				}
				c.done.Fire()
			}
		})
	}
}

// Stop shuts down the worker pool by sending one sentinel per worker.
// In-flight and queued calls complete first (FIFO order); calls arriving
// after Stop fail fast with ErrServerDown.
func (s *Server) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for i := 0; i < s.workers; i++ {
		s.queue.Put(nil)
	}
}

// Stopped reports whether the server has been stopped.
func (s *Server) Stopped() bool { return s.stopped }

// QueueDepth returns the number of requests waiting (excluding in service).
func (s *Server) QueueDepth() int { return s.queue.Len() }

// Call performs a blocking RPC from the calling process located at `from`:
// request transfer, server queueing and handler execution, response
// transfer. It returns the response and the total elapsed virtual time.
func (s *Server) Call(p *sim.Proc, from *Node, req Request) (Response, time.Duration) {
	if !s.started {
		panic("netsim: Call before Server.Start")
	}
	start := p.Now()
	net := s.Node.net
	p.Sleep(net.TransferTime(from, s.Node, req.Bytes))
	if s.stopped {
		return Response{Err: fmt.Errorf("%w: %s", ErrServerDown, s.Node.Name)}, p.Now() - start
	}
	c := &inFlight{req: req, done: sim.NewSignal(net.k)}
	s.queue.Put(c)
	p.Wait(c.done)
	p.Sleep(net.TransferTime(s.Node, from, c.resp.Bytes))
	return c.resp, p.Now() - start
}
