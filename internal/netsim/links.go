package netsim

import (
	"time"

	"hyperprof/internal/stats"
)

// This file is the per-directed-link fault plane: extra delay, loss
// probability, or a full block injected on individual (from, to) node pairs,
// composed with the network's global degradation knobs. The global
// Degrade/Restore pair is the deprecated wildcard form of this plane.
//
// Semantics, chosen to model gray failures rather than clean outages:
//
//   - Link faults are directed. Blocking a->b leaves b->a healthy, which is
//     exactly the asymmetric reachability ("A hears B, B cannot hear A")
//     that breaks naive failure detectors.
//   - Request-direction faults surface like the global knobs: a blocked link
//     returns ErrLinkBlocked and a lossy link ErrNetDropped after one
//     request transfer, before the handler runs.
//   - Response-direction faults are the gray half: the handler has already
//     executed, so a blocked or lossy reverse link loses only the
//     acknowledgment. The caller sees an error for work that happened —
//     the indeterminate-outcome case the safety checker must tolerate.
//   - Setting a link's parameters replaces the previous ones (never stacks),
//     matching the documented Degrade rule for the global path.
//
// Determinism: each directed link draws losses from its own RNG stream
// seeded from fnv64(from, to) XOR the network's link seed, so the stream a
// link uses depends only on its endpoints and the configured seed — never on
// the order links were faulted in.

// linkKey identifies one directed (from, to) node pair by node name.
type linkKey struct{ from, to string }

// linkFault is the injected fault state of one directed link. The zero
// extra/drop/blocked state (after HealLink) is kept in the map so the link's
// RNG stream survives across fault windows.
type linkFault struct {
	extra   time.Duration
	drop    float64
	blocked bool
	rng     *stats.RNG
}

// ErrLinkBlocked is returned when a message's directed link is fully blocked
// by an injected partition. Like ErrNetDropped it surfaces after one
// transfer time (connection-reset semantics), so callers never hang on a
// partitioned link.
var ErrLinkBlocked = errLinkBlocked{}

type errLinkBlocked struct{}

func (errLinkBlocked) Error() string { return "netsim: link blocked by partition" }

// SetLinkSeed sets the base seed the per-link RNG streams derive from. Call
// it before the first SetLinkFault; links faulted earlier keep the streams
// they already derived.
func (n *Network) SetLinkSeed(seed uint64) { n.linkSeed = seed }

// fnvLink hashes a directed link's endpoints (FNV-1a over from, a
// separator, to) for per-link RNG stream derivation.
func fnvLink(from, to string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(from); i++ {
		h = (h ^ uint64(from[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(to); i++ {
		h = (h ^ uint64(to[i])) * prime
	}
	return h
}

// link returns the fault entry for a directed link, creating it (with its
// deterministic RNG stream) on first use. It returns nil if either endpoint
// name is unknown to this network.
func (n *Network) link(from, to string) *linkFault {
	if n.nodesByName[from] == nil || n.nodesByName[to] == nil {
		return nil
	}
	if n.links == nil {
		n.links = map[linkKey]*linkFault{}
	}
	k := linkKey{from, to}
	lf := n.links[k]
	if lf == nil {
		lf = &linkFault{rng: stats.NewRNG(fnvLink(from, to) ^ n.linkSeed)}
		n.links[k] = lf
	}
	return lf
}

// SetLinkFault injects a gray fault on the directed link from -> to: every
// message crossing it pays extra delay on top of the transfer cost and is
// lost with probability drop. Calling it again replaces the previous
// parameters (never stacks), like Degrade on the global path. It reports
// whether both endpoint names are known; an unknown name injects nothing.
func (n *Network) SetLinkFault(from, to string, extra time.Duration, drop float64) bool {
	lf := n.link(from, to)
	if lf == nil {
		return false
	}
	if extra < 0 {
		extra = 0
	}
	if drop < 0 {
		drop = 0
	}
	if drop > 1 {
		drop = 1
	}
	lf.extra = extra
	lf.drop = drop
	return true
}

// BlockLink fully blocks the directed link from -> to: every message
// crossing it is lost (ErrLinkBlocked after one transfer time). It reports
// whether both endpoint names are known.
func (n *Network) BlockLink(from, to string) bool {
	lf := n.link(from, to)
	if lf == nil {
		return false
	}
	lf.blocked = true
	return true
}

// UnblockLink removes a full block from the directed link, leaving any gray
// (extra delay / loss) parameters in place.
func (n *Network) UnblockLink(from, to string) bool {
	lf := n.link(from, to)
	if lf == nil {
		return false
	}
	lf.blocked = false
	return true
}

// HealLink clears every injected fault on the directed link. The link's RNG
// stream is kept, so alternating fault/heal windows stay on one
// deterministic stream (the same rule Restore follows globally).
func (n *Network) HealLink(from, to string) bool {
	lf := n.link(from, to)
	if lf == nil {
		return false
	}
	lf.extra, lf.drop, lf.blocked = 0, 0, false
	return true
}

// HealAllLinks clears every injected per-link fault on the network.
func (n *Network) HealAllLinks() {
	for _, lf := range n.links {
		lf.extra, lf.drop, lf.blocked = 0, 0, false
	}
}

// LinkBlocked reports whether the directed link from -> to is currently
// fully blocked.
func (n *Network) LinkBlocked(from, to string) bool {
	if len(n.links) == 0 {
		return false
	}
	lf := n.links[linkKey{from, to}]
	return lf != nil && lf.blocked
}

// Reachable reports whether two nodes can exchange messages in both
// directions — no full block either way. Gray links (slow or lossy but not
// blocked) still count as reachable: a limping link must not trip
// partition-recovery logic that only asymmetric blocks justify.
func (n *Network) Reachable(a, b *Node) bool {
	if a == b || len(n.links) == 0 {
		return true
	}
	return !n.LinkBlocked(a.Name, b.Name) && !n.LinkBlocked(b.Name, a.Name)
}

// NodeByName returns the registered node with the given name, or nil.
func (n *Network) NodeByName(name string) *Node { return n.nodesByName[name] }

// linkBlocked is the message-path form of LinkBlocked: local messages never
// cross the fault plane.
func (n *Network) linkBlocked(from, to *Node) bool {
	if from == to || len(n.links) == 0 {
		return false
	}
	lf := n.links[linkKey{from.Name, to.Name}]
	return lf != nil && lf.blocked
}

// linkDrop draws the per-link loss decision for one directed message,
// counting losses alongside global-degradation drops.
func (n *Network) linkDrop(from, to *Node) bool {
	if from == to || len(n.links) == 0 {
		return false
	}
	lf := n.links[linkKey{from.Name, to.Name}]
	if lf == nil || lf.drop <= 0 {
		return false
	}
	if lf.rng.Bool(lf.drop) {
		n.Dropped++
		n.m.drops.Inc()
		return true
	}
	return false
}
