package netsim

// This file is the server-side half of the overload control plane plus the
// per-tenant QoS governor. The mechanisms are the production defenses against
// metastable overload (retry storms that keep goodput collapsed after the
// trigger clears): bounded request queues, CoDel-style queue-deadline
// admission that expires requests whose sojourn stayed above target for a
// full interval, utilization-driven probabilistic shedding before the hard
// bound, a priority lane that lets system/checker traffic overtake the
// backlog, and weighted per-tenant admission so a flash-crowd tenant cannot
// starve the others. Everything is a pure function of the sim clock and
// seeded streams; no wall-clock reads.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hyperprof/internal/obs"
	"hyperprof/internal/stats"
)

// ErrExpired is returned for requests that were admitted but whose queue
// sojourn exceeded the CoDel target for a full interval: the server discards
// them at dequeue instead of burning service time on work the client has
// almost certainly given up on. An expired request is never also counted as
// shed — shedding happens at arrival, expiry at dequeue, and the two paths
// are mutually exclusive.
var ErrExpired = errors.New("netsim: request expired in queue")

// ErrThrottled is returned when a per-tenant QoS governor rejects an
// operation because the tenant is at its weighted admission share.
var ErrThrottled = errors.New("netsim: tenant throttled")

// ErrCircuitOpen is returned (without touching the network) for attempts
// against a target whose circuit breaker is open. It is retryable so replica
// rotation moves on to the next target.
var ErrCircuitOpen = errors.New("netsim: circuit breaker open")

// Admission configures a server's overload admission control. The zero value
// disables everything (unbounded queue, no expiry, no shedding), preserving
// pre-existing behaviour.
type Admission struct {
	// MaxQueue bounds the normal-priority request queue: an arrival finding
	// MaxQueue requests already waiting is shed with ErrOverloaded.
	// Priority requests get a separate 2x bound so system traffic survives
	// brownouts that saturate the user lane. 0 leaves the queue unbounded.
	MaxQueue int
	// Target is the CoDel sojourn target: as long as dequeued requests have
	// waited less than Target, nothing expires. 0 disables expiry.
	Target time.Duration
	// Interval is the CoDel grace window: once every dequeue has been above
	// Target continuously for Interval, further above-target requests are
	// expired with ErrExpired until sojourn drops below Target again.
	Interval time.Duration
	// ShedStartFrac arms utilization-driven shedding: when the queue is
	// fuller than this fraction of MaxQueue, arrivals are shed with
	// probability rising linearly from 0 at the threshold to 1 at a full
	// queue. 0 disables adaptive shedding.
	ShedStartFrac float64
	// Seed seeds the server's shedding stream; equal seeds replay
	// bit-identically in arrival order.
	Seed uint64
}

// enabled reports whether any admission mechanism is configured.
func (a Admission) enabled() bool {
	return a.MaxQueue > 0 || a.Target > 0 || a.ShedStartFrac > 0
}

// SetAdmission installs overload admission control on the server. It
// subsumes SetQueueLimit: the hard bound, the CoDel expiry parameters and
// the adaptive shedding threshold all come from one Admission value.
func (s *Server) SetAdmission(a Admission) {
	s.adm = a
	if a.MaxQueue > 0 {
		s.maxQueue = a.MaxQueue
	}
	if a.ShedStartFrac > 0 && s.shedRNG == nil {
		s.shedRNG = stats.NewRNG(a.Seed ^ 0x53484544) // "SHED"
	}
}

// admit runs the arrival-side admission checks for a request that has
// already passed the started/stopped/dedup gates. It returns nil to admit or
// the shedding error. Priority requests bypass adaptive shedding and get a
// doubled hard bound.
func (s *Server) admit(req Request) error {
	depth := s.queue.Len()
	limit := s.maxQueue
	if req.Priority && limit > 0 {
		limit *= 2
	}
	if limit > 0 && depth >= limit {
		s.Shed++
		s.Node.net.m.sheds.Inc()
		return fmt.Errorf("%w: %s (queue depth %d)", ErrOverloaded, s.Node.Name, depth)
	}
	if !req.Priority && s.adm.ShedStartFrac > 0 && s.maxQueue > 0 {
		frac := float64(depth) / float64(s.maxQueue)
		if frac >= s.adm.ShedStartFrac {
			p := (frac - s.adm.ShedStartFrac) / (1 - s.adm.ShedStartFrac)
			if s.shedRNG.Bool(p) {
				s.ShedAdaptive++
				s.Node.net.m.shedsAdaptive.Inc()
				return fmt.Errorf("%w: %s (adaptive shed at depth %d)", ErrOverloaded, s.Node.Name, depth)
			}
		}
	}
	return nil
}

// expireAtDequeue implements the CoDel dequeue side for one request: it
// reports whether the request should be expired instead of serviced, and
// maintains the above-target state machine. Priority requests are never
// expired but do reset the state when they dequeue quickly.
func (s *Server) expireAtDequeue(now time.Duration, c *inFlight) bool {
	if s.adm.Target <= 0 {
		return false
	}
	sojourn := now - c.enqueuedAt
	if sojourn < s.adm.Target {
		s.aboveSince = 0
		s.aboveSet = false
		return false
	}
	if !s.aboveSet {
		s.aboveSince = now
		s.aboveSet = true
		return false
	}
	if now-s.aboveSince < s.adm.Interval {
		return false
	}
	return !c.req.Priority
}

// breakerState is a circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one client's per-target circuit breaker: consecutive retryable
// failures open it, opens fast-fail without touching the network, and after
// the cooldown a single half-open probe decides whether to close or re-open.
type breaker struct {
	state    breakerState
	fails    int
	openedAt time.Duration
}

// Tenant is one workload tenant under a TenantGovernor: a name, a QoS
// weight, and admission/outcome accounting.
type Tenant struct {
	Name   string
	Weight float64

	// share is the tenant's reserved concurrency (weighted slice of the
	// governor's capacity, at least 1).
	share    int
	inFlight int

	// Admitted, Throttled, Successes and Failures count admission decisions
	// and completed-operation outcomes.
	Admitted  int
	Throttled int
	Successes int
	Failures  int
}

// TenantGovernor enforces weighted per-tenant admission over a shared
// concurrency capacity: each tenant gets a reserved share proportional to
// its weight, and an arrival finding its tenant at the share is throttled
// with ErrThrottled. Because shares are reservations (not borrowable), a
// flash-crowd tenant saturating its own share leaves every other tenant's
// capacity untouched — the starvation-isolation property the overload study
// asserts with its fairness index.
type TenantGovernor struct {
	capacity int
	tenants  []*Tenant

	// ThrottledTotal counts throttles across all tenants.
	ThrottledTotal int

	mThrottled *obs.Counter
}

// NewTenantGovernor creates a governor with the given total concurrency
// capacity (must be >= 1).
func NewTenantGovernor(capacity int) *TenantGovernor {
	if capacity < 1 {
		capacity = 1
	}
	return &TenantGovernor{capacity: capacity}
}

// AddTenant registers a tenant with a positive QoS weight and returns its
// handle. Shares are recomputed over all registered tenants: tenant i
// reserves max(1, floor(capacity * w_i / sum(w))) concurrent operations.
func (g *TenantGovernor) AddTenant(name string, weight float64) *Tenant {
	if weight <= 0 {
		weight = 1
	}
	t := &Tenant{Name: name, Weight: weight}
	g.tenants = append(g.tenants, t)
	var sum float64
	for _, tn := range g.tenants {
		sum += tn.Weight
	}
	for _, tn := range g.tenants {
		tn.share = int(float64(g.capacity) * tn.Weight / sum)
		if tn.share < 1 {
			tn.share = 1
		}
	}
	return t
}

// Tenants returns the registered tenants in registration order.
func (g *TenantGovernor) Tenants() []*Tenant { return g.tenants }

// Capacity returns the governor's total concurrency capacity.
func (g *TenantGovernor) Capacity() int { return g.capacity }

// Admit decides whether one operation of tenant t may start. Admitted
// operations must be completed with Done.
func (g *TenantGovernor) Admit(t *Tenant) bool {
	if t.inFlight >= t.share {
		t.Throttled++
		g.ThrottledTotal++
		g.mThrottled.Inc()
		return false
	}
	t.inFlight++
	t.Admitted++
	return true
}

// Done completes an operation previously admitted for tenant t.
func (g *TenantGovernor) Done(t *Tenant, success bool) {
	if t.inFlight > 0 {
		t.inFlight--
	}
	if success {
		t.Successes++
	} else {
		t.Failures++
	}
}

// EnableMetrics registers the governor's series: a throttle counter and one
// goodput gauge per tenant ("qos.tenant.<name>.goodput", the cumulative
// success count sampled on the sim clock). Tenant names are registered in
// sorted order so the export is deterministic regardless of registration
// order. A nil registry is a no-op.
func (g *TenantGovernor) EnableMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	g.mThrottled = r.Counter("qos.throttled")
	names := make([]string, 0, len(g.tenants))
	byName := make(map[string]*Tenant, len(g.tenants))
	for _, t := range g.tenants {
		names = append(names, t.Name)
		byName[t.Name] = t
	}
	sort.Strings(names)
	for _, name := range names {
		t := byName[name]
		r.GaugeFunc("qos.tenant."+name+".goodput", func() int64 { return int64(t.Successes) })
	}
}

// JainFairness returns Jain's fairness index over the tenants'
// weight-normalized success counts: 1.0 means every tenant got goodput
// exactly proportional to its weight, 1/n means one tenant got everything.
func (g *TenantGovernor) JainFairness() float64 {
	return JainFairness(g.tenants)
}

// JainFairness computes Jain's index over weight-normalized successes for an
// arbitrary tenant slice.
func JainFairness(tenants []*Tenant) float64 {
	var sum, sumSq float64
	n := 0
	for _, t := range tenants {
		x := float64(t.Successes) / t.Weight
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}
