package netsim

import (
	"errors"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// countingServer wires a handler that counts executions and sleeps for svc.
func countingServer(n *Network, name string, svc time.Duration, execs *int) *Server {
	s := NewServer(n.NewNode(name, 0, 0, 2), 2)
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		*execs++
		p.Sleep(svc)
		return Response{Payload: name}
	})
	s.Start()
	return s
}

func TestDedupSuppressesRetryReexecution(t *testing.T) {
	// A slow handler misses the client's first-attempt deadline; the retry
	// re-delivers the same call ID to the same server. With dedup on, the
	// handler must run once: the retry joins the in-flight execution and
	// returns its result.
	k, n := testNet()
	n.EnableDeliveryAccounting()
	client := n.NewNode("cli", 0, 0, 1)
	execs := 0
	s := countingServer(n, "srv", 3*time.Millisecond, &execs)
	s.SetDedup(true)

	c := NewClient(Policy{Deadline: 2 * time.Millisecond, MaxAttempts: 3}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.Call(p, client, s, Request{Method: "op"})
		s.Stop()
	})
	k.Run()
	if resp.Err != nil {
		t.Fatalf("resp.Err = %v (the joined retry should return the original result)", resp.Err)
	}
	if execs != 1 {
		t.Fatalf("handler executed %d times, want 1", execs)
	}
	if s.DupSuppressed == 0 {
		t.Fatal("DupSuppressed = 0, want at least 1 suppressed duplicate")
	}
	if dups := n.DupExecs(); len(dups) != 0 {
		t.Fatalf("DupExecs = %v, want none", dups)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestDedupReplaysCachedSuccess(t *testing.T) {
	// A second delivery arriving after the first finished replays the cached
	// response without executing the handler again.
	k, n := testNet()
	n.EnableDeliveryAccounting()
	client := n.NewNode("cli", 0, 0, 1)
	execs := 0
	s := countingServer(n, "srv", time.Millisecond, &execs)
	s.SetDedup(true)

	var second Response
	k.Go("client", func(p *sim.Proc) {
		req := Request{Method: "op", CallID: 42}
		if resp, _ := s.Call(p, client, req); resp.Err != nil {
			t.Errorf("first call failed: %v", resp.Err)
		}
		second, _ = s.Call(p, client, req)
		s.Stop()
	})
	k.Run()
	if second.Err != nil || second.Payload != "srv" {
		t.Fatalf("replayed resp = %+v", second)
	}
	if execs != 1 {
		t.Fatalf("handler executed %d times, want 1", execs)
	}
	if got := n.Admits("srv", 42); got != 2 {
		t.Fatalf("Admits = %d, want 2", got)
	}
	if got := n.Execs("srv", 42); got != 1 {
		t.Fatalf("Execs = %d, want 1", got)
	}
}

func TestWithoutDedupDuplicateExecutesTwice(t *testing.T) {
	// Control: the same double delivery without dedup runs the handler twice,
	// and delivery accounting reports the at-most-once violation.
	k, n := testNet()
	n.EnableDeliveryAccounting()
	client := n.NewNode("cli", 0, 0, 1)
	execs := 0
	s := countingServer(n, "srv", time.Millisecond, &execs)

	k.Go("client", func(p *sim.Proc) {
		req := Request{Method: "op", CallID: 42}
		s.Call(p, client, req)
		s.Call(p, client, req)
		s.Stop()
	})
	k.Run()
	if execs != 2 {
		t.Fatalf("handler executed %d times, want 2", execs)
	}
	dups := n.DupExecs()
	if len(dups) != 1 {
		t.Fatalf("DupExecs = %v, want exactly one violation", dups)
	}
}

func TestDedupDoesNotCacheFailures(t *testing.T) {
	// A crashed execution must not poison the cache: after the server is
	// replaced, a retry of the same call ID executes fresh.
	k, n := testNet()
	node := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	execs := 0
	mk := func() *Server {
		s := NewServer(node, 1)
		s.Handle("op", func(p *sim.Proc, req Request) Response {
			execs++
			p.Sleep(time.Millisecond)
			return Response{Payload: "ok"}
		})
		s.SetDedup(true)
		s.Start()
		return s
	}
	s := mk()
	var first, second Response
	k.Go("client", func(p *sim.Proc) {
		first, _ = s.Call(p, client, Request{Method: "op", CallID: 7})
		s2 := mk()
		second, _ = s2.Call(p, client, Request{Method: "op", CallID: 7})
		s2.Stop()
	})
	k.Schedule(500*time.Microsecond, s.Crash)
	k.Run()
	if !errors.Is(first.Err, ErrServerDown) {
		t.Fatalf("first = %+v, want crash error", first)
	}
	if second.Err != nil || second.Payload != "ok" {
		t.Fatalf("second = %+v, want fresh success", second)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestHedgedCallExecutesOncePerServer(t *testing.T) {
	// A hedged call sends the same call ID to two servers: each executes at
	// most once (two admits, two execs, no per-server duplicates), and the
	// slow primary's late completion is not double-counted anywhere.
	k, n := testNet()
	n.EnableDeliveryAccounting()
	client := n.NewNode("cli", 0, 0, 1)
	priExecs, bakExecs := 0, 0
	pri := countingServer(n, "pri", 100*time.Millisecond, &priExecs)
	bak := countingServer(n, "bak", time.Millisecond, &bakExecs)
	pri.SetDedup(true)
	bak.SetDedup(true)

	c := NewClient(Policy{HedgeDelay: 5 * time.Millisecond}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.CallHedged(p, client, []*Server{pri, bak}, Request{Method: "op"})
	})
	k.Run()
	if resp.Err != nil || resp.Payload != "bak" {
		t.Fatalf("resp = %+v, want backup's answer", resp)
	}
	if priExecs != 1 || bakExecs != 1 {
		t.Fatalf("execs pri=%d bak=%d, want 1 and 1", priExecs, bakExecs)
	}
	if dups := n.DupExecs(); len(dups) != 0 {
		t.Fatalf("DupExecs = %v, want none", dups)
	}
	if c.Hedges != 1 || c.HedgeWins != 1 {
		t.Fatalf("Hedges = %d, HedgeWins = %d, want 1/1", c.Hedges, c.HedgeWins)
	}
	pri.Stop()
	bak.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestHedgeWinsNotCountedForFailedBackup(t *testing.T) {
	// Regression: the backup fires first with a retryable failure, then the
	// primary succeeds. The primary's answer is adopted, so HedgeWins must
	// stay 0 — previously the backup's fast failure was counted as a win.
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	priExecs := 0
	pri := countingServer(n, "pri", 20*time.Millisecond, &priExecs)
	bak := NewServer(n.NewNode("bak", 0, 0, 1), 1) // never started: fails fast

	c := NewClient(Policy{HedgeDelay: 5 * time.Millisecond}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.CallHedged(p, client, []*Server{pri, bak}, Request{Method: "op"})
		pri.Stop()
	})
	k.Run()
	if resp.Err != nil || resp.Payload != "pri" {
		t.Fatalf("resp = %+v, want primary's success", resp)
	}
	if c.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", c.Hedges)
	}
	if c.HedgeWins != 0 {
		t.Fatalf("HedgeWins = %d, want 0: the failed backup did not win", c.HedgeWins)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestCallIDsDistinctAcrossClientsAndCalls(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	execs := 0
	s := countingServer(n, "srv", time.Millisecond, &execs)

	seen := map[uint64]bool{}
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		if req.CallID == 0 {
			t.Error("policy call delivered with zero CallID")
		}
		if seen[req.CallID] {
			t.Errorf("call ID %#x reused across logical calls", req.CallID)
		}
		seen[req.CallID] = true
		return Response{}
	})
	c1 := NewClient(Policy{MaxAttempts: 2}, 1)
	c2 := NewClient(Policy{MaxAttempts: 2}, 2)
	k.Go("clients", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			c1.Call(p, client, s, Request{Method: "op"})
			c2.Call(p, client, s, Request{Method: "op"})
		}
		s.Stop()
	})
	k.Run()
	if len(seen) != 6 {
		t.Fatalf("distinct call IDs = %d, want 6", len(seen))
	}
}
