package netsim

// This file implements client-side RPC resilience policies: per-call
// deadlines, retries with exponential backoff and deterministic jitter, and
// hedged backup requests after a p-quantile delay. Together with the
// server-side bounded queues these are the production mechanisms that shape
// the tail behaviour the paper's SLO discussion (§5.6) attributes to
// resilience machinery rather than raw service time.

import (
	"errors"
	"fmt"
	"time"

	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
)

// Policy configures client-side call resilience. The zero value is a plain
// call: no deadline, single attempt, no hedging — and takes a fast path that
// is event-for-event identical to Server.Call, so wiring a Client through a
// platform does not perturb fault-free runs.
type Policy struct {
	// Deadline bounds each attempt; 0 disables. An attempt that misses its
	// deadline returns ErrDeadlineExceeded; the late response is discarded
	// when it eventually arrives (its server-side work is wasted, as in
	// production).
	Deadline time.Duration
	// MaxAttempts is the total attempt budget including the first; values
	// below 1 mean 1 (no retry).
	MaxAttempts int
	// BackoffBase is the backoff before the first retry; it doubles each
	// further retry and is capped at BackoffMax. A zero base retries
	// immediately.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeQuantile, when in (0,1], arms hedging: once the client has
	// observed at least hedgeMinSamples completed calls, a backup request is
	// sent to the next replica if the primary has not answered within that
	// quantile of observed latencies. Before enough samples exist,
	// HedgeDelay (if nonzero) is used as the bootstrap delay.
	HedgeQuantile float64
	// HedgeDelay is the fixed (or bootstrap) hedge delay; 0 with a zero
	// HedgeQuantile disables hedging.
	HedgeDelay time.Duration
	// Retryable decides which errors are retried/failed-over; nil means
	// DefaultRetryable.
	Retryable func(error) bool

	// RetryBudget arms the per-client retry token bucket: the bucket starts
	// full at RetryBudget tokens, every retry spends one, and every
	// successful call refills RetryRefill tokens (capped at RetryBudget).
	// Retries therefore amplify only while the fleet is healthy — the
	// defense against retry-storm metastability. 0 disables budgeting.
	RetryBudget float64
	// RetryRefill is the token refill per success; 0 with a nonzero
	// RetryBudget means the default 0.1 (one retry earned per ten
	// successes).
	RetryRefill float64

	// BreakerFailures arms per-target circuit breakers: after this many
	// consecutive retryable failures against one target, the breaker opens
	// and attempts fast-fail with ErrCircuitOpen (no network traffic) until
	// BreakerCooldown has elapsed, when a single half-open probe decides
	// whether to close it. 0 disables breakers.
	BreakerFailures int
	BreakerCooldown time.Duration
}

// hedgeMinSamples is how many completed calls the client needs before it
// trusts its latency histogram for quantile-based hedge delays.
const hedgeMinSamples = 16

// DefaultRetryable reports whether an RPC error is safely retryable at
// another replica or a later time: connection-level failures (server down or
// not yet started), shed load, missed deadlines, and degradation drops.
// Application-level handler errors are not retryable by default.
func DefaultRetryable(err error) bool {
	return errors.Is(err, ErrServerDown) || errors.Is(err, ErrNotStarted) ||
		errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrNetDropped) || errors.Is(err, ErrExpired) ||
		errors.Is(err, ErrCircuitOpen)
}

// Client issues RPCs under a resilience policy and accounts what the policy
// did. It is not safe for concurrent use from real threads, but the
// simulation kernel's strict alternation makes per-kernel sharing safe.
type Client struct {
	policy Policy
	rng    *stats.RNG
	lats   stats.Summary

	// Call-ID assignment: id is handed out lazily by the network of the first
	// call's target, seq increments per logical call. Retries and hedges of
	// one logical call share its ID so servers can deduplicate them.
	id      uint64
	nextSeq uint64

	// Retry-budget state: the token bucket, shared by every call through
	// this client (see Policy.RetryBudget).
	budget float64
	// breakers holds one circuit breaker per target this client has called.
	breakers map[*Server]*breaker

	// Counters for reports and tests.
	Calls, Attempts, Retries int
	Hedges, HedgeWins        int
	Deadlines, Failovers     int
	// BudgetExhausted counts retries suppressed by an empty token bucket,
	// BreakerOpens counts closed/half-open -> open transitions, and
	// BreakerFastFails counts attempts answered with ErrCircuitOpen without
	// touching the network.
	BudgetExhausted  int
	BreakerOpens     int
	BreakerFastFails int
}

// NewClient creates a client with the given policy; seed drives backoff
// jitter (and nothing else), so equal seeds give bit-identical behaviour.
func NewClient(policy Policy, seed uint64) *Client {
	if policy.RetryBudget > 0 && policy.RetryRefill <= 0 {
		policy.RetryRefill = 0.1
	}
	return &Client{policy: policy, rng: stats.NewRNG(seed), budget: policy.RetryBudget}
}

// Policy returns the client's policy.
func (c *Client) Policy() Policy { return c.policy }

// callID mints the next logical call ID: client ID in the high bits, per-call
// sequence in the low. The client ID comes from the target's network so equal
// seeds on independent simulations stay bit-identical.
func (c *Client) callID(n *Network) uint64 {
	if c.id == 0 {
		n.nextClientID++
		c.id = uint64(n.nextClientID)
	}
	c.nextSeq++
	return c.id<<32 | c.nextSeq
}

func (c *Client) retryable(err error) bool {
	if c.policy.Retryable != nil {
		return c.policy.Retryable(err)
	}
	return DefaultRetryable(err)
}

// backoff returns the jittered backoff before retry number retry (1-based).
func (c *Client) backoff(retry int) time.Duration {
	if c.policy.BackoffBase <= 0 {
		return 0
	}
	d := c.policy.BackoffBase << uint(retry-1)
	if c.policy.BackoffMax > 0 && d > c.policy.BackoffMax {
		d = c.policy.BackoffMax
	}
	// Deterministic jitter: ±50% from the client's seeded stream, decorrelating
	// retry storms without real randomness.
	return time.Duration(c.rng.Jitter(float64(d), 0.5))
}

// observe records a completed call latency for quantile-based hedging.
func (c *Client) observe(d time.Duration) { c.lats.Add(float64(d)) }

// spendRetryToken takes one token from the retry budget, reporting whether
// the retry may proceed. With budgeting disabled it always allows. The check
// happens after the backoff sleep, so a concurrent call through the shared
// client can drain the bucket while this call backs off — exactly the
// behaviour that stops a storm already in flight.
func (c *Client) spendRetryToken(net *Network) bool {
	if c.policy.RetryBudget <= 0 {
		return true
	}
	if c.budget < 1 {
		c.BudgetExhausted++
		net.m.budgetExhausted.Inc()
		return false
	}
	c.budget--
	return true
}

// refillBudget credits the bucket for one successful call.
func (c *Client) refillBudget() {
	if c.policy.RetryBudget <= 0 {
		return
	}
	c.budget += c.policy.RetryRefill
	if c.budget > c.policy.RetryBudget {
		c.budget = c.policy.RetryBudget
	}
}

// RetryTokens returns the current retry-budget balance (tests/monitoring).
func (c *Client) RetryTokens() float64 { return c.budget }

// breakerFor returns the target's breaker, creating it on first use; nil
// when breakers are disabled.
func (c *Client) breakerFor(s *Server) *breaker {
	if c.policy.BreakerFailures <= 0 {
		return nil
	}
	if c.breakers == nil {
		c.breakers = map[*Server]*breaker{}
	}
	b := c.breakers[s]
	if b == nil {
		b = &breaker{}
		c.breakers[s] = b
	}
	return b
}

// breakerAllows decides whether an attempt against s may go out now. An
// open breaker whose cooldown has elapsed moves to half-open and admits this
// one attempt as the probe; while half-open, every other attempt fast-fails.
func (c *Client) breakerAllows(s *Server, now time.Duration) bool {
	b := c.breakerFor(s)
	if b == nil {
		return true
	}
	switch b.state {
	case breakerOpen:
		if now-b.openedAt >= c.policy.BreakerCooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	case breakerHalfOpen:
		return false
	}
	return true
}

// noteResult feeds one definite attempt outcome into the target's breaker:
// any success (or non-retryable application error — the server is healthy,
// the request was wrong) closes it; consecutive retryable failures open it,
// and a failed half-open probe re-opens it immediately.
func (c *Client) noteResult(s *Server, err error, now time.Duration) {
	b := c.breakerFor(s)
	if b == nil {
		return
	}
	if err == nil || !c.retryable(err) {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= c.policy.BreakerFailures {
		if b.state != breakerOpen {
			c.BreakerOpens++
			s.Node.net.m.breakerOpens.Inc()
		}
		b.state = breakerOpen
		b.openedAt = now
	}
}

// BreakerOpenFor reports whether the client's breaker for s is currently
// open (tests/monitoring).
func (c *Client) BreakerOpenFor(s *Server) bool {
	if c.policy.BreakerFailures <= 0 || c.breakers == nil {
		return false
	}
	b := c.breakers[s]
	return b != nil && b.state == breakerOpen
}

// hedgeDelay returns the current hedge trigger delay, or 0 if hedging is
// disabled.
func (c *Client) hedgeDelay() time.Duration {
	if c.policy.HedgeQuantile > 0 && c.lats.N() >= hedgeMinSamples {
		return time.Duration(c.lats.Quantile(c.policy.HedgeQuantile))
	}
	return c.policy.HedgeDelay
}

// attempt performs one attempt against s, honoring the per-attempt deadline.
// Without a deadline it calls inline (zero overhead); with one, the attempt
// runs in a helper process so the caller can give up at the deadline while
// the attempt drains in the background (every server failure mode produces a
// response, so helpers never leak).
func (c *Client) attempt(p *sim.Proc, from *Node, s *Server, req Request) Response {
	c.Attempts++
	s.Node.net.m.attempts.Inc()
	if c.policy.Deadline <= 0 {
		resp, _ := s.Call(p, from, req)
		return resp
	}
	k := s.Node.net.k
	var resp Response
	done := sim.NewSignal(k)
	k.Go(fmt.Sprintf("rpc-attempt/%s", req.Method), func(ap *sim.Proc) {
		r, _ := s.Call(ap, from, req)
		resp = r
		done.Fire()
	})
	gate := sim.NewSignal(k)
	done.OnFire(gate.Fire)
	k.Schedule(c.policy.Deadline, gate.Fire)
	p.Wait(gate)
	if !done.Fired() {
		c.Deadlines++
		s.Node.net.m.deadlines.Inc()
		return Response{Err: fmt.Errorf("%w: %s after %v", ErrDeadlineExceeded, req.Method, c.policy.Deadline)}
	}
	return resp
}

// Call performs a policy-driven RPC against a single server: deadline per
// attempt, retries with exponential backoff and jitter.
func (c *Client) Call(p *sim.Proc, from *Node, s *Server, req Request) (Response, time.Duration) {
	return c.CallAny(p, from, []*Server{s}, req)
}

// CallAny performs a policy-driven RPC that fails over across targets:
// attempt i goes to targets[i mod len(targets)], so retries rotate through
// the replica set. It returns the last response and total elapsed time.
func (c *Client) CallAny(p *sim.Proc, from *Node, targets []*Server, req Request) (Response, time.Duration) {
	if len(targets) == 0 {
		return Response{Err: fmt.Errorf("netsim: no targets for %s", req.Method)}, 0
	}
	net := targets[0].Node.net
	c.Calls++
	net.m.calls.Inc()
	if req.CallID == 0 {
		req.CallID = c.callID(net)
	}
	start := p.Now()
	attempts := c.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var resp Response
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Sleep the backoff before spending the token: a concurrent call
			// through the shared client may drain the bucket meanwhile, which
			// is what cuts off a storm already in flight.
			p.Sleep(c.backoff(i))
			if !c.spendRetryToken(net) {
				break
			}
			c.Retries++
			net.m.retries.Inc()
			if targets[i%len(targets)] != targets[(i-1)%len(targets)] {
				c.Failovers++
				net.m.failovers.Inc()
			}
		}
		target := targets[i%len(targets)]
		if !c.breakerAllows(target, p.Now()) {
			c.BreakerFastFails++
			net.m.breakerFastFails.Inc()
			resp = Response{Err: fmt.Errorf("%w: %s", ErrCircuitOpen, target.Node.Name)}
		} else {
			resp = c.attempt(p, from, target, req)
			c.noteResult(target, resp.Err, p.Now())
		}
		if resp.Err == nil || !c.retryable(resp.Err) {
			break
		}
	}
	elapsed := p.Now() - start
	if resp.Err == nil {
		c.observe(elapsed)
		c.refillBudget()
	}
	return resp, elapsed
}

// CallHedged performs a policy-driven RPC with a hedged backup: the primary
// goes to targets[0]; if it has not answered within the hedge delay (the
// policy's latency quantile once observed, HedgeDelay before that), a backup
// request is sent to targets[1] and the first successful response wins. With
// hedging disabled or fewer than two targets it degrades to CallAny.
func (c *Client) CallHedged(p *sim.Proc, from *Node, targets []*Server, req Request) (Response, time.Duration) {
	hd := c.hedgeDelay()
	if hd <= 0 || len(targets) < 2 {
		return c.CallAny(p, from, targets, req)
	}
	net := targets[0].Node.net
	c.Calls++
	net.m.calls.Inc()
	if req.CallID == 0 {
		req.CallID = c.callID(net)
	}
	start := p.Now()
	k := net.k

	launch := func(s *Server) (*Response, *sim.Signal) {
		var resp Response
		done := sim.NewSignal(k)
		c.Attempts++
		net.m.attempts.Inc()
		k.Go(fmt.Sprintf("rpc-hedge/%s", req.Method), func(ap *sim.Proc) {
			r, _ := s.Call(ap, from, req)
			resp = r
			c.noteResult(s, r.Err, ap.Now())
			done.Fire()
		})
		return &resp, done
	}

	priResp, priDone := launch(targets[0])
	gate := sim.NewSignal(k)
	priDone.OnFire(gate.Fire)
	k.Schedule(hd, gate.Fire)
	p.Wait(gate)

	resp := *priResp
	fromBackup := false
	if !priDone.Fired() && !c.breakerAllows(targets[1], p.Now()) {
		// The backup's breaker is open: hedging would only hammer a target
		// already deemed unhealthy, so wait out the primary instead.
		c.BreakerFastFails++
		net.m.breakerFastFails.Inc()
		p.Wait(priDone)
		resp = *priResp
	} else if !priDone.Fired() {
		// Primary is straggling: send the backup and take the first answer.
		c.Hedges++
		net.m.hedges.Inc()
		bakResp, bakDone := launch(targets[1])
		first := sim.NewSignal(k)
		priDone.OnFire(first.Fire)
		bakDone.OnFire(first.Fire)
		p.Wait(first)
		switch {
		case bakDone.Fired() && (!priDone.Fired() || (*priResp).Err != nil):
			resp = *bakResp
			fromBackup = true
		case priDone.Fired():
			resp = *priResp
		}
		// If the winner failed retryably and the other attempt is still out,
		// wait for it rather than giving up with a losable error.
		if resp.Err != nil && c.retryable(resp.Err) {
			both := sim.NewSignal(k)
			remaining := 0
			for _, d := range []*sim.Signal{priDone, bakDone} {
				if !d.Fired() {
					remaining++
					d.OnFire(both.Fire)
				}
			}
			if remaining > 0 {
				p.Wait(both)
				if bakDone.Fired() && (*bakResp).Err == nil {
					resp = *bakResp
					fromBackup = true
				} else if priDone.Fired() && (*priResp).Err == nil {
					resp = *priResp
					fromBackup = false
				}
			}
		}
		// A hedge win means the backup's *successful* response is the one the
		// caller gets. A backup that raced ahead only to fail — while the
		// primary's success was ultimately adopted — is not a win.
		if fromBackup && resp.Err == nil {
			c.HedgeWins++
			net.m.hedgeWins.Inc()
		}
	}
	elapsed := p.Now() - start
	if resp.Err == nil {
		c.observe(elapsed)
	}
	return resp, elapsed
}
