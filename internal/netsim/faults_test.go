package netsim

import (
	"errors"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// Tests for the server failure modes (crash, shedding, straggler) and
// injected network degradation, plus the Stop drain-semantics contract.

func TestCrashFailsQueuedAndInServiceRequests(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{Payload: "done"}
	})
	s.Start()

	var resps [2]Response
	for i := 0; i < 2; i++ {
		i := i
		k.Go("client", func(p *sim.Proc) {
			resps[i], _ = s.Call(p, client, Request{Method: "slow"})
		})
	}
	// First call is in service, second queued when the crash lands at 5ms.
	k.Schedule(5*time.Millisecond, s.Crash)
	k.Run()

	for i, r := range resps {
		if !errors.Is(r.Err, ErrServerDown) {
			t.Fatalf("resps[%d].Err = %v, want ErrServerDown", i, r.Err)
		}
	}
	if !s.Crashed() || !s.Stopped() {
		t.Fatal("Crashed()/Stopped() should both report true")
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}

	// Callers learned of the failure at crash time, not at handler completion.
	var after Response
	k.Go("late", func(p *sim.Proc) {
		after, _ = s.Call(p, client, Request{Method: "slow"})
	})
	k.Run()
	if !errors.Is(after.Err, ErrServerDown) {
		t.Fatalf("call to crashed server err = %v, want ErrServerDown", after.Err)
	}
}

func TestCrashUnblocksCallersImmediately(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Second)
		return Response{}
	})
	s.Start()
	var doneAt time.Duration
	k.Go("client", func(p *sim.Proc) {
		s.Call(p, client, Request{Method: "slow"})
		doneAt = p.Now()
	})
	k.Schedule(3*time.Millisecond, s.Crash)
	k.Run()
	// The caller observes the failure at crash time + response transfer,
	// far before the 1s handler would have completed.
	if doneAt >= 10*time.Millisecond {
		t.Fatalf("caller unblocked at %v, want ~3ms", doneAt)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestBoundedQueueShedsLoad(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.SetQueueLimit(1)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{}
	})
	s.Start()
	var overloaded, ok int
	for i := 0; i < 3; i++ {
		k.Go("client", func(p *sim.Proc) {
			resp, _ := s.Call(p, client, Request{Method: "slow"})
			switch {
			case errors.Is(resp.Err, ErrOverloaded):
				overloaded++
			case resp.Err == nil:
				ok++
			default:
				t.Errorf("unexpected err: %v", resp.Err)
			}
		})
	}
	k.Run()
	// 1 in service + 1 queued; the third is shed.
	if ok != 2 || overloaded != 1 || s.Shed != 1 {
		t.Fatalf("ok=%d overloaded=%d Shed=%d, want 2/1/1", ok, overloaded, s.Shed)
	}
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestStragglerSlowdownStretchesServiceTime(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{}
	})
	s.Start()
	s.SetSlowdown(3)
	var elapsed time.Duration
	k.Go("client", func(p *sim.Proc) {
		_, elapsed = s.Call(p, client, Request{Method: "op"})
		s.SetSlowdown(1) // clear
		_, e2 := s.Call(p, client, Request{Method: "op"})
		if e2 >= elapsed {
			t.Errorf("clearing slowdown did not restore service time: %v vs %v", e2, elapsed)
		}
		s.Stop()
	})
	k.Run()
	xfer := n.TransferTime(client, server, 0)
	want := 2*xfer + 30*time.Millisecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v (3x slowdown)", elapsed, want)
	}
}

func TestNetworkDegradationAddsDelay(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("op", func(p *sim.Proc, req Request) Response { return Response{} })
	s.Start()
	var normal, degraded time.Duration
	k.Go("client", func(p *sim.Proc) {
		_, normal = s.Call(p, client, Request{Method: "op"})
		n.Degrade(5*time.Millisecond, 0, 1)
		if !n.Degraded() {
			t.Error("Degraded() false after Degrade")
		}
		_, degraded = s.Call(p, client, Request{Method: "op"})
		n.Restore()
		if n.Degraded() {
			t.Error("Degraded() true after Restore")
		}
		_, e3 := s.Call(p, client, Request{Method: "op"})
		if e3 != normal {
			t.Errorf("post-restore elapsed = %v, want %v", e3, normal)
		}
		s.Stop()
	})
	k.Run()
	// Both message legs pay the extra delay.
	if degraded != normal+10*time.Millisecond {
		t.Fatalf("degraded = %v, normal = %v, want +10ms", degraded, normal)
	}
}

func TestNetworkDegradationDropsRequests(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("op", func(p *sim.Proc, req Request) Response { return Response{} })
	s.Start()
	n.Degrade(0, 1, 7) // drop everything
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = s.Call(p, client, Request{Method: "op"})
		s.Stop()
	})
	k.Run()
	if !errors.Is(resp.Err, ErrNetDropped) {
		t.Fatalf("err = %v, want ErrNetDropped", resp.Err)
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d (drops must not black-hole callers)", k.Live())
	}
}

func TestLocalCallsExemptFromDegradation(t *testing.T) {
	k, n := testNet()
	node := n.NewNode("srv", 0, 0, 1)
	s := NewServer(node, 1)
	s.Handle("op", func(p *sim.Proc, req Request) Response { return Response{} })
	s.Start()
	n.Degrade(5*time.Millisecond, 1, 7)
	var resp Response
	var elapsed time.Duration
	k.Go("client", func(p *sim.Proc) {
		resp, elapsed = s.Call(p, node, Request{Method: "op"})
		s.Stop()
	})
	k.Run()
	if resp.Err != nil || elapsed != 0 {
		t.Fatalf("local call under degradation: err=%v elapsed=%v, want nil/0", resp.Err, elapsed)
	}
}

// TestStopDrainSemantics pins the documented contract: a request admitted
// (arrived) before Stop completes normally; one arriving after Stop observes
// ErrServerDown. The arrival instant is the sole deciding fact.
func TestStopDrainSemantics(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{Payload: "done"}
	})
	s.Start()

	var inService, queued, late Response
	k.Go("c1", func(p *sim.Proc) { // in service when Stop lands
		inService, _ = s.Call(p, client, Request{Method: "slow"})
	})
	k.Go("c2", func(p *sim.Proc) { // queued behind c1 when Stop lands
		queued, _ = s.Call(p, client, Request{Method: "slow"})
	})
	k.Schedule(5*time.Millisecond, s.Stop) // both admitted, neither finished
	k.Go("c3", func(p *sim.Proc) {         // arrives after Stop
		p.Sleep(6 * time.Millisecond)
		late, _ = s.Call(p, client, Request{Method: "slow"})
	})
	k.Run()

	if inService.Err != nil || inService.Payload != "done" {
		t.Fatalf("in-service call = %+v, want drained to completion", inService)
	}
	if queued.Err != nil || queued.Payload != "done" {
		t.Fatalf("queued call = %+v, want drained to completion", queued)
	}
	if !errors.Is(late.Err, ErrServerDown) {
		t.Fatalf("post-Stop arrival err = %v, want ErrServerDown", late.Err)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}
