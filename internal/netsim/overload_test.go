package netsim

import (
	"errors"
	"testing"
	"time"

	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
)

// TestAdmissionHardBoundAndPriorityLane fills a 1-worker server's bounded
// queue with slow requests and checks: a further normal arrival is shed with
// ErrOverloaded, while a priority arrival is admitted (doubled bound) and
// overtakes the backlog.
func TestAdmissionHardBoundAndPriorityLane(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.SetAdmission(Admission{MaxQueue: 2})
	var order []string
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		order = append(order, req.Payload.(string))
		return Response{}
	})
	s.Start()

	var shedErr, priErr error
	// n1 goes straight to the idle worker; n2 and n3 occupy the two queue
	// slots; n4 finds the queue full and is shed; the priority request uses
	// the doubled bound and jumps the backlog.
	for i, name := range []string{"n1", "n2", "n3"} {
		name := name
		_ = i
		k.Go(name, func(p *sim.Proc) {
			resp, _ := s.Call(p, client, Request{Method: "op", Payload: name})
			if resp.Err != nil {
				t.Errorf("%s: unexpected error %v", name, resp.Err)
			}
		})
	}
	k.Go("n4", func(p *sim.Proc) {
		resp, _ := s.Call(p, client, Request{Method: "op", Payload: "n4"})
		shedErr = resp.Err
	})
	k.Go("pri", func(p *sim.Proc) {
		resp, _ := s.Call(p, client, Request{Method: "op", Payload: "pri", Priority: true})
		priErr = resp.Err
	})
	k.Run()

	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("normal arrival past bound: err = %v, want ErrOverloaded", shedErr)
	}
	if priErr != nil {
		t.Fatalf("priority arrival: err = %v, want admitted", priErr)
	}
	if s.Shed != 1 || s.ShedAdaptive != 0 || s.Expired != 0 {
		t.Fatalf("Shed=%d ShedAdaptive=%d Expired=%d, want 1/0/0", s.Shed, s.ShedAdaptive, s.Expired)
	}
	// Service order: n1 was in service, then the priority request overtakes
	// the queued n2 and n3.
	want := []string{"n1", "pri", "n2", "n3"}
	if len(order) != len(want) {
		t.Fatalf("served %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

// TestAdaptiveShedRampsWithDepth drives arrivals into a deep standing queue
// and checks that probabilistic shedding engages between the threshold and
// the hard bound, deterministically for a fixed seed.
func TestAdaptiveShedRampsWithDepth(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.SetAdmission(Admission{MaxQueue: 20, ShedStartFrac: 0.5, Seed: 7})
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{}
	})
	s.Start()
	var admitted, shed int
	k.Go("storm", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			k.Go("call", func(cp *sim.Proc) {
				resp, _ := s.Call(cp, client, Request{Method: "op"})
				if resp.Err == nil {
					admitted++
				} else if errors.Is(resp.Err, ErrOverloaded) {
					shed++
				}
			})
			p.Sleep(50 * time.Microsecond) // 20000/s offered vs 1000/s capacity
		}
	})
	k.Run()
	if s.ShedAdaptive == 0 {
		t.Fatalf("adaptive shedding never engaged (Shed=%d ShedAdaptive=%d)", s.Shed, s.ShedAdaptive)
	}
	if admitted+shed != 200 {
		t.Fatalf("admitted %d + shed %d != 200", admitted, shed)
	}
	// Replay with the same seed must give identical decisions.
	k2, _, _, client2, s2 := policyFixture(1)
	s2.SetAdmission(Admission{MaxQueue: 20, ShedStartFrac: 0.5, Seed: 7})
	s2.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{}
	})
	s2.Start()
	k2.Go("storm", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			k2.Go("call", func(cp *sim.Proc) { s2.Call(cp, client2, Request{Method: "op"}) })
			p.Sleep(50 * time.Microsecond)
		}
	})
	k2.Run()
	if s2.Shed != s.Shed || s2.ShedAdaptive != s.ShedAdaptive {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", s2.Shed, s2.ShedAdaptive, s.Shed, s.ShedAdaptive)
	}
}

// TestCoDelExpiryCountedOnceNotTwice is the satellite edge case: with a
// bounded queue AND queue-deadline expiry armed, each failed request is
// counted in exactly one bucket — shed at arrival or expired at dequeue,
// never both.
func TestCoDelExpiryCountedOnceNotTwice(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.SetAdmission(Admission{MaxQueue: 2, Target: time.Millisecond, Interval: 2 * time.Millisecond})
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{}
	})
	s.Start()
	var overloaded, expired, ok int
	for i := 0; i < 4; i++ {
		k.Go("call", func(p *sim.Proc) {
			resp, _ := s.Call(p, client, Request{Method: "op"})
			switch {
			case resp.Err == nil:
				ok++
			case errors.Is(resp.Err, ErrOverloaded):
				overloaded++
			case errors.Is(resp.Err, ErrExpired):
				expired++
			default:
				t.Errorf("unexpected error: %v", resp.Err)
			}
		})
	}
	k.Run()
	// c1 runs immediately; c2 and c3 queue; c4 is shed at the hard bound.
	// c2 dequeues at 10ms with sojourn over target (arms the CoDel state but
	// is serviced); c3 dequeues at 20ms, still above target a full interval
	// later, and expires.
	if ok != 2 || overloaded != 1 || expired != 1 {
		t.Fatalf("ok=%d overloaded=%d expired=%d, want 2/1/1", ok, overloaded, expired)
	}
	if s.Shed != 1 || s.Expired != 1 {
		t.Fatalf("server counters Shed=%d Expired=%d, want 1/1", s.Shed, s.Expired)
	}
	if s.Shed+s.ShedAdaptive+s.Expired != overloaded+expired {
		t.Fatalf("a request was double-counted: server %d+%d+%d vs client %d+%d",
			s.Shed, s.ShedAdaptive, s.Expired, overloaded, expired)
	}
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

// TestRetryBudgetExhaustedMidBackoff is the satellite edge case: two calls
// share a client whose bucket holds one token; both fail their first attempt
// and back off, the first waker spends the last token, and the second finds
// the bucket empty when its backoff ends — the retry it already committed to
// is suppressed.
func TestRetryBudgetExhaustedMidBackoff(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	// Server never started: every attempt fails fast with ErrNotStarted.
	c := NewClient(Policy{
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		RetryBudget: 1,
	}, 42)
	var errs []error
	for i := 0; i < 2; i++ {
		k.Go("call", func(p *sim.Proc) {
			resp, _ := c.Call(p, client, s, Request{Method: "op"})
			errs = append(errs, resp.Err)
		})
	}
	k.Run()
	if c.BudgetExhausted == 0 {
		t.Fatalf("budget never exhausted (Retries=%d, tokens=%v)", c.Retries, c.RetryTokens())
	}
	if c.Retries != 1 {
		t.Fatalf("Retries = %d, want exactly the 1 budgeted retry", c.Retries)
	}
	for _, err := range errs {
		if !errors.Is(err, ErrNotStarted) {
			t.Fatalf("err = %v, want ErrNotStarted", err)
		}
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

// TestRetryBudgetRefillsOnSuccess checks the token-bucket refill: successes
// credit RetryRefill tokens up to the cap, re-arming retries only while the
// fleet is healthy.
func TestRetryBudgetRefillsOnSuccess(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.Handle("op", func(p *sim.Proc, req Request) Response { return Response{} })
	s.Start()
	c := NewClient(Policy{MaxAttempts: 2, RetryBudget: 2, RetryRefill: 0.5}, 1)
	// Drain the bucket: impossible method errors are application-level and
	// not retryable, so instead drain via a second, never-started server.
	dead := NewServer(s.Node.net.NewNode("dead", 0, 0, 1), 1)
	k.Go("drain", func(p *sim.Proc) {
		c.Call(p, client, dead, Request{Method: "op"}) // spends 1 token
		c.Call(p, client, dead, Request{Method: "op"}) // spends 1 token
		if c.RetryTokens() != 0 {
			t.Errorf("tokens = %v after drain, want 0", c.RetryTokens())
		}
		for i := 0; i < 3; i++ {
			c.Call(p, client, s, Request{Method: "op"})
		}
		if c.RetryTokens() != 1.5 {
			t.Errorf("tokens = %v after 3 successes, want 1.5", c.RetryTokens())
		}
	})
	k.Run()
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

// TestBreakerOpensFastFailsAndProbes walks the breaker lifecycle: consecutive
// failures open it, opens fast-fail without network attempts, the cooldown
// admits a single half-open probe, and a probe success closes it.
func TestBreakerOpensFastFailsAndProbes(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	healthy := false
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		if !healthy {
			p.Sleep(10 * time.Millisecond) // force the deadline to trip
		}
		return Response{}
	})
	s.Start()
	c := NewClient(Policy{
		Deadline:        time.Millisecond,
		MaxAttempts:     1,
		BreakerFailures: 3,
		BreakerCooldown: 20 * time.Millisecond,
	}, 9)
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			resp, _ := c.Call(p, client, s, Request{Method: "op"})
			if !errors.Is(resp.Err, ErrDeadlineExceeded) {
				t.Errorf("call %d: err = %v, want deadline", i, resp.Err)
			}
		}
		if !c.BreakerOpenFor(s) {
			t.Errorf("breaker not open after 3 consecutive failures")
		}
		attemptsBefore := c.Attempts
		resp, _ := c.Call(p, client, s, Request{Method: "op"})
		if !errors.Is(resp.Err, ErrCircuitOpen) {
			t.Errorf("open-breaker call: err = %v, want ErrCircuitOpen", resp.Err)
		}
		if c.Attempts != attemptsBefore {
			t.Errorf("open breaker sent a network attempt")
		}
		if c.BreakerFastFails != 1 {
			t.Errorf("BreakerFastFails = %d, want 1", c.BreakerFastFails)
		}
		// Wait out the cooldown; the next call is the half-open probe and
		// succeeds, closing the breaker.
		healthy = true
		p.Sleep(25 * time.Millisecond)
		resp, _ = c.Call(p, client, s, Request{Method: "op"})
		if resp.Err != nil {
			t.Errorf("probe call failed: %v", resp.Err)
		}
		if c.BreakerOpenFor(s) {
			t.Errorf("breaker still open after successful probe")
		}
		if c.BreakerOpens != 1 {
			t.Errorf("BreakerOpens = %d, want 1", c.BreakerOpens)
		}
	})
	k.Run()
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

// TestHedgeSuppressedWhenBackupBreakerOpen is the satellite edge case: a
// hedged call whose backup target's breaker is open must not send the hedge —
// it waits out the primary instead of hammering the unhealthy backup.
func TestHedgeSuppressedWhenBackupBreakerOpen(t *testing.T) {
	k, n, _, client, s := policyFixture(1)
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(5 * time.Millisecond) // slow enough to trip the hedge delay
		return Response{Payload: "primary"}
	})
	s.Start()
	backup := NewServer(n.NewNode("backup", 0, 0, 4), 1)
	// backup never started: attempts against it fail with ErrNotStarted.
	c := NewClient(Policy{
		MaxAttempts:     1,
		HedgeDelay:      time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: time.Second,
	}, 3)
	k.Go("driver", func(p *sim.Proc) {
		// Open the backup's breaker through the public call path.
		for i := 0; i < 2; i++ {
			c.Call(p, client, backup, Request{Method: "op"})
		}
		if !c.BreakerOpenFor(backup) {
			t.Fatalf("backup breaker not open")
		}
		hedgesBefore, fastFailsBefore := c.Hedges, c.BreakerFastFails
		resp, _ := c.CallHedged(p, client, []*Server{s, backup}, Request{Method: "op"})
		if resp.Err != nil || resp.Payload != "primary" {
			t.Errorf("hedged call = %+v, want primary success", resp)
		}
		if c.Hedges != hedgesBefore {
			t.Errorf("hedge was sent despite open backup breaker")
		}
		if c.BreakerFastFails != fastFailsBefore+1 {
			t.Errorf("BreakerFastFails = %d, want %d", c.BreakerFastFails, fastFailsBefore+1)
		}
	})
	k.Run()
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

// TestTenantGovernorIsolationAndFairness checks the reserved weighted shares:
// a flash-crowd tenant saturating its own share is throttled there while the
// other tenants' admissions are untouched, and the fairness index reflects
// weight-normalized goodput.
func TestTenantGovernorIsolationAndFairness(t *testing.T) {
	g := NewTenantGovernor(10)
	a := g.AddTenant("interactive", 3)
	b := g.AddTenant("batch", 1)
	fl := g.AddTenant("flash", 1)
	// Shares: 10*3/5=6, 10*1/5=2, 10*1/5=2.

	// Flash crowd: 50 arrivals, only its share of 2 admitted.
	for i := 0; i < 50; i++ {
		if g.Admit(fl) {
			continue
		}
	}
	if fl.Admitted != 2 || fl.Throttled != 48 {
		t.Fatalf("flash Admitted=%d Throttled=%d, want 2/48", fl.Admitted, fl.Throttled)
	}
	// The other tenants still get their full shares despite the crowd.
	for i := 0; i < 6; i++ {
		if !g.Admit(a) {
			t.Fatalf("interactive throttled at inFlight=%d, share should be 6", i)
		}
	}
	if g.Admit(a) {
		t.Fatalf("interactive admitted past its share")
	}
	for i := 0; i < 2; i++ {
		if !g.Admit(b) {
			t.Fatalf("batch throttled at inFlight=%d, share should be 2", i)
		}
	}
	// Complete everything successfully and check fairness accounting.
	for i := 0; i < 6; i++ {
		g.Done(a, true)
	}
	for i := 0; i < 2; i++ {
		g.Done(b, true)
	}
	for i := 0; i < 2; i++ {
		g.Done(fl, true)
	}
	// Weight-normalized goodput: 6/3=2, 2/1=2, 2/1=2 — perfectly fair.
	if f := g.JainFairness(); f < 0.999 {
		t.Fatalf("fairness = %v, want ~1.0 for proportional goodput", f)
	}
	if g.ThrottledTotal != 49 {
		t.Fatalf("ThrottledTotal = %d, want 49", g.ThrottledTotal)
	}
}

// overloadRun drives a fixed open-loop Poisson arrival schedule against one
// echo server and returns goodput (successful completions) per 100ms window,
// indexed by completion time. The trigger is an 8x service-time brownout over
// [500ms, 800ms). Arrival draws come from a dedicated RNG so the schedule is
// identical across configurations — only the control plane differs.
func overloadRun(t *testing.T, pol Policy, adm Admission) []int {
	t.Helper()
	k, n := testNet()
	serverNode := n.NewNode("srv", 0, 0, 8)
	clientNode := n.NewNode("cli", 0, 0, 8)
	s := NewServer(serverNode, 4) // 4 workers x 1ms service = 4000/s capacity
	if adm.enabled() {
		s.SetAdmission(adm)
	}
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{}
	})
	s.Start()
	c := NewClient(pol, 99)

	const (
		horizon  = 2 * time.Second
		window   = 100 * time.Millisecond
		meanGap  = 312500 * time.Nanosecond // ~3200/s offered (80% of capacity)
		trigAt   = 500 * time.Millisecond
		trigEnd  = 800 * time.Millisecond
		trigMult = 8.0
	)
	k.Schedule(trigAt, func() { s.SetSlowdown(trigMult) })
	k.Schedule(trigEnd, func() { s.SetSlowdown(1) })

	windows := make([]int, int(horizon/window)+1)
	arrivals := stats.NewRNG(1234)
	k.Go("open-loop", func(p *sim.Proc) {
		for {
			p.Sleep(time.Duration(arrivals.Exp(float64(meanGap))))
			if p.Now() >= horizon {
				return
			}
			k.Go("op", func(op *sim.Proc) {
				resp, _ := c.Call(op, clientNode, s, Request{Method: "op"})
				if resp.Err == nil {
					w := int(op.Now() / window)
					if w < len(windows) {
						windows[w]++
					}
				}
			})
		}
	})
	k.Run()
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
	return windows
}

// TestRetryStormMetastability is the acceptance-criteria regression test: an
// open-loop workload at 80% utilization with a transient 8x brownout. The
// naive configuration (unbounded queue, eager retries, no budget) enters a
// metastable state — goodput stays collapsed long after the trigger clears,
// because retry amplification keeps offered load above capacity and the
// standing queue keeps every request past its deadline. The overload plane
// (bounded queue + CoDel expiry + adaptive shed + retry budget + breaker)
// recovers to healthy goodput.
func TestRetryStormMetastability(t *testing.T) {
	naivePol := Policy{
		Deadline:    20 * time.Millisecond,
		MaxAttempts: 4,
		BackoffBase: 500 * time.Microsecond,
		BackoffMax:  2 * time.Millisecond,
	}
	protectedPol := naivePol
	protectedPol.RetryBudget = 50
	protectedPol.RetryRefill = 0.1
	protectedPol.BreakerFailures = 10
	protectedPol.BreakerCooldown = 50 * time.Millisecond
	adm := Admission{
		MaxQueue:      64,
		Target:        5 * time.Millisecond,
		Interval:      20 * time.Millisecond,
		ShedStartFrac: 0.5,
		Seed:          77,
	}

	naive := overloadRun(t, naivePol, Admission{})
	protected := overloadRun(t, protectedPol, adm)

	// Goodput in completions per window: pre-trigger [0, 500ms), and the
	// post-trigger steady state [1500ms, 2000ms) — 700ms after the trigger
	// cleared.
	sum := func(w []int, from, to int) int {
		total := 0
		for i := from; i < to && i < len(w); i++ {
			total += w[i]
		}
		return total
	}
	naivePre, naivePost := sum(naive, 0, 5), sum(naive, 15, 20)
	protPre, protPost := sum(protected, 0, 5), sum(protected, 15, 20)

	if naivePre < 1000 || protPre < 1000 {
		t.Fatalf("pre-trigger goodput implausibly low: naive=%d protected=%d", naivePre, protPre)
	}
	// Metastability: the naive config never recovers after the trigger clears.
	if float64(naivePost) >= 0.3*float64(naivePre) {
		t.Fatalf("naive config recovered (pre=%d post=%d): retry storm not metastable", naivePre, naivePost)
	}
	// The overload plane restores at least 90% of pre-trigger goodput.
	if float64(protPost) < 0.9*float64(protPre) {
		t.Fatalf("overload plane failed to recover (pre=%d post=%d)", protPre, protPost)
	}
}

// TestOverloadRunDeterministic pins the byte-level reproducibility of the
// metastability scenario: two identical runs produce identical goodput
// windows.
func TestOverloadRunDeterministic(t *testing.T) {
	pol := Policy{
		Deadline:        20 * time.Millisecond,
		MaxAttempts:     4,
		BackoffBase:     500 * time.Microsecond,
		BackoffMax:      2 * time.Millisecond,
		RetryBudget:     50,
		BreakerFailures: 10,
		BreakerCooldown: 50 * time.Millisecond,
	}
	adm := Admission{MaxQueue: 64, Target: 5 * time.Millisecond, Interval: 20 * time.Millisecond, ShedStartFrac: 0.5, Seed: 77}
	a := overloadRun(t, pol, adm)
	b := overloadRun(t, pol, adm)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}
