package netsim

import (
	"errors"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// Tests for the per-directed-link fault plane: asymmetry, replace-not-stack
// semantics, gray response loss after the handler ran, heal, reachability,
// and the zero-allocation guarantee on the messageDelay hot path.

// linkRig is a two-node network with one echo server per node.
type linkRig struct {
	k        *sim.Kernel
	net      *Network
	a, b     *Node
	sa, sb   *Server
	executed map[string]int
}

func newLinkRig() *linkRig {
	k := sim.New()
	net := New(k, DefaultConfig())
	r := &linkRig{
		k:   k,
		net: net,
		a:   net.NewNode("a", 0, 0, 1),
		b:   net.NewNode("b", 0, 1, 1),
	}
	r.executed = map[string]int{}
	r.sa = NewServer(r.a, 1)
	r.sb = NewServer(r.b, 1)
	for _, s := range []*Server{r.sa, r.sb} {
		name := s.Node.Name
		s.Handle("echo", func(p *sim.Proc, req Request) Response {
			r.executed[name]++
			return Response{Payload: req.Payload}
		})
		s.Start()
	}
	return r
}

func (r *linkRig) call(from *Node, to *Server) error {
	var err error
	r.k.Go("caller", func(p *sim.Proc) {
		resp, _ := to.Call(p, from, Request{Method: "echo"})
		err = resp.Err
	})
	r.k.Run()
	return err
}

func TestBlockedLinkIsAsymmetric(t *testing.T) {
	r := newLinkRig()
	if !r.net.BlockLink("a", "b") {
		t.Fatalf("BlockLink(a, b) reported unknown endpoints")
	}
	if err := r.call(r.a, r.sb); !errors.Is(err, ErrLinkBlocked) {
		t.Fatalf("a->b call error = %v, want ErrLinkBlocked", err)
	}
	if r.executed["b"] != 0 {
		t.Fatalf("handler on b executed %d times across a blocked request link", r.executed["b"])
	}
	// The reverse request direction is untouched: b's call reaches a and the
	// handler runs — but the acknowledgment must cross the blocked a->b link,
	// so b still sees an error for work that happened. That is exactly the
	// "A hears B, B cannot hear A" asymmetry.
	err := r.call(r.b, r.sa)
	if !errors.Is(err, ErrLinkBlocked) {
		t.Fatalf("b->a call error = %v, want ErrLinkBlocked (response lost)", err)
	}
	if r.executed["a"] != 1 {
		t.Fatalf("handler on a executed %d times, want 1 (request direction healthy)", r.executed["a"])
	}
	if r.net.Blocked != 2 {
		t.Fatalf("Blocked = %d, want 2", r.net.Blocked)
	}
}

func TestLinkFaultReplacesNotStacks(t *testing.T) {
	r := newLinkRig()
	r.net.SetLinkFault("a", "b", 5*time.Millisecond, 0)
	// The second window replaces the 5ms surcharge with 1ms, mirroring the
	// documented Degrade rule on the global path.
	r.net.SetLinkFault("a", "b", time.Millisecond, 0)
	base := r.net.TransferTime(r.a, r.b, 0)
	if got, want := r.net.messageDelay(r.a, r.b, 0), base+time.Millisecond; got != want {
		t.Fatalf("messageDelay = %v, want replaced %v (not stacked %v)", got, want, base+6*time.Millisecond)
	}
	// The reverse direction never took a fault.
	if got := r.net.messageDelay(r.b, r.a, 0); got != base {
		t.Fatalf("reverse messageDelay = %v, want unfaulted %v", got, base)
	}
}

func TestGrayResponseLinkLosesAckAfterHandlerRan(t *testing.T) {
	r := newLinkRig()
	// Fault only the response direction b->a: the request arrives, the
	// handler executes, and the acknowledgment is lost — the caller sees an
	// error for work that happened (the indeterminate-outcome case).
	r.net.SetLinkFault("b", "a", 0, 1)
	err := r.call(r.a, r.sb)
	if !errors.Is(err, ErrNetDropped) {
		t.Fatalf("call error = %v, want ErrNetDropped", err)
	}
	if r.executed["b"] != 1 {
		t.Fatalf("handler executed %d times, want 1 (gray loss happens after execution)", r.executed["b"])
	}
}

func TestBlockedResponseLinkIsGrayToo(t *testing.T) {
	r := newLinkRig()
	r.net.BlockLink("b", "a")
	err := r.call(r.a, r.sb)
	if !errors.Is(err, ErrLinkBlocked) {
		t.Fatalf("call error = %v, want ErrLinkBlocked", err)
	}
	if r.executed["b"] != 1 {
		t.Fatalf("handler executed %d times, want 1 (request direction was healthy)", r.executed["b"])
	}
}

func TestHealLinkClearsAllFaults(t *testing.T) {
	r := newLinkRig()
	r.net.BlockLink("a", "b")
	r.net.SetLinkFault("a", "b", time.Millisecond, 0.5)
	r.net.HealLink("a", "b")
	if err := r.call(r.a, r.sb); err != nil {
		t.Fatalf("call after HealLink failed: %v", err)
	}
	base := r.net.TransferTime(r.a, r.b, 0)
	if got := r.net.messageDelay(r.a, r.b, 0); got != base {
		t.Fatalf("messageDelay after heal = %v, want %v", got, base)
	}
}

func TestReachableRequiresBothDirections(t *testing.T) {
	r := newLinkRig()
	if !r.net.Reachable(r.a, r.b) {
		t.Fatalf("healthy pair not reachable")
	}
	r.net.BlockLink("a", "b")
	if r.net.Reachable(r.a, r.b) || r.net.Reachable(r.b, r.a) {
		t.Fatalf("pair with one blocked direction still reachable")
	}
	r.net.UnblockLink("a", "b")
	// A gray (slow, lossy, unblocked) link still counts as reachable: only
	// full blocks may justify partition recovery.
	r.net.SetLinkFault("a", "b", time.Millisecond, 0.9)
	if !r.net.Reachable(r.a, r.b) {
		t.Fatalf("gray link tripped reachability")
	}
}

func TestLinkFaultUnknownEndpointReportsFalse(t *testing.T) {
	r := newLinkRig()
	if r.net.BlockLink("a", "ghost") || r.net.SetLinkFault("ghost", "b", 0, 1) || r.net.HealLink("ghost", "ghost") {
		t.Fatalf("fault injection on unknown endpoints reported success")
	}
	if err := r.call(r.a, r.sb); err != nil {
		t.Fatalf("call affected by fault against unknown endpoint: %v", err)
	}
}

func TestLinkRNGStreamsDeterministicAcrossFaultOrder(t *testing.T) {
	// The loss decisions a link draws depend only on its endpoints and the
	// link seed — never on the order links were faulted in.
	draw := func(faultOrder [][2]string) []bool {
		k := sim.New()
		net := New(k, DefaultConfig())
		a, b := net.NewNode("a", 0, 0, 1), net.NewNode("b", 0, 1, 1)
		c := net.NewNode("c", 0, 2, 1)
		net.SetLinkSeed(42)
		for _, l := range faultOrder {
			net.SetLinkFault(l[0], l[1], 0, 0.5)
		}
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, net.linkDrop(a, b))
		}
		_ = c
		return out
	}
	x := draw([][2]string{{"a", "b"}, {"c", "b"}, {"b", "a"}})
	y := draw([][2]string{{"b", "a"}, {"c", "b"}, {"a", "b"}})
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("draw %d differs across fault-injection orders", i)
		}
	}
}

// TestMessageDelayZeroAllocs pins the RPC hot path: computing a message's
// delay must not allocate, faulted or not — a per-call allocation would turn
// every study into a GC benchmark.
func TestMessageDelayZeroAllocs(t *testing.T) {
	k := sim.New()
	net := New(k, DefaultConfig())
	a, b := net.NewNode("a", 0, 0, 1), net.NewNode("b", 0, 1, 1)
	if n := testing.AllocsPerRun(200, func() { net.messageDelay(a, b, 4096) }); n != 0 {
		t.Fatalf("messageDelay allocates %v times/op on an unfaulted network", n)
	}
	net.SetLinkFault("a", "b", time.Millisecond, 0.1)
	if n := testing.AllocsPerRun(200, func() { net.messageDelay(a, b, 4096) }); n != 0 {
		t.Fatalf("messageDelay allocates %v times/op with a faulted link", n)
	}
}

// BenchmarkNetMessageDelay is the bench-gate guard for the same hot path:
// one faulted link in the map, so the benchmark pays the lookup.
func BenchmarkNetMessageDelay(bm *testing.B) {
	k := sim.New()
	net := New(k, DefaultConfig())
	a, b := net.NewNode("a", 0, 0, 1), net.NewNode("b", 0, 1, 1)
	net.SetLinkFault("a", "b", time.Millisecond, 0.1)
	bm.ReportAllocs()
	var sink time.Duration
	for i := 0; i < bm.N; i++ {
		sink += net.messageDelay(a, b, 4096)
	}
	benchSink = sink
}

var benchSink time.Duration
