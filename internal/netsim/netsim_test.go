package netsim

import (
	"errors"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

func testNet() (*sim.Kernel, *Network) {
	k := sim.New()
	return k, New(k, DefaultConfig())
}

func TestRTTScopes(t *testing.T) {
	k, n := testNet()
	_ = k
	a := n.NewNode("a", 0, 0, 1)
	b := n.NewNode("b", 0, 0, 1) // same rack
	c := n.NewNode("c", 0, 1, 1) // cross rack
	d := n.NewNode("d", 1, 0, 1) // cross region
	cfg := DefaultConfig()
	if n.RTT(a, a) != 0 {
		t.Error("self RTT nonzero")
	}
	if n.RTT(a, b) != cfg.SameRackRTT {
		t.Errorf("same rack = %v", n.RTT(a, b))
	}
	if n.RTT(a, c) != cfg.CrossRackRTT {
		t.Errorf("cross rack = %v", n.RTT(a, c))
	}
	if n.RTT(a, d) != cfg.CrossRegionRTT {
		t.Errorf("cross region = %v", n.RTT(a, d))
	}
}

func TestTransferTime(t *testing.T) {
	_, n := testNet()
	a := n.NewNode("a", 0, 0, 1)
	b := n.NewNode("b", 0, 0, 1)
	cfg := DefaultConfig()
	// Zero bytes: half RTT only.
	if got := n.TransferTime(a, b, 0); got != cfg.SameRackRTT/2 {
		t.Errorf("zero-byte transfer = %v", got)
	}
	// 5 GB at 5 GB/s = 1s.
	got := n.TransferTime(a, b, 5e9)
	want := cfg.SameRackRTT/2 + time.Second
	if got != want {
		t.Errorf("bulk transfer = %v, want %v", got, want)
	}
	if n.TransferTime(a, a, 1<<30) != 0 {
		t.Error("local transfer should be free")
	}
	if got := n.TransferTime(a, b, -5); got != cfg.SameRackRTT/2 {
		t.Errorf("negative size = %v", got)
	}
}

func TestRPCBasicCall(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 4)
	client := n.NewNode("cli", 0, 0, 4)
	s := NewServer(server, 2)
	s.Handle("echo", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond) // service time
		return Response{Bytes: req.Bytes, Payload: req.Payload}
	})
	s.Start()

	var gotResp Response
	var elapsed time.Duration
	k.Go("client", func(p *sim.Proc) {
		gotResp, elapsed = s.Call(p, client, Request{Method: "echo", Bytes: 1000, Payload: "hi"})
		s.Stop()
	})
	k.Run()
	if gotResp.Err != nil || gotResp.Payload != "hi" {
		t.Fatalf("resp = %+v", gotResp)
	}
	// Elapsed = 2 transfers + 1ms service.
	xfer := n.TransferTime(client, server, 1000)
	want := 2*xfer + time.Millisecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	k, n := testNet()
	s := NewServer(n.NewNode("srv", 0, 0, 1), 1)
	s.Start()
	cli := n.NewNode("cli", 0, 0, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = s.Call(p, cli, Request{Method: "nope"})
		s.Stop()
	})
	k.Run()
	if !errors.Is(resp.Err, ErrNoMethod) {
		t.Fatalf("err = %v", resp.Err)
	}
}

func TestRPCQueueingOnSingleWorker(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 1)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 1)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{}
	})
	s.Start()
	done := 0
	for i := 0; i < 3; i++ {
		k.Go("client", func(p *sim.Proc) {
			s.Call(p, client, Request{Method: "slow"})
			done++
		})
	}
	end := k.Run()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	// Three serialized 10ms services: completion no earlier than 30ms.
	if end < 30*time.Millisecond {
		t.Fatalf("end = %v, want >= 30ms (queueing)", end)
	}
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestRPCParallelWorkers(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 4)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 4)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(10 * time.Millisecond)
		return Response{}
	})
	s.Start()
	for i := 0; i < 4; i++ {
		k.Go("client", func(p *sim.Proc) {
			s.Call(p, client, Request{Method: "slow"})
		})
	}
	end := k.Run()
	// All four run in parallel: ~10ms + transfers, well under 20ms.
	if end >= 20*time.Millisecond {
		t.Fatalf("end = %v, want < 20ms (parallel service)", end)
	}
	s.Stop()
	k.Run()
}

func TestCallBeforeStartReturnsError(t *testing.T) {
	k, n := testNet()
	s := NewServer(n.NewNode("srv", 0, 0, 1), 1)
	cli := n.NewNode("cli", 0, 0, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = s.Call(p, cli, Request{Method: "x"})
	})
	k.Run()
	if !errors.Is(resp.Err, ErrNotStarted) {
		t.Fatalf("err = %v, want ErrNotStarted", resp.Err)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestServerStartIdempotent(t *testing.T) {
	k, n := testNet()
	s := NewServer(n.NewNode("srv", 0, 0, 1), 2)
	s.Start()
	s.Start() // must not double the workers
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("live = %d, want 0 (Start idempotent)", k.Live())
	}
}

func TestHandlerCanUseServerCPU(t *testing.T) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 2)
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(server, 8)
	s.Handle("compute", func(p *sim.Proc, req Request) Response {
		p.Use(server.CPU, 1, 5*time.Millisecond)
		return Response{}
	})
	s.Start()
	for i := 0; i < 4; i++ {
		k.Go("client", func(p *sim.Proc) {
			s.Call(p, client, Request{Method: "compute"})
		})
	}
	end := k.Run()
	// 4 jobs of 5ms on 2 cores: at least 10ms.
	if end < 10*time.Millisecond {
		t.Fatalf("end = %v, want >= 10ms (CPU contention)", end)
	}
	if got := server.CPU.BusyTime(); got != 20*time.Millisecond {
		t.Fatalf("cpu busy = %v, want 20ms", got)
	}
	s.Stop()
	k.Run()
}

func TestCallAfterStopFailsFast(t *testing.T) {
	k, n := testNet()
	s := NewServer(n.NewNode("srv", 0, 0, 1), 1)
	s.Handle("op", func(p *sim.Proc, req Request) Response { return Response{} })
	s.Start()
	cli := n.NewNode("cli", 0, 0, 1)
	var before, after Response
	k.Go("client", func(p *sim.Proc) {
		before, _ = s.Call(p, cli, Request{Method: "op"})
		s.Stop()
		if !s.Stopped() {
			t.Error("Stopped() false after Stop")
		}
		after, _ = s.Call(p, cli, Request{Method: "op"})
	})
	k.Run()
	if before.Err != nil {
		t.Fatalf("call before stop failed: %v", before.Err)
	}
	if !errors.Is(after.Err, ErrServerDown) {
		t.Fatalf("call after stop err = %v, want ErrServerDown", after.Err)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestStopIdempotent(t *testing.T) {
	k, n := testNet()
	s := NewServer(n.NewNode("srv", 0, 0, 1), 2)
	s.Start()
	s.Stop()
	s.Stop() // second stop must not enqueue more sentinels
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("live = %d", k.Live())
	}
}
