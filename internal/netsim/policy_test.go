package netsim

import (
	"errors"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

func policyFixture(workers int) (*sim.Kernel, *Network, *Node, *Node, *Server) {
	k, n := testNet()
	server := n.NewNode("srv", 0, 0, 4)
	client := n.NewNode("cli", 0, 0, 4)
	s := NewServer(server, workers)
	return k, n, server, client, s
}

func TestZeroPolicyMatchesDirectCall(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{Payload: "hi"}
	})
	s.Start()
	c := NewClient(Policy{}, 1)
	var direct, viaClient time.Duration
	k.Go("client", func(p *sim.Proc) {
		_, direct = s.Call(p, client, Request{Method: "op"})
		resp, e := c.Call(p, client, s, Request{Method: "op"})
		viaClient = e
		if resp.Err != nil || resp.Payload != "hi" {
			t.Errorf("resp = %+v", resp)
		}
		s.Stop()
	})
	k.Run()
	if direct != viaClient {
		t.Fatalf("zero-policy client elapsed %v != direct %v", viaClient, direct)
	}
	if c.Calls != 1 || c.Attempts != 1 || c.Retries != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestDeadlineExceeded(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.Handle("slow", func(p *sim.Proc, req Request) Response {
		p.Sleep(50 * time.Millisecond)
		return Response{}
	})
	s.Start()
	c := NewClient(Policy{Deadline: 5 * time.Millisecond}, 1)
	var resp Response
	var elapsed time.Duration
	k.Go("client", func(p *sim.Proc) {
		resp, elapsed = c.Call(p, client, s, Request{Method: "slow"})
	})
	k.Run()
	if !errors.Is(resp.Err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", resp.Err)
	}
	if elapsed != 5*time.Millisecond {
		t.Fatalf("elapsed = %v, want the 5ms deadline", elapsed)
	}
	if c.Deadlines != 1 {
		t.Fatalf("Deadlines = %d, want 1", c.Deadlines)
	}
	s.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d (abandoned attempts must drain)", k.Live())
	}
}

func TestDeadlineNotHitOnFastCall(t *testing.T) {
	k, _, _, client, s := policyFixture(1)
	s.Handle("fast", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{Payload: 42}
	})
	s.Start()
	c := NewClient(Policy{Deadline: 100 * time.Millisecond}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.Call(p, client, s, Request{Method: "fast"})
		s.Stop()
	})
	k.Run()
	if resp.Err != nil || resp.Payload != 42 {
		t.Fatalf("resp = %+v", resp)
	}
	if c.Deadlines != 0 {
		t.Fatalf("Deadlines = %d, want 0", c.Deadlines)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestRetryFailsOverAcrossTargets(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	bad := NewServer(n.NewNode("bad", 0, 0, 1), 1)
	good := NewServer(n.NewNode("good", 0, 0, 1), 1)
	handler := func(p *sim.Proc, req Request) Response { return Response{Payload: "ok"} }
	bad.Handle("op", handler)
	good.Handle("op", handler)
	bad.Start()
	good.Start()
	bad.Crash()

	c := NewClient(Policy{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.CallAny(p, client, []*Server{bad, good}, Request{Method: "op"})
		good.Stop()
	})
	k.Run()
	if resp.Err != nil || resp.Payload != "ok" {
		t.Fatalf("resp = %+v, want failover success", resp)
	}
	if c.Attempts != 2 || c.Retries != 1 || c.Failovers != 1 {
		t.Fatalf("Attempts=%d Retries=%d Failovers=%d, want 2/1/1", c.Attempts, c.Retries, c.Failovers)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(n.NewNode("srv", 0, 0, 1), 1)
	s.Handle("op", func(p *sim.Proc, req Request) Response { return Response{} })
	s.Start()
	s.Crash()
	c := NewClient(Policy{MaxAttempts: 3}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.Call(p, client, s, Request{Method: "op"})
	})
	k.Run()
	if !errors.Is(resp.Err, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", resp.Err)
	}
	if c.Attempts != 3 || c.Retries != 2 {
		t.Fatalf("Attempts=%d Retries=%d, want 3/2", c.Attempts, c.Retries)
	}
}

func TestNonRetryableErrorStopsRetries(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	s := NewServer(n.NewNode("srv", 0, 0, 1), 1)
	s.Start() // no handler registered: ErrNoMethod is an application error
	c := NewClient(Policy{MaxAttempts: 5}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.Call(p, client, s, Request{Method: "nope"})
		s.Stop()
	})
	k.Run()
	if !errors.Is(resp.Err, ErrNoMethod) {
		t.Fatalf("err = %v", resp.Err)
	}
	if c.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (no retry on application errors)", c.Attempts)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := Policy{BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond}
	a := NewClient(p, 99)
	b := NewClient(p, 99)
	for i := 1; i <= 8; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Fatalf("retry %d: same seed gave %v vs %v", i, da, db)
		}
		// Jitter is ±50%, so the cap bounds the result at 1.5*BackoffMax.
		if da < 0 || da > 15*time.Millisecond {
			t.Fatalf("retry %d: backoff %v outside jittered cap", i, da)
		}
	}
	if NewClient(p, 100).backoff(1) == a.backoff(1) {
		// Not strictly impossible, but with distinct seeds the first draws
		// colliding would indicate the seed is ignored.
		t.Fatal("different seeds gave identical first backoff")
	}
}

func TestHedgedCallBackupWins(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	slow := NewServer(n.NewNode("slow", 0, 0, 1), 1)
	fast := NewServer(n.NewNode("fast", 0, 0, 1), 1)
	slow.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(100 * time.Millisecond)
		return Response{Payload: "slow"}
	})
	fast.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{Payload: "fast"}
	})
	slow.Start()
	fast.Start()
	c := NewClient(Policy{HedgeDelay: 5 * time.Millisecond, HedgeQuantile: 0.95}, 1)
	var resp Response
	var elapsed time.Duration
	k.Go("client", func(p *sim.Proc) {
		resp, elapsed = c.CallHedged(p, client, []*Server{slow, fast}, Request{Method: "op"})
	})
	k.Run()
	if resp.Err != nil || resp.Payload != "fast" {
		t.Fatalf("resp = %+v, want backup's answer", resp)
	}
	if c.Hedges != 1 || c.HedgeWins != 1 {
		t.Fatalf("Hedges=%d HedgeWins=%d, want 1/1", c.Hedges, c.HedgeWins)
	}
	// Hedge fired at 5ms; backup took ~1ms + transfers. Nowhere near 100ms.
	if elapsed >= 20*time.Millisecond {
		t.Fatalf("elapsed = %v, want well under the slow primary", elapsed)
	}
	slow.Stop()
	fast.Stop()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestHedgeNotSentWhenPrimaryFast(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	a := NewServer(n.NewNode("a", 0, 0, 1), 1)
	b := NewServer(n.NewNode("b", 0, 0, 1), 1)
	h := func(p *sim.Proc, req Request) Response {
		p.Sleep(time.Millisecond)
		return Response{Payload: "a"}
	}
	a.Handle("op", h)
	b.Handle("op", h)
	a.Start()
	b.Start()
	c := NewClient(Policy{HedgeDelay: 50 * time.Millisecond}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.CallHedged(p, client, []*Server{a, b}, Request{Method: "op"})
		a.Stop()
		b.Stop()
	})
	k.Run()
	if resp.Err != nil {
		t.Fatalf("resp = %+v", resp)
	}
	if c.Hedges != 0 || c.Attempts != 1 {
		t.Fatalf("Hedges=%d Attempts=%d, want 0/1", c.Hedges, c.Attempts)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestHedgeWaitsForOutstandingAttemptOnRetryableFailure(t *testing.T) {
	k, n := testNet()
	client := n.NewNode("cli", 0, 0, 1)
	// Primary is slow but will succeed; backup crashes mid-flight.
	slow := NewServer(n.NewNode("slow", 0, 0, 1), 1)
	crashy := NewServer(n.NewNode("crashy", 0, 0, 1), 1)
	slow.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(30 * time.Millisecond)
		return Response{Payload: "slow-ok"}
	})
	crashy.Handle("op", func(p *sim.Proc, req Request) Response {
		p.Sleep(100 * time.Millisecond)
		return Response{Payload: "never"}
	})
	slow.Start()
	crashy.Start()
	k.Schedule(10*time.Millisecond, crashy.Crash) // backup fails after hedging
	c := NewClient(Policy{HedgeDelay: 5 * time.Millisecond}, 1)
	var resp Response
	k.Go("client", func(p *sim.Proc) {
		resp, _ = c.CallHedged(p, client, []*Server{slow, crashy}, Request{Method: "op"})
		slow.Stop()
	})
	k.Run()
	if resp.Err != nil || resp.Payload != "slow-ok" {
		t.Fatalf("resp = %+v, want the slow primary's success", resp)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestHedgeDelayUsesObservedQuantile(t *testing.T) {
	c := NewClient(Policy{HedgeQuantile: 0.5, HedgeDelay: time.Millisecond}, 1)
	// Before enough samples, the bootstrap delay applies.
	if got := c.hedgeDelay(); got != time.Millisecond {
		t.Fatalf("bootstrap hedge delay = %v", got)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		c.observe(10 * time.Millisecond)
	}
	if got := c.hedgeDelay(); got != 10*time.Millisecond {
		t.Fatalf("quantile hedge delay = %v, want 10ms", got)
	}
}
