// Package stats provides the deterministic randomness and summary-statistics
// substrate used by every simulation in this repository. All samplers are
// seeded explicitly so that experiments reproduce bit-for-bit.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random generator seeded via SplitMix64. It is
// not safe for concurrent use; the simulation kernel's strict alternation
// makes that a non-issue.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Any seed, including
// zero, produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork returns a new independent generator derived from this one's stream,
// for handing to sub-components without correlating their draws.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed sample (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed sample parameterized by the
// mean and stddev of the underlying normal (mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto(alpha) sample with the given minimum xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Jitter returns base multiplied by a uniform factor in [1-frac, 1+frac],
// the standard way this repository adds noise to calibrated cost means.
func (r *RNG) Jitter(base, frac float64) float64 {
	return base * (1 + frac*(2*r.Float64()-1))
}
