package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree on %d/1000 draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values", len(seen))
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("bucket %d fraction %.3f, want ~0.10", i, frac)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 50000; i++ {
		v := r.Exp(4.0)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		s.Add(v)
	}
	if m := s.Mean(); math.Abs(m-4.0) > 0.1 {
		t.Fatalf("Exp mean = %.3f, want ~4", m)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(r.Norm(10, 2))
	}
	if m := s.Mean(); math.Abs(m-10) > 0.1 {
		t.Fatalf("Norm mean = %.3f", m)
	}
	if sd := s.Stddev(); math.Abs(sd-2) > 0.1 {
		t.Fatalf("Norm stddev = %.3f", sd)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(15)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("non-positive lognormal %v", v)
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("jitter %v outside [80,120]", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(21)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forks agree on %d/1000 draws", same)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 1000, 1.1)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 9 roughly by (10/1)^1.1.
	if counts[0] < counts[9]*5 {
		t.Fatalf("insufficient skew: rank0=%d rank9=%d", counts[0], counts[9])
	}
	// Monotone-ish at the head.
	if counts[0] < counts[1] || counts[1] < counts[3] {
		t.Fatalf("head not decreasing: %v", counts[:5])
	}
}

func TestZipfSEqualsOne(t *testing.T) {
	r := NewRNG(25)
	z := NewZipf(r, 100, 1.0)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v < 0 || v >= 100 {
			t.Fatalf("out of range %d", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	mustPanic(t, func() { NewZipf(r, 0, 1) })
	mustPanic(t, func() { NewZipf(r, 10, 0) })
}

func TestWeightedDistribution(t *testing.T) {
	r := NewRNG(27)
	w := NewWeighted(r, []float64{1, 2, 7})
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.Next()]++
	}
	wantFrac := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-wantFrac[i]) > 0.02 {
			t.Fatalf("bucket %d frac %.3f want %.1f", i, frac, wantFrac[i])
		}
	}
}

func TestWeightedZeroWeightNeverDrawn(t *testing.T) {
	r := NewRNG(29)
	w := NewWeighted(r, []float64{0, 1, 0})
	for i := 0; i < 10000; i++ {
		if v := w.Next(); v != 1 {
			t.Fatalf("drew zero-weight index %d", v)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	r := NewRNG(1)
	mustPanic(t, func() { NewWeighted(r, nil) })
	mustPanic(t, func() { NewWeighted(r, []float64{0, 0}) })
	mustPanic(t, func() { NewWeighted(r, []float64{-1, 2}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Fatalf("n=%d sum=%v mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := s.Quantile(0.25); q != 2 {
		t.Fatalf("p25 = %v", q)
	}
}

func TestSummaryQuantileInterpolation(t *testing.T) {
	var s Summary
	s.Add(0)
	s.Add(10)
	if q := s.Quantile(0.5); q != 5 {
		t.Fatalf("interpolated median = %v, want 5", q)
	}
}

func TestSummaryAddAfterQuantile(t *testing.T) {
	var s Summary
	s.Add(5)
	s.Add(1)
	_ = s.Quantile(0.5) // forces sort
	s.Add(3)
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median after re-add = %v, want 3", q)
	}
}

func TestSummaryQuantileMonotone(t *testing.T) {
	r := NewRNG(31)
	var s Summary
	for i := 0; i < 1000; i++ {
		s.Add(r.Float64() * 100)
	}
	if err := quick.Check(func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFractions(t *testing.T) {
	f := Fractions(map[string]float64{"a": 1, "b": 3})
	if math.Abs(f["a"]-0.25) > 1e-12 || math.Abs(f["b"]-0.75) > 1e-12 {
		t.Fatalf("fractions = %v", f)
	}
	z := Fractions(map[string]float64{"a": 0})
	if z["a"] != 0 {
		t.Fatalf("zero-total fractions = %v", z)
	}
}
