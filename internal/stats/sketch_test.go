package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchWorkloads produces seeded observation streams shaped like the
// simulator's latency populations: lognormal service times, heavy Pareto
// tails, bimodal cache hit/miss mixes, and a stream with genuine zeros.
func sketchWorkloads(seed int64, n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	ws := make(map[string][]float64)

	lognorm := make([]float64, n)
	for i := range lognorm {
		lognorm[i] = math.Exp(rng.NormFloat64()*1.5 + 10) // ~22µs median in ns
	}
	ws["lognormal"] = lognorm

	pareto := make([]float64, n)
	for i := range pareto {
		pareto[i] = 1e3 * math.Pow(rng.Float64(), -1/1.2) // α=1.2 heavy tail
	}
	ws["pareto"] = pareto

	bimodal := make([]float64, n)
	for i := range bimodal {
		if rng.Float64() < 0.9 {
			bimodal[i] = 5e3 + rng.Float64()*1e3 // cache hit
		} else {
			bimodal[i] = 2e6 + rng.Float64()*5e5 // miss
		}
	}
	ws["bimodal"] = bimodal

	withZeros := make([]float64, n)
	for i := range withZeros {
		if rng.Float64() < 0.05 {
			withZeros[i] = 0
		} else {
			withZeros[i] = rng.Float64() * 1e6
		}
	}
	ws["with-zeros"] = withZeros
	return ws
}

// exactQuantile is the nearest-rank quantile the sketch documents itself
// against.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSketchQuantileAccuracy is the accuracy property test: across seeded
// workloads and error bounds, every reported quantile must be within the
// documented relative error of the exact nearest-rank quantile, and
// Min/Max/Mean within the same bound of their exact counterparts.
func TestSketchQuantileAccuracy(t *testing.T) {
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for _, relErr := range []float64{0.01, 0.05} {
		for seed := int64(1); seed <= 3; seed++ {
			for name, vals := range sketchWorkloads(seed, 20000) {
				s := NewSketch(relErr)
				for _, v := range vals {
					s.Add(v)
				}
				sorted := append([]float64(nil), vals...)
				sort.Float64s(sorted)

				within := func(got, want float64) bool {
					if want == 0 {
						return got == 0
					}
					return math.Abs(got-want) <= relErr*want*(1+1e-12)
				}
				for _, q := range quantiles {
					want := exactQuantile(sorted, q)
					got := s.Quantile(q)
					if !within(got, want) {
						t.Errorf("α=%g seed=%d %s: Quantile(%g)=%g, exact %g, rel err %g > %g",
							relErr, seed, name, q, got, want, math.Abs(got-want)/want, relErr)
					}
				}
				if got, want := s.Min(), sorted[0]; !within(got, want) {
					t.Errorf("α=%g seed=%d %s: Min()=%g, exact %g", relErr, seed, name, got, want)
				}
				if got, want := s.Max(), sorted[len(sorted)-1]; !within(got, want) {
					t.Errorf("α=%g seed=%d %s: Max()=%g, exact %g", relErr, seed, name, got, want)
				}
				var sum float64
				for _, v := range sorted {
					sum += v
				}
				if got, want := s.Mean(), sum/float64(len(sorted)); math.Abs(got-want) > relErr*want {
					t.Errorf("α=%g seed=%d %s: Mean()=%g, exact %g", relErr, seed, name, got, want)
				}
				if s.N() != len(vals) {
					t.Errorf("α=%g seed=%d %s: N()=%d, want %d", relErr, seed, name, s.N(), len(vals))
				}
			}
		}
	}
}

// TestSketchBoundedMemory pins the memory claim: the bucket count must not
// grow with the observation count, only with the value range and α.
func TestSketchBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSketch(0.01)
	var after1e4 int
	for i := 0; i < 1_000_000; i++ {
		// ns through hours: 9 decades.
		s.Add(math.Exp(rng.Float64() * math.Log(3.6e12)))
		if i == 1e4-1 {
			after1e4 = s.Buckets()
		}
	}
	if s.Buckets() > 2200 {
		t.Fatalf("sketch used %d buckets over 9 decades at α=1%%, want ≤ 2200", s.Buckets())
	}
	// 100x more observations may only fill in the tail of the fixed key
	// range, not grow proportionally.
	if s.Buckets() > after1e4+after1e4/4 {
		t.Fatalf("buckets grew from %d to %d between 10k and 1M observations; growth must flatten", after1e4, s.Buckets())
	}
}

// TestSketchMergeOrderInvariance is the merge-associativity test the study
// pipeline depends on: partition one stream into shards, merge the shard
// sketches in different orders and tree shapes, and require the canonical
// dumps — and therefore any exported bytes derived from them — to be
// identical, and identical to the unsharded sketch.
func TestSketchMergeOrderInvariance(t *testing.T) {
	vals := sketchWorkloads(42, 30000)["lognormal"]
	const shards = 7

	build := func() []*Sketch {
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = NewSketch(0.01)
		}
		for i, v := range vals {
			parts[i%shards].Add(v)
		}
		return parts
	}
	dump := func(s *Sketch) string {
		b, err := json.Marshal(s.Dump())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Reference: everything in one sketch, no merging.
	whole := NewSketch(0.01)
	for _, v := range vals {
		whole.Add(v)
	}
	want := dump(whole)

	// Left fold in shard order.
	parts := build()
	leftFold := NewSketch(0.01)
	for _, p := range parts {
		leftFold.Merge(p)
	}
	if got := dump(leftFold); got != want {
		t.Fatalf("left-fold merge dump differs from unsharded sketch:\n got %s\nwant %s", got, want)
	}

	// Reverse order.
	parts = build()
	rev := NewSketch(0.01)
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	if got := dump(rev); got != want {
		t.Fatalf("reverse-order merge dump differs:\n got %s\nwant %s", got, want)
	}

	// Balanced binary tree of pairwise merges.
	parts = build()
	for len(parts) > 1 {
		var next []*Sketch
		for i := 0; i < len(parts); i += 2 {
			if i+1 < len(parts) {
				parts[i].Merge(parts[i+1])
			}
			next = append(next, parts[i])
		}
		parts = next
	}
	if got := dump(parts[0]); got != want {
		t.Fatalf("tree-merge dump differs:\n got %s\nwant %s", got, want)
	}

	// Exported scalars must match bit-for-bit too, not just the dump.
	if whole.Sum() != leftFold.Sum() || whole.Sum() != rev.Sum() {
		t.Fatalf("Sum differs across merge orders: %v %v %v", whole.Sum(), leftFold.Sum(), rev.Sum())
	}
	if whole.Quantile(0.99) != rev.Quantile(0.99) {
		t.Fatalf("Quantile differs across merge orders")
	}
}

// TestSketchMergeGuards covers the defensive paths: empty and nil merges are
// no-ops, mismatched error bounds panic.
func TestSketchMergeGuards(t *testing.T) {
	s := NewSketch(0.01)
	s.Add(5)
	s.Merge(nil)
	s.Merge(NewSketch(0.01))
	if s.N() != 1 {
		t.Fatalf("N=%d after no-op merges, want 1", s.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different error bounds did not panic")
		}
	}()
	o := NewSketch(0.05)
	o.Add(1)
	s.Merge(o)
}

// TestSketchReset checks Reset empties the sketch and reuses capacity.
func TestSketchReset(t *testing.T) {
	s := NewSketch(0.01)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.N() != 0 || s.Buckets() != 0 || s.Quantile(0.5) != 0 || s.Sum() != 0 {
		t.Fatalf("sketch not empty after Reset: n=%d buckets=%d", s.N(), s.Buckets())
	}
	s.Add(3)
	if got := s.Quantile(1); math.Abs(got-3) > 0.01*3 {
		t.Fatalf("Quantile(1)=%g after reuse, want ~3", got)
	}
}
