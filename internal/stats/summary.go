package stats

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Summary accumulates scalar observations and reports moments and quantiles.
// It keeps all values; the experiment scales in this repository make that
// cheap, and exact quantiles simplify validation against the paper.
type Summary struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.vals) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Stddev returns the sample standard deviation, or 0 for fewer than two
// observations.
func (s *Summary) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation,
// or 0 for an empty summary.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(len(s.vals)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s.vals) {
		return s.vals[lo]
	}
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.Quantile(1) }

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g",
		s.N(), s.Mean(), s.Quantile(0.5), s.Quantile(0.99), s.Max())
}

// Fractions normalizes a map of non-negative weights into fractions that sum
// to 1. A zero-total map returns all zeros. The total is accumulated in sorted
// key order so the result is bit-identical across runs; float addition is not
// associative, so summing in Go's randomized map order can drift by an ulp.
func Fractions[K cmp.Ordered](weights map[K]float64) map[K]float64 {
	keys := make([]K, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	total := 0.0
	for _, k := range keys {
		total += weights[k]
	}
	out := make(map[K]float64, len(weights))
	for k, w := range weights {
		if total > 0 {
			out[k] = w / total
		} else {
			out[k] = 0
		}
	}
	return out
}
