package stats

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(k+1)^s, using Hörmann's rejection-inversion method, which stays O(1)
// per sample for arbitrarily large n. It matches the access skew big-data
// key-value workloads exhibit (a few hot rows, a long cold tail).
type Zipf struct {
	r                *RNG
	n                float64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hImaxQ           float64
	hX0              float64
	sVal             float64
}

// NewZipf creates a Zipf sampler over [0, n) with skew s > 0, s != 1 handled
// via the generalized harmonic; s == 1 is nudged slightly for stability.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf n must be positive")
	}
	if s <= 0 {
		panic("stats: Zipf s must be positive")
	}
	if s == 1 {
		s = 1.0000001
	}
	z := &Zipf{r: r, n: float64(n), s: s}
	z.oneMinusS = 1 - s
	z.oneOverOneMinusS = 1 / z.oneMinusS
	z.hX0 = z.h(0.5) - 1
	z.hImaxQ = z.h(z.n + 0.5)
	z.sVal = 1 - z.hInv(z.h(1.5)-math.Pow(2, -s))
	return z
}

// h is the integral of the density: H(x) = (x^(1-s)) / (1-s).
func (z *Zipf) h(x float64) float64 {
	return math.Pow(x, z.oneMinusS) * z.oneOverOneMinusS
}

func (z *Zipf) hInv(x float64) float64 {
	return math.Pow(x*z.oneMinusS, z.oneOverOneMinusS)
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hX0 + z.r.Float64()*(z.hImaxQ-z.hX0)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		if k-x <= z.sVal || u >= z.h(k+0.5)-math.Pow(k, -z.s) {
			return int(k) - 1
		}
	}
}

// Weighted picks indices with probability proportional to fixed weights,
// using the alias method for O(1) sampling.
type Weighted struct {
	r     *RNG
	prob  []float64
	alias []int
}

// NewWeighted builds an alias table over the given non-negative weights. At
// least one weight must be positive.
func NewWeighted(r *RNG, weights []float64) *Weighted {
	n := len(weights)
	if n == 0 {
		panic("stats: empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: all weights zero")
	}
	w := &Weighted{r: r, prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, wt := range weights {
		scaled[i] = wt / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		w.prob[s] = scaled[s]
		w.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		w.prob[i] = 1
		w.alias[i] = i
	}
	for _, i := range small {
		w.prob[i] = 1
		w.alias[i] = i
	}
	return w
}

// Next returns an index drawn according to the weights.
func (w *Weighted) Next() int {
	i := w.r.Intn(len(w.prob))
	if w.r.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}
