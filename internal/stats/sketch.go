package stats

import (
	"fmt"
	"math"
	"slices"
)

// Recorder is the common face of the exact Summary and the bounded-memory
// Sketch, letting workloads and studies swap one for the other with a config
// knob. Summary keeps every observation and answers exactly; Sketch keeps
// O(log(max/min)) bucket counters and answers within a documented relative
// error.
type Recorder interface {
	Add(v float64)
	N() int
	Sum() float64
	Mean() float64
	Quantile(q float64) float64
	Min() float64
	Max() float64
}

var (
	_ Recorder = (*Summary)(nil)
	_ Recorder = (*Sketch)(nil)
)

// DefaultSketchRelErr is the relative value-error bound a zero-configured
// Sketch guarantees.
const DefaultSketchRelErr = 0.01

// Sketch is a mergeable quantile sketch over non-negative observations with
// bounded memory and a relative value-error guarantee, in the style of
// DDSketch (Masson et al., VLDB'19): bucket i counts observations in
// (γ^(i-1), γ^i] with γ = (1+α)/(1−α), so reporting the bucket midpoint
// 2γ^i/(γ+1) is within relative error α of any value in the bucket.
//
// Two properties matter to this repository beyond memory:
//
//   - Quantile guarantee: for any q, Quantile(q) is within relative error α
//     of an exact q-quantile of the recorded values (observations ≤ 0 are
//     counted in a dedicated zero bucket and reported exactly as 0).
//   - Deterministic mergeability: merging is per-key counter addition —
//     associative and commutative — and every exported number is derived
//     from (key, count) pairs in sorted-key order, so merge order cannot
//     change exported bytes. This is why the repo uses a bucketed sketch
//     rather than KLL/t-digest, whose compaction decisions depend on
//     insertion and merge order.
//
// Memory is O(log(max/min)/α): ~1500 buckets of 16 bytes cover nanoseconds
// through hours at α = 1%, regardless of how many observations stream
// through. The zero value is not usable; create one with NewSketch.
type Sketch struct {
	relErr      float64
	gamma       float64
	invLogGamma float64
	coef        float64 // 2/(γ+1): estimate(k) = coef·γ^k
	zero        int64
	total       int64
	counts      map[int]int64
	keys        []int // sorted bucket keys, rebuilt lazily
	keysDirty   bool
}

// NewSketch returns an empty sketch guaranteeing the given relative value
// error (0 < relErr < 1). A non-positive relErr selects
// DefaultSketchRelErr.
func NewSketch(relErr float64) *Sketch {
	if relErr <= 0 {
		relErr = DefaultSketchRelErr
	}
	if relErr >= 1 {
		panic(fmt.Sprintf("stats: sketch relative error %g out of range (0,1)", relErr))
	}
	gamma := (1 + relErr) / (1 - relErr)
	return &Sketch{
		relErr:      relErr,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
		coef:        2 / (gamma + 1),
		counts:      make(map[int]int64),
	}
}

// RelErr returns the sketch's relative value-error bound α.
func (s *Sketch) RelErr() float64 { return s.relErr }

// Add records one observation. Values ≤ 0 land in the zero bucket and are
// reported exactly as 0; the simulator's latencies are non-negative, so in
// practice the zero bucket only counts genuine zeros.
func (s *Sketch) Add(v float64) {
	s.total++
	if v <= 0 {
		s.zero++
		return
	}
	k := int(math.Ceil(math.Log(v) * s.invLogGamma))
	if s.counts[k] == 0 {
		s.keysDirty = true
	}
	s.counts[k]++
}

// N returns the number of recorded observations.
func (s *Sketch) N() int { return int(s.total) }

// Buckets returns the number of occupied buckets — the sketch's memory
// footprint in units of one counter, which stays bounded no matter how many
// observations stream through.
func (s *Sketch) Buckets() int {
	n := len(s.counts)
	if s.zero > 0 {
		n++
	}
	return n
}

// estimate returns the representative value of bucket k, within relErr of
// every value the bucket covers.
func (s *Sketch) estimate(k int) float64 {
	return s.coef * math.Pow(s.gamma, float64(k))
}

// sortedKeys returns the occupied bucket keys in ascending order, which is
// ascending value order. The slice is cached and must not be mutated.
func (s *Sketch) sortedKeys() []int {
	if s.keysDirty || len(s.keys) != len(s.counts) {
		s.keys = s.keys[:0]
		for k := range s.counts {
			s.keys = append(s.keys, k)
		}
		slices.Sort(s.keys)
		s.keysDirty = false
	}
	return s.keys
}

// Quantile returns a value within relative error RelErr of an exact
// q-quantile (nearest-rank) of the recorded observations, or 0 for an empty
// sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.total {
		rank = s.total
	}
	if rank <= s.zero {
		return 0
	}
	cum := s.zero
	for _, k := range s.sortedKeys() {
		cum += s.counts[k]
		if cum >= rank {
			return s.estimate(k)
		}
	}
	return 0 // unreachable: cum reaches total ≥ rank
}

// Min returns a value within relative error RelErr of the smallest
// observation (exactly 0 if a non-positive value was recorded), or 0 for an
// empty sketch.
func (s *Sketch) Min() float64 {
	if s.total == 0 || s.zero > 0 {
		return 0
	}
	return s.estimate(s.sortedKeys()[0])
}

// Max returns a value within relative error RelErr of the largest
// observation, or 0 for an empty sketch.
func (s *Sketch) Max() float64 {
	keys := s.sortedKeys()
	if len(keys) == 0 {
		return 0
	}
	return s.estimate(keys[len(keys)-1])
}

// Sum returns the sum of bucket-representative values — within relative
// error RelErr of the exact sum, since every observation is represented
// within RelErr. It is accumulated in sorted-key order from integer counts,
// so the result is bit-identical regardless of observation or merge order
// (a running float sum would not be: float addition is not associative).
func (s *Sketch) Sum() float64 {
	var sum float64
	for _, k := range s.sortedKeys() {
		sum += float64(s.counts[k]) * s.estimate(k)
	}
	return sum
}

// Mean returns Sum()/N(), within relative error RelErr of the exact mean,
// or 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.total == 0 {
		return 0
	}
	return s.Sum() / float64(s.total)
}

// Merge folds o into s. Bucket merging is integer counter addition, so any
// merge order — and any tree shape of pairwise merges — yields an identical
// sketch. Both sketches must share the same error bound; mixing bounds
// would silently void the guarantee, so it panics instead.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.total == 0 {
		return
	}
	if o.relErr != s.relErr {
		panic(fmt.Sprintf("stats: merging sketches with different error bounds (%g vs %g)", s.relErr, o.relErr))
	}
	s.total += o.total
	s.zero += o.zero
	for k, c := range o.counts {
		if s.counts[k] == 0 {
			s.keysDirty = true
		}
		s.counts[k] += c
	}
}

// Reset empties the sketch in place, keeping its bucket map and key cache
// capacity so steady-state windowed use (the obs histogram tick) does not
// reallocate.
func (s *Sketch) Reset() {
	s.zero = 0
	s.total = 0
	clear(s.counts)
	s.keys = s.keys[:0]
	s.keysDirty = false
}

// SketchDump is the canonical serialized form of a sketch: occupied buckets
// in ascending key order. Equal sketches — in particular, the same
// observations merged in any order — marshal to identical bytes.
type SketchDump struct {
	RelErr float64 `json:"rel_err"`
	Zero   int64   `json:"zero,omitempty"`
	Keys   []int   `json:"keys,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// Dump returns the canonical form. The slices are freshly allocated.
func (s *Sketch) Dump() SketchDump {
	d := SketchDump{RelErr: s.relErr, Zero: s.zero}
	for _, k := range s.sortedKeys() {
		d.Keys = append(d.Keys, k)
		d.Counts = append(d.Counts, s.counts[k])
	}
	return d
}

// String renders a compact human-readable summary.
func (s *Sketch) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g (±%.2g%% rel, %d buckets)",
		s.N(), s.Mean(), s.Quantile(0.5), s.Quantile(0.99), s.Max(), s.relErr*100, s.Buckets())
}
