package cluster

import (
	"testing"

	"hyperprof/internal/netsim"
	"hyperprof/internal/sim"
	"hyperprof/internal/storage"
)

func testSpec() Spec {
	return Spec{
		Regions:         2,
		RacksPerRegion:  3,
		MachinesPerRack: 4,
		CoresPerMachine: 8,
		Storage: storage.Capacities{
			storage.RAM: 1 << 30, storage.SSD: 8 << 30, storage.HDD: 64 << 30,
		},
	}
}

func testManager(t *testing.T) *Manager {
	t.Helper()
	k := sim.New()
	net := netsim.New(k, netsim.DefaultConfig())
	m, err := NewManager(net, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFleetConstruction(t *testing.T) {
	m := testManager(t)
	if got := len(m.Machines()); got != 24 {
		t.Fatalf("machines = %d, want 24", got)
	}
	if got := m.TotalFreeCores(); got != 24*8 {
		t.Fatalf("free cores = %d", got)
	}
	regions := map[int]int{}
	for _, mc := range m.Machines() {
		regions[mc.Node.Region]++
		if mc.Store == nil || mc.Store.Capacity(storage.RAM) != 1<<30 {
			t.Fatal("store not provisioned")
		}
		if mc.Cores() != 8 || mc.FreeCores() != 8 {
			t.Fatal("core accounting")
		}
	}
	if regions[0] != 12 || regions[1] != 12 {
		t.Fatalf("region split = %v", regions)
	}
}

func TestSpecValidation(t *testing.T) {
	k := sim.New()
	net := netsim.New(k, netsim.DefaultConfig())
	if _, err := NewManager(net, Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	s := testSpec()
	s.CoresPerMachine = 0
	if _, err := NewManager(net, s); err == nil {
		t.Fatal("zero cores accepted")
	}
	s = testSpec()
	s.Storage = storage.Capacities{storage.RAM: 0, storage.SSD: 1, storage.HDD: 1}
	if _, err := NewManager(net, s); err == nil {
		t.Fatal("invalid storage accepted")
	}
}

func TestAllocateSpreadRacks(t *testing.T) {
	m := testManager(t)
	// 6 tasks over 6 racks: each on a distinct rack.
	got, err := m.Allocate(2, 6, SpreadRacks)
	if err != nil {
		t.Fatal(err)
	}
	racks := map[[2]int]bool{}
	for _, mc := range got {
		key := [2]int{mc.Node.Region, mc.Node.Rack}
		if racks[key] {
			t.Fatalf("rack %v used twice", key)
		}
		racks[key] = true
		if mc.FreeCores() != 6 {
			t.Fatalf("free cores = %d, want 6", mc.FreeCores())
		}
	}
}

func TestAllocateSpreadRegions(t *testing.T) {
	m := testManager(t)
	got, err := m.Allocate(1, 2, SpreadRegions)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Node.Region == got[1].Node.Region {
		t.Fatalf("both replicas in region %d", got[0].Node.Region)
	}
}

func TestAllocatePack(t *testing.T) {
	m := testManager(t)
	got, err := m.Allocate(4, 2, Pack)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] {
		t.Fatal("pack should co-locate while cores remain")
	}
	if got[0].FreeCores() != 0 {
		t.Fatalf("free cores = %d", got[0].FreeCores())
	}
}

func TestAllocateExhaustionIsAtomic(t *testing.T) {
	m := testManager(t)
	// Fleet has 192 cores; ask for more in one request.
	if _, err := m.Allocate(8, 25, Pack); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if m.TotalFreeCores() != 192 {
		t.Fatalf("failed allocation leaked cores: %d", m.TotalFreeCores())
	}
}

func TestAllocateInvalidArgs(t *testing.T) {
	m := testManager(t)
	if _, err := m.Allocate(0, 1, Pack); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := m.Allocate(1, 0, Pack); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestRelease(t *testing.T) {
	m := testManager(t)
	got, _ := m.Allocate(8, 24, Pack) // whole fleet
	if m.TotalFreeCores() != 0 {
		t.Fatalf("free = %d", m.TotalFreeCores())
	}
	m.Release(8, got)
	if m.TotalFreeCores() != 192 {
		t.Fatalf("after release free = %d", m.TotalFreeCores())
	}
	// Releasing again must not exceed machine capacity.
	m.Release(8, got)
	if m.TotalFreeCores() != 192 {
		t.Fatalf("double release inflated cores: %d", m.TotalFreeCores())
	}
}

func TestSuccessiveAllocationsRotate(t *testing.T) {
	m := testManager(t)
	a, _ := m.Allocate(1, 1, SpreadRacks)
	b, _ := m.Allocate(1, 1, SpreadRacks)
	if a[0] == b[0] {
		t.Fatal("successive single-task allocations landed on the same machine")
	}
}
