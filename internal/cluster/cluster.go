// Package cluster is the repository's Borg equivalent (§2.1): it owns a
// fleet of homogeneous machines across regions and racks, provisions their
// storage tiers, and places platform worker tasks with spreading policies.
package cluster

import (
	"fmt"

	"hyperprof/internal/netsim"
	"hyperprof/internal/storage"
)

// Spec describes a fleet to build.
type Spec struct {
	Regions         int
	RacksPerRegion  int
	MachinesPerRack int
	CoresPerMachine int
	// Storage provisions each machine's tiered store.
	Storage storage.Capacities
	// TierParams overrides media parameters (nil = defaults).
	TierParams map[storage.Tier]storage.TierParams
}

// Machines returns the total machine count.
func (s Spec) Machines() int { return s.Regions * s.RacksPerRegion * s.MachinesPerRack }

// Machine is one schedulable server: a network node plus its local tiered
// store and a free-core account.
type Machine struct {
	Node      *netsim.Node
	Store     *storage.TieredStore
	cores     int
	freeCores int
}

// FreeCores returns the machine's unallocated cores.
func (m *Machine) FreeCores() int { return m.freeCores }

// Cores returns the machine's total cores.
func (m *Machine) Cores() int { return m.cores }

// Policy selects how tasks spread over the fleet.
type Policy int

// Placement policies.
const (
	// SpreadRacks places consecutive tasks on distinct racks first (the
	// default for serving tasks).
	SpreadRacks Policy = iota
	// SpreadRegions places consecutive tasks on distinct regions first
	// (for replicated quorums).
	SpreadRegions
	// Pack fills machines in order (for batch work).
	Pack
)

// Manager owns the fleet and performs placement.
type Manager struct {
	net      *netsim.Network
	machines []*Machine
	next     int // rotation cursor for spreading
}

// NewManager builds the fleet described by spec on the given network.
func NewManager(net *netsim.Network, spec Spec) (*Manager, error) {
	if spec.Machines() <= 0 {
		return nil, fmt.Errorf("cluster: empty fleet spec")
	}
	if spec.CoresPerMachine <= 0 {
		return nil, fmt.Errorf("cluster: cores per machine must be positive")
	}
	m := &Manager{net: net}
	for r := 0; r < spec.Regions; r++ {
		for rack := 0; rack < spec.RacksPerRegion; rack++ {
			for i := 0; i < spec.MachinesPerRack; i++ {
				name := fmt.Sprintf("m-r%d-k%d-%d", r, rack, i)
				node := net.NewNode(name, r, rack, spec.CoresPerMachine)
				store, err := storage.NewTieredStore(spec.Storage, spec.TierParams)
				if err != nil {
					return nil, err
				}
				m.machines = append(m.machines, &Machine{
					Node:      node,
					Store:     store,
					cores:     spec.CoresPerMachine,
					freeCores: spec.CoresPerMachine,
				})
			}
		}
	}
	return m, nil
}

// Machines returns all machines in the fleet.
func (m *Manager) Machines() []*Machine { return m.machines }

// Network returns the fleet's network.
func (m *Manager) Network() *netsim.Network { return m.net }

// Allocate places count tasks each needing cores cores, returning the chosen
// machines (a machine may host several tasks if it has the cores). It fails
// without side effects if the fleet cannot host the request.
func (m *Manager) Allocate(cores, count int, policy Policy) ([]*Machine, error) {
	if cores <= 0 || count <= 0 {
		return nil, fmt.Errorf("cluster: invalid request %d cores x %d tasks", cores, count)
	}
	order := m.placementOrder(policy)
	chosen := make([]*Machine, 0, count)
	// Two passes: trial on a copy of free-core counts, then commit.
	free := make(map[*Machine]int, len(order))
	for _, mc := range order {
		free[mc] = mc.freeCores
	}
	idx := 0
	for len(chosen) < count {
		placed := false
		for probe := 0; probe < len(order); probe++ {
			mc := order[(idx+probe)%len(order)]
			if free[mc] >= cores {
				free[mc] -= cores
				chosen = append(chosen, mc)
				if policy != Pack {
					// Spreading policies move on after each placement;
					// Pack keeps filling the same machine.
					idx = (idx + probe + 1) % len(order)
				} else {
					idx = (idx + probe) % len(order)
				}
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("cluster: cannot place %d tasks x %d cores (placed %d)", count, cores, len(chosen))
		}
	}
	for _, mc := range chosen {
		mc.freeCores -= cores
	}
	if policy != Pack {
		m.next = (m.next + count) % len(m.machines)
	}
	return chosen, nil
}

// Release returns cores to each listed machine.
func (m *Manager) Release(cores int, machines []*Machine) {
	for _, mc := range machines {
		mc.freeCores += cores
		if mc.freeCores > mc.cores {
			mc.freeCores = mc.cores
		}
	}
}

// placementOrder returns machines ordered per policy, rotated by the cursor
// so successive allocations spread load.
func (m *Manager) placementOrder(policy Policy) []*Machine {
	n := len(m.machines)
	out := make([]*Machine, 0, n)
	switch policy {
	case Pack:
		out = append(out, m.machines...)
	case SpreadRegions, SpreadRacks:
		// Round-robin across the spread domain: visit machines in an order
		// that cycles through domains before revisiting one.
		domains := map[int][]*Machine{}
		var keys []int
		for _, mc := range m.machines {
			d := mc.Node.Rack + mc.Node.Region*1000
			if policy == SpreadRegions {
				d = mc.Node.Region
			}
			if _, ok := domains[d]; !ok {
				keys = append(keys, d)
			}
			domains[d] = append(domains[d], mc)
		}
		for i := 0; len(out) < n; i++ {
			for _, k := range keys {
				if i < len(domains[k]) {
					out = append(out, domains[k][i])
				}
			}
		}
	}
	if policy == Pack {
		return out
	}
	// Rotate by cursor for load spreading across allocations.
	start := m.next % n
	return append(out[start:], out[:start]...)
}

// TotalFreeCores sums free cores across the fleet.
func (m *Manager) TotalFreeCores() int {
	total := 0
	for _, mc := range m.machines {
		total += mc.freeCores
	}
	return total
}
