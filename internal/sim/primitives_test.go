package sim

import (
	"testing"
	"time"
)

// Tests for the wait-for-any composition hook (Signal.OnFire) and the
// wholesale-failure helper (Queue.Drain) that the RPC resilience layer
// builds on.

func TestSignalOnFireRunsAtFireTime(t *testing.T) {
	k := New()
	s := NewSignal(k)
	var firedAt time.Duration = -1
	s.OnFire(func() { firedAt = k.Now() })
	k.Schedule(7*time.Millisecond, s.Fire)
	k.Run()
	if firedAt != 7*time.Millisecond {
		t.Fatalf("hook ran at %v, want 7ms", firedAt)
	}
}

func TestSignalOnFireAfterFiredRunsImmediately(t *testing.T) {
	k := New()
	s := NewSignal(k)
	s.Fire()
	ran := false
	s.OnFire(func() { ran = true })
	if !ran {
		t.Fatal("hook on already-fired signal must run immediately")
	}
}

func TestSignalOnFireForwardsWaitForAny(t *testing.T) {
	// The composition pattern: several source signals forward into one gate,
	// a process waits on the gate, and the first source to fire releases it —
	// without any watcher processes that could leak.
	k := New()
	a, b := NewSignal(k), NewSignal(k)
	gate := NewSignal(k)
	a.OnFire(gate.Fire)
	b.OnFire(gate.Fire)
	var released time.Duration
	k.Go("waiter", func(p *Proc) {
		p.Wait(gate)
		released = p.Now()
	})
	k.Schedule(3*time.Millisecond, b.Fire)
	k.Schedule(9*time.Millisecond, a.Fire)
	k.Run()
	if released != 3*time.Millisecond {
		t.Fatalf("released at %v, want 3ms (first of the sources)", released)
	}
	if k.Live() != 0 {
		t.Fatalf("leaked procs: %d", k.Live())
	}
}

func TestSignalDoubleFireSkipsHooks(t *testing.T) {
	k := New()
	s := NewSignal(k)
	n := 0
	s.OnFire(func() { n++ })
	s.Fire()
	s.Fire()
	if n != 1 {
		t.Fatalf("hook ran %d times, want 1", n)
	}
}

func TestQueueDrain(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	q.Put(1)
	q.Put(2)
	q.Put(3)
	got := q.Drain()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Drain = %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
	if q.Drain() != nil {
		t.Fatal("second drain should be empty")
	}
}

func TestQueueDrainLeavesBlockedGetters(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var got int
	k.Go("getter", func(p *Proc) { got = GetQueue(p, q) })
	k.Run() // getter parks
	if items := q.Drain(); items != nil {
		t.Fatalf("drain of empty queue = %v", items)
	}
	q.Put(42) // blocked getter still serviceable after a drain
	k.Run()
	if got != 42 {
		t.Fatalf("got = %d, want 42", got)
	}
}
