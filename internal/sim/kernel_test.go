package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := New()
	var got []int
	k.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	end := k.Run()
	if end != 3*time.Millisecond {
		t.Fatalf("end time = %v, want 3ms", end)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestScheduleSameInstantFIFO(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v", got)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	k := New()
	fired := false
	k.Schedule(-time.Second, func() { fired = true })
	if end := k.Run(); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestProcSleep(t *testing.T) {
	k := New()
	var woke time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		p.Sleep(7 * time.Millisecond)
		woke = p.Now()
	})
	k.Run()
	if woke != 12*time.Millisecond {
		t.Fatalf("woke at %v, want 12ms", woke)
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d, want 0", k.Live())
	}
}

func TestProcSleepZeroAndNegative(t *testing.T) {
	k := New()
	done := false
	k.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-time.Second)
		done = true
	})
	k.Run()
	if !done || k.Now() != 0 {
		t.Fatalf("done=%v now=%v", done, k.Now())
	}
}

func TestManyProcsDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		k := New()
		var order []string
		for _, n := range []string{"a", "b", "c", "d"} {
			n := n
			k.Go(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					order = append(order, n)
				}
			})
		}
		k.Run()
		return order
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("lengths differ: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, first, again)
			}
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(3 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("now = %v, want 3ms", k.Now())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("after Run fired %v, want 3 events", fired)
	}
}

func TestResourceFIFOAdmission(t *testing.T) {
	k := New()
	r := NewResource(k, "cpu", 2)
	var order []string
	hold := func(name string, units int, d time.Duration) {
		k.Go(name, func(p *Proc) {
			p.Acquire(r, units)
			order = append(order, name+"+")
			p.Sleep(d)
			r.Release(units)
			order = append(order, name+"-")
		})
	}
	hold("a", 2, 10*time.Millisecond)
	hold("b", 2, 10*time.Millisecond) // must wait for a
	hold("c", 1, 1*time.Millisecond)  // arrives later; FIFO means it waits behind b
	k.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d", k.Live())
	}
}

func TestResourceConcurrentHolders(t *testing.T) {
	k := New()
	r := NewResource(k, "cpu", 3)
	var maxInUse int
	for i := 0; i < 9; i++ {
		k.Go("w", func(p *Proc) {
			p.Acquire(r, 1)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(time.Millisecond)
			r.Release(1)
		})
	}
	end := k.Run()
	if maxInUse != 3 {
		t.Fatalf("max in use = %d, want 3", maxInUse)
	}
	// 9 jobs of 1ms on 3 cores: 3ms total.
	if end != 3*time.Millisecond {
		t.Fatalf("makespan = %v, want 3ms", end)
	}
}

func TestResourceBusyTime(t *testing.T) {
	k := New()
	r := NewResource(k, "cpu", 4)
	k.Go("w", func(p *Proc) { p.Use(r, 2, 3*time.Millisecond) })
	k.Run()
	if got := r.BusyTime(); got != 6*time.Millisecond {
		t.Fatalf("busy = %v, want 6ms", got)
	}
}

func TestResourcePanics(t *testing.T) {
	k := New()
	mustPanic(t, "capacity", func() { NewResource(k, "x", 0) })
	r := NewResource(k, "x", 1)
	mustPanic(t, "release", func() { r.Release(1) })
	k.Go("p", func(p *Proc) {
		mustPanic(t, "acquire too many", func() { p.Acquire(r, 2) })
		mustPanic(t, "acquire zero", func() { p.Acquire(r, 0) })
	})
	k.Run()
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestSignalBroadcast(t *testing.T) {
	k := New()
	s := NewSignal(k)
	var woke []string
	for _, n := range []string{"x", "y", "z"} {
		n := n
		k.Go(n, func(p *Proc) {
			p.Wait(s)
			woke = append(woke, n)
		})
	}
	k.Schedule(4*time.Millisecond, s.Fire)
	k.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
	if k.Now() != 4*time.Millisecond {
		t.Fatalf("now = %v", k.Now())
	}
	// Waiting on an already-fired signal returns immediately.
	done := false
	k.Go("late", func(p *Proc) {
		p.Wait(s)
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("late waiter blocked on fired signal")
	}
}

func TestSignalDoubleFire(t *testing.T) {
	k := New()
	s := NewSignal(k)
	s.Fire()
	s.Fire() // must not panic
	if !s.Fired() {
		t.Fatal("not fired")
	}
}

func TestBarrier(t *testing.T) {
	k := New()
	b := NewBarrier(k, 3)
	reached := false
	k.Go("waiter", func(p *Proc) {
		p.WaitBarrier(b)
		reached = true
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.Schedule(time.Duration(i)*time.Millisecond, b.Done)
	}
	k.Run()
	if !reached {
		t.Fatal("barrier never completed")
	}
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("now = %v, want 3ms", k.Now())
	}
	b.Done() // extra Done is a no-op
	if b.Pending() != 0 {
		t.Fatalf("pending = %d", b.Pending())
	}
}

func TestBarrierZero(t *testing.T) {
	k := New()
	b := NewBarrier(k, 0)
	ok := false
	k.Go("w", func(p *Proc) {
		p.WaitBarrier(b)
		ok = true
	})
	k.Run()
	if !ok {
		t.Fatal("zero barrier should be pre-fired")
	}
}

func TestQueueFIFO(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, GetQueue(p, q))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d", k.Live())
	}
}

func TestQueuePutBeforeGet(t *testing.T) {
	k := New()
	q := NewQueue[string](k)
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	var got []string
	k.Go("c", func(p *Proc) {
		got = append(got, GetQueue(p, q), GetQueue(p, q))
	})
	k.Run()
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueMultipleBlockedGetters(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var got []int
	for i := 0; i < 3; i++ {
		k.Go("g", func(p *Proc) { got = append(got, GetQueue(p, q)) })
	}
	k.Schedule(time.Millisecond, func() { q.Put(1); q.Put(2); q.Put(3) })
	k.Run()
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("getter wake order: %v", got)
		}
	}
}

func TestDeadlockLeavesLiveProcs(t *testing.T) {
	k := New()
	s := NewSignal(k) // never fired
	k.Go("stuck", func(p *Proc) { p.Wait(s) })
	k.Run()
	if k.Live() != 1 {
		t.Fatalf("live = %d, want 1 (deadlocked proc)", k.Live())
	}
	s.Fire() // release so the goroutine can exit during test teardown
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("live = %d after fire", k.Live())
	}
}

func TestNestedSpawn(t *testing.T) {
	k := New()
	total := 0
	k.Go("parent", func(p *Proc) {
		b := NewBarrier(k, 4)
		for i := 1; i <= 4; i++ {
			i := i
			k.Go("child", func(c *Proc) {
				c.Sleep(time.Duration(i) * time.Millisecond)
				total += i
				b.Done()
			})
		}
		p.WaitBarrier(b)
		total *= 10
	})
	k.Run()
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
}
