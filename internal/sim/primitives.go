package sim

import "time"

// This file provides the blocking coordination primitives processes use:
// counting resources with FIFO admission, one-shot signals, countdown
// barriers, and typed FIFO queues.

// Resource is a counting resource (CPU cores, disk spindles, link slots) with
// strict FIFO admission: waiters acquire in the order they asked, and a large
// request at the head of the line blocks smaller ones behind it, which models
// non-starving hardware arbitration.
type Resource struct {
	k       *Kernel
	name    string
	cap     int
	inUse   int
	waiters []resWaiter

	// Busy accumulates inUse-weighted time for utilization reporting.
	busy     time.Duration
	lastTick time.Duration
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (must be > 0).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// BusyTime returns the accumulated unit-weighted busy time: holding 2 units
// for 3ms adds 6ms.
func (r *Resource) BusyTime() time.Duration {
	r.account()
	return r.busy
}

func (r *Resource) account() {
	now := r.k.now
	r.busy += time.Duration(r.inUse) * (now - r.lastTick)
	r.lastTick = now
}

// Acquire blocks the calling process until n units are available and held.
// n must be between 1 and the resource capacity.
func (p *Proc) Acquire(r *Resource, n int) {
	if n <= 0 || n > r.cap {
		panic("sim: acquire count out of range")
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.cap {
		r.account()
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.park()
}

// Release returns n units to the resource and admits queued waiters in FIFO
// order. Release may be called from kernel context or any process.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic("sim: release count out of range")
	}
	r.account()
	r.inUse -= n
	for len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.cap {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		r.k.wake(r.k.now, w.p)
	}
}

// Use acquires n units of r, sleeps for d, and releases them.
func (p *Proc) Use(r *Resource, n int, d time.Duration) {
	p.Acquire(r, n)
	p.Sleep(d)
	r.Release(n)
}

// Signal is a one-shot broadcast event. Processes that Wait before Fire block
// until it fires; waits after Fire return immediately.
type Signal struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
	hooks   []func()
}

// NewSignal creates an unfired signal.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		s.k.wake(s.k.now, w)
	}
	s.waiters = nil
	for _, fn := range s.hooks {
		fn()
	}
	s.hooks = nil
}

// OnFire registers fn to run (in the firing context) when the signal fires;
// if it already fired, fn runs immediately. It is the composition hook behind
// wait-for-any patterns: forward several signals into one without spawning
// watcher processes that could outlive the simulation.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		fn()
		return
	}
	s.hooks = append(s.hooks, fn)
}

// Wait blocks the calling process until the signal fires.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Barrier fires its signal after Done has been called n times. It is the
// join primitive for fan-out/fan-in patterns (e.g. waiting for replica acks).
type Barrier struct {
	sig     *Signal
	pending int
}

// NewBarrier creates a barrier expecting n completions. A barrier with n <= 0
// is already fired.
func NewBarrier(k *Kernel, n int) *Barrier {
	b := &Barrier{sig: NewSignal(k), pending: n}
	if n <= 0 {
		b.sig.Fire()
	}
	return b
}

// Done records one completion. Calls beyond the expected count are no-ops.
func (b *Barrier) Done() {
	if b.pending <= 0 {
		return
	}
	b.pending--
	if b.pending == 0 {
		b.sig.Fire()
	}
}

// Pending returns the number of completions still awaited.
func (b *Barrier) Pending() int { return b.pending }

// WaitBarrier blocks the calling process until the barrier completes.
func (p *Proc) WaitBarrier(b *Barrier) { p.Wait(b.sig) }

// Queue is an unbounded FIFO queue of T with blocking Get, the mailbox
// primitive for worker loops. It has two bands: items added with Put form
// the normal FIFO band, and items added with PutHigh form a priority band
// serviced first (FIFO among themselves) — the lane that lets system and
// checker traffic overtake a brownout backlog.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*queueWaiter[T]
	// high is the length of the priority band: items[0:high] were PutHigh,
	// items[high:] were Put.
	high int
}

type queueWaiter[T any] struct {
	p    *Proc
	item T
}

// NewQueue creates an empty queue.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len returns the number of queued items (not counting blocked getters).
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends an item, waking the oldest blocked getter if any. It may be
// called from kernel context or any process.
func (q *Queue[T]) Put(v T) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.item = v
		q.k.wake(q.k.now, w.p)
		return
	}
	q.items = append(q.items, v)
}

// PutHigh adds an item to the priority band: it is delivered before every
// normal-band item but after earlier PutHigh items. With a blocked getter
// waiting the bands are indistinguishable (the item is handed over directly).
func (q *Queue[T]) PutHigh(v T) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.item = v
		q.k.wake(q.k.now, w.p)
		return
	}
	q.items = append(q.items, v)
	copy(q.items[q.high+1:], q.items[q.high:])
	q.items[q.high] = v
	q.high++
}

// Drain removes and returns all queued items without waking blocked getters.
// Callers use it to fail pending work wholesale (e.g. a crashed RPC server
// erroring out its backlog).
func (q *Queue[T]) Drain() []T {
	items := q.items
	q.items = nil
	q.high = 0
	return items
}

// GetQueue blocks p until an item is available in q and returns it.
func GetQueue[T any](p *Proc, q *Queue[T]) T {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		if q.high > 0 {
			q.high--
		}
		return v
	}
	w := &queueWaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.park()
	return w.item
}
