// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every platform simulation in this repository (Spanner, BigTable, BigQuery,
// the accelerated SoC) runs on this kernel. Virtual time is a time.Duration
// measured from simulation start. Processes are ordinary goroutines that run
// in strict alternation with the kernel: at any instant exactly one goroutine
// (either the kernel or a single process) is executing, so simulations are
// reproducible bit-for-bit and need no locking.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Kernel is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Kernel struct {
	now    time.Duration
	seq    int64
	events eventHeap
	yield  chan struct{}
	live   int // processes started and not yet terminated
	parked int // processes currently blocked on a primitive
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Live reports the number of processes that have been started and have not
// yet terminated. After Run returns, a nonzero Live count means processes are
// deadlocked waiting on primitives nobody will fire.
func (k *Kernel) Live() int { return k.live }

// Schedule runs fn in kernel context after delay d. A negative delay is
// treated as zero. Events scheduled for the same instant run in the order
// they were scheduled.
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, fn)
}

func (k *Kernel) push(at time.Duration, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// Go starts a new process executing fn. The process begins at the current
// virtual time, after already-scheduled events for this instant. Go may be
// called before Run, from kernel context, or from another process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	go func() {
		<-p.resume
		fn(p)
		k.live--
		k.yield <- struct{}{}
	}()
	k.Schedule(0, func() { k.step(p) })
	return p
}

// step transfers control to process p until it parks or terminates.
func (k *Kernel) step(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// Run executes events until the event queue is empty. It returns the virtual
// time of the last event executed.
func (k *Kernel) Run() time.Duration {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		e.fn()
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled after t remain queued.
func (k *Kernel) RunUntil(t time.Duration) {
	for len(k.events) > 0 && k.events[0].at <= t {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		e.fn()
	}
	if k.now < t {
		k.now = t
	}
}

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Proc is a simulated process. All Proc methods must be called from within
// the process's own goroutine (i.e. from the fn passed to Kernel.Go).
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// park blocks the process until some event resumes it.
func (p *Proc) park() {
	p.k.parked++
	p.k.yield <- struct{}{}
	<-p.resume
	p.k.parked--
}

// Sleep blocks the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	k := p.k
	k.push(k.now+d, func() { k.step(p) })
	p.park()
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
