// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every platform simulation in this repository (Spanner, BigTable, BigQuery,
// the accelerated SoC) runs on this kernel. Virtual time is a time.Duration
// measured from simulation start. Processes are ordinary goroutines that run
// in strict alternation with the kernel: at any instant exactly one goroutine
// (either the kernel or a single process) is executing, so simulations are
// reproducible bit-for-bit and need no locking.
//
// A Kernel is single-threaded by construction, but distinct kernels share no
// state, so independent simulations may run on concurrent goroutines (the
// experiments runner exploits this; see DESIGN.md "Performance
// architecture").
package sim

import (
	"fmt"
	"slices"
	"time"
)

// Kernel is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Kernel struct {
	now    time.Duration
	seq    int64
	events eventQueue
	yield  chan struct{}
	live   int // processes started and not yet terminated
	parked int // processes currently blocked on a primitive
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// NewHeapOnly returns a kernel whose event queue bypasses the timer wheel
// and runs every event through the comparison heap alone. Pop order is
// identical to New — the wheel is a routing layer, not an ordering one — so
// the only observable difference is speed. It exists as the measurable
// baseline for the dense-timer benchmarks and the differential ordering
// tests; simulations should use New.
func NewHeapOnly() *Kernel {
	k := &Kernel{yield: make(chan struct{})}
	k.events.heapOnly = true
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Live reports the number of processes that have been started and have not
// yet terminated. After Run returns, a nonzero Live count means processes are
// deadlocked waiting on primitives nobody will fire.
func (k *Kernel) Live() int { return k.live }

// PendingEvents returns the number of events currently queued. Under strict
// alternation, events are the only thing that wakes a parked process, so a
// zero count observed from inside an executing event means no further work
// can occur after it returns. Periodic self-rescheduling activities (the obs
// sampling tick) use this to stop exactly when the workload drains instead
// of keeping the kernel alive forever.
func (k *Kernel) PendingEvents() int { return k.events.len() }

// Schedule runs fn in kernel context after delay d. A negative delay is
// treated as zero. Events scheduled for the same instant run in the order
// they were scheduled.
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, fn)
}

func (k *Kernel) push(at time.Duration, fn func()) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, cb: fn})
}

// ScheduleArg runs fn(arg) in kernel context after delay d. It is the
// allocation-free form of Schedule for hot paths: because fn takes its state
// as an explicit argument, the caller can hoist one func value and pass a
// pointer-shaped arg per event, and neither boxing a pointer into the `any`
// nor storing it in the value-typed event allocates. Schedule's closure form
// costs one allocation per distinct captured state; in a dense-timer loop
// that is one allocation per event.
func (k *Kernel) ScheduleArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	k.seq++
	k.events.push(event{at: k.now + d, seq: k.seq, cb: fn, arg: arg})
}

// wake enqueues a resume of process p at virtual time `at`. It is the
// allocation-free fast path behind Sleep and the primitive wakeups: unlike
// Schedule it carries the process in the event value itself instead of a
// heap-allocated closure, so the steady-state park/resume cycle performs no
// allocation at all.
func (k *Kernel) wake(at time.Duration, p *Proc) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, cb: p})
}

// Go starts a new process executing fn. The process begins at the current
// virtual time, after already-scheduled events for this instant. Go may be
// called before Run, from kernel context, or from another process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	go func() {
		<-p.resume
		fn(p)
		k.live--
		k.yield <- struct{}{}
	}()
	k.wake(k.now, p)
	return p
}

// step transfers control to process p until it parks or terminates.
func (k *Kernel) step(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// dispatch executes one popped event in kernel context. The type switch
// compares interface type words — no allocation, no reflection — ordered by
// steady-state frequency: proc wakes dominate platform simulations,
// argument callbacks the dense-timer paths.
func (k *Kernel) dispatch(e event) {
	switch f := e.cb.(type) {
	case *Proc:
		k.step(f)
	case func(any):
		f(e.arg)
	default:
		e.cb.(func())()
	}
}

// Run executes events until the event queue is empty. It returns the virtual
// time of the last event executed.
func (k *Kernel) Run() time.Duration {
	for k.events.len() > 0 {
		e := k.events.pop()
		k.now = e.at
		k.dispatch(e)
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled after t remain queued.
func (k *Kernel) RunUntil(t time.Duration) {
	for k.events.len() > 0 && k.events.min().at <= t {
		e := k.events.pop()
		k.now = e.at
		k.dispatch(e)
	}
	if k.now < t {
		k.now = t
	}
}

// event is one queue entry, held by value inside the queue's backing slices
// so scheduling never performs a per-event allocation (the old
// container/heap queue boxed a pointer per event). cb is one of three
// pointer-shaped payloads — a func() closure (Schedule), a func(any)
// callback paired with arg (the ScheduleArg fast path), or a *Proc to
// resume (the wake fast path) — dispatched by type switch. Folding the
// three into one interface word keeps the event at 48 bytes with only two
// GC-scanned words; queues at fleet scale hold millions of these, so both
// the copy width and the mark cost show up directly in event throughput.
// Value-typed events subsume a timer free-list — popped slots are reused in
// place by later pushes, and emptied wheel buckets keep their capacity.
type event struct {
	at  time.Duration
	seq int64
	cb  any
	arg any
}

// before orders events by (time, schedule sequence); seq is unique per
// kernel, making this a total order, so the pop sequence — and therefore the
// simulation — is identical regardless of queue tiering or heap layout.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Timer-wheel geometry. The wheel spans wheelBuckets buckets of
// wheelGran virtual time each; with a 16.4µs granularity and 256 buckets
// the horizon is ~4.2ms, which covers the dense-timer regime (RPC
// service/transit times, retry backoffs) while long sleeps and far-future
// timers overflow to the comparison heap.
const (
	wheelShift   = 14 // log2 of bucket granularity in nanoseconds
	wheelGran    = time.Duration(1) << wheelShift
	wheelBuckets = 256 // power of two so index masking is a single AND
	wheelMask    = wheelBuckets - 1
	wheelHorizon = wheelGran * wheelBuckets

	// wheelBucketCap is each bucket's pre-carved arena capacity; see
	// initWheel.
	wheelBucketCap = 4
)

// eventQueue is a three-tier calendar queue preserving exact (at, seq) pop
// order:
//
//   - run+spill (the near tier): everything earlier than the boundary. run
//     is the last swept wheel bucket, sorted once by (at, seq) and consumed
//     front to back — batch event application, with O(1) pops. spill is a
//     small 4-ary heap catching events scheduled behind the boundary after
//     their bucket was already swept (typically same-instant follow-ons,
//     popped back off while the heap is a handful deep). The global minimum
//     is the smaller of the two heads.
//   - wheel: a hierarchical-timer-wheel level of wheelBuckets unsorted
//     buckets covering [boundary, boundary+wheelHorizon). Pushing into a
//     bucket is O(1) append; ordering is recovered lazily when the boundary
//     sweeps past a bucket. The comparison work therefore scales with
//     bucket occupancy, not queue size, which is what makes the
//     dense-timer regime cheap.
//   - far: a 4-ary heap for events at or beyond the wheel horizon at push
//     time. Far events never migrate through buckets: each sweep pops the
//     far events maturing in its window — already in (at, seq) order, since
//     heap pops are sorted — and merges them with the bucket's sorted
//     batch. The invariant is simply far.min ≥ boundary.
//
// Tier routing never reorders events: a bucket is swept only once the near
// tier has fully drained, so all events for a given instant are in the near
// tier together before that instant can pop, and sort-merge-plus-spill
// restores the total (at, seq) order. boundary is bucket-aligned and only
// advances, so a kernel's pop sequence is bit-identical to a single heap's.
//
// With heapOnly set, every event routes to the spill heap and the queue
// degenerates to the pre-wheel single heap — the measurable baseline for
// the wheel.
type eventQueue struct {
	heapOnly  bool
	wheelInit bool
	size      int
	boundary  time.Duration // bucket-aligned; near tier holds events < boundary
	runHead   int
	run       []event  // sorted batch from the last sweep
	keys      []uint64 // scratch for advance's sort-by-key pass
	farRun    []event  // scratch for far events maturing into a sweep
	spill     eventHeap
	far       eventHeap
	wheelN    int // events currently resident in wheel buckets
	wheel     [wheelBuckets][]event
}

func (q *eventQueue) len() int { return q.size }

// initWheel carves every bucket's initial storage out of one shared arena
// (full-slice expressions cap each bucket so an overflowing one reallocates
// independently without bleeding into its neighbour). One allocation warms
// the whole wheel; without the arena, first-touch growth of each bucket
// would cost O(wheelBuckets) allocations per kernel and break the
// steady-state zero-alloc guarantee the park/resume tests pin.
func (q *eventQueue) initWheel() {
	const c = wheelBucketCap
	arena := make([]event, wheelBuckets*c)
	for i := range q.wheel {
		q.wheel[i] = arena[i*c : i*c : i*c+c]
	}
	q.wheelInit = true
}

func (q *eventQueue) push(e event) {
	q.size++
	switch {
	case q.heapOnly || e.at < q.boundary:
		q.spill.push(e)
	case e.at < q.boundary+wheelHorizon:
		if !q.wheelInit {
			q.initWheel()
		}
		i := (e.at >> wheelShift) & wheelMask
		q.wheel[i] = append(q.wheel[i], e)
		q.wheelN++
	default:
		q.far.push(e)
	}
}

// min returns the earliest event without removing it. It must not be called
// on an empty queue. Advancing the wheel to expose the minimum mutates tier
// placement but never contents or order, so min stays logically read-only.
func (q *eventQueue) min() event {
	for {
		if q.runHead < len(q.run) {
			if len(q.spill.ev) > 0 && q.spill.ev[0].before(q.run[q.runHead]) {
				return q.spill.ev[0]
			}
			return q.run[q.runHead]
		}
		if len(q.spill.ev) > 0 {
			return q.spill.ev[0]
		}
		q.advance()
	}
}

// pop removes and returns the earliest event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	for {
		if q.runHead < len(q.run) {
			q.size--
			if len(q.spill.ev) > 0 && q.spill.ev[0].before(q.run[q.runHead]) {
				return q.spill.pop()
			}
			e := q.run[q.runHead]
			q.run[q.runHead] = event{} // release cb/arg references for GC
			q.runHead++
			return e
		}
		if len(q.spill.ev) > 0 {
			q.size--
			return q.spill.pop()
		}
		q.advance()
	}
}

// advance moves the boundary forward one sweep, batch-applying matured
// events into the run. It is only reached with run and spill both drained.
// One sweep covers one bucket-width window [boundary, boundary+wheelGran):
// the bucket's events are sorted by (at, seq) and the far events maturing
// in the window — popped from the heap already in (at, seq) order — are
// merged in. When the wheel is empty the boundary first jumps straight to
// the far tier's next bucket, so long quiet stretches cost one step, not
// one step per empty bucket. Progress is guaranteed while the queue is
// non-empty: the wheel holds an event within wheelBuckets sweeps of the
// boundary, or the jump lands the sweep window on far's minimum.
func (q *eventQueue) advance() {
	if q.wheelN == 0 {
		// Wheel empty: the next event lives in far (alignment keeps the
		// boundary's bucket-index arithmetic exact, and far.min ≥ boundary
		// keeps the jump monotone).
		q.boundary = q.far.ev[0].at &^ (wheelGran - 1)
	}
	sweepEnd := q.boundary + wheelGran
	i := (q.boundary >> wheelShift) & wheelMask
	b := q.wheel[i]
	q.wheelN -= len(b)
	q.boundary = sweepEnd

	// Far events maturing in this window, in (at, seq) order.
	fr := q.farRun[:0]
	for len(q.far.ev) > 0 && q.far.ev[0].at < sweepEnd {
		fr = append(fr, q.far.pop())
	}
	q.farRun = fr

	if len(b) == 0 && len(fr) == 0 {
		return // empty window; callers loop
	}
	q.runHead = 0

	// Sort the bucket by (at, seq). Buckets fill in seq order, so
	// same-instant runs arrive pre-sorted: small buckets use an adaptive
	// in-place insertion sort. Dense buckets would spend most of a direct
	// sort copying 48-byte events around, so they sort compact keys and
	// gather once: the key packs the event's offset within the bucket
	// (< wheelGran, 14 bits) above its append index, and bucket append
	// order is seq order, so key order is exactly (at, seq) order.
	if len(b) <= 32 {
		for j := 1; j < len(b); j++ {
			e := b[j]
			m := j
			for m > 0 && e.before(b[m-1]) {
				b[m] = b[m-1]
				m--
			}
			b[m] = e
		}
		if len(fr) == 0 {
			// The bucket becomes the run wholesale; the consumed run's
			// backing array becomes the bucket's next arena. Steady-state
			// wheel traffic allocates nothing.
			q.wheel[i] = q.run[:0]
			q.run = b
			return
		}
		// Merge the two sorted runs into the consumed run's array.
		dst := q.run[:0]
		bi, fi := 0, 0
		for bi < len(b) && fi < len(fr) {
			if b[bi].before(fr[fi]) {
				dst = append(dst, b[bi])
				bi++
			} else {
				dst = append(dst, fr[fi])
				fi++
			}
		}
		dst = append(dst, b[bi:]...)
		dst = append(dst, fr[fi:]...)
		q.run = dst
		clearEvents(b)
		q.wheel[i] = b[:0]
		clearEvents(fr)
		q.farRun = fr[:0]
		return
	}
	keys := q.keys[:0]
	for j, e := range b {
		keys = append(keys, uint64(e.at&(wheelGran-1))<<48|uint64(j))
	}
	slices.Sort(keys)
	q.keys = keys
	// Gather the bucket through the sorted keys, merging the far run's
	// cursor in as it goes — one pass, one copy per event.
	dst := q.run[:0]
	fi := 0
	for _, kk := range keys {
		e := b[kk&(1<<48-1)]
		for fi < len(fr) && fr[fi].before(e) {
			dst = append(dst, fr[fi])
			fi++
		}
		dst = append(dst, e)
	}
	dst = append(dst, fr[fi:]...)
	q.run = dst
	clearEvents(b)
	q.wheel[i] = b[:0]
	clearEvents(fr)
	q.farRun = fr[:0]
}

// clearEvents zeroes a consumed scratch slice so it does not pin cb/arg
// references for the garbage collector; the backing array is recycled.
func clearEvents(ev []event) {
	for j := range ev {
		ev[j] = event{}
	}
}

// eventHeap is an inlined 4-ary min-heap over value-typed events. Arity 4
// halves the tree depth of a binary heap, which matters because sift-down
// dominates: DES queues pop from the root far more often than they percolate
// from the leaves ("hold" operations land near the bottom).
type eventHeap struct {
	ev []event
}

func (q *eventHeap) push(e event) {
	q.ev = append(q.ev, e)
	// Sift up: hole-based, writing the new event once at its final slot.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.before(q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = e
}

// pop removes and returns the earliest event. It must not be called on an
// empty heap.
func (q *eventHeap) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release cb/arg references for GC
	q.ev = q.ev[:n]
	if n == 0 {
		return top
	}
	// Sift down: hole-based from the root, writing `last` once at the end.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.ev[c].before(q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].before(last) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = last
	return top
}

// Proc is a simulated process. All Proc methods must be called from within
// the process's own goroutine (i.e. from the fn passed to Kernel.Go).
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// park blocks the process until some event resumes it.
func (p *Proc) park() {
	p.k.parked++
	p.k.yield <- struct{}{}
	<-p.resume
	p.k.parked--
}

// Sleep blocks the process for virtual duration d. It rides the wake fast
// path: the timer is a value-typed event carrying p itself, so a
// Sleep→park→resume cycle allocates nothing in steady state.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	k := p.k
	k.wake(k.now+d, p)
	p.park()
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
