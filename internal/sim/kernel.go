// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every platform simulation in this repository (Spanner, BigTable, BigQuery,
// the accelerated SoC) runs on this kernel. Virtual time is a time.Duration
// measured from simulation start. Processes are ordinary goroutines that run
// in strict alternation with the kernel: at any instant exactly one goroutine
// (either the kernel or a single process) is executing, so simulations are
// reproducible bit-for-bit and need no locking.
//
// A Kernel is single-threaded by construction, but distinct kernels share no
// state, so independent simulations may run on concurrent goroutines (the
// experiments runner exploits this; see DESIGN.md "Performance
// architecture").
package sim

import (
	"fmt"
	"time"
)

// Kernel is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Kernel struct {
	now    time.Duration
	seq    int64
	events eventQueue
	yield  chan struct{}
	live   int // processes started and not yet terminated
	parked int // processes currently blocked on a primitive
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Live reports the number of processes that have been started and have not
// yet terminated. After Run returns, a nonzero Live count means processes are
// deadlocked waiting on primitives nobody will fire.
func (k *Kernel) Live() int { return k.live }

// PendingEvents returns the number of events currently queued. Under strict
// alternation, events are the only thing that wakes a parked process, so a
// zero count observed from inside an executing event means no further work
// can occur after it returns. Periodic self-rescheduling activities (the obs
// sampling tick) use this to stop exactly when the workload drains instead
// of keeping the kernel alive forever.
func (k *Kernel) PendingEvents() int { return k.events.len() }

// Schedule runs fn in kernel context after delay d. A negative delay is
// treated as zero. Events scheduled for the same instant run in the order
// they were scheduled.
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, fn)
}

func (k *Kernel) push(at time.Duration, fn func()) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, fn: fn})
}

// wake enqueues a resume of process p at virtual time `at`. It is the
// allocation-free fast path behind Sleep and the primitive wakeups: unlike
// Schedule it carries the process in the event value itself instead of a
// heap-allocated closure, so the steady-state park/resume cycle performs no
// allocation at all.
func (k *Kernel) wake(at time.Duration, p *Proc) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, proc: p})
}

// Go starts a new process executing fn. The process begins at the current
// virtual time, after already-scheduled events for this instant. Go may be
// called before Run, from kernel context, or from another process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	go func() {
		<-p.resume
		fn(p)
		k.live--
		k.yield <- struct{}{}
	}()
	k.wake(k.now, p)
	return p
}

// step transfers control to process p until it parks or terminates.
func (k *Kernel) step(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// dispatch executes one popped event in kernel context.
func (k *Kernel) dispatch(e event) {
	if e.proc != nil {
		k.step(e.proc)
		return
	}
	e.fn()
}

// Run executes events until the event queue is empty. It returns the virtual
// time of the last event executed.
func (k *Kernel) Run() time.Duration {
	for k.events.len() > 0 {
		e := k.events.pop()
		k.now = e.at
		k.dispatch(e)
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled after t remain queued.
func (k *Kernel) RunUntil(t time.Duration) {
	for k.events.len() > 0 && k.events.min().at <= t {
		e := k.events.pop()
		k.now = e.at
		k.dispatch(e)
	}
	if k.now < t {
		k.now = t
	}
}

// event is one queue entry, held by value inside the heap's backing slice so
// scheduling never performs a per-event allocation (the old container/heap
// queue boxed a pointer per event). Exactly one of fn and proc is set: fn is
// a kernel-context callback, proc a process to resume. Value-typed events
// subsume a timer free-list — popped slots are reused in place by later
// pushes.
type event struct {
	at   time.Duration
	seq  int64
	fn   func()
	proc *Proc
}

// before orders events by (time, schedule sequence); seq is unique per
// kernel, making this a total order, so the pop sequence — and therefore the
// simulation — is identical regardless of heap arity or layout.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is an inlined 4-ary min-heap over value-typed events. Arity 4
// halves the tree depth of a binary heap, which matters because sift-down
// dominates: DES queues pop from the root far more often than they percolate
// from the leaves ("hold" operations land near the bottom).
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// min returns the earliest event without removing it. It must not be called
// on an empty queue.
func (q *eventQueue) min() event { return q.ev[0] }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift up: hole-based, writing the new event once at its final slot.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.before(q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = e
}

// pop removes and returns the earliest event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release fn/proc references for GC
	q.ev = q.ev[:n]
	if n == 0 {
		return top
	}
	// Sift down: hole-based from the root, writing `last` once at the end.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.ev[c].before(q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].before(last) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = last
	return top
}

// Proc is a simulated process. All Proc methods must be called from within
// the process's own goroutine (i.e. from the fn passed to Kernel.Go).
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// park blocks the process until some event resumes it.
func (p *Proc) park() {
	p.k.parked++
	p.k.yield <- struct{}{}
	<-p.resume
	p.k.parked--
}

// Sleep blocks the process for virtual duration d. It rides the wake fast
// path: the timer is a value-typed event carrying p itself, so a
// Sleep→park→resume cycle allocates nothing in steady state.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	k := p.k
	k.wake(k.now+d, p)
	p.park()
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
