package sim

import "testing"

// TestQueuePriorityBandOrdering checks the two-band Queue contract: PutHigh
// items are delivered before every Put item, FIFO within each band, and a
// blocked getter receives whichever item arrives first regardless of band.
func TestQueuePriorityBandOrdering(t *testing.T) {
	k := New()
	q := NewQueue[int](k)

	q.Put(1)
	q.Put(2)
	q.PutHigh(10)
	q.Put(3)
	q.PutHigh(11)

	var got []int
	k.Go("getter", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, GetQueue(p, q))
		}
	})
	k.Run()

	want := []int{10, 11, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", got, want)
		}
	}
}

// TestQueuePutHighHandsToBlockedGetter checks that a PutHigh with a getter
// already parked hands the item over directly (bands only matter for the
// backlog), and that Drain resets the priority cursor.
func TestQueuePutHighHandsToBlockedGetter(t *testing.T) {
	k := New()
	q := NewQueue[int](k)

	var got int
	k.Go("getter", func(p *Proc) { got = GetQueue(p, q) })
	k.Go("putter", func(p *Proc) { q.PutHigh(42) })
	k.Run()
	if got != 42 {
		t.Fatalf("blocked getter got %d, want 42", got)
	}

	q.PutHigh(1)
	q.Put(2)
	if n := len(q.Drain()); n != 2 {
		t.Fatalf("Drain returned %d items, want 2", n)
	}
	// After Drain the priority cursor must be reset: a plain Put followed by
	// a PutHigh must still order the high item first.
	q.Put(5)
	q.PutHigh(6)
	var order []int
	k.Go("getter2", func(p *Proc) {
		order = append(order, GetQueue(p, q), GetQueue(p, q))
	})
	k.Run()
	if order[0] != 6 || order[1] != 5 {
		t.Fatalf("post-Drain order = %v, want [6 5]", order)
	}
}
