package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestEventQueueMatchesSortOrder drives the 4-ary heap with adversarial
// pushes and pops interleaved, and checks the pop sequence is exactly the
// (at, seq) sort order — the invariant the kernel's determinism rests on.
func TestEventQueueMatchesSortOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	var pending []event
	var popped []event
	seq := int64(0)
	for round := 0; round < 2000; round++ {
		if len(pending) == 0 || rng.Intn(3) > 0 {
			seq++
			// Few distinct timestamps so same-instant FIFO is exercised hard.
			e := event{at: time.Duration(rng.Intn(16)), seq: seq}
			q.push(e)
			pending = append(pending, e)
		} else {
			popped = append(popped, q.pop())
			pending = pending[:len(pending)-1]
		}
	}
	for q.len() > 0 {
		popped = append(popped, q.pop())
	}
	sort.Slice(popped, func(i, j int) bool { return popped[i].seq < popped[j].seq })
	// Replay: push everything again and pop all; must come out fully sorted.
	var q2 eventQueue
	for _, e := range popped {
		q2.push(e)
	}
	prev := q2.pop()
	for q2.len() > 0 {
		next := q2.pop()
		if next.before(prev) {
			t.Fatalf("heap order violated: (%v,%d) popped after (%v,%d)", prev.at, prev.seq, next.at, next.seq)
		}
		prev = next
	}
}

// TestSleepParkResumeAllocFree asserts the kernel's hot loop — a process
// sleeping and resuming through the value-typed event heap — allocates
// nothing in steady state. This is the invariant BenchmarkSimProcSwitch
// tracks; a regression here silently slows every platform simulation.
func TestSleepParkResumeAllocFree(t *testing.T) {
	const cycles = 2000
	avg := testing.AllocsPerRun(5, func() {
		k := New()
		k.Go("sleeper", func(p *Proc) {
			for i := 0; i < cycles; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		k.Run()
	})
	// Building the kernel and starting the process costs a fixed handful of
	// allocations (kernel, proc, channels, goroutine, initial heap growth);
	// the 2000 sleep cycles themselves must cost none. The old
	// container/heap queue paid 2 allocs per cycle (~4000 here).
	if avg > 25 {
		t.Fatalf("sleep/park/resume allocated %.0f objects across %d cycles, want setup-only (<=25)", avg, cycles)
	}
}

// TestScheduleStormDeterminism schedules a large randomized event storm twice
// and checks the execution orders are identical — the heap rewrite must not
// perturb tie-breaking.
func TestScheduleStormDeterminism(t *testing.T) {
	run := func() []int {
		rng := rand.New(rand.NewSource(7))
		k := New()
		var order []int
		for i := 0; i < 5000; i++ {
			i := i
			k.Schedule(time.Duration(rng.Intn(64))*time.Microsecond, func() {
				order = append(order, i)
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event storm diverged at index %d", i)
		}
	}
}
