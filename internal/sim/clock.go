package sim

import "time"

// Clock is a per-node wall clock over the kernel's true virtual time: the
// node reads true time plus an injected offset plus accumulated drift, and
// knows its reading only up to a bounded uncertainty eps. It is the
// simulation's substitute for TrueTime: TT.now() returns an interval
// [Earliest, Latest] guaranteed to contain true time as long as the injected
// skew stays within eps — the guarantee clock-skew nemesis schedules
// deliberately hold (hardened arms) or break (broken-knob fixtures).
//
// Determinism: a Clock is a pure function of kernel time and its injected
// (offset, drift) history — it draws no randomness and schedules no events
// of its own, so adding clocks perturbs no existing run.
type Clock struct {
	k *Kernel
	// offset is the accumulated skew at setAt; drift adds further skew at
	// `drift` seconds per true second since then.
	offset time.Duration
	drift  float64
	setAt  time.Duration
	eps    time.Duration
}

// NewClock returns a clock on the kernel with the given uncertainty bound.
// eps <= 0 means a perfect oracle clock (zero-width intervals).
func NewClock(k *Kernel, eps time.Duration) *Clock {
	if eps < 0 {
		eps = 0
	}
	return &Clock{k: k, eps: eps}
}

// Now returns the node's local reading: true time, skewed.
func (c *Clock) Now() time.Duration {
	t := c.k.Now()
	return t + c.offset + time.Duration(c.drift*float64(t-c.setAt))
}

// Eps returns the clock's uncertainty bound.
func (c *Clock) Eps() time.Duration { return c.eps }

// Earliest returns the lower edge of the uncertainty interval — the earliest
// instant true time could be, given the local reading.
func (c *Clock) Earliest() time.Duration { return c.Now() - c.eps }

// Latest returns the upper edge of the uncertainty interval — the latest
// instant true time could be. Spanner-style commit timestamps are drawn from
// Latest so a timestamp is never in the node's believed past.
func (c *Clock) Latest() time.Duration { return c.Now() + c.eps }

// SetSkew injects clock skew: an absolute offset plus a drift rate (seconds
// of skew per true second) accruing from now. Like every other injection
// knob in this repository, calling it again replaces the previous skew,
// never stacks it.
func (c *Clock) SetSkew(offset time.Duration, drift float64) {
	c.offset = offset
	c.drift = drift
	c.setAt = c.k.Now()
}

// ClearSkew removes injected skew: the clock snaps back to true time.
func (c *Clock) ClearSkew() {
	c.offset, c.drift, c.setAt = 0, 0, c.k.Now()
}

// CommitWait parks the process until the clock's uncertainty interval has
// wholly passed ts — Earliest() > ts — which is the commit-wait rule: once
// the wait returns, every node's true time is certainly beyond ts, so any
// operation invoked afterwards anywhere observes a strictly larger
// timestamp. The loop re-checks after sleeping the apparent deficit because
// drift makes apparent and true durations differ; it converges for any
// drift > -1 (the clock still runs forward).
func (c *Clock) CommitWait(p *Proc, ts time.Duration) {
	for {
		deficit := ts - c.Earliest()
		if deficit < 0 {
			return
		}
		p.Sleep(deficit + time.Microsecond)
	}
}
