package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestEventQueueTiersMatchSortOrder drives the tiered queue with pushes and
// pops whose timestamps span all three tiers — near (behind the boundary),
// the wheel window, and the far heap beyond the horizon — and checks the pop
// sequence is exactly the (at, seq) sort order. It is the wheel-era twin of
// TestEventQueueMatchesSortOrder, which keeps its few-distinct-timestamps
// focus.
func TestEventQueueTiersMatchSortOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var q eventQueue
	var seq int64
	var now time.Duration
	pending := 0
	var prev event
	havePrev := false
	for round := 0; round < 20000; round++ {
		if pending == 0 || rng.Intn(3) > 0 {
			seq++
			// Mix of same-instant, in-bucket, cross-bucket, and
			// far-beyond-horizon timestamps, always >= now so the push is a
			// legal schedule.
			var d time.Duration
			switch rng.Intn(4) {
			case 0:
				d = 0
			case 1:
				d = time.Duration(rng.Intn(int(wheelGran)))
			case 2:
				d = time.Duration(rng.Intn(int(wheelHorizon)))
			default:
				d = wheelHorizon + time.Duration(rng.Intn(int(10*wheelHorizon)))
			}
			q.push(event{at: now + d, seq: seq})
			pending++
		} else {
			e := q.pop()
			pending--
			if e.at < now {
				t.Fatalf("popped event at %v before queue time %v", e.at, now)
			}
			now = e.at
			if havePrev && e.before(prev) {
				t.Fatalf("order violated: (%v,%d) popped after (%v,%d)", e.at, e.seq, prev.at, prev.seq)
			}
			prev, havePrev = e, true
		}
	}
	for q.len() > 0 {
		e := q.pop()
		if havePrev && e.before(prev) {
			t.Fatalf("drain order violated: (%v,%d) popped after (%v,%d)", e.at, e.seq, prev.at, prev.seq)
		}
		prev, havePrev = e, true
	}
}

// TestWheelMatchesHeapOnlyOrder runs the same randomized simulation — timers
// at every tier distance, same-instant ties, events that schedule further
// events, sleeps riding the proc wake path — on a wheeled kernel and a
// heap-only kernel, and requires the execution orders to be identical. This
// is the differential proof that the wheel is pure routing: any divergence
// in (at, seq) pop order between the two queue shapes shows up here before
// it can perturb a platform simulation.
func TestWheelMatchesHeapOnlyOrder(t *testing.T) {
	trace := func(k *Kernel, seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		var order []int
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 2 + rng.Intn(4)
			for i := 0; i < n; i++ {
				var d time.Duration
				switch rng.Intn(5) {
				case 0:
					d = 0
				case 1:
					d = time.Duration(rng.Intn(int(wheelGran)))
				case 2:
					d = time.Duration(rng.Intn(int(wheelHorizon)))
				case 3:
					d = wheelHorizon + time.Duration(rng.Intn(int(4*wheelHorizon)))
				default:
					d = -time.Duration(rng.Intn(100)) // negative clamps to 0
				}
				myID := id
				id++
				deeper := depth < 3 && rng.Intn(3) == 0
				k.Schedule(d, func() {
					order = append(order, myID)
					if deeper {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		// A sleeping process interleaves proc-wake events with fn events.
		k.Go("sleeper", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(time.Duration(1 + rng.Intn(int(2*wheelHorizon))))
				myID := id
				id++
				order = append(order, myID)
			}
		})
		k.Run()
		return order
	}
	for seed := int64(1); seed <= 5; seed++ {
		wheeled := trace(New(), seed)
		heap := trace(NewHeapOnly(), seed)
		if len(wheeled) != len(heap) {
			t.Fatalf("seed %d: wheeled ran %d events, heap-only %d", seed, len(wheeled), len(heap))
		}
		for i := range wheeled {
			if wheeled[i] != heap[i] {
				t.Fatalf("seed %d: execution order diverges at event %d: wheeled=%d heap-only=%d", seed, i, wheeled[i], heap[i])
			}
		}
	}
}

// TestScheduleArgAllocFree asserts the ScheduleArg fast path performs no
// per-event allocation: with the callback hoisted and a pointer-shaped
// argument, scheduling and dispatching a dense timer storm must cost only
// the kernel's fixed setup.
func TestScheduleArgAllocFree(t *testing.T) {
	const events = 2000
	tick := func(arg any) { *(arg.(*int))++ }
	// One kernel across runs: wheel buckets and heap slices grow to their
	// steady-state capacity during AllocsPerRun's warm-up call and are
	// retained, exactly as in a long-lived simulation. The measured runs
	// must then allocate nothing at all.
	k := New()
	n := 0
	storm := func() {
		n = 0
		for i := 0; i < events; i++ {
			k.ScheduleArg(time.Duration(i)*time.Microsecond, tick, &n)
		}
		k.Run()
		if n != events {
			t.Fatalf("ran %d events, want %d", n, events)
		}
	}
	// The storm's phase within the wheel shifts between runs (its span is
	// not bucket-aligned), so bucket capacities keep ratcheting for a few
	// passes before every bucket has seen its worst-case occupancy.
	for i := 0; i < 8; i++ {
		storm()
	}
	avg := testing.AllocsPerRun(5, storm)
	if avg != 0 {
		t.Fatalf("ScheduleArg storm allocated %.2f objects per %d-event run in steady state, want 0", avg, events)
	}
}

// TestRunUntilAcrossWheelHorizon checks RunUntil's min-peek works when the
// next event sits beyond the wheel horizon in the far tier, and that
// stopping mid-bucket leaves later same-bucket events queued.
func TestRunUntilAcrossWheelHorizon(t *testing.T) {
	k := New()
	var fired []time.Duration
	at := func(d time.Duration) {
		k.Schedule(d, func() { fired = append(fired, k.Now()) })
	}
	at(time.Microsecond)             // wheel, first bucket
	at(3 * wheelHorizon)             // far tier
	at(3*wheelHorizon + wheelGran/2) // far tier, same bucket as above
	at(10 * wheelHorizon)            // far tier, beyond the stop time
	k.RunUntil(3 * wheelHorizon)     // stops mid-bucket
	if want := []time.Duration{time.Microsecond, 3 * wheelHorizon}; len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("RunUntil(3h) fired %v, want %v", fired, want)
	}
	if k.Now() != 3*wheelHorizon {
		t.Fatalf("clock at %v, want %v", k.Now(), 3*wheelHorizon)
	}
	if k.PendingEvents() != 2 {
		t.Fatalf("%d events pending, want 2", k.PendingEvents())
	}
	end := k.Run()
	if end != 10*wheelHorizon {
		t.Fatalf("Run ended at %v, want %v", end, 10*wheelHorizon)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}
