package platform

import (
	"hyperprof/internal/profile"
	"hyperprof/internal/taxonomy"
)

// This file holds every number taken from the paper's published aggregates.
// The platform simulations are calibrated against these tables, and the
// characterization experiments re-derive them from observed execution — so
// agreement is a pipeline test, not a tautology: work is scheduled, queued,
// jittered, sampled and classified between these inputs and the reported
// outputs.

// CategoryFunction names the canonical leaf function used to represent each
// tax category in the simulations. Each name classifies into its category
// under the fleet classifier rules.
var CategoryFunction = map[taxonomy.Category]string{
	taxonomy.Compression:      "snappy.RawCompress",
	taxonomy.Cryptography:     "crypto.RecordHash",
	taxonomy.DataMovement:     "memcpy_avx_unaligned",
	taxonomy.MemAllocation:    "tcmalloc.CentralFreeList",
	taxonomy.Protobuf:         "proto.WireFormat",
	taxonomy.RPC:              "stubby.ServerTransport",
	taxonomy.EDAC:             "crc32c.Extend",
	taxonomy.FileSystems:      "colossus.ClientRead",
	taxonomy.OtherMemoryOps:   "memset_erms",
	taxonomy.Multithreading:   "futex_wait_queue",
	taxonomy.Networking:       "tcp.tcp_sendmsg",
	taxonomy.OperatingSystems: "syscall.epoll_pwait",
	taxonomy.STL:              "std.raw_hash_set",
	taxonomy.MiscSystem:       "sys.misc.longtail",
}

// BroadSplit is a platform's Figure 3 decomposition.
type BroadSplit struct {
	CoreCompute, DatacenterTax, SystemTax float64
}

// PaperBroadSplit returns the Figure 3 fractions per platform.
func PaperBroadSplit(p taxonomy.Platform) BroadSplit {
	switch p {
	case taxonomy.Spanner:
		return BroadSplit{CoreCompute: 0.36, DatacenterTax: 0.32, SystemTax: 0.32}
	case taxonomy.BigTable:
		return BroadSplit{CoreCompute: 0.26, DatacenterTax: 0.40, SystemTax: 0.34}
	default: // BigQuery
		return BroadSplit{CoreCompute: 0.18, DatacenterTax: 0.40, SystemTax: 0.42}
	}
}

// PaperDCTSplit returns the Figure 5 datacenter-tax fractions per platform.
func PaperDCTSplit(p taxonomy.Platform) map[taxonomy.Category]float64 {
	switch p {
	case taxonomy.Spanner:
		return map[taxonomy.Category]float64{
			taxonomy.Protobuf:      0.20,
			taxonomy.Compression:   0.14,
			taxonomy.RPC:           0.23,
			taxonomy.DataMovement:  0.16,
			taxonomy.MemAllocation: 0.15,
			taxonomy.Cryptography:  0.12,
		}
	case taxonomy.BigTable:
		return map[taxonomy.Category]float64{
			taxonomy.Protobuf:      0.20,
			taxonomy.Compression:   0.31,
			taxonomy.RPC:           0.37,
			taxonomy.DataMovement:  0.05,
			taxonomy.MemAllocation: 0.04,
			taxonomy.Cryptography:  0.03,
		}
	default: // BigQuery
		return map[taxonomy.Category]float64{
			taxonomy.Protobuf:      0.25,
			taxonomy.Compression:   0.31,
			taxonomy.RPC:           0.11,
			taxonomy.DataMovement:  0.14,
			taxonomy.MemAllocation: 0.12,
			taxonomy.Cryptography:  0.07,
		}
	}
}

// PaperSTSplit returns the Figure 6 system-tax fractions per platform.
func PaperSTSplit(p taxonomy.Platform) map[taxonomy.Category]float64 {
	switch p {
	case taxonomy.Spanner:
		return map[taxonomy.Category]float64{
			taxonomy.STL:              0.30,
			taxonomy.OperatingSystems: 0.28,
			taxonomy.FileSystems:      0.12,
			taxonomy.Networking:       0.10,
			taxonomy.Multithreading:   0.08,
			taxonomy.OtherMemoryOps:   0.06,
			taxonomy.EDAC:             0.03,
			taxonomy.MiscSystem:       0.03,
		}
	case taxonomy.BigTable:
		return map[taxonomy.Category]float64{
			taxonomy.STL:              0.25,
			taxonomy.OperatingSystems: 0.25,
			taxonomy.FileSystems:      0.15,
			taxonomy.Networking:       0.12,
			taxonomy.Multithreading:   0.10,
			taxonomy.OtherMemoryOps:   0.06,
			taxonomy.EDAC:             0.04,
			taxonomy.MiscSystem:       0.03,
		}
	default: // BigQuery
		return map[taxonomy.Category]float64{
			taxonomy.STL:              0.53,
			taxonomy.OperatingSystems: 0.18,
			taxonomy.FileSystems:      0.10,
			taxonomy.Networking:       0.06,
			taxonomy.Multithreading:   0.05,
			taxonomy.OtherMemoryOps:   0.04,
			taxonomy.EDAC:             0.02,
			taxonomy.MiscSystem:       0.02,
		}
	}
}

// PaperCoreSplit returns the Figure 4 core-compute fractions per platform
// (within shown categories).
func PaperCoreSplit(p taxonomy.Platform) map[taxonomy.Category]float64 {
	switch p {
	case taxonomy.Spanner:
		return map[taxonomy.Category]float64{
			taxonomy.Read:          0.30,
			taxonomy.Write:         0.17,
			taxonomy.Consensus:     0.13,
			taxonomy.Query:         0.12,
			taxonomy.Compaction:    0.08,
			taxonomy.MiscCore:      0.10,
			taxonomy.Uncategorized: 0.10,
		}
	case taxonomy.BigTable:
		return map[taxonomy.Category]float64{
			taxonomy.Read:          0.22,
			taxonomy.Write:         0.18,
			taxonomy.Compaction:    0.15,
			taxonomy.Consensus:     0.10,
			taxonomy.Query:         0.05,
			taxonomy.MiscCore:      0.16,
			taxonomy.Uncategorized: 0.14,
		}
	default: // BigQuery
		return map[taxonomy.Category]float64{
			taxonomy.Filter:        0.20,
			taxonomy.Aggregate:     0.17,
			taxonomy.Compute:       0.14,
			taxonomy.Join:          0.09,
			taxonomy.Destructure:   0.08,
			taxonomy.Sort:          0.07,
			taxonomy.Project:       0.05,
			taxonomy.Materialize:   0.04,
			taxonomy.MiscCore:      0.08,
			taxonomy.Uncategorized: 0.08,
		}
	}
}

// PaperMicro returns the Table 7 microarchitecture profile for a platform's
// broad class. Field order: IPC, BR, L1I, L2I, LLC, ITLB, DTLBLD.
func PaperMicro(p taxonomy.Platform, b taxonomy.Broad) profile.Micro {
	type pk struct {
		p taxonomy.Platform
		b taxonomy.Broad
	}
	table := map[pk]profile.Micro{
		{taxonomy.Spanner, taxonomy.CoreCompute}:    {IPC: 0.9, BR: 5.4, L1I: 12.4, L2I: 4.2, LLC: 0.6, ITLB: 0.2, DTLBLD: 0.8},
		{taxonomy.Spanner, taxonomy.DatacenterTax}:  {IPC: 0.6, BR: 5.5, L1I: 16.7, L2I: 8.0, LLC: 1.0, ITLB: 0.6, DTLBLD: 2.0},
		{taxonomy.Spanner, taxonomy.SystemTax}:      {IPC: 0.7, BR: 5.5, L1I: 21.6, L2I: 11.8, LLC: 1.4, ITLB: 0.4, DTLBLD: 2.7},
		{taxonomy.BigTable, taxonomy.CoreCompute}:   {IPC: 0.6, BR: 5.2, L1I: 9.6, L2I: 4.2, LLC: 1.0, ITLB: 0.2, DTLBLD: 1.3},
		{taxonomy.BigTable, taxonomy.DatacenterTax}: {IPC: 0.6, BR: 5.3, L1I: 14.7, L2I: 8.4, LLC: 1.2, ITLB: 0.5, DTLBLD: 2.1},
		{taxonomy.BigTable, taxonomy.SystemTax}:     {IPC: 0.7, BR: 6.9, L1I: 21.9, L2I: 14.7, LLC: 1.4, ITLB: 0.5, DTLBLD: 3.6},
		{taxonomy.BigQuery, taxonomy.CoreCompute}:   {IPC: 1.4, BR: 2.0, L1I: 1.1, L2I: 0.4, LLC: 0.3, ITLB: 0.1, DTLBLD: 0.6},
		{taxonomy.BigQuery, taxonomy.DatacenterTax}: {IPC: 1.0, BR: 3.8, L1I: 13.6, L2I: 3.4, LLC: 1.1, ITLB: 0.6, DTLBLD: 2.2},
		{taxonomy.BigQuery, taxonomy.SystemTax}:     {IPC: 1.0, BR: 3.5, L1I: 10.8, L2I: 6.0, LLC: 1.1, ITLB: 0.2, DTLBLD: 1.7},
	}
	return table[pk{p, b}]
}

// PaperStorageRatio returns Table 1's RAM:SSD:HDD provisioning ratio, used
// to provision each platform's fleet.
func PaperStorageRatio(p taxonomy.Platform) (ram, ssd, hdd int64) {
	switch p {
	case taxonomy.Spanner:
		return 1, 16, 164
	case taxonomy.BigTable:
		return 1, 7, 777
	default: // BigQuery
		return 1, 8, 90
	}
}

// SplitFromCategories converts category fractions into a function-level
// Split using the canonical representative functions.
func SplitFromCategories(fr map[taxonomy.Category]float64) Split {
	out := Split{}
	for cat, f := range fr {
		out[CategoryFunction[cat]] = f
	}
	return out
}

// TaxTablesFor builds the calibrated tax tables for a platform: Figure 5 and
// Figure 6 splits with Table 7 micro profiles attached.
func TaxTablesFor(p taxonomy.Platform) TaxTables {
	dct := SplitFromCategories(PaperDCTSplit(p))
	st := SplitFromCategories(PaperSTSplit(p))
	micros := MergeMicros(
		MicroFor(PaperMicro(p, taxonomy.DatacenterTax), dct.Keys()...),
		MicroFor(PaperMicro(p, taxonomy.SystemTax), st.Keys()...),
	)
	return TaxTables{DCT: dct, ST: st, Micros: micros}
}

// TaxBudgets converts a core-compute CPU budget into the matching tax
// budgets so the operation's broad split lands on the platform's Figure 3
// fractions.
func TaxBudgets(p taxonomy.Platform, core float64) (dct, st float64) {
	bs := PaperBroadSplit(p)
	if bs.CoreCompute <= 0 {
		return 0, 0
	}
	return core * bs.DatacenterTax / bs.CoreCompute, core * bs.SystemTax / bs.CoreCompute
}
