package platform

import (
	"math"
	"testing"
	"time"

	"hyperprof/internal/profile"
	"hyperprof/internal/sim"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

func TestBuildRecipeNormalizesAndOrders(t *testing.T) {
	r := BuildRecipe(100*time.Millisecond, Split{"b": 3, "a": 1}, nil)
	if len(r) != 2 || r[0].Function != "a" || r[1].Function != "b" {
		t.Fatalf("recipe = %+v", r)
	}
	if r[0].Mean != 25*time.Millisecond || r[1].Mean != 75*time.Millisecond {
		t.Fatalf("means = %v %v", r[0].Mean, r[1].Mean)
	}
	if got := r.TotalMean(); got != 100*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
}

func TestBuildRecipeSkipsZeroWeights(t *testing.T) {
	r := BuildRecipe(time.Second, Split{"a": 1, "zero": 0}, nil)
	if len(r) != 1 || r[0].Function != "a" {
		t.Fatalf("recipe = %+v", r)
	}
}

func TestRecipeScaled(t *testing.T) {
	r := Recipe{{Function: "f", Mean: 10 * time.Millisecond}}
	s := r.Scaled(2.5)
	if s[0].Mean != 25*time.Millisecond {
		t.Fatalf("scaled = %v", s[0].Mean)
	}
	if r[0].Mean != 10*time.Millisecond {
		t.Fatal("original mutated")
	}
}

func TestExecStepRecordsAndAnnotates(t *testing.T) {
	env := NewEnv(1, 1)
	env.Jitter = 0 // exact durations for assertion
	node := env.Net.NewNode("n", 0, 0, 1)
	tr := env.Tracer.Start(taxonomy.Spanner, 0)
	env.K.Go("op", func(p *sim.Proc) {
		env.ExecStep(p, taxonomy.Spanner, node, tr, Step{Function: "snappy.X", Mean: 5 * time.Millisecond, Micro: profile.Micro{IPC: 1}})
		env.Tracer.Finish(tr, p.Now())
	})
	env.K.Run()
	if got := env.Prof.TotalCPU(taxonomy.Spanner); got != 5*time.Millisecond {
		t.Fatalf("profiled = %v", got)
	}
	b := tr.ComputeBreakdown()
	if b.CPU != 5*time.Millisecond || b.Total != 5*time.Millisecond {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestExecStepQueueingCountsAsCPU(t *testing.T) {
	env := NewEnv(2, 1)
	env.Jitter = 0
	node := env.Net.NewNode("n", 0, 0, 1) // single core forces queueing
	traces := make([]*trace.Trace, 2)
	for i := 0; i < 2; i++ {
		i := i
		tr := env.Tracer.Start(taxonomy.BigTable, 0)
		traces[i] = tr
		env.K.Go("op", func(p *sim.Proc) {
			env.ExecStep(p, taxonomy.BigTable, node, tr, Step{Function: "f", Mean: 10 * time.Millisecond})
			env.Tracer.Finish(tr, p.Now())
		})
	}
	env.K.Run()
	// The second op queued 10ms then ran 10ms; its CPU interval is 20ms.
	b := traces[1].ComputeBreakdown()
	if b.CPU != 20*time.Millisecond {
		t.Fatalf("queued op CPU = %v, want 20ms", b.CPU)
	}
	// But profiled CPU time (actual execution) is 10ms each.
	if got := env.Prof.TotalCPU(taxonomy.BigTable); got != 20*time.Millisecond {
		t.Fatalf("profiled total = %v, want 20ms", got)
	}
}

func TestExecRecipeRunsAllSteps(t *testing.T) {
	env := NewEnv(3, 1)
	env.Jitter = 0
	node := env.Net.NewNode("n", 0, 0, 2)
	r := BuildRecipe(30*time.Millisecond, Split{"a": 1, "b": 2}, nil)
	env.K.Go("op", func(p *sim.Proc) {
		env.ExecRecipe(p, taxonomy.BigQuery, node, nil, r)
	})
	end := env.K.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
	if got := env.Prof.TotalCPU(taxonomy.BigQuery); got != 30*time.Millisecond {
		t.Fatalf("profiled = %v", got)
	}
}

func TestCategoryFunctionsClassifyCorrectly(t *testing.T) {
	c := taxonomy.NewClassifier()
	for cat, fn := range CategoryFunction {
		if got := c.Classify(fn); got != cat {
			t.Errorf("CategoryFunction[%q] = %q classifies as %q", cat, fn, got)
		}
	}
}

func TestPaperTablesCoverPlatforms(t *testing.T) {
	for _, p := range taxonomy.Platforms() {
		bs := PaperBroadSplit(p)
		if s := bs.CoreCompute + bs.DatacenterTax + bs.SystemTax; math.Abs(s-1) > 1e-9 {
			t.Errorf("%s broad split sums to %v", p, s)
		}
		for name, m := range map[string]map[taxonomy.Category]float64{
			"dct": PaperDCTSplit(p), "st": PaperSTSplit(p), "core": PaperCoreSplit(p),
		} {
			var sum float64
			for cat, f := range m {
				if !taxonomy.Known(cat) {
					t.Errorf("%s %s split has unknown category %q", p, name, cat)
				}
				sum += f
			}
			if math.Abs(sum-1) > 0.011 {
				t.Errorf("%s %s split sums to %v", p, name, sum)
			}
		}
		for _, b := range taxonomy.Broads() {
			if PaperMicro(p, b).IPC == 0 {
				t.Errorf("missing micro for %s/%v", p, b)
			}
		}
		ram, ssd, hdd := PaperStorageRatio(p)
		if ram != 1 || ssd <= 0 || hdd <= ssd {
			t.Errorf("%s storage ratio %d:%d:%d", p, ram, ssd, hdd)
		}
	}
}

func TestPaperMicroMatchesTable7SpotChecks(t *testing.T) {
	if m := PaperMicro(taxonomy.BigQuery, taxonomy.CoreCompute); m.IPC != 1.4 || m.L1I != 1.1 {
		t.Errorf("BigQuery CC micro = %+v", m)
	}
	if m := PaperMicro(taxonomy.Spanner, taxonomy.SystemTax); m.L2I != 11.8 {
		t.Errorf("Spanner ST micro = %+v", m)
	}
}

func TestTaxTablesFor(t *testing.T) {
	tt := TaxTablesFor(taxonomy.BigTable)
	r := tt.TaxRecipe(40*time.Millisecond, 34*time.Millisecond)
	if got := r.TotalMean(); got < 73*time.Millisecond || got > 75*time.Millisecond {
		t.Fatalf("tax recipe total = %v", got)
	}
	// RPC should be the biggest DCT step for BigTable (37%).
	var rpcMean, protoMean time.Duration
	for _, s := range r {
		switch s.Function {
		case CategoryFunction[taxonomy.RPC]:
			rpcMean = s.Mean
		case CategoryFunction[taxonomy.Protobuf]:
			protoMean = s.Mean
		}
	}
	if rpcMean <= protoMean {
		t.Fatalf("rpc %v <= proto %v for BigTable", rpcMean, protoMean)
	}
}

func TestTaxBudgets(t *testing.T) {
	dct, st := TaxBudgets(taxonomy.Spanner, 36)
	if math.Abs(dct-32) > 1e-9 || math.Abs(st-32) > 1e-9 {
		t.Fatalf("budgets = %v %v", dct, st)
	}
}

func TestAnnotateHelpersNilSafe(t *testing.T) {
	AnnotateIO(nil, 0, time.Second)
	AnnotateRemote(nil, 0, time.Second)
}
