// Package platform provides the shared runtime the three platform
// simulations are built on: an environment bundling the simulation kernel,
// network, tracer and profiler; cost recipes that turn one logical operation
// into a sequence of leaf-function CPU work items; and helpers that execute
// that work on a node's cores while annotating traces and feeding the
// profiler.
//
// Cost calibration note (the repro substitution): the paper profiles live
// production traffic; this repository instead drives the platform
// simulations with per-function cost tables whose *relative* weights are
// calibrated to the aggregate distributions the paper publishes (Figures
// 3–6, Tables 6–7). The machinery that executes, samples, classifies and
// aggregates the work is real; only the per-function means are synthetic.
package platform

import (
	"time"

	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/profile"
	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// Env bundles the shared facilities a platform simulation runs against.
type Env struct {
	K      *sim.Kernel
	Net    *netsim.Network
	Tracer *trace.Tracer
	Prof   *profile.Profiler
	RNG    *stats.RNG
	// Jitter is the relative noise applied to every step duration.
	Jitter float64
	// Obs is the environment's observability plane; nil (the default) means
	// disabled, and every instrumentation site degrades to a nil-check no-op.
	Obs *obs.Registry
}

// NewEnv builds an environment with its own kernel and network, a tracer at
// the given sampling rate, and a profiler seeded from seed.
func NewEnv(seed uint64, traceRate int) *Env {
	return NewEnvOn(sim.New(), seed, traceRate)
}

// NewEnvOn builds an environment on an existing kernel, for multi-platform
// pipelines where several platform stacks must share one simulation clock.
// Each environment still gets its own network, profiler and RNG stream
// (per-stage seeds keep the streams decorrelated); pipeline callers
// typically overwrite Tracer with one shared tracer so a logical request's
// stage spans carry a single trace ID across platforms.
func NewEnvOn(k *sim.Kernel, seed uint64, traceRate int) *Env {
	return &Env{
		K:      k,
		Net:    netsim.New(k, netsim.DefaultConfig()),
		Tracer: trace.NewTracer(traceRate),
		Prof:   profile.New(nil, seed, profile.WithJitter(0.05)),
		RNG:    stats.NewRNG(seed ^ 0x9e3779b97f4a7c15),
		Jitter: 0.25,
	}
}

// EnableObs attaches an observability registry to the environment and wires
// the shared layers into it: RPC outcome counters on the network, the
// kernel's run-queue depth, and the continuous-profiling hook that snapshots
// per-category cycle attribution ("profile.<platform>.<category>") at every
// sampling tick. Platform constructors add their own series when they see a
// non-nil env.Obs, so EnableObs must run before the platform is built — and
// after any env.Net replacement, since the network holds its own handles.
// The sampler itself starts when the caller invokes env.Obs.Start(env.K)
// (typically right before Run), so quiescent setup work is not sampled.
func (e *Env) EnableObs(cfg obs.Config) *obs.Registry {
	r := obs.NewRegistry(cfg)
	e.Obs = r
	e.Net.EnableMetrics(r)
	r.GaugeFunc("sim.runqueue.depth", func() int64 { return int64(e.K.PendingEvents()) })
	r.AttachProfile("profile.", func(emit func(name string, v int64)) {
		for _, plat := range taxonomy.Platforms() {
			e.Prof.EachCategoryCPU(plat, func(cat taxonomy.Category, cpu time.Duration) {
				emit(string(plat)+"."+string(cat), int64(cpu))
			})
		}
	})
	return r
}

// Step is one leaf-function CPU work item within a recipe.
type Step struct {
	Function string
	Mean     time.Duration
	Micro    profile.Micro
}

// Recipe is an ordered sequence of steps modeling one logical operation's
// CPU side.
type Recipe []Step

// TotalMean returns the sum of mean step durations.
func (r Recipe) TotalMean() time.Duration {
	var t time.Duration
	for _, s := range r {
		t += s.Mean
	}
	return t
}

// Scaled returns a copy of the recipe with all means multiplied by f.
func (r Recipe) Scaled(f float64) Recipe {
	out := make(Recipe, len(r))
	for i, s := range r {
		out[i] = s
		out[i].Mean = time.Duration(float64(s.Mean) * f)
	}
	return out
}

// Split maps leaf function names to fractional weights.
type Split map[string]float64

// BuildRecipe distributes a total CPU budget across functions according to
// split (weights are normalized), assigning each function the micro profile
// from micros (functions absent from micros get the zero profile). Steps are
// emitted in deterministic (sorted-by-name) order.
func BuildRecipe(total time.Duration, split Split, micros map[string]profile.Micro) Recipe {
	names := make([]string, 0, len(split))
	for fn := range split {
		names = append(names, fn)
	}
	sortStrings(names)
	// Normalize in sorted order so float rounding is identical across runs
	// (map iteration order would otherwise perturb the sum by an ulp).
	var sum float64
	for _, fn := range names {
		if split[fn] > 0 {
			sum += split[fn]
		}
	}
	if sum <= 0 {
		return nil
	}
	r := make(Recipe, 0, len(names))
	for _, fn := range names {
		if split[fn] <= 0 {
			continue
		}
		r = append(r, Step{
			Function: fn,
			Mean:     time.Duration(float64(total) * split[fn] / sum),
			Micro:    micros[fn],
		})
	}
	return r
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ExecStep runs one step on a node: it queues for a core, burns the
// (jittered) CPU time, releases the core, reports the work to the profiler,
// and annotates the trace with a CPU interval spanning queueing plus
// execution (time waiting for a local core is CPU time from the query's
// perspective, as in the paper's accounting).
func (e *Env) ExecStep(p *sim.Proc, plat taxonomy.Platform, node *netsim.Node, tr *trace.Trace, s Step) {
	start := p.Now()
	p.Acquire(node.CPU, 1)
	d := time.Duration(e.RNG.Jitter(float64(s.Mean), e.Jitter))
	if d < 0 {
		d = 0
	}
	p.Sleep(d)
	node.CPU.Release(1)
	e.Prof.Record(profile.Work{Platform: plat, Function: s.Function, Duration: d, Micro: s.Micro})
	if tr != nil {
		tr.Annotate(start, p.Now(), trace.CPU)
	}
}

// ExecRecipe runs every step of a recipe in order on the node.
func (e *Env) ExecRecipe(p *sim.Proc, plat taxonomy.Platform, node *netsim.Node, tr *trace.Trace, r Recipe) {
	for _, s := range r {
		e.ExecStep(p, plat, node, tr, s)
	}
}

// AnnotateIO marks a completed storage access on the trace.
func AnnotateIO(tr *trace.Trace, start, end time.Duration) {
	if tr != nil {
		tr.Annotate(start, end, trace.IO)
	}
}

// AnnotateRemote marks a completed remote-work wait on the trace.
func AnnotateRemote(tr *trace.Trace, start, end time.Duration) {
	if tr != nil {
		tr.Annotate(start, end, trace.Remote)
	}
}

// TaxTables carries a platform's calibrated datacenter- and system-tax
// splits, expressed over representative leaf functions whose names classify
// into the right taxonomy categories.
type TaxTables struct {
	DCT    Split
	ST     Split
	Micros map[string]profile.Micro
}

// TaxRecipe builds the tax portion of an operation: dctBudget across the
// datacenter-tax split and stBudget across the system-tax split.
func (t TaxTables) TaxRecipe(dctBudget, stBudget time.Duration) Recipe {
	r := BuildRecipe(dctBudget, t.DCT, t.Micros)
	return append(r, BuildRecipe(stBudget, t.ST, t.Micros)...)
}

// MicroFor replicates one micro profile across every function in the given
// splits, with per-category multipliers applied on top when provided. It is
// the standard way platforms attach Table 7 broad-class profiles to their
// function tables.
func MicroFor(base profile.Micro, fns ...string) map[string]profile.Micro {
	out := make(map[string]profile.Micro, len(fns))
	for _, fn := range fns {
		out[fn] = base
	}
	return out
}

// MergeMicros merges several micro maps; later maps win conflicts.
func MergeMicros(ms ...map[string]profile.Micro) map[string]profile.Micro {
	out := map[string]profile.Micro{}
	for _, m := range ms {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// Keys returns a split's function names (order unspecified).
func (s Split) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	return out
}
