package check

import "time"

// Registry holds standing invariants: named predicates over a deployment's
// internal state that must hold at every quiescent point. Platforms register
// closures (quorum intersection, commit-index monotonicity, tablet ownership
// uniqueness, replica consistency); harnesses and tests call Check after a
// run — or at any quiet instant during one — and treat a non-empty result as
// a safety failure.
type Registry struct {
	invs []inv
}

type inv struct {
	name  string
	check func() []string
}

// Register adds a named invariant. check returns one detail string per
// breach (empty or nil means the invariant holds).
func (r *Registry) Register(name string, check func() []string) {
	r.invs = append(r.invs, inv{name: name, check: check})
}

// Names returns the registered invariant names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.invs))
	for i, v := range r.invs {
		out[i] = v.name
	}
	return out
}

// Check runs every invariant and converts breaches into violations stamped
// with the given virtual time.
func (r *Registry) Check(at time.Duration) []Violation {
	var out []Violation
	for _, v := range r.invs {
		for _, detail := range v.check() {
			out = append(out, Violation{
				Kind:   "invariant",
				Key:    v.name,
				Detail: v.name + ": " + detail,
				At:     at,
			})
		}
	}
	return out
}
