package check

import (
	"testing"
	"time"
)

// opAt records a full operation with a commit timestamp (OKAt).
func (b *histBuilder) opAt(inv, ret time.Duration, client, kind, key string, arg uint64, ts time.Duration) {
	var op *Op
	b.at(inv, func() { op = b.h.Invoke(client, kind, key, arg) })
	b.at(ret, func() { b.h.OKAt(op, 0, ts) })
}

func TestExternalConsistencyCleanWhenTimestampsFollowRealTime(t *testing.T) {
	b := newBuilder()
	b.opAt(0*ms, 2*ms, "c1", "write", "k1", 1, 1*ms)
	b.opAt(3*ms, 5*ms, "c2", "write", "k2", 2, 4*ms)
	b.opAt(6*ms, 8*ms, "c1", "write", "k1", 3, 7*ms)
	h := b.run()
	if vs := h.CheckExternalConsistency(); len(vs) != 0 {
		t.Fatalf("real-time-ordered timestamps flagged: %v", vs)
	}
}

func TestExternalConsistencyInversionCaughtWithMinimalSubhistory(t *testing.T) {
	b := newBuilder()
	// A skewed-fast leader mints 10ms for a commit that returns at 2ms; a
	// commit invoked later (3ms) through a healthy leader mints only 4ms.
	// Any external observer saw the first return before the second began,
	// yet the timestamps claim the opposite order.
	b.opAt(0*ms, 2*ms, "c1", "write", "k1", 1, 10*ms)
	b.opAt(3*ms, 5*ms, "c2", "write", "k2", 2, 4*ms)
	h := b.run()
	vs := h.CheckExternalConsistency()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(vs), vs)
	}
	v := vs[0]
	if v.Kind != "external-consistency" {
		t.Fatalf("kind = %q", v.Kind)
	}
	if len(v.History) != 2 {
		t.Fatalf("minimal subhistory has %d ops, want 2:\n%s", len(v.History), FormatOps(v.History))
	}
	if v.History[0].TS < v.History[1].TS {
		t.Fatalf("witness pair is not inverted:\n%s", FormatOps(v.History))
	}
}

func TestExternalConsistencyIgnoresConcurrentOps(t *testing.T) {
	b := newBuilder()
	// Overlapping operations have no real-time order, so their timestamps
	// may land either way.
	b.opAt(0*ms, 5*ms, "c1", "write", "k1", 1, 9*ms)
	b.opAt(3*ms, 8*ms, "c2", "write", "k2", 2, 4*ms)
	h := b.run()
	if vs := h.CheckExternalConsistency(); len(vs) != 0 {
		t.Fatalf("concurrent ops flagged: %v", vs)
	}
}

func TestExternalConsistencyNilHistory(t *testing.T) {
	var h *History
	if vs := h.CheckExternalConsistency(); vs != nil {
		t.Fatalf("nil history returned %v", vs)
	}
}

func TestStalenessZeroOnFreshReads(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(2*ms, 3*ms, "c2", "read", "k", 0, OutcomeOK, 7)
	h := b.run()
	if n, max := h.Staleness(); n != 0 || max != 0 {
		t.Fatalf("fresh reads scored stale = %d (max %v)", n, max)
	}
}

func TestStalenessMeasuresSupersededValueAge(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(2*ms, 3*ms, "c1", "write", "k", 8, OutcomeOK, 0)
	// Read at 10ms returns 7, superseded by the write of 8 acked at 3ms:
	// stale by 7ms. A second read returns the initial value, superseded by
	// the first write acked at 1ms: stale by 11ms.
	b.op(10*ms, 11*ms, "c2", "read", "k", 0, OutcomeOK, 7)
	b.op(12*ms, 13*ms, "c3", "read", "k", 0, OutcomeOK, 100)
	h := b.run()
	n, max := h.Staleness()
	if n != 2 {
		t.Fatalf("stale reads = %d, want 2", n)
	}
	if max != 11*ms {
		t.Fatalf("max staleness = %v, want 11ms", max)
	}
}

func TestStalenessIgnoresConcurrentWriteValues(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	// The read overlaps the write of 8; returning either 7 or 8 is fresh.
	b.op(2*ms, 6*ms, "c1", "write", "k", 8, OutcomeOK, 0)
	b.op(3*ms, 4*ms, "c2", "read", "k", 0, OutcomeOK, 7)
	h := b.run()
	if n, max := h.Staleness(); n != 0 || max != 0 {
		t.Fatalf("concurrent-window read scored stale = %d (max %v)", n, max)
	}
}
