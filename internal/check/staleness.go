package check

import (
	"sort"
	"time"
)

// This file measures read staleness over a recorded history — the partition
// study's headline "did the split serve stale data" metric. A read is stale
// when the value it returned had already been superseded by a write that was
// acknowledged before the read was even invoked: a real-time observer could
// have known the value was old. Linearizable histories score zero by
// construction; the metric exists to quantify what a *broken* recovery path
// (minority-side serving, lost replays) leaks, and to pin that the hardened
// arms leak nothing.

// Staleness scans the history's successful reads and reports how many were
// stale and the worst staleness observed. A read of value v is stale when
// some write acknowledged strictly before the read's invocation superseded
// v; its staleness is the time from that superseding write's acknowledgment
// to the read's invocation — how long the fresher value had been durable
// when the reader asked. Reads returning values from concurrent or
// indeterminate writes are not counted (they impose no real-time order).
// A nil history scores zero.
func (h *History) Staleness() (staleReads int, max time.Duration) {
	if h == nil {
		return 0, 0
	}
	type keyState struct {
		writes []*Op          // acked writes, sorted by Return
		byArg  map[uint64]int // value digest -> index of its earliest producing write
	}
	states := map[string]*keyState{}
	state := func(key string) *keyState {
		st := states[key]
		if st == nil {
			st = &keyState{byArg: map[uint64]int{}}
			states[key] = st
		}
		return st
	}
	for _, op := range h.ops {
		if op.Kind == "write" && op.Outcome == OutcomeOK {
			state(op.Key).writes = append(state(op.Key).writes, op)
		}
	}
	for _, st := range states {
		sort.SliceStable(st.writes, func(i, j int) bool { return st.writes[i].Return < st.writes[j].Return })
		for i, w := range st.writes {
			if _, ok := st.byArg[w.Arg]; !ok {
				st.byArg[w.Arg] = i
			}
		}
	}
	for _, op := range h.ops {
		if op.Kind != "read" || op.Outcome != OutcomeOK {
			continue
		}
		st := states[op.Key]
		if st == nil || len(st.writes) == 0 {
			continue
		}
		// Locate the write that produced the value read (the initial value
		// reads as "producer before every write"). Unknown digests came from
		// concurrent or indeterminate writes and impose no real-time order.
		idx := -1
		if initial, ok := h.initials[op.Key]; !ok || op.Ret != initial {
			i, ok := st.byArg[op.Ret]
			if !ok {
				continue
			}
			idx = i
		}
		// The earliest acked write after the producer supersedes the value;
		// if it returned before this read was invoked, the read is stale.
		if idx+1 >= len(st.writes) {
			continue
		}
		sup := st.writes[idx+1]
		if sup.Return < op.Invoke {
			staleReads++
			if age := op.Invoke - sup.Return; age > max {
				max = age
			}
		}
	}
	return staleReads, max
}
