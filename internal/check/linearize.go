package check

import (
	"math"
	"sort"
	"time"
)

// This file implements the Wing & Gong linearizability check specialized to
// per-key atomic registers. Linearizability is local (Herlihy & Wing): a
// history over many keys is linearizable iff each key's subhistory is, so
// the checker runs key by key. Within a key it searches for a legal
// linearization order by repeatedly choosing a "minimal" operation — one
// whose invocation precedes every unlinearized operation's return — and
// checking it against the register state, with memoization on the
// (linearized-set, register-value) pair to keep the search tractable
// (Lowe's optimization of Wing & Gong).

// farFuture stands in for an unbounded return time: indeterminate and
// pending operations may linearize at any point after their invocation,
// including "never" — a write that never took effect linearizes after every
// read that missed it.
const farFuture = time.Duration(math.MaxInt64)

// regOp is one operation projected onto the register model.
type regOp struct {
	op    *Op
	write bool
	val   uint64 // value written, or value a read returned
	inv   time.Duration
	ret   time.Duration
}

// CheckLinearizability checks every key's completed read/write subhistory
// against an atomic register initialized to the key's recorded initial
// digest. It returns one violation per non-linearizable key, each carrying a
// minimal violating subhistory. A nil history checks clean.
func (h *History) CheckLinearizability() []Violation {
	if h == nil {
		return nil
	}
	h.guardExact("CheckLinearizability")
	var out []Violation
	for _, key := range h.Keys() {
		ops := h.keyOps(key)
		if len(ops) == 0 {
			continue
		}
		initial := h.initials[key]
		if linearizableKey(initial, ops) {
			continue
		}
		minimal := shrinkKey(initial, ops)
		hist := make([]*Op, len(minimal))
		var last time.Duration
		for i, r := range minimal {
			hist[i] = r.op
			if r.op.Return > last {
				last = r.op.Return
			}
		}
		out = append(out, Violation{
			Kind:    "linearizability",
			Key:     key,
			Detail:  formatLinViolation(key, len(ops), len(minimal)),
			At:      last,
			History: hist,
		})
	}
	return out
}

func formatLinViolation(key string, total, minimal int) string {
	return "history over key " + key + " is not linearizable (" +
		itoa(total) + " ops, minimal violating subhistory " + itoa(minimal) + " ops)"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// keyOps projects a key's recorded operations onto the register model:
//   - failed operations had no effect and impose no constraint: dropped;
//   - reads that never returned a value (indeterminate/pending) constrain
//     nothing: dropped;
//   - indeterminate/pending writes may take effect at any later time: kept
//     with an unbounded return.
func (h *History) keyOps(key string) []regOp {
	var ops []regOp
	for _, op := range h.ops {
		if op.Key != key || op.Outcome == OutcomeFailed {
			continue
		}
		switch op.Kind {
		case "read":
			if op.Outcome != OutcomeOK {
				continue
			}
			ops = append(ops, regOp{op: op, val: op.Ret, inv: op.Invoke, ret: op.Return})
		case "write":
			ret := op.Return
			if op.Outcome != OutcomeOK {
				ret = farFuture
			}
			ops = append(ops, regOp{op: op, write: true, val: op.Arg, inv: op.Invoke, ret: ret})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].inv != ops[j].inv {
			return ops[i].inv < ops[j].inv
		}
		return ops[i].op.ID < ops[j].op.ID
	})
	return ops
}

// linearizableKey reports whether the key's projected subhistory has a legal
// linearization over a register starting at initial.
func linearizableKey(initial uint64, ops []regOp) bool {
	c := &keyChecker{ops: ops, memo: map[string]bool{}}
	mask := make([]uint64, (len(ops)+63)/64)
	return c.search(mask, 0, initial)
}

type keyChecker struct {
	ops  []regOp
	memo map[string]bool // states proven non-linearizable
}

func (c *keyChecker) search(mask []uint64, used int, val uint64) bool {
	if used == len(c.ops) {
		return true
	}
	key := memoKey(mask, val)
	if c.memo[key] {
		return false
	}
	// A candidate for the next linearization point must invoke no later than
	// every unlinearized operation returns: an op that returned strictly
	// before another invoked must be linearized first.
	minRet := farFuture
	for i := range c.ops {
		if !bit(mask, i) && c.ops[i].ret < minRet {
			minRet = c.ops[i].ret
		}
	}
	for i := range c.ops {
		if bit(mask, i) || c.ops[i].inv > minRet {
			continue
		}
		o := &c.ops[i]
		if !o.write && o.val != val {
			continue // a read must return the register's current value
		}
		setBit(mask, i)
		next := val
		if o.write {
			next = o.val
		}
		if c.search(mask, used+1, next) {
			return true
		}
		clearBit(mask, i)
	}
	c.memo[key] = true
	return false
}

func bit(mask []uint64, i int) bool { return mask[i/64]&(1<<(i%64)) != 0 }
func setBit(mask []uint64, i int)   { mask[i/64] |= 1 << (i % 64) }
func clearBit(mask []uint64, i int) { mask[i/64] &^= 1 << (i % 64) }

func memoKey(mask []uint64, val uint64) string {
	buf := make([]byte, 0, len(mask)*8+8)
	for _, w := range append(mask[:len(mask):len(mask)], val) {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// shrinkKey minimizes a violating subhistory by greedy delta-debugging:
// repeatedly drop any operation whose removal keeps the history
// non-linearizable, until every remaining operation is load-bearing.
func shrinkKey(initial uint64, ops []regOp) []regOp {
	cur := append([]regOp(nil), ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]regOp, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if !linearizableKey(initial, cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}
