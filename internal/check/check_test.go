package check

import (
	"strings"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// histBuilder drives a History from a scripted clock: ops are recorded by
// scheduling kernel events at explicit instants.
type histBuilder struct {
	k *sim.Kernel
	h *History
}

func newBuilder() *histBuilder {
	k := sim.New()
	return &histBuilder{k: k, h: NewHistory(k)}
}

// at schedules fn at absolute virtual time t.
func (b *histBuilder) at(t time.Duration, fn func()) {
	b.k.Schedule(t, fn)
}

// op records a full operation with explicit invoke/return times.
func (b *histBuilder) op(inv, ret time.Duration, client, kind, key string, arg uint64, outcome Outcome, retVal uint64) {
	var op *Op
	b.at(inv, func() { op = b.h.Invoke(client, kind, key, arg) })
	b.at(ret, func() {
		switch outcome {
		case OutcomeOK:
			b.h.OK(op, retVal)
		case OutcomeFailed:
			b.h.Fail(op)
		case OutcomeIndeterminate:
			b.h.Indeterminate(op)
		}
	})
}

func (b *histBuilder) run() *History {
	b.k.Run()
	return b.h
}

const ms = time.Millisecond

func TestSequentialHistoryLinearizable(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	b.op(0*ms, 1*ms, "c1", "read", "k", 0, OutcomeOK, 100)
	b.op(2*ms, 3*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(4*ms, 5*ms, "c2", "read", "k", 0, OutcomeOK, 7)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 0 {
		t.Fatalf("sequential history flagged: %v", v)
	}
}

func TestStaleReadAfterAckedWriteViolates(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	// Write of 7 acked at 3ms; a read invoked at 4ms returns the initial
	// value — a lost acknowledged write.
	b.op(2*ms, 3*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(4*ms, 5*ms, "c2", "read", "k", 0, OutcomeOK, 100)
	h := b.run()
	vs := h.CheckLinearizability()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if vs[0].Kind != "linearizability" || vs[0].Key != "k" {
		t.Fatalf("violation = %+v", vs[0])
	}
	if len(vs[0].History) != 2 {
		t.Fatalf("minimal history has %d ops, want 2:\n%s", len(vs[0].History), FormatOps(vs[0].History))
	}
}

func TestConcurrentReadMayMissWrite(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	// Read overlaps the write: returning either the old or the new value is
	// linearizable.
	b.op(0*ms, 10*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(1*ms, 9*ms, "c2", "read", "k", 0, OutcomeOK, 100)
	b.op(2*ms, 8*ms, "c3", "read", "k", 0, OutcomeOK, 7)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 0 {
		t.Fatalf("concurrent reads flagged: %v", v)
	}
}

func TestReadYourWritesViolationCaught(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	// Same client writes then reads back the old value strictly later.
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(2*ms, 3*ms, "c1", "read", "k", 0, OutcomeOK, 100)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly 1", v)
	}
}

func TestIndeterminateWriteMayNeverApply(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	// A commit that errored (but may have applied) followed by reads of the
	// old value: legal — the write linearizes after them, or never took
	// effect at all.
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeIndeterminate, 0)
	b.op(2*ms, 3*ms, "c2", "read", "k", 0, OutcomeOK, 100)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 0 {
		t.Fatalf("indeterminate write flagged: %v", v)
	}
}

func TestIndeterminateWriteMayApplyLate(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	// The errored commit's value becomes visible later (catch-up replicated
	// it): old value read first, new value read after. Legal.
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeIndeterminate, 0)
	b.op(2*ms, 3*ms, "c2", "read", "k", 0, OutcomeOK, 100)
	b.op(4*ms, 5*ms, "c2", "read", "k", 0, OutcomeOK, 7)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 0 {
		t.Fatalf("late-applying indeterminate write flagged: %v", v)
	}
}

func TestValueFlipFlopViolates(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	// New value observed, then the old value again: no register order
	// explains it.
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeOK, 0)
	b.op(2*ms, 3*ms, "c2", "read", "k", 0, OutcomeOK, 7)
	b.op(4*ms, 5*ms, "c2", "read", "k", 0, OutcomeOK, 100)
	h := b.run()
	vs := h.CheckLinearizability()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	// The write is not needed to witness the flip-flop against the initial
	// value; the minimal history is the two reads... unless the checker
	// keeps the write because dropping it also drops the 7-read's source.
	// Removing the write makes the 7-read unexplainable, which is still a
	// violation, so the shrinker should reach 1-2 ops.
	if len(vs[0].History) > 2 {
		t.Fatalf("minimal history not minimal:\n%s", FormatOps(vs[0].History))
	}
}

func TestFailedWriteImposesNoConstraint(t *testing.T) {
	b := newBuilder()
	b.h.Initial("k", 100)
	b.op(0*ms, 1*ms, "c1", "write", "k", 7, OutcomeFailed, 0)
	b.op(2*ms, 3*ms, "c2", "read", "k", 0, OutcomeOK, 100)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 0 {
		t.Fatalf("failed write flagged: %v", v)
	}
}

func TestKeysAreCheckedIndependently(t *testing.T) {
	b := newBuilder()
	b.h.Initial("a", 1)
	b.h.Initial("b", 2)
	b.op(0*ms, 1*ms, "c1", "write", "a", 7, OutcomeOK, 0)
	b.op(2*ms, 3*ms, "c2", "read", "a", 0, OutcomeOK, 1) // violation on a
	b.op(0*ms, 1*ms, "c3", "write", "b", 9, OutcomeOK, 0)
	b.op(2*ms, 3*ms, "c4", "read", "b", 0, OutcomeOK, 9) // b is fine
	h := b.run()
	vs := h.CheckLinearizability()
	if len(vs) != 1 || vs[0].Key != "a" {
		t.Fatalf("violations = %v, want one on key a", vs)
	}
}

func TestManyConcurrentWritersLinearizable(t *testing.T) {
	// A contended but correct interleaving: n clients write distinct values
	// concurrently, then a read returns one of them.
	b := newBuilder()
	b.h.Initial("k", 0)
	for i := 0; i < 10; i++ {
		b.op(0*ms, 10*ms, "c", "write", "k", uint64(i+1), OutcomeOK, 0)
	}
	b.op(11*ms, 12*ms, "r", "read", "k", 0, OutcomeOK, 5)
	h := b.run()
	if v := h.CheckLinearizability(); len(v) != 0 {
		t.Fatalf("concurrent writers flagged: %v", v)
	}
}

func TestStructuralViolationsRecorded(t *testing.T) {
	k := sim.New()
	h := NewHistory(k)
	k.Schedule(3*ms, func() { h.Violate("exactly-once", "q1/p2", "shard merged %d times", 2) })
	k.Run()
	vs := h.Structural()
	if len(vs) != 1 || vs[0].At != 3*ms || vs[0].Kind != "exactly-once" {
		t.Fatalf("structural = %+v", vs)
	}
	if !strings.Contains(vs[0].Detail, "merged 2 times") {
		t.Fatalf("detail = %q", vs[0].Detail)
	}
}

func TestInvariantRegistry(t *testing.T) {
	var broken bool
	var r Registry
	r.Register("commit-index-monotonic", func() []string {
		if broken {
			return []string{"group 3 commit index regressed"}
		}
		return nil
	})
	if vs := r.Check(0); len(vs) != 0 {
		t.Fatalf("healthy registry reported %v", vs)
	}
	broken = true
	vs := r.Check(5 * ms)
	if len(vs) != 1 || vs[0].Kind != "invariant" || vs[0].At != 5*ms {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestDigestDistinguishesValues(t *testing.T) {
	a, b := Digest([]byte("value-a")), Digest([]byte("value-b"))
	if a == b {
		t.Fatal("digests collide")
	}
	if Digest(nil) != Digest([]byte{}) {
		t.Fatal("nil and empty digests differ")
	}
}
