package check

import (
	"fmt"
	"testing"

	"hyperprof/internal/sim"
)

func fillSampled(limit int, seed uint64, n int) *History {
	k := sim.New()
	h := NewSampledHistory(k, limit, seed)
	for i := 0; i < n; i++ {
		op := h.Invoke(fmt.Sprintf("c%d", i%7), "write", fmt.Sprintf("k%d", i%11), uint64(i))
		h.OK(op, 0)
	}
	return h
}

// TestSampledHistoryBoundedAndCounted pins the reservoir contract: retained
// size never exceeds the limit, Seen counts everything, and below the limit
// the history is complete.
func TestSampledHistoryBoundedAndCounted(t *testing.T) {
	h := fillSampled(100, 1, 50000)
	if got := h.Len(); got != 100 {
		t.Fatalf("retained %d ops, want exactly the 100-op limit", got)
	}
	if got := h.Seen(); got != 50000 {
		t.Fatalf("Seen() = %d, want 50000", got)
	}
	if !h.Sampled() {
		t.Fatal("Sampled() = false on a sampled history")
	}

	small := fillSampled(100, 1, 60)
	if got := small.Len(); got != 60 {
		t.Fatalf("under the limit the history must be complete: retained %d of 60", got)
	}
	ops := small.SampledOps()
	for i, op := range ops {
		if op.ID != i {
			t.Fatalf("under the limit SampledOps must be the full run in order; op %d has ID %d", i, op.ID)
		}
	}
}

// TestSampledHistoryDeterministic requires the retained set to be a pure
// function of the seed and the invocation sequence.
func TestSampledHistoryDeterministic(t *testing.T) {
	a := fillSampled(64, 42, 20000).SampledOps()
	b := fillSampled(64, 42, 20000).SampledOps()
	if len(a) != len(b) {
		t.Fatalf("same seed retained %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("same seed diverges at slot %d: ID %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
	c := fillSampled(64, 43, 20000).SampledOps()
	same := true
	for i := range a {
		if a[i].ID != c[i].ID {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds retained an identical sample (sampling not seed-driven?)")
	}
}

// TestSampledHistoryUniform is the statistical pin on Algorithm R: the mean
// retained ID over many independent reservoirs must approach the stream
// midpoint, i.e. late operations are as likely to be kept as early ones.
func TestSampledHistoryUniform(t *testing.T) {
	const (
		limit  = 50
		stream = 5000
		trials = 40
	)
	var sum, count float64
	for seed := uint64(0); seed < trials; seed++ {
		for _, op := range fillSampled(limit, seed, stream).SampledOps() {
			sum += float64(op.ID)
			count++
		}
	}
	mean := sum / count
	mid := float64(stream-1) / 2
	// Standard error of the mean of ~2000 uniform draws over [0,5000) is
	// ~32; 10% of the midpoint is a ~78-sigma corridor — failure means bias,
	// not bad luck.
	if mean < mid*0.9 || mean > mid*1.1 {
		t.Fatalf("mean retained ID %.0f, want within 10%% of stream midpoint %.0f: reservoir is biased", mean, mid)
	}
}

// TestSampledHistoryCheckersPanic pins the soundness guard: the
// completeness-sensitive checkers must refuse a subsampled history instead
// of silently under-reporting.
func TestSampledHistoryCheckersPanic(t *testing.T) {
	h := fillSampled(8, 1, 100)
	for name, check := range map[string]func(){
		"CheckLinearizability":     func() { h.CheckLinearizability() },
		"CheckExternalConsistency": func() { h.CheckExternalConsistency() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on a sampled history", name)
				}
			}()
			check()
		}()
	}
}

// TestSampledHistoryStructuralViolationsSurvive checks Violate is exempt
// from sampling: structural breaches fire on the spot and must all be kept.
func TestSampledHistoryStructuralViolationsSurvive(t *testing.T) {
	k := sim.New()
	h := NewSampledHistory(k, 4, 1)
	for i := 0; i < 1000; i++ {
		h.OK(h.Invoke("c", "write", "k", uint64(i)), 0)
		if i%100 == 0 {
			h.Violate("exactly-once", "k", "replayed mutation %d", i)
		}
	}
	if got := len(h.Structural()); got != 10 {
		t.Fatalf("%d structural violations recorded, want all 10 despite op sampling", got)
	}
}

// TestExactHistoryUnchanged guards the default path: NewHistory keeps every
// operation and reports itself unsampled.
func TestExactHistoryUnchanged(t *testing.T) {
	k := sim.New()
	h := NewHistory(k)
	for i := 0; i < 500; i++ {
		h.OK(h.Invoke("c", "write", "k", uint64(i)), 0)
	}
	if h.Sampled() {
		t.Fatal("exact history reports Sampled() = true")
	}
	if h.Len() != 500 || h.Seen() != 500 {
		t.Fatalf("exact history Len=%d Seen=%d, want 500/500", h.Len(), h.Seen())
	}
	if h.CheckLinearizability() != nil {
		t.Fatal("sequential writes flagged as non-linearizable")
	}
}
