package check

import (
	"fmt"
	"sort"
)

// This file checks external consistency, the guarantee Spanner's commit-wait
// buys: if transaction A returns to its caller before transaction B is
// invoked (a real-time ordering any external observer can establish), then
// A's commit timestamp is strictly smaller than B's. Timestamps come from
// skewed per-node clocks, so the property holds only while every clock's
// error stays inside its uncertainty bound and commits wait the bound out —
// disable the wait (spanner's DisableCommitWait fixture) and two causally
// ordered commits through differently-skewed leaders invert their
// timestamps, which this check reports with the two-operation subhistory
// that proves it.

// maxExternalViolations caps reporting: timestamp inversions are usually
// systemic (one fast clock inverts against many later commits), so a few
// witnesses identify the problem without drowning the report.
const maxExternalViolations = 8

// CheckExternalConsistency scans every pair of timestamped completed
// operations for a real-time order that their commit timestamps contradict.
// Each violation carries the minimal (two-operation) violating subhistory:
// the earlier-returning operation and the later-invoked one whose timestamp
// failed to exceed it. A nil history checks clean.
func (h *History) CheckExternalConsistency() []Violation {
	if h == nil {
		return nil
	}
	h.guardExact("CheckExternalConsistency")
	var stamped []*Op
	for _, op := range h.ops {
		if op.HasTS && op.Outcome == OutcomeOK {
			stamped = append(stamped, op)
		}
	}
	// Scan in return order so each violation's witness pair is the earliest
	// available and the output is deterministic.
	sort.SliceStable(stamped, func(i, j int) bool {
		if stamped[i].Return != stamped[j].Return {
			return stamped[i].Return < stamped[j].Return
		}
		return stamped[i].ID < stamped[j].ID
	})
	var out []Violation
	for i, a := range stamped {
		for _, b := range stamped[i+1:] {
			if a.Return >= b.Invoke || a.TS < b.TS {
				continue
			}
			out = append(out, Violation{
				Kind: "external-consistency",
				Key:  a.Key,
				Detail: fmt.Sprintf(
					"op %d returned at %v before op %d invoked at %v, but its commit timestamp %v is not below %v",
					a.ID, a.Return, b.ID, b.Invoke, a.TS, b.TS),
				At:      b.Return,
				History: []*Op{a, b},
			})
			if len(out) >= maxExternalViolations {
				return out
			}
			break // one witness per earlier op is enough
		}
	}
	return out
}
