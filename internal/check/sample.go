package check

import (
	"sort"

	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
)

// NewSampledHistory creates a history that retains at most limit operations,
// chosen by reservoir sampling (Algorithm R) over everything invoked: after
// n invocations every operation has probability limit/n of being in the
// retained set, so the sample stays representative of the whole run while
// memory stays O(limit) no matter how many operations stream through — the
// bounded-memory recording mode fleet-scale studies switch on.
//
// Sampling is driven by its own deterministic generator, so the retained
// set is a pure function of (seed, invocation sequence) and identical
// between sequential and parallel study runs.
//
// A sampled history supports structural violations (Violate fires on the
// spot regardless of sampling) and the Ops/Seen accessors, but it is NOT a
// sound input to the completeness-sensitive checkers: linearizability and
// external consistency both reason about the absence of conflicting
// operations, which a subsample cannot witness. Those checkers panic on a
// sampled history rather than silently under-reporting; studies that want
// them keep the default exact NewHistory.
func NewSampledHistory(k *sim.Kernel, limit int, seed uint64) *History {
	if limit <= 0 {
		panic("check: sampled history needs a positive retention limit")
	}
	return &History{
		k:        k,
		initials: map[string]uint64{},
		limit:    limit,
		rng:      stats.NewRNG(seed),
	}
}

// Sampled reports whether this history subsamples its operations (and is
// therefore off-limits to the completeness-sensitive checkers).
func (h *History) Sampled() bool { return h != nil && h.limit > 0 }

// Seen returns the total number of operations ever invoked, including those
// the reservoir evicted. For an exact history it equals Len.
func (h *History) Seen() int64 {
	if h == nil {
		return 0
	}
	return h.seen
}

// SampledOps returns the retained operations in invocation order. On an
// exact history it is the same as Ops.
func (h *History) SampledOps() []*Op {
	ops := append([]*Op(nil), h.ops...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	return ops
}

// admit places a newly invoked op into the reservoir: keep the first limit
// outright, then replace a uniformly random slot with probability
// limit/seen. Evicted ops stay live through their caller's handle until
// completion, they just stop being part of the retained history.
func (h *History) admit(op *Op) {
	if len(h.ops) < h.limit {
		h.ops = append(h.ops, op)
		return
	}
	if j := h.rng.Intn(int(h.seen)); j < h.limit {
		h.ops[j] = op
	}
}

// guardExact panics if a completeness-sensitive checker is invoked on a
// sampled history.
func (h *History) guardExact(checker string) {
	if h.Sampled() {
		panic("check: " + checker + " needs a complete history; this one reservoir-samples (NewSampledHistory) and cannot witness absent operations")
	}
}
