// Package check is the safety-checking layer over the platform simulations:
// a deterministic operation-history recorder driven by the DES clock, a
// Wing & Gong-style linearizability checker over a per-key atomic-register
// model, and a registry for standing invariants. The fault engine in
// internal/faults makes the platforms *fail*; this package proves they stay
// *correct* while failing — no committed write lost, no mutation replayed
// twice, no shard double-counted.
//
// Recording is opt-in and cheap: platforms hold a nil *History by default
// and pay one pointer test per operation. The simulation kernel's strict
// goroutine alternation makes the recorder safe to share without locks.
package check

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
)

// Outcome classifies how a recorded operation ended.
type Outcome int

const (
	// OutcomeOK means the operation completed and its effect (write) or
	// return value (read) is known.
	OutcomeOK Outcome = iota
	// OutcomeFailed means the operation definitely had no effect (e.g. a
	// validation error, or a commit rejected before the leader appended it).
	// Failed operations impose no constraint on the history.
	OutcomeFailed
	// OutcomeIndeterminate means the operation errored but may still have
	// taken effect (e.g. a commit that was appended to the leader's log but
	// missed its quorum: a later catch-up can replicate it). The checker
	// allows such an operation to linearize at any point after its invoke —
	// including never, modeled as a return at the end of time.
	OutcomeIndeterminate
	// OutcomePending means the operation never returned before the history
	// was checked. Treated like Indeterminate.
	OutcomePending
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeFailed:
		return "failed"
	case OutcomeIndeterminate:
		return "indet"
	case OutcomePending:
		return "pending"
	}
	return "unknown"
}

// Op is one recorded operation. Values are recorded as 64-bit digests so
// histories stay compact even for large row payloads.
type Op struct {
	// ID is the operation's position in recording order.
	ID int
	// Client names the issuing process (well-formedness: one outstanding
	// operation per client).
	Client string
	// Kind is the operation type; the linearizability checker interprets
	// "read" and "write", other kinds ride along for reporting.
	Kind string
	// Key is the register the operation touched.
	Key string
	// Arg is the digest of the written value (writes).
	Arg uint64
	// Ret is the digest of the returned value (reads with OutcomeOK).
	Ret uint64
	// Invoke and Return are the operation's virtual-time window.
	Invoke, Return time.Duration
	// Outcome classifies the completion.
	Outcome Outcome
	// TS is the commit timestamp the platform assigned (Spanner commits),
	// valid when HasTS is set. Timestamps come from the platform's skewed
	// local clocks, not the simulation clock — comparing them against the
	// Invoke/Return instants is exactly what the external-consistency check
	// does.
	TS    time.Duration
	HasTS bool
}

// String renders one op as a history line.
func (o *Op) String() string {
	val := ""
	switch {
	case o.Kind == "write":
		val = fmt.Sprintf(" val=%016x", o.Arg)
	case o.Kind == "read" && o.Outcome == OutcomeOK:
		val = fmt.Sprintf(" ret=%016x", o.Ret)
	}
	if o.HasTS {
		val += fmt.Sprintf(" ts=%v", o.TS)
	}
	return fmt.Sprintf("op %3d %-8s %-5s %-12s [%12v, %12v] %s%s",
		o.ID, o.Client, o.Kind, o.Key, o.Invoke, o.Return, o.Outcome, val)
}

// Violation is one detected safety violation: either a non-linearizable
// history over a key (History holds the minimal violating subhistory) or a
// structural invariant breach detected at a specific instant.
type Violation struct {
	// Platform tags the deployment the violation came from (filled by the
	// harness).
	Platform string
	// Kind classifies the violation ("linearizability", "exactly-once",
	// "invariant", ...).
	Kind string
	// Key is the register or object involved, if any.
	Key string
	// Detail is the human-readable description.
	Detail string
	// At is the virtual time the violation was detected.
	At time.Duration
	// History is the minimal violating subhistory (linearizability only).
	History []*Op
}

// String renders the violation with its minimal history, if any.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", v.Kind, v.Detail)
	if v.Platform != "" {
		b.WriteString(" (platform " + v.Platform + ")")
	}
	for _, op := range v.History {
		b.WriteString("\n  " + op.String())
	}
	return b.String()
}

// FormatOps renders a history slice one op per line (tests and reports).
func FormatOps(ops []*Op) string {
	lines := make([]string, len(ops))
	for i, op := range ops {
		lines[i] = op.String()
	}
	return strings.Join(lines, "\n")
}

// History records operations against the simulation clock. The zero value is
// not usable; create with NewHistory. A nil *History is a valid "recording
// off" receiver for the platform hooks' nil checks.
type History struct {
	k        *sim.Kernel
	ops      []*Op
	initials map[string]uint64

	// Reservoir-sampling mode (NewSampledHistory): limit caps len(ops), seen
	// counts every invocation, rng drives the replacement draws. limit == 0
	// is the default exact mode, which records everything.
	limit int
	seen  int64
	rng   *stats.RNG

	structural []Violation
}

// NewHistory creates an empty history on the kernel's clock.
func NewHistory(k *sim.Kernel) *History {
	return &History{k: k, initials: map[string]uint64{}}
}

// Digest hashes a value to the 64-bit digest histories store (FNV-1a).
func Digest(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Initial records a key's initial value digest, once; later calls for the
// same key are ignored. Platforms call it before the first operation on a
// key so the checker knows what an untouched register reads as.
func (h *History) Initial(key string, digest uint64) {
	if _, ok := h.initials[key]; !ok {
		h.initials[key] = digest
	}
}

// Invoke records an operation's invocation at the current virtual time and
// returns its handle, to be completed with OK, Fail or Indeterminate.
func (h *History) Invoke(client, kind, key string, arg uint64) *Op {
	op := &Op{
		ID:      int(h.seen),
		Client:  client,
		Kind:    kind,
		Key:     key,
		Arg:     arg,
		Invoke:  h.k.Now(),
		Return:  -1,
		Outcome: OutcomePending,
	}
	h.seen++
	if h.limit > 0 {
		h.admit(op)
	} else {
		h.ops = append(h.ops, op)
	}
	return op
}

// OK completes an operation successfully; ret is the returned value digest
// (reads; writes pass 0).
func (h *History) OK(op *Op, ret uint64) {
	op.Return = h.k.Now()
	op.Ret = ret
	op.Outcome = OutcomeOK
}

// OKAt completes an operation successfully and records the commit timestamp
// the platform assigned it, enabling the external-consistency check.
func (h *History) OKAt(op *Op, ret uint64, ts time.Duration) {
	h.OK(op, ret)
	op.TS = ts
	op.HasTS = true
}

// Fail completes an operation as a definite no-effect failure.
func (h *History) Fail(op *Op) {
	op.Return = h.k.Now()
	op.Outcome = OutcomeFailed
}

// Indeterminate completes an operation whose effect is unknown (it may still
// apply later, or never).
func (h *History) Indeterminate(op *Op) {
	op.Return = h.k.Now()
	op.Outcome = OutcomeIndeterminate
}

// Violate records a structural violation detected inside a platform at the
// current virtual time (duplicate replay, double-merged shard, broken
// election invariant, ...).
func (h *History) Violate(kind, key, format string, args ...interface{}) {
	h.structural = append(h.structural, Violation{
		Kind:   kind,
		Key:    key,
		Detail: fmt.Sprintf(format, args...),
		At:     h.k.Now(),
	})
}

// Structural returns the violations recorded with Violate.
func (h *History) Structural() []Violation { return h.structural }

// Ops returns the recorded operations in recording order.
func (h *History) Ops() []*Op { return h.ops }

// Len returns the number of recorded operations.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	return len(h.ops)
}

// Keys returns the recorded keys in sorted order.
func (h *History) Keys() []string {
	seen := map[string]bool{}
	var keys []string
	for _, op := range h.ops {
		if !seen[op.Key] {
			seen[op.Key] = true
			keys = append(keys, op.Key)
		}
	}
	sort.Strings(keys)
	return keys
}
