package faults

import (
	"sort"
	"time"

	"hyperprof/internal/stats"
)

// ScheduleConfig parameterizes random fault-schedule generation. All rates
// are per-target; the generated schedule pairs every crash with a recovery so
// runs always end with the fleet healthy.
type ScheduleConfig struct {
	// Horizon is the virtual-time window faults are generated within.
	Horizon time.Duration
	// MTBF is the mean time between failures for one target (exponential
	// inter-arrival). Zero disables crash generation.
	MTBF time.Duration
	// MTTR is the mean time to recovery after a crash (exponential). Zero
	// means instant-ish recovery (a minimum floor is applied).
	MTTR time.Duration
	// StragglerProb is the chance, per generated fault, that it is a
	// straggler window instead of a crash.
	StragglerProb float64
	// StragglerFactor is the service-time multiplier for straggler windows
	// (values <= 1 disable straggler generation).
	StragglerFactor float64
	// NetDegradeProb is the chance of one network-degradation window over
	// the horizon; Extra and drop use NetExtraDelay / NetDropProb.
	NetDegradeProb float64
	NetExtraDelay  time.Duration
	NetDropProb    float64
	// Seed drives every draw; equal seeds yield identical schedules.
	Seed uint64
}

// minRepair is the floor applied to repair times so crash/recover pairs never
// collapse onto the same instant.
const minRepair = time.Millisecond

// GenerateSchedule builds a deterministic fault schedule for the named
// targets. Each target gets an independent exponential crash arrival process
// (forked from the config seed, so adding targets does not shift earlier
// targets' draws); each crash or straggler window is paired with the matching
// recovery event inside the horizon. Events are returned sorted by time with
// target name as the tiebreaker.
func GenerateSchedule(targets []string, cfg ScheduleConfig) []Event {
	var evs []Event
	if cfg.Horizon <= 0 {
		return evs
	}
	root := stats.NewRNG(cfg.Seed)
	mttr := cfg.MTTR
	if mttr < minRepair {
		mttr = minRepair
	}
	for _, name := range targets {
		rng := root.Fork()
		if cfg.MTBF <= 0 {
			continue
		}
		at := time.Duration(rng.Exp(float64(cfg.MTBF)))
		for at < cfg.Horizon {
			repair := time.Duration(rng.Exp(float64(mttr)))
			if repair < minRepair {
				repair = minRepair
			}
			end := at + repair
			if end > cfg.Horizon {
				end = cfg.Horizon
			}
			if cfg.StragglerProb > 0 && cfg.StragglerFactor > 1 && rng.Bool(cfg.StragglerProb) {
				evs = append(evs,
					Event{At: at, Kind: Straggler, Target: name, Factor: cfg.StragglerFactor},
					Event{At: end, Kind: Straggler, Target: name, Factor: 1})
			} else {
				evs = append(evs,
					Event{At: at, Kind: Crash, Target: name},
					Event{At: end, Kind: Recover, Target: name})
			}
			at = end + time.Duration(rng.Exp(float64(cfg.MTBF)))
		}
	}
	if cfg.NetDegradeProb > 0 {
		rng := root.Fork()
		if rng.Bool(cfg.NetDegradeProb) {
			start := time.Duration(rng.Float64() * float64(cfg.Horizon) * 0.5)
			end := start + time.Duration(rng.Float64()*float64(cfg.Horizon)*0.25)
			if end > cfg.Horizon {
				end = cfg.Horizon
			}
			evs = append(evs,
				Event{At: start, Kind: NetDegrade, Factor: cfg.NetDropProb, Extra: cfg.NetExtraDelay},
				Event{At: end, Kind: NetRestore})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Target < evs[j].Target
	})
	return evs
}
