package faults

import (
	"strings"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// TestRateSurgeDrivesSetRate checks the RateSurge kind end to end: the surge
// applies the multiplier, the clearing event restores the base rate, and
// targets without a SetRate hook skip the event.
func TestRateSurgeDrivesSetRate(t *testing.T) {
	k := sim.New()
	e := NewEngine(k)
	var mults []float64
	e.Register("tenant/flash", Actions{SetRate: func(m float64) { mults = append(mults, m) }})
	e.Register("no-rate", Actions{Crash: func() {}})
	st := e.RunScenario(FlashCrowd("tenant/flash", 10*time.Millisecond, 20*time.Millisecond, 5))
	e.Inject(Event{At: 40 * time.Millisecond, Kind: RateSurge, Target: "no-rate", Factor: 2})
	k.Run()

	if len(mults) != 2 || mults[0] != 5 || mults[1] != 1 {
		t.Fatalf("SetRate calls = %v, want [5 1]", mults)
	}
	if st.ByKind[RateSurge] != 2 {
		t.Fatalf("ByKind[RateSurge] = %d, want 2", st.ByKind[RateSurge])
	}
	if e.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1 (target without SetRate)", e.Skipped)
	}
}

// TestScenarioStatsAggregatesRepeatedLabels is the satellite regression: the
// same action applied repeatedly aggregates into one ByLabel entry, and the
// String() rendering lists labels in sorted order.
func TestScenarioStatsAggregatesRepeatedLabels(t *testing.T) {
	k := sim.New()
	rec := &recorder{k: k}
	e := NewEngine(k)
	e.Register("b", rec.actions("b"))
	e.Register("a", rec.actions("a"))
	st := e.RunScenario(Scenario{
		Name: "flap",
		Events: []Event{
			{At: 1 * time.Millisecond, Kind: Straggler, Target: "b", Factor: 2},
			{At: 2 * time.Millisecond, Kind: Straggler, Target: "a", Factor: 2},
			{At: 3 * time.Millisecond, Kind: Straggler, Target: "b", Factor: 1},
			{At: 4 * time.Millisecond, Kind: Straggler, Target: "b", Factor: 3},
		},
	})
	k.Run()

	if st.ByLabel["straggler b"] != 3 || st.ByLabel["straggler a"] != 1 {
		t.Fatalf("ByLabel = %v, want straggler b:3, straggler a:1", st.ByLabel)
	}
	labels := st.Labels()
	if len(labels) != 2 || labels[0] != "straggler a" || labels[1] != "straggler b" {
		t.Fatalf("Labels() = %v, want sorted [straggler a, straggler b]", labels)
	}
	got := st.String()
	want := `scenario "flap": 4 scheduled, 4 applied, 4 straggler; straggler a x1; straggler b x3`
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Rendering is a pure function of the aggregates: repeated calls match.
	if st.String() != got {
		t.Fatalf("String() not stable")
	}
	if !strings.Contains(got, "straggler a x1") {
		t.Fatalf("label aggregation missing from %q", got)
	}
}

// TestRetryStormScenarioShape pins the canned retry-storm schedule: a paired
// slowdown on every server plus a paired surge on the tenant.
func TestRetryStormScenarioShape(t *testing.T) {
	s := RetryStorm([]string{"s1", "s2"}, "tenant/flash", 100*time.Millisecond, 50*time.Millisecond, 8, 4)
	if s.Name != "retry-storm" {
		t.Fatalf("Name = %q", s.Name)
	}
	if len(s.Events) != 6 {
		t.Fatalf("len(Events) = %d, want 6 (2 per server + 2 surge)", len(s.Events))
	}
	var surges, slows int
	for _, ev := range s.Events {
		switch ev.Kind {
		case RateSurge:
			surges++
		case Straggler:
			slows++
		default:
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
	}
	if surges != 2 || slows != 4 {
		t.Fatalf("surges=%d slows=%d, want 2/4", surges, slows)
	}
}
