// Package faults is the deterministic fault-injection engine: it drives
// crash/recover, straggler (service-time multiplier), and network-degradation
// events against named targets on the discrete-event clock, generates seeded
// random fault schedules, and runs chaos scenarios with per-scenario stats.
//
// The engine knows nothing about platforms. Each injectable component
// registers a named Actions bundle (how to crash it, recover it, or slow it
// down), and schedules — hand-written or generated — are injected before the
// kernel runs. Everything is seeded, so a given (schedule seed, target set)
// pair replays bit-identically.
package faults

import (
	"fmt"
	"log"
	"sort"
	"time"

	"hyperprof/internal/sim"
)

// Kind classifies a fault event.
type Kind int

// The injectable fault kinds.
const (
	// Crash takes the target down immediately (in-flight work fails).
	Crash Kind = iota
	// Recover brings a crashed target back.
	Recover
	// Straggler multiplies the target's service time by Event.Factor;
	// Factor <= 1 clears the injection.
	Straggler
	// NetDegrade adds Event.Extra per-message delay and drops requests with
	// probability Event.Factor, network-wide.
	NetDegrade
	// NetRestore clears network degradation.
	NetRestore
	// RateSurge multiplies the target's offered load by Event.Factor — the
	// flash-crowd injection for open-loop overload scenarios; Factor <= 1
	// restores the base rate.
	RateSurge
	// Partition blocks connectivity. With Event.Links set it blocks those
	// directed links on the registered link plane; with a bare Target it
	// invokes the target's Partition action (for components that are not
	// RPC-fronted, like BigTable's tablet servers).
	Partition
	// Heal is Partition's inverse: it clears every fault on Event.Links, or
	// invokes the target's Heal action.
	Heal
	// GrayLink injects an asymmetric slow-lossy link: each directed link in
	// Event.Links pays Event.Extra per message and loses messages with
	// probability Event.Factor. Healed by a matching Heal.
	GrayLink
	// ClockSkew sets the target's clock to Event.Extra offset drifting at
	// Event.Factor seconds per second; a later ClockSkew with zero values
	// clears it (skew replaces, never stacks).
	ClockSkew
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Straggler:
		return "straggler"
	case NetDegrade:
		return "net-degrade"
	case NetRestore:
		return "net-restore"
	case RateSurge:
		return "rate-surge"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case GrayLink:
		return "gray-link"
	case ClockSkew:
		return "clock-skew"
	}
	return "unknown"
}

// Link names one directed network link by its endpoint node names.
type Link struct {
	From, To string
}

// Event is one scheduled fault.
type Event struct {
	// At is the absolute virtual time the fault fires.
	At time.Duration
	// Kind selects the action.
	Kind Kind
	// Target names the registered target; empty for network-wide events.
	Target string
	// Factor is the straggler multiplier, the drop probability (NetDegrade,
	// GrayLink) or the drift rate (ClockSkew).
	Factor float64
	// Extra is the per-message delay (NetDegrade, GrayLink) or the clock
	// offset (ClockSkew).
	Extra time.Duration
	// Links are the directed links a Partition/GrayLink/Heal event acts on;
	// empty means the event is target-scoped instead.
	Links []Link
}

// Actions is what the engine can do to one registered target. Nil fields
// mean the target does not support that fault (events against it are counted
// as skipped rather than applied).
type Actions struct {
	Crash       func()
	Recover     func()
	SetSlowdown func(factor float64)
	// SetRate scales the target's offered load (RateSurge); targets that are
	// not workload generators leave it nil.
	SetRate func(mult float64)
	// Partition/Heal cut the target off and reconnect it at the platform
	// level — for components whose data path is not RPC-fronted, where the
	// netsim link plane cannot model the cut.
	Partition func()
	Heal      func()
	// SetClockSkew skews the target's local clock (ClockSkew); zero values
	// clear the skew.
	SetClockSkew func(offset time.Duration, drift float64)
}

// LinkPlane is the directed-link fault surface an engine drives Partition,
// GrayLink and Heal events through. Each hook reports whether the link's
// endpoints were known; unknown links are counted in SkippedUnknownTarget.
// netsim.Network's BlockLink/SetLinkFault/HealLink methods fit directly.
type LinkPlane struct {
	Block func(from, to string) bool
	Gray  func(from, to string, extra time.Duration, drop float64) bool
	Heal  func(from, to string) bool
}

// Applied records one fault that actually fired.
type Applied struct {
	At     time.Duration
	Kind   Kind
	Target string
}

// Label renders the applied fault for logs and trace marks.
func (a Applied) Label() string {
	if a.Target == "" {
		return a.Kind.String()
	}
	return fmt.Sprintf("%s %s", a.Kind, a.Target)
}

// Engine schedules fault events against registered targets on a kernel.
type Engine struct {
	k          *sim.Kernel
	targets    map[string]Actions
	names      []string
	netDegrade func(extra time.Duration, drop float64)
	netRestore func()
	links      *LinkPlane

	// Applied lists the faults that fired, in firing order.
	Applied []Applied
	// Skipped counts events whose target was unknown or lacked the action.
	Skipped int
	// SkippedUnknownTarget counts the subset of skips caused by a Target or
	// link endpoint that was never registered — a misspelled schedule rather
	// than a target that legitimately lacks the action. The first one is
	// logged so schedules cannot lose events invisibly.
	SkippedUnknownTarget int
	warnedUnknown        bool
}

// NewEngine creates an engine on the kernel.
func NewEngine(k *sim.Kernel) *Engine {
	return &Engine{k: k, targets: map[string]Actions{}}
}

// Register adds a named target. Re-registering a name replaces its actions.
func (e *Engine) Register(name string, a Actions) {
	if _, ok := e.targets[name]; !ok {
		e.names = append(e.names, name)
	}
	e.targets[name] = a
}

// RegisterNetwork wires the network-wide degradation hooks.
func (e *Engine) RegisterNetwork(degrade func(extra time.Duration, drop float64), restore func()) {
	e.netDegrade = degrade
	e.netRestore = restore
}

// RegisterLinkPlane wires the directed-link fault hooks Partition, GrayLink
// and link-scoped Heal events apply through.
func (e *Engine) RegisterLinkPlane(p LinkPlane) { e.links = &p }

// Targets returns the registered target names, sorted.
func (e *Engine) Targets() []string {
	out := append([]string(nil), e.names...)
	sort.Strings(out)
	return out
}

// Inject schedules one event on the kernel. Events in the past (At before
// the current virtual time) fire immediately.
func (e *Engine) Inject(ev Event) { e.inject(ev, nil) }

// InjectAll schedules a batch of events.
func (e *Engine) InjectAll(evs []Event) {
	for _, ev := range evs {
		e.Inject(ev)
	}
}

func (e *Engine) inject(ev Event, st *ScenarioStats) {
	delay := ev.At - e.k.Now()
	e.k.Schedule(delay, func() {
		if !e.apply(ev) {
			e.Skipped++
			return
		}
		a := Applied{At: e.k.Now(), Kind: ev.Kind, Target: ev.Target}
		e.Applied = append(e.Applied, a)
		if st != nil {
			st.record(a)
		}
	})
}

// apply performs the event's action, reporting whether it was applicable.
func (e *Engine) apply(ev Event) bool {
	switch ev.Kind {
	case NetDegrade:
		if e.netDegrade == nil {
			return false
		}
		e.netDegrade(ev.Extra, ev.Factor)
		return true
	case NetRestore:
		if e.netRestore == nil {
			return false
		}
		e.netRestore()
		return true
	case Partition, GrayLink, Heal:
		if len(ev.Links) > 0 {
			return e.applyLinks(ev)
		}
		// Link-less partition/heal events are target-scoped: fall through to
		// the Actions table below.
	}
	t, ok := e.targets[ev.Target]
	if !ok {
		e.noteUnknownTarget(ev.Target)
		return false
	}
	switch ev.Kind {
	case Crash:
		if t.Crash == nil {
			return false
		}
		t.Crash()
	case Recover:
		if t.Recover == nil {
			return false
		}
		t.Recover()
	case Straggler:
		if t.SetSlowdown == nil {
			return false
		}
		t.SetSlowdown(ev.Factor)
	case RateSurge:
		if t.SetRate == nil {
			return false
		}
		t.SetRate(ev.Factor)
	case Partition:
		if t.Partition == nil {
			return false
		}
		t.Partition()
	case Heal:
		if t.Heal == nil {
			return false
		}
		t.Heal()
	case ClockSkew:
		if t.SetClockSkew == nil {
			return false
		}
		t.SetClockSkew(ev.Extra, ev.Factor)
	default:
		return false
	}
	return true
}

// applyLinks drives a link-scoped event through the registered link plane.
// The event counts as applied if any of its links took the fault; each link
// with an unknown endpoint is counted (and the first logged) instead of
// being lost invisibly.
func (e *Engine) applyLinks(ev Event) bool {
	if e.links == nil {
		return false
	}
	applied := false
	for _, l := range ev.Links {
		var ok bool
		switch ev.Kind {
		case Partition:
			ok = e.links.Block != nil && e.links.Block(l.From, l.To)
		case GrayLink:
			ok = e.links.Gray != nil && e.links.Gray(l.From, l.To, ev.Extra, ev.Factor)
		case Heal:
			ok = e.links.Heal != nil && e.links.Heal(l.From, l.To)
		}
		if !ok {
			e.noteUnknownTarget(l.From + "->" + l.To)
			continue
		}
		applied = true
	}
	return applied
}

// noteUnknownTarget accounts an event (or link) whose target was never
// registered. Logged once per engine: a steady stream of unknown targets is
// one misspelled schedule, not many distinct problems.
func (e *Engine) noteUnknownTarget(name string) {
	e.SkippedUnknownTarget++
	if !e.warnedUnknown {
		e.warnedUnknown = true
		log.Printf("faults: fault target %q is not registered; dropping and counting in SkippedUnknownTarget (further unknown targets logged silently)", name)
	}
}

// Scenario is a named batch of fault events — one chaos experiment.
type Scenario struct {
	Name   string
	Events []Event
}

// ScenarioStats accounts one scenario's injections as the simulation runs.
type ScenarioStats struct {
	Name string
	// Scheduled is the number of events injected.
	Scheduled int
	// Applied lists the scenario's faults that fired, in firing order.
	Applied []Applied
	// ByKind counts applied faults per kind.
	ByKind map[Kind]int
	// ByLabel aggregates repeated applications of the same action by
	// Applied.Label(), so "straggler srv-2 fired 4 times" is one entry.
	ByLabel map[string]int
}

func (st *ScenarioStats) record(a Applied) {
	st.Applied = append(st.Applied, a)
	st.ByKind[a.Kind]++
	st.ByLabel[a.Label()]++
}

// Labels returns the applied-fault labels in sorted order — the same
// deterministic-key convention the obs exports use.
func (st *ScenarioStats) Labels() []string {
	out := make([]string, 0, len(st.ByLabel))
	for l := range st.ByLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders a compact per-scenario summary with deterministic ordering:
// per-kind counts in kind order, then per-label counts in sorted label order.
func (st *ScenarioStats) String() string {
	s := fmt.Sprintf("scenario %q: %d scheduled, %d applied", st.Name, st.Scheduled, len(st.Applied))
	for _, k := range []Kind{Crash, Recover, Straggler, NetDegrade, NetRestore, RateSurge, Partition, Heal, GrayLink, ClockSkew} {
		if n := st.ByKind[k]; n > 0 {
			s += fmt.Sprintf(", %d %s", n, k)
		}
	}
	for _, l := range st.Labels() {
		s += fmt.Sprintf("; %s x%d", l, st.ByLabel[l])
	}
	return s
}

// RunScenario injects every event of the scenario and returns its stats
// handle, which fills in as the simulation executes the events.
func (e *Engine) RunScenario(s Scenario) *ScenarioStats {
	st := &ScenarioStats{Name: s.Name, Scheduled: len(s.Events), ByKind: map[Kind]int{}, ByLabel: map[string]int{}}
	for _, ev := range s.Events {
		e.inject(ev, st)
	}
	return st
}
