// Package faults is the deterministic fault-injection engine: it drives
// crash/recover, straggler (service-time multiplier), and network-degradation
// events against named targets on the discrete-event clock, generates seeded
// random fault schedules, and runs chaos scenarios with per-scenario stats.
//
// The engine knows nothing about platforms. Each injectable component
// registers a named Actions bundle (how to crash it, recover it, or slow it
// down), and schedules — hand-written or generated — are injected before the
// kernel runs. Everything is seeded, so a given (schedule seed, target set)
// pair replays bit-identically.
package faults

import (
	"fmt"
	"sort"
	"time"

	"hyperprof/internal/sim"
)

// Kind classifies a fault event.
type Kind int

// The injectable fault kinds.
const (
	// Crash takes the target down immediately (in-flight work fails).
	Crash Kind = iota
	// Recover brings a crashed target back.
	Recover
	// Straggler multiplies the target's service time by Event.Factor;
	// Factor <= 1 clears the injection.
	Straggler
	// NetDegrade adds Event.Extra per-message delay and drops requests with
	// probability Event.Factor, network-wide.
	NetDegrade
	// NetRestore clears network degradation.
	NetRestore
	// RateSurge multiplies the target's offered load by Event.Factor — the
	// flash-crowd injection for open-loop overload scenarios; Factor <= 1
	// restores the base rate.
	RateSurge
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Straggler:
		return "straggler"
	case NetDegrade:
		return "net-degrade"
	case NetRestore:
		return "net-restore"
	case RateSurge:
		return "rate-surge"
	}
	return "unknown"
}

// Event is one scheduled fault.
type Event struct {
	// At is the absolute virtual time the fault fires.
	At time.Duration
	// Kind selects the action.
	Kind Kind
	// Target names the registered target; empty for network-wide events.
	Target string
	// Factor is the straggler multiplier or the drop probability.
	Factor float64
	// Extra is the per-message delay for NetDegrade.
	Extra time.Duration
}

// Actions is what the engine can do to one registered target. Nil fields
// mean the target does not support that fault (events against it are counted
// as skipped rather than applied).
type Actions struct {
	Crash       func()
	Recover     func()
	SetSlowdown func(factor float64)
	// SetRate scales the target's offered load (RateSurge); targets that are
	// not workload generators leave it nil.
	SetRate func(mult float64)
}

// Applied records one fault that actually fired.
type Applied struct {
	At     time.Duration
	Kind   Kind
	Target string
}

// Label renders the applied fault for logs and trace marks.
func (a Applied) Label() string {
	if a.Target == "" {
		return a.Kind.String()
	}
	return fmt.Sprintf("%s %s", a.Kind, a.Target)
}

// Engine schedules fault events against registered targets on a kernel.
type Engine struct {
	k          *sim.Kernel
	targets    map[string]Actions
	names      []string
	netDegrade func(extra time.Duration, drop float64)
	netRestore func()

	// Applied lists the faults that fired, in firing order.
	Applied []Applied
	// Skipped counts events whose target was unknown or lacked the action.
	Skipped int
}

// NewEngine creates an engine on the kernel.
func NewEngine(k *sim.Kernel) *Engine {
	return &Engine{k: k, targets: map[string]Actions{}}
}

// Register adds a named target. Re-registering a name replaces its actions.
func (e *Engine) Register(name string, a Actions) {
	if _, ok := e.targets[name]; !ok {
		e.names = append(e.names, name)
	}
	e.targets[name] = a
}

// RegisterNetwork wires the network-wide degradation hooks.
func (e *Engine) RegisterNetwork(degrade func(extra time.Duration, drop float64), restore func()) {
	e.netDegrade = degrade
	e.netRestore = restore
}

// Targets returns the registered target names, sorted.
func (e *Engine) Targets() []string {
	out := append([]string(nil), e.names...)
	sort.Strings(out)
	return out
}

// Inject schedules one event on the kernel. Events in the past (At before
// the current virtual time) fire immediately.
func (e *Engine) Inject(ev Event) { e.inject(ev, nil) }

// InjectAll schedules a batch of events.
func (e *Engine) InjectAll(evs []Event) {
	for _, ev := range evs {
		e.Inject(ev)
	}
}

func (e *Engine) inject(ev Event, st *ScenarioStats) {
	delay := ev.At - e.k.Now()
	e.k.Schedule(delay, func() {
		if !e.apply(ev) {
			e.Skipped++
			return
		}
		a := Applied{At: e.k.Now(), Kind: ev.Kind, Target: ev.Target}
		e.Applied = append(e.Applied, a)
		if st != nil {
			st.record(a)
		}
	})
}

// apply performs the event's action, reporting whether it was applicable.
func (e *Engine) apply(ev Event) bool {
	switch ev.Kind {
	case NetDegrade:
		if e.netDegrade == nil {
			return false
		}
		e.netDegrade(ev.Extra, ev.Factor)
		return true
	case NetRestore:
		if e.netRestore == nil {
			return false
		}
		e.netRestore()
		return true
	}
	t, ok := e.targets[ev.Target]
	if !ok {
		return false
	}
	switch ev.Kind {
	case Crash:
		if t.Crash == nil {
			return false
		}
		t.Crash()
	case Recover:
		if t.Recover == nil {
			return false
		}
		t.Recover()
	case Straggler:
		if t.SetSlowdown == nil {
			return false
		}
		t.SetSlowdown(ev.Factor)
	case RateSurge:
		if t.SetRate == nil {
			return false
		}
		t.SetRate(ev.Factor)
	default:
		return false
	}
	return true
}

// Scenario is a named batch of fault events — one chaos experiment.
type Scenario struct {
	Name   string
	Events []Event
}

// ScenarioStats accounts one scenario's injections as the simulation runs.
type ScenarioStats struct {
	Name string
	// Scheduled is the number of events injected.
	Scheduled int
	// Applied lists the scenario's faults that fired, in firing order.
	Applied []Applied
	// ByKind counts applied faults per kind.
	ByKind map[Kind]int
	// ByLabel aggregates repeated applications of the same action by
	// Applied.Label(), so "straggler srv-2 fired 4 times" is one entry.
	ByLabel map[string]int
}

func (st *ScenarioStats) record(a Applied) {
	st.Applied = append(st.Applied, a)
	st.ByKind[a.Kind]++
	st.ByLabel[a.Label()]++
}

// Labels returns the applied-fault labels in sorted order — the same
// deterministic-key convention the obs exports use.
func (st *ScenarioStats) Labels() []string {
	out := make([]string, 0, len(st.ByLabel))
	for l := range st.ByLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders a compact per-scenario summary with deterministic ordering:
// per-kind counts in kind order, then per-label counts in sorted label order.
func (st *ScenarioStats) String() string {
	s := fmt.Sprintf("scenario %q: %d scheduled, %d applied", st.Name, st.Scheduled, len(st.Applied))
	for _, k := range []Kind{Crash, Recover, Straggler, NetDegrade, NetRestore, RateSurge} {
		if n := st.ByKind[k]; n > 0 {
			s += fmt.Sprintf(", %d %s", n, k)
		}
	}
	for _, l := range st.Labels() {
		s += fmt.Sprintf("; %s x%d", l, st.ByLabel[l])
	}
	return s
}

// RunScenario injects every event of the scenario and returns its stats
// handle, which fills in as the simulation executes the events.
func (e *Engine) RunScenario(s Scenario) *ScenarioStats {
	st := &ScenarioStats{Name: s.Name, Scheduled: len(s.Events), ByKind: map[Kind]int{}, ByLabel: map[string]int{}}
	for _, ev := range s.Events {
		e.inject(ev, st)
	}
	return st
}
