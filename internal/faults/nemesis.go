package faults

// Nemesis scenarios: partition topologies, gray links and clock skew — the
// gray-failure shapes hyperscale operators actually see, as opposed to the
// clean whole-node crashes GenerateSchedule draws. Partition events carry
// their directed link sets, so one Partition event opens exactly one window
// that one matching Heal event (same label, same links) closes; the
// schedule property tests pin that pairing.

import (
	"sort"
	"time"

	"hyperprof/internal/stats"
)

// crossLinks returns both directions of every link between a node of side a
// and a node of side b.
func crossLinks(a, b []string) []Link {
	links := make([]Link, 0, 2*len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			links = append(links, Link{From: x, To: y}, Link{From: y, To: x})
		}
	}
	return links
}

// partitionScenario pairs one Partition event with its Heal over the same
// links at the same label.
func partitionScenario(name, label string, links []Link, at, dur time.Duration) Scenario {
	return Scenario{
		Name: name,
		Events: []Event{
			{At: at, Kind: Partition, Target: label, Links: links},
			{At: at + dur, Kind: Heal, Target: label, Links: links},
		},
	}
}

// SplitBrain cuts the minority side off from the majority side in both
// directions over [at, at+dur) — the canonical quorum-loss partition. Links
// within each side stay healthy.
func SplitBrain(minority, majority []string, at, dur time.Duration) Scenario {
	return partitionScenario("split-brain", "partition/split", crossLinks(minority, majority), at, dur)
}

// RingPartition leaves each node able to reach only its ring neighbors over
// [at, at+dur): node i talks to i-1 and i+1 (mod n) and nobody else — the
// topology where every pair of non-neighbors disagrees about who is up while
// everyone is transitively connected.
func RingPartition(nodes []string, at, dur time.Duration) Scenario {
	var links []Link
	n := len(nodes)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if j-i == 1 || (i == 0 && j == n-1) {
				continue // ring neighbors stay connected
			}
			links = append(links, Link{From: nodes[i], To: nodes[j]}, Link{From: nodes[j], To: nodes[i]})
		}
	}
	return partitionScenario("ring-partition", "partition/ring", links, at, dur)
}

// BridgePartition blocks sideA from sideB directly while both sides still
// reach the bridge nodes — the partial partition where the bridge sees the
// whole fleet healthy and each side sees the other dead.
func BridgePartition(sideA, sideB, bridge []string, at, dur time.Duration) Scenario {
	return partitionScenario("bridge-partition", "partition/bridge", crossLinks(sideA, sideB), at, dur)
}

// GrayLinkScenario injects an asymmetric limping link: messages from -> to
// pay extra delay and are lost with probability drop over [at, at+dur),
// while to -> from stays healthy — the failure mode that breaks detectors
// assuming reachability is symmetric.
func GrayLinkScenario(from, to string, extra time.Duration, drop float64, at, dur time.Duration) Scenario {
	links := []Link{{From: from, To: to}}
	return Scenario{
		Name: "gray-link",
		Events: []Event{
			{At: at, Kind: GrayLink, Target: "gray/" + from + "->" + to, Links: links, Extra: extra, Factor: drop},
			{At: at + dur, Kind: Heal, Target: "gray/" + from + "->" + to, Links: links},
		},
	}
}

// TargetPartitionScenario cuts one registered target off at the platform
// level over [at, at+dur): the opening event invokes the target's Partition
// action, the closing one its Heal. This is the partition form for
// components whose data path is not RPC-fronted (BigTable's tablet servers),
// where the netsim link plane cannot model the cut.
func TargetPartitionScenario(target string, at, dur time.Duration) Scenario {
	return Scenario{
		Name: "target-partition",
		Events: []Event{
			{At: at, Kind: Partition, Target: target},
			{At: at + dur, Kind: Heal, Target: target},
		},
	}
}

// ClockSkewScenario skews the target's clock by offset, drifting at drift
// seconds per second, over [at, at+dur); the closing event clears the skew.
func ClockSkewScenario(target string, offset time.Duration, drift float64, at, dur time.Duration) Scenario {
	return Scenario{
		Name: "clock-skew",
		Events: []Event{
			{At: at, Kind: ClockSkew, Target: target, Extra: offset, Factor: drift},
			{At: at + dur, Kind: ClockSkew, Target: target},
		},
	}
}

// NemesisConfig extends ScheduleConfig with the nemesis dimensions:
// partitions over a node set, one optional gray link, and clock skew on
// named clock targets.
type NemesisConfig struct {
	ScheduleConfig

	// Nodes are the netsim node names partitions and gray links draw from.
	Nodes []string
	// PartitionTargets name registered targets whose Partition/Heal actions
	// model the cut at the platform level. When Nodes has fewer than two
	// entries, partition windows isolate one random target each instead of
	// blocking link sets — the form platforms without an RPC-fronted data
	// path (BigTable) use.
	PartitionTargets []string
	// PartitionMTBF is the mean time between partition windows (exponential);
	// zero disables partition generation. PartitionMTTR is the mean window
	// duration, floored at the same minimum repair time as crashes.
	PartitionMTBF time.Duration
	PartitionMTTR time.Duration

	// GrayProb is the chance of one asymmetric gray-link window over the
	// horizon, with GrayExtra per-message delay and GrayDrop loss.
	GrayProb  float64
	GrayExtra time.Duration
	GrayDrop  float64

	// ClockTargets name the registered targets whose clocks may skew;
	// ClockSkewProb is the per-target chance of one skew window, with offset
	// uniform in [-ClockSkewMax, ClockSkewMax] and drift uniform in
	// [-ClockDriftMax, ClockDriftMax].
	ClockTargets  []string
	ClockSkewProb float64
	ClockSkewMax  time.Duration
	ClockDriftMax float64
}

// GenerateNemesisSchedule interleaves partition, gray-link and clock-skew
// windows with the crash/straggler/brownout schedule GenerateSchedule draws
// for the same config. Every Partition is paired with exactly one Heal over
// the same links, strictly later than its open (windows are floored at the
// minimum repair time and the horizon exceeds every open instant). The
// nemesis draws fork from an independent root, so enabling them never
// perturbs the crash schedule for a given seed, and equal configs replay
// byte-identically.
func GenerateNemesisSchedule(targets []string, cfg NemesisConfig) []Event {
	evs := GenerateSchedule(targets, cfg.ScheduleConfig)
	if cfg.Horizon <= 0 {
		return evs
	}
	root := stats.NewRNG(cfg.Seed ^ 0x4e454d45) // "NEME"

	// Partition windows: exponential arrivals like crashes, each picking a
	// topology and a shuffled node split (or, without a node set, isolating
	// one target through its platform-level Partition/Heal actions).
	prng := root.Fork()
	if cfg.PartitionMTBF > 0 && (len(cfg.Nodes) >= 2 || len(cfg.PartitionTargets) > 0) {
		mttr := cfg.PartitionMTTR
		if mttr < minRepair {
			mttr = minRepair
		}
		at := time.Duration(prng.Exp(float64(cfg.PartitionMTBF)))
		for at < cfg.Horizon {
			repair := time.Duration(prng.Exp(float64(mttr)))
			if repair < minRepair {
				repair = minRepair
			}
			end := at + repair
			if end > cfg.Horizon {
				end = cfg.Horizon
			}
			if len(cfg.Nodes) >= 2 {
				evs = append(evs, drawPartition(prng, cfg.Nodes, at, end-at).Events...)
			} else {
				target := cfg.PartitionTargets[prng.Intn(len(cfg.PartitionTargets))]
				evs = append(evs, TargetPartitionScenario(target, at, end-at).Events...)
			}
			at = end + time.Duration(prng.Exp(float64(cfg.PartitionMTBF)))
		}
	}

	// One optional gray-link window on a random directed pair.
	grng := root.Fork()
	if cfg.GrayProb > 0 && len(cfg.Nodes) >= 2 && grng.Bool(cfg.GrayProb) {
		i := grng.Intn(len(cfg.Nodes))
		j := grng.Intn(len(cfg.Nodes) - 1)
		if j >= i {
			j++
		}
		start := time.Duration(grng.Float64() * float64(cfg.Horizon) * 0.5)
		dur := time.Duration(grng.Float64() * float64(cfg.Horizon) * 0.25)
		if dur < minRepair {
			dur = minRepair
		}
		if start+dur > cfg.Horizon {
			dur = cfg.Horizon - start
		}
		evs = append(evs, GrayLinkScenario(cfg.Nodes[i], cfg.Nodes[j], cfg.GrayExtra, cfg.GrayDrop, start, dur).Events...)
	}

	// Per-target clock-skew windows, each on its own forked stream so adding
	// clock targets does not shift earlier targets' draws.
	crng := root.Fork()
	if cfg.ClockSkewProb > 0 {
		for _, name := range cfg.ClockTargets {
			trng := crng.Fork()
			if !trng.Bool(cfg.ClockSkewProb) {
				continue
			}
			offset := time.Duration((2*trng.Float64() - 1) * float64(cfg.ClockSkewMax))
			drift := (2*trng.Float64() - 1) * cfg.ClockDriftMax
			start := time.Duration(trng.Float64() * float64(cfg.Horizon) * 0.5)
			dur := time.Duration(trng.Float64() * float64(cfg.Horizon) * 0.25)
			if dur < minRepair {
				dur = minRepair
			}
			if start+dur > cfg.Horizon {
				dur = cfg.Horizon - start
			}
			evs = append(evs, ClockSkewScenario(name, offset, drift, start, dur).Events...)
		}
	}

	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Target < evs[j].Target
	})
	return evs
}

// drawPartition picks a partition topology and node split from the stream.
// Splits and rings need at least 2 and 4 nodes respectively; smaller fleets
// fall back to a split-brain.
func drawPartition(rng *stats.RNG, nodes []string, at, dur time.Duration) Scenario {
	shuffled := append([]string(nil), nodes...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	topo := rng.Intn(3)
	switch {
	case topo == 1 && len(shuffled) >= 4:
		return RingPartition(shuffled, at, dur)
	case topo == 2 && len(shuffled) >= 3:
		// One bridge node; the rest split as evenly as the shuffle fell.
		rest := shuffled[1:]
		return BridgePartition(rest[:len(rest)/2], rest[len(rest)/2:], shuffled[:1], at, dur)
	default:
		k := 1 + rng.Intn((len(shuffled)+1)/2) // minority of up to half the fleet
		if k >= len(shuffled) {
			k = len(shuffled) - 1
		}
		return SplitBrain(shuffled[:k], shuffled[k:], at, dur)
	}
}
