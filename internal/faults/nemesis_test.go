package faults

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

func nemesisConfig(seed uint64) NemesisConfig {
	return NemesisConfig{
		ScheduleConfig: ScheduleConfig{
			Horizon: 2 * time.Second,
			MTBF:    150 * time.Millisecond,
			MTTR:    20 * time.Millisecond,
			Seed:    seed,
		},
		Nodes:         []string{"n0", "n1", "n2", "n3", "n4"},
		PartitionMTBF: 200 * time.Millisecond,
		PartitionMTTR: 60 * time.Millisecond,
		GrayProb:      0.7,
		GrayExtra:     300 * time.Microsecond,
		GrayDrop:      0.05,
		ClockTargets:  []string{"clk0", "clk1"},
		ClockSkewProb: 0.7,
		ClockSkewMax:  2 * time.Millisecond,
		ClockDriftMax: 1e-4,
	}
}

// linkSetEqual compares two link sets as multisets.
func linkSetEqual(a, b []Link) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Link(nil), a...)
	bs := append([]Link(nil), b...)
	less := func(s []Link) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].From != s[j].From {
				return s[i].From < s[j].From
			}
			return s[i].To < s[j].To
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	return reflect.DeepEqual(as, bs)
}

// TestNemesisPartitionWindowsPairExactly: every Partition (and GrayLink)
// opens exactly one window that exactly one matching Heal — same target
// label, same link set — closes strictly later. A heal at the opening
// instant would erase the fault before any message crossed it.
func TestNemesisPartitionWindowsPairExactly(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := nemesisConfig(seed)
		evs := GenerateNemesisSchedule([]string{"a", "b", "c"}, cfg)
		type openWin struct {
			at    time.Duration
			links []Link
		}
		open := map[string]*openWin{}
		partitions, heals := 0, 0
		for _, ev := range evs {
			switch ev.Kind {
			case Partition, GrayLink:
				partitions++
				if open[ev.Target] != nil {
					t.Fatalf("seed %d: %s window at %v opened while one from %v is still open",
						seed, ev.Target, ev.At, open[ev.Target].at)
				}
				open[ev.Target] = &openWin{at: ev.At, links: ev.Links}
			case Heal:
				heals++
				w := open[ev.Target]
				if w == nil {
					t.Fatalf("seed %d: heal of %s at %v with no open window", seed, ev.Target, ev.At)
				}
				if ev.At <= w.at {
					t.Fatalf("seed %d: %s healed at %v, not strictly after its open at %v",
						seed, ev.Target, ev.At, w.at)
				}
				if !linkSetEqual(ev.Links, w.links) {
					t.Fatalf("seed %d: heal of %s covers %d links, window opened with %d",
						seed, ev.Target, len(ev.Links), len(w.links))
				}
				open[ev.Target] = nil
			}
		}
		for name, w := range open {
			if w != nil {
				t.Fatalf("seed %d: %s window opened at %v never heals", seed, name, w.at)
			}
		}
		if partitions == 0 || partitions != heals {
			t.Fatalf("seed %d: %d partition/gray opens vs %d heals", seed, partitions, heals)
		}
	}
}

// TestNemesisTargetPartitionsPair: with no node set, partition windows
// isolate one registered target each through link-less Partition/Heal pairs.
func TestNemesisTargetPartitionsPair(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := nemesisConfig(seed)
		cfg.Nodes = nil
		cfg.GrayProb = 0
		cfg.PartitionTargets = []string{"ts0", "ts2", "ts4"}
		valid := map[string]bool{"ts0": true, "ts2": true, "ts4": true}
		evs := GenerateNemesisSchedule(nil, cfg)
		open := map[string]time.Duration{}
		found := false
		for _, ev := range evs {
			switch ev.Kind {
			case Partition:
				found = true
				if len(ev.Links) != 0 {
					t.Fatalf("seed %d: target-scoped partition carries %d links", seed, len(ev.Links))
				}
				if !valid[ev.Target] {
					t.Fatalf("seed %d: partition of unknown target %q", seed, ev.Target)
				}
				if _, ok := open[ev.Target]; ok {
					t.Fatalf("seed %d: target %s partitioned twice without heal", seed, ev.Target)
				}
				open[ev.Target] = ev.At
			case Heal:
				at, ok := open[ev.Target]
				if !ok {
					t.Fatalf("seed %d: heal of %s with no open partition", seed, ev.Target)
				}
				if ev.At <= at {
					t.Fatalf("seed %d: heal of %s at %v not after open at %v", seed, ev.Target, ev.At, at)
				}
				delete(open, ev.Target)
			}
		}
		if !found {
			t.Fatalf("seed %d: no target-scoped partitions generated", seed)
		}
		if len(open) != 0 {
			t.Fatalf("seed %d: %d partitions never heal", seed, len(open))
		}
	}
}

// TestNemesisScheduleDeterministic: equal configs generate byte-identical
// schedules; different seeds diverge.
func TestNemesisScheduleDeterministic(t *testing.T) {
	targets := []string{"a", "b", "c"}
	a := GenerateNemesisSchedule(targets, nemesisConfig(7))
	b := GenerateNemesisSchedule(targets, nemesisConfig(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed generated different schedules (%d vs %d events)", len(a), len(b))
	}
	c := GenerateNemesisSchedule(targets, nemesisConfig(8))
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds generated identical schedules")
	}
}

// TestNemesisDoesNotPerturbCrashSchedule: the nemesis draws fork from an
// independent root, so the crash/straggler/brownout subset of a nemesis
// schedule is exactly the schedule GenerateSchedule draws for the same
// config — enabling partitions must not reshuffle the crashes.
func TestNemesisDoesNotPerturbCrashSchedule(t *testing.T) {
	targets := []string{"a", "b", "c"}
	sortEvs := func(evs []Event) {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].At != evs[j].At {
				return evs[i].At < evs[j].At
			}
			if evs[i].Target != evs[j].Target {
				return evs[i].Target < evs[j].Target
			}
			return evs[i].Kind < evs[j].Kind
		})
	}
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := nemesisConfig(seed)
		base := GenerateSchedule(targets, cfg.ScheduleConfig)
		var filtered []Event
		for _, ev := range GenerateNemesisSchedule(targets, cfg) {
			switch ev.Kind {
			case Crash, Recover, Straggler, NetDegrade, NetRestore:
				filtered = append(filtered, ev)
			}
		}
		sortEvs(base)
		sortEvs(filtered)
		if !reflect.DeepEqual(base, filtered) {
			t.Fatalf("seed %d: crash subset of nemesis schedule (%d events) differs from base schedule (%d events)",
				seed, len(filtered), len(base))
		}
	}
}

// TestNemesisEventsStayInsideHorizon: no nemesis event may leak past the
// horizon — runs must end with links healed and clocks clean.
func TestNemesisEventsStayInsideHorizon(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := nemesisConfig(seed)
		for _, ev := range GenerateNemesisSchedule([]string{"a", "b"}, cfg) {
			if ev.At < 0 || ev.At > cfg.Horizon {
				t.Fatalf("seed %d: event %v %s at %v outside [0, %v]", seed, ev.Kind, ev.Target, ev.At, cfg.Horizon)
			}
		}
	}
}

// TestSkippedUnknownTargetCounted: events naming an unregistered target —
// or a link with an unknown endpoint — must be counted and logged, not lost
// invisibly.
func TestSkippedUnknownTargetCounted(t *testing.T) {
	k := sim.New()
	e := NewEngine(k)
	e.Register("known", Actions{Crash: func() {}})
	known := map[string]bool{"known": true}
	e.RegisterLinkPlane(LinkPlane{
		Block: func(from, to string) bool { return known[from] && known[to] },
		Heal:  func(from, to string) bool { return known[from] && known[to] },
	})
	e.InjectAll([]Event{
		{At: time.Millisecond, Kind: Crash, Target: "known"},
		{At: 2 * time.Millisecond, Kind: Crash, Target: "mispelled"},
		{At: 3 * time.Millisecond, Kind: Partition, Links: []Link{{From: "known", To: "ghost"}}},
		// A target that exists but lacks the action is an ordinary skip, not
		// an unknown target.
		{At: 4 * time.Millisecond, Kind: Recover, Target: "known"},
	})
	k.Run()
	if len(e.Applied) != 1 {
		t.Fatalf("Applied = %d, want 1", len(e.Applied))
	}
	if e.Skipped != 3 {
		t.Fatalf("Skipped = %d, want 3", e.Skipped)
	}
	if e.SkippedUnknownTarget != 2 {
		t.Fatalf("SkippedUnknownTarget = %d, want 2", e.SkippedUnknownTarget)
	}
}
