package faults

import (
	"testing"
	"time"

	"hyperprof/internal/netsim"
	"hyperprof/internal/sim"
)

// window pairs one open event (Crash or Straggler start) with its close.
type window struct {
	kind       Kind
	start, end time.Duration
}

// targetWindows reconstructs the per-target fault windows from a schedule,
// failing the test on any unpaired or mis-ordered event.
func targetWindows(t *testing.T, evs []Event) map[string][]window {
	t.Helper()
	open := map[string]*window{}
	out := map[string][]window{}
	for _, ev := range evs {
		switch {
		case ev.Kind == Crash || (ev.Kind == Straggler && ev.Factor > 1):
			if open[ev.Target] != nil {
				t.Fatalf("target %s: window opened at %v while one from %v is still open",
					ev.Target, ev.At, open[ev.Target].start)
			}
			open[ev.Target] = &window{kind: ev.Kind, start: ev.At}
		case ev.Kind == Recover || (ev.Kind == Straggler && ev.Factor <= 1):
			w := open[ev.Target]
			if w == nil {
				t.Fatalf("target %s: close event at %v with no open window", ev.Target, ev.At)
			}
			if ev.Kind == Recover && w.kind != Crash || ev.Kind == Straggler && w.kind != Straggler {
				t.Fatalf("target %s: %v close at %v does not match open %v window", ev.Target, ev.Kind, ev.At, w.kind)
			}
			w.end = ev.At
			out[ev.Target] = append(out[ev.Target], *w)
			open[ev.Target] = nil
		}
	}
	for name, w := range open {
		if w != nil {
			t.Fatalf("target %s: window opened at %v never closes", name, w.start)
		}
	}
	return out
}

func edgeConfig(seed uint64) ScheduleConfig {
	return ScheduleConfig{
		Horizon: 2 * time.Second,
		MTBF:    80 * time.Millisecond,
		Seed:    seed,
	}
}

// TestZeroDurationStragglerWindowsImpossible: even with MTTR forced to zero,
// straggler windows must keep strictly positive duration — a zero-length
// window would clear the slowdown in the same instant it is set, silently
// erasing the fault.
func TestZeroDurationStragglerWindowsImpossible(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := edgeConfig(seed)
		cfg.MTTR = 0
		cfg.StragglerProb = 1
		cfg.StragglerFactor = 8
		evs := GenerateSchedule([]string{"s0", "s1", "s2"}, cfg)
		for _, ws := range targetWindows(t, evs) {
			for _, w := range ws {
				if w.end <= w.start {
					t.Fatalf("seed %d: straggler window [%v, %v] has non-positive duration", seed, w.start, w.end)
				}
			}
		}
	}
}

// TestCrashRecoverPairsNeverCoincide: a crash and its recovery must never
// land on the same timestamp, even with zero MTTR — an identical-instant pair
// would make the outcome depend on event ordering at one virtual instant.
func TestCrashRecoverPairsNeverCoincide(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := edgeConfig(seed)
		cfg.MTTR = 0
		evs := GenerateSchedule([]string{"a", "b"}, cfg)
		found := false
		for _, ws := range targetWindows(t, evs) {
			for _, w := range ws {
				found = true
				if w.kind != Crash {
					t.Fatalf("seed %d: unexpected %v window with StragglerProb 0", seed, w.kind)
				}
				if w.end == w.start {
					t.Fatalf("seed %d: crash/recover pair coincides at %v", seed, w.start)
				}
				if w.end-w.start < minRepair && w.end != cfg.Horizon {
					t.Fatalf("seed %d: repair %v below the %v floor", seed, w.end-w.start, minRepair)
				}
			}
		}
		if !found {
			t.Fatalf("seed %d: no windows generated", seed)
		}
	}
}

// TestPerTargetWindowsNeverOverlap: a target must be fully repaired before
// its next fault opens; overlapping windows would crash an already-crashed
// server or stack straggler factors.
func TestPerTargetWindowsNeverOverlap(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := edgeConfig(seed)
		cfg.MTTR = 60 * time.Millisecond // long repairs, frequent arrivals
		cfg.StragglerProb = 0.5
		cfg.StragglerFactor = 8
		evs := GenerateSchedule([]string{"x", "y", "z"}, cfg)
		for name, ws := range targetWindows(t, evs) {
			for i := 1; i < len(ws); i++ {
				if ws[i].start < ws[i-1].end {
					t.Fatalf("seed %d target %s: window %d [%v, %v] overlaps previous ending %v",
						seed, name, i, ws[i].start, ws[i].end, ws[i-1].end)
				}
			}
		}
	}
}

// TestWindowsClampToHorizon: every event lies inside [0, Horizon], so a run
// always ends with the fleet healthy and no fault leaks past the
// measurement window.
func TestWindowsClampToHorizon(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := edgeConfig(seed)
		cfg.MTTR = 500 * time.Millisecond // repairs frequently cross the horizon
		evs := GenerateSchedule([]string{"a", "b"}, cfg)
		for _, ev := range evs {
			if ev.At < 0 || ev.At > cfg.Horizon {
				t.Fatalf("seed %d: event at %v outside [0, %v]", seed, ev.At, cfg.Horizon)
			}
		}
	}
}

// TestOverlappingBrownoutsReplaceNotStack: two NetDegrade windows overlapping
// on one network must replace each other's parameters, not accumulate, and a
// single restore returns the network to healthy.
func TestOverlappingBrownoutsReplaceNotStack(t *testing.T) {
	k := sim.New()
	net := netsim.New(k, netsim.DefaultConfig())
	e := NewEngine(k)
	e.RegisterNetwork(func(extra time.Duration, drop float64) { net.Degrade(extra, drop, 99) }, net.Restore)
	a, b := net.NewNode("a", 0, 0, 1), net.NewNode("b", 0, 1, 1)
	base := net.TransferTime(a, b, 0)
	var during, after time.Duration
	e.InjectAll([]Event{
		{At: 10 * time.Millisecond, Kind: NetDegrade, Extra: 5 * time.Millisecond, Factor: 0},
		// The second brown-out opens before the first closes: it replaces the
		// 5ms surcharge with 1ms rather than stacking to 6ms.
		{At: 20 * time.Millisecond, Kind: NetDegrade, Extra: time.Millisecond, Factor: 0},
		{At: 40 * time.Millisecond, Kind: NetRestore},
	})
	k.Schedule(30*time.Millisecond, func() { during = net.TransferTime(a, b, 0) + net.ExtraDelay() })
	k.Schedule(50*time.Millisecond, func() { after = net.TransferTime(a, b, 0) + net.ExtraDelay() })
	k.Run()
	if want := base + time.Millisecond; during != want {
		t.Fatalf("delay during overlapping brown-outs = %v, want replaced %v (not stacked %v)",
			during, want, base+6*time.Millisecond)
	}
	if after != base {
		t.Fatalf("delay after restore = %v, want %v", after, base)
	}
	if len(e.Applied) != 3 {
		t.Fatalf("Applied = %d, want 3", len(e.Applied))
	}
}
