package faults

import (
	"reflect"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// recorder is a fake injectable target that logs what happened to it and when.
type recorder struct {
	k   *sim.Kernel
	log []string
}

func (r *recorder) actions(name string) Actions {
	return Actions{
		Crash:   func() { r.log = append(r.log, name+" crash @"+r.k.Now().String()) },
		Recover: func() { r.log = append(r.log, name+" recover @"+r.k.Now().String()) },
		SetSlowdown: func(f float64) {
			r.log = append(r.log, name+" slow @"+r.k.Now().String())
			_ = f
		},
	}
}

func TestEngineAppliesEventsAtScheduledTimes(t *testing.T) {
	k := sim.New()
	rec := &recorder{k: k}
	e := NewEngine(k)
	e.Register("node-0", rec.actions("node-0"))
	e.InjectAll([]Event{
		{At: 10 * time.Millisecond, Kind: Crash, Target: "node-0"},
		{At: 30 * time.Millisecond, Kind: Recover, Target: "node-0"},
		{At: 50 * time.Millisecond, Kind: Straggler, Target: "node-0", Factor: 3},
	})
	k.Run()

	want := []string{
		"node-0 crash @10ms",
		"node-0 recover @30ms",
		"node-0 slow @50ms",
	}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if len(e.Applied) != 3 {
		t.Fatalf("Applied = %d events, want 3", len(e.Applied))
	}
	if e.Applied[0].At != 10*time.Millisecond || e.Applied[0].Kind != Crash {
		t.Fatalf("Applied[0] = %+v", e.Applied[0])
	}
}

func TestEngineSkipsUnknownTargetsAndMissingActions(t *testing.T) {
	k := sim.New()
	e := NewEngine(k)
	e.Register("limited", Actions{Crash: func() {}}) // no Recover
	e.InjectAll([]Event{
		{At: time.Millisecond, Kind: Crash, Target: "nope"},
		{At: 2 * time.Millisecond, Kind: Recover, Target: "limited"},
		{At: 3 * time.Millisecond, Kind: NetDegrade}, // no network registered
		{At: 4 * time.Millisecond, Kind: Crash, Target: "limited"},
	})
	k.Run()
	if e.Skipped != 3 {
		t.Fatalf("Skipped = %d, want 3", e.Skipped)
	}
	if len(e.Applied) != 1 {
		t.Fatalf("Applied = %v, want just the limited crash", e.Applied)
	}
}

func TestEngineNetworkHooks(t *testing.T) {
	k := sim.New()
	e := NewEngine(k)
	var degraded, restored bool
	e.RegisterNetwork(
		func(extra time.Duration, drop float64) {
			degraded = true
			if extra != 5*time.Millisecond || drop != 0.25 {
				t.Errorf("degrade(%v, %v)", extra, drop)
			}
		},
		func() { restored = true },
	)
	e.Inject(Event{At: time.Millisecond, Kind: NetDegrade, Factor: 0.25, Extra: 5 * time.Millisecond})
	e.Inject(Event{At: 2 * time.Millisecond, Kind: NetRestore})
	k.Run()
	if !degraded || !restored {
		t.Fatalf("degraded=%v restored=%v, want both", degraded, restored)
	}
}

func TestScenarioStats(t *testing.T) {
	k := sim.New()
	rec := &recorder{k: k}
	e := NewEngine(k)
	e.Register("a", rec.actions("a"))
	st := e.RunScenario(Scenario{
		Name: "bounce",
		Events: []Event{
			{At: time.Millisecond, Kind: Crash, Target: "a"},
			{At: 2 * time.Millisecond, Kind: Recover, Target: "a"},
			{At: 3 * time.Millisecond, Kind: Crash, Target: "ghost"},
		},
	})
	k.Run()
	if st.Scheduled != 3 || len(st.Applied) != 2 {
		t.Fatalf("scheduled=%d applied=%d, want 3/2", st.Scheduled, len(st.Applied))
	}
	if st.ByKind[Crash] != 1 || st.ByKind[Recover] != 1 {
		t.Fatalf("ByKind = %v", st.ByKind)
	}
	if st.ByLabel["crash a"] != 1 || st.ByLabel["recover a"] != 1 {
		t.Fatalf("ByLabel = %v", st.ByLabel)
	}
	want := `scenario "bounce": 3 scheduled, 2 applied, 1 crash, 1 recover; crash a x1; recover a x1`
	if got := st.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGenerateScheduleDeterministicAndPaired(t *testing.T) {
	cfg := ScheduleConfig{
		Horizon:        10 * time.Second,
		MTBF:           2 * time.Second,
		MTTR:           300 * time.Millisecond,
		NetDegradeProb: 1,
		NetExtraDelay:  time.Millisecond,
		NetDropProb:    0.1,
		Seed:           42,
	}
	targets := []string{"n0", "n1", "n2"}
	a := GenerateSchedule(targets, cfg)
	b := GenerateSchedule(targets, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("expected some events over a 10s horizon with 2s MTBF")
	}
	// Every crash must have a later recovery for the same target, and all
	// events must be inside the horizon and time-sorted.
	open := map[string]int{}
	last := time.Duration(-1)
	for _, ev := range a {
		if ev.At < 0 || ev.At > cfg.Horizon {
			t.Fatalf("event outside horizon: %+v", ev)
		}
		if ev.At < last {
			t.Fatalf("events not sorted: %v after %v", ev.At, last)
		}
		last = ev.At
		switch ev.Kind {
		case Crash:
			open[ev.Target]++
		case Recover:
			open[ev.Target]--
			if open[ev.Target] < 0 {
				t.Fatalf("recover before crash for %s", ev.Target)
			}
		}
	}
	for name, n := range open {
		if n != 0 {
			t.Fatalf("%s left crashed at end of schedule (%d unpaired)", name, n)
		}
	}

	// Different seed, different schedule.
	cfg2 := cfg
	cfg2.Seed = 43
	if reflect.DeepEqual(a, GenerateSchedule(targets, cfg2)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateSchedulePrefixStableAcrossTargetAdditions(t *testing.T) {
	cfg := ScheduleConfig{Horizon: 10 * time.Second, MTBF: 2 * time.Second, MTTR: 200 * time.Millisecond, Seed: 7}
	two := GenerateSchedule([]string{"n0", "n1"}, cfg)
	three := GenerateSchedule([]string{"n0", "n1", "n2"}, cfg)
	filter := func(evs []Event, names ...string) []Event {
		keep := map[string]bool{}
		for _, n := range names {
			keep[n] = true
		}
		var out []Event
		for _, ev := range evs {
			if keep[ev.Target] {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(two, "n0", "n1"), filter(three, "n0", "n1")) {
		t.Fatal("adding a target changed existing targets' fault draws")
	}
}
