package faults

// Canned overload scenarios. Each is a deterministic event schedule against
// named targets; the overload study pairs them with open-loop workloads to
// reproduce the three canonical overload shapes: a flash crowd (one tenant's
// offered load surges), a brownout (capacity quietly shrinks while load holds),
// and a retry storm (a transient brownout whose retry amplification outlives
// the trigger — the metastable failure).

import "time"

// FlashCrowd surges the named tenant's offered load by mult over [at, at+dur).
func FlashCrowd(tenant string, at, dur time.Duration, mult float64) Scenario {
	return Scenario{
		Name: "flash-crowd",
		Events: []Event{
			{At: at, Kind: RateSurge, Target: tenant, Factor: mult},
			{At: at + dur, Kind: RateSurge, Target: tenant, Factor: 1},
		},
	}
}

// Brownout multiplies the named servers' service times by factor over
// [at, at+dur) — capacity shrinks while offered load holds.
func Brownout(servers []string, at, dur time.Duration, factor float64) Scenario {
	s := Scenario{Name: "brownout"}
	for _, srv := range servers {
		s.Events = append(s.Events,
			Event{At: at, Kind: Straggler, Target: srv, Factor: factor},
			Event{At: at + dur, Kind: Straggler, Target: srv, Factor: 1},
		)
	}
	return s
}

// RetryStorm is the metastability trigger: a brownout on the named servers
// compounded by a flash crowd on one tenant. Whether the system recovers
// after both clear depends entirely on the overload control plane — with
// naive eager retries the amplified load keeps the queues saturated forever.
func RetryStorm(servers []string, tenant string, at, dur time.Duration, slowFactor, rateMult float64) Scenario {
	s := Brownout(servers, at, dur, slowFactor)
	s.Name = "retry-storm"
	if tenant != "" {
		s.Events = append(s.Events,
			Event{At: at, Kind: RateSurge, Target: tenant, Factor: rateMult},
			Event{At: at + dur, Kind: RateSurge, Target: tenant, Factor: 1},
		)
	}
	return s
}
