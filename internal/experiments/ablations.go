package experiments

import (
	"fmt"
	"time"

	"hyperprof/internal/model"
	"hyperprof/internal/sim"
	"hyperprof/internal/soc"
	"hyperprof/internal/stats"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file implements the ablation studies DESIGN.md calls out for the
// repository's own design choices.

// OverlapPrecedenceAblation compares the paper's remote>IO>CPU overlap
// precedence (§4.1) against a CPU-first precedence on the same traces,
// returning each rule's overall CPU fraction. It quantifies how much of the
// reported CPU share is an artifact of the categorization rule.
func OverlapPrecedenceAblation(ch *Characterization, p taxonomy.Platform) (paperCPU, cpuFirstCPU float64) {
	n := 0
	for _, t := range ch.Traces[p] {
		def := t.ComputeBreakdown()
		alt := t.BreakdownWithPrecedence([3]trace.Class{trace.CPU, trace.IO, trace.Remote})
		paperCPU += def.Frac(trace.CPU)
		cpuFirstCPU += alt.Frac(trace.CPU)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return paperCPU / float64(n), cpuFirstCPU / float64(n)
}

// ChainImbalancePoint is one imbalance ratio's outcome.
type ChainImbalancePoint struct {
	// Ratio is the accelerated-time ratio between the chain's slowest and
	// fastest component.
	Ratio float64
	// ChainedVsAsync is chained e2e divided by ideal-async e2e (1.0 means
	// chaining matches full asynchrony, the paper's <1% claim).
	ChainedVsAsync float64
}

// ChainImbalanceAblation sweeps how unbalanced the accelerator chain is and
// reports chained-vs-async degradation: balanced chains match asynchrony;
// one dominant component makes chaining no better than the bottleneck.
func ChainImbalanceAblation(ratios []float64) []ChainImbalancePoint {
	var out []ChainImbalancePoint
	for _, r := range ratios {
		sys := model.System{
			CPUTime: 1.0,
			Components: []model.Component{
				{Name: "fast", Time: 0.3, Accelerated: true, Speedup: 8 * r, Sync: 1},
				{Name: "slow", Time: 0.3, Accelerated: true, Speedup: 8, Sync: 1},
			},
		}
		chained := sys.Configure(model.ChainedOnChip, nil).AcceleratedE2E()
		async := sys.Configure(model.AsyncOnChip, nil).AcceleratedE2E()
		pt := ChainImbalancePoint{Ratio: r}
		if async > 0 {
			pt.ChainedVsAsync = chained / async
		}
		out = append(out, pt)
	}
	return out
}

// PayloadSweepPoint is one payload size's on-chip vs off-chip outcome.
type PayloadSweepPoint struct {
	Bytes   float64
	OnChip  float64
	OffChip float64
}

// PayloadSweepAblation sweeps offload payload size for a fixed system,
// showing the crossover where off-chip acceleration turns into a slowdown
// (the §6.3.2 BigQuery effect).
func PayloadSweepAblation(sys model.System, sizes []float64) []PayloadSweepPoint {
	var out []PayloadSweepPoint
	accel := sys.WithUniformSpeedup(Fig13Speedup)
	for _, b := range sizes {
		offBytes := map[string]float64{}
		for _, c := range accel.Components {
			offBytes[c.Name] = b
		}
		out = append(out, PayloadSweepPoint{
			Bytes:   b,
			OnChip:  accel.Configure(model.SyncOnChip, nil).Speedup(),
			OffChip: accel.Configure(model.SyncOffChip, offBytes).Speedup(),
		})
	}
	return out
}

// VariedSpeedupResult compares lockstep acceleration against varied
// per-component speedups with the same geometric mean (§6.4 notes the
// lockstep assumption as a limitation).
type VariedSpeedupResult struct {
	Lockstep float64
	Varied   float64
}

// VariedSpeedupAblation evaluates a derived system under a uniform 8x
// speedup versus alternating 4x/16x speedups (same geometric mean).
func VariedSpeedupAblation(sys model.System) VariedSpeedupResult {
	lock := sys.Configure(model.SyncOnChip, nil).WithUniformSpeedup(8)
	varied := sys.Configure(model.SyncOnChip, nil).Clone()
	for i := range varied.Components {
		if !varied.Components[i].Accelerated {
			continue
		}
		if i%2 == 0 {
			varied.Components[i].Speedup = 4
		} else {
			varied.Components[i].Speedup = 16
		}
	}
	return VariedSpeedupResult{Lockstep: lock.Speedup(), Varied: varied.Speedup()}
}

// SamplingRateAblation re-runs Figure 2 aggregation at several trace
// sampling rates and reports the overall CPU fraction per rate, quantifying
// the fidelity of 1/N sampling (the paper samples 1/1000).
func SamplingRateAblation(ch *Characterization, p taxonomy.Platform, rates []int) map[int]float64 {
	out := map[int]float64{}
	traces := ch.Traces[p]
	for _, rate := range rates {
		if rate < 1 {
			rate = 1
		}
		var cpu float64
		n := 0
		for i, t := range traces {
			if i%rate != 0 {
				continue
			}
			cpu += t.ComputeBreakdown().Frac(trace.CPU)
			n++
		}
		if n > 0 {
			out[rate] = cpu / float64(n)
		}
	}
	return out
}

// ChainHandoffAblation sweeps the software chain's per-element handoff cost
// on the SoC and reports measured chained time per cost, showing when
// shared-memory-style synchronization erases chaining's benefit.
func ChainHandoffAblation(seed uint64, n int, handoffs []time.Duration) (map[time.Duration]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: corpus size must be positive")
	}
	out := map[time.Duration]time.Duration{}
	for _, h := range handoffs {
		cfg := soc.DefaultConfig()
		cfg.HandoffOverhead = h
		k := sim.New()
		s := soc.New(k, cfg)
		ch := s.MeasureChained(soc.Corpus(seed, n))
		out[h] = ch.E2E
	}
	return out, nil
}

// TieringPolicyResult compares RAM cache policies under one access stream.
type TieringPolicyResult struct {
	// RAMHitRatio per policy name ("LRU", "TinyLFU").
	RAMHitRatio map[string]float64
	// PointReadMean is the modeled mean access time of the Zipf point
	// reads per policy (seconds); the scan pollution is excluded since it
	// misses to disk under any policy.
	PointReadMean map[string]float64
}

// TieringPolicyAblation explores §3's learned-data-placement direction: the
// same Zipf-skewed point-read stream with periodic scan pollution replayed
// against a plain-LRU tiered store and a TinyLFU-admission store. Frequency
// admission protects the hot head from scans, lifting RAM hits and cutting
// mean access time.
func TieringPolicyAblation(seed uint64, accesses int) (*TieringPolicyResult, error) {
	if accesses <= 0 {
		return nil, fmt.Errorf("experiments: accesses must be positive")
	}
	const (
		objects  = 4000
		objBytes = 4096
	)
	// SSD holds the full working set so the comparison isolates the RAM
	// policy: the margin is RAM-vs-SSD latency, not disk-miss noise from
	// cross-tier eviction interactions.
	caps := storage.Capacities{
		storage.RAM: objects * objBytes / 50, // RAM holds ~2% of objects
		storage.SSD: 2 * objects * objBytes,
		storage.HDD: 4 * objects * objBytes,
	}
	res := &TieringPolicyResult{RAMHitRatio: map[string]float64{}, PointReadMean: map[string]float64{}}
	for name, policy := range map[string]storage.Policy{
		"LRU": storage.LRUPolicy, "TinyLFU": storage.TinyLFUPolicy,
	} {
		st, err := storage.NewTieredStoreWithPolicy(caps, nil, policy)
		if err != nil {
			return nil, err
		}
		for i := 0; i < objects; i++ {
			if _, err := st.Write(fmt.Sprintf("obj-%d", i), objBytes); err != nil {
				return nil, err
			}
		}
		rng := stats.NewRNG(seed)
		zipf := stats.NewZipf(rng, objects, 1.2)
		var pointTime float64
		ramHits, points := 0, 0
		for i := 0; i < accesses; i++ {
			point := i%4 != 3
			var key string
			if point {
				key = fmt.Sprintf("obj-%d", zipf.Next())
				points++
			} else {
				key = fmt.Sprintf("obj-%d", i%objects) // sequential scan pollution
			}
			d, tier, err := st.Read(key)
			if err != nil {
				return nil, err
			}
			if point {
				pointTime += d.Seconds()
				if tier == storage.RAM {
					ramHits++
				}
			}
		}
		res.RAMHitRatio[name] = float64(ramHits) / float64(points)
		res.PointReadMean[name] = pointTime / float64(points)
	}
	return res, nil
}
