package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"hyperprof/internal/taxonomy"
)

func TestPartialSyncSweep(t *testing.T) {
	ch := testChar(t)
	sys, err := ch.DeriveSystem(taxonomy.Spanner)
	if err != nil {
		t.Fatal(err)
	}
	gs := []float64{1, 0.75, 0.5, 0.25, 0}
	pts := PartialSyncSweep(sys, gs)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Speedup increases monotonically as synchronization relaxes (g falls).
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup < pts[i-1].Speedup-1e-9 {
			t.Fatalf("not monotone: g=%v %.4f -> g=%v %.4f",
				pts[i-1].G, pts[i-1].Speedup, pts[i].G, pts[i].Speedup)
		}
	}
	// Endpoints match the Figure 13 sync/async configurations.
	syncRef := sys.WithUniformSpeedup(Fig13Speedup).Configure(1, nil).Speedup()  // SyncOnChip
	asyncRef := sys.WithUniformSpeedup(Fig13Speedup).Configure(2, nil).Speedup() // AsyncOnChip
	if diff := pts[0].Speedup - syncRef; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("g=1 speedup %.6f != sync config %.6f", pts[0].Speedup, syncRef)
	}
	if diff := pts[4].Speedup - asyncRef; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("g=0 speedup %.6f != async config %.6f", pts[4].Speedup, asyncRef)
	}
}

func TestMixedPlacementStudy(t *testing.T) {
	ch := testChar(t)
	for _, p := range taxonomy.Platforms() {
		rows, err := ch.MixedPlacementStudy(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 5 {
			t.Fatalf("%s: %d rows", p, len(rows))
		}
		for _, r := range rows {
			if r.OneOffChip > r.AllOnChip+1e-9 {
				t.Errorf("%s/%s: off-chip %.4f beats on-chip %.4f", p, r.Component, r.OneOffChip, r.AllOnChip)
			}
			if r.Penalty < 0 {
				t.Errorf("%s/%s: negative penalty", p, r.Component)
			}
		}
	}
	// BigQuery's payloads make any off-chip hop costly; its worst single
	// placement penalty should dwarf Spanner's.
	bq, _ := ch.MixedPlacementStudy(taxonomy.BigQuery)
	sp, _ := ch.MixedPlacementStudy(taxonomy.Spanner)
	worst := func(rows []MixedPlacementRow) float64 {
		w := 0.0
		for _, r := range rows {
			if r.Penalty > w {
				w = r.Penalty
			}
		}
		return w
	}
	if worst(bq) <= worst(sp) {
		t.Errorf("BigQuery worst placement penalty %.3f <= Spanner %.3f", worst(bq), worst(sp))
	}
}

func TestChain3Experiment(t *testing.T) {
	r, err := Chain3Experiment(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio <= 1.2 {
		t.Fatalf("corpus compression ratio %.2f, want > 1.2", r.Ratio)
	}
	if r.DiffFrac > 0.15 {
		t.Fatalf("chain3 model diff %.1f%%", r.DiffFrac*100)
	}
	out := RenderChain3(r)
	if !strings.Contains(out, "compression") || !strings.Contains(out, "Difference") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderMixedPlacement(t *testing.T) {
	ch := testChar(t)
	rows, err := ch.MixedPlacementStudy(taxonomy.Spanner)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderMixedPlacement(taxonomy.Spanner, rows)
	if !strings.Contains(out, "penalty") || len(out) < 100 {
		t.Fatalf("render:\n%s", out)
	}
}

func TestBuildReportJSON(t *testing.T) {
	ch := testChar(t)
	r := BuildReport(ch)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ratios["Spanner"] != "1:16:164" {
		t.Fatalf("ratio = %q", back.Ratios["Spanner"])
	}
	if len(back.EndToEnd["BigQuery"]) != 5 {
		t.Fatalf("bigquery groups = %d", len(back.EndToEnd["BigQuery"]))
	}
	if back.Microarch["BigQuery"].IPC <= back.Microarch["Spanner"].IPC {
		t.Fatal("IPC ordering lost in report")
	}
	var sum float64
	for _, f := range back.Cycles["BigTable"] {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("cycle fractions sum to %v", sum)
	}
	if back.Meta.Queries["Spanner"] == 0 || back.Meta.SimulatedTime["Spanner"] == "" {
		t.Fatalf("meta = %+v", back.Meta)
	}
}

func TestAcceleratorPriority(t *testing.T) {
	ch := testChar(t)
	rows, err := ch.AcceleratorPriority(taxonomy.Spanner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Descending sensitivity; all positive; shares sane.
	for i, r := range rows {
		if i > 0 && r.Sensitivity > rows[i-1].Sensitivity+1e-12 {
			t.Fatal("not sorted by sensitivity")
		}
		if r.Sensitivity < 0 || r.CPUShare <= 0 || r.CPUShare > 1 {
			t.Fatalf("row %+v", r)
		}
	}
	// The largest CPU component should rank near the top (Amdahl).
	if rows[0].CPUShare < 0.05 {
		t.Fatalf("top component has tiny share: %+v", rows[0])
	}
	out := RenderPriority(taxonomy.Spanner, rows)
	if !strings.Contains(out, "priority") {
		t.Fatal("render")
	}
}

func TestLatencyStudy(t *testing.T) {
	pts, err := StudyConfig{Seed: 7}.Latency([]float64{500, 80000}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// The heavy point sits beyond the fleet's ~60k ops/s capacity, so both
	// the median and the tail must inflate.
	if pts[1].P50Seconds <= pts[0].P50Seconds*1.5 {
		t.Fatalf("p50 flat under overload: %.4f -> %.4f", pts[0].P50Seconds, pts[1].P50Seconds)
	}
	if pts[1].P99Seconds <= pts[0].P99Seconds {
		t.Fatalf("p99 flat under overload: %.4f -> %.4f", pts[0].P99Seconds, pts[1].P99Seconds)
	}
	if pts[0].P50Seconds <= 0 {
		t.Fatal("zero p50")
	}
	out := RenderLatency(pts)
	if !strings.Contains(out, "p99") {
		t.Fatal("render")
	}
	if _, err := (StudyConfig{Seed: 7}).Latency(nil, 0); err == nil {
		t.Fatal("zero ops accepted")
	}
}

func TestChainScaling(t *testing.T) {
	rows := ChainScaling([]int{1, 2, 4, 8, 16, 0})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Async bounds chained bounds sync at every length.
		if !(r.Async >= r.Chained-1e-9 && r.Chained >= r.Sync-1e-9) {
			t.Fatalf("ordering at %d stages: %+v", r.Stages, r)
		}
		// Chained improves with more (smaller) pipelined stages.
		if i > 0 && r.Chained < rows[i-1].Chained-1e-9 {
			t.Fatalf("chained degraded with stages: %+v", rows)
		}
	}
	// At 16 stages, sync pays 16 setups+residuals; chained pays one of
	// each. The gap must be substantial (paper: chaining realizes most of
	// the asynchronous benefit).
	last := rows[len(rows)-1]
	if last.Chained < last.Sync*1.5 {
		t.Fatalf("chaining gain too small at 16 stages: %+v", last)
	}
	if last.Chained < 0.95*last.Async {
		t.Fatalf("chained should track async: %+v", last)
	}
}

func TestRenderTables23(t *testing.T) {
	out := RenderTables23()
	for _, want := range []string{"Table 2", "Table 3", "Protobuf", "(De)serialization", "Kernel, syscalls"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTieringPolicyAblation(t *testing.T) {
	res, err := TieringPolicyAblation(3, 40000)
	if err != nil {
		t.Fatal(err)
	}
	lru := res.RAMHitRatio["LRU"]
	lfu := res.RAMHitRatio["TinyLFU"]
	if lfu <= lru {
		t.Fatalf("TinyLFU hit ratio %.3f <= LRU %.3f", lfu, lru)
	}
	if res.PointReadMean["TinyLFU"] >= res.PointReadMean["LRU"] {
		t.Fatalf("TinyLFU point-read mean %.6f >= LRU %.6f", res.PointReadMean["TinyLFU"], res.PointReadMean["LRU"])
	}
	if _, err := TieringPolicyAblation(3, 0); err == nil {
		t.Fatal("zero accesses accepted")
	}
}
