package experiments

// This file is the unified Study API: StudyConfig is the shared core — one
// struct of grouped knobs (operation budgets, fault rates, checker sizing,
// observability, load, nemesis, pipeline) with one method entry point per
// study (Characterize, Safety, Resilience, Observe, Overload, Partition,
// Fleet, Pipeline) and a Default*StudyConfig constructor per study. The
// legacy per-study config structs and Run* wrappers that predated it have
// been deleted; StudyConfig is the only way in.

import (
	"time"

	"hyperprof/internal/obs"
	"hyperprof/internal/workload"
)

// PlatformOps is the per-platform operation budget of a study.
type PlatformOps struct {
	Spanner, BigTable, BigQuery int
}

// FaultConfig groups the fault-injection rates shared by the safety and
// resilience studies. Rates are fractions of the measured fault-free horizon
// (MTBFFrac 0.5 means each target expects roughly two fault windows per
// run); the zero value disables injection-specific behaviour but studies
// that inject always set it explicitly.
type FaultConfig struct {
	// MTBFFrac is the per-target mean time between failures as a fraction
	// of the platform's baseline elapsed time.
	MTBFFrac float64
	// MTTRFrac is the mean repair time as a fraction of baseline elapsed.
	MTTRFrac float64
	// StragglerProb is the chance a generated fault window is a straggler
	// (service-time multiplier StragglerFactor) instead of a crash.
	StragglerProb   float64
	StragglerFactor float64
	// NetDegradeProb is the chance of one network-degradation window per
	// platform run, adding NetExtraDelay per message and dropping requests
	// with probability NetDropProb while it lasts.
	NetDegradeProb float64
	NetExtraDelay  time.Duration
	NetDropProb    float64
}

// CheckConfig sizes the safety checker: how many faulted seeds to sweep and
// how hot the contended row range is.
type CheckConfig struct {
	// Seeds is the number of faulted runs per platform.
	Seeds int
	// HotRows bounds the contended row range so concurrent clients collide
	// on the same registers, giving the linearizability checker real overlap.
	HotRows int
}

// LoadConfig sizes the overload study: open-loop offered load per platform,
// the retry-storm trigger window, and the protected arm's overload-control
// knobs. Rates are total offered operations per virtual second, split across
// the study's three tenants (interactive 50%, batch 30%, flash 20%).
type LoadConfig struct {
	// SpannerRate, BigTableRate and BigQueryRate are the total open-loop
	// arrival rates (ops per virtual second) per platform.
	SpannerRate, BigTableRate, BigQueryRate float64
	// Duration is the arrival horizon; operations in flight still drain.
	Duration time.Duration
	// Window is the goodput accounting bucket width (0 = 50ms).
	Window time.Duration
	// TriggerAt and TriggerDur place the retry-storm trigger: a brownout
	// (service times multiplied by SlowFactor) compounded by a flash crowd
	// (the flash tenant's rate multiplied by FlashMult) over
	// [TriggerAt, TriggerAt+TriggerDur).
	TriggerAt, TriggerDur time.Duration
	SlowFactor            float64
	FlashMult             float64
	// The remaining knobs arm the protected arm only; the naive arm runs
	// with unbounded queues and eager retries.
	// MaxQueue, Target, Interval and ShedStartFrac configure server-side
	// admission (netsim.Admission semantics).
	MaxQueue      int
	Target        time.Duration
	Interval      time.Duration
	ShedStartFrac float64
	// RetryBudget is the per-client retry token bucket; BreakerFailures and
	// BreakerCooldown configure per-target circuit breakers.
	RetryBudget     float64
	BreakerFailures int
	BreakerCooldown time.Duration
	// QoSCapacity is the tenant governor's shared concurrency capacity.
	QoSCapacity int
}

// PartitionConfig sizes the partition study's nemesis: partition windows,
// one optional gray link, and clock skew, all as fractions/probabilities
// over the calibrated horizon (mirroring FaultConfig). The zero value
// disables the nemesis dimensions; the partition study always sets it.
type PartitionConfig struct {
	// MTBFFrac is the mean time between partition windows and MTTRFrac the
	// mean window duration, both as fractions of the calibrated horizon.
	MTBFFrac, MTTRFrac float64
	// GrayProb is the chance of one asymmetric gray-link window per run,
	// adding GrayExtra per message and dropping GrayDrop of them, one
	// direction only.
	GrayProb  float64
	GrayExtra time.Duration
	GrayDrop  float64
	// ClockSkewProb is the per-replica chance of one clock-skew window with
	// offset in [-ClockSkewMax, ClockSkewMax] and drift in [-ClockDriftMax,
	// ClockDriftMax]. Keep ClockSkewMax (plus drift accumulated over the
	// horizon) inside ClockEps or the hardened arm's commit-wait cannot
	// guarantee external consistency — the bound TrueTime itself assumes.
	ClockSkewProb float64
	ClockSkewMax  time.Duration
	ClockDriftMax float64
	// ClockEps is the TrueTime-style uncertainty bound Spanner runs with in
	// every partition-study arm: commit timestamps come from the skewed
	// local clock and commits wait the bound out before acknowledging.
	ClockEps time.Duration
	// IncludeBroken adds the broken-knob demonstration arms (Spanner with
	// commit-wait disabled under a deterministic fast clock, BigTable
	// serving writes from a partitioned server that are discarded at heal).
	// Their violations are expected and reported separately.
	IncludeBroken bool
}

// PipelineConfig sizes the cross-platform pipeline study: how many logical
// records flow BigTable → BigQuery → Spanner, how they batch into iterative
// analytics queries, and whether the broken-handoff fixture arm runs.
type PipelineConfig struct {
	// Records is the number of logical records flowing end to end.
	Records int
	// Batches groups the records into analytic batches; each batch runs one
	// iterative PageRank query over the shuffle plane.
	Batches int
	// Iterations is the PageRank round count per batch query.
	Iterations int
	// IncludeBroken adds the broken-handoff demonstration arm (the
	// BigQuery→Spanner dedup latch disabled under a forced replay). Its
	// violations are expected and reported separately — an empty set means
	// the handoff checker missed the planted bug.
	IncludeBroken bool
}

// ObsConfig switches on the observability plane and sizes its sampling.
type ObsConfig struct {
	// Enabled turns the metrics plane on; when false the other fields are
	// ignored and instrumented code pays one nil-check branch per record.
	Enabled bool
	// Interval is the virtual-time sampling period (0 = obs.DefaultConfig).
	Interval time.Duration
	// Window is the histogram window capacity (0 = obs.DefaultConfig).
	Window int
	// Sketch switches histograms to bounded-memory quantile sketches with
	// relative error SketchRelErr (0 = stats.DefaultSketchRelErr).
	Sketch       bool
	SketchRelErr float64
}

// registry builds the obs registry config for this study.
func (o ObsConfig) registry() obs.Config {
	return obs.Config{
		Interval:     o.Interval,
		Window:       o.Window,
		Sketch:       o.Sketch,
		SketchRelErr: o.SketchRelErr,
	}
}

// SketchConfig switches a study's measurement plane from exact recording to
// bounded-memory sketching. Off by default: exact recording stays the
// reference, and every pre-existing artifact reproduces byte-for-byte.
type SketchConfig struct {
	// Enabled swaps latency summaries for mergeable quantile sketches and
	// operation histories for reservoir samples.
	Enabled bool
	// RelErr is the sketch's relative-error bound on every reported
	// quantile (0 = stats.DefaultSketchRelErr, 1%).
	RelErr float64
	// HistoryCap bounds the reservoir of retained operations per platform
	// history (0 = 4096). Completeness-sensitive checkers refuse sampled
	// histories, so fleet runs report op mixes, not linearizability.
	HistoryCap int
}

// FleetConfig sizes the fleet-scale characterization: how many simulated
// server machines the three platforms share, how many logical users the
// open-loop load is attributed to, and the operation budget over the
// virtual horizon.
type FleetConfig struct {
	// Servers is the total server-machine count, split roughly 50% BigTable
	// / 25% Spanner / 25% BigQuery (serving-heavy, like the paper's fleet).
	Servers int
	// Users is the logical user population. Users are an ID space that
	// arrivals are attributed to, not materialized state — fleet memory
	// must not grow with them.
	Users int
	// Ops is the total completed-operation budget across platforms.
	Ops int
	// Duration is the arrival horizon of virtual time (0 = 2s); per-platform
	// open-loop rates are derived as ops/duration.
	Duration time.Duration
	// Shape optionally modulates arrivals (bursts, diurnal swing).
	Shape workload.ArrivalShape
}

// ExecConfig sizes the exec execution backend: how many worker subprocesses
// a study fans its units out across, and how failures are bounded.
type ExecConfig struct {
	// Workers is the worker subprocess count. 0 falls back to
	// Parallelism(Parallel) — the same knob the in-process pool resolves.
	Workers int
	// UnitTimeout bounds one work unit's wall-clock time per attempt; on
	// expiry the worker is killed and the unit retried. 0 disables it.
	UnitTimeout time.Duration
	// Retries bounds re-dispatches of a unit after a worker crash, timeout
	// or protocol failure. 0 means the default (1 retry); negative disables
	// retries entirely. Application errors are never retried — a
	// deterministic failure must surface identically on every backend.
	Retries int
	// Command overrides the worker argv. Empty means "this executable with
	// a -worker argument", which cmd/hyperprof serves; tests point it at
	// the re-exec'd test binary instead.
	Command []string
	// Env is appended to the inherited environment of every worker.
	Env []string
}

// StudyConfig is the shared core every study runs from. Construct one with a
// Default*StudyConfig helper (or convert a legacy config via Study()) and
// call the study's method entry point: Characterize, Safety, Resilience or
// Observe.
type StudyConfig struct {
	// Seed drives all randomness. Studies derive per-platform and per-arm
	// seeds from it, so equal configs replay bit-identically.
	Seed uint64
	// Parallel bounds how many independent simulations run concurrently:
	// 0 = one worker per CPU, 1 = sequential. Results are byte-identical
	// either way (see runner.go).
	Parallel int
	// Backend selects the study execution backend: "" runs jobs directly on
	// the in-process worker pool (the legacy fast path), BackendPool routes
	// them through the pool backend's serialized work-unit path, and
	// BackendExec fans them out across hyperprof -worker subprocesses.
	// Outputs are byte-identical across all three (see backend.go).
	Backend string
	// Exec sizes the exec backend; ignored unless Backend is BackendExec.
	Exec ExecConfig
	// Clients is the closed-loop client count per platform.
	Clients int
	// TraceRate keeps 1/TraceRate of traces.
	TraceRate int
	// Ops is the per-platform operation budget.
	Ops PlatformOps
	// Faults configures injection for the safety and resilience studies.
	Faults FaultConfig
	// Check sizes the safety checker sweep.
	Check CheckConfig
	// Obs configures the observability plane.
	Obs ObsConfig
	// Load sizes the overload study (open-loop rates, trigger window and the
	// protected arm's control-plane knobs).
	Load LoadConfig
	// Part sizes the partition study's nemesis (partition windows, gray
	// links, clock skew and the Spanner uncertainty bound).
	Part PartitionConfig
	// Sketch switches measurement to bounded-memory recorders (fleet runs
	// enable it; everything else defaults to exact).
	Sketch SketchConfig
	// Fleet sizes the fleet-scale characterization (Fleet entry point).
	Fleet FleetConfig
	// Pipe sizes the cross-platform pipeline study (Pipeline entry point;
	// the field is short for the same reason Part is — the long name is the
	// method).
	Pipe PipelineConfig
	// Shape optionally modulates arrivals in the overload study (open-loop
	// tenant arrivals) and think times in the resilience study's closed
	// loops. The zero value is byte-compatible with unshaped runs; fleet
	// runs carry their own Fleet.Shape.
	Shape workload.ArrivalShape
}

// defaultFaults are the documented fault rates both injecting studies share:
// roughly two fault windows per target per run, repairs a few percent of the
// run, a quarter of windows 4x stragglers, and a network brown-out (extra
// 200µs per message, 2% drops) in about half the runs.
func defaultFaults() FaultConfig {
	return FaultConfig{
		MTBFFrac:        0.5,
		MTTRFrac:        0.03,
		StragglerProb:   0.25,
		StragglerFactor: 4,
		NetDegradeProb:  0.5,
		NetExtraDelay:   200 * time.Microsecond,
		NetDropProb:     0.02,
	}
}

// DefaultCharStudyConfig returns the characterization defaults: the
// stand-in for the paper's "one representative day".
func DefaultCharStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   8,
		TraceRate: 1,
		Ops:       PlatformOps{Spanner: 1500, BigTable: 1500, BigQuery: 250},
	}
}

// DefaultSafetyStudyConfig returns the torture defaults: six clients
// hammering eight hot rows per platform across five faulted seeds.
func DefaultSafetyStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   6,
		TraceRate: 1,
		Ops:       PlatformOps{Spanner: 400, BigTable: 400, BigQuery: 24},
		Faults:    defaultFaults(),
		Check:     CheckConfig{Seeds: 5, HotRows: 8},
	}
}

// DefaultResilienceStudyConfig returns the resilience defaults: baseline vs
// faulted arms at rates where all three platforms stay above 99%
// availability.
func DefaultResilienceStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   8,
		TraceRate: 1,
		Ops:       PlatformOps{Spanner: 1200, BigTable: 1200, BigQuery: 96},
		Faults:    defaultFaults(),
	}
}

// DefaultObsStudyConfig returns the observability-study defaults: a
// moderate workload with the metrics plane on at 1ms virtual-time
// resolution, sized so the exported time series stay readable.
func DefaultObsStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   8,
		TraceRate: 1,
		Ops:       PlatformOps{Spanner: 600, BigTable: 600, BigQuery: 90},
		Obs:       ObsConfig{Enabled: true, Interval: time.Millisecond, Window: 1024},
	}
}

// DefaultPartitionStudyConfig returns the partition-study defaults: the
// safety torture's contended workload under a nemesis of split-brain/ring/
// bridge partitions, one gray link, and bounded clock skew, with a lighter
// crash schedule riding along so partitions land on an already-degraded
// fleet. Two faulted seeds per arm keep the default run quick; CI sweeps
// more via the config.
func DefaultPartitionStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   6,
		TraceRate: 1,
		Ops:       PlatformOps{Spanner: 400, BigTable: 400, BigQuery: 24},
		Check:     CheckConfig{Seeds: 2, HotRows: 8},
		Faults: FaultConfig{
			MTBFFrac:        1.0,
			MTTRFrac:        0.03,
			StragglerProb:   0.2,
			StragglerFactor: 4,
		},
		Part: PartitionConfig{
			MTBFFrac:      0.4,
			MTTRFrac:      0.12,
			GrayProb:      0.6,
			GrayExtra:     300 * time.Microsecond,
			GrayDrop:      0.05,
			ClockSkewProb: 0.5,
			ClockSkewMax:  700 * time.Microsecond,
			ClockDriftMax: 1e-4,
			ClockEps:      time.Millisecond,
		},
	}
}

// DefaultOverloadStudyConfig returns the overload-study defaults: open-loop
// load each platform serves comfortably at baseline, a mid-run retry-storm
// trigger (6x brownout plus a 4x flash crowd for 400ms), and
// production-flavoured protections — bounded queues with CoDel expiry and
// adaptive shedding, a 10-token retry budget, 5-failure circuit breakers, and
// weighted tenant shares.
func DefaultOverloadStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   8,
		TraceRate: 1,
		Load: LoadConfig{
			SpannerRate:     2000,
			BigTableRate:    3500,
			BigQueryRate:    30,
			Duration:        2 * time.Second,
			Window:          50 * time.Millisecond,
			TriggerAt:       500 * time.Millisecond,
			TriggerDur:      400 * time.Millisecond,
			SlowFactor:      10,
			FlashMult:       4,
			MaxQueue:        64,
			Target:          2 * time.Millisecond,
			Interval:        5 * time.Millisecond,
			ShedStartFrac:   0.7,
			RetryBudget:     10,
			BreakerFailures: 5,
			BreakerCooldown: 25 * time.Millisecond,
			QoSCapacity:     96,
		},
	}
}

// DefaultPipelineStudyConfig returns the pipeline-study defaults: 48 logical
// records flowing BigTable → BigQuery → Spanner in four batches, each batch
// a two-round PageRank over the shuffle plane, with a fault schedule that
// kills shuffle servers (the middle stage's state plane) over the calibrated
// horizon and a forced replay exercising the handoff dedup latch.
func DefaultPipelineStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		Clients:   4,
		TraceRate: 1,
		Check:     CheckConfig{Seeds: 2, HotRows: 8},
		Faults: FaultConfig{
			MTBFFrac:        0.6,
			MTTRFrac:        0.08,
			StragglerProb:   0.25,
			StragglerFactor: 4,
		},
		Pipe: PipelineConfig{Records: 48, Batches: 4, Iterations: 2},
	}
}
