package experiments

import (
	"fmt"
	"math"

	"hyperprof/internal/model"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file derives analytical-model inputs from the characterization run
// (§6.1: "the values of f, t_e2e, t_sub_i, and t_dep are derived from
// Sections 4 and 5") and implements the limit studies of Figures 9, 10, 13,
// 14 and 15.

// PCIeGen5BytesPerSec is the off-chip link bandwidth the paper assumes for
// Figure 13 (4 GB/s).
const PCIeGen5BytesPerSec = 4e9

// AcceleratedCategories returns the CPU components §6.2 accelerates for a
// platform: the top datacenter taxes, top system taxes, and the platform's
// dominant core-compute operations.
func AcceleratedCategories(p taxonomy.Platform) []taxonomy.Category {
	taxes := []taxonomy.Category{
		taxonomy.Compression, taxonomy.Protobuf, taxonomy.RPC,
		taxonomy.STL, taxonomy.OperatingSystems,
	}
	if p == taxonomy.BigQuery {
		return append(taxes, taxonomy.Filter, taxonomy.Compute, taxonomy.Aggregate, taxonomy.MiscCore)
	}
	return append(taxes, taxonomy.Read, taxonomy.Write, taxonomy.Compaction, taxonomy.MiscCore)
}

// categoryFraction returns a category's fraction of the platform's total CPU
// cycles (broad fraction times within-broad fraction).
func (ch *Characterization) categoryFraction(p taxonomy.Platform, cat taxonomy.Category) float64 {
	broad := taxonomy.BroadOf(cat)
	bb := ch.Prof(p).BroadBreakdown(p)
	cb := ch.Prof(p).CategoryBreakdown(p, broad)
	return bb[broad] * cb[cat]
}

// DeriveSystem builds the model input for a platform from the observed
// traces (mean per-query CPU and dependency time, measured overlap factor)
// and the observed profile (per-component CPU fractions). Components start
// unit-speedup, synchronous and on-chip; the sweeps reconfigure them.
func (ch *Characterization) DeriveSystem(p taxonomy.Platform) (model.System, error) {
	traces := ch.Traces[p]
	if len(traces) == 0 {
		return model.System{}, fmt.Errorf("experiments: no traces for %s", p)
	}
	var cpuSum, depSum float64
	for _, t := range traces {
		o := t.ComputeOverlap()
		cpuSum += o.CPUUnion.Seconds()
		depSum += o.DepUnion.Seconds()
	}
	n := float64(len(traces))
	sys := model.System{
		CPUTime:   cpuSum / n,
		DepTime:   depSum / n,
		F:         trace.MeanF(traces),
		Bandwidth: PCIeGen5BytesPerSec,
	}
	for _, cat := range AcceleratedCategories(p) {
		frac := ch.categoryFraction(p, cat)
		if frac <= 0 {
			continue
		}
		sys.Components = append(sys.Components, model.Component{
			Name:        string(cat),
			Time:        sys.CPUTime * frac,
			Accelerated: true,
			Speedup:     1,
			Sync:        1,
		})
	}
	if err := sys.Validate(); err != nil {
		return model.System{}, err
	}
	return sys, nil
}

// DeriveGroupSystem is DeriveSystem restricted to one Figure 2 query group.
func (ch *Characterization) DeriveGroupSystem(p taxonomy.Platform, g trace.Group) (model.System, error) {
	var subset []*trace.Trace
	for _, t := range ch.Traces[p] {
		if trace.GroupOf(t.ComputeBreakdown()) == g {
			subset = append(subset, t)
		}
	}
	if len(subset) == 0 {
		return model.System{}, fmt.Errorf("experiments: no %q traces for %s", g, p)
	}
	saved := ch.Traces[p]
	ch.Traces[p] = subset
	defer func() { ch.Traces[p] = saved }()
	return ch.DeriveSystem(p)
}

// SpeedupSweep is the per-accelerator speedup axis of Figures 9 and 10.
var SpeedupSweep = []float64{1, 2, 4, 8, 16, 24, 32, 48, 64}

// Fig9Point is one point of Figure 9.
type Fig9Point struct {
	Speedup    float64
	WithDep    float64 // upper-bound e2e speedup keeping remote work and IO
	WithoutDep float64 // with non-CPU dependencies removed (co-design)
}

// Figure9 reproduces the synchronous on-chip upper-bound study.
func Figure9(ch *Characterization) (map[taxonomy.Platform][]Fig9Point, error) {
	out := map[taxonomy.Platform][]Fig9Point{}
	for _, p := range taxonomy.Platforms() {
		sys, err := ch.DeriveSystem(p)
		if err != nil {
			return nil, err
		}
		base := sys.Configure(model.SyncOnChip, nil)
		noDep := base.WithoutDependencies()
		// Both curves are speedups over the *original* end-to-end time, so
		// dependency removal shows as an immediate jump at 1x, as in the
		// paper's right/left panel comparison.
		origE2E := sys.BaselineE2E()
		var pts []Fig9Point
		for _, s := range SpeedupSweep {
			pts = append(pts, Fig9Point{
				Speedup:    s,
				WithDep:    origE2E / base.WithUniformSpeedup(s).AcceleratedE2E(),
				WithoutDep: origE2E / noDep.WithUniformSpeedup(s).AcceleratedE2E(),
			})
		}
		out[p] = pts
	}
	return out, nil
}

// Fig10Series is one query group's sweep for one platform.
type Fig10Series struct {
	Group  trace.Group
	Points []Fig9Point // WithoutDep carries the Figure 10 value
}

// Figure10 reproduces the grouped synchronous on-chip upper bounds (remote
// work and IO removed). Groups with no queries are omitted, as in the paper
// (not every platform populates every group).
func Figure10(ch *Characterization) (map[taxonomy.Platform][]Fig10Series, error) {
	out := map[taxonomy.Platform][]Fig10Series{}
	for _, p := range taxonomy.Platforms() {
		for _, g := range trace.Groups() {
			if g == trace.GroupOverall {
				continue
			}
			sys, err := ch.DeriveGroupSystem(p, g)
			if err != nil {
				continue // empty group
			}
			noDep := sys.Configure(model.SyncOnChip, nil).WithoutDependencies()
			origE2E := sys.BaselineE2E()
			s := Fig10Series{Group: g}
			for _, sp := range SpeedupSweep {
				s.Points = append(s.Points, Fig9Point{
					Speedup:    sp,
					WithoutDep: origE2E / noDep.WithUniformSpeedup(sp).AcceleratedE2E(),
				})
			}
			out[p] = append(out[p], s)
		}
	}
	return out, nil
}

// Fig13Speedup is the per-accelerator speedup used in the feature study.
const Fig13Speedup = 8

// Fig13Row is one additive step of Figure 13: the named component joins the
// accelerated set and all four invocation models are evaluated.
type Fig13Row struct {
	Label    string // e.g. "Compression" then "+ Protobuf" ...
	Speedups map[model.Invocation]float64
}

// Figure13 reproduces the accelerator feature upper bounds: accelerators are
// added datacenter-tax first, then system-tax, then core compute; each
// prefix is evaluated under the four invocation models. Off-chip payloads
// use the platform's measured mean bytes per query over PCIe Gen5.
func Figure13(ch *Characterization) (map[taxonomy.Platform][]Fig13Row, error) {
	out := map[taxonomy.Platform][]Fig13Row{}
	for _, p := range taxonomy.Platforms() {
		sys, err := ch.DeriveSystem(p)
		if err != nil {
			return nil, err
		}
		sys = sys.WithUniformSpeedup(Fig13Speedup)
		offBytes := map[string]float64{}
		for _, c := range sys.Components {
			offBytes[c.Name] = ch.QueryBytes[p]
		}
		var active []string
		var rows []Fig13Row
		for i, cat := range AcceleratedCategories(p) {
			active = append(active, string(cat))
			label := string(cat)
			if i > 0 {
				label = "+ " + label
			}
			row := Fig13Row{Label: label, Speedups: map[model.Invocation]float64{}}
			subset := sys.AccelerateOnly(active...)
			for _, inv := range model.Invocations() {
				row.Speedups[inv] = subset.Configure(inv, offBytes).Speedup()
			}
			rows = append(rows, row)
		}
		out[p] = rows
	}
	return out, nil
}

// SetupSweep is the Figure 14 setup-time axis in seconds.
var SetupSweep = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 1e1, 1e2}

// Fig14Point is one setup value's speedups under the four configurations.
type Fig14Point struct {
	SetupSeconds float64
	Speedups     map[model.Invocation]float64
}

// Figure14 reproduces the setup-time sweep at 8x per-accelerator speedup.
func Figure14(ch *Characterization) (map[taxonomy.Platform][]Fig14Point, error) {
	out := map[taxonomy.Platform][]Fig14Point{}
	for _, p := range taxonomy.Platforms() {
		sys, err := ch.DeriveSystem(p)
		if err != nil {
			return nil, err
		}
		sys = sys.WithUniformSpeedup(Fig13Speedup)
		offBytes := map[string]float64{}
		for _, c := range sys.Components {
			offBytes[c.Name] = ch.QueryBytes[p]
		}
		var pts []Fig14Point
		for _, setup := range SetupSweep {
			withSetup := sys.WithSetup(setup)
			pt := Fig14Point{SetupSeconds: setup, Speedups: map[model.Invocation]float64{}}
			for _, inv := range model.Invocations() {
				pt.Speedups[inv] = withSetup.Configure(inv, offBytes).Speedup()
			}
			pts = append(pts, pt)
		}
		out[p] = pts
	}
	return out, nil
}

// PriorAccel is one published accelerator used in Figure 15. Speedups are
// the peak values reported by the cited works for their operation
// (approximate where the paper does not restate them); setup time is zeroed
// for uniformity, as in §6.3.4.
type PriorAccel struct {
	Name       string
	Categories []taxonomy.Category
	Speedup    float64
}

// PriorAccelerators returns the Figure 15 accelerator roster for a platform.
func PriorAccelerators(p taxonomy.Platform) []PriorAccel {
	var core []taxonomy.Category
	if p == taxonomy.BigQuery {
		core = []taxonomy.Category{taxonomy.Filter, taxonomy.Compute, taxonomy.Aggregate, taxonomy.MiscCore}
	} else {
		core = []taxonomy.Category{taxonomy.Read, taxonomy.Write, taxonomy.Compaction, taxonomy.MiscCore}
	}
	return []PriorAccel{
		{Name: "Compression (IBM z15)", Categories: []taxonomy.Category{taxonomy.Compression}, Speedup: 40},
		{Name: "Mem. Alloc (Mallacc)", Categories: []taxonomy.Category{taxonomy.MemAllocation}, Speedup: 2.1},
		{Name: "Protobuf (ProtoAcc)", Categories: []taxonomy.Category{taxonomy.Protobuf}, Speedup: 15},
		{Name: "RPC (Cerebros)", Categories: []taxonomy.Category{taxonomy.RPC}, Speedup: 12},
		{Name: "Core Ops (Q100)", Categories: core, Speedup: 10},
	}
}

// Fig15Row is one accelerator (or the combination) under synchronous and
// chained on-chip execution.
type Fig15Row struct {
	Label   string
	Sync    float64
	Chained float64
}

// Figure15 reproduces the prior-accelerator comparison: each published
// accelerator individually, then all combined, under Sync + On-Chip and
// Chained + On-Chip.
func Figure15(ch *Characterization) (map[taxonomy.Platform][]Fig15Row, error) {
	out := map[taxonomy.Platform][]Fig15Row{}
	for _, p := range taxonomy.Platforms() {
		// Rebuild the component list to include every prior-accelerator
		// category (mem-alloc is not in the §6.2 set).
		sys, err := ch.DeriveSystem(p)
		if err != nil {
			return nil, err
		}
		sys = addComponent(sys, ch, p, taxonomy.MemAllocation)
		roster := PriorAccelerators(p)
		speedupOf := map[string]float64{}
		for _, a := range roster {
			for _, cat := range a.Categories {
				speedupOf[string(cat)] = a.Speedup
			}
		}
		applySpeedups := func(s model.System) model.System {
			o := s.Clone()
			for i := range o.Components {
				if sp, ok := speedupOf[o.Components[i].Name]; ok && o.Components[i].Accelerated {
					o.Components[i].Speedup = sp
				}
			}
			return o
		}
		var rows []Fig15Row
		var all []string
		for _, a := range roster {
			var names []string
			for _, cat := range a.Categories {
				names = append(names, string(cat))
			}
			all = append(all, names...)
			solo := applySpeedups(sys.AccelerateOnly(names...))
			rows = append(rows, Fig15Row{
				Label:   a.Name,
				Sync:    solo.Configure(model.SyncOnChip, nil).Speedup(),
				Chained: solo.Configure(model.ChainedOnChip, nil).Speedup(),
			})
		}
		combined := applySpeedups(sys.AccelerateOnly(all...))
		rows = append(rows, Fig15Row{
			Label:   "Combined",
			Sync:    combined.Configure(model.SyncOnChip, nil).Speedup(),
			Chained: combined.Configure(model.ChainedOnChip, nil).Speedup(),
		})
		out[p] = rows
	}
	return out, nil
}

// addComponent appends a category component to a derived system if it has
// observable CPU time and is not already present.
func addComponent(sys model.System, ch *Characterization, p taxonomy.Platform, cat taxonomy.Category) model.System {
	for _, c := range sys.Components {
		if c.Name == string(cat) {
			return sys
		}
	}
	frac := ch.categoryFraction(p, cat)
	if frac <= 0 {
		return sys
	}
	out := sys.Clone()
	out.Components = append(out.Components, model.Component{
		Name:        string(cat),
		Time:        sys.CPUTime * frac,
		Accelerated: true,
		Speedup:     1,
		Sync:        1,
	})
	return out
}

// MaxSpeedup returns the largest WithoutDep value of a Figure 9 sweep, the
// "ideal upper bound" the paper quotes per platform.
func MaxSpeedup(points []Fig9Point) float64 {
	best := 0.0
	for _, pt := range points {
		best = math.Max(best, pt.WithoutDep)
	}
	return best
}
