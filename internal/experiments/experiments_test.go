package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperprof/internal/model"
	"hyperprof/internal/platform"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// testChar runs one small characterization shared across the package tests
// (it is the expensive fixture).
var (
	charOnce sync.Once
	charVal  *Characterization
	charErr  error
)

func testChar(t *testing.T) *Characterization {
	t.Helper()
	charOnce.Do(func() {
		cfg := DefaultCharStudyConfig()
		cfg.Ops = PlatformOps{Spanner: 600, BigTable: 600, BigQuery: 80}
		charVal, charErr = cfg.Characterize()
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return charVal
}

func TestTable1MatchesProvisioningRatios(t *testing.T) {
	ch := testChar(t)
	rows := Table1(ch)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		wantRAM, wantSSD, wantHDD := platform.PaperStorageRatio(r.Platform)
		if r.RAM != float64(wantRAM) {
			t.Errorf("%s RAM ratio = %v", r.Platform, r.RAM)
		}
		if math.Abs(r.SSD-float64(wantSSD)) > 0.5 || math.Abs(r.HDD-float64(wantHDD)) > 0.5 {
			t.Errorf("%s ratio = 1:%.0f:%.0f, want 1:%d:%d", r.Platform, r.SSD, r.HDD, wantSSD, wantHDD)
		}
	}
	// BigTable has by far the deepest HDD tier (1:7:777).
	if rows[1].HDD <= rows[0].HDD || rows[1].HDD <= rows[2].HDD {
		t.Errorf("BigTable HDD ratio %v should dominate", rows[1].HDD)
	}
}

func TestFigure2Shape(t *testing.T) {
	ch := testChar(t)
	fig := Figure2(ch)
	group := func(p taxonomy.Platform, g trace.Group) trace.GroupStats {
		for _, row := range fig[p] {
			if row.Group == g {
				return row
			}
		}
		return trace.GroupStats{}
	}
	// Databases are primarily CPU heavy (paper: >60% of queries); accept a
	// looser >=45% bound for the small run.
	for _, p := range []taxonomy.Platform{taxonomy.Spanner, taxonomy.BigTable} {
		if f := group(p, trace.GroupCPUHeavy).QueryFrac; f < 0.45 {
			t.Errorf("%s CPU-heavy fraction = %.2f", p, f)
		}
	}
	// BigQuery is not CPU heavy (paper: ~10% of queries).
	bqCPU := group(taxonomy.BigQuery, trace.GroupCPUHeavy).QueryFrac
	dbCPU := group(taxonomy.Spanner, trace.GroupCPUHeavy).QueryFrac
	if bqCPU >= dbCPU {
		t.Errorf("BigQuery CPU-heavy %.2f >= Spanner %.2f", bqCPU, dbCPU)
	}
	if bqCPU > 0.4 {
		t.Errorf("BigQuery CPU-heavy fraction = %.2f, want small", bqCPU)
	}
	// BigQuery overall is IO+remote dominated.
	bq := group(taxonomy.BigQuery, trace.GroupOverall)
	if bq.IOFrac+bq.RemoteFrac < 0.5 {
		t.Errorf("BigQuery IO+remote = %.2f", bq.IOFrac+bq.RemoteFrac)
	}
	// Cross-platform average: remote+IO is a major share (paper: 52%).
	cpu, remote, io := Figure2Overall(ch)
	if s := cpu + remote + io; math.Abs(s-1) > 1e-6 {
		t.Fatalf("overall fractions sum to %v", s)
	}
	if remote+io < 0.3 {
		t.Errorf("overall remote+IO = %.2f, want substantial", remote+io)
	}
}

func TestFigure3Shape(t *testing.T) {
	ch := testChar(t)
	fig := Figure3(ch)
	for _, p := range taxonomy.Platforms() {
		m := fig[p]
		var sum float64
		for _, f := range m {
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s broad fractions sum to %v", p, sum)
		}
		want := platform.PaperBroadSplit(p)
		// The observed split must land near the calibrated split: the
		// pipeline between them includes scheduling, queueing, jitter and
		// classification.
		if math.Abs(m[taxonomy.CoreCompute]-want.CoreCompute) > 0.08 {
			t.Errorf("%s core compute = %.2f, want ~%.2f", p, m[taxonomy.CoreCompute], want.CoreCompute)
		}
		// Paper: no broad class dominates; each within [0.15, 0.5].
		for _, b := range taxonomy.Broads() {
			if m[b] < 0.10 || m[b] > 0.55 {
				t.Errorf("%s %v = %.2f outside plausible band", p, b, m[b])
			}
		}
	}
	// BigQuery has the smallest core-compute share (18% in the paper).
	if fig[taxonomy.BigQuery][taxonomy.CoreCompute] >= fig[taxonomy.Spanner][taxonomy.CoreCompute] {
		t.Error("BigQuery core compute should be smallest")
	}
}

func TestFigure4Shape(t *testing.T) {
	ch := testChar(t)
	fig := Figure4(ch)
	// Spanner: Read is the largest core category (paper ~30%).
	sp := fig[taxonomy.Spanner]
	for cat, f := range sp {
		if cat != taxonomy.Read && f > sp[taxonomy.Read]+0.02 {
			t.Errorf("Spanner %q (%.2f) exceeds Read (%.2f)", cat, f, sp[taxonomy.Read])
		}
	}
	// BigTable: compaction is prominent (paper ~15%).
	if f := fig[taxonomy.BigTable][taxonomy.Compaction]; f < 0.05 {
		t.Errorf("BigTable compaction = %.2f", f)
	}
	// BigQuery: filter/aggregate/compute are the top trio (paper 14-23%).
	bq := fig[taxonomy.BigQuery]
	for _, cat := range []taxonomy.Category{taxonomy.Filter, taxonomy.Aggregate, taxonomy.Compute} {
		if bq[cat] < 0.08 {
			t.Errorf("BigQuery %q = %.2f, want >= 0.08", cat, bq[cat])
		}
	}
	if bq[taxonomy.Materialize] > bq[taxonomy.Filter] {
		t.Error("BigQuery materialize should be small (datacenter-tax path handles retrieval)")
	}
}

func TestFigure5Shape(t *testing.T) {
	ch := testChar(t)
	fig := Figure5(ch)
	// RPC is highest for BigTable (37%), low for BigQuery (11%).
	if fig[taxonomy.BigTable][taxonomy.RPC] <= fig[taxonomy.BigQuery][taxonomy.RPC] {
		t.Error("BigTable RPC share should exceed BigQuery's")
	}
	// Compression exceeds 25% for BigTable and BigQuery (paper: >30%).
	for _, p := range []taxonomy.Platform{taxonomy.BigTable, taxonomy.BigQuery} {
		if f := fig[p][taxonomy.Compression]; f < 0.22 {
			t.Errorf("%s compression = %.2f", p, f)
		}
	}
	// Protobuf is 20-25% everywhere.
	for _, p := range taxonomy.Platforms() {
		if f := fig[p][taxonomy.Protobuf]; f < 0.12 || f > 0.33 {
			t.Errorf("%s protobuf = %.2f", p, f)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	ch := testChar(t)
	fig := Figure6(ch)
	// STL is the largest system tax for BigQuery (53% in the paper).
	bq := fig[taxonomy.BigQuery]
	for cat, f := range bq {
		if cat != taxonomy.STL && f > bq[taxonomy.STL] {
			t.Errorf("BigQuery %q (%.2f) exceeds STL (%.2f)", cat, f, bq[taxonomy.STL])
		}
	}
	// OS is 18-28% across platforms.
	for _, p := range taxonomy.Platforms() {
		if f := fig[p][taxonomy.OperatingSystems]; f < 0.10 || f > 0.35 {
			t.Errorf("%s OS = %.2f", p, f)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	ch := testChar(t)
	t6 := Table6(ch)
	// BigQuery IPC > database IPCs (paper: 1.2 vs 0.7).
	if t6[taxonomy.BigQuery].IPC <= t6[taxonomy.Spanner].IPC {
		t.Errorf("BigQuery IPC %.2f <= Spanner %.2f", t6[taxonomy.BigQuery].IPC, t6[taxonomy.Spanner].IPC)
	}
	// Databases suffer ~2x the L1I MPKI of the query engine.
	if t6[taxonomy.Spanner].L1I <= t6[taxonomy.BigQuery].L1I {
		t.Error("Spanner L1I MPKI should exceed BigQuery's")
	}
	for _, p := range taxonomy.Platforms() {
		s := t6[p]
		if s.IPC < 0.4 || s.IPC > 1.6 {
			t.Errorf("%s IPC = %.2f implausible", p, s.IPC)
		}
		if s.CPU <= 0 {
			t.Errorf("%s no CPU time", p)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	ch := testChar(t)
	t7 := Table7(ch)
	// BigQuery core compute has the highest IPC of all cells (paper: 1.4).
	bqCC := t7[taxonomy.BigQuery][taxonomy.CoreCompute].IPC
	if bqCC < 1.2 {
		t.Errorf("BigQuery CC IPC = %.2f", bqCC)
	}
	// Within BigQuery, core compute beats taxes (paper's §5.6 takeaway).
	if bqCC <= t7[taxonomy.BigQuery][taxonomy.DatacenterTax].IPC {
		t.Error("BigQuery CC IPC should exceed DCT IPC")
	}
	// Tax code paths have larger instruction footprints: ST L1I > CC L1I on
	// the databases.
	for _, p := range []taxonomy.Platform{taxonomy.Spanner, taxonomy.BigTable} {
		if t7[p][taxonomy.SystemTax].L1I <= t7[p][taxonomy.CoreCompute].L1I {
			t.Errorf("%s ST L1I should exceed CC L1I", p)
		}
	}
}

func TestDeriveSystem(t *testing.T) {
	ch := testChar(t)
	for _, p := range taxonomy.Platforms() {
		sys, err := ch.DeriveSystem(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if sys.CPUTime <= 0 || sys.DepTime <= 0 {
			t.Errorf("%s: cpu=%v dep=%v", p, sys.CPUTime, sys.DepTime)
		}
		if sys.F < 0 || sys.F > 1 {
			t.Errorf("%s: f=%v", p, sys.F)
		}
		if len(sys.Components) < 5 {
			t.Errorf("%s: only %d components", p, len(sys.Components))
		}
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	// BigQuery is dependency-dominated; Spanner is CPU-dominated.
	bq, _ := ch.DeriveSystem(taxonomy.BigQuery)
	sp, _ := ch.DeriveSystem(taxonomy.Spanner)
	if bq.DepTime/bq.CPUTime <= sp.DepTime/sp.CPUTime {
		t.Error("BigQuery dep/cpu ratio should exceed Spanner's")
	}
}

func TestFigure9Shape(t *testing.T) {
	ch := testChar(t)
	fig, err := Figure9(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range taxonomy.Platforms() {
		pts := fig[p]
		if len(pts) != len(SpeedupSweep) {
			t.Fatalf("%s: %d points", p, len(pts))
		}
		// Speedup 1x with dependencies must be ~1.
		if math.Abs(pts[0].WithDep-1) > 1e-6 {
			t.Errorf("%s: 1x speedup = %v", p, pts[0].WithDep)
		}
		// Monotone non-decreasing in acceleration.
		for i := 1; i < len(pts); i++ {
			if pts[i].WithDep < pts[i-1].WithDep-1e-9 || pts[i].WithoutDep < pts[i-1].WithoutDep-1e-9 {
				t.Errorf("%s: non-monotone sweep", p)
			}
		}
		last := pts[len(pts)-1]
		// Removing dependencies multiplies the bound (paper: orders of
		// magnitude difference).
		if last.WithoutDep <= last.WithDep {
			t.Errorf("%s: co-design bound %.2f <= hw-only bound %.2f", p, last.WithoutDep, last.WithDep)
		}
		// Hardware-only bounds are small (paper: 1.4x-2.2x).
		if last.WithDep > 4 {
			t.Errorf("%s: hw-only bound %.2f too large", p, last.WithDep)
		}
	}
	// BigQuery has the lowest hardware-only bound (paper: 1.4x).
	if fig[taxonomy.BigQuery][len(SpeedupSweep)-1].WithDep >= fig[taxonomy.Spanner][len(SpeedupSweep)-1].WithDep {
		t.Error("BigQuery hw-only bound should be lowest")
	}
}

func TestFigure10Shape(t *testing.T) {
	ch := testChar(t)
	fig, err := Figure10(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range taxonomy.Platforms() {
		if len(fig[p]) == 0 {
			t.Errorf("%s: no groups", p)
		}
		for _, s := range fig[p] {
			if len(s.Points) != len(SpeedupSweep) {
				t.Errorf("%s/%s: %d points", p, s.Group, len(s.Points))
			}
		}
	}
	// IO/remote-heavy groups see the largest initial jump when dependencies
	// are removed: their 1x speedup already exceeds the CPU-heavy group's.
	bySeries := map[trace.Group]Fig10Series{}
	for _, s := range fig[taxonomy.BigQuery] {
		bySeries[s.Group] = s
	}
	if io, ok := bySeries[trace.GroupIOHeavy]; ok {
		if cpu, ok2 := bySeries[trace.GroupCPUHeavy]; ok2 {
			if io.Points[0].WithoutDep <= cpu.Points[0].WithoutDep {
				t.Error("IO-heavy group should gain more from dependency removal at 1x")
			}
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	ch := testChar(t)
	fig, err := Figure13(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range taxonomy.Platforms() {
		rows := fig[p]
		if len(rows) != len(AcceleratedCategories(p)) {
			t.Fatalf("%s: %d rows", p, len(rows))
		}
		final := rows[len(rows)-1].Speedups
		// Invocation ordering: async >= chained >= sync-on >= sync-off.
		if final[model.AsyncOnChip] < final[model.ChainedOnChip]-1e-9 {
			t.Errorf("%s: async %.3f < chained %.3f", p, final[model.AsyncOnChip], final[model.ChainedOnChip])
		}
		if final[model.ChainedOnChip] < final[model.SyncOnChip]-1e-9 {
			t.Errorf("%s: chained %.3f < sync-on %.3f", p, final[model.ChainedOnChip], final[model.SyncOnChip])
		}
		if final[model.SyncOnChip] < final[model.SyncOffChip]-1e-9 {
			t.Errorf("%s: sync-on %.3f < sync-off %.3f", p, final[model.SyncOnChip], final[model.SyncOffChip])
		}
		// Chained tracks async closely for the databases (paper: <1%).
		if p != taxonomy.BigQuery {
			rel := (final[model.AsyncOnChip] - final[model.ChainedOnChip]) / final[model.AsyncOnChip]
			if rel > 0.05 {
				t.Errorf("%s: chained trails async by %.1f%%", p, rel*100)
			}
		}
	}
	// BigQuery off-chip suffers from its large payloads: off-chip speedup
	// far below on-chip (the paper reports an outright slowdown).
	bqFinal := fig[taxonomy.BigQuery][len(fig[taxonomy.BigQuery])-1].Speedups
	if bqFinal[model.SyncOffChip] >= bqFinal[model.SyncOnChip]*0.9 {
		t.Errorf("BigQuery off-chip %.3f not penalized vs on-chip %.3f",
			bqFinal[model.SyncOffChip], bqFinal[model.SyncOnChip])
	}
}

func TestFigure14Shape(t *testing.T) {
	ch := testChar(t)
	fig, err := Figure14(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range taxonomy.Platforms() {
		pts := fig[p]
		if len(pts) != len(SetupSweep) {
			t.Fatalf("%s: %d points", p, len(pts))
		}
		// Sync speedup collapses as setup grows; at 100s setup it is ~0.
		lastSync := pts[len(pts)-1].Speedups[model.SyncOnChip]
		if lastSync > 0.01 {
			t.Errorf("%s: sync speedup %.4f at 100s setup", p, lastSync)
		}
		// Sync is monotone non-increasing in setup time.
		for i := 1; i < len(pts); i++ {
			if pts[i].Speedups[model.SyncOnChip] > pts[i-1].Speedups[model.SyncOnChip]+1e-9 {
				t.Errorf("%s: sync not monotone in setup", p)
			}
		}
		// Async tolerates setup far better than sync at moderate setups.
		mid := pts[3] // 1e-2 s
		if mid.Speedups[model.AsyncOnChip] < mid.Speedups[model.SyncOnChip] {
			t.Errorf("%s: async below sync at 10ms setup", p)
		}
	}
}

func TestFigure15Shape(t *testing.T) {
	ch := testChar(t)
	fig, err := Figure15(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range taxonomy.Platforms() {
		rows := fig[p]
		if len(rows) != 6 {
			t.Fatalf("%s: %d rows", p, len(rows))
		}
		comb := rows[len(rows)-1]
		if comb.Label != "Combined" {
			t.Fatalf("%s: last row %q", p, comb.Label)
		}
		// Combined beats every individual accelerator.
		for _, r := range rows[:5] {
			if comb.Sync < r.Sync-1e-9 {
				t.Errorf("%s: combined %.3f < %s %.3f", p, comb.Sync, r.Label, r.Sync)
			}
		}
		// Holistic sync acceleration lands in a plausible band around the
		// paper's 1.5-1.7x. Our simulated BigQuery is more
		// dependency-bound than production (see EXPERIMENTS.md), so its
		// Amdahl ceiling is lower.
		lo := 1.15
		if p == taxonomy.BigQuery {
			lo = 1.02
		}
		if comb.Sync < lo || comb.Sync > 2.5 {
			t.Errorf("%s: combined sync %.2f outside band [%.2f, 2.5]", p, comb.Sync, lo)
		}
		// Chaining adds little (paper: limited benefit, mem-alloc
		// bottleneck).
		if comb.Chained < comb.Sync-1e-9 {
			t.Errorf("%s: chained %.3f below sync %.3f", p, comb.Chained, comb.Sync)
		}
		if comb.Chained > comb.Sync*1.4 {
			t.Errorf("%s: chained %.3f implausibly above sync %.3f", p, comb.Chained, comb.Sync)
		}
	}
}

func TestTable8Experiment(t *testing.T) {
	t8, err := Table8(DefaultTable8Config())
	if err != nil {
		t.Fatal(err)
	}
	if t8.DiffFrac > 0.15 {
		t.Errorf("model vs measured difference = %.1f%%", t8.DiffFrac*100)
	}
	out := RenderTable8(t8)
	if !strings.Contains(out, "Measured chained execution") {
		t.Error("render missing measured row")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	ch := testChar(t)
	fig9, err := Figure9(ch)
	if err != nil {
		t.Fatal(err)
	}
	fig10, err := Figure10(ch)
	if err != nil {
		t.Fatal(err)
	}
	fig13, err := Figure13(ch)
	if err != nil {
		t.Fatal(err)
	}
	fig14, err := Figure14(ch)
	if err != nil {
		t.Fatal(err)
	}
	fig15, err := Figure15(ch)
	if err != nil {
		t.Fatal(err)
	}
	outputs := []string{
		RenderTable1(Table1(ch)),
		RenderFigure2(Figure2(ch)),
		RenderFigure3(Figure3(ch)),
		RenderFigure4(Figure4(ch)),
		RenderFigure5(Figure5(ch)),
		RenderFigure6(Figure6(ch)),
		RenderTables67(ch),
		RenderFigure9(fig9),
		RenderFigure10(fig10),
		RenderFigure13(fig13),
		RenderFigure14(fig14),
		RenderFigure15(fig15),
	}
	for i, out := range outputs {
		if len(out) < 50 {
			t.Errorf("renderer %d produced %d bytes", i, len(out))
		}
		if strings.Contains(out, "NaN") || strings.Contains(out, "%!") {
			t.Errorf("renderer %d produced bad formatting:\n%s", i, out)
		}
	}
	for _, p := range taxonomy.Platforms() {
		if !strings.Contains(outputs[1], string(p)) {
			t.Errorf("figure 2 render missing %s", p)
		}
	}
}

func TestAblations(t *testing.T) {
	ch := testChar(t)
	// Precedence ablation on BigQuery, whose parallel workers genuinely
	// overlap CPU with IO: CPU-first must report strictly more CPU.
	paper, cpuFirst := OverlapPrecedenceAblation(ch, taxonomy.BigQuery)
	if cpuFirst <= paper {
		t.Errorf("cpu-first precedence (%.3f) not above paper precedence (%.3f)", cpuFirst, paper)
	}
	// Chain imbalance: balanced chain matches async; imbalance degrades
	// toward the bottleneck but never below 1x of async... it stays >= 1.
	pts := ChainImbalanceAblation([]float64{1, 2, 4, 8})
	if math.Abs(pts[0].ChainedVsAsync-1) > 0.001 {
		t.Errorf("balanced chain vs async = %.4f", pts[0].ChainedVsAsync)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ChainedVsAsync < pts[i-1].ChainedVsAsync-1e-9 {
			t.Error("chained/async should not improve with imbalance")
		}
	}
	// Payload sweep: off-chip degrades with size; on-chip constant.
	sys, err := ch.DeriveSystem(taxonomy.Spanner)
	if err != nil {
		t.Fatal(err)
	}
	sweep := PayloadSweepAblation(sys, []float64{0, 1e6, 1e8, 1e10})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].OffChip > sweep[i-1].OffChip+1e-9 {
			t.Error("off-chip speedup should fall with payload")
		}
		if math.Abs(sweep[i].OnChip-sweep[0].OnChip) > 1e-9 {
			t.Error("on-chip speedup should not depend on payload")
		}
	}
	if sweep[len(sweep)-1].OffChip >= 1 {
		t.Errorf("10GB payload off-chip speedup = %.3f, want < 1", sweep[len(sweep)-1].OffChip)
	}
	// Varied speedups: results differ from lockstep but stay in range.
	vr := VariedSpeedupAblation(sys)
	if vr.Lockstep <= 1 || vr.Varied <= 1 {
		t.Errorf("varied ablation: %+v", vr)
	}
	// Sampling-rate ablation: higher rates stay near the full-sample value.
	rates := SamplingRateAblation(ch, taxonomy.Spanner, []int{1, 5, 20})
	full := rates[1]
	if full <= 0 {
		t.Fatal("no full-rate value")
	}
	if math.Abs(rates[5]-full) > 0.15 {
		t.Errorf("1/5 sampling off by %.3f", math.Abs(rates[5]-full))
	}
}

func TestChainHandoffAblation(t *testing.T) {
	handoffs := []time.Duration{0, 500 * time.Nanosecond, 5 * time.Microsecond}
	res, err := ChainHandoffAblation(3, 200, handoffs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	// Chained time grows with handoff cost.
	if !(res[handoffs[0]] < res[handoffs[1]] && res[handoffs[1]] < res[handoffs[2]]) {
		t.Fatalf("handoff sweep not monotone: %v", res)
	}
	if _, err := ChainHandoffAblation(3, 0, handoffs); err == nil {
		t.Fatal("zero corpus accepted")
	}
}
