package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/check"
	"hyperprof/internal/faults"
	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file is the safety torture study: each platform runs a contended
// read/write workload with history recording enabled, first fault-free (to
// calibrate the horizon and prove the checkers pass on a clean run), then
// once per seed under an injected fault schedule. After every run the
// recorded history is checked for linearizability, the structural violations
// are drained, and the platform's standing invariants (consensus, tablets,
// shuffle, DFS replica consistency) are asserted.

// SafetyViolation is one checker finding, tagged with the seed that
// reproduces it (rerun the study with that seed to replay the violating
// execution bit-identically).
type SafetyViolation struct {
	Seed uint64
	check.Violation
}

// SafetyRow summarizes one (platform, seed) torture run.
type SafetyRow struct {
	Platform taxonomy.Platform
	Seed     uint64
	// Faulted distinguishes torture runs from the calibration run.
	Faulted bool
	// Ops and Errors count issued operations and the subset that failed
	// (errors are availability loss, not safety loss — the checkers decide
	// what counts as a violation).
	Ops, Errors int
	// Elapsed is the virtual time to drain the workload.
	Elapsed time.Duration
	// FaultsApplied counts fault events that fired.
	FaultsApplied int
	// Violations counts checker findings for this run.
	Violations int
}

// Safety holds the full study.
type Safety struct {
	Cfg        StudyConfig
	Rows       []SafetyRow
	Violations []SafetyViolation
	// Marks carries one timeline mark per violation (plus nothing else), for
	// Chrome-trace export of the violating run.
	Marks map[taxonomy.Platform][]trace.Mark
}

// Ok reports whether the study finished with zero violations.
func (s *Safety) Ok() bool { return len(s.Violations) == 0 }

// safetyArm is one completed (platform, seed) torture run, self-contained so
// arms can execute on concurrent goroutines — or in worker subprocesses —
// and merge afterwards in fixed (platform, seed) order. Fields are exported
// because the arm is the safety study's wire type: the exec backend ships it
// between worker and coordinator as JSON.
type safetyArm struct {
	Row        SafetyRow
	Violations []SafetyViolation
	Marks      []trace.Mark
}

// safetyUnitKind tags safety arms in the backend work-unit registry.
const safetyUnitKind = "safety/arm"

// safetyUnit is the serialized form of one (platform, seed, horizon) arm.
type safetyUnit struct {
	Platform taxonomy.Platform `json:"platform"`
	Seed     uint64            `json:"seed"`
	Horizon  time.Duration     `json:"horizon"`
}

// runSafetyUnit executes one safety arm from its wire form (exec backend
// workers and the pool backend both land here).
func runSafetyUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u safetyUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode safety unit: %w", err)
	}
	s := &Safety{Cfg: cfg}
	return s.runOne(u.Platform, u.Seed, u.Horizon)
}

// Safety runs the torture harness: per platform, one fault-free calibration
// run (whose elapsed time becomes the fault-schedule horizon) followed by
// Check.Seeds faulted runs. Equal configs replay bit-identically, and the
// parallel runner fans the arms out in two waves — the three calibration
// runs, then every faulted (platform, seed) arm — merging results in the
// same order the sequential loop produced.
func (cfg StudyConfig) Safety() (*Safety, error) {
	if cfg.Clients <= 0 || cfg.Check.Seeds <= 0 || cfg.Check.HotRows <= 0 {
		return nil, fmt.Errorf("experiments: invalid safety config %+v", cfg)
	}
	s := &Safety{Cfg: cfg, Marks: map[taxonomy.Platform][]trace.Mark{}}
	platforms := taxonomy.Platforms()
	calJobs := make([]func() (safetyArm, error), len(platforms))
	calUnits := make([]any, len(platforms))
	for i, p := range platforms {
		p := p
		calJobs[i] = func() (safetyArm, error) { return s.runOne(p, cfg.Seed, 0) }
		calUnits[i] = safetyUnit{Platform: p, Seed: cfg.Seed}
	}
	cals, err := runStudy(cfg, safetyUnitKind, calUnits, calJobs)
	if err != nil {
		return nil, err
	}
	var tortureJobs []func() (safetyArm, error)
	var tortureUnits []any
	for i, p := range platforms {
		horizon := cals[i].Row.Elapsed
		for j := 0; j < cfg.Check.Seeds; j++ {
			p, seed := p, cfg.Seed+uint64(j)
			tortureJobs = append(tortureJobs, func() (safetyArm, error) {
				return s.runOne(p, seed, horizon)
			})
			tortureUnits = append(tortureUnits, safetyUnit{Platform: p, Seed: seed, Horizon: horizon})
		}
	}
	tortured, err := runStudy(cfg, safetyUnitKind, tortureUnits, tortureJobs)
	if err != nil {
		return nil, err
	}
	for i, p := range platforms {
		s.merge(p, cals[i])
		for j := 0; j < cfg.Check.Seeds; j++ {
			s.merge(p, tortured[i*cfg.Check.Seeds+j])
		}
	}
	return s, nil
}

// merge folds one arm's results into the study. It is the only place study
// state mutates, and it runs sequentially after the arms complete.
func (s *Safety) merge(p taxonomy.Platform, arm safetyArm) {
	s.Rows = append(s.Rows, arm.Row)
	s.Violations = append(s.Violations, arm.Violations...)
	s.Marks[p] = append(s.Marks[p], arm.Marks...)
}

// runOne runs one (platform, seed) arm. A zero horizon is the fault-free
// calibration run; a positive horizon is a torture run with a fault schedule
// spanning it. The arm builds its own environment and kernel and touches no
// study state, so distinct arms may run concurrently.
func (s *Safety) runOne(p taxonomy.Platform, seed uint64, horizon time.Duration) (safetyArm, error) {
	switch p {
	case taxonomy.Spanner:
		return s.runSpanner(seed, horizon)
	case taxonomy.BigTable:
		return s.runBigTable(seed, horizon)
	case taxonomy.BigQuery:
		return s.runBigQuery(seed, horizon)
	default:
		return safetyArm{}, fmt.Errorf("experiments: unknown platform %q", p)
	}
}

// scheduleFor converts the fractional fault rates into an absolute schedule
// over the calibrated horizon (faults stop arriving at 80% so recoveries
// land while the workload drains).
func (s *Safety) scheduleFor(horizon time.Duration, seed uint64, stragglerProb float64) faults.ScheduleConfig {
	return faults.ScheduleConfig{
		Horizon:         time.Duration(float64(horizon) * 0.8),
		MTBF:            time.Duration(float64(horizon) * s.Cfg.Faults.MTBFFrac),
		MTTR:            time.Duration(float64(horizon) * s.Cfg.Faults.MTTRFrac),
		StragglerProb:   stragglerProb,
		StragglerFactor: s.Cfg.Faults.StragglerFactor,
		NetDegradeProb:  s.Cfg.Faults.NetDegradeProb,
		NetExtraDelay:   s.Cfg.Faults.NetExtraDelay,
		NetDropProb:     s.Cfg.Faults.NetDropProb,
		Seed:            seed,
	}
}

// drive launches the closed-loop torture clients and runs the simulation to
// completion. op performs one operation; it gets the client's private RNG
// and (client, op) indices so it can build globally unique write values.
func (s *Safety) drive(env *platform.Env, name string, seed uint64, totalOps int,
	op func(p *sim.Proc, rng *stats.RNG, client, i int) error) (ops, errs int, elapsed time.Duration) {
	clients := s.Cfg.Clients
	per := totalOps / clients
	if per < 1 {
		per = 1
	}
	root := stats.NewRNG(seed ^ 0x53414645) // "SAFE"
	bar := sim.NewBarrier(env.K, clients)
	for c := 0; c < clients; c++ {
		c := c
		rng := root.Fork()
		env.K.Go(fmt.Sprintf("%s-torture-c%d", name, c), func(p *sim.Proc) {
			defer bar.Done()
			for i := 0; i < per; i++ {
				ops++
				if err := op(p, rng, c, i); err != nil {
					errs++
				}
			}
		})
	}
	env.K.Go(name+"-measure", func(p *sim.Proc) {
		p.WaitBarrier(bar)
		elapsed = p.Now()
	})
	env.K.Run()
	return ops, errs, elapsed
}

// collect drains every checker after a run — linearizability over the
// recorded history, structural violations, and the standing invariants —
// tagging findings with platform and seed. It returns the arm-local findings
// and marks; the caller folds them into the study during the ordered merge.
func collect(p taxonomy.Platform, seed uint64, h *check.History, reg *check.Registry, at time.Duration) ([]SafetyViolation, []trace.Mark) {
	var vs []check.Violation
	vs = append(vs, h.CheckLinearizability()...)
	vs = append(vs, h.CheckExternalConsistency()...)
	vs = append(vs, h.Structural()...)
	vs = append(vs, reg.Check(at)...)
	var out []SafetyViolation
	var marks []trace.Mark
	for _, v := range vs {
		v.Platform = string(p)
		out = append(out, SafetyViolation{Seed: seed, Violation: v})
		marks = append(marks, trace.Mark{
			At:   v.At,
			Name: fmt.Sprintf("VIOLATION %s %s (seed %d)", v.Kind, v.Key, seed),
		})
	}
	return out, marks
}

func (s *Safety) registerNet(eng *faults.Engine, env *platform.Env, seed uint64) {
	eng.RegisterNetwork(func(extra time.Duration, drop float64) {
		env.Net.Degrade(extra, drop, seed^0x4e455444) // "NETD"
	}, env.Net.Restore)
}

func (s *Safety) runSpanner(seed uint64, horizon time.Duration) (safetyArm, error) {
	env := platform.NewEnv(seed, 1)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	scfg := spanner.DefaultConfig()
	scfg.RPC = resilienceRPCPolicy()
	db, err := spanner.New(env, scfg)
	if err != nil {
		return safetyArm{}, err
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	reg := &check.Registry{}
	db.RegisterInvariants(reg)
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		// Two replicas per group are injectable. Overlapping windows can take
		// a group below quorum — operations then fail with ErrNoQuorum, which
		// is availability loss the checker tolerates; electing or serving
		// from a minority would be the safety loss it does not.
		for g := 0; g < scfg.Groups; g++ {
			for _, region := range []int{g % scfg.Regions, (g + 1) % scfg.Regions} {
				g, region := g, region
				eng.Register(fmt.Sprintf("spanner/g%d/r%d", g, region), faults.Actions{
					Crash:       func() { _ = db.CrashReplica(g, region) },
					Recover:     func() { _ = db.RestartReplica(g, region) },
					SetSlowdown: func(f float64) { _ = db.SetReplicaSlowdown(g, region, f) },
				})
			}
		}
		s.registerNet(eng, env, seed)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), s.scheduleFor(horizon, seed, s.Cfg.Faults.StragglerProb)))
	}
	ops, errs, elapsed := s.drive(env, "spanner", seed, s.Cfg.Ops.Spanner,
		func(p *sim.Proc, rng *stats.RNG, c, i int) error {
			g, r := rng.Intn(scfg.Groups), rng.Intn(s.Cfg.Check.HotRows)
			if rng.Bool(0.5) {
				_, err := db.Read(p, nil, g, r, rng.Bool(0.15))
				return err
			}
			return db.Commit(p, nil, g, r, []byte(fmt.Sprintf("s%d/c%d/op%d", seed, c, i)))
		})
	arm := safetyArm{Row: SafetyRow{Platform: taxonomy.Spanner, Seed: seed, Faulted: eng != nil,
		Ops: ops, Errors: errs, Elapsed: elapsed}}
	if eng != nil {
		arm.Row.FaultsApplied = len(eng.Applied)
	}
	arm.Violations, arm.Marks = collect(taxonomy.Spanner, seed, h, reg, env.K.Now())
	arm.Row.Violations = len(arm.Violations)
	return arm, nil
}

func (s *Safety) runBigTable(seed uint64, horizon time.Duration) (safetyArm, error) {
	env := platform.NewEnv(seed+1000, 1)
	bcfg := bigtable.DefaultConfig()
	db, err := bigtable.New(env, bcfg)
	if err != nil {
		return safetyArm{}, err
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	reg := &check.Registry{}
	db.RegisterInvariants(reg)
	reg.Register("bigtable-dfs", db.DFS().CheckReplicaConsistency)
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		// Every other tablet server plus one chunkserver, as in the
		// resilience study: crashes force tablet reassignment and commit-log
		// replay, the exact recovery paths the checkers guard.
		for i := 0; i < bcfg.TabletServers; i += 2 {
			i := i
			eng.Register(fmt.Sprintf("bigtable/ts%d", i), faults.Actions{
				Crash:   func() { _ = db.FailTabletServer(i) },
				Recover: func() { _ = db.RecoverTabletServer(i) },
			})
		}
		eng.Register("bigtable/cs0", faults.Actions{
			Crash:   func() { _ = db.DFS().FailServer(0) },
			Recover: func() { _ = db.DFS().RecoverServer(0) },
		})
		s.registerNet(eng, env, seed)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), s.scheduleFor(horizon, seed+1000, 0)))
	}
	ops, errs, elapsed := s.drive(env, "bigtable", seed, s.Cfg.Ops.BigTable,
		func(p *sim.Proc, rng *stats.RNG, c, i int) error {
			t, r := rng.Intn(bcfg.Tablets), rng.Intn(s.Cfg.Check.HotRows)
			if rng.Bool(0.5) {
				_, err := db.Get(p, nil, t, r)
				return err
			}
			return db.Put(p, nil, t, r, []byte(fmt.Sprintf("s%d/c%d/op%d", seed, c, i)))
		})
	arm := safetyArm{Row: SafetyRow{Platform: taxonomy.BigTable, Seed: seed, Faulted: eng != nil,
		Ops: ops, Errors: errs, Elapsed: elapsed}}
	if eng != nil {
		arm.Row.FaultsApplied = len(eng.Applied)
	}
	arm.Violations, arm.Marks = collect(taxonomy.BigTable, seed, h, reg, env.K.Now())
	arm.Row.Violations = len(arm.Violations)
	return arm, nil
}

func (s *Safety) runBigQuery(seed uint64, horizon time.Duration) (safetyArm, error) {
	env := platform.NewEnv(seed+2000, 1)
	qcfg := bigquery.DefaultConfig()
	qcfg.RPC = resilienceRPCPolicy()
	e, err := bigquery.New(env, qcfg)
	if err != nil {
		return safetyArm{}, err
	}
	h := check.NewHistory(env.K)
	e.SetRecorder(h)
	reg := &check.Registry{}
	e.RegisterInvariants(reg)
	reg.Register("bigquery-dfs", e.DFS().CheckReplicaConsistency)
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		for i := 0; i < qcfg.ShuffleServers; i += 2 {
			i := i
			eng.Register(fmt.Sprintf("bigquery/ss%d", i), faults.Actions{
				Crash:       func() { _ = e.FailShuffleServer(i) },
				Recover:     func() { _ = e.RecoverShuffleServer(i) },
				SetSlowdown: func(f float64) { _ = e.SetShuffleSlowdown(i, f) },
			})
		}
		eng.Register("bigquery/cs0", faults.Actions{
			Crash:   func() { _ = e.DFS().FailServer(0) },
			Recover: func() { _ = e.DFS().RecoverServer(0) },
		})
		s.registerNet(eng, env, seed)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), s.scheduleFor(horizon, seed+2000, s.Cfg.Faults.StragglerProb)))
	}
	kinds := []bigquery.Kind{bigquery.ScanAgg, bigquery.JoinQuery}
	ops, errs, elapsed := s.drive(env, "bigquery", seed, s.Cfg.Ops.BigQuery,
		func(p *sim.Proc, rng *stats.RNG, c, i int) error {
			q := bigquery.Query{Kind: kinds[rng.Intn(len(kinds))], Threshold: int64(rng.Intn(1000))}
			_, err := e.Run(p, nil, q)
			return err
		})
	arm := safetyArm{Row: SafetyRow{Platform: taxonomy.BigQuery, Seed: seed, Faulted: eng != nil,
		Ops: ops, Errors: errs, Elapsed: elapsed}}
	if eng != nil {
		arm.Row.FaultsApplied = len(eng.Applied)
	}
	arm.Violations, arm.Marks = collect(taxonomy.BigQuery, seed, h, reg, env.K.Now())
	arm.Row.Violations = len(arm.Violations)
	return arm, nil
}

// RenderSafety renders the study as a fixed-width table followed by every
// violation in full (minimal violating histories included).
func RenderSafety(s *Safety) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Safety torture study (base seed %d, %d seeds/platform; checks: linearizability, structural, invariants)\n",
		s.Cfg.Seed, s.Cfg.Check.Seeds)
	fmt.Fprintf(&b, "%-10s %6s %-9s %6s %5s %10s %7s %10s\n",
		"platform", "seed", "arm", "ops", "errs", "elapsed", "faults", "violations")
	for _, row := range s.Rows {
		arm := "baseline"
		if row.Faulted {
			arm = "tortured"
		}
		fmt.Fprintf(&b, "%-10s %6d %-9s %6d %5d %10s %7d %10d\n",
			row.Platform, row.Seed, arm, row.Ops, row.Errors,
			row.Elapsed.Round(time.Millisecond), row.FaultsApplied, row.Violations)
	}
	if s.Ok() {
		b.WriteString("PASS: no safety violations\n")
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL: %d safety violations\n", len(s.Violations))
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "[seed %d] %s\n", v.Seed, v.Violation.String())
	}
	return b.String()
}
