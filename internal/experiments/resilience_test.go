package experiments

import (
	"strings"
	"testing"

	"hyperprof/internal/taxonomy"
)

// smallResilienceConfig keeps the study quick while still applying faults on
// every platform.
func smallResilienceConfig() StudyConfig {
	cfg := DefaultResilienceStudyConfig()
	cfg.Ops = PlatformOps{Spanner: 400, BigTable: 400, BigQuery: 32}
	// Shorter runs need denser faults to guarantee some fire on each arm.
	cfg.Faults.MTBFFrac = 0.3
	return cfg
}

func TestResilienceStudyAvailabilityAndFaults(t *testing.T) {
	r, err := smallResilienceConfig().Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(taxonomy.Platforms()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, p := range taxonomy.Platforms() {
		base, faulted := r.Row(p, false), r.Row(p, true)
		if base == nil || faulted == nil {
			t.Fatalf("%s: missing arm", p)
		}
		if base.Errors != 0 {
			t.Errorf("%s baseline: %d errors", p, base.Errors)
		}
		if base.FaultsApplied != 0 {
			t.Errorf("%s baseline applied %d faults", p, base.FaultsApplied)
		}
		if faulted.FaultsApplied == 0 {
			t.Errorf("%s faulted arm applied no faults", p)
		}
		// The acceptance bar: at the documented default fault rates every
		// platform completes its workload above 99% availability.
		if faulted.Availability < 0.99 {
			t.Errorf("%s availability = %.4f, want >= 0.99", p, faulted.Availability)
		}
		if faulted.Ops != base.Ops {
			t.Errorf("%s: faulted arm completed %d ops, baseline %d", p, faulted.Ops, base.Ops)
		}
		if len(r.Marks[p]) != faulted.FaultsApplied {
			t.Errorf("%s: %d marks for %d applied faults", p, len(r.Marks[p]), faulted.FaultsApplied)
		}
		if len(r.Traces[p]) == 0 {
			t.Errorf("%s: no faulted-arm traces", p)
		}
	}
}

func TestResilienceStudyDeterministic(t *testing.T) {
	cfg := smallResilienceConfig()
	a, err := cfg.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := RenderResilience(a), RenderResilience(b)
	if ra != rb {
		t.Fatalf("same config, different reports:\n--- a ---\n%s--- b ---\n%s", ra, rb)
	}
	for _, p := range taxonomy.Platforms() {
		fa, fb := a.Row(p, true), b.Row(p, true)
		if len(fa.FaultEvents) != len(fb.FaultEvents) {
			t.Fatalf("%s: fault counts differ: %d vs %d", p, len(fa.FaultEvents), len(fb.FaultEvents))
		}
		for i := range fa.FaultEvents {
			if fa.FaultEvents[i] != fb.FaultEvents[i] {
				t.Fatalf("%s fault %d differs: %+v vs %+v", p, i, fa.FaultEvents[i], fb.FaultEvents[i])
			}
		}
	}
}

func TestResilienceStudyValidation(t *testing.T) {
	cfg := smallResilienceConfig()
	cfg.Clients = 0
	if _, err := cfg.Resilience(); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestRenderResilienceShape(t *testing.T) {
	r, err := smallResilienceConfig().Resilience()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderResilience(r)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + one line per row.
	if len(lines) != 2+len(r.Rows) {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, want := range []string{"baseline", "faulted", "Spanner", "BigTable", "BigQuery"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
