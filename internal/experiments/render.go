package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hyperprof/internal/model"
	"hyperprof/internal/soc"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file renders each experiment's output as the textual equivalent of
// the paper's table or figure, for the command-line tools and EXPERIMENTS.md.

// RenderTable1 renders the storage-to-storage ratios.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Storage-to-Storage Ratios (RAM PiB : SSD PiB : HDD PiB)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-9s %s\n", r.Platform, r.Rendered)
	}
	return b.String()
}

// RenderFigure2 renders the end-to-end breakdown per platform and group.
func RenderFigure2(fig map[taxonomy.Platform][]trace.GroupStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: End-to-End Execution Time Breakdown\n")
	fmt.Fprintf(&b, "  %-9s %-18s %7s %6s %6s %7s\n", "Platform", "Group", "Queries", "CPU%", "IO%", "Remote%")
	for _, p := range taxonomy.Platforms() {
		for _, g := range fig[p] {
			fmt.Fprintf(&b, "  %-9s %-18s %6.1f%% %5.1f%% %5.1f%% %6.1f%%\n",
				p, g.Group, g.QueryFrac*100, g.CPUFrac*100, g.IOFrac*100, g.RemoteFrac*100)
		}
	}
	return b.String()
}

// RenderFigure3 renders the broad cycle breakdown.
func RenderFigure3(fig map[taxonomy.Platform]map[taxonomy.Broad]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: High-Level Application-Level Cycle Breakdown\n")
	fmt.Fprintf(&b, "  %-9s %13s %16s %12s\n", "Platform", "Core Compute", "Datacenter Tax", "System Tax")
	for _, p := range taxonomy.Platforms() {
		m := fig[p]
		fmt.Fprintf(&b, "  %-9s %12.1f%% %15.1f%% %11.1f%%\n",
			p, m[taxonomy.CoreCompute]*100, m[taxonomy.DatacenterTax]*100, m[taxonomy.SystemTax]*100)
	}
	return b.String()
}

// renderCategoryFig renders a per-category breakdown figure.
func renderCategoryFig(title string, fig map[taxonomy.Platform]map[taxonomy.Category]float64, order func(taxonomy.Platform) []taxonomy.Category) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, p := range taxonomy.Platforms() {
		fmt.Fprintf(&b, "  %s:\n", p)
		for _, cat := range order(p) {
			if f, ok := fig[p][cat]; ok {
				fmt.Fprintf(&b, "    %-20s %5.1f%%\n", cat, f*100)
			}
		}
	}
	return b.String()
}

// RenderFigure4 renders the core-compute breakdown.
func RenderFigure4(fig map[taxonomy.Platform]map[taxonomy.Category]float64) string {
	return renderCategoryFig("Figure 4: Core Compute Execution Breakdown", fig, taxonomy.CoreComputeFor)
}

// RenderFigure5 renders the datacenter-tax breakdown.
func RenderFigure5(fig map[taxonomy.Platform]map[taxonomy.Category]float64) string {
	return renderCategoryFig("Figure 5: Datacenter Tax Execution Breakdown", fig,
		func(taxonomy.Platform) []taxonomy.Category { return taxonomy.DatacenterTaxes() })
}

// RenderFigure6 renders the system-tax breakdown.
func RenderFigure6(fig map[taxonomy.Platform]map[taxonomy.Category]float64) string {
	return renderCategoryFig("Figure 6: System Tax Execution Breakdown", fig,
		func(taxonomy.Platform) []taxonomy.Category { return taxonomy.SystemTaxes() })
}

// RenderTables67 renders Tables 6 and 7 together.
func RenderTables67(ch *Characterization) string {
	var b strings.Builder
	t6 := Table6(ch)
	fmt.Fprintf(&b, "Table 6: Platform IPC and MPKI Statistics\n")
	fmt.Fprintf(&b, "  %-9s %5s %5s %5s %5s %5s %5s %7s\n", "Platform", "IPC", "BR", "L1I", "L2I", "LLC", "ITLB", "DTLBLD")
	for _, p := range taxonomy.Platforms() {
		s := t6[p]
		fmt.Fprintf(&b, "  %-9s %5.2f %5.1f %5.1f %5.1f %5.1f %5.2f %7.1f\n",
			p, s.IPC, s.BR, s.L1I, s.L2I, s.LLC, s.ITLB, s.DTLBLD)
	}
	t7 := Table7(ch)
	fmt.Fprintf(&b, "\nTable 7: IPC and MPKI by Broad Class (CC/DCT/ST)\n")
	fmt.Fprintf(&b, "  %-9s %-16s %5s %5s %5s %5s %5s %5s %7s\n", "Platform", "Class", "IPC", "BR", "L1I", "L2I", "LLC", "ITLB", "DTLBLD")
	for _, p := range taxonomy.Platforms() {
		for _, broad := range taxonomy.Broads() {
			s := t7[p][broad]
			fmt.Fprintf(&b, "  %-9s %-16s %5.2f %5.1f %5.1f %5.1f %5.1f %5.2f %7.1f\n",
				p, broad, s.IPC, s.BR, s.L1I, s.L2I, s.LLC, s.ITLB, s.DTLBLD)
		}
	}
	return b.String()
}

// RenderFigure9 renders the synchronous on-chip upper-bound sweep.
func RenderFigure9(fig map[taxonomy.Platform][]Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Synchronous On-Chip Upper Bound (end-to-end speedup)\n")
	fmt.Fprintf(&b, "  %-9s %8s %12s %14s\n", "Platform", "Accel x", "With Dep", "Without Dep")
	for _, p := range taxonomy.Platforms() {
		for _, pt := range fig[p] {
			fmt.Fprintf(&b, "  %-9s %8.0f %11.2fx %13.2fx\n", p, pt.Speedup, pt.WithDep, pt.WithoutDep)
		}
	}
	return b.String()
}

// RenderFigure10 renders the grouped upper-bound sweep.
func RenderFigure10(fig map[taxonomy.Platform][]Fig10Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: Grouped Synchronous On-Chip Upper Bounds (remote work and IO removed)\n")
	for _, p := range taxonomy.Platforms() {
		for _, s := range fig[p] {
			fmt.Fprintf(&b, "  %-9s %-18s", p, s.Group)
			for _, pt := range s.Points {
				fmt.Fprintf(&b, " %0.0fx:%.2f", pt.Speedup, pt.WithoutDep)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// RenderFigure13 renders the accelerator feature upper bounds.
func RenderFigure13(fig map[taxonomy.Platform][]Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: Accelerator Feature Upper Bounds (additive accelerators, %dx each)\n", Fig13Speedup)
	for _, p := range taxonomy.Platforms() {
		fmt.Fprintf(&b, "  %s:\n", p)
		fmt.Fprintf(&b, "    %-22s %12s %12s %12s %12s\n", "Accelerated set",
			model.SyncOffChip, model.SyncOnChip, model.AsyncOnChip, model.ChainedOnChip)
		for _, row := range fig[p] {
			fmt.Fprintf(&b, "    %-22s %11.2fx %11.2fx %11.2fx %11.2fx\n", row.Label,
				row.Speedups[model.SyncOffChip], row.Speedups[model.SyncOnChip],
				row.Speedups[model.AsyncOnChip], row.Speedups[model.ChainedOnChip])
		}
	}
	return b.String()
}

// RenderFigure14 renders the setup-time sweep.
func RenderFigure14(fig map[taxonomy.Platform][]Fig14Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: Setup Time Sweep (8x per accelerator)\n")
	for _, p := range taxonomy.Platforms() {
		fmt.Fprintf(&b, "  %s:\n", p)
		fmt.Fprintf(&b, "    %-10s %12s %12s %12s %12s\n", "Setup (s)",
			model.SyncOffChip, model.SyncOnChip, model.AsyncOnChip, model.ChainedOnChip)
		for _, pt := range fig[p] {
			fmt.Fprintf(&b, "    %-10.0e %11.3fx %11.3fx %11.3fx %11.3fx\n", pt.SetupSeconds,
				pt.Speedups[model.SyncOffChip], pt.Speedups[model.SyncOnChip],
				pt.Speedups[model.AsyncOnChip], pt.Speedups[model.ChainedOnChip])
		}
	}
	return b.String()
}

// RenderFigure15 renders the prior-accelerator comparison.
func RenderFigure15(fig map[taxonomy.Platform][]Fig15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: Prior Accelerator Comparison (Sync/Chained + On-Chip)\n")
	for _, p := range taxonomy.Platforms() {
		fmt.Fprintf(&b, "  %s:\n", p)
		for _, row := range fig[p] {
			fmt.Fprintf(&b, "    %-24s sync %5.2fx  chained %5.2fx\n", row.Label, row.Sync, row.Chained)
		}
	}
	return b.String()
}

// RenderTable8 renders the model-validation table.
func RenderTable8(t8 *soc.Table8) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: Model Validation Results (%d messages, %d wire bytes)\n", t8.Messages, t8.WireBytes)
	fmt.Fprintf(&b, "  Measured SoC results\n")
	fmt.Fprintf(&b, "    Proto. Ser.  t_sub %10v   s_sub %6.1fx   t_setup %10v\n", t8.ProtoSubTime, t8.ProtoSpeedup, t8.ProtoSetup)
	fmt.Fprintf(&b, "    SHA3         t_sub %10v   s_sub %6.1fx   t_setup %10v\n", t8.SHA3SubTime, t8.SHA3Speedup, t8.SHA3Setup)
	fmt.Fprintf(&b, "    Non-Accel. CPU t_sub %v\n", t8.NonAccelCPU)
	fmt.Fprintf(&b, "    Proto. Ser./SHA3 B_i = 0, t_dep = 0 (on-chip, no IO)\n")
	fmt.Fprintf(&b, "    Measured chained execution t'_e2e  %v\n", t8.MeasuredChained)
	fmt.Fprintf(&b, "  Model estimated results\n")
	fmt.Fprintf(&b, "    Modeled chained execution  t'_e2e  %v\n", t8.ModeledChained)
	fmt.Fprintf(&b, "  Difference: %.1f%% (paper reports 6.1%%)\n", t8.DiffFrac*100)
	return b.String()
}

// SortedCategories returns a breakdown's categories sorted by descending
// fraction (for reports).
func SortedCategories(m map[taxonomy.Category]float64) []taxonomy.Category {
	cats := make([]taxonomy.Category, 0, len(m))
	for c := range m {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if m[cats[i]] != m[cats[j]] {
			return m[cats[i]] > m[cats[j]]
		}
		return cats[i] < cats[j]
	})
	return cats
}

// RenderTables23 renders the taxonomy definitions of Tables 2 and 3.
func RenderTables23() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Datacenter Tax Category Descriptions\n")
	for _, c := range taxonomy.DatacenterTaxes() {
		fmt.Fprintf(&b, "  %-20s %s\n", c, taxonomy.Descriptions[c])
	}
	fmt.Fprintf(&b, "\nTable 3: System Tax Category Descriptions\n")
	for _, c := range taxonomy.SystemTaxes() {
		fmt.Fprintf(&b, "  %-20s %s\n", c, taxonomy.Descriptions[c])
	}
	return b.String()
}
