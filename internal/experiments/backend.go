package experiments

// This file abstracts study execution behind the Backend interface. Every
// study's arms are independent deterministic simulations, so the only thing
// a backend decides is *where* an arm computes — never what it computes.
// Two implementations exist:
//
//   - PoolBackend runs work units on the in-process goroutine pool
//     (runner.go), exactly like the legacy path but through the serialized
//     unit registry, so the wire representation is exercised without
//     spawning processes.
//   - ExecBackend partitions units across `hyperprof -worker` subprocesses
//     via internal/dispatch, which is what makes 10k-seed safety tortures
//     and full design-space sweeps practical: each worker is a fresh
//     address space, so the study's memory high-water mark stays flat and a
//     crashed arm cannot take the coordinator down.
//
// The determinism invariant extends across backends: a study's exported
// bytes are identical whether its arms ran sequentially, on the goroutine
// pool, or across worker processes. The fixed-order merge already
// guarantees this for goroutines; for processes it additionally requires
// that every remotable arm result survives a JSON round trip bit-exactly
// (encoding/json round-trips float64, time.Duration and nil-vs-empty slices
// faithfully; trace.Trace carries its unexported sampling state through
// custom JSON). The cross-backend tests pin the invariant byte-for-byte.
//
// Not every study is remotable. The characterization (and the observability
// study riding on it) hands live simulator state — kernels, profilers,
// tracers, storage inventories — straight to the figure extractors; there
// is no wire form of a platformRun, so those studies always execute
// in-process regardless of the configured backend. Safety, resilience,
// latency and overload arms condense to plain data and ship fine.

import (
	"encoding/json"
	"fmt"
	"io"

	"hyperprof/internal/dispatch"
)

// Backend names accepted by StudyConfig.Backend.
const (
	// BackendPool is the in-process goroutine worker pool.
	BackendPool = "pool"
	// BackendExec is the multi-process worker backend.
	BackendExec = "exec"
)

// Backend executes the independent work units of a study and returns their
// results in unit order. Units and results are JSON documents so the
// contract is identical in- and out-of-process; kind routes a unit to its
// registered runner. If any unit fails, the error of the lowest-indexed
// failing unit is returned, so the surfaced error is deterministic
// regardless of worker interleaving.
type Backend interface {
	// Name identifies the backend ("pool", "exec").
	Name() string
	// Run executes the units of one kind under the study config.
	Run(cfg StudyConfig, kind string, units []json.RawMessage) ([]json.RawMessage, error)
}

// ResolveBackend maps a study config to its execution backend. The empty
// string resolves to nil: run jobs directly on the in-process pool without
// the serialized unit indirection (the legacy fast path).
func ResolveBackend(cfg StudyConfig) (Backend, error) {
	switch cfg.Backend {
	case "":
		return nil, nil
	case BackendPool:
		return PoolBackend{}, nil
	case BackendExec:
		return ExecBackend{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown backend %q (want %q or %q)", cfg.Backend, BackendPool, BackendExec)
	}
}

// PoolBackend executes work units on the in-process goroutine pool. It is
// the same pool the legacy path uses; the difference is that units travel
// through the serialized registry, so selecting it proves the wire
// representation without any subprocess in the loop.
type PoolBackend struct{}

// Name implements Backend.
func (PoolBackend) Name() string { return BackendPool }

// Run implements Backend.
func (PoolBackend) Run(cfg StudyConfig, kind string, units []json.RawMessage) ([]json.RawMessage, error) {
	jobs := make([]func() (json.RawMessage, error), len(units))
	for i, u := range units {
		u := u
		jobs[i] = func() (json.RawMessage, error) { return runUnit(cfg, kind, u) }
	}
	return runJobs(cfg.Parallel, jobs)
}

// ExecBackend executes work units across hyperprof -worker subprocesses.
type ExecBackend struct{}

// Name implements Backend.
func (ExecBackend) Name() string { return BackendExec }

// Run implements Backend.
func (ExecBackend) Run(cfg StudyConfig, kind string, units []json.RawMessage) ([]json.RawMessage, error) {
	ec := cfg.Exec
	workers := ec.Workers
	if workers <= 0 {
		workers = Parallelism(cfg.Parallel)
	}
	retries := ec.Retries
	switch {
	case retries == 0:
		retries = 1
	case retries < 0:
		retries = 0
	}
	// Workers re-run units in a fresh process, so the config they see must
	// not re-select a backend: arms execute directly.
	wcfg := cfg
	wcfg.Backend = ""
	wcfg.Exec = ExecConfig{}
	pool := &dispatch.Pool{
		Command:     ec.Command,
		Env:         ec.Env,
		Workers:     workers,
		UnitTimeout: ec.UnitTimeout,
		Retries:     retries,
	}
	wire := make([]dispatch.Unit, len(units))
	for i, u := range units {
		body, err := json.Marshal(wireUnit{Cfg: wcfg, Body: u})
		if err != nil {
			return nil, fmt.Errorf("experiments: marshal %s unit %d: %w", kind, i, err)
		}
		wire[i] = dispatch.Unit{Kind: kind, Body: body}
	}
	return pool.Run(wire)
}

// wireUnit is the exec backend's frame body: the study config the arm runs
// under plus the unit's own parameters.
type wireUnit struct {
	Cfg  StudyConfig     `json:"cfg"`
	Body json.RawMessage `json:"body"`
}

// unitRunner executes one decoded work unit and returns its arm result.
type unitRunner func(cfg StudyConfig, body json.RawMessage) (any, error)

// unitRunners is the registry mapping a unit kind to the function that runs
// it. Both backends resolve kinds here: the pool backend in-process, the
// exec backend inside each worker subprocess.
var unitRunners = map[string]unitRunner{
	safetyUnitKind:     runSafetyUnit,
	latencyUnitKind:    runLatencyUnit,
	resilienceUnitKind: runResilienceUnit,
	overloadUnitKind:   runOverloadUnit,
	partitionUnitKind:  runPartitionUnit,
	fleetUnitKind:      runFleetUnit,
	pipelineUnitKind:   runPipelineUnit,
}

// runUnit resolves and executes one serialized work unit in this process.
func runUnit(cfg StudyConfig, kind string, body json.RawMessage) (json.RawMessage, error) {
	runner, ok := unitRunners[kind]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown work unit kind %q", kind)
	}
	result, err := runner(cfg, body)
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("experiments: marshal %s result: %w", kind, err)
	}
	return out, nil
}

// ServeWorker runs the worker side of the exec backend protocol on the
// given streams until EOF: decode each frame's study config and unit
// parameters, run the arm in this process, and answer with the serialized
// result. cmd/hyperprof serves this under its -worker flag.
func ServeWorker(r io.Reader, w io.Writer) error {
	return dispatch.Serve(r, w, func(kind string, body json.RawMessage) (json.RawMessage, error) {
		var u wireUnit
		if err := json.Unmarshal(body, &u); err != nil {
			return nil, fmt.Errorf("experiments: decode %s work unit: %w", kind, err)
		}
		return runUnit(u.Cfg, kind, u.Body)
	})
}

// runStudy executes a study's jobs through its configured backend. jobs is
// the in-process form of the work; units is the serialized form of the same
// work, element for element, or nil when the study's results cannot cross a
// process boundary (see the package comment above). With no backend
// selected — or no wire form available — jobs run directly on the
// in-process pool, which is bitwise the pre-backend behaviour.
func runStudy[T any](cfg StudyConfig, kind string, units []any, jobs []func() (T, error)) ([]T, error) {
	backend, err := ResolveBackend(cfg)
	if err != nil {
		return nil, err
	}
	if backend == nil || kind == "" || len(units) != len(jobs) {
		return runJobs(cfg.Parallel, jobs)
	}
	payloads := make([]json.RawMessage, len(units))
	for i, u := range units {
		payloads[i], err = json.Marshal(u)
		if err != nil {
			return nil, fmt.Errorf("experiments: marshal %s unit %d: %w", kind, i, err)
		}
	}
	raws, err := backend.Run(cfg, kind, payloads)
	if err != nil {
		return nil, err
	}
	results := make([]T, len(raws))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &results[i]); err != nil {
			return nil, fmt.Errorf("experiments: decode %s result %d: %w", kind, i, err)
		}
	}
	return results, nil
}
