package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// These tests pin the backend abstraction's core guarantee: a study's
// exported bytes are identical whether its arms run in-process via closures
// (Backend ""), in-process through the serialized unit registry ("pool"),
// or across worker subprocesses ("exec"). The exec backend re-invokes this
// test binary: TestMain hijacks the process into a protocol worker when the
// coordinator's env var is set, so no separate worker binary is built.

// backendWorkerEnv selects the test binary's alter ego when it is re-executed
// as an exec-backend worker: "serve" answers the protocol, "crash" simulates
// a worker that dies on startup.
const backendWorkerEnv = "HYPERPROF_EXPERIMENTS_TEST_WORKER"

func TestMain(m *testing.M) {
	switch os.Getenv(backendWorkerEnv) {
	case "":
		os.Exit(m.Run())
	case "serve":
		if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "crash":
		os.Exit(7)
	default:
		os.Exit(7)
	}
}

// withBackend returns cfg retargeted at the named backend, pointing the exec
// pool back at this test binary in worker mode.
func withBackend(t *testing.T, cfg StudyConfig, backend string) StudyConfig {
	t.Helper()
	cfg.Backend = backend
	if backend == BackendExec {
		exe, err := os.Executable()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Exec.Command = []string{exe}
		cfg.Exec.Env = []string{backendWorkerEnv + "=serve"}
		cfg.Exec.Workers = 2
	}
	return cfg
}

// studyBackends are the three execution paths every cross-backend test
// compares.
var studyBackends = []string{"", BackendPool, BackendExec}

func backendSafetyConfig() StudyConfig {
	cfg := DefaultSafetyStudyConfig()
	cfg.Check.Seeds = 2
	cfg.Ops = PlatformOps{Spanner: 120, BigTable: 120, BigQuery: 12}
	if testing.Short() {
		cfg.Ops = PlatformOps{Spanner: 60, BigTable: 60, BigQuery: 6}
	}
	return cfg
}

func TestSafetyStudyIdenticalAcrossBackends(t *testing.T) {
	var want []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, backendSafetyConfig(), backend)
		s, err := cfg.Safety()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		var buf bytes.Buffer
		buf.WriteString(RenderSafety(s))
		for _, p := range taxonomy.Platforms() {
			fmt.Fprintf(&buf, "%s marks: %+v\n", p, s.Marks[p])
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("backend %q diverged (first diff at %d):\n--- want ---\n%s\n--- got ---\n%s",
				backend, firstDiff(want, buf.Bytes()), want, buf.Bytes())
		}
	}
}

func TestLatencyStudyIdenticalAcrossBackends(t *testing.T) {
	rates := []float64{400, 800, 1200}
	ops := 150
	if testing.Short() {
		ops = 80
	}
	var want []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, StudyConfig{Seed: 1, Parallel: 2}, backend)
		points, err := cfg.Latency(rates, ops)
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		got := []byte(RenderLatency(points))
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("backend %q diverged:\n--- want ---\n%s\n--- got ---\n%s", backend, want, got)
		}
	}
}

func TestResilienceStudyIdenticalAcrossBackends(t *testing.T) {
	mk := func() StudyConfig {
		cfg := DefaultResilienceStudyConfig()
		cfg.Ops = PlatformOps{Spanner: 200, BigTable: 200, BigQuery: 24}
		if testing.Short() {
			cfg.Ops = PlatformOps{Spanner: 100, BigTable: 100, BigQuery: 12}
		}
		cfg.Obs.Enabled = true
		return cfg
	}
	var want []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, mk(), backend)
		r, err := cfg.Resilience()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		var buf bytes.Buffer
		buf.WriteString(RenderResilience(r))
		// The faulted arms' traces, fault marks and metric series cross the
		// process boundary on the exec backend; export them all.
		for _, p := range taxonomy.Platforms() {
			chrome, err := trace.ExportChrome(r.Traces[p], 2000)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(chrome)
			fmt.Fprintf(&buf, "%s marks: %+v\n", p, r.Marks[p])
		}
		series, err := MarshalPlatformSeries(r.Series)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(series)
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("backend %q diverged: %d vs %d bytes (first diff at %d)",
				backend, len(want), buf.Len(), firstDiff(want, buf.Bytes()))
		}
	}
}

func TestOverloadStudyIdenticalAcrossBackends(t *testing.T) {
	var want []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, overloadTestConfig(), backend)
		o, err := cfg.Overload()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		doc, err := o.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got := append(doc, RenderOverload(o)...)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("backend %q diverged: %d vs %d bytes (first diff at %d)",
				backend, len(want), len(got), firstDiff(want, got))
		}
	}
}

// TestCharacterizationIgnoresBackend pins the documented carve-out: the
// characterization's results hold live simulator state with no wire form, so
// it runs in-process — and still succeeds — whatever backend is selected.
func TestCharacterizationIgnoresBackend(t *testing.T) {
	cfg := DefaultCharStudyConfig()
	cfg.Ops = PlatformOps{Spanner: 80, BigTable: 80, BigQuery: 8}
	cfg.Backend = BackendExec
	cfg.Exec.Command = []string{"/nonexistent-worker-binary"}
	ch, err := cfg.Characterize()
	if err != nil {
		t.Fatalf("characterization must not spawn workers: %v", err)
	}
	for _, p := range taxonomy.Platforms() {
		if len(ch.Traces[p]) == 0 {
			t.Fatalf("%s: no traces collected", p)
		}
	}
}

// TestExecWorkerCrashSurfacesDeterministicError kills every worker at startup
// and checks the study fails with the lowest-indexed unit's transport error
// instead of hanging or succeeding partially.
func TestExecWorkerCrashSurfacesDeterministicError(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := backendSafetyConfig()
	cfg.Backend = BackendExec
	cfg.Exec.Command = []string{exe}
	cfg.Exec.Env = []string{backendWorkerEnv + "=crash"}
	cfg.Exec.Workers = 2
	_, err = cfg.Safety()
	if err == nil {
		t.Fatal("want transport error from crashing workers, got success")
	}
	if !strings.Contains(err.Error(), "unit 0") {
		t.Fatalf("want lowest-index unit in the error, got: %v", err)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	cfg := backendSafetyConfig()
	cfg.Backend = "carrier-pigeon"
	if _, err := cfg.Safety(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("want unknown-backend error, got: %v", err)
	}
}

func TestRunUnitRejectsUnknownKind(t *testing.T) {
	_, err := runUnit(StudyConfig{}, "no/such/kind", json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "unknown work unit kind") {
		t.Fatalf("want unknown-kind error, got: %v", err)
	}
}
