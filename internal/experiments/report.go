package experiments

import (
	"encoding/json"
	"time"

	"hyperprof/internal/taxonomy"
)

// Report is the full characterization study in a machine-readable layout
// (string-keyed for stable JSON), covering Table 1, Figures 2–6 and Tables
// 6–7 plus run metadata. Build one with BuildReport; serialize with JSON.
type Report struct {
	// Ratios holds Table 1 per platform, e.g. "1:16:164".
	Ratios map[string]string `json:"storageRatios"`
	// EndToEnd holds Figure 2: per platform, per query group.
	EndToEnd map[string][]GroupReport `json:"endToEnd"`
	// Overall is the cross-platform average split (fractions).
	Overall SplitReport `json:"overallAverage"`
	// Cycles holds Figure 3: per platform, per broad class (fractions).
	Cycles map[string]map[string]float64 `json:"cycleBreakdown"`
	// CoreCompute, DatacenterTax and SystemTax hold Figures 4–6.
	CoreCompute  map[string]map[string]float64 `json:"coreCompute"`
	DatacenterTx map[string]map[string]float64 `json:"datacenterTaxes"`
	SystemTx     map[string]map[string]float64 `json:"systemTaxes"`
	// Microarch holds Table 6; MicroarchByClass holds Table 7.
	Microarch        map[string]MicroReport            `json:"microarch"`
	MicroarchByClass map[string]map[string]MicroReport `json:"microarchByClass"`
	// Meta describes the run.
	Meta MetaReport `json:"meta"`
}

// GroupReport is one Figure 2 row.
type GroupReport struct {
	Group      string  `json:"group"`
	Queries    int     `json:"queries"`
	QueryFrac  float64 `json:"queryFraction"`
	CPUFrac    float64 `json:"cpuFraction"`
	IOFrac     float64 `json:"ioFraction"`
	RemoteFrac float64 `json:"remoteFraction"`
}

// SplitReport is a CPU/remote/IO fraction triple.
type SplitReport struct {
	CPU    float64 `json:"cpu"`
	Remote float64 `json:"remoteWork"`
	IO     float64 `json:"io"`
}

// MicroReport is one IPC/MPKI row.
type MicroReport struct {
	IPC    float64 `json:"ipc"`
	BR     float64 `json:"brMPKI"`
	L1I    float64 `json:"l1iMPKI"`
	L2I    float64 `json:"l2iMPKI"`
	LLC    float64 `json:"llcMPKI"`
	ITLB   float64 `json:"itlbMPKI"`
	DTLBLD float64 `json:"dtlbLdMPKI"`
}

// MetaReport describes the run that produced the report.
type MetaReport struct {
	Seed          uint64            `json:"seed"`
	Queries       map[string]int    `json:"queries"`
	SimulatedTime map[string]string `json:"simulatedTime"`
}

// BuildReport assembles the machine-readable report from a characterization.
func BuildReport(ch *Characterization) *Report {
	r := &Report{
		Ratios:           map[string]string{},
		EndToEnd:         map[string][]GroupReport{},
		Cycles:           map[string]map[string]float64{},
		CoreCompute:      map[string]map[string]float64{},
		DatacenterTx:     map[string]map[string]float64{},
		SystemTx:         map[string]map[string]float64{},
		Microarch:        map[string]MicroReport{},
		MicroarchByClass: map[string]map[string]MicroReport{},
		Meta: MetaReport{
			Seed:          ch.Cfg.Seed,
			Queries:       map[string]int{},
			SimulatedTime: map[string]string{},
		},
	}
	cpu, remote, io := Figure2Overall(ch)
	r.Overall = SplitReport{CPU: cpu, Remote: remote, IO: io}
	fig2 := Figure2(ch)
	fig3 := Figure3(ch)
	fig4, fig5, fig6 := Figure4(ch), Figure5(ch), Figure6(ch)
	t6, t7 := Table6(ch), Table7(ch)
	for _, p := range taxonomy.Platforms() {
		key := string(p)
		r.Ratios[key] = ch.Inventory.RatioString(p)
		for _, g := range fig2[p] {
			r.EndToEnd[key] = append(r.EndToEnd[key], GroupReport{
				Group: string(g.Group), Queries: g.Queries, QueryFrac: g.QueryFrac,
				CPUFrac: g.CPUFrac, IOFrac: g.IOFrac, RemoteFrac: g.RemoteFrac,
			})
		}
		r.Cycles[key] = map[string]float64{}
		for b, f := range fig3[p] {
			r.Cycles[key][b.String()] = f
		}
		r.CoreCompute[key] = catMap(fig4[p])
		r.DatacenterTx[key] = catMap(fig5[p])
		r.SystemTx[key] = catMap(fig6[p])
		r.Microarch[key] = microReport(t6[p].IPC, t6[p].BR, t6[p].L1I, t6[p].L2I, t6[p].LLC, t6[p].ITLB, t6[p].DTLBLD)
		r.MicroarchByClass[key] = map[string]MicroReport{}
		for b, s := range t7[p] {
			r.MicroarchByClass[key][b.String()] = microReport(s.IPC, s.BR, s.L1I, s.L2I, s.LLC, s.ITLB, s.DTLBLD)
		}
		r.Meta.Queries[key] = len(ch.Traces[p])
		r.Meta.SimulatedTime[key] = ch.Elapsed[p].Round(time.Millisecond).String()
	}
	return r
}

func catMap(m map[taxonomy.Category]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for c, f := range m {
		out[string(c)] = f
	}
	return out
}

func microReport(ipc, br, l1i, l2i, llc, itlb, dtlb float64) MicroReport {
	return MicroReport{IPC: ipc, BR: br, L1I: l1i, L2I: l2i, LLC: llc, ITLB: itlb, DTLBLD: dtlb}
}

// JSON serializes the report with indentation.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
