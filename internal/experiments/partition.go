package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/check"
	"hyperprof/internal/faults"
	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file is the partition study: the safety torture's contended workload
// run under a nemesis of split-brain/ring/bridge partitions, asymmetric gray
// links and bounded clock skew, with two competing arms per platform. The
// naive arm takes the faults with recovery disabled — Spanner's leader keeps
// trying to reach a quorum it is cut from, BigTable's tablets stay pinned to
// partitioned servers, BigQuery's shuffle puts only ever try their home
// server. The hardened arm enables the partition-aware recovery paths:
// Spanner leaders step down to the majority component, BigTable's master
// reassigns tablets away from the cut (with log replay and epoch fencing,
// the crash-recovery machinery), and BigQuery's shuffle fails over around
// blocked links. Both arms must stay *safe* (zero checker violations, zero
// stale reads); the hardened arm must additionally stay *available*. The
// optional broken arms disable the safety mechanisms themselves — commit-wait
// off under a fast clock, partitioned writes acked outside the commit log —
// and exist to prove the checkers catch exactly that.

// Partition-study arm labels, in the fixed order arms run per platform.
const (
	armBaseline = "baseline"
	armNaive    = "naive"
	armHardened = "hardened"
	armBroken   = "broken"
)

// PartitionRow is one (platform, arm, seed) measurement.
type PartitionRow struct {
	Platform taxonomy.Platform
	// Arm is "baseline" (fault-free calibration), "naive", "hardened" or
	// "broken".
	Arm  string
	Seed uint64
	// Ops and Errors count issued operations and the subset that failed.
	Ops, Errors int
	// Writes and WriteErrors count the write subset (Spanner commits,
	// BigTable puts; BigQuery queries are all reads). The split matters
	// because partition recovery defends write availability, while a correct
	// CP system *must* fail reads whenever no quorum exists anywhere — the
	// naive arm's reads stay up through quorum loss only because it also
	// never elects a rival leader.
	Writes, WriteErrors int
	// Availability is successful ops / issued ops; WriteAvailability the same
	// over the write subset (1 when no writes were issued).
	Availability      float64
	WriteAvailability float64
	// Elapsed is the virtual time to drain the workload.
	Elapsed time.Duration
	// GoodputOpsPerSec is successful ops per virtual second.
	GoodputOpsPerSec float64
	// StaleReads counts successful reads that returned a value some
	// earlier-acknowledged write had already superseded; MaxStaleness is the
	// worst such age (see check.History.Staleness).
	StaleReads   int
	MaxStaleness time.Duration
	// FaultsApplied counts fault events that fired during the run.
	FaultsApplied int
	// Violations counts checker findings for this run.
	Violations int
}

// Partition holds the full study: per platform one calibration row, then
// naive and hardened rows per seed (and broken rows when configured), plus
// the hardened arm's fault marks for Chrome-trace export.
type Partition struct {
	Cfg  StudyConfig
	Rows []PartitionRow
	// Violations collects findings from the baseline, naive and hardened
	// arms — any entry here is a real safety bug.
	Violations []SafetyViolation
	// BrokenViolations collects the broken arms' findings — expected by
	// construction; an *empty* slice with broken arms enabled means the
	// checkers missed the planted bug.
	BrokenViolations []SafetyViolation
	// Marks carries the first hardened arm's applied faults per platform as
	// timeline marks, plus one mark per violation.
	Marks map[taxonomy.Platform][]trace.Mark
}

// Ok reports whether the naive, hardened and baseline arms finished with
// zero violations (broken arms are expected to violate and do not count).
func (s *Partition) Ok() bool { return len(s.Violations) == 0 }

// partitionArm is one completed arm, self-contained for concurrent (or
// out-of-process) execution and ordered merge; it is the study's wire type.
type partitionArm struct {
	Row        PartitionRow
	Violations []SafetyViolation
	Marks      []trace.Mark
}

// partitionUnitKind tags partition arms in the backend work-unit registry.
const partitionUnitKind = "partition/arm"

// partitionUnit is the serialized form of one (platform, arm, seed) run.
type partitionUnit struct {
	Platform taxonomy.Platform `json:"platform"`
	Arm      string            `json:"arm"`
	Seed     uint64            `json:"seed"`
	Horizon  time.Duration     `json:"horizon"`
}

// runPartitionUnit executes one partition arm from its wire form.
func runPartitionUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u partitionUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode partition unit: %w", err)
	}
	s := &Partition{Cfg: cfg}
	return s.runArm(u.Platform, u.Arm, u.Seed, u.Horizon)
}

// Partition runs the partition study: per platform one fault-free
// calibration run (whose elapsed time becomes the nemesis horizon), then a
// naive and a hardened arm per seed, then the broken demonstration arms when
// configured. Equal configs replay bit-identically; arms fan out across the
// configured backend and merge in fixed (platform, arm, seed) order, so the
// export is byte-identical sequential vs parallel and across backends.
func (cfg StudyConfig) Partition() (*Partition, error) {
	if cfg.Clients <= 0 || cfg.Check.Seeds <= 0 || cfg.Check.HotRows <= 0 || cfg.Part.MTBFFrac <= 0 {
		return nil, fmt.Errorf("experiments: invalid partition config %+v", cfg)
	}
	s := &Partition{Cfg: cfg, Marks: map[taxonomy.Platform][]trace.Mark{}}
	platforms := taxonomy.Platforms()
	calJobs := make([]func() (partitionArm, error), len(platforms))
	calUnits := make([]any, len(platforms))
	for i, p := range platforms {
		p := p
		calJobs[i] = func() (partitionArm, error) { return s.runArm(p, armBaseline, cfg.Seed, 0) }
		calUnits[i] = partitionUnit{Platform: p, Arm: armBaseline, Seed: cfg.Seed}
	}
	cals, err := runStudy(cfg, partitionUnitKind, calUnits, calJobs)
	if err != nil {
		return nil, err
	}
	var jobs []func() (partitionArm, error)
	var units []any
	for i, p := range platforms {
		horizon := cals[i].Row.Elapsed
		for j := 0; j < cfg.Check.Seeds; j++ {
			for _, arm := range []string{armNaive, armHardened} {
				p, arm, seed := p, arm, cfg.Seed+uint64(j)
				jobs = append(jobs, func() (partitionArm, error) { return s.runArm(p, arm, seed, horizon) })
				units = append(units, partitionUnit{Platform: p, Arm: arm, Seed: seed, Horizon: horizon})
			}
		}
		// Broken arms exist for Spanner (commit-wait off) and BigTable
		// (unlogged partition writes); BigQuery's shuffle has no equivalent
		// split-brain write path to break.
		if cfg.Part.IncludeBroken && p != taxonomy.BigQuery {
			p := p
			jobs = append(jobs, func() (partitionArm, error) { return s.runArm(p, armBroken, cfg.Seed, horizon) })
			units = append(units, partitionUnit{Platform: p, Arm: armBroken, Seed: cfg.Seed, Horizon: horizon})
		}
	}
	arms, err := runStudy(cfg, partitionUnitKind, units, jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range platforms {
		s.merge(p, cals[i])
	}
	next := 0
	for _, p := range platforms {
		n := 2 * cfg.Check.Seeds
		if cfg.Part.IncludeBroken && p != taxonomy.BigQuery {
			n++
		}
		for j := 0; j < n; j++ {
			s.merge(p, arms[next])
			next++
		}
	}
	return s, nil
}

// merge folds one arm into the study in deterministic order. Broken-arm
// violations are routed to the expected bucket; the first hardened arm's
// fault marks become the platform's Chrome-trace marks.
func (s *Partition) merge(p taxonomy.Platform, arm partitionArm) {
	s.Rows = append(s.Rows, arm.Row)
	if arm.Row.Arm == armBroken {
		s.BrokenViolations = append(s.BrokenViolations, arm.Violations...)
	} else {
		s.Violations = append(s.Violations, arm.Violations...)
	}
	if arm.Row.Arm == armHardened && arm.Row.Seed == s.Cfg.Seed {
		s.Marks[p] = arm.Marks
	}
}

// Row returns the first row matching (platform, arm), or nil.
func (s *Partition) Row(p taxonomy.Platform, arm string) *PartitionRow {
	for i := range s.Rows {
		if s.Rows[i].Platform == p && s.Rows[i].Arm == arm {
			return &s.Rows[i]
		}
	}
	return nil
}

func (s *Partition) runArm(p taxonomy.Platform, arm string, seed uint64, horizon time.Duration) (partitionArm, error) {
	switch p {
	case taxonomy.Spanner:
		return s.runSpanner(arm, seed, horizon)
	case taxonomy.BigTable:
		return s.runBigTable(arm, seed, horizon)
	case taxonomy.BigQuery:
		return s.runBigQuery(arm, seed, horizon)
	default:
		return partitionArm{}, fmt.Errorf("experiments: unknown platform %q", p)
	}
}

// nemesisFor converts the study's fractional rates into an absolute nemesis
// config over the calibrated horizon (fault arrivals stop at 80% so heals
// land while the workload drains). nodes feed link-scoped partitions and the
// gray link; partitionTargets feed target-scoped partitions instead; clocks
// name the skewable targets.
func (s *Partition) nemesisFor(horizon time.Duration, seed uint64, stragglerProb float64,
	nodes, partitionTargets, clocks []string) faults.NemesisConfig {
	part := s.Cfg.Part
	return faults.NemesisConfig{
		ScheduleConfig: faults.ScheduleConfig{
			Horizon:         time.Duration(float64(horizon) * 0.8),
			MTBF:            time.Duration(float64(horizon) * s.Cfg.Faults.MTBFFrac),
			MTTR:            time.Duration(float64(horizon) * s.Cfg.Faults.MTTRFrac),
			StragglerProb:   stragglerProb,
			StragglerFactor: s.Cfg.Faults.StragglerFactor,
			NetDegradeProb:  s.Cfg.Faults.NetDegradeProb,
			NetExtraDelay:   s.Cfg.Faults.NetExtraDelay,
			NetDropProb:     s.Cfg.Faults.NetDropProb,
			Seed:            seed,
		},
		Nodes:            nodes,
		PartitionTargets: partitionTargets,
		PartitionMTBF:    time.Duration(float64(horizon) * part.MTBFFrac),
		PartitionMTTR:    time.Duration(float64(horizon) * part.MTTRFrac),
		GrayProb:         part.GrayProb,
		GrayExtra:        part.GrayExtra,
		GrayDrop:         part.GrayDrop,
		ClockTargets:     clocks,
		ClockSkewProb:    part.ClockSkewProb,
		ClockSkewMax:     part.ClockSkewMax,
		ClockDriftMax:    part.ClockDriftMax,
	}
}

// driveCounts are the per-run operation counters drive accumulates.
type driveCounts struct {
	ops, errs, writes, werrs int
	elapsed                  time.Duration
}

// drive launches open-loop clients and runs the simulation to completion.
// op performs one operation and reports whether it was a write. When horizon
// > 0 each client fires its ops on a fixed schedule spanning the horizon
// (client offsets stagger the slots): a closed loop would let an arm that
// fails fast burn its whole op budget inside one fault window while an arm
// that fails slow rides the window out, so the availability comparison
// would measure retry latency, not recovery. On a fixed schedule both arms
// attempt the same op at the same instant, and success depends only on the
// system's state at that instant.
func (s *Partition) drive(env *platform.Env, name string, seed uint64, totalOps int, horizon time.Duration,
	op func(p *sim.Proc, rng *stats.RNG, client, i int) (bool, error)) driveCounts {
	clients := s.Cfg.Clients
	per := totalOps / clients
	if per < 1 {
		per = 1
	}
	slot := horizon / time.Duration(per)
	root := stats.NewRNG(seed ^ 0x50415254) // "PART"
	bar := sim.NewBarrier(env.K, clients)
	var dc driveCounts
	for c := 0; c < clients; c++ {
		c := c
		rng := root.Fork()
		offset := slot * time.Duration(c) / time.Duration(clients)
		env.K.Go(fmt.Sprintf("%s-partition-c%d", name, c), func(p *sim.Proc) {
			defer bar.Done()
			for i := 0; i < per; i++ {
				if target := offset + slot*time.Duration(i); p.Now() < target {
					p.Sleep(target - p.Now())
				}
				dc.ops++
				write, err := op(p, rng, c, i)
				if write {
					dc.writes++
				}
				if err != nil {
					dc.errs++
					if write {
						dc.werrs++
					}
				}
			}
		})
	}
	env.K.Go(name+"-measure", func(p *sim.Proc) {
		p.WaitBarrier(bar)
		dc.elapsed = p.Now()
	})
	env.K.Run()
	return dc
}

// finish condenses a completed run into an arm: availability and goodput
// from the drive counters, staleness from the recorded history, violations
// from every checker, and fault marks from the engine.
func (s *Partition) finish(p taxonomy.Platform, arm string, seed uint64, env *platform.Env,
	h *check.History, reg *check.Registry, eng *faults.Engine, dc driveCounts) partitionArm {
	row := PartitionRow{
		Platform: p, Arm: arm, Seed: seed,
		Ops: dc.ops, Errors: dc.errs, Writes: dc.writes, WriteErrors: dc.werrs,
		Elapsed: dc.elapsed, WriteAvailability: 1,
	}
	if dc.ops > 0 {
		row.Availability = float64(dc.ops-dc.errs) / float64(dc.ops)
	}
	if dc.writes > 0 {
		row.WriteAvailability = float64(dc.writes-dc.werrs) / float64(dc.writes)
	}
	if dc.elapsed > 0 {
		row.GoodputOpsPerSec = float64(dc.ops-dc.errs) / dc.elapsed.Seconds()
	}
	row.StaleReads, row.MaxStaleness = h.Staleness()
	violations, marks := collect(p, seed, h, reg, env.K.Now())
	row.Violations = len(violations)
	out := partitionArm{Row: row, Violations: violations}
	if eng != nil {
		row.FaultsApplied = len(eng.Applied)
		out.Row = row
		for _, a := range eng.Applied {
			out.Marks = append(out.Marks, trace.Mark{At: a.At, Name: a.Label()})
		}
		out.Marks = append(out.Marks, marks...)
	}
	return out
}

func (s *Partition) runSpanner(arm string, seed uint64, horizon time.Duration) (partitionArm, error) {
	env := platform.NewEnv(seed, 1)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	env.Net.SetLinkSeed(seed ^ 0x4c494e4b) // "LINK"
	scfg := spanner.DefaultConfig()
	scfg.RPC = resilienceRPCPolicy()
	scfg.ClockEps = s.Cfg.Part.ClockEps
	switch arm {
	case armHardened, armBaseline:
		scfg.PartitionRecovery = true
	case armBroken:
		// BROKEN: recovery stays on so commits keep flowing through skewed
		// leaders; the safety knob that is off is the commit-wait.
		scfg.PartitionRecovery = true
		scfg.DisableCommitWait = true
	}
	db, err := spanner.New(env, scfg)
	if err != nil {
		return partitionArm{}, err
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	reg := &check.Registry{}
	db.RegisterInvariants(reg)
	if arm == armBroken {
		// Deterministic fast clock on every replica of group 0: the offset is
		// far past the uncertainty bound (and past any commit's replication
		// latency), so with commit-wait disabled a group-0 commit returns
		// while its timestamp still sits in other groups' future — any commit
		// invoked through a healthy group inside that window carries a
		// smaller timestamp, the inversion the external-consistency checker
		// must pin with a two-op subhistory. With commit-wait enabled the
		// same skew would only stretch the wait, never break the ordering.
		for r := 0; r < scfg.Regions; r++ {
			if err := db.SetClockSkew(0, r, 20*s.Cfg.Part.ClockEps, 0); err != nil {
				return partitionArm{}, err
			}
		}
	}
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		eng.RegisterLinkPlane(faults.LinkPlane{
			Block: env.Net.BlockLink,
			Gray:  env.Net.SetLinkFault,
			Heal:  env.Net.HealLink,
		})
		// Every replica is a straggler/clock-skew target; only two per group
		// may crash (a majority always survives crashes — partitions, not
		// crashes, are this study's quorum threat).
		var crashable, clocks []string
		nodeSet := map[string]bool{}
		var nodes []string
		for g := 0; g < scfg.Groups; g++ {
			for r := 0; r < scfg.Regions; r++ {
				g, r := g, r
				name := fmt.Sprintf("spanner/g%d/r%d", g, r)
				a := faults.Actions{
					SetSlowdown:  func(f float64) { _ = db.SetReplicaSlowdown(g, r, f) },
					SetClockSkew: func(o time.Duration, d float64) { _ = db.SetClockSkew(g, r, o, d) },
				}
				if r == g%scfg.Regions || r == (g+1)%scfg.Regions {
					a.Crash = func() { _ = db.CrashReplica(g, r) }
					a.Recover = func() { _ = db.RestartReplica(g, r) }
					crashable = append(crashable, name)
				}
				eng.Register(name, a)
				// The broken arm's planted group-0 skew must survive the run:
				// a nemesis skew window would replace it (skew replaces, never
				// stacks), so group 0 is off the nemesis clock-target list.
				if !(arm == armBroken && g == 0) {
					clocks = append(clocks, name)
				}
				node, err := db.ReplicaNodeName(g, r)
				if err != nil {
					return partitionArm{}, err
				}
				if !nodeSet[node] {
					nodeSet[node] = true
					nodes = append(nodes, node)
				}
			}
		}
		sort.Strings(nodes)
		s.registerNet(eng, env, seed)
		eng.InjectAll(faults.GenerateNemesisSchedule(crashable,
			s.nemesisFor(horizon, seed, s.Cfg.Faults.StragglerProb, nodes, nil, clocks)))
	}
	dc := s.drive(env, "spanner", seed, s.Cfg.Ops.Spanner, horizon,
		func(p *sim.Proc, rng *stats.RNG, c, i int) (bool, error) {
			g, r := rng.Intn(scfg.Groups), rng.Intn(s.Cfg.Check.HotRows)
			if rng.Bool(0.5) {
				_, err := db.Read(p, nil, g, r, rng.Bool(0.15))
				return false, err
			}
			return true, db.Commit(p, nil, g, r, []byte(fmt.Sprintf("s%d/c%d/op%d", seed, c, i)))
		})
	return s.finish(taxonomy.Spanner, arm, seed, env, h, reg, eng, dc), nil
}

func (s *Partition) runBigTable(arm string, seed uint64, horizon time.Duration) (partitionArm, error) {
	env := platform.NewEnv(seed+1000, 1)
	bcfg := bigtable.DefaultConfig()
	switch arm {
	case armHardened, armBaseline:
		bcfg.PartitionRecovery = true
	case armBroken:
		bcfg.BrokenPartitionWrites = true
	}
	db, err := bigtable.New(env, bcfg)
	if err != nil {
		return partitionArm{}, err
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	reg := &check.Registry{}
	db.RegisterInvariants(reg)
	reg.Register("bigtable-dfs", db.DFS().CheckReplicaConsistency)
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		// Even servers may crash, odd servers may be partitioned: the sets are
		// disjoint so a reassignment destination always exists, and the tablet
		// data path is not RPC-fronted, so partitions are target-scoped
		// (platform-level Partition/Heal actions) rather than link-scoped.
		var partitionable []string
		for i := 0; i < bcfg.TabletServers; i++ {
			i := i
			name := fmt.Sprintf("bigtable/ts%d", i)
			a := faults.Actions{
				Partition: func() { _ = db.PartitionTabletServer(i) },
				Heal:      func() { _ = db.HealTabletServer(i) },
			}
			if i%2 == 0 {
				a.Crash = func() { _ = db.FailTabletServer(i) }
				a.Recover = func() { _ = db.RecoverTabletServer(i) }
				eng.Register(name, a)
			} else {
				eng.Register(name, a)
				partitionable = append(partitionable, name)
			}
		}
		eng.Register("bigtable/cs0", faults.Actions{
			Crash:   func() { _ = db.DFS().FailServer(0) },
			Recover: func() { _ = db.DFS().RecoverServer(0) },
		})
		var crashable []string
		for i := 0; i < bcfg.TabletServers; i += 2 {
			crashable = append(crashable, fmt.Sprintf("bigtable/ts%d", i))
		}
		crashable = append(crashable, "bigtable/cs0")
		s.registerNet(eng, env, seed)
		eng.InjectAll(faults.GenerateNemesisSchedule(crashable,
			s.nemesisFor(horizon, seed+1000, 0, nil, partitionable, nil)))
	}
	dc := s.drive(env, "bigtable", seed, s.Cfg.Ops.BigTable, horizon,
		func(p *sim.Proc, rng *stats.RNG, c, i int) (bool, error) {
			t, r := rng.Intn(bcfg.Tablets), rng.Intn(s.Cfg.Check.HotRows)
			if arm == armBroken {
				// Concentrate the demonstration arm on two tablets (one on a
				// partitionable server) so writes lost to the broken fixture
				// are reliably re-read after the heal.
				t %= 2
			}
			if rng.Bool(0.5) {
				_, err := db.Get(p, nil, t, r)
				return false, err
			}
			return true, db.Put(p, nil, t, r, []byte(fmt.Sprintf("s%d/c%d/op%d", seed, c, i)))
		})
	return s.finish(taxonomy.BigTable, arm, seed, env, h, reg, eng, dc), nil
}

func (s *Partition) runBigQuery(arm string, seed uint64, horizon time.Duration) (partitionArm, error) {
	env := platform.NewEnv(seed+2000, 1)
	env.Net.SetLinkSeed(seed ^ 0x4c494e4b) // "LINK"
	qcfg := bigquery.DefaultConfig()
	qcfg.RPC = resilienceRPCPolicy()
	if arm == armNaive {
		qcfg.DisableFailover = true
	}
	e, err := bigquery.New(env, qcfg)
	if err != nil {
		return partitionArm{}, err
	}
	h := check.NewHistory(env.K)
	e.SetRecorder(h)
	reg := &check.Registry{}
	e.RegisterInvariants(reg)
	reg.Register("bigquery-dfs", e.DFS().CheckReplicaConsistency)
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		eng.RegisterLinkPlane(faults.LinkPlane{
			Block: env.Net.BlockLink,
			Gray:  env.Net.SetLinkFault,
			Heal:  env.Net.HealLink,
		})
		var crashable []string
		for i := 0; i < qcfg.ShuffleServers; i += 2 {
			i := i
			name := fmt.Sprintf("bigquery/ss%d", i)
			crashable = append(crashable, name)
			eng.Register(name, faults.Actions{
				Crash:       func() { _ = e.FailShuffleServer(i) },
				Recover:     func() { _ = e.RecoverShuffleServer(i) },
				SetSlowdown: func(f float64) { _ = e.SetShuffleSlowdown(i, f) },
			})
		}
		eng.Register("bigquery/cs0", faults.Actions{
			Crash:   func() { _ = e.DFS().FailServer(0) },
			Recover: func() { _ = e.DFS().RecoverServer(0) },
		})
		// Partition node set: the shuffle tier plus two worker nodes, so
		// drawn topologies cut worker->shuffle data paths (where failover
		// matters) as well as intra-tier links.
		nodeSet := map[string]bool{}
		var nodes []string
		addNode := func(name string, err error) error {
			if err != nil {
				return err
			}
			if !nodeSet[name] {
				nodeSet[name] = true
				nodes = append(nodes, name)
			}
			return nil
		}
		for i := 0; i < qcfg.ShuffleServers; i++ {
			n, err := e.ShuffleNodeName(i)
			if err2 := addNode(n, err); err2 != nil {
				return partitionArm{}, err2
			}
		}
		for w := 0; w < 2 && w < qcfg.Workers; w++ {
			n, err := e.WorkerNodeName(w)
			if err2 := addNode(n, err); err2 != nil {
				return partitionArm{}, err2
			}
		}
		sort.Strings(nodes)
		s.registerNet(eng, env, seed)
		eng.InjectAll(faults.GenerateNemesisSchedule(crashable,
			s.nemesisFor(horizon, seed+2000, s.Cfg.Faults.StragglerProb, nodes, nil, nil)))
	}
	kinds := []bigquery.Kind{bigquery.ScanAgg, bigquery.JoinQuery}
	dc := s.drive(env, "bigquery", seed, s.Cfg.Ops.BigQuery, horizon,
		func(p *sim.Proc, rng *stats.RNG, c, i int) (bool, error) {
			q := bigquery.Query{Kind: kinds[rng.Intn(len(kinds))], Threshold: int64(rng.Intn(1000))}
			_, err := e.Run(p, nil, q)
			return false, err
		})
	return s.finish(taxonomy.BigQuery, arm, seed, env, h, reg, eng, dc), nil
}

func (s *Partition) registerNet(eng *faults.Engine, env *platform.Env, seed uint64) {
	eng.RegisterNetwork(func(extra time.Duration, drop float64) {
		env.Net.Degrade(extra, drop, seed^0x4e455444) // "NETD"
	}, env.Net.Restore)
}

// JSON renders the study's machine-readable export: seed, rows and the
// broken arms' expected-violation digests, in fixed order, so equal configs
// produce byte-identical documents on every backend.
func (s *Partition) JSON() ([]byte, error) {
	type brokenViolation struct {
		Seed   uint64
		Kind   string
		Key    string
		Detail string
	}
	var broken []brokenViolation
	for _, v := range s.BrokenViolations {
		broken = append(broken, brokenViolation{Seed: v.Seed, Kind: v.Kind, Key: v.Key, Detail: v.Detail})
	}
	doc := struct {
		Seed             uint64
		Rows             []PartitionRow
		Violations       []SafetyViolation
		BrokenViolations []brokenViolation
	}{Seed: s.Cfg.Seed, Rows: s.Rows, Violations: s.Violations, BrokenViolations: broken}
	return json.MarshalIndent(doc, "", "  ")
}

// RenderPartition renders the study as a fixed-width table followed by the
// verdict: the naive-vs-hardened availability comparison is the headline,
// violations (none expected outside broken arms) print in full with their
// minimal violating subhistories.
func RenderPartition(s *Partition) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partition nemesis study (base seed %d, %d seeds/arm; partitions + gray links + clock skew, eps %v)\n",
		s.Cfg.Seed, s.Cfg.Check.Seeds, s.Cfg.Part.ClockEps)
	fmt.Fprintf(&b, "%-10s %-9s %6s %6s %5s %7s %7s %10s %10s %6s %10s %7s %10s\n",
		"platform", "arm", "seed", "ops", "errs", "avail%", "wavail%", "elapsed", "goodput/s", "stale", "staleness", "faults", "violations")
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "%-10s %-9s %6d %6d %5d %7.2f %7.2f %10s %10.1f %6d %10s %7d %10d\n",
			row.Platform, row.Arm, row.Seed, row.Ops, row.Errors,
			row.Availability*100, row.WriteAvailability*100,
			row.Elapsed.Round(time.Millisecond), row.GoodputOpsPerSec,
			row.StaleReads, row.MaxStaleness.Round(10*time.Microsecond),
			row.FaultsApplied, row.Violations)
	}
	if s.Ok() {
		b.WriteString("PASS: no safety violations in baseline/naive/hardened arms\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d safety violations\n", len(s.Violations))
		for _, v := range s.Violations {
			fmt.Fprintf(&b, "[seed %d] %s\n", v.Seed, v.Violation.String())
		}
	}
	if len(s.BrokenViolations) > 0 {
		fmt.Fprintf(&b, "broken-knob arms (expected violations): %d found\n", len(s.BrokenViolations))
		for _, v := range s.BrokenViolations {
			fmt.Fprintf(&b, "[seed %d] %s\n", v.Seed, v.Violation.String())
		}
	}
	return b.String()
}
