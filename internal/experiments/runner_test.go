package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunJobsPreservesOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 0} {
		jobs := make([]func() (int, error), 50)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) { return i * i, nil }
		}
		got, err := runJobs(parallel, jobs)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestRunJobsDeterministicError(t *testing.T) {
	// Multiple jobs fail; the error of the lowest-indexed failure must win so
	// parallel and sequential runs report the same error.
	for _, parallel := range []int{1, 4} {
		jobs := make([]func() (int, error), 20)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) {
				if i%3 == 1 {
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i, nil
			}
		}
		_, err := runJobs(parallel, jobs)
		if err == nil || err.Error() != "job 1 failed" {
			t.Fatalf("parallel=%d: err = %v, want job 1's error", parallel, err)
		}
	}
}

func TestRunJobsSequentialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	jobs := []func() (int, error){
		func() (int, error) { ran.Add(1); return 0, nil },
		func() (int, error) { ran.Add(1); return 0, sentinel },
		func() (int, error) { ran.Add(1); return 0, nil },
	}
	_, err := runJobs(1, jobs)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("sequential run executed %d jobs after error, want stop after 2", ran.Load())
	}
}

func TestRunJobsBoundsWorkers(t *testing.T) {
	const parallel = 3
	var inFlight, peak atomic.Int32
	jobs := make([]func() (struct{}, error), 24)
	gate := make(chan struct{}, parallel)
	for i := range jobs {
		jobs[i] = func() (struct{}, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			gate <- struct{}{}
			<-gate
			inFlight.Add(-1)
			return struct{}{}, nil
		}
	}
	if _, err := runJobs(parallel, jobs); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > parallel {
		t.Fatalf("peak concurrent jobs = %d, want <= %d", got, parallel)
	}
}

func TestParallelismResolution(t *testing.T) {
	if Parallelism(1) != 1 || Parallelism(7) != 7 {
		t.Fatal("positive parallelism must pass through")
	}
	if Parallelism(0) < 1 || Parallelism(-3) < 1 {
		t.Fatal("non-positive parallelism must resolve to at least one worker")
	}
}
