package experiments

import (
	"runtime"
	"sync"
)

// This file is the parallel experiment runner. Every simulation kernel in
// this repository is single-threaded and deterministic, and independent
// kernels share no state (each platform.Env owns its kernel, network, RNG,
// tracer and profiler), so the arms of a study — the three platforms of a
// characterization, the (platform, seed) runs of the safety sweep, the
// offered-load points of the latency curve — can execute on concurrent
// goroutines without perturbing a single simulated bit. Determinism is
// preserved by construction: parallelism decides only *when* an arm computes
// its result, never *what* the result is, and results are merged in the fixed
// order of the job slice, so sequential and parallel runs render
// byte-identical reports. DESIGN.md "Performance architecture" states the
// invariant precisely.

// Parallelism resolves a study's configured parallelism knob: n <= 0 means
// "one worker per available CPU" (the default), 1 means sequential, and any
// larger value bounds the concurrent kernels at n.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runJobs executes the jobs on at most Parallelism(parallel) concurrent
// workers and returns their results in job order. Each job must be
// self-contained: it builds its own kernels and touches no state shared with
// other jobs. If any job fails, the error of the lowest-indexed failing job
// is returned (so the reported error is deterministic regardless of worker
// interleaving); with parallel == 1 jobs run sequentially in order and stop
// at the first error, exactly like the pre-parallel harness.
func runJobs[T any](parallel int, jobs []func() (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	workers := Parallelism(parallel)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			r, err := job()
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
