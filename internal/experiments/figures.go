package experiments

import (
	"hyperprof/internal/profile"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file extracts the characterization tables and figures (Table 1,
// Figures 2–6, Tables 6–7) from a Characterization run.

// Table1Row is one platform's storage-to-storage ratio.
type Table1Row struct {
	Platform taxonomy.Platform
	// RAM:SSD:HDD ratio normalized to RAM = 1.
	RAM, SSD, HDD float64
	Rendered      string
}

// Table1 reproduces the storage-to-storage ratios.
func Table1(ch *Characterization) []Table1Row {
	rows := make([]Table1Row, 0, 3)
	for _, p := range taxonomy.Platforms() {
		ram, ssd, hdd := ch.Inventory.Ratios(p)
		rows = append(rows, Table1Row{
			Platform: p, RAM: ram, SSD: ssd, HDD: hdd,
			Rendered: ch.Inventory.RatioString(p),
		})
	}
	return rows
}

// Figure2 reproduces the end-to-end execution-time breakdown: per platform,
// the per-group stats plus overall average.
func Figure2(ch *Characterization) map[taxonomy.Platform][]trace.GroupStats {
	out := map[taxonomy.Platform][]trace.GroupStats{}
	for _, p := range taxonomy.Platforms() {
		out[p] = trace.Aggregate(ch.Traces[p])
	}
	return out
}

// Figure2Overall returns the all-platform average time split (the paper's
// "48%, 22%, 30%" CPU/remote/IO observation). Platforms are weighted
// equally, since the absolute query counts of our synthetic runs are
// arbitrary, unlike the paper's day of production traffic.
func Figure2Overall(ch *Characterization) (cpu, remote, io float64) {
	platforms := 0
	for _, p := range taxonomy.Platforms() {
		var c, r, i float64
		n := 0
		for _, t := range ch.Traces[p] {
			b := t.ComputeBreakdown()
			c += b.Frac(trace.CPU)
			i += b.Frac(trace.IO)
			r += b.Frac(trace.Remote)
			n++
		}
		if n == 0 {
			continue
		}
		cpu += c / float64(n)
		io += i / float64(n)
		remote += r / float64(n)
		platforms++
	}
	if platforms == 0 {
		return 0, 0, 0
	}
	return cpu / float64(platforms), remote / float64(platforms), io / float64(platforms)
}

// Figure3 reproduces the high-level cycle breakdown (core compute,
// datacenter taxes, system taxes) per platform.
func Figure3(ch *Characterization) map[taxonomy.Platform]map[taxonomy.Broad]float64 {
	out := map[taxonomy.Platform]map[taxonomy.Broad]float64{}
	for _, p := range taxonomy.Platforms() {
		out[p] = ch.Prof(p).BroadBreakdown(p)
	}
	return out
}

// Figure4 reproduces the core-compute fine-grained breakdown per platform.
func Figure4(ch *Characterization) map[taxonomy.Platform]map[taxonomy.Category]float64 {
	out := map[taxonomy.Platform]map[taxonomy.Category]float64{}
	for _, p := range taxonomy.Platforms() {
		out[p] = ch.Prof(p).CategoryBreakdown(p, taxonomy.CoreCompute)
	}
	return out
}

// Figure5 reproduces the datacenter-tax breakdown per platform.
func Figure5(ch *Characterization) map[taxonomy.Platform]map[taxonomy.Category]float64 {
	out := map[taxonomy.Platform]map[taxonomy.Category]float64{}
	for _, p := range taxonomy.Platforms() {
		out[p] = ch.Prof(p).CategoryBreakdown(p, taxonomy.DatacenterTax)
	}
	return out
}

// Figure6 reproduces the system-tax breakdown per platform.
func Figure6(ch *Characterization) map[taxonomy.Platform]map[taxonomy.Category]float64 {
	out := map[taxonomy.Platform]map[taxonomy.Category]float64{}
	for _, p := range taxonomy.Platforms() {
		out[p] = ch.Prof(p).CategoryBreakdown(p, taxonomy.SystemTax)
	}
	return out
}

// Table6 reproduces the per-platform IPC and MPKI statistics.
func Table6(ch *Characterization) map[taxonomy.Platform]profile.Stats {
	out := map[taxonomy.Platform]profile.Stats{}
	for _, p := range taxonomy.Platforms() {
		out[p] = ch.Prof(p).PlatformStats(p)
	}
	return out
}

// Table7 reproduces the per-broad-class IPC and MPKI statistics.
func Table7(ch *Characterization) map[taxonomy.Platform]map[taxonomy.Broad]profile.Stats {
	out := map[taxonomy.Platform]map[taxonomy.Broad]profile.Stats{}
	for _, p := range taxonomy.Platforms() {
		out[p] = ch.Prof(p).BroadStats(p)
	}
	return out
}
