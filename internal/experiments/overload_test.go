package experiments

import (
	"bytes"
	"testing"
	"time"

	"hyperprof/internal/taxonomy"
)

// overloadTestConfig downsizes the overload defaults so the study fits in a
// unit-test budget while still driving the trigger through every mechanism.
func overloadTestConfig() StudyConfig {
	cfg := DefaultOverloadStudyConfig()
	cfg.Load.Duration = time.Second
	cfg.Load.TriggerAt = 250 * time.Millisecond
	cfg.Load.TriggerDur = 200 * time.Millisecond
	cfg.Load.SpannerRate = 1200
	cfg.Load.BigTableRate = 2000
	cfg.Load.BigQueryRate = 24
	if testing.Short() {
		cfg.Load.Duration = 600 * time.Millisecond
		cfg.Load.TriggerAt = 200 * time.Millisecond
		cfg.Load.TriggerDur = 120 * time.Millisecond
		cfg.Load.SpannerRate = 800
		cfg.Load.BigTableRate = 1200
		// BigQuery queries run tens of virtual milliseconds each, so the
		// pre-trigger window needs a rate high enough that some queries
		// finish inside it.
		cfg.Load.BigQueryRate = 40
	}
	return cfg
}

// overloadBytes renders every artifact a byte comparison can cover: the JSON
// export and the fixed-width table.
func overloadBytes(t *testing.T, o *Overload) []byte {
	t.Helper()
	data, err := o.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return append(data, RenderOverload(o)...)
}

func TestOverloadStudyParallelMatchesSequentialByteForByte(t *testing.T) {
	seq := overloadTestConfig()
	seq.Parallel = 1
	par := overloadTestConfig()
	par.Parallel = 4

	oSeq, err := seq.Overload()
	if err != nil {
		t.Fatal(err)
	}
	oPar, err := par.Overload()
	if err != nil {
		t.Fatal(err)
	}
	a, b := overloadBytes(t, oSeq), overloadBytes(t, oPar)
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel overload study diverged from sequential: %d vs %d bytes (first diff at %d)\n--- sequential ---\n%s\n--- parallel ---\n%s",
			len(a), len(b), firstDiff(a, b), a, b)
	}
}

func TestOverloadStudyShape(t *testing.T) {
	cfg := overloadTestConfig()
	o, err := cfg.Overload()
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rows) != 2*len(taxonomy.Platforms()) {
		t.Fatalf("want %d rows, got %d", 2*len(taxonomy.Platforms()), len(o.Rows))
	}
	for _, p := range taxonomy.Platforms() {
		for _, protected := range []bool{false, true} {
			row := o.Row(p, protected)
			if row == nil {
				t.Fatalf("%s protected=%v: missing row", p, protected)
			}
			if row.Offered <= 0 || row.Done <= 0 {
				t.Errorf("%s protected=%v: no load served: %+v", p, protected, row)
			}
			if row.PreGoodput <= 0 {
				t.Errorf("%s protected=%v: zero pre-trigger goodput", p, protected)
			}
			if row.Fairness <= 0 || row.Fairness > 1.0001 {
				t.Errorf("%s protected=%v: fairness %v out of range", p, protected, row.Fairness)
			}
			if row.FaultsApplied == 0 {
				t.Errorf("%s protected=%v: trigger never fired", p, protected)
			}
			if len(row.Tenants) != 3 {
				t.Fatalf("%s protected=%v: want 3 tenants, got %d", p, protected, len(row.Tenants))
			}
			for i := 1; i < len(row.Tenants); i++ {
				if row.Tenants[i-1].Name >= row.Tenants[i].Name {
					t.Errorf("%s protected=%v: tenants not name-sorted: %q >= %q",
						p, protected, row.Tenants[i-1].Name, row.Tenants[i].Name)
				}
			}
			// Control-plane accounting only ever appears on the protected arm.
			if !protected && (row.Throttled > 0 || row.BudgetExhausted > 0 || row.BreakerOpens > 0) {
				t.Errorf("%s naive arm shows protections: %+v", p, row)
			}
		}
	}
	// The storm must engage at least one client-side protection somewhere:
	// the RPC-fronted platforms meter their retries under the brownout.
	var engaged bool
	for _, p := range []taxonomy.Platform{taxonomy.Spanner, taxonomy.BigQuery} {
		row := o.Row(p, true)
		if row.BudgetExhausted > 0 || row.BreakerOpens > 0 || row.Sheds > 0 || row.Expired > 0 {
			engaged = true
		}
		naive := o.Row(p, false)
		if naive.Retries < row.Retries {
			t.Errorf("%s: naive arm retried less (%d) than protected (%d)", p, naive.Retries, row.Retries)
		}
	}
	if !engaged {
		t.Error("no protected arm engaged any overload control mechanism")
	}
}
