package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hyperprof/internal/taxonomy"
)

// smallPartitionConfig shrinks the partition study to a fast smoke with the
// full nemesis rates.
func smallPartitionConfig() StudyConfig {
	cfg := DefaultPartitionStudyConfig()
	cfg.Check.Seeds = 2
	cfg.Clients = 4
	cfg.Ops = PlatformOps{Spanner: 160, BigTable: 160, BigQuery: 12}
	return cfg
}

// TestPartitionStudySafeUnderNemesis is the headline acceptance gate: with
// recovery enabled (and also in the safe-but-unavailable naive arms), the
// checkers must report zero violations and zero stale reads across many
// nemesis seeds on all three platforms.
func TestPartitionStudySafeUnderNemesis(t *testing.T) {
	cfg := smallPartitionConfig()
	cfg.Check.Seeds = 8
	if testing.Short() {
		cfg.Check.Seeds = 3
	}
	s, err := cfg.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ok() {
		t.Fatalf("partition study found violations:\n%s", RenderPartition(s))
	}
	// One calibration row plus (naive, hardened) per seed per platform.
	wantRows := len(taxonomy.Platforms()) * (1 + 2*cfg.Check.Seeds)
	if len(s.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(s.Rows), wantRows)
	}
	faulted := 0
	for _, row := range s.Rows {
		if row.Ops == 0 {
			t.Errorf("%s/%s seed %d: zero ops issued", row.Platform, row.Arm, row.Seed)
		}
		if row.Arm == armBaseline && row.Errors > 0 {
			t.Errorf("%s calibration run had %d errors", row.Platform, row.Errors)
		}
		if row.StaleReads != 0 || row.MaxStaleness != 0 {
			t.Errorf("%s/%s seed %d: %d stale reads (max %v) — a safe arm leaked staleness",
				row.Platform, row.Arm, row.Seed, row.StaleReads, row.MaxStaleness)
		}
		if row.Arm != armBaseline && row.FaultsApplied > 0 {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no arm applied any faults — the nemesis is inert")
	}
	// The hardened arm's whole point is availability under the same nemesis.
	// The gate compares the dimension recovery defends: write availability on
	// Spanner (a correct CP system must fail reads while cut from every
	// quorum, so total availability is not the hardened arm's to win), total
	// availability on BigTable and BigQuery. Summed over seeds; per-seed runs
	// are deterministic, so this is a stable regression gate, not a
	// statistical one.
	for _, p := range taxonomy.Platforms() {
		good := map[string]int{}
		for _, row := range s.Rows {
			if row.Platform != p {
				continue
			}
			if p == taxonomy.Spanner {
				good[row.Arm] += row.Writes - row.WriteErrors
			} else {
				good[row.Arm] += row.Ops - row.Errors
			}
		}
		if good[armHardened] < good[armNaive] {
			t.Errorf("%s: hardened arm completed %d ops vs naive %d — recovery is hurting availability\n%s",
				p, good[armHardened], good[armNaive], RenderPartition(s))
		}
		if len(s.Marks[p]) == 0 {
			t.Errorf("%s: no fault marks exported from the hardened arm", p)
		}
	}
}

// TestPartitionStudyBrokenKnobsCaught plants the two broken safety knobs —
// Spanner committing without its commit-wait under a fast clock, BigTable
// acking partitioned writes outside the commit log — and requires the
// checkers to convict both, Spanner's with a minimal two-operation
// external-consistency subhistory. The safe arms must stay clean in the same
// run.
func TestPartitionStudyBrokenKnobsCaught(t *testing.T) {
	cfg := smallPartitionConfig()
	cfg.Check.Seeds = 1
	cfg.Part.IncludeBroken = true
	s, err := cfg.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ok() {
		t.Fatalf("safe arms violated alongside the broken ones:\n%s", RenderPartition(s))
	}
	if len(s.BrokenViolations) == 0 {
		t.Fatalf("broken arms produced no violations — the checkers missed both planted bugs:\n%s",
			RenderPartition(s))
	}
	externals, bigtables := 0, 0
	for _, v := range s.BrokenViolations {
		if v.Kind == "external-consistency" {
			externals++
			if len(v.History) != 2 {
				t.Errorf("external-consistency witness has %d ops, want minimal 2", len(v.History))
			}
		}
		if v.Platform == string(taxonomy.BigTable) {
			bigtables++
		}
	}
	if externals == 0 {
		t.Errorf("no external-consistency violation from the commit-wait-disabled Spanner arm:\n%s",
			RenderPartition(s))
	}
	if bigtables == 0 {
		t.Errorf("no violation from the BigTable broken-partition-writes arm:\n%s", RenderPartition(s))
	}
	for _, row := range s.Rows {
		if row.Arm == armBroken && row.Platform == taxonomy.Spanner && row.Violations == 0 {
			t.Errorf("spanner broken-arm row reports zero violations")
		}
	}
}

func TestPartitionStudyDeterministic(t *testing.T) {
	cfg := smallPartitionConfig()
	cfg.Check.Seeds = 1
	run := func() string {
		s, err := cfg.Partition()
		if err != nil {
			t.Fatal(err)
		}
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return RenderPartition(s) + string(data)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same config, different studies:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestPartitionStudyIdenticalAcrossBackends pins the export bytes across the
// in-process, pool and exec backends (and, via the runner, the sequential vs
// parallel paths): the render, the JSON document and the fault marks must
// not differ by a byte.
func TestPartitionStudyIdenticalAcrossBackends(t *testing.T) {
	mk := func() StudyConfig {
		cfg := smallPartitionConfig()
		cfg.Part.IncludeBroken = true
		if testing.Short() {
			cfg.Check.Seeds = 1
			cfg.Ops = PlatformOps{Spanner: 80, BigTable: 80, BigQuery: 8}
		}
		return cfg
	}
	var want []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, mk(), backend)
		s, err := cfg.Partition()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		var buf bytes.Buffer
		buf.WriteString(RenderPartition(s))
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		for _, p := range taxonomy.Platforms() {
			fmt.Fprintf(&buf, "%s marks: %+v\n", p, s.Marks[p])
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("backend %q diverged (first diff at %d):\n--- want ---\n%s\n--- got ---\n%s",
				backend, firstDiff(want, buf.Bytes()), want, buf.Bytes())
		}
	}
}

func TestPartitionStudyRejectsInvalidConfig(t *testing.T) {
	cfg := smallPartitionConfig()
	cfg.Part.MTBFFrac = 0
	if _, err := cfg.Partition(); err == nil {
		t.Fatal("want error for zero partition MTBF")
	}
}

func TestRenderPartitionShowsVerdict(t *testing.T) {
	cfg := smallPartitionConfig()
	cfg.Check.Seeds = 1
	s, err := cfg.Partition()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderPartition(s)
	for _, want := range []string{"baseline", "naive", "hardened", "PASS: no safety violations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
