package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hyperprof/internal/taxonomy"
)

// pipelineTestConfig shrinks the pipeline study to test scale while keeping
// every moving part live: multiple batches, an iterative analytics stage,
// fault injection over the faulted seeds, and (for the tests that want it)
// the broken-handoff demonstration arm.
func pipelineTestConfig() StudyConfig {
	cfg := DefaultPipelineStudyConfig()
	cfg.Pipe = PipelineConfig{Records: 24, Batches: 3, Iterations: 2}
	cfg.Check.Seeds = 2
	if testing.Short() {
		cfg.Pipe.Records = 12
		cfg.Check.Seeds = 1
	}
	return cfg
}

// pipelineExport condenses every cross-process artifact of a pipeline study
// into one byte string: the canonical JSON document, the rendered report,
// and the Chrome export whose spans cross the three platform processes.
func pipelineExport(t *testing.T, s *Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	doc, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(doc)
	buf.WriteString(RenderPipeline(s))
	chrome, err := s.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(chrome)
	return buf.Bytes()
}

// TestPipelineStudyIdenticalAcrossBackends pins the work-unit contract: the
// pipeline study's full export is byte-identical whether its arms run as
// in-process closures, through the serialized unit registry, or across
// worker subprocesses.
func TestPipelineStudyIdenticalAcrossBackends(t *testing.T) {
	var want []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, pipelineTestConfig(), backend)
		cfg.Pipe.IncludeBroken = true
		s, err := cfg.Pipeline()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		got := pipelineExport(t, s)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("backend %q diverged: %d vs %d bytes (first diff at %d)",
				backend, len(want), len(got), firstDiff(want, got))
		}
	}
}

// TestPipelineStudySequentialMatchesParallel pins determinism across kernel
// scheduling: one arm at a time and maximum fan-out must export identical
// bytes.
func TestPipelineStudySequentialMatchesParallel(t *testing.T) {
	seq := pipelineTestConfig()
	seq.Parallel = 1
	par := pipelineTestConfig()
	par.Parallel = 4
	ss, err := seq.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := par.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	a, b := pipelineExport(t, ss), pipelineExport(t, ps)
	if !bytes.Equal(a, b) {
		t.Fatalf("sequential and parallel exports diverged: %d vs %d bytes (first diff at %d)",
			len(a), len(b), firstDiff(a, b))
	}
}

// TestPipelineEndToEndSpans pins the tentpole guarantee: every logical
// record owns exactly one trace ID whose spans cross all three platform
// stages, so the Chrome export shows one end-to-end request per row.
func TestPipelineEndToEndSpans(t *testing.T) {
	cfg := pipelineTestConfig()
	s, err := cfg.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	perID := map[uint64]map[taxonomy.Platform]int{}
	for _, tr := range s.Traces {
		if perID[tr.ID] == nil {
			perID[tr.ID] = map[taxonomy.Platform]int{}
		}
		perID[tr.ID][tr.Platform]++
	}
	if len(perID) != cfg.Pipe.Records {
		t.Fatalf("got %d distinct trace IDs, want one per record (%d)", len(perID), cfg.Pipe.Records)
	}
	for id, stages := range perID {
		for _, p := range []taxonomy.Platform{taxonomy.BigTable, taxonomy.BigQuery, taxonomy.Spanner} {
			if stages[p] != 1 {
				t.Fatalf("trace %d: %d %s spans, want exactly 1 (stages: %v)", id, stages[p], p, stages)
			}
		}
	}
}

// TestPipelineStageCrashExactlyOnce is the stage-crash regression: the
// faulted arms kill the middle (analytics) stage mid-iteration and force a
// replay of the BigQuery→Spanner handoff, and the exactly-once invariant
// must hold via dedup — any double-serve would surface as a violation and
// fail the study.
func TestPipelineStageCrashExactlyOnce(t *testing.T) {
	cfg := pipelineTestConfig()
	s, err := cfg.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ok() {
		t.Fatalf("honest arms must hold exactly-once, got violations: %v", s.Violations)
	}
	if base := s.Row(armBaseline); base == nil || base.Replays != 0 || base.Deduped != 0 {
		t.Fatalf("baseline arm must not replay, got %+v", base)
	}
	crashed := false
	for _, row := range s.Rows {
		if row.Arm != armFaulted {
			continue
		}
		if row.Replays < 1 {
			t.Fatalf("faulted arm seed %d: no handoff replay was forced, got %+v", row.Seed, row)
		}
		if row.Deduped < 1 {
			t.Fatalf("faulted arm seed %d: replayed handoff was not deduplicated, got %+v", row.Seed, row)
		}
		if row.Violations != 0 {
			t.Fatalf("faulted arm seed %d: %d violations", row.Seed, row.Violations)
		}
		if row.FaultsApplied > 0 {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("no faulted arm applied any faults; the stage-crash schedule never fired")
	}
}

// TestPipelineBrokenHandoffConvicted pins the checker's teeth: with the
// handoff dedup latch disabled, the broken demonstration arm must be
// convicted by the pipeline-handoff invariant while the honest arms stay
// clean.
func TestPipelineBrokenHandoffConvicted(t *testing.T) {
	cfg := pipelineTestConfig()
	cfg.Pipe.IncludeBroken = true
	s, err := cfg.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ok() {
		t.Fatalf("honest arms must stay clean, got: %v", s.Violations)
	}
	if len(s.BrokenViolations) == 0 {
		t.Fatal("broken-handoff arm produced no violations; the exactly-once checker failed to convict")
	}
	for _, v := range s.BrokenViolations {
		if !strings.Contains(v.Detail, "pipeline-handoff") && v.Key != "pipeline-handoff" {
			t.Fatalf("unexpected violation kind in broken arm: %+v", v)
		}
	}
	if row := s.Row(armBroken); row == nil || row.Violations != len(s.BrokenViolations) {
		t.Fatalf("broken row does not account for its violations: %+v vs %d", row, len(s.BrokenViolations))
	}
}

// TestPipelineStageBreakdowns checks each stage contributes a §4.1 overlap
// breakdown over the baseline spans.
func TestPipelineStageBreakdowns(t *testing.T) {
	cfg := pipelineTestConfig()
	s, err := cfg.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	groups := s.StageBreakdowns()
	for _, p := range []taxonomy.Platform{taxonomy.BigTable, taxonomy.BigQuery, taxonomy.Spanner} {
		if len(groups[p]) == 0 {
			t.Fatalf("stage %s: no overlap breakdown", p)
		}
	}
}

func TestPipelineRejectsInvalidConfig(t *testing.T) {
	for _, breakCfg := range []func(*StudyConfig){
		func(c *StudyConfig) { c.Pipe.Records = 0 },
		func(c *StudyConfig) { c.Pipe.Batches = 0 },
		func(c *StudyConfig) { c.Clients = 0 },
		func(c *StudyConfig) { c.Check.Seeds = 0 },
	} {
		cfg := pipelineTestConfig()
		breakCfg(&cfg)
		if _, err := cfg.Pipeline(); err == nil {
			t.Fatalf("config %+v: want validation error, got success", cfg)
		}
	}
}

// TestPipelineObsCounters checks the observability plane wires into the
// pipeline simulation: with Obs enabled the baseline arm exports per-stage
// counter tracks for the Chrome document.
func TestPipelineObsCounters(t *testing.T) {
	cfg := pipelineTestConfig()
	cfg.Obs.Enabled = true
	s, err := cfg.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	byStage := map[string]int{}
	for _, ct := range s.Counters {
		byStage[ct.Process]++
	}
	for _, p := range []taxonomy.Platform{taxonomy.BigTable, taxonomy.BigQuery, taxonomy.Spanner} {
		if byStage[string(p)] == 0 {
			t.Fatalf("stage %s: no counter tracks (got %v)", p, byStage)
		}
	}
	if s.Row(armBaseline) == nil {
		t.Fatal("missing baseline row")
	}
	if got := fmt.Sprintf("%d", len(s.Rows)); got == "0" {
		t.Fatal("no rows")
	}
}
