package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hyperprof/internal/model"
	"hyperprof/internal/soc"
	"hyperprof/internal/taxonomy"
)

// This file implements the extensions §6.4 lists as future work: partial
// synchronization between accelerated components (beyond the fully
// sync/async endpoints the paper sweeps), mixed accelerator placement (some
// components on-chip, some off-chip), and a third chained accelerator
// (block compression) inserted between serialization and hashing.

// PartialSyncPoint is one point of the partial-synchronization sweep.
type PartialSyncPoint struct {
	// G is the uniform g_sub overlap factor (1 = fully synchronous,
	// 0 = fully asynchronous, per Eq 5).
	G float64
	// Speedup is the end-to-end speedup at this synchronization level.
	Speedup float64
}

// PartialSyncSweep evaluates a derived system at intermediate g_sub values,
// interpolating between the paper's sync and async endpoints.
func PartialSyncSweep(sys model.System, gs []float64) []PartialSyncPoint {
	accel := sys.WithUniformSpeedup(Fig13Speedup).Configure(model.SyncOnChip, nil)
	out := make([]PartialSyncPoint, 0, len(gs))
	for _, g := range gs {
		s := accel.Clone()
		for i := range s.Components {
			if s.Components[i].Accelerated {
				s.Components[i].Sync = g
			}
		}
		out = append(out, PartialSyncPoint{G: g, Speedup: s.Speedup()})
	}
	return out
}

// MixedPlacementRow reports the effect of moving one component off-chip
// while the rest stay on-chip.
type MixedPlacementRow struct {
	Component string
	// AllOnChip is the reference speedup with everything on-chip.
	AllOnChip float64
	// OneOffChip is the speedup with only this component off-chip.
	OneOffChip float64
	// Penalty is AllOnChip/OneOffChip - 1 (relative loss).
	Penalty float64
}

// MixedPlacementStudy quantifies per-component placement sensitivity for a
// platform: which accelerators must be on-chip, and which tolerate a PCIe
// hop. Unlike Figure 13's uniform B_i, each component's off-chip payload is
// the platform's mean query bytes scaled by the component's share of CPU
// time (a component that burns 10% of the cycles touches roughly 10% of the
// data), so the study ranks components.
func (ch *Characterization) MixedPlacementStudy(p taxonomy.Platform) ([]MixedPlacementRow, error) {
	sys, err := ch.DeriveSystem(p)
	if err != nil {
		return nil, err
	}
	sys = sys.WithUniformSpeedup(Fig13Speedup).Configure(model.SyncOnChip, nil)
	ref := sys.Speedup()
	bytes := ch.QueryBytes[p]
	rows := make([]MixedPlacementRow, 0, len(sys.Components))
	for i, c := range sys.Components {
		if !c.Accelerated {
			continue
		}
		mixed := sys.Clone()
		mixed.Components[i].Bytes = bytes * c.Time / sys.CPUTime
		sp := mixed.Speedup()
		row := MixedPlacementRow{Component: c.Name, AllOnChip: ref, OneOffChip: sp}
		if sp > 0 {
			row.Penalty = ref/sp - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Chain3Experiment runs the extended three-accelerator validation
// (protobuf -> compression -> SHA3).
func Chain3Experiment(seed uint64, messages int) (*soc.Chain3Result, error) {
	return soc.ValidateChain3(seed, messages, soc.DefaultChain3Config())
}

// RenderChain3 renders the extended validation result.
func RenderChain3(r *soc.Chain3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extended validation: protobuf -> compression -> SHA3 chain (%d messages)\n", r.Messages)
	fmt.Fprintf(&b, "  Serial phases: init %v, proto %v, compress %v, sha3 %v\n",
		r.OtherCPU.Round(time.Microsecond), r.ProtoCPU.Round(time.Microsecond),
		r.CompressCPU.Round(time.Microsecond), r.SHA3CPU.Round(time.Microsecond))
	fmt.Fprintf(&b, "  Real compression: %d -> %d bytes (%.2fx)\n", r.WireBytes, r.CompressedBytes, r.Ratio)
	fmt.Fprintf(&b, "  Measured chained execution: %v\n", r.MeasuredChained.Round(time.Microsecond))
	fmt.Fprintf(&b, "  Modeled chained execution:  %v\n", r.ModeledChained.Round(time.Microsecond))
	fmt.Fprintf(&b, "  Difference: %.1f%%\n", r.DiffFrac*100)
	return b.String()
}

// RenderMixedPlacement renders a mixed-placement study.
func RenderMixedPlacement(p taxonomy.Platform, rows []MixedPlacementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed placement sensitivity (%s, one component off-chip at a time):\n", p)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s on-chip %.3fx -> off-chip %.3fx (penalty %.1f%%)\n",
			r.Component, r.AllOnChip, r.OneOffChip, r.Penalty*100)
	}
	return b.String()
}

// PriorityRow ranks one accelerator candidate by marginal benefit.
type PriorityRow struct {
	Component string
	// Sensitivity is the relative e2e improvement from doubling this
	// component's accelerator speedup (see model.System.Sensitivity).
	Sensitivity float64
	// CPUShare is the component's share of the platform's CPU time.
	CPUShare float64
}

// AcceleratorPriority ranks a platform's accelerator candidates by the
// marginal end-to-end benefit of accelerating each further, starting from a
// uniform 8x sea of accelerators — the "which accelerator should be built
// next" question behind the paper's pareto-benefit discussion (§5.4).
func (ch *Characterization) AcceleratorPriority(p taxonomy.Platform) ([]PriorityRow, error) {
	sys, err := ch.DeriveSystem(p)
	if err != nil {
		return nil, err
	}
	sys = sys.WithUniformSpeedup(Fig13Speedup).Configure(model.SyncOnChip, nil)
	sens := sys.Sensitivity()
	rows := make([]PriorityRow, 0, len(sens))
	for _, c := range sys.Components {
		if !c.Accelerated {
			continue
		}
		rows = append(rows, PriorityRow{
			Component:   c.Name,
			Sensitivity: sens[c.Name],
			CPUShare:    c.Time / sys.CPUTime,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Sensitivity != rows[j].Sensitivity {
			return rows[i].Sensitivity > rows[j].Sensitivity
		}
		return rows[i].Component < rows[j].Component
	})
	return rows, nil
}

// RenderPriority renders an accelerator-priority ranking.
func RenderPriority(p taxonomy.Platform, rows []PriorityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Accelerator priority (%s, marginal benefit of doubling each 8x accelerator):\n", p)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s +%.2f%% e2e (%.1f%% of CPU)\n", r.Component, r.Sensitivity*100, r.CPUShare*100)
	}
	return b.String()
}

// ChainScalingRow reports the three invocation models at one chain length.
type ChainScalingRow struct {
	Stages  int
	Sync    float64
	Async   float64
	Chained float64
}

// ChainScaling asks how the sea-of-accelerators invocation models scale
// with the number of accelerators: CPU work is split evenly across n
// accelerated stages (8x each, 50µs setup). Synchronous execution pays n
// setups and n residuals; chaining pays one setup and one residual — the
// structural argument for the paper's chained execution model.
func ChainScaling(stages []int) []ChainScalingRow {
	const (
		totalCPU = 1.0
		setup    = 50e-6
	)
	var out []ChainScalingRow
	for _, n := range stages {
		if n < 1 {
			continue
		}
		sys := model.System{CPUTime: totalCPU}
		for i := 0; i < n; i++ {
			sys.Components = append(sys.Components, model.Component{
				Name:        fmt.Sprintf("stage-%d", i),
				Time:        totalCPU / float64(n),
				Accelerated: true,
				Speedup:     Fig13Speedup,
				Setup:       setup,
			})
		}
		out = append(out, ChainScalingRow{
			Stages:  n,
			Sync:    sys.Configure(model.SyncOnChip, nil).Speedup(),
			Async:   sys.Configure(model.AsyncOnChip, nil).Speedup(),
			Chained: sys.Configure(model.ChainedOnChip, nil).Speedup(),
		})
	}
	return out
}
