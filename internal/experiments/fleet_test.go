package experiments

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"hyperprof/internal/workload"
)

// smallFleetConfig is a reduced fleet study for cross-backend and
// determinism tests: real sketch-mode plumbing, minutes of virtual time,
// milliseconds of wall clock.
func smallFleetConfig() StudyConfig {
	cfg := DefaultFleetStudyConfig()
	cfg.Fleet.Servers = 60
	cfg.Fleet.Users = 10_000
	cfg.Fleet.Ops = 900
	cfg.Fleet.Duration = 500 * time.Millisecond
	return cfg
}

// TestFleetScaleDefaultCompletesBounded is the tentpole acceptance pin: the
// default fleet configuration — 2000 servers, one million logical users —
// completes in sketch mode with every measurement surface bounded and the
// coordinator heap flat relative to the op count.
func TestFleetScaleDefaultCompletesBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale run skipped in -short mode")
	}
	cfg := DefaultFleetStudyConfig()
	if cfg.Fleet.Servers < 2000 || cfg.Fleet.Users < 1_000_000 {
		t.Fatalf("default fleet %d servers / %d users below the 2000/1M floor",
			cfg.Fleet.Servers, cfg.Fleet.Users)
	}
	st, err := cfg.FleetScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 3 {
		t.Fatalf("fleet study produced %d rows, want 3", len(st.Rows))
	}
	var servers, ops int
	for _, r := range st.Rows {
		servers += r.Servers
		ops += r.Ops
		if r.Ops <= 0 {
			t.Errorf("%s completed no operations", r.Platform)
		}
		if r.P50Seconds <= 0 || r.P99Seconds < r.P50Seconds || r.MaxSeconds < r.P99Seconds {
			t.Errorf("%s quantiles not ordered: p50=%g p99=%g max=%g",
				r.Platform, r.P50Seconds, r.P99Seconds, r.MaxSeconds)
		}
		// Bounded measurement: the sketch's bucket count is a function of
		// the error bound and value range, not of r.Ops, and the history
		// reservoir never exceeds its cap.
		if r.SketchBuckets <= 0 || r.SketchBuckets > 4096 {
			t.Errorf("%s sketch holds %d buckets, want (0, 4096]", r.Platform, r.SketchBuckets)
		}
		if r.HistoryKept > defaultFleetHistoryCap {
			t.Errorf("%s history kept %d ops, cap is %d", r.Platform, r.HistoryKept, defaultFleetHistoryCap)
		}
		if r.HistorySeen < int64(r.HistoryKept) {
			t.Errorf("%s history seen %d < kept %d", r.Platform, r.HistorySeen, r.HistoryKept)
		}
	}
	if servers != cfg.Fleet.Servers {
		t.Errorf("rows account for %d servers, want %d", servers, cfg.Fleet.Servers)
	}
	if ops < cfg.Fleet.Ops*9/10 {
		t.Errorf("fleet completed %d ops, want ≈%d", ops, cfg.Fleet.Ops)
	}
	// Asserted-flat heap: after the run the coordinator's live heap must sit
	// far below anything proportional to ops or users. 256 MiB is ~50x the
	// observed footprint and ~100 bytes/user — exact per-user or per-op
	// retention would blow straight through it.
	const ceiling = 256 << 20
	if st.Heap.HeapAllocBytes == 0 {
		t.Fatal("heap stats not populated")
	}
	if st.Heap.HeapAllocBytes > ceiling {
		t.Errorf("live heap after fleet run = %d MiB, ceiling %d MiB",
			st.Heap.HeapAllocBytes>>20, ceiling>>20)
	}
	t.Logf("fleet: %d ops, %.1f MiB live heap\n%s", ops,
		float64(st.Heap.HeapAllocBytes)/(1<<20), RenderFleet(st))
}

// TestFleetScaleDeterministic pins replay: equal configs yield byte-equal
// canonical artifacts, sequentially and in parallel.
func TestFleetScaleDeterministic(t *testing.T) {
	cfg := smallFleetConfig()
	cfg.Fleet.Shape = workload.ArrivalShape{Burst: true, Diurnal: true}

	marshal := func(c StudyConfig) []byte {
		st, err := c.FleetScale()
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalFleet(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	seq := cfg
	seq.Parallel = 1
	par := cfg
	par.Parallel = 3
	a, b, c := marshal(seq), marshal(seq), marshal(par)
	if !bytes.Equal(a, b) {
		t.Fatal("same config produced different fleet artifacts across runs")
	}
	if !bytes.Equal(a, c) {
		t.Fatal("sequential and parallel fleet artifacts differ")
	}

	other := seq
	other.Seed = seq.Seed + 1
	if bytes.Equal(a, marshal(other)) {
		t.Fatal("different seeds produced identical fleet artifacts")
	}
}

// TestFleetScaleBackends pins the satellite requirement: sketch-mode fleet
// bytes are identical in-process, through the pool unit path, and across
// exec worker subprocesses.
func TestFleetScaleBackends(t *testing.T) {
	base := smallFleetConfig()
	var ref []byte
	for _, backend := range studyBackends {
		cfg := withBackend(t, base, backend)
		st, err := cfg.FleetScale()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		b, err := MarshalFleet(st)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("backend %q fleet artifact differs from in-process run", backend)
		}
	}
}

// TestFleetScaleExactMode checks the sketch knob is a knob: a small fleet
// run with sketching disabled uses exact recorders (no bucket counts, full
// history) and still completes.
func TestFleetScaleExactMode(t *testing.T) {
	cfg := smallFleetConfig()
	cfg.Sketch = SketchConfig{}
	st, err := cfg.FleetScale()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Rows {
		if r.SketchBuckets != 0 {
			t.Errorf("%s reports %d sketch buckets in exact mode", r.Platform, r.SketchBuckets)
		}
		if r.HistorySeen > 0 && int64(r.HistoryKept) != r.HistorySeen {
			t.Errorf("%s exact history kept %d of %d ops", r.Platform, r.HistoryKept, r.HistorySeen)
		}
	}
}

// TestFleetScaleValidation pins the config guard.
func TestFleetScaleValidation(t *testing.T) {
	cfg := DefaultFleetStudyConfig()
	cfg.Fleet.Servers = 2
	if _, err := cfg.FleetScale(); err == nil {
		t.Fatal("2-server fleet accepted")
	}
	cfg = DefaultFleetStudyConfig()
	cfg.Fleet.Ops = 0
	if _, err := cfg.FleetScale(); err == nil {
		t.Fatal("0-op fleet accepted")
	}
}

// TestFleetSketchHeapFlat is the memory-architecture pin at unit scale:
// growing the op budget 8x must not grow the coordinator's live heap
// accordingly. (The fleet-scale variant of this assertion runs in
// TestFleetScaleDefaultCompletesBounded.)
func TestFleetSketchHeapFlat(t *testing.T) {
	heapAfter := func(ops int) uint64 {
		cfg := smallFleetConfig()
		cfg.Fleet.Ops = ops
		if _, err := cfg.FleetScale(); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	small := heapAfter(600)
	large := heapAfter(4800)
	// Identical bounded recorders → the live heap difference is noise, not
	// proportional growth. Allow generous jitter: 8x ops may cost at most
	// +8 MiB, far below what exact recording of 4200 extra ops' traces,
	// histories and latencies would retain if anything leaked per-op.
	if large > small+(8<<20) {
		t.Fatalf("live heap grew from %d KiB to %d KiB under an 8x op budget: fleet memory is not flat",
			small>>10, large>>10)
	}
}
