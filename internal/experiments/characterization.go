// Package experiments contains one harness per table and figure of the
// paper's evaluation, built on the platform simulations, the profiling and
// tracing substrates, and the analytical model. DESIGN.md's per-experiment
// index maps each paper artifact to the function here that regenerates it.
//
// Every study runs from the unified StudyConfig core (study.go): one struct
// of grouped knobs with one method entry point per study.
package experiments

import (
	"fmt"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/platform"
	"hyperprof/internal/profile"
	"hyperprof/internal/spanner"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
	"hyperprof/internal/workload"
)

// Characterization holds everything the table/figure extractors consume.
type Characterization struct {
	Cfg       StudyConfig
	Envs      map[taxonomy.Platform]*platform.Env
	Traces    map[taxonomy.Platform][]*trace.Trace
	Inventory *storage.Inventory
	// QueryBytes is the mean bytes of storage read per query, per platform
	// (feeds Figure 13's off-chip B_i).
	QueryBytes map[taxonomy.Platform]float64
	// Elapsed is the wall-clock time of each platform's simulated day.
	Elapsed map[taxonomy.Platform]time.Duration
	// Series is each platform's observability snapshot; empty unless
	// Cfg.Obs.Enabled.
	Series map[taxonomy.Platform][]obs.Series
}

// platformRun is one platform's completed simulated day, self-contained so
// the three platforms can run on concurrent goroutines and be merged into
// the Characterization afterwards in fixed platform order.
type platformRun struct {
	env        *platform.Env
	traces     []*trace.Trace
	elapsed    time.Duration
	queryBytes float64
	stores     []*storage.TieredStore
	series     []obs.Series
}

// Characterize builds all three platforms, drives their calibrated
// workloads, and collects traces, profiles, inventory and (when enabled)
// observability series. The platforms are independent simulations; they run
// concurrently (bounded by cfg.Parallel) and merge deterministically, so the
// result is byte-for-byte identical to a sequential run with the same seed.
func (cfg StudyConfig) Characterize() (*Characterization, error) {
	if cfg.Clients <= 0 || cfg.TraceRate <= 0 {
		return nil, fmt.Errorf("experiments: invalid characterization config %+v", cfg)
	}
	// A platformRun hands live simulator state (envs, profilers, tracers)
	// straight to the figure extractors; it has no wire form, so the
	// characterization always executes in-process whatever backend the
	// config selects (the empty kind routes runStudy to the legacy pool).
	runs, err := runStudy(cfg, "", nil, []func() (platformRun, error){
		func() (platformRun, error) { return runSpannerChar(cfg) },
		func() (platformRun, error) { return runBigTableChar(cfg) },
		func() (platformRun, error) { return runBigQueryChar(cfg) },
	})
	if err != nil {
		return nil, err
	}
	ch := &Characterization{
		Cfg:        cfg,
		Envs:       map[taxonomy.Platform]*platform.Env{},
		Traces:     map[taxonomy.Platform][]*trace.Trace{},
		Inventory:  storage.NewInventory(),
		QueryBytes: map[taxonomy.Platform]float64{},
		Elapsed:    map[taxonomy.Platform]time.Duration{},
		Series:     map[taxonomy.Platform][]obs.Series{},
	}
	for i, p := range taxonomy.Platforms() {
		run := runs[i]
		ch.Envs[p] = run.env
		ch.Traces[p] = run.traces
		ch.Elapsed[p] = run.elapsed
		ch.QueryBytes[p] = run.queryBytes
		if run.series != nil {
			ch.Series[p] = run.series
		}
		for _, s := range run.stores {
			ch.Inventory.AddStore(p, s)
		}
	}
	return ch, nil
}

// enableStudyObs wires the environment's observability plane when the study
// asks for it. Must run after any env.Net replacement and before the
// platform constructor (see platform.Env.EnableObs).
func enableStudyObs(cfg StudyConfig, env *platform.Env) {
	if cfg.Obs.Enabled {
		env.EnableObs(cfg.Obs.registry())
	}
}

func runSpannerChar(cfg StudyConfig) (platformRun, error) {
	env := platform.NewEnv(cfg.Seed, cfg.TraceRate)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	enableStudyObs(cfg, env)
	db, err := spanner.New(env, spanner.DefaultConfig())
	if err != nil {
		return platformRun{}, err
	}
	run := workload.Spanner(env, db, workload.DefaultSpannerMix(), cfg.Clients, cfg.Ops.Spanner)
	env.Obs.Start(env.K)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return platformRun{}, fmt.Errorf("spanner workload: %w", err)
	}
	out := platformRun{env: env, traces: env.Tracer.Sampled(), elapsed: end, series: env.Obs.Snapshot()}
	var bytesRead int64
	for _, m := range db.Machines() {
		out.stores = append(out.stores, m.Store)
		for _, t := range storage.Tiers() {
			bytesRead += m.Store.Stats(t).BytesRead
		}
	}
	out.queryBytes = float64(bytesRead) / float64(cfg.Ops.Spanner)
	return out, nil
}

func runBigTableChar(cfg StudyConfig) (platformRun, error) {
	env := platform.NewEnv(cfg.Seed+1, cfg.TraceRate)
	enableStudyObs(cfg, env)
	db, err := bigtable.New(env, bigtable.DefaultConfig())
	if err != nil {
		return platformRun{}, err
	}
	run := workload.BigTable(env, db, workload.DefaultBigTableMix(), cfg.Clients, cfg.Ops.BigTable)
	env.Obs.Start(env.K)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return platformRun{}, fmt.Errorf("bigtable workload: %w", err)
	}
	out := platformRun{env: env, traces: env.Tracer.Sampled(), elapsed: end, series: env.Obs.Snapshot()}
	var bytesRead int64
	for _, m := range db.Machines() {
		out.stores = append(out.stores, m.Store)
	}
	for _, s := range db.DFS().Servers() {
		out.stores = append(out.stores, s)
		for _, t := range storage.Tiers() {
			bytesRead += s.Stats(t).BytesRead
		}
	}
	out.queryBytes = float64(bytesRead) / float64(cfg.Ops.BigTable)
	return out, nil
}

func runBigQueryChar(cfg StudyConfig) (platformRun, error) {
	env := platform.NewEnv(cfg.Seed+2, cfg.TraceRate)
	enableStudyObs(cfg, env)
	e, err := bigquery.New(env, bigquery.DefaultConfig())
	if err != nil {
		return platformRun{}, err
	}
	run := workload.BigQuery(env, e, workload.DefaultBigQueryMix(), cfg.Clients, cfg.Ops.BigQuery)
	env.Obs.Start(env.K)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return platformRun{}, fmt.Errorf("bigquery workload: %w", err)
	}
	out := platformRun{env: env, traces: env.Tracer.Sampled(), elapsed: end, series: env.Obs.Snapshot()}
	var bytesRead int64
	for _, m := range e.Machines() {
		out.stores = append(out.stores, m.Store)
	}
	for _, s := range e.DFS().Servers() {
		out.stores = append(out.stores, s)
		for _, t := range storage.Tiers() {
			bytesRead += s.Stats(t).BytesRead
		}
	}
	out.queryBytes = float64(bytesRead) / float64(cfg.Ops.BigQuery)
	return out, nil
}

// Prof returns a platform's profiler.
func (ch *Characterization) Prof(p taxonomy.Platform) *profile.Profiler {
	return ch.Envs[p].Prof
}
