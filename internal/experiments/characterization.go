// Package experiments contains one harness per table and figure of the
// paper's evaluation, built on the platform simulations, the profiling and
// tracing substrates, and the analytical model. DESIGN.md's per-experiment
// index maps each paper artifact to the function here that regenerates it.
package experiments

import (
	"fmt"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/profile"
	"hyperprof/internal/spanner"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
	"hyperprof/internal/workload"
)

// CharConfig sizes the characterization run (the stand-in for the paper's
// "one representative day" of fleet profiles and traces).
type CharConfig struct {
	Seed uint64
	// SpannerQueries, BigTableQueries and BigQueryQueries are per-platform
	// operation budgets.
	SpannerQueries  int
	BigTableQueries int
	BigQueryQueries int
	// Clients is the closed-loop client count per platform.
	Clients int
	// TraceRate keeps 1/TraceRate of traces (the paper samples 1/1000 of a
	// day's queries; our runs are smaller, so the default keeps all).
	TraceRate int
}

// DefaultCharConfig returns a configuration that runs in a few seconds and
// yields stable aggregates.
func DefaultCharConfig() CharConfig {
	return CharConfig{
		Seed:            1,
		SpannerQueries:  1500,
		BigTableQueries: 1500,
		BigQueryQueries: 250,
		Clients:         8,
		TraceRate:       1,
	}
}

// Characterization holds everything the table/figure extractors consume.
type Characterization struct {
	Cfg       CharConfig
	Envs      map[taxonomy.Platform]*platform.Env
	Traces    map[taxonomy.Platform][]*trace.Trace
	Inventory *storage.Inventory
	// QueryBytes is the mean bytes of storage read per query, per platform
	// (feeds Figure 13's off-chip B_i).
	QueryBytes map[taxonomy.Platform]float64
	// Elapsed is the wall-clock time of each platform's simulated day.
	Elapsed map[taxonomy.Platform]time.Duration
}

// RunCharacterization builds all three platforms, drives their calibrated
// workloads, and collects traces, profiles and inventory.
func RunCharacterization(cfg CharConfig) (*Characterization, error) {
	if cfg.Clients <= 0 || cfg.TraceRate <= 0 {
		return nil, fmt.Errorf("experiments: invalid characterization config %+v", cfg)
	}
	ch := &Characterization{
		Cfg:        cfg,
		Envs:       map[taxonomy.Platform]*platform.Env{},
		Traces:     map[taxonomy.Platform][]*trace.Trace{},
		Inventory:  storage.NewInventory(),
		QueryBytes: map[taxonomy.Platform]float64{},
		Elapsed:    map[taxonomy.Platform]time.Duration{},
	}
	if err := ch.runSpanner(); err != nil {
		return nil, err
	}
	if err := ch.runBigTable(); err != nil {
		return nil, err
	}
	if err := ch.runBigQuery(); err != nil {
		return nil, err
	}
	return ch, nil
}

func (ch *Characterization) runSpanner() error {
	env := platform.NewEnv(ch.Cfg.Seed, ch.Cfg.TraceRate)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	db, err := spanner.New(env, spanner.DefaultConfig())
	if err != nil {
		return err
	}
	run := workload.Spanner(env, db, workload.DefaultSpannerMix(), ch.Cfg.Clients, ch.Cfg.SpannerQueries)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return fmt.Errorf("spanner workload: %w", err)
	}
	ch.Envs[taxonomy.Spanner] = env
	ch.Traces[taxonomy.Spanner] = env.Tracer.Sampled()
	ch.Elapsed[taxonomy.Spanner] = end
	var bytesRead int64
	for _, m := range db.Machines() {
		ch.Inventory.AddStore(taxonomy.Spanner, m.Store)
		for _, t := range storage.Tiers() {
			bytesRead += m.Store.Stats(t).BytesRead
		}
	}
	ch.QueryBytes[taxonomy.Spanner] = float64(bytesRead) / float64(ch.Cfg.SpannerQueries)
	return nil
}

func (ch *Characterization) runBigTable() error {
	env := platform.NewEnv(ch.Cfg.Seed+1, ch.Cfg.TraceRate)
	db, err := bigtable.New(env, bigtable.DefaultConfig())
	if err != nil {
		return err
	}
	run := workload.BigTable(env, db, workload.DefaultBigTableMix(), ch.Cfg.Clients, ch.Cfg.BigTableQueries)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return fmt.Errorf("bigtable workload: %w", err)
	}
	ch.Envs[taxonomy.BigTable] = env
	ch.Traces[taxonomy.BigTable] = env.Tracer.Sampled()
	ch.Elapsed[taxonomy.BigTable] = end
	var bytesRead int64
	for _, m := range db.Machines() {
		ch.Inventory.AddStore(taxonomy.BigTable, m.Store)
	}
	for _, s := range db.DFS().Servers() {
		ch.Inventory.AddStore(taxonomy.BigTable, s)
		for _, t := range storage.Tiers() {
			bytesRead += s.Stats(t).BytesRead
		}
	}
	ch.QueryBytes[taxonomy.BigTable] = float64(bytesRead) / float64(ch.Cfg.BigTableQueries)
	return nil
}

func (ch *Characterization) runBigQuery() error {
	env := platform.NewEnv(ch.Cfg.Seed+2, ch.Cfg.TraceRate)
	e, err := bigquery.New(env, bigquery.DefaultConfig())
	if err != nil {
		return err
	}
	run := workload.BigQuery(env, e, workload.DefaultBigQueryMix(), ch.Cfg.Clients, ch.Cfg.BigQueryQueries)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return fmt.Errorf("bigquery workload: %w", err)
	}
	ch.Envs[taxonomy.BigQuery] = env
	ch.Traces[taxonomy.BigQuery] = env.Tracer.Sampled()
	ch.Elapsed[taxonomy.BigQuery] = end
	var bytesRead int64
	for _, m := range e.Machines() {
		ch.Inventory.AddStore(taxonomy.BigQuery, m.Store)
	}
	for _, s := range e.DFS().Servers() {
		ch.Inventory.AddStore(taxonomy.BigQuery, s)
		for _, t := range storage.Tiers() {
			bytesRead += s.Stats(t).BytesRead
		}
	}
	ch.QueryBytes[taxonomy.BigQuery] = float64(bytesRead) / float64(ch.Cfg.BigQueryQueries)
	return nil
}

// Prof returns a platform's profiler.
func (ch *Characterization) Prof(p taxonomy.Platform) *profile.Profiler {
	return ch.Envs[p].Prof
}
