// Package experiments contains one harness per table and figure of the
// paper's evaluation, built on the platform simulations, the profiling and
// tracing substrates, and the analytical model. DESIGN.md's per-experiment
// index maps each paper artifact to the function here that regenerates it.
package experiments

import (
	"fmt"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/profile"
	"hyperprof/internal/spanner"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
	"hyperprof/internal/workload"
)

// CharConfig sizes the characterization run (the stand-in for the paper's
// "one representative day" of fleet profiles and traces).
type CharConfig struct {
	Seed uint64
	// SpannerQueries, BigTableQueries and BigQueryQueries are per-platform
	// operation budgets.
	SpannerQueries  int
	BigTableQueries int
	BigQueryQueries int
	// Clients is the closed-loop client count per platform.
	Clients int
	// TraceRate keeps 1/TraceRate of traces (the paper samples 1/1000 of a
	// day's queries; our runs are smaller, so the default keeps all).
	TraceRate int
	// Parallel bounds how many platform simulations run concurrently:
	// 0 = one worker per CPU, 1 = sequential. Results are identical either
	// way; each platform owns its kernel and is merged in platform order.
	Parallel int
}

// DefaultCharConfig returns a configuration that runs in a few seconds and
// yields stable aggregates.
func DefaultCharConfig() CharConfig {
	return CharConfig{
		Seed:            1,
		SpannerQueries:  1500,
		BigTableQueries: 1500,
		BigQueryQueries: 250,
		Clients:         8,
		TraceRate:       1,
	}
}

// Characterization holds everything the table/figure extractors consume.
type Characterization struct {
	Cfg       CharConfig
	Envs      map[taxonomy.Platform]*platform.Env
	Traces    map[taxonomy.Platform][]*trace.Trace
	Inventory *storage.Inventory
	// QueryBytes is the mean bytes of storage read per query, per platform
	// (feeds Figure 13's off-chip B_i).
	QueryBytes map[taxonomy.Platform]float64
	// Elapsed is the wall-clock time of each platform's simulated day.
	Elapsed map[taxonomy.Platform]time.Duration
}

// platformRun is one platform's completed simulated day, self-contained so
// the three platforms can run on concurrent goroutines and be merged into
// the Characterization afterwards in fixed platform order.
type platformRun struct {
	env        *platform.Env
	traces     []*trace.Trace
	elapsed    time.Duration
	queryBytes float64
	stores     []*storage.TieredStore
}

// RunCharacterization builds all three platforms, drives their calibrated
// workloads, and collects traces, profiles and inventory. The platforms are
// independent simulations; they run concurrently (bounded by cfg.Parallel)
// and merge deterministically, so the result is byte-for-byte identical to a
// sequential run with the same seed.
func RunCharacterization(cfg CharConfig) (*Characterization, error) {
	if cfg.Clients <= 0 || cfg.TraceRate <= 0 {
		return nil, fmt.Errorf("experiments: invalid characterization config %+v", cfg)
	}
	runs, err := runJobs(cfg.Parallel, []func() (platformRun, error){
		func() (platformRun, error) { return runSpannerChar(cfg) },
		func() (platformRun, error) { return runBigTableChar(cfg) },
		func() (platformRun, error) { return runBigQueryChar(cfg) },
	})
	if err != nil {
		return nil, err
	}
	ch := &Characterization{
		Cfg:        cfg,
		Envs:       map[taxonomy.Platform]*platform.Env{},
		Traces:     map[taxonomy.Platform][]*trace.Trace{},
		Inventory:  storage.NewInventory(),
		QueryBytes: map[taxonomy.Platform]float64{},
		Elapsed:    map[taxonomy.Platform]time.Duration{},
	}
	for i, p := range taxonomy.Platforms() {
		run := runs[i]
		ch.Envs[p] = run.env
		ch.Traces[p] = run.traces
		ch.Elapsed[p] = run.elapsed
		ch.QueryBytes[p] = run.queryBytes
		for _, s := range run.stores {
			ch.Inventory.AddStore(p, s)
		}
	}
	return ch, nil
}

func runSpannerChar(cfg CharConfig) (platformRun, error) {
	env := platform.NewEnv(cfg.Seed, cfg.TraceRate)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	db, err := spanner.New(env, spanner.DefaultConfig())
	if err != nil {
		return platformRun{}, err
	}
	run := workload.Spanner(env, db, workload.DefaultSpannerMix(), cfg.Clients, cfg.SpannerQueries)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return platformRun{}, fmt.Errorf("spanner workload: %w", err)
	}
	out := platformRun{env: env, traces: env.Tracer.Sampled(), elapsed: end}
	var bytesRead int64
	for _, m := range db.Machines() {
		out.stores = append(out.stores, m.Store)
		for _, t := range storage.Tiers() {
			bytesRead += m.Store.Stats(t).BytesRead
		}
	}
	out.queryBytes = float64(bytesRead) / float64(cfg.SpannerQueries)
	return out, nil
}

func runBigTableChar(cfg CharConfig) (platformRun, error) {
	env := platform.NewEnv(cfg.Seed+1, cfg.TraceRate)
	db, err := bigtable.New(env, bigtable.DefaultConfig())
	if err != nil {
		return platformRun{}, err
	}
	run := workload.BigTable(env, db, workload.DefaultBigTableMix(), cfg.Clients, cfg.BigTableQueries)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return platformRun{}, fmt.Errorf("bigtable workload: %w", err)
	}
	out := platformRun{env: env, traces: env.Tracer.Sampled(), elapsed: end}
	var bytesRead int64
	for _, m := range db.Machines() {
		out.stores = append(out.stores, m.Store)
	}
	for _, s := range db.DFS().Servers() {
		out.stores = append(out.stores, s)
		for _, t := range storage.Tiers() {
			bytesRead += s.Stats(t).BytesRead
		}
	}
	out.queryBytes = float64(bytesRead) / float64(cfg.BigTableQueries)
	return out, nil
}

func runBigQueryChar(cfg CharConfig) (platformRun, error) {
	env := platform.NewEnv(cfg.Seed+2, cfg.TraceRate)
	e, err := bigquery.New(env, bigquery.DefaultConfig())
	if err != nil {
		return platformRun{}, err
	}
	run := workload.BigQuery(env, e, workload.DefaultBigQueryMix(), cfg.Clients, cfg.BigQueryQueries)
	end := env.K.Run()
	if err := run.Err(); err != nil {
		return platformRun{}, fmt.Errorf("bigquery workload: %w", err)
	}
	out := platformRun{env: env, traces: env.Tracer.Sampled(), elapsed: end}
	var bytesRead int64
	for _, m := range e.Machines() {
		out.stores = append(out.stores, m.Store)
	}
	for _, s := range e.DFS().Servers() {
		out.stores = append(out.stores, s)
		for _, t := range storage.Tiers() {
			bytesRead += s.Stats(t).BytesRead
		}
	}
	out.queryBytes = float64(bytesRead) / float64(cfg.BigQueryQueries)
	return out, nil
}

// Prof returns a platform's profiler.
func (ch *Characterization) Prof(p taxonomy.Platform) *profile.Profiler {
	return ch.Envs[p].Prof
}
