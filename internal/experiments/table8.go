package experiments

import (
	"hyperprof/internal/soc"
)

// Table8Config sizes the model-validation experiment.
type Table8Config struct {
	Seed     uint64
	Messages int
	SoC      soc.Config
}

// DefaultTable8Config returns the paper-calibrated validation setup: a
// corpus large enough that the accelerable CPU time exceeds the protobuf
// accelerator's setup time, as in the paper's batch.
func DefaultTable8Config() Table8Config {
	return Table8Config{Seed: 1, Messages: 250, SoC: soc.DefaultConfig()}
}

// Table8 runs the §6.4 validation: measure the SoC benchmarks, feed the
// measured parameters into the chained model, and compare.
func Table8(cfg Table8Config) (*soc.Table8, error) {
	return soc.Validate(cfg.Seed, cfg.Messages, cfg.SoC)
}
