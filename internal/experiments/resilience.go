package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/faults"
	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
	"hyperprof/internal/workload"
)

// resilienceRPCPolicy is the client-side policy both arms run with: a few
// quick retries so transient faults (crashed replica, dropped message, shed
// request) are retried instead of surfacing as operation errors. No deadline
// is set; hedging is exercised separately in the netsim tests.
func resilienceRPCPolicy() netsim.Policy {
	return netsim.Policy{
		MaxAttempts: 3,
		BackoffBase: 200 * time.Microsecond,
		BackoffMax:  2 * time.Millisecond,
	}
}

// ResilienceRow is one (platform, arm) measurement.
type ResilienceRow struct {
	Platform taxonomy.Platform
	// Faulted distinguishes the fault-injected arm from the baseline.
	Faulted bool
	// Ops and Errors count issued operations and the subset that failed.
	Ops, Errors int
	// Availability is successful ops / issued ops.
	Availability float64
	// Elapsed is the virtual time to drain the workload.
	Elapsed time.Duration
	// GoodputOpsPerSec is successful ops per virtual second.
	GoodputOpsPerSec float64
	// Latency quantiles over per-operation end-to-end latencies.
	P50, P99, P999 time.Duration
	// FaultsApplied counts fault events that fired during the run.
	FaultsApplied int
	// FaultEvents lists the applied faults (empty for the baseline arm).
	FaultEvents []faults.Applied
}

// Resilience holds the full study: two rows per platform (baseline then
// faulted, in taxonomy.Platforms() order) plus the faulted arm's traces,
// fault marks and (when enabled) observability series for timeline export.
type Resilience struct {
	Cfg    StudyConfig
	Rows   []ResilienceRow
	Traces map[taxonomy.Platform][]*trace.Trace
	Marks  map[taxonomy.Platform][]trace.Mark
	// Series is the faulted arm's observability snapshot per platform; empty
	// unless Cfg.Obs.Enabled.
	Series map[taxonomy.Platform][]obs.Series
}

// resilienceArm is one completed (platform, arm) measurement plus the traces,
// fault marks and observability series the faulted arm exports, kept
// arm-local so platforms can run on concurrent goroutines — or in worker
// subprocesses — and merge afterwards in platform order. Fields are
// exported because the arm pair is the resilience study's wire type: the
// exec backend ships it between worker and coordinator as JSON (trace.Trace
// round-trips its sampling state through custom JSON for exactly this).
type resilienceArm struct {
	Row    ResilienceRow
	Traces []*trace.Trace
	Marks  []trace.Mark
	Series []obs.Series
}

// resilienceUnitKind tags platform arm pairs in the backend registry.
const resilienceUnitKind = "resilience/pair"

// resilienceUnit is the serialized form of one platform's baseline+faulted
// arm pair. The pair stays one unit because the fault schedule spans the
// measured baseline horizon.
type resilienceUnit struct {
	Platform taxonomy.Platform `json:"platform"`
}

// runResilienceUnit executes one platform's arm pair from its wire form.
func runResilienceUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u resilienceUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode resilience unit: %w", err)
	}
	r := &Resilience{Cfg: cfg}
	return r.runPair(u.Platform)
}

// runPair runs one platform's baseline arm and then, over the measured
// horizon, its faulted arm.
func (r *Resilience) runPair(p taxonomy.Platform) ([2]resilienceArm, error) {
	base, err := r.runArm(p, 0)
	if err != nil {
		return [2]resilienceArm{}, err
	}
	faulted, err := r.runArm(p, base.Row.Elapsed)
	if err != nil {
		return [2]resilienceArm{}, err
	}
	return [2]resilienceArm{base, faulted}, nil
}

// Resilience measures each platform fault-free, generates a seeded fault
// schedule spanning the measured horizon, and re-runs the identical workload
// under injection. Equal configs replay bit-identically; the three platforms
// run concurrently (bounded by cfg.Parallel) with each platform's
// baseline→faulted pair kept sequential, since the fault schedule spans the
// measured baseline horizon.
func (cfg StudyConfig) Resilience() (*Resilience, error) {
	if cfg.Clients <= 0 || cfg.TraceRate <= 0 {
		return nil, fmt.Errorf("experiments: invalid resilience config %+v", cfg)
	}
	r := &Resilience{
		Cfg:    cfg,
		Traces: map[taxonomy.Platform][]*trace.Trace{},
		Marks:  map[taxonomy.Platform][]trace.Mark{},
		Series: map[taxonomy.Platform][]obs.Series{},
	}
	platforms := taxonomy.Platforms()
	jobs := make([]func() ([2]resilienceArm, error), len(platforms))
	units := make([]any, len(platforms))
	for i, p := range platforms {
		p := p
		jobs[i] = func() ([2]resilienceArm, error) { return r.runPair(p) }
		units[i] = resilienceUnit{Platform: p}
	}
	pairs, err := runStudy(cfg, resilienceUnitKind, units, jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range platforms {
		for _, arm := range pairs[i] {
			r.Rows = append(r.Rows, arm.Row)
			if arm.Row.Faulted {
				r.Traces[p] = arm.Traces
				r.Marks[p] = arm.Marks
				if arm.Series != nil {
					r.Series[p] = arm.Series
				}
			}
		}
	}
	return r, nil
}

// Row returns the study's row for a platform arm.
func (r *Resilience) Row(p taxonomy.Platform, faulted bool) *ResilienceRow {
	for i := range r.Rows {
		if r.Rows[i].Platform == p && r.Rows[i].Faulted == faulted {
			return &r.Rows[i]
		}
	}
	return nil
}

// scheduleConfig converts the study's fractional fault rates into an
// absolute schedule over the measured horizon. Faults stop arriving at 80%
// of the horizon so recoveries land while the workload is still draining.
// stragglerProb overrides the configured probability so platforms whose
// targets cannot straggle (BigTable's tablet servers are not RPC-fronted)
// get crash-only schedules instead of dead skipped events.
func (r *Resilience) scheduleConfig(horizon time.Duration, seed uint64, stragglerProb float64) faults.ScheduleConfig {
	return faults.ScheduleConfig{
		Horizon:         time.Duration(float64(horizon) * 0.8),
		MTBF:            time.Duration(float64(horizon) * r.Cfg.Faults.MTBFFrac),
		MTTR:            time.Duration(float64(horizon) * r.Cfg.Faults.MTTRFrac),
		StragglerProb:   stragglerProb,
		StragglerFactor: r.Cfg.Faults.StragglerFactor,
		NetDegradeProb:  r.Cfg.Faults.NetDegradeProb,
		NetExtraDelay:   r.Cfg.Faults.NetExtraDelay,
		NetDropProb:     r.Cfg.Faults.NetDropProb,
		Seed:            seed,
	}
}

// runArm runs one platform arm. A zero horizon is the baseline (no faults);
// a positive horizon is the faulted arm with a schedule spanning it. The arm
// builds its own environment and kernel and touches no study state, so
// distinct platforms may run concurrently.
func (r *Resilience) runArm(p taxonomy.Platform, horizon time.Duration) (resilienceArm, error) {
	switch p {
	case taxonomy.Spanner:
		return r.runSpanner(horizon)
	case taxonomy.BigTable:
		return r.runBigTable(horizon)
	case taxonomy.BigQuery:
		return r.runBigQuery(horizon)
	}
	return resilienceArm{}, fmt.Errorf("experiments: unknown platform %q", p)
}

func (r *Resilience) runSpanner(horizon time.Duration) (resilienceArm, error) {
	env := platform.NewEnv(r.Cfg.Seed, r.Cfg.TraceRate)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	enableStudyObs(r.Cfg, env)
	scfg := spanner.DefaultConfig()
	scfg.RPC = resilienceRPCPolicy()
	db, err := spanner.New(env, scfg)
	if err != nil {
		return resilienceArm{}, err
	}
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		// One replica per group is injectable, so a majority always
		// survives and no acknowledged write can be lost. The target region
		// cycles with the group index, so initial leaders (region 0) are
		// crashed too and elections are exercised.
		for g := 0; g < scfg.Groups; g++ {
			g, region := g, g%scfg.Regions
			eng.Register(fmt.Sprintf("spanner/g%d/r%d", g, region), faults.Actions{
				Crash:       func() { _ = db.CrashReplica(g, region) },
				Recover:     func() { _ = db.RestartReplica(g, region) },
				SetSlowdown: func(f float64) { _ = db.SetReplicaSlowdown(g, region, f) },
			})
		}
		r.registerNetwork(eng, env)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), r.scheduleConfig(horizon, r.Cfg.Seed, r.Cfg.Faults.StragglerProb)))
	}
	run := workload.Spanner(env, db, workload.DefaultSpannerMix(), r.Cfg.Clients, r.Cfg.Ops.Spanner,
		workload.ClosedLoopOpts{Shape: r.Cfg.Shape})
	return r.measure(taxonomy.Spanner, env, run, eng)
}

func (r *Resilience) runBigTable(horizon time.Duration) (resilienceArm, error) {
	env := platform.NewEnv(r.Cfg.Seed+1, r.Cfg.TraceRate)
	enableStudyObs(r.Cfg, env)
	db, err := bigtable.New(env, bigtable.DefaultConfig())
	if err != nil {
		return resilienceArm{}, err
	}
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		// Every other tablet server is injectable (the rest always survive,
		// so reassignment always has a destination), plus one DFS
		// chunkserver to drive commit-log and read failover.
		for i := 0; i < bigtable.DefaultConfig().TabletServers; i += 2 {
			i := i
			eng.Register(fmt.Sprintf("bigtable/ts%d", i), faults.Actions{
				Crash:   func() { _ = db.FailTabletServer(i) },
				Recover: func() { _ = db.RecoverTabletServer(i) },
			})
		}
		eng.Register("bigtable/cs0", faults.Actions{
			Crash:   func() { _ = db.DFS().FailServer(0) },
			Recover: func() { _ = db.DFS().RecoverServer(0) },
		})
		r.registerNetwork(eng, env)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), r.scheduleConfig(horizon, r.Cfg.Seed+1, 0)))
	}
	run := workload.BigTable(env, db, workload.DefaultBigTableMix(), r.Cfg.Clients, r.Cfg.Ops.BigTable,
		workload.ClosedLoopOpts{Shape: r.Cfg.Shape})
	return r.measure(taxonomy.BigTable, env, run, eng)
}

func (r *Resilience) runBigQuery(horizon time.Duration) (resilienceArm, error) {
	env := platform.NewEnv(r.Cfg.Seed+2, r.Cfg.TraceRate)
	enableStudyObs(r.Cfg, env)
	qcfg := bigquery.DefaultConfig()
	qcfg.RPC = resilienceRPCPolicy()
	e, err := bigquery.New(env, qcfg)
	if err != nil {
		return resilienceArm{}, err
	}
	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(env.K)
		// Every other shuffle server is injectable so puts always have a
		// live destination; lost slots are speculatively re-executed.
		for i := 0; i < qcfg.ShuffleServers; i += 2 {
			i := i
			eng.Register(fmt.Sprintf("bigquery/ss%d", i), faults.Actions{
				Crash:       func() { _ = e.FailShuffleServer(i) },
				Recover:     func() { _ = e.RecoverShuffleServer(i) },
				SetSlowdown: func(f float64) { _ = e.SetShuffleSlowdown(i, f) },
			})
		}
		eng.Register("bigquery/cs0", faults.Actions{
			Crash:   func() { _ = e.DFS().FailServer(0) },
			Recover: func() { _ = e.DFS().RecoverServer(0) },
		})
		r.registerNetwork(eng, env)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), r.scheduleConfig(horizon, r.Cfg.Seed+2, r.Cfg.Faults.StragglerProb)))
	}
	run := workload.BigQuery(env, e, workload.DefaultBigQueryMix(), r.Cfg.Clients, r.Cfg.Ops.BigQuery,
		workload.ClosedLoopOpts{Shape: r.Cfg.Shape})
	return r.measure(taxonomy.BigQuery, env, run, eng)
}

func (r *Resilience) registerNetwork(eng *faults.Engine, env *platform.Env) {
	eng.RegisterNetwork(func(extra time.Duration, drop float64) {
		env.Net.Degrade(extra, drop, r.Cfg.Seed^0x4e455444) // "NETD"
	}, env.Net.Restore)
}

// measure drains the scheduled workload and condenses it into an arm-local
// result. Elapsed is the instant the workload drains, not the kernel's final
// time: recovery events from the fault schedule may fire after the last
// operation.
func (r *Resilience) measure(p taxonomy.Platform, env *platform.Env, run *workload.Run, eng *faults.Engine) (resilienceArm, error) {
	var elapsed time.Duration
	env.K.Go("resilience-measure", func(mp *sim.Proc) {
		mp.Wait(run.Done)
		elapsed = mp.Now()
	})
	env.Obs.Start(env.K)
	env.K.Run()
	row := ResilienceRow{
		Platform: p,
		Faulted:  eng != nil,
		Ops:      run.Completed,
		Errors:   len(run.Errors),
		Elapsed:  elapsed,
	}
	if row.Ops > 0 {
		row.Availability = float64(row.Ops-row.Errors) / float64(row.Ops)
	}
	if elapsed > 0 {
		row.GoodputOpsPerSec = float64(row.Ops-row.Errors) / elapsed.Seconds()
	}
	lat := &stats.Summary{}
	traces := env.Tracer.Sampled()
	for _, t := range traces {
		lat.Add((t.End - t.Start).Seconds())
	}
	if lat.N() > 0 {
		row.P50 = time.Duration(lat.Quantile(0.50) * float64(time.Second))
		row.P99 = time.Duration(lat.Quantile(0.99) * float64(time.Second))
		row.P999 = time.Duration(lat.Quantile(0.999) * float64(time.Second))
	}
	arm := resilienceArm{Row: row, Series: env.Obs.Snapshot()}
	if eng != nil {
		arm.Row.FaultsApplied = len(eng.Applied)
		arm.Row.FaultEvents = eng.Applied
		arm.Traces = traces
		arm.Marks = make([]trace.Mark, 0, len(eng.Applied))
		for _, a := range eng.Applied {
			arm.Marks = append(arm.Marks, trace.Mark{At: a.At, Name: a.Label()})
		}
	}
	return arm, nil
}

// RenderResilience renders the study as a fixed-width table with a per-row
// faults-on vs faults-off comparison.
func RenderResilience(r *Resilience) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience under injected faults (seed %d; availability = successful ops / issued ops)\n", r.Cfg.Seed)
	fmt.Fprintf(&b, "%-10s %-9s %6s %5s %7s %10s %10s %10s %10s %10s %7s\n",
		"platform", "arm", "ops", "errs", "avail%", "elapsed", "goodput/s", "p50", "p99", "p999", "faults")
	for _, row := range r.Rows {
		arm := "baseline"
		if row.Faulted {
			arm = "faulted"
		}
		fmt.Fprintf(&b, "%-10s %-9s %6d %5d %7.2f %10s %10.1f %10s %10s %10s %7d\n",
			row.Platform, arm, row.Ops, row.Errors, row.Availability*100,
			row.Elapsed.Round(time.Millisecond), row.GoodputOpsPerSec,
			row.P50.Round(10*time.Microsecond), row.P99.Round(10*time.Microsecond),
			row.P999.Round(10*time.Microsecond), row.FaultsApplied)
	}
	return b.String()
}
