package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hyperprof/internal/obs"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// ObsStudy is the observability study: a characterization run with the
// metrics plane enabled, condensed into exportable per-platform time series.
// It is the simulated analogue of pointing the fleet's continuous profiler
// and monitoring stack at one representative day.
type ObsStudy struct {
	Cfg StudyConfig
	// Char is the underlying characterization (profiles, traces, inventory).
	Char *Characterization
	// Series is each platform's observability snapshot, in sorted-name order.
	Series map[taxonomy.Platform][]obs.Series
}

// Observe runs the characterization workload with the observability plane
// forced on and returns the collected time series alongside the underlying
// characterization. Equal configs replay bit-identically and the export is
// byte-identical between sequential and parallel runs.
func (cfg StudyConfig) Observe() (*ObsStudy, error) {
	cfg.Obs.Enabled = true
	ch, err := cfg.Characterize()
	if err != nil {
		return nil, err
	}
	return &ObsStudy{Cfg: cfg, Char: ch, Series: ch.Series}, nil
}

// platformSeries is the JSON export shape: one entry per platform, in
// taxonomy.Platforms() order.
type platformSeries struct {
	Platform string       `json:"platform"`
	Series   []obs.Series `json:"series"`
}

// MarshalPlatformSeries renders per-platform time series as one compact JSON
// document in taxonomy.Platforms() order — the canonical export the
// determinism tests pin byte-for-byte.
func MarshalPlatformSeries(m map[taxonomy.Platform][]obs.Series) ([]byte, error) {
	out := make([]platformSeries, 0, len(taxonomy.Platforms()))
	for _, p := range taxonomy.Platforms() {
		out = append(out, platformSeries{Platform: string(p), Series: m[p]})
	}
	return json.Marshal(out)
}

// CounterTracks converts per-platform series into Chrome-trace counter
// tracks, one process row per platform, so metrics render as step charts
// alongside query intervals and fault marks in the same document.
func CounterTracks(m map[taxonomy.Platform][]obs.Series) []trace.CounterTrack {
	var tracks []trace.CounterTrack
	for _, p := range taxonomy.Platforms() {
		for _, s := range m[p] {
			pts := make([]trace.CounterPoint, len(s.Points))
			for i, pt := range s.Points {
				pts[i] = trace.CounterPoint{At: pt.T, Value: pt.V}
			}
			tracks = append(tracks, trace.CounterTrack{
				Process: string(p),
				Name:    s.Name,
				Points:  pts,
			})
		}
	}
	return tracks
}

// JSON renders the study's time series as one compact JSON document.
func (o *ObsStudy) JSON() ([]byte, error) { return MarshalPlatformSeries(o.Series) }

// CounterTracks converts the study's series into Chrome-trace counter tracks.
func (o *ObsStudy) CounterTracks() []trace.CounterTrack { return CounterTracks(o.Series) }

// RenderObs renders a per-platform summary of the collected series: count,
// sampling interval, and the final value of a few headline series.
func RenderObs(o *ObsStudy) string {
	var b strings.Builder
	interval := o.Cfg.Obs.Interval
	if interval <= 0 {
		interval = obs.DefaultConfig().Interval
	}
	fmt.Fprintf(&b, "Observability study (seed %d, sampling every %s of virtual time)\n",
		o.Cfg.Seed, interval)
	fmt.Fprintf(&b, "%-10s %7s %9s %10s  %s\n", "platform", "series", "samples", "elapsed", "headline (final values)")
	for _, p := range taxonomy.Platforms() {
		series := o.Series[p]
		samples := 0
		for _, s := range series {
			if len(s.Points) > samples {
				samples = len(s.Points)
			}
		}
		fmt.Fprintf(&b, "%-10s %7d %9d %10s  %s\n",
			p, len(series), samples, o.Char.Elapsed[p].Round(time.Millisecond), headline(series))
	}
	return b.String()
}

// headline picks a few recognizable series and reports their last value.
func headline(series []obs.Series) string {
	wanted := []string{
		"rpc.calls", "rpc.retries", "rpc.sheds",
		"spanner.consensus.rounds", "bigtable.compactions.minor", "bigquery.shuffle.bytes",
	}
	var parts []string
	for _, w := range wanted {
		for _, s := range series {
			if s.Name == w && len(s.Points) > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", w, s.Points[len(s.Points)-1].V))
				break
			}
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
