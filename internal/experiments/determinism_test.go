package experiments

import (
	"bytes"
	"testing"

	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// These tests pin the parallel runner's core guarantee: fanning independent
// kernels out over worker goroutines must not change a single output byte
// relative to the sequential path. They compare the rendered report text, the
// machine-readable JSON and the exported Chrome-trace bytes between a
// Parallel=1 run and a Parallel=4 run of the same seed.

func determinismCharConfig() StudyConfig {
	cfg := DefaultCharStudyConfig()
	cfg.Ops = PlatformOps{Spanner: 300, BigTable: 300, BigQuery: 60}
	if testing.Short() {
		cfg.Ops = PlatformOps{Spanner: 120, BigTable: 120, BigQuery: 24}
	}
	return cfg
}

// charBytes renders every characterization artifact a byte-comparison can
// cover: the full JSON report, the fixed-width tables, and the Chrome trace.
func charBytes(t *testing.T, ch *Characterization) []byte {
	t.Helper()
	var buf bytes.Buffer
	data, err := BuildReport(ch).JSON()
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(data)
	buf.WriteString(RenderTable1(Table1(ch)))
	buf.WriteString(RenderFigure2(Figure2(ch)))
	buf.WriteString(RenderFigure3(Figure3(ch)))
	buf.WriteString(RenderTables67(ch))
	var all []*trace.Trace
	for _, p := range taxonomy.Platforms() {
		all = append(all, ch.Traces[p]...)
	}
	chrome, err := trace.ExportChrome(all, 2000)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(chrome)
	return buf.Bytes()
}

func TestCharacterizationParallelMatchesSequentialByteForByte(t *testing.T) {
	seq := determinismCharConfig()
	seq.Parallel = 1
	par := determinismCharConfig()
	par.Parallel = 4

	chSeq, err := seq.Characterize()
	if err != nil {
		t.Fatal(err)
	}
	chPar, err := par.Characterize()
	if err != nil {
		t.Fatal(err)
	}
	a, b := charBytes(t, chSeq), charBytes(t, chPar)
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel characterization diverged from sequential: %d vs %d bytes (first diff at %d)",
			len(a), len(b), firstDiff(a, b))
	}
}

func TestSafetyStudyParallelMatchesSequentialByteForByte(t *testing.T) {
	mk := func(parallel int) StudyConfig {
		cfg := DefaultSafetyStudyConfig()
		cfg.Check.Seeds = 2
		cfg.Ops = PlatformOps{Spanner: 120, BigTable: 120, BigQuery: 12}
		if testing.Short() {
			cfg.Ops = PlatformOps{Spanner: 60, BigTable: 60, BigQuery: 6}
		}
		cfg.Parallel = parallel
		return cfg
	}
	sSeq, err := mk(1).Safety()
	if err != nil {
		t.Fatal(err)
	}
	sPar, err := mk(4).Safety()
	if err != nil {
		t.Fatal(err)
	}
	a, b := []byte(RenderSafety(sSeq)), []byte(RenderSafety(sPar))
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel safety study diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	// The violation marks feed the Chrome-trace export; they must match too.
	for _, p := range taxonomy.Platforms() {
		am, bm := sSeq.Marks[p], sPar.Marks[p]
		if len(am) != len(bm) {
			t.Fatalf("%s: mark counts differ: %d vs %d", p, len(am), len(bm))
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("%s: mark %d differs: %+v vs %+v", p, i, am[i], bm[i])
			}
		}
	}
}

func TestResilienceStudyParallelMatchesSequentialByteForByte(t *testing.T) {
	mk := func(parallel int) StudyConfig {
		cfg := DefaultResilienceStudyConfig()
		cfg.Ops = PlatformOps{Spanner: 200, BigTable: 200, BigQuery: 24}
		if testing.Short() {
			cfg.Ops = PlatformOps{Spanner: 100, BigTable: 100, BigQuery: 12}
		}
		cfg.Parallel = parallel
		return cfg
	}
	rSeq, err := mk(1).Resilience()
	if err != nil {
		t.Fatal(err)
	}
	rPar, err := mk(4).Resilience()
	if err != nil {
		t.Fatal(err)
	}
	a, b := []byte(RenderResilience(rSeq)), []byte(RenderResilience(rPar))
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel resilience study diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for _, p := range taxonomy.Platforms() {
		at, bt := rSeq.Traces[p], rPar.Traces[p]
		ac, err := trace.ExportChrome(at, 2000)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := trace.ExportChrome(bt, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ac, bc) {
			t.Fatalf("%s: faulted-arm Chrome traces differ (first diff at %d)", p, firstDiff(ac, bc))
		}
	}
}

// TestObsStudyParallelMatchesSequentialByteForByte pins the observability
// export: both the JSON time series and the Chrome counter-track document
// must be byte-identical between a sequential and a parallel run. The series
// include every sampled counter, gauge, windowed quantile and
// continuous-profiling snapshot, so any scheduling nondeterminism in the
// metrics plane shows up here.
func TestObsStudyParallelMatchesSequentialByteForByte(t *testing.T) {
	mk := func(parallel int) StudyConfig {
		cfg := DefaultObsStudyConfig()
		cfg.Ops = PlatformOps{Spanner: 200, BigTable: 200, BigQuery: 30}
		if testing.Short() {
			cfg.Ops = PlatformOps{Spanner: 100, BigTable: 100, BigQuery: 12}
		}
		cfg.Parallel = parallel
		return cfg
	}
	obsBytes := func(o *ObsStudy) []byte {
		data, err := o.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b := trace.NewChromeBuilder()
		b.AddCounters(o.CounterTracks())
		chrome, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return append(data, chrome...)
	}
	oSeq, err := mk(1).Observe()
	if err != nil {
		t.Fatal(err)
	}
	oPar, err := mk(4).Observe()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range taxonomy.Platforms() {
		if len(oSeq.Series[p]) == 0 {
			t.Fatalf("%s: no observability series collected", p)
		}
	}
	a, b := obsBytes(oSeq), obsBytes(oPar)
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel observability export diverged from sequential: %d vs %d bytes (first diff at %d)",
			len(a), len(b), firstDiff(a, b))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
