package experiments

import (
	"strings"
	"testing"

	"hyperprof/internal/taxonomy"
)

// smallSafetyConfig shrinks the torture study to a fast smoke: two seeds per
// platform with the full fault rates.
func smallSafetyConfig() StudyConfig {
	cfg := DefaultSafetyStudyConfig()
	cfg.Check.Seeds = 2
	cfg.Ops = PlatformOps{Spanner: 120, BigTable: 120, BigQuery: 8}
	cfg.Clients = 4
	return cfg
}

func TestSafetyStudyFindsNoViolations(t *testing.T) {
	s, err := smallSafetyConfig().Safety()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ok() {
		t.Fatalf("safety study found violations:\n%s", RenderSafety(s))
	}
	// One calibration row plus Seeds faulted rows per platform.
	wantRows := len(taxonomy.Platforms()) * (1 + s.Cfg.Check.Seeds)
	if len(s.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(s.Rows), wantRows)
	}
	faultedWithFaults := 0
	for _, row := range s.Rows {
		if row.Ops == 0 {
			t.Errorf("%s seed %d: zero ops issued", row.Platform, row.Seed)
		}
		if !row.Faulted && row.Errors > 0 {
			t.Errorf("%s calibration run had %d errors", row.Platform, row.Errors)
		}
		if row.Faulted && row.FaultsApplied > 0 {
			faultedWithFaults++
		}
	}
	if faultedWithFaults == 0 {
		t.Fatal("no faulted run applied any faults — the torture arm is inert")
	}
	out := RenderSafety(s)
	if !strings.Contains(out, "PASS: no safety violations") {
		t.Fatalf("render missing PASS line:\n%s", out)
	}
}

func TestSafetyStudyIsDeterministic(t *testing.T) {
	cfg := smallSafetyConfig()
	cfg.Check.Seeds = 1
	a, err := cfg.Safety()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Safety()
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := RenderSafety(a), RenderSafety(b); ra != rb {
		t.Fatalf("same config, different studies:\n--- a ---\n%s\n--- b ---\n%s", ra, rb)
	}
}

func TestSafetyStudyRejectsInvalidConfig(t *testing.T) {
	cfg := smallSafetyConfig()
	cfg.Clients = 0
	if _, err := cfg.Safety(); err == nil {
		t.Fatal("want error for zero clients")
	}
}
