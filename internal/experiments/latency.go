package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/spanner"
	"hyperprof/internal/workload"
)

// This file implements the latency-under-load study: open-loop Poisson
// arrivals against a fresh Spanner deployment per offered rate, yielding
// the p50/p99 latency curve behind the databases' "stricter SLOs" (§5.6).

// LatencyPoint is one offered-load level's latency outcome.
type LatencyPoint struct {
	RatePerSec float64
	P50Seconds float64
	P99Seconds float64
}

// latencyUnitKind tags latency points in the backend work-unit registry.
const latencyUnitKind = "latency/point"

// latencyUnit is the serialized form of one offered-load point.
type latencyUnit struct {
	Rate float64 `json:"rate"`
	Ops  int     `json:"ops"`
}

// runLatencyUnit executes one offered-load point from its wire form.
func runLatencyUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u latencyUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode latency unit: %w", err)
	}
	return runLatencyPoint(cfg.Seed, u.Rate, u.Ops)
}

// runLatencyPoint drives one fresh Spanner deployment at one offered rate.
func runLatencyPoint(seed uint64, rate float64, opsPerPoint int) (LatencyPoint, error) {
	env := platform.NewEnv(seed, 1)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	db, err := spanner.New(env, spanner.DefaultConfig())
	if err != nil {
		return LatencyPoint{}, err
	}
	res := workload.SpannerOpenLoop(env, db, workload.DefaultSpannerMix(), rate, opsPerPoint)
	env.K.Run()
	if err := res.Err(); err != nil {
		return LatencyPoint{}, err
	}
	return LatencyPoint{
		RatePerSec: rate,
		P50Seconds: res.Latencies.Quantile(0.5),
		P99Seconds: res.Latencies.Quantile(0.99),
	}, nil
}

// Latency runs the Spanner open-loop workload at each offered rate
// (operations per second of virtual time), building a fresh deployment per
// point so the curve is not contaminated by carry-over queueing. The points
// are independent simulations, so they fan out over the study's configured
// backend and parallelism, and the curve comes back in rate order
// regardless of completion order.
func (cfg StudyConfig) Latency(rates []float64, opsPerPoint int) ([]LatencyPoint, error) {
	if opsPerPoint <= 0 {
		return nil, fmt.Errorf("experiments: opsPerPoint must be positive")
	}
	jobs := make([]func() (LatencyPoint, error), len(rates))
	units := make([]any, len(rates))
	for i, rate := range rates {
		rate := rate
		jobs[i] = func() (LatencyPoint, error) { return runLatencyPoint(cfg.Seed, rate, opsPerPoint) }
		units[i] = latencyUnit{Rate: rate, Ops: opsPerPoint}
	}
	return runStudy(cfg, latencyUnitKind, units, jobs)
}

// RenderLatency renders a latency-under-load curve.
func RenderLatency(points []LatencyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Latency under load (Spanner, open-loop Poisson arrivals):\n")
	fmt.Fprintf(&b, "  %12s %10s %10s\n", "rate (ops/s)", "p50 (ms)", "p99 (ms)")
	for _, pt := range points {
		fmt.Fprintf(&b, "  %12.0f %10.2f %10.2f\n", pt.RatePerSec, pt.P50Seconds*1e3, pt.P99Seconds*1e3)
	}
	return b.String()
}
