package experiments

// The overload study is the control-plane counterpart of the resilience
// study: instead of asking "does the platform survive crashes", it asks
// "does the platform survive its own clients". Each platform runs the same
// open-loop multi-tenant workload twice through a retry-storm trigger (a
// brownout compounded by a flash crowd) — once naive (unbounded queues,
// eager retries, no tenant isolation) and once protected (bounded queues
// with CoDel expiry and adaptive shedding, retry budgets, circuit breakers,
// weighted tenant shares). The rows compare goodput before the trigger with
// goodput in the final quarter of the run, after the trigger has long
// cleared: a metastable collapse shows up as a RecoveryFrac far below 1 on
// the naive arm. Everything is a pure function of the config seed, so
// sequential and parallel runs render byte-identical reports.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/faults"
	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/workload"
)

// overloadTenants returns the study's fixed tenant mix for a platform's total
// offered rate: a high-priority interactive tenant with half the load, a
// batch tenant with 30%, and the flash tenant (the one the trigger surges)
// with the rest.
func overloadTenants(rate float64) []workload.OverloadTenant {
	return []workload.OverloadTenant{
		{Name: "interactive", Weight: 3, RatePerSec: rate * 0.5},
		{Name: "batch", Weight: 1, RatePerSec: rate * 0.3},
		{Name: "flash", Weight: 1, RatePerSec: rate * 0.2},
	}
}

// overloadRPCPolicy builds the client-side policy for one arm. Both arms
// retry on a per-attempt deadline — that is what turns a brownout into
// amplified load — but only the protected arm meters its retries with a
// token budget and per-target circuit breakers.
func (o *Overload) overloadRPCPolicy(protected bool, deadline time.Duration) netsim.Policy {
	if !protected {
		// Eager client: quick, barely backed-off retries with no budget.
		// This is the retry amplifier that sustains the metastable state.
		return netsim.Policy{
			Deadline:    deadline,
			MaxAttempts: 6,
			BackoffBase: 100 * time.Microsecond,
			BackoffMax:  500 * time.Microsecond,
		}
	}
	l := o.Cfg.Load
	return netsim.Policy{
		Deadline:        deadline,
		MaxAttempts:     3,
		BackoffBase:     500 * time.Microsecond,
		BackoffMax:      5 * time.Millisecond,
		RetryBudget:     l.RetryBudget,
		BreakerFailures: l.BreakerFailures,
		BreakerCooldown: l.BreakerCooldown,
	}
}

// admission builds the protected arm's server-side admission knobs.
func (o *Overload) admission() netsim.Admission {
	l := o.Cfg.Load
	return netsim.Admission{
		MaxQueue:      l.MaxQueue,
		Target:        l.Target,
		Interval:      l.Interval,
		ShedStartFrac: l.ShedStartFrac,
		Seed:          o.Cfg.Seed ^ 0x4f564c44, // "OVLD"
	}
}

// TenantOverload is one tenant's accounting within an overload row, sorted
// by name in the exported slice.
type TenantOverload struct {
	Name                                     string
	Weight                                   float64
	Arrivals, Successes, Failures, Throttled int
}

// OverloadRow is one (platform, arm) measurement of the overload study.
type OverloadRow struct {
	Platform taxonomy.Platform
	// Protected distinguishes the protected arm (overload control plane on)
	// from the naive arm.
	Protected bool
	// Offered, Done, Errors and Throttled count arrivals, successful
	// completions, failed completions and governor throttles.
	Offered, Done, Errors, Throttled int
	// PreGoodput and PostGoodput are successful completions per virtual
	// second before the trigger and in the final quarter of the run;
	// RecoveryFrac is their ratio (the metastability verdict).
	PreGoodput, PostGoodput float64
	RecoveryFrac            float64
	// Sheds counts server-side rejections (hard bound plus adaptive),
	// Expired counts CoDel queue-deadline discards.
	Sheds, Expired int
	// Client-side control-plane accounting.
	Retries, BudgetExhausted, BreakerOpens, BreakerFastFails int
	// Fairness is Jain's index over weight-normalized tenant goodput.
	Fairness float64
	// Tenants holds per-tenant accounting, sorted by name.
	Tenants []TenantOverload
	// FaultsApplied counts trigger events that fired.
	FaultsApplied int
}

// Overload holds the full study: two rows per platform (naive then
// protected, in taxonomy.Platforms() order) plus the protected arm's
// observability series when enabled.
type Overload struct {
	Cfg    StudyConfig
	Rows   []OverloadRow
	Series map[taxonomy.Platform][]obs.Series
}

// overloadArm is one completed (platform, arm) measurement. Fields are
// exported because the arm pair is the overload study's wire type: the exec
// backend ships it between worker and coordinator as JSON.
type overloadArm struct {
	Row    OverloadRow
	Series []obs.Series
}

// overloadUnitKind tags platform arm pairs in the backend registry.
const overloadUnitKind = "overload/pair"

// overloadUnit is the serialized form of one platform's naive+protected arm
// pair. The arms share nothing, but pairing them keeps one platform's work
// on one worker, matching the in-process job granularity.
type overloadUnit struct {
	Platform taxonomy.Platform `json:"platform"`
}

// runOverloadUnit executes one platform's arm pair from its wire form.
func runOverloadUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u overloadUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode overload unit: %w", err)
	}
	o := &Overload{Cfg: cfg}
	return o.runPair(u.Platform)
}

// runPair runs one platform's naive arm and then its protected arm.
func (o *Overload) runPair(p taxonomy.Platform) ([2]overloadArm, error) {
	naive, err := o.runArm(p, false)
	if err != nil {
		return [2]overloadArm{}, err
	}
	prot, err := o.runArm(p, true)
	if err != nil {
		return [2]overloadArm{}, err
	}
	return [2]overloadArm{naive, prot}, nil
}

// Row returns the study's row for a platform arm.
func (o *Overload) Row(p taxonomy.Platform, protected bool) *OverloadRow {
	for i := range o.Rows {
		if o.Rows[i].Platform == p && o.Rows[i].Protected == protected {
			return &o.Rows[i]
		}
	}
	return nil
}

// Overload runs the overload study: per platform, a naive and a protected
// arm of the same open-loop multi-tenant workload through the same
// retry-storm trigger. The three platforms run concurrently (bounded by
// cfg.Parallel); each platform's arms share nothing, so arm order within a
// job is merely conventional.
func (cfg StudyConfig) Overload() (*Overload, error) {
	l := cfg.Load
	if l.Duration <= 0 || l.SpannerRate <= 0 || l.BigTableRate <= 0 || l.BigQueryRate <= 0 {
		return nil, fmt.Errorf("experiments: invalid overload config %+v", l)
	}
	if l.TriggerAt <= 0 || l.TriggerAt+l.TriggerDur > l.Duration*3/4 {
		return nil, fmt.Errorf("experiments: overload trigger [%v,%v) must clear before the final quarter of %v",
			l.TriggerAt, l.TriggerAt+l.TriggerDur, l.Duration)
	}
	o := &Overload{Cfg: cfg, Series: map[taxonomy.Platform][]obs.Series{}}
	platforms := taxonomy.Platforms()
	jobs := make([]func() ([2]overloadArm, error), len(platforms))
	units := make([]any, len(platforms))
	for i, p := range platforms {
		p := p
		jobs[i] = func() ([2]overloadArm, error) { return o.runPair(p) }
		units[i] = overloadUnit{Platform: p}
	}
	pairs, err := runStudy(cfg, overloadUnitKind, units, jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range platforms {
		for _, arm := range pairs[i] {
			o.Rows = append(o.Rows, arm.Row)
			if arm.Row.Protected && arm.Series != nil {
				o.Series[p] = arm.Series
			}
		}
	}
	return o, nil
}

func (o *Overload) runArm(p taxonomy.Platform, protected bool) (overloadArm, error) {
	switch p {
	case taxonomy.Spanner:
		return o.runSpanner(protected)
	case taxonomy.BigTable:
		return o.runBigTable(protected)
	case taxonomy.BigQuery:
		return o.runBigQuery(protected)
	}
	return overloadArm{}, fmt.Errorf("experiments: unknown platform %q", p)
}

// governor builds the protected arm's tenant governor (nil for naive arms).
func (o *Overload) governor(protected bool, env *platform.Env) *netsim.TenantGovernor {
	if !protected {
		return nil
	}
	gov := netsim.NewTenantGovernor(o.Cfg.Load.QoSCapacity)
	gov.EnableMetrics(env.Obs)
	return gov
}

// trigger injects the retry-storm scenario: a brownout on the given server
// targets (already registered with the engine) compounded by a flash crowd
// on the flash tenant. Platforms without a slowdown hook pass no servers and
// get the flash crowd alone.
func (o *Overload) trigger(eng *faults.Engine, run *workload.OverloadRun, servers []string) {
	l := o.Cfg.Load
	eng.Register("tenant/flash", faults.Actions{
		SetRate: func(mult float64) { run.SetRateMult("flash", mult) },
	})
	eng.RunScenario(faults.RetryStorm(servers, "tenant/flash", l.TriggerAt, l.TriggerDur, l.SlowFactor, l.FlashMult))
}

// finish drains the run, stopping the platform behind it, and condenses the
// measurement into a row. stop runs on the sim clock once the workload is
// fully drained (the open-loop driver has no shutdown hook of its own).
func (o *Overload) finish(p taxonomy.Platform, protected bool, env *platform.Env,
	run *workload.OverloadRun, eng *faults.Engine, stop func()) overloadArm {
	env.K.Go("overload-stop", func(sp *sim.Proc) {
		sp.Wait(run.Done)
		if stop != nil {
			stop()
		}
	})
	env.Obs.Start(env.K)
	env.K.Run()

	l := o.Cfg.Load
	postStart := l.Duration * 3 / 4
	row := OverloadRow{
		Platform:      p,
		Protected:     protected,
		PreGoodput:    float64(run.GoodputBetween(0, l.TriggerAt)) / l.TriggerAt.Seconds(),
		PostGoodput:   float64(run.GoodputBetween(postStart, l.Duration)) / (l.Duration - postStart).Seconds(),
		Fairness:      run.Fairness(),
		FaultsApplied: len(eng.Applied),
	}
	row.Offered, row.Done, row.Errors, row.Throttled = run.Totals()
	if row.PreGoodput > 0 {
		row.RecoveryFrac = row.PostGoodput / row.PreGoodput
	}
	for _, t := range run.Tenants {
		row.Tenants = append(row.Tenants, TenantOverload{
			Name: t.Name, Weight: t.Weight,
			Arrivals: t.Arrivals, Successes: t.Successes, Failures: t.Failures, Throttled: t.Throttled,
		})
	}
	sort.Slice(row.Tenants, func(i, j int) bool { return row.Tenants[i].Name < row.Tenants[j].Name })
	return overloadArm{Row: row, Series: env.Obs.Snapshot()}
}

// clientCounters copies the RPC client's control-plane accounting into a row.
func (row *OverloadRow) clientCounters(c *netsim.Client) {
	row.Retries = c.Retries
	row.BudgetExhausted = c.BudgetExhausted
	row.BreakerOpens = c.BreakerOpens
	row.BreakerFastFails = c.BreakerFastFails
}

func (o *Overload) runSpanner(protected bool) (overloadArm, error) {
	cfg := o.Cfg
	env := platform.NewEnv(cfg.Seed, cfg.TraceRate)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	enableStudyObs(cfg, env)
	scfg := spanner.DefaultConfig()
	scfg.RPC = o.overloadRPCPolicy(protected, 6*time.Millisecond)
	if protected {
		scfg.Admission = o.admission()
	}
	db, err := spanner.New(env, scfg)
	if err != nil {
		return overloadArm{}, err
	}
	gov := o.governor(protected, env)
	mix := workload.DefaultSpannerMix()
	run := workload.Overload(env, workload.OverloadConfig{
		Duration: cfg.Load.Duration,
		Window:   cfg.Load.Window,
		Tenants:  overloadTenants(cfg.Load.SpannerRate),
		Governor: gov,
		Shape:    cfg.Shape,
	}, func(tenant string, rng *stats.RNG) func() func(p *sim.Proc) error {
		picker := stats.NewWeighted(rng, []float64{mix.Reads, mix.Writes, mix.Queries})
		val := []byte("spanner-overload-value-0123456789abcdef")
		return func() func(p *sim.Proc) error {
			g := rng.Intn(db.NumGroups())
			row := db.PickRow()
			op := picker.Next()
			strong := rng.Bool(mix.StrongReadFrac)
			return func(p *sim.Proc) error {
				tr := env.Tracer.Start(taxonomy.Spanner, p.Now())
				var err error
				switch op {
				case 0:
					_, err = db.Read(p, tr, g, row, strong)
				case 1:
					err = db.Commit(p, tr, g, row, val)
				default:
					_, err = db.Query(p, tr, g, row)
				}
				env.Tracer.Finish(tr, p.Now())
				return err
			}
		}
	})
	eng := faults.NewEngine(env.K)
	var servers []string
	for g := 0; g < scfg.Groups; g++ {
		for r := 0; r < scfg.Regions; r++ {
			g, r := g, r
			name := fmt.Sprintf("spanner/g%d/r%d", g, r)
			servers = append(servers, name)
			eng.Register(name, faults.Actions{
				SetSlowdown: func(f float64) { _ = db.SetReplicaSlowdown(g, r, f) },
			})
		}
	}
	o.trigger(eng, run, servers)
	arm := o.finish(taxonomy.Spanner, protected, env, run, eng, db.Stop)
	shed, adaptive, expired := db.OverloadStats()
	arm.Row.Sheds = shed + adaptive
	arm.Row.Expired = expired
	arm.Row.clientCounters(db.RPCClient())
	return arm, nil
}

func (o *Overload) runBigTable(protected bool) (overloadArm, error) {
	cfg := o.Cfg
	env := platform.NewEnv(cfg.Seed+1, cfg.TraceRate)
	enableStudyObs(cfg, env)
	bcfg := bigtable.DefaultConfig()
	if protected {
		bcfg.Admission = o.admission()
	}
	db, err := bigtable.New(env, bcfg)
	if err != nil {
		return overloadArm{}, err
	}
	gov := o.governor(protected, env)
	mix := workload.DefaultBigTableMix()
	run := workload.Overload(env, workload.OverloadConfig{
		Duration: cfg.Load.Duration,
		Window:   cfg.Load.Window,
		Tenants:  overloadTenants(cfg.Load.BigTableRate),
		Governor: gov,
		Shape:    cfg.Shape,
	}, func(tenant string, rng *stats.RNG) func() func(p *sim.Proc) error {
		picker := stats.NewWeighted(rng, []float64{mix.Gets, mix.Puts, mix.Scans})
		val := []byte("bigtable-overload-value-0123456789abcdef")
		return func() func(p *sim.Proc) error {
			t := rng.Intn(db.NumTablets())
			row := db.PickRow()
			op := picker.Next()
			return func(p *sim.Proc) error {
				tr := env.Tracer.Start(taxonomy.BigTable, p.Now())
				var err error
				switch op {
				case 0:
					_, err = db.Get(p, tr, t, row)
				case 1:
					err = db.Put(p, tr, t, row, val)
				default:
					_, err = db.Scan(p, tr, t, row)
				}
				env.Tracer.Finish(tr, p.Now())
				return err
			}
		}
	})
	// BigTable operations execute on the tablet server's node directly (no
	// RPC queue, no slowdown hook), so the trigger is the flash crowd alone;
	// overload pressure comes from the surged arrival rate itself.
	eng := faults.NewEngine(env.K)
	o.trigger(eng, run, nil)
	arm := o.finish(taxonomy.BigTable, protected, env, run, eng, nil)
	arm.Row.Sheds = db.Shed + db.ShedAdaptive
	return arm, nil
}

func (o *Overload) runBigQuery(protected bool) (overloadArm, error) {
	cfg := o.Cfg
	env := platform.NewEnv(cfg.Seed+2, cfg.TraceRate)
	enableStudyObs(cfg, env)
	qcfg := bigquery.DefaultConfig()
	qcfg.RPC = o.overloadRPCPolicy(protected, 20*time.Millisecond)
	if protected {
		qcfg.Admission = o.admission()
	}
	e, err := bigquery.New(env, qcfg)
	if err != nil {
		return overloadArm{}, err
	}
	gov := o.governor(protected, env)
	mix := workload.DefaultBigQueryMix()
	run := workload.Overload(env, workload.OverloadConfig{
		Duration: cfg.Load.Duration,
		Window:   cfg.Load.Window,
		Tenants:  overloadTenants(cfg.Load.BigQueryRate),
		Governor: gov,
		Shape:    cfg.Shape,
	}, func(tenant string, rng *stats.RNG) func() func(p *sim.Proc) error {
		picker := stats.NewWeighted(rng, []float64{mix.ScanAgg, mix.Join, mix.Report})
		return func() func(p *sim.Proc) error {
			q := bigquery.Query{Threshold: int64(rng.Intn(900))}
			switch picker.Next() {
			case 0:
				q.Kind = bigquery.ScanAgg
			case 1:
				q.Kind = bigquery.JoinQuery
			default:
				q.Kind = bigquery.Report
			}
			return func(p *sim.Proc) error {
				tr := env.Tracer.Start(taxonomy.BigQuery, p.Now())
				_, err := e.Run(p, tr, q)
				env.Tracer.Finish(tr, p.Now())
				return err
			}
		}
	})
	eng := faults.NewEngine(env.K)
	var servers []string
	for i := 0; i < qcfg.ShuffleServers; i++ {
		i := i
		name := fmt.Sprintf("bigquery/ss%d", i)
		servers = append(servers, name)
		eng.Register(name, faults.Actions{
			SetSlowdown: func(f float64) { _ = e.SetShuffleSlowdown(i, f) },
		})
	}
	o.trigger(eng, run, servers)
	arm := o.finish(taxonomy.BigQuery, protected, env, run, eng, e.Stop)
	shed, adaptive, expired := e.OverloadStats()
	arm.Row.Sheds = shed + adaptive
	arm.Row.Expired = expired
	arm.Row.clientCounters(e.RPCClient())
	return arm, nil
}

// JSON renders the study's machine-readable export: the seed and the rows,
// with per-tenant slices already name-sorted, so equal configs produce
// byte-identical documents.
func (o *Overload) JSON() ([]byte, error) {
	doc := struct {
		Seed uint64
		Rows []OverloadRow
	}{Seed: o.Cfg.Seed, Rows: o.Rows}
	return json.MarshalIndent(doc, "", "  ")
}

// RenderOverload renders the study as a fixed-width table: one naive and one
// protected row per platform, with the recovery fraction (post-trigger
// goodput over pre-trigger goodput) as the headline metastability verdict.
func RenderOverload(o *Overload) string {
	var b strings.Builder
	l := o.Cfg.Load
	fmt.Fprintf(&b, "Overload control under a retry storm (seed %d; trigger %v+%v, slow x%.0f, flash x%.0f)\n",
		o.Cfg.Seed, l.TriggerAt, l.TriggerDur, l.SlowFactor, l.FlashMult)
	fmt.Fprintf(&b, "%-10s %-10s %7s %7s %6s %6s %9s %9s %7s %6s %7s %7s %6s %6s %6s\n",
		"platform", "arm", "offered", "done", "errs", "thr", "pre/s", "post/s", "recov%", "sheds", "expired", "retries", "budget", "brkr", "fair")
	for _, row := range o.Rows {
		arm := "naive"
		if row.Protected {
			arm = "protected"
		}
		fmt.Fprintf(&b, "%-10s %-10s %7d %7d %6d %6d %9.1f %9.1f %7.1f %6d %7d %7d %6d %6d %6.3f\n",
			row.Platform, arm, row.Offered, row.Done, row.Errors, row.Throttled,
			row.PreGoodput, row.PostGoodput, row.RecoveryFrac*100,
			row.Sheds, row.Expired, row.Retries, row.BudgetExhausted, row.BreakerOpens, row.Fairness)
	}
	return b.String()
}
