package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/check"
	"hyperprof/internal/faults"
	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
	"hyperprof/internal/workload"
)

// This file is the cross-platform pipeline study: one simulation chaining all
// three platforms — BigTable ingest feeding a BigQuery iterative PageRank
// over the shuffle plane feeding Spanner serving — with every logical record
// carrying one trace ID across the stage boundaries, so the Chrome export
// shows a single end-to-end request crossing the three platform process
// lanes. Three arms run: a fault-free baseline (which calibrates the fault
// horizon and supplies the exported traces), per-seed faulted arms that kill
// shuffle servers — the middle stage's state plane — mid-iteration while a
// forced replay exercises the BigQuery→Spanner dedup latch (these must stay
// clean: replay plus dedup is exactly-once), and an optional broken arm that
// disables the latch under the same replay so the pipeline-handoff invariant
// convicts the double-write.

// armFaulted labels the torture arms of the pipeline study (armBaseline and
// armBroken are shared with the partition study).
const armFaulted = "faulted"

// pipelinePlatform tags pipeline-study findings: a violation at a stage
// boundary belongs to the pipeline, not to any one platform.
const pipelinePlatform = taxonomy.Platform("Pipeline")

// PipelineRow is one (arm, seed) pipeline run.
type PipelineRow struct {
	// Arm is "baseline" (fault-free calibration), "faulted" (shuffle-server
	// kills plus a forced replay) or "broken" (replay with the dedup latch
	// off).
	Arm  string
	Seed uint64
	// Records and Batches echo the workload sizing.
	Records, Batches int
	// Ops and Errors count completed stage operations and the subset that
	// failed after retries.
	Ops, Errors int
	// Elapsed is the virtual time for the pipeline to drain.
	Elapsed time.Duration
	// EndToEndP50 and EndToEndP99 summarize per-record ingest-start to
	// serving-finish latency.
	EndToEndP50, EndToEndP99 time.Duration
	// Replays counts analytic passes beyond a batch's first; Deduped counts
	// serve passes the handoff latch suppressed.
	Replays, Deduped int
	// RePuts and Speculative are the BigQuery shuffle-plane recovery
	// counters: puts redirected off a dead home server, and stage-1 shards
	// re-executed because their shuffle slot was lost mid-iteration.
	RePuts, Speculative int
	// FaultsApplied counts fault events that fired during the run.
	FaultsApplied int
	// Violations counts checker findings for this run.
	Violations int
}

// Pipeline holds the full study: the baseline row, the faulted rows per seed,
// the optional broken row, plus the baseline run's sampled traces (and
// counter tracks when the obs plane is on) and the first faulted arm's fault
// marks for Chrome export.
type Pipeline struct {
	Cfg  StudyConfig
	Rows []PipelineRow
	// Violations collects baseline- and faulted-arm findings — any entry is
	// a real exactly-once bug at a stage boundary (or a platform-level
	// safety bug surfaced by the pipeline workload).
	Violations []SafetyViolation
	// BrokenViolations collects the broken arm's findings — expected by
	// construction; an *empty* slice with the broken arm enabled means the
	// handoff checker missed the planted double-write.
	BrokenViolations []SafetyViolation
	// Traces are the baseline arm's sampled traces: per record, one ingest
	// span, one analytics span and one serving span sharing a trace ID.
	Traces []*trace.Trace
	// Counters are the baseline arm's metric time series as Chrome counter
	// tracks (empty unless the obs plane is enabled).
	Counters []trace.CounterTrack
	// Marks carries the first faulted arm's applied faults and violations as
	// timeline marks.
	Marks []trace.Mark
}

// Ok reports whether the baseline and faulted arms finished with zero
// violations (the broken arm is expected to violate and does not count).
func (s *Pipeline) Ok() bool { return len(s.Violations) == 0 }

// pipelineArm is one completed arm, self-contained for concurrent (or
// out-of-process) execution and ordered merge; it is the study's wire type.
type pipelineArm struct {
	Row        PipelineRow
	Violations []SafetyViolation
	Marks      []trace.Mark
	Traces     []*trace.Trace
	Counters   []trace.CounterTrack
}

// pipelineUnitKind tags pipeline arms in the backend work-unit registry.
const pipelineUnitKind = "pipeline/arm"

// pipelineUnit is the serialized form of one (arm, seed) run.
type pipelineUnit struct {
	Arm     string        `json:"arm"`
	Seed    uint64        `json:"seed"`
	Horizon time.Duration `json:"horizon"`
}

// runPipelineUnit executes one pipeline arm from its wire form.
func runPipelineUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u pipelineUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode pipeline unit: %w", err)
	}
	s := &Pipeline{Cfg: cfg}
	return s.runArm(u.Arm, u.Seed, u.Horizon)
}

// Pipeline runs the cross-platform pipeline study: one fault-free baseline
// (whose elapsed time becomes the fault horizon and whose traces become the
// Chrome export), then a faulted arm per seed, then the broken demonstration
// arm when configured. Equal configs replay bit-identically; arms fan out
// across the configured backend and merge in fixed order, so the export is
// byte-identical sequential vs parallel and across backends.
func (cfg StudyConfig) Pipeline() (*Pipeline, error) {
	if cfg.Clients <= 0 || cfg.Check.Seeds <= 0 || cfg.Pipe.Records <= 0 || cfg.Pipe.Batches <= 0 {
		return nil, fmt.Errorf("experiments: invalid pipeline config %+v", cfg)
	}
	s := &Pipeline{Cfg: cfg}
	calJobs := []func() (pipelineArm, error){
		func() (pipelineArm, error) { return s.runArm(armBaseline, cfg.Seed, 0) },
	}
	calUnits := []any{pipelineUnit{Arm: armBaseline, Seed: cfg.Seed}}
	cals, err := runStudy(cfg, pipelineUnitKind, calUnits, calJobs)
	if err != nil {
		return nil, err
	}
	horizon := cals[0].Row.Elapsed
	var jobs []func() (pipelineArm, error)
	var units []any
	for j := 0; j < cfg.Check.Seeds; j++ {
		seed := cfg.Seed + uint64(j)
		jobs = append(jobs, func() (pipelineArm, error) { return s.runArm(armFaulted, seed, horizon) })
		units = append(units, pipelineUnit{Arm: armFaulted, Seed: seed, Horizon: horizon})
	}
	if cfg.Pipe.IncludeBroken {
		jobs = append(jobs, func() (pipelineArm, error) { return s.runArm(armBroken, cfg.Seed, 0) })
		units = append(units, pipelineUnit{Arm: armBroken, Seed: cfg.Seed})
	}
	arms, err := runStudy(cfg, pipelineUnitKind, units, jobs)
	if err != nil {
		return nil, err
	}
	s.merge(cals[0])
	for _, arm := range arms {
		s.merge(arm)
	}
	return s, nil
}

// merge folds one arm into the study in deterministic order. The broken
// arm's violations route to the expected bucket; the baseline arm supplies
// the exported traces and counter tracks, the first faulted arm the marks.
func (s *Pipeline) merge(arm pipelineArm) {
	s.Rows = append(s.Rows, arm.Row)
	if arm.Row.Arm == armBroken {
		s.BrokenViolations = append(s.BrokenViolations, arm.Violations...)
	} else {
		s.Violations = append(s.Violations, arm.Violations...)
	}
	if arm.Row.Arm == armBaseline && arm.Row.Seed == s.Cfg.Seed {
		s.Traces = arm.Traces
		s.Counters = arm.Counters
	}
	if arm.Row.Arm == armFaulted && arm.Row.Seed == s.Cfg.Seed {
		s.Marks = arm.Marks
	}
}

// Row returns the first row matching arm, or nil.
func (s *Pipeline) Row(arm string) *PipelineRow {
	for i := range s.Rows {
		if s.Rows[i].Arm == arm {
			return &s.Rows[i]
		}
	}
	return nil
}

// scheduleFor converts the fractional fault rates into an absolute schedule
// over the calibrated horizon (faults stop arriving at 80% so recoveries land
// while the pipeline drains).
func (s *Pipeline) scheduleFor(horizon time.Duration, seed uint64) faults.ScheduleConfig {
	return faults.ScheduleConfig{
		Horizon:         time.Duration(float64(horizon) * 0.8),
		MTBF:            time.Duration(float64(horizon) * s.Cfg.Faults.MTBFFrac),
		MTTR:            time.Duration(float64(horizon) * s.Cfg.Faults.MTTRFrac),
		StragglerProb:   s.Cfg.Faults.StragglerProb,
		StragglerFactor: s.Cfg.Faults.StragglerFactor,
		NetDegradeProb:  s.Cfg.Faults.NetDegradeProb,
		NetExtraDelay:   s.Cfg.Faults.NetExtraDelay,
		NetDropProb:     s.Cfg.Faults.NetDropProb,
		Seed:            seed,
	}
}

// runArm executes one (arm, seed) pipeline run: three platform stacks built
// on ONE kernel with ONE shared tracer and ONE shared history, the pipeline
// workload chained across them, and — on faulted arms — a fault schedule
// killing BigQuery shuffle servers over the horizon while batch 0 replays.
func (s *Pipeline) runArm(arm string, seed uint64, horizon time.Duration) (pipelineArm, error) {
	cfg := s.Cfg
	k := sim.New()
	// Per-stage environments share the kernel but keep their own networks,
	// profilers and RNG streams; the seed offsets mirror the safety study's
	// per-platform decorrelation.
	spEnv := platform.NewEnvOn(k, seed, cfg.TraceRate)
	btEnv := platform.NewEnvOn(k, seed+1000, cfg.TraceRate)
	bqEnv := platform.NewEnvOn(k, seed+2000, cfg.TraceRate)
	spEnv.Net = netsim.New(k, spanner.RecommendedNetConfig())
	// One tracer across the stages: StartChild spans inherit the ingest root's
	// trace ID, which is what stitches a record's stages into one request.
	tracer := trace.NewTracer(cfg.TraceRate)
	spEnv.Tracer, btEnv.Tracer, bqEnv.Tracer = tracer, tracer, tracer
	// Each stage gets its own metrics registry (platform series names repeat
	// across stages, and a registry rejects duplicates); one shared sampling
	// tick below keeps the three registries on a common clock.
	stages := []struct {
		name string
		env  *platform.Env
	}{
		{string(taxonomy.BigTable), btEnv},
		{string(taxonomy.BigQuery), bqEnv},
		{string(taxonomy.Spanner), spEnv},
	}
	var regs []*obs.Registry
	if cfg.Obs.Enabled {
		for _, st := range stages {
			regs = append(regs, st.env.EnableObs(cfg.Obs.registry()))
		}
	}
	scfg := spanner.DefaultConfig()
	scfg.RPC = resilienceRPCPolicy()
	serving, err := spanner.New(spEnv, scfg)
	if err != nil {
		return pipelineArm{}, err
	}
	ingest, err := bigtable.New(btEnv, bigtable.DefaultConfig())
	if err != nil {
		return pipelineArm{}, err
	}
	qcfg := bigquery.DefaultConfig()
	qcfg.RPC = resilienceRPCPolicy()
	analytics, err := bigquery.New(bqEnv, qcfg)
	if err != nil {
		return pipelineArm{}, err
	}
	// One history across all three stages: the platforms' key namespaces are
	// disjoint ("g%d/r%d", "t%d/k%d", "q%d/p%d"), so per-key checkers never
	// mix stages, while cross-stage ordering shares one clock.
	h := check.NewHistory(k)
	serving.SetRecorder(h)
	ingest.SetRecorder(h)
	analytics.SetRecorder(h)
	reg := &check.Registry{}
	serving.RegisterInvariants(reg)
	ingest.RegisterInvariants(reg)
	analytics.RegisterInvariants(reg)
	reg.Register("bigtable-dfs", ingest.DFS().CheckReplicaConsistency)
	reg.Register("bigquery-dfs", analytics.DFS().CheckReplicaConsistency)

	wcfg := workload.PipelineConfig{
		Records:    cfg.Pipe.Records,
		Batches:    cfg.Pipe.Batches,
		Clients:    cfg.Clients,
		Iterations: cfg.Pipe.Iterations,
		// Both torture arms force a replay of batch 0; only the broken arm
		// disables the dedup latch that makes the replay exactly-once.
		ForceReplay:         arm != armBaseline,
		DisableHandoffDedup: arm == armBroken,
	}
	run := workload.Pipeline(btEnv, ingest, analytics, serving, wcfg)
	run.Ledger.RegisterInvariants(reg)

	var eng *faults.Engine
	if horizon > 0 {
		eng = faults.NewEngine(k)
		// The middle stage is the torture target: every other shuffle server
		// may crash (or straggle) mid-iteration, plus one DFS chunkserver, so
		// recovery exercises both re-put failover and speculative stage-1
		// re-execution while the handoff latch sees a replay.
		for i := 0; i < qcfg.ShuffleServers; i += 2 {
			i := i
			eng.Register(fmt.Sprintf("bigquery/ss%d", i), faults.Actions{
				Crash:       func() { _ = analytics.FailShuffleServer(i) },
				Recover:     func() { _ = analytics.RecoverShuffleServer(i) },
				SetSlowdown: func(f float64) { _ = analytics.SetShuffleSlowdown(i, f) },
			})
		}
		eng.Register("bigquery/cs0", faults.Actions{
			Crash:   func() { _ = analytics.DFS().FailServer(0) },
			Recover: func() { _ = analytics.DFS().RecoverServer(0) },
		})
		eng.RegisterNetwork(func(extra time.Duration, drop float64) {
			bqEnv.Net.Degrade(extra, drop, seed^0x4e455444) // "NETD"
		}, bqEnv.Net.Restore)
		eng.InjectAll(faults.GenerateSchedule(eng.Targets(), s.scheduleFor(horizon, seed+2000)))
	}

	var elapsed time.Duration
	k.Go("pipeline-measure", func(p *sim.Proc) {
		p.Wait(run.Done)
		elapsed = p.Now()
	})
	if len(regs) > 0 {
		// One sampling tick drives every stage registry. The per-registry
		// Start loop would deadlock termination here: each registry's pending
		// tick keeps the others rescheduling forever. A single tick that
		// stops when only it remains pending terminates with the workload.
		interval := cfg.Obs.Interval
		if interval <= 0 {
			interval = obs.DefaultConfig().Interval
		}
		var tick func()
		tick = func() {
			t := k.Now()
			for _, r := range regs {
				r.SampleAt(t)
			}
			if k.PendingEvents() > 0 {
				k.Schedule(interval, tick)
			}
		}
		k.Schedule(0, tick)
	}
	k.Run()

	row := PipelineRow{
		Arm: arm, Seed: seed,
		Records: cfg.Pipe.Records, Batches: cfg.Pipe.Batches,
		Ops: run.Completed, Errors: len(run.Errors), Elapsed: elapsed,
		Replays: run.Ledger.Replays(), Deduped: run.Ledger.Deduped(),
		RePuts: analytics.RePuts, Speculative: analytics.Speculative,
	}
	var e2e []time.Duration
	for _, d := range run.EndToEnd {
		if d > 0 {
			e2e = append(e2e, d)
		}
	}
	row.EndToEndP50 = durQuantile(e2e, 0.50)
	row.EndToEndP99 = durQuantile(e2e, 0.99)
	violations, marks := collect(pipelinePlatform, seed, h, reg, k.Now())
	row.Violations = len(violations)
	out := pipelineArm{Violations: violations}
	if eng != nil {
		row.FaultsApplied = len(eng.Applied)
		for _, a := range eng.Applied {
			out.Marks = append(out.Marks, trace.Mark{At: a.At, Name: a.Label()})
		}
		out.Marks = append(out.Marks, marks...)
	}
	out.Row = row
	if arm == armBaseline && seed == cfg.Seed {
		out.Traces = tracer.Sampled()
		for i, r := range regs {
			for _, series := range r.Snapshot() {
				track := trace.CounterTrack{Process: stages[i].name, Name: series.Name}
				for _, pt := range series.Points {
					track.Points = append(track.Points, trace.CounterPoint{At: pt.T, Value: pt.V})
				}
				out.Counters = append(out.Counters, track)
			}
		}
	}
	return out, nil
}

// durQuantile returns the q-quantile of the durations (nearest rank over the
// sorted values; 0 for an empty set).
func durQuantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

// StageBreakdowns computes the §4.1 overlap-categorized breakdown per stage:
// the baseline traces grouped by platform and aggregated into the Figure 2
// groups, so the pipeline gets the same characterization lens as the
// single-platform studies.
func (s *Pipeline) StageBreakdowns() map[taxonomy.Platform][]trace.GroupStats {
	byStage := map[taxonomy.Platform][]*trace.Trace{}
	for _, t := range s.Traces {
		byStage[t.Platform] = append(byStage[t.Platform], t)
	}
	out := map[taxonomy.Platform][]trace.GroupStats{}
	for p, ts := range byStage {
		out[p] = trace.Aggregate(ts)
	}
	return out
}

// Chrome renders the study's Chrome trace-event export: the baseline run's
// end-to-end spans (one tid per logical record, crossing the three platform
// pids), the first faulted arm's fault marks, and the obs plane's counter
// tracks when enabled.
func (s *Pipeline) Chrome() ([]byte, error) {
	b := trace.NewChromeBuilder()
	b.AddMarks(s.Marks)
	b.AddTraces(s.Traces, 0)
	b.AddCounters(s.Counters)
	return b.Marshal()
}

// JSON renders the study's machine-readable export: seed, rows and the
// broken arm's expected-violation digests, in fixed order, so equal configs
// produce byte-identical documents on every backend.
func (s *Pipeline) JSON() ([]byte, error) {
	type brokenViolation struct {
		Seed   uint64
		Kind   string
		Key    string
		Detail string
	}
	var broken []brokenViolation
	for _, v := range s.BrokenViolations {
		broken = append(broken, brokenViolation{Seed: v.Seed, Kind: v.Kind, Key: v.Key, Detail: v.Detail})
	}
	doc := struct {
		Seed             uint64
		Rows             []PipelineRow
		Violations       []SafetyViolation
		BrokenViolations []brokenViolation
	}{Seed: s.Cfg.Seed, Rows: s.Rows, Violations: s.Violations, BrokenViolations: broken}
	return json.MarshalIndent(doc, "", "  ")
}

// RenderPipeline renders the study as a fixed-width table, the per-stage
// §4.1 breakdown of the baseline run, and the verdict.
func RenderPipeline(s *Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-platform pipeline study (base seed %d, %d faulted seeds; BigTable → BigQuery PageRank → Spanner, one trace ID per record)\n",
		s.Cfg.Seed, s.Cfg.Check.Seeds)
	fmt.Fprintf(&b, "%-9s %6s %5s %5s %6s %5s %10s %10s %10s %7s %7s %7s %6s %7s %10s\n",
		"arm", "seed", "recs", "batch", "ops", "errs", "elapsed", "e2e-p50", "e2e-p99",
		"replays", "deduped", "reputs", "spec", "faults", "violations")
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "%-9s %6d %5d %5d %6d %5d %10s %10s %10s %7d %7d %7d %6d %7d %10d\n",
			row.Arm, row.Seed, row.Records, row.Batches, row.Ops, row.Errors,
			row.Elapsed.Round(10*time.Microsecond),
			row.EndToEndP50.Round(10*time.Microsecond), row.EndToEndP99.Round(10*time.Microsecond),
			row.Replays, row.Deduped, row.RePuts, row.Speculative,
			row.FaultsApplied, row.Violations)
	}
	stages := s.StageBreakdowns()
	for _, p := range taxonomy.Platforms() {
		gs, ok := stages[p]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "stage %s (§4.1 overlap-categorized, baseline):\n", p)
		for _, g := range gs {
			if g.Queries == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-18s %4d spans  cpu %5.1f%%  io %5.1f%%  remote %5.1f%%\n",
				g.Group, g.Queries, g.CPUFrac*100, g.IOFrac*100, g.RemoteFrac*100)
		}
	}
	if s.Ok() {
		b.WriteString("PASS: exactly-once handoff held across every baseline/faulted arm\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d violations\n", len(s.Violations))
		for _, v := range s.Violations {
			fmt.Fprintf(&b, "[seed %d] %s\n", v.Seed, v.Violation.String())
		}
	}
	if len(s.BrokenViolations) > 0 {
		fmt.Fprintf(&b, "broken-handoff arm (expected violations): %d found\n", len(s.BrokenViolations))
		for _, v := range s.BrokenViolations {
			fmt.Fprintf(&b, "[seed %d] %s\n", v.Seed, v.Violation.String())
		}
	}
	return b.String()
}
