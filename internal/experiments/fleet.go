package experiments

// This file implements the fleet-scale characterization: all three
// platforms sized to thousands of server machines serving an open-loop load
// attributed to a logical user population in the millions, with every
// unbounded recording surface swapped for its bounded-memory counterpart —
// latency summaries become quantile sketches (stats.Sketch), operation
// histories become reservoir samples (check.NewSampledHistory), and traces
// are sampled hard. The point is the paper's setting: hyperscale profiling
// works because nothing in the measurement path grows with the number of
// operations observed, only with the error bound you accept.
//
// Fleet rows are pure data, so the study fans out over every backend, and
// the exported bytes are identical sequential, parallel, pooled or across
// worker processes. Measured heap statistics are attached to the in-memory
// result only (json:"-"): memory is a property of the run, not of the
// canonical artifact.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/check"
	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/workload"
)

// fleetTraceRate keeps 1 in 256 traces in fleet mode, bounding tracer
// memory by ops/256 instead of ops.
const fleetTraceRate = 256

// defaultFleetHistoryCap is the reservoir size for sampled operation
// histories when SketchConfig.HistoryCap is zero.
const defaultFleetHistoryCap = 4096

// FleetRow is one platform's fleet-scale measurement. Every field is plain
// data derived from bounded-memory recorders, so rows serialize
// byte-identically across execution backends.
type FleetRow struct {
	Platform taxonomy.Platform
	// Servers is the simulated server-machine count of this deployment and
	// Users its share of the logical user population.
	Servers int
	Users   int
	// Ops counts completed operations; Errors the failed subset.
	Ops    int
	Errors int
	// Latency quantiles in seconds, from the bounded sketch (within the
	// study's configured relative error of exact).
	P50Seconds  float64
	P99Seconds  float64
	MaxSeconds  float64
	MeanSeconds float64
	// SketchBuckets is the sketch's occupied-bucket count — the witness that
	// latency recording stayed bounded no matter how many ops streamed by.
	SketchBuckets int
	// HistorySeen counts operations the platform recorded; HistoryKept is
	// the reservoir sample retained from them.
	HistorySeen int64
	HistoryKept int
	// VirtualSeconds is the simulated makespan.
	VirtualSeconds float64
}

// FleetHeapStats is the coordinator's measured memory high-water mark after
// the study. It is diagnostic, not canonical: excluded from the study's
// JSON so exported bytes stay identical across backends and machines.
type FleetHeapStats struct {
	HeapAllocBytes  uint64
	TotalAllocBytes uint64
	SysBytes        uint64
}

// FleetStudy is the fleet-scale characterization result.
type FleetStudy struct {
	Cfg  StudyConfig
	Rows []FleetRow
	// Heap is measured on the coordinator after the rows complete; see
	// FleetHeapStats for why it is not part of the canonical form.
	Heap FleetHeapStats `json:"-"`
}

// fleetUnitKind tags fleet platform runs in the backend work-unit registry.
const fleetUnitKind = "fleet/platform"

// fleetUnit is the serialized form of one platform's fleet run.
type fleetUnit struct {
	Platform taxonomy.Platform `json:"platform"`
	Servers  int               `json:"servers"`
	Users    int               `json:"users"`
	Ops      int               `json:"ops"`
	Rate     float64           `json:"rate"`
}

// runFleetUnit executes one platform's fleet run from its wire form.
func runFleetUnit(cfg StudyConfig, body json.RawMessage) (any, error) {
	var u fleetUnit
	if err := json.Unmarshal(body, &u); err != nil {
		return nil, fmt.Errorf("experiments: decode fleet unit: %w", err)
	}
	return runFleetPlatform(cfg, u)
}

// fleetRecorders builds the latency recorder and operation history for one
// fleet arm: bounded sketch and reservoir in sketch mode, the exact
// defaults otherwise (exact mode exists for error-bound validation at small
// scale; it defeats the purpose at fleet scale).
func fleetRecorders(cfg StudyConfig, env *platform.Env, seed uint64) (stats.Recorder, *check.History) {
	if !cfg.Sketch.Enabled {
		return &stats.Summary{}, check.NewHistory(env.K)
	}
	histCap := cfg.Sketch.HistoryCap
	if histCap <= 0 {
		histCap = defaultFleetHistoryCap
	}
	return stats.NewSketch(cfg.Sketch.RelErr), check.NewSampledHistory(env.K, histCap, seed)
}

// runFleetPlatform sizes one platform to its server share and drives it
// open-loop with bounded-memory recording.
func runFleetPlatform(cfg StudyConfig, u fleetUnit) (FleetRow, error) {
	opts := workload.OpenLoopOpts{Shape: cfg.Fleet.Shape}
	var (
		res  *workload.OpenLoopResult
		hist *check.History
		env  *platform.Env
	)
	switch u.Platform {
	case taxonomy.Spanner:
		env = platform.NewEnv(cfg.Seed, fleetTraceRate)
		env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
		sc := spanner.DefaultConfig()
		sc.Regions = 3
		sc.Groups = max(1, u.Servers/sc.Regions)
		// Rows stay bounded: users are a logical population attributed to
		// arrivals, not materialized state.
		sc.RowsPerGroup = 64
		db, err := spanner.New(env, sc)
		if err != nil {
			return FleetRow{}, err
		}
		var rec stats.Recorder
		rec, hist = fleetRecorders(cfg, env, cfg.Seed)
		db.SetRecorder(hist)
		opts.Latencies = rec
		res = workload.SpannerOpenLoopWithOpts(env, db, workload.DefaultSpannerMix(), u.Rate, u.Ops, opts)
	case taxonomy.BigTable:
		env = platform.NewEnv(cfg.Seed+1, fleetTraceRate)
		bc := bigtable.DefaultConfig()
		bc.TabletServers = max(1, u.Servers*4/5)
		bc.Chunkservers = max(3, u.Servers-bc.TabletServers)
		bc.Tablets = 2 * bc.TabletServers
		bc.RowsPerTablet = 32
		db, err := bigtable.New(env, bc)
		if err != nil {
			return FleetRow{}, err
		}
		var rec stats.Recorder
		rec, hist = fleetRecorders(cfg, env, cfg.Seed+1)
		db.SetRecorder(hist)
		opts.Latencies = rec
		res = workload.BigTableOpenLoopWithOpts(env, db, workload.DefaultBigTableMix(), u.Rate, u.Ops, opts)
	case taxonomy.BigQuery:
		env = platform.NewEnv(cfg.Seed+2, fleetTraceRate)
		qc := bigquery.DefaultConfig()
		qc.Workers = max(1, u.Servers*7/10)
		qc.ShuffleServers = max(1, u.Servers*3/20)
		qc.Chunkservers = max(3, u.Servers-qc.Workers-qc.ShuffleServers)
		// Chunkserver capacity is provisioned proportionally to the fact
		// table (see bigquery.New) and chunk placement is hash-random, so
		// keep partitions proportional to chunkservers and files small
		// (1 MiB, a quarter chunk): the per-server constant slack then
		// dominates the worst hash-placement imbalance.
		qc.FactPartitions = min(max(4, 2*qc.Chunkservers), 256)
		qc.RowsPerPartition = 256
		qc.PartitionFileBytes = 1 << 20
		e, err := bigquery.New(env, qc)
		if err != nil {
			return FleetRow{}, err
		}
		var rec stats.Recorder
		rec, hist = fleetRecorders(cfg, env, cfg.Seed+2)
		e.SetRecorder(hist)
		opts.Latencies = rec
		res = workload.BigQueryOpenLoopWithOpts(env, e, workload.DefaultBigQueryMix(), u.Rate, u.Ops, opts)
	default:
		return FleetRow{}, fmt.Errorf("experiments: unknown platform %q", u.Platform)
	}
	end := env.K.Run()
	if err := res.Err(); err != nil {
		return FleetRow{}, err
	}
	row := FleetRow{
		Platform:       u.Platform,
		Servers:        u.Servers,
		Users:          u.Users,
		Ops:            res.Completed,
		Errors:         len(res.Errors),
		P50Seconds:     res.Latencies.Quantile(0.5),
		P99Seconds:     res.Latencies.Quantile(0.99),
		MaxSeconds:     res.Latencies.Max(),
		MeanSeconds:    res.Latencies.Mean(),
		HistorySeen:    hist.Seen(),
		HistoryKept:    hist.Len(),
		VirtualSeconds: end.Seconds(),
	}
	if sk, ok := res.Latencies.(*stats.Sketch); ok {
		row.SketchBuckets = sk.Buckets()
	}
	return row, nil
}

// fleetUnits splits the fleet across platforms: half the servers to
// BigTable (the paper's serving-heavy fleet), a quarter each to Spanner and
// BigQuery; the user population follows the interactive platforms and the
// operation budget follows the characterization mix (analytics queries are
// few but heavy).
func (cfg StudyConfig) fleetUnits() []fleetUnit {
	f := cfg.Fleet
	horizon := f.Duration
	if horizon <= 0 {
		horizon = 2 * time.Second
	}
	bt := f.Servers / 2
	sp := f.Servers / 4
	bq := f.Servers - bt - sp
	units := []fleetUnit{
		{Platform: taxonomy.Spanner, Servers: sp, Users: f.Users * 2 / 5, Ops: f.Ops * 9 / 20},
		{Platform: taxonomy.BigTable, Servers: bt, Users: f.Users / 2, Ops: f.Ops * 9 / 20},
		{Platform: taxonomy.BigQuery, Servers: bq, Users: f.Users / 10, Ops: f.Ops / 10},
	}
	for i := range units {
		if units[i].Ops < 1 {
			units[i].Ops = 1
		}
		units[i].Rate = float64(units[i].Ops) / horizon.Seconds()
	}
	return units
}

// FleetScale runs the fleet-scale characterization. The three platform runs are
// independent simulations, so they fan out over the configured backend and
// parallelism; rows come back in taxonomy.Platforms order regardless of
// completion order, and heap is measured on the coordinator afterwards.
func (cfg StudyConfig) FleetScale() (*FleetStudy, error) {
	f := cfg.Fleet
	if f.Servers < 3 || f.Users <= 0 || f.Ops <= 0 {
		return nil, fmt.Errorf("experiments: invalid fleet config %+v (need ≥3 servers, positive users and ops)", f)
	}
	fus := cfg.fleetUnits()
	jobs := make([]func() (FleetRow, error), len(fus))
	units := make([]any, len(fus))
	for i, u := range fus {
		u := u
		jobs[i] = func() (FleetRow, error) { return runFleetPlatform(cfg, u) }
		units[i] = u
	}
	rows, err := runStudy(cfg, fleetUnitKind, units, jobs)
	if err != nil {
		return nil, err
	}
	st := &FleetStudy{Cfg: cfg, Rows: rows}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.Heap = FleetHeapStats{HeapAllocBytes: ms.HeapAlloc, TotalAllocBytes: ms.TotalAlloc, SysBytes: ms.Sys}
	return st, nil
}

// DefaultFleetStudyConfig returns the fleet defaults: 2000 servers serving
// one million logical users in sketch mode at the documented 1% error
// bound.
func DefaultFleetStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:      1,
		TraceRate: fleetTraceRate,
		Sketch:    SketchConfig{Enabled: true},
		Fleet: FleetConfig{
			Servers:  2000,
			Users:    1_000_000,
			Ops:      40_000,
			Duration: 2 * time.Second,
		},
	}
}

// MarshalFleet renders the canonical fleet artifact: indented JSON of the
// semantically meaningful inputs (seed, fleet sizing, sketch mode) and the
// rows. Execution knobs — Parallel, Backend, Exec — and measured heap stats
// are excluded by construction: equal seeds and sizing must yield equal
// bytes no matter how or where the study ran.
func MarshalFleet(st *FleetStudy) ([]byte, error) {
	return json.MarshalIndent(struct {
		Seed   uint64
		Sketch SketchConfig
		Fleet  FleetConfig
		Rows   []FleetRow
	}{st.Cfg.Seed, st.Cfg.Sketch, st.Cfg.Fleet, st.Rows}, "", "  ")
}

// RenderFleet renders the human-readable fleet report.
func RenderFleet(st *FleetStudy) string {
	var b strings.Builder
	f := st.Cfg.Fleet
	mode := "exact"
	if st.Cfg.Sketch.Enabled {
		relErr := st.Cfg.Sketch.RelErr
		if relErr <= 0 {
			relErr = stats.DefaultSketchRelErr
		}
		mode = fmt.Sprintf("sketch ±%.0f%%", relErr*100)
	}
	fmt.Fprintf(&b, "Fleet-scale characterization: %d servers, %d logical users (%s recording)\n",
		f.Servers, f.Users, mode)
	fmt.Fprintf(&b, "  %-9s %8s %9s %8s %5s %10s %10s %10s %8s %9s\n",
		"platform", "servers", "users", "ops", "errs", "p50 (ms)", "p99 (ms)", "max (ms)", "buckets", "hist kept")
	for _, r := range st.Rows {
		fmt.Fprintf(&b, "  %-9s %8d %9d %8d %5d %10.2f %10.2f %10.2f %8d %9d\n",
			r.Platform, r.Servers, r.Users, r.Ops, r.Errors,
			r.P50Seconds*1e3, r.P99Seconds*1e3, r.MaxSeconds*1e3, r.SketchBuckets, r.HistoryKept)
	}
	fmt.Fprintf(&b, "  coordinator heap after run: %.1f MiB live / %.1f MiB sys\n",
		float64(st.Heap.HeapAllocBytes)/(1<<20), float64(st.Heap.SysBytes)/(1<<20))
	return b.String()
}
