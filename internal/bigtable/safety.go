package bigtable

import (
	"fmt"

	"hyperprof/internal/check"
	"hyperprof/internal/sim"
	"hyperprof/internal/trace"
)

// This file is the safety-checking surface of the BigTable simulation:
// opt-in history recording around Get/Put (one nil test per operation when
// disabled) and the standing invariants — tablet ownership, commit-log
// structure — the torture harness asserts after every run. Together with the
// linearizability checker this proves read-your-writes, no-lost-mutations
// and no-duplicate-replay across tablet reassignment and commit-log replay.

// SetRecorder attaches an operation-history recorder. Pass nil to detach.
func (db *DB) SetRecorder(h *check.History) { db.rec = h }

// Recorder returns the attached recorder, if any.
func (db *DB) Recorder() *check.History { return db.rec }

// Get returns the current value of row `row` in tablet t.
func (db *DB) Get(p *sim.Proc, tr *trace.Trace, t, row int) ([]byte, error) {
	// Front-door gate before anything else: a shed operation never executes
	// and is never recorded, exactly like a request refused at a server.
	release, admitErr := db.admitOp(t)
	if admitErr != nil {
		return nil, admitErr
	}
	defer release()
	var op *check.Op
	if db.rec != nil && t >= 0 && t < len(db.tablets) && row >= 0 && row < db.cfg.RowsPerTablet {
		key := rowKey(t, row)
		db.rec.Initial(key, check.Digest(bootstrapValue(t, row, int(db.cfg.ValueBytes))))
		op = db.rec.Invoke(p.Name(), "read", key, 0)
	}
	start := p.Now()
	val, err := db.get(p, tr, t, row)
	db.mGetLat.RecordSince(start, p.Now())
	if op != nil {
		if err != nil {
			db.rec.Fail(op)
		} else {
			db.rec.OK(op, check.Digest(val))
		}
	}
	return val, err
}

// Put writes value to row `row` of tablet t: commit-log append to the DFS,
// memtable insert, and compaction triggers.
func (db *DB) Put(p *sim.Proc, tr *trace.Trace, t, row int, value []byte) error {
	release, admitErr := db.admitOp(t)
	if admitErr != nil {
		return admitErr
	}
	defer release()
	var op *check.Op
	if db.rec != nil && t >= 0 && t < len(db.tablets) && row >= 0 && row < db.cfg.RowsPerTablet {
		key := rowKey(t, row)
		db.rec.Initial(key, check.Digest(bootstrapValue(t, row, int(db.cfg.ValueBytes))))
		op = db.rec.Invoke(p.Name(), "write", key, check.Digest(value))
	}
	start := p.Now()
	err := db.put(p, tr, t, row, value)
	db.mPutLat.RecordSince(start, p.Now())
	if op != nil {
		if err != nil {
			// A put fails only before the memtable insert (range checks), so
			// the failure is definite.
			db.rec.Fail(op)
		} else {
			db.rec.OK(op, 0)
		}
	}
	return err
}

// RegisterInvariants registers the deployment's standing invariants with a
// checker registry.
func (db *DB) RegisterInvariants(reg *check.Registry) {
	reg.Register("bigtable-tablets", db.CheckInvariants)
}

// CheckInvariants verifies the standing tablet invariants at a quiescent
// instant and returns one description per breach:
//
//   - ownership: every tablet is owned by exactly one valid, live tablet
//     server (uniqueness is structural — serverIdx is a single field — so
//     the live-owner check is the meaningful half);
//   - commit-log structure: records are strictly seq-ascending and none is
//     at or below durableSeq (a record both truncatable and present would
//     replay a durable mutation after a crash);
//   - flush accounting: pending flush snapshots are in ascending seq order
//     and do not exceed the assigned sequence space.
func (db *DB) CheckInvariants() []string {
	var out []string
	machines := len(db.mgr.Machines())
	for _, tab := range db.tablets {
		if tab.serverIdx < 0 || tab.serverIdx >= machines {
			out = append(out, fmt.Sprintf("tablet %d: owner %d out of range", tab.id, tab.serverIdx))
		} else if db.downServers[tab.serverIdx] {
			out = append(out, fmt.Sprintf("tablet %d: owned by failed server %d", tab.id, tab.serverIdx))
		}
		prev := tab.durableSeq
		for _, rec := range tab.log {
			if rec.seq <= prev {
				out = append(out, fmt.Sprintf("tablet %d: log record seq %d not above %d (duplicate replay on next crash)",
					tab.id, rec.seq, prev))
			}
			prev = rec.seq
		}
		if tab.nextSeq <= tab.durableSeq {
			out = append(out, fmt.Sprintf("tablet %d: durableSeq %d ahead of nextSeq %d", tab.id, tab.durableSeq, tab.nextSeq))
		}
		for i := 1; i < len(tab.flushPending); i++ {
			if tab.flushPending[i] < tab.flushPending[i-1] {
				out = append(out, fmt.Sprintf("tablet %d: pending flushes out of order: %v", tab.id, tab.flushPending))
			}
		}
	}
	return out
}
