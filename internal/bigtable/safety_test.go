package bigtable

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hyperprof/internal/check"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
)

func newSafetyDB(t *testing.T, seed uint64, mut func(*Config)) (*platform.Env, *DB, *check.History) {
	t.Helper()
	env := platform.NewEnv(seed, 1)
	cfg := smallConfig()
	if mut != nil {
		mut(&cfg)
	}
	db, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	return env, db, h
}

func TestCrashMidFlushPreservesAckedPuts(t *testing.T) {
	// Puts trigger an async flush; the server crashes before the flush is
	// durable. The commit log must still hold the snapshotted records, so
	// the rebuilt memtable serves every acknowledged put.
	env, db, h := newSafetyDB(t, 71, func(c *Config) { c.FlushEvery = 3 })
	vals := map[int][]byte{}
	env.K.Go("client", func(p *sim.Proc) {
		for row := 0; row < 3; row++ {
			v := []byte(fmt.Sprintf("acked-%d", row))
			if err := db.Put(p, nil, 0, row, v); err != nil {
				t.Errorf("put %d: %v", row, err)
				return
			}
			vals[row] = v
		}
		// The flush launched by the third put is still in flight.
		if err := db.FailTabletServer(0); err != nil {
			t.Error(err)
			return
		}
		for row := 0; row < 3; row++ {
			got, err := db.Get(p, nil, 0, row)
			if err != nil {
				t.Errorf("get %d after crash: %v", row, err)
			} else if !bytes.Equal(got, vals[row]) {
				t.Errorf("get %d after crash = %q, want %q", row, got, vals[row])
			}
		}
	})
	env.K.Run()
	if db.ReplayDups != 0 {
		t.Fatalf("ReplayDups = %d, want 0", db.ReplayDups)
	}
	if vs := h.CheckLinearizability(); len(vs) != 0 {
		t.Fatalf("history not linearizable:\n%v", vs)
	}
	if vs := h.Structural(); len(vs) != 0 {
		t.Fatalf("structural violations: %v", vs)
	}
	if br := db.CheckInvariants(); len(br) != 0 {
		t.Fatalf("invariants broken: %v", br)
	}
}

func TestEarlyLogTruncationCaughtByChecker(t *testing.T) {
	// The intentionally broken recovery path: the commit log is truncated at
	// snapshot time, so a crash mid-flush loses the acknowledged puts. The
	// linearizability checker must catch the stale post-crash reads with a
	// minimal violating history.
	env, db, h := newSafetyDB(t, 72, func(c *Config) { c.FlushEvery = 3 })
	db.brokenLogTruncateEarly = true
	env.K.Go("client", func(p *sim.Proc) {
		for row := 0; row < 3; row++ {
			if err := db.Put(p, nil, 0, row, []byte(fmt.Sprintf("lost-%d", row))); err != nil {
				t.Errorf("put %d: %v", row, err)
				return
			}
		}
		if err := db.FailTabletServer(0); err != nil {
			t.Error(err)
			return
		}
		for row := 0; row < 3; row++ {
			db.Get(p, nil, 0, row) // reads the stale bootstrap values
		}
	})
	env.K.Run()
	vs := h.CheckLinearizability()
	if len(vs) == 0 {
		t.Fatal("checker missed the lost mutations")
	}
	for _, v := range vs {
		if len(v.History) == 0 || len(v.History) > 2 {
			t.Fatalf("minimal history for %s has %d ops, want 1-2:\n%s",
				v.Key, len(v.History), check.FormatOps(v.History))
		}
	}
}

func TestDuplicateReplayCaughtByChecker(t *testing.T) {
	// The second broken recovery path: the log is never truncated, so the
	// post-crash replay re-applies records already durable in SSTables. The
	// standing invariant flags the overlap before any crash, and the replay
	// itself records a structural violation.
	env, db, h := newSafetyDB(t, 73, func(c *Config) {
		c.FlushEvery = 2
		c.MajorEvery = 100 // keep majors out of the way
	})
	db.brokenReplayDup = true
	env.K.Go("client", func(p *sim.Proc) {
		for row := 0; row < 2; row++ {
			if err := db.Put(p, nil, 0, row, []byte(fmt.Sprintf("v-%d", row))); err != nil {
				t.Errorf("put %d: %v", row, err)
				return
			}
		}
		p.Sleep(100 * time.Millisecond) // let the flush become durable
		if br := db.CheckInvariants(); len(br) == 0 {
			t.Error("invariant check missed durable records still in the log")
		}
		if err := db.FailTabletServer(0); err != nil {
			t.Error(err)
		}
	})
	env.K.Run()
	if db.ReplayDups != 2 {
		t.Fatalf("ReplayDups = %d, want 2", db.ReplayDups)
	}
	svs := h.Structural()
	if len(svs) != 1 || svs[0].Kind != "duplicate-replay" {
		t.Fatalf("structural = %v, want one duplicate-replay violation", svs)
	}
}

func TestMajorCompactionKeepsConcurrentFlush(t *testing.T) {
	// Regression: an SSTable flushed while a major compaction is merging must
	// survive the compaction. The old code replaced the live SSTable list
	// wholesale with the merged output, dropping the concurrent flush and
	// with it its acknowledged writes.
	env, db, h := newSafetyDB(t, 74, func(c *Config) {
		c.FlushEvery = 1000 // flushes are driven manually below
		c.MajorEvery = 1000
	})
	tab := db.tablets[0]
	v1, v2 := []byte("flushed-before-major"), []byte("flushed-during-major")
	env.K.Go("client", func(p *sim.Proc) {
		if err := db.Put(p, nil, 0, 1, v1); err != nil {
			t.Error(err)
			return
		}
		db.flush(tab)
		if err := db.Put(p, nil, 0, 2, v2); err != nil {
			t.Error(err)
			return
		}
		db.flush(tab)
		// Start the major while both flushes are still in flight: they will
		// complete and prepend their SSTables mid-merge (the major's 18ms
		// recipe far outlasts the 2.5ms minor recipe).
		db.major(tab)
		for row, want := range map[int][]byte{1: v1, 2: v2} {
			got, err := db.Get(p, nil, 0, row) // blocks until the major completes
			if err != nil {
				t.Errorf("get %d: %v", row, err)
			} else if !bytes.Equal(got, want) {
				t.Errorf("get %d = %q, want %q", row, got, want)
			}
		}
	})
	env.K.Run()
	if db.MajorCompactions != 1 || db.MinorCompactions != 2 {
		t.Fatalf("compactions minor=%d major=%d, want 2/1", db.MinorCompactions, db.MajorCompactions)
	}
	// Both flushed SSTables survived alongside the merged one.
	if n := db.SSTableCount(0); n != 3 {
		t.Fatalf("SSTableCount = %d, want 3 (two kept flushes + merged)", n)
	}
	if vs := h.CheckLinearizability(); len(vs) != 0 {
		t.Fatalf("history not linearizable:\n%v", vs)
	}
	if br := db.CheckInvariants(); len(br) != 0 {
		t.Fatalf("invariants broken: %v", br)
	}
}

func TestOutOfOrderFlushCompletionAdvancesDurablePrefix(t *testing.T) {
	// Two flushes in flight complete in launch order here, but durableSeq
	// must only ever advance over the *completed prefix*: after both are
	// durable the log is fully truncated and a crash replays nothing.
	env, db, _ := newSafetyDB(t, 75, func(c *Config) {
		c.FlushEvery = 1000
		c.MajorEvery = 1000
	})
	tab := db.tablets[0]
	env.K.Go("client", func(p *sim.Proc) {
		db.Put(p, nil, 0, 1, []byte("a"))
		db.flush(tab)
		db.Put(p, nil, 0, 2, []byte("b"))
		db.flush(tab)
		p.Sleep(100 * time.Millisecond)
		if tab.durableSeq != 2 {
			t.Errorf("durableSeq = %d, want 2", tab.durableSeq)
		}
		if len(tab.log) != 0 || tab.logBytes != 0 {
			t.Errorf("log not truncated: %d recs, %d bytes", len(tab.log), tab.logBytes)
		}
		if len(tab.flushPending) != 0 {
			t.Errorf("flushPending = %v, want empty", tab.flushPending)
		}
	})
	env.K.Run()
	if br := db.CheckInvariants(); len(br) != 0 {
		t.Fatalf("invariants broken: %v", br)
	}
}
