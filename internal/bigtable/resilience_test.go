package bigtable

import (
	"bytes"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

// TestTabletServerCrashPreservesData drives the crash/reassign/replay path:
// writes acknowledged before a tablet-server failure must be readable
// afterward (the commit log and SSTables are durable in the DFS), and the
// tablets must land on surviving servers.
func TestTabletServerCrashPreservesData(t *testing.T) {
	env, db := newDB(t, 50)
	want := []byte("written-before-crash")
	var got []byte
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.Put(p, nil, 0, 3, want); err != nil {
			return
		}
		victim, _ := db.TabletServer(0)
		if err = db.FailTabletServer(victim); err != nil {
			return
		}
		if !db.TabletServerDown(victim) {
			t.Error("TabletServerDown false after failure")
		}
		// The read blocks on the recovery replay, then serves the value.
		got, err = db.Get(p, nil, 0, 3)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("get after crash = %q, want %q (lost acknowledged write)", got, want)
	}
	if db.Reassignments == 0 || db.Recoveries == 0 {
		t.Fatalf("Reassignments=%d Recoveries=%d, want both > 0", db.Reassignments, db.Recoveries)
	}
	// Every tablet must now live on a surviving server.
	for i := 0; i < db.NumTablets(); i++ {
		si, _ := db.TabletServer(i)
		if db.TabletServerDown(si) {
			t.Fatalf("tablet %d still assigned to failed server %d", i, si)
		}
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

// TestOpsContinueThroughServerBounce verifies the whole failure window: puts
// and gets keep succeeding while a server is down, and recovery restores the
// server to the live set.
func TestOpsContinueThroughServerBounce(t *testing.T) {
	env, db := newDB(t, 51)
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.FailTabletServer(0); err != nil {
			return
		}
		for i := 0; i < 8; i++ {
			if err = db.Put(p, nil, i%db.NumTablets(), i, []byte("during-outage")); err != nil {
				return
			}
		}
		if err = db.RecoverTabletServer(0); err != nil {
			return
		}
		if db.TabletServerDown(0) {
			t.Error("server still down after recovery")
		}
		for i := 0; i < 8; i++ {
			var v []byte
			if v, err = db.Get(p, nil, i%db.NumTablets(), i); err != nil {
				return
			}
			if !bytes.Equal(v, []byte("during-outage")) {
				t.Errorf("row %d = %q", i, v)
			}
		}
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

// TestCannotFailLastServer pins the guard: the fleet never loses its last
// tablet server.
func TestCannotFailLastServer(t *testing.T) {
	env, db := newDB(t, 52)
	_ = env
	if err := db.FailTabletServer(0); err != nil {
		t.Fatal(err)
	}
	if err := db.FailTabletServer(1); err == nil {
		t.Fatal("failing the last live server should error")
	}
	env.K.Run()
}

// TestRecoveryReplayTakesTime verifies the replay is charged for the
// un-flushed commit-log volume: a crash right after puts makes the next read
// wait for the replay.
func TestRecoveryReplayTakesTime(t *testing.T) {
	env, db := newDB(t, 53)
	var before, after time.Duration
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		// Stay under FlushEvery so logBytes is nonzero at crash time.
		for i := 0; i < 5; i++ {
			if err = db.Put(p, nil, 0, i, make([]byte, 4096)); err != nil {
				return
			}
		}
		victim, _ := db.TabletServer(0)
		if err = db.FailTabletServer(victim); err != nil {
			return
		}
		before = p.Now()
		_, err = db.Get(p, nil, 0, 0)
		after = p.Now()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("read did not wait on recovery replay")
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

// TestCommitLogFailsOverWhenChunkserverDown is the DFS-facing half: a put
// whose home log chunkserver is down writes its log to the next live one.
func TestCommitLogFailsOverWhenChunkserverDown(t *testing.T) {
	env, db := newDB(t, 54)
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		// Tablet 0's home log server is chunkserver 0.
		if err = db.DFS().FailServer(0); err != nil {
			return
		}
		if err = db.Put(p, nil, 0, 1, []byte("logged-elsewhere")); err != nil {
			return
		}
		var v []byte
		if v, err = db.Get(p, nil, 0, 1); err != nil {
			return
		}
		if !bytes.Equal(v, []byte("logged-elsewhere")) {
			t.Errorf("get = %q", v)
		}
		err = db.DFS().RecoverServer(0)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
}
