package bigtable

import (
	"bytes"
	"testing"
	"time"

	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Tablets = 4
	cfg.TabletServers = 2
	cfg.RowsPerTablet = 400
	cfg.ScanRows = 50
	return cfg
}

func newDB(t *testing.T, seed uint64) (*platform.Env, *DB) {
	t.Helper()
	env := platform.NewEnv(seed, 1)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return env, db
}

func TestNewValidation(t *testing.T) {
	env := platform.NewEnv(1, 1)
	bad := DefaultConfig()
	bad.Tablets = 0
	if _, err := New(env, bad); err == nil {
		t.Fatal("zero tablets accepted")
	}
	bad = DefaultConfig()
	bad.Chunkservers = 2
	if _, err := New(env, bad); err == nil {
		t.Fatal("two chunkservers accepted")
	}
}

func TestGetBootstrapValue(t *testing.T) {
	env, db := newDB(t, 2)
	var got []byte
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		got, err = db.Get(p, nil, 1, 5)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 || got[0] != byte(1*11+5*17) {
		t.Fatalf("value = len %d first %d", len(got), got[0])
	}
}

func TestPutThenGet(t *testing.T) {
	env, db := newDB(t, 3)
	want := []byte("fresh value via memtable")
	var got []byte
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.Put(p, nil, 0, 9, want); err != nil {
			return
		}
		got, err = db.Get(p, nil, 0, 9)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestPutSurvivesFlushAndMajor(t *testing.T) {
	env, db := newDB(t, 4)
	want := []byte("survives all compactions")
	var got []byte
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.Put(p, nil, 2, 7, want); err != nil {
			return
		}
		// Drive enough puts to force flushes and a major compaction.
		for i := 0; i < smallConfig().FlushEvery*smallConfig().MajorEvery+5; i++ {
			if err = db.Put(p, nil, 2, 100+i%200, []byte("filler-value")); err != nil {
				return
			}
		}
		p.Sleep(5 * time.Second) // let background compactions drain
		got, err = db.Get(p, nil, 2, 7)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q after compactions", got)
	}
	if db.MinorCompactions == 0 || db.MajorCompactions == 0 {
		t.Fatalf("compactions: minor=%d major=%d", db.MinorCompactions, db.MajorCompactions)
	}
	// Major compaction collapses the tablet to one SSTable.
	if n := db.SSTableCount(2); n > 2 {
		t.Fatalf("sstables after major = %d", n)
	}
}

func TestNewerValueWinsAfterMajor(t *testing.T) {
	env, db := newDB(t, 5)
	var got []byte
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		db.Put(p, nil, 0, 50, []byte("old"))
		// Force a flush boundary between the two versions.
		for i := 0; i < smallConfig().FlushEvery; i++ {
			db.Put(p, nil, 0, 200+i, []byte("x"))
		}
		db.Put(p, nil, 0, 50, []byte("new"))
		for i := 0; i < smallConfig().FlushEvery*smallConfig().MajorEvery; i++ {
			db.Put(p, nil, 0, 200+i%150, []byte("y"))
		}
		p.Sleep(5 * time.Second)
		got, err = db.Get(p, nil, 0, 50)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("got %q, want new", got)
	}
}

func TestScanCountsPredicate(t *testing.T) {
	env, db := newDB(t, 6)
	var matched int
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		matched, err = db.Scan(p, nil, 3, 0)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap first byte = t*11 + i*17; over 50 consecutive i, half odd.
	if matched != 25 {
		t.Fatalf("matched = %d, want 25", matched)
	}
}

func TestMajorCompactionBlocksAndAnnotatesRemote(t *testing.T) {
	env, db := newDB(t, 7)
	var blocked trace.Breakdown
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		// Trigger a major compaction on tablet 0.
		for i := 0; i < smallConfig().FlushEvery*smallConfig().MajorEvery; i++ {
			if err = db.Put(p, nil, 0, i%300, []byte("spam-value")); err != nil {
				return
			}
		}
		// The 4th flush runs ~10ms of CPU before the major starts; wait for
		// the major's window (tens of ms of merge CPU) and probe into it.
		p.Sleep(20 * time.Millisecond)
		tr := env.Tracer.Start(taxonomy.BigTable, p.Now())
		if _, err = db.Get(p, tr, 0, 1); err != nil {
			return
		}
		env.Tracer.Finish(tr, p.Now())
		blocked = tr.ComputeBreakdown()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if db.MajorCompactions == 0 {
		t.Skip("major did not overlap the probe in this configuration")
	}
	if blocked.Remote <= 0 {
		t.Fatalf("get during major has no remote wait: %+v", blocked)
	}
}

func TestProfiledCategoriesCoverTable4(t *testing.T) {
	env, db := newDB(t, 8)
	env.K.Go("client", func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			db.Get(p, nil, i%4, db.PickRow())
			if i%2 == 0 {
				db.Put(p, nil, i%4, db.PickRow(), []byte("workload-value"))
			}
			if i%10 == 0 {
				db.Scan(p, nil, i%4, i)
			}
		}
		p.Sleep(5 * time.Second)
	})
	env.K.Run()
	cb := env.Prof.CategoryBreakdown(taxonomy.BigTable, taxonomy.CoreCompute)
	for _, cat := range []taxonomy.Category{taxonomy.Read, taxonomy.Write, taxonomy.Consensus, taxonomy.Query, taxonomy.Compaction, taxonomy.MiscCore, taxonomy.Uncategorized} {
		if cb[cat] <= 0 {
			t.Errorf("category %q has no cycles: %v", cat, cb)
		}
	}
	bb := env.Prof.BroadBreakdown(taxonomy.BigTable)
	// BigTable is the most tax-heavy database: DCT should exceed CC.
	if bb[taxonomy.DatacenterTax] <= bb[taxonomy.CoreCompute] {
		t.Errorf("broad = %v, want DCT > CC", bb)
	}
}

func TestGetOutOfRange(t *testing.T) {
	env, db := newDB(t, 9)
	env.K.Go("client", func(p *sim.Proc) {
		if _, err := db.Get(p, nil, 99, 0); err == nil {
			t.Error("bad tablet accepted")
		}
		if err := db.Put(p, nil, -1, 0, nil); err == nil {
			t.Error("bad tablet accepted")
		}
		if _, err := db.Scan(p, nil, 99, 0); err == nil {
			t.Error("bad tablet accepted")
		}
	})
	env.K.Run()
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int, int) {
		env := platform.NewEnv(42, 1)
		db, err := New(env, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		env.K.Go("client", func(p *sim.Proc) {
			for i := 0; i < 60; i++ {
				db.Get(p, nil, i%4, db.PickRow())
				db.Put(p, nil, i%4, db.PickRow(), []byte("abc"))
			}
			p.Sleep(time.Second)
		})
		end := env.K.Run()
		return end, db.MinorCompactions, db.MajorCompactions
	}
	e1, m1, j1 := run()
	e2, m2, j2 := run()
	if e1 != e2 || m1 != m2 || j1 != j2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", e1, m1, j1, e2, m2, j2)
	}
}

func TestBloomFiltersSkipProbes(t *testing.T) {
	env, db := newDB(t, 10)
	env.K.Go("client", func(p *sim.Proc) {
		// Create several SSTables holding disjoint key ranges.
		for i := 0; i < smallConfig().FlushEvery*2; i++ {
			db.Put(p, nil, 0, i, []byte("sstable-one-values"))
		}
		p.Sleep(time.Second) // let flushes complete
		// Gets for keys only in the base table should skip the fresh
		// SSTables via their Bloom filters.
		for i := 300; i < 340; i++ {
			if _, err := db.Get(p, nil, 0, i); err != nil {
				t.Errorf("get: %v", err)
			}
		}
		p.Sleep(time.Second)
	})
	env.K.Run()
	if db.BloomSkips == 0 {
		t.Fatal("no Bloom-filter skips recorded")
	}
}

func TestFlushCompressesValues(t *testing.T) {
	env, db := newDB(t, 11)
	env.K.Go("client", func(p *sim.Proc) {
		// Highly repetitive values compress well.
		for i := 0; i < smallConfig().FlushEvery; i++ {
			db.Put(p, nil, 1, i, bytes.Repeat([]byte("compressible "), 40))
		}
		p.Sleep(time.Second)
	})
	env.K.Run()
	if db.MinorCompactions == 0 {
		t.Fatal("no flush happened")
	}
	if db.CompressedBytes >= db.RawBytes {
		t.Fatalf("flush did not compress: %d raw -> %d stored", db.RawBytes, db.CompressedBytes)
	}
	if ratio := float64(db.RawBytes) / float64(db.CompressedBytes); ratio < 3 {
		t.Fatalf("repetitive values ratio = %.1f, want > 3", ratio)
	}
}

func TestGetAfterBloomSkipStillCorrect(t *testing.T) {
	env, db := newDB(t, 12)
	var got []byte
	var err error
	env.K.Go("client", func(p *sim.Proc) {
		db.Put(p, nil, 2, 7, []byte("in-sstable"))
		for i := 0; i < smallConfig().FlushEvery; i++ {
			db.Put(p, nil, 2, 100+i, []byte("filler"))
		}
		p.Sleep(time.Second)
		// Key 7 lives in a flushed SSTable; Bloom filter must not skip it.
		got, err = db.Get(p, nil, 2, 7)
		p.Sleep(time.Second)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "in-sstable" {
		t.Fatalf("got %q", got)
	}
}
