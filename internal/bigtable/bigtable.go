// Package bigtable simulates a BigTable-like cluster-level NoSQL key-value
// store (§2.2.2): tablet servers with in-memory memtables, a replicated
// commit log and immutable SSTables on the shared distributed file system,
// minor compactions (memtable flushes) and blocking major compactions in
// remote storage — the remote-work component §4.1 attributes to BigTable.
// Key/value data is real: gets return the bytes puts stored, merged across
// memtable, immutable memtables and SSTables newest-first.
package bigtable

import (
	"fmt"
	"sort"
	"time"

	"hyperprof/internal/bloom"
	"hyperprof/internal/check"
	"hyperprof/internal/cluster"
	"hyperprof/internal/compress"
	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// Config sizes a BigTable deployment.
type Config struct {
	// Tablets is the number of tablets (each owned by one tablet server).
	Tablets int
	// TabletServers is the number of serving machines.
	TabletServers int
	// Chunkservers backs the shared DFS.
	Chunkservers int
	// RowsPerTablet and ValueBytes size the dataset.
	RowsPerTablet int
	ValueBytes    int64
	// FlushEvery puts trigger a minor compaction (memtable flush).
	FlushEvery int
	// MajorEvery flushes trigger a blocking major compaction.
	MajorEvery int
	// ScanRows is the row count of a scan operation.
	ScanRows int
	// Seed drives all randomness.
	Seed uint64
	// Admission arms the front-door overload gate (see overload.go):
	// MaxQueue bounds concurrent operations per tablet server and
	// ShedStartFrac sheds probabilistically as in-flight load approaches it.
	// Target/Interval are unused — operations execute directly, there is no
	// queue whose sojourn could be bounded. The zero value disables the gate.
	Admission netsim.Admission
	// PartitionRecovery enables master-side partition handling: tablets on a
	// partitioned server are reassigned to reachable servers with a commit-log
	// replay (exactly the crash path, epoch fencing and duplicate-replay
	// detection included), restoring availability mid-partition. Off, ops on
	// a partitioned server's tablets fail until the heal — safe but
	// unavailable.
	PartitionRecovery bool
	// BrokenPartitionWrites is a broken-knob fixture: a partitioned tablet
	// server keeps acknowledging writes into its local memtable even though it
	// cannot reach the shared commit log, and the heal-time fencing rebuild
	// replays only the log — the acknowledged-but-unlogged writes vanish,
	// which the linearizability checker must flag as lost writes.
	BrokenPartitionWrites bool
}

// DefaultConfig returns a laptop-scale deployment preserving the
// paper-relevant behaviour.
func DefaultConfig() Config {
	return Config{
		Tablets:       8,
		TabletServers: 4,
		Chunkservers:  6,
		RowsPerTablet: 3000,
		ValueBytes:    1024,
		FlushEvery:    10,
		MajorEvery:    3,
		ScanRows:      100,
		Seed:          1,
	}
}

// Core-compute CPU budgets per operation (pre-tax), solved so the aggregate
// core split under the default mix lands on Figure 4's BigTable bar.
const (
	getCoreBudget   = 500 * time.Microsecond
	putCoreBudget   = 1140 * time.Microsecond
	scanCoreBudget  = 1110 * time.Microsecond
	minorCoreBudget = 2500 * time.Microsecond
	majorCoreBudget = 18 * time.Millisecond
)

// DB is a running BigTable deployment.
type DB struct {
	env     *platform.Env
	cfg     Config
	mgr     *cluster.Manager
	dfs     *storage.DFS
	taxes   platform.TaxTables
	tablets []*tablet
	rng     *stats.RNG
	zipf    *stats.Zipf

	getRecipe   platform.Recipe
	putRecipe   platform.Recipe
	scanRecipe  platform.Recipe
	minorRecipe platform.Recipe
	majorRecipe platform.Recipe

	// downServers marks failed tablet servers by machine index.
	downServers map[int]bool
	// partitioned marks tablet servers cut off from the rest of the cluster
	// (master, DFS and peers) by machine index. Unlike downServers the
	// machine itself is healthy — it just cannot be reached or reach out,
	// which is exactly the gray area split-brain bugs live in.
	partitioned map[int]bool

	// Front-door gate state (see overload.go): in-flight ops per tablet
	// server and the adaptive-shed stream. Nil/zero when the gate is off.
	gateInFlight map[int]int
	gateRNG      *stats.RNG

	// rec, when non-nil, records every Get/Put into an operation history for
	// the safety checker (see safety.go).
	rec *check.History
	// brokenLogTruncateEarly reintroduces the early-truncation bug: the
	// commit log is dropped when the memtable is *snapshotted* instead of
	// when the flush is *durable*, so a crash mid-flush loses acknowledged
	// writes. Test fixture for the checker.
	brokenLogTruncateEarly bool
	// brokenReplayDup disables log truncation entirely, so post-crash replay
	// re-applies records that are already durable in SSTables. Test fixture
	// for the duplicate-replay check.
	brokenReplayDup bool

	// Counters for tests and reports.
	Gets, Puts, Scans, MinorCompactions, MajorCompactions int
	// Reassignments counts tablets moved off a failed server; Recoveries
	// counts completed commit-log replays; ReplayDups counts replayed
	// commit-log records that were already durable (always a safety bug).
	Reassignments, Recoveries, ReplayDups int
	// BloomSkips counts SSTable probes avoided by Bloom filters;
	// RawBytes/CompressedBytes account flush compression.
	BloomSkips                int
	RawBytes, CompressedBytes int64
	// Shed and ShedAdaptive count operations refused by the front-door gate
	// (hard bound vs. probabilistic; an op lands in at most one).
	Shed, ShedAdaptive int

	// Observability handles (nil when env.Obs is disabled; see enableObs).
	mMinorCompactions *obs.Counter
	mMajorCompactions *obs.Counter
	mTabletMoves      *obs.Counter
	mRecoveries       *obs.Counter
	mGetLat           *obs.Histogram
	mPutLat           *obs.Histogram
	mSheds            *obs.Counter
	mShedsAdaptive    *obs.Counter
}

type sstable struct {
	file string
	data map[string][]byte
	// bytes is the on-DFS (block-compressed) size; rawBytes the logical
	// size before compression.
	bytes    int64
	rawBytes int64
	// filter lets point reads skip DFS probes for keys this table cannot
	// contain.
	filter *bloom.Filter
}

// seal finalizes an sstable: it builds the Bloom filter over its keys and
// block-compresses its contents (real codec) to size the DFS file.
func (s *sstable) seal() {
	s.filter = bloom.New(len(s.data)+1, 0.01)
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var raw []byte
	for _, k := range keys {
		s.filter.Add(k)
		raw = append(raw, k...)
		raw = append(raw, s.data[k]...)
	}
	s.rawBytes = int64(len(raw))
	enc, err := compress.Encode(raw)
	if err != nil {
		panic(fmt.Sprintf("bigtable: seal: %v", err))
	}
	s.bytes = int64(len(enc))
	if s.bytes == 0 {
		s.bytes = 1
	}
}

// logRec is one commit-log record: a sequenced mutation that survives a
// tablet-server crash on the DFS and is replayed on recovery.
type logRec struct {
	seq   int64
	key   string
	value []byte
}

type tablet struct {
	id        int
	server    *cluster.Machine
	serverIdx int // index into mgr.Machines() of the owning tablet server
	mem       map[string][]byte
	memSize   int64
	memPuts   int
	// log holds the un-truncated commit-log records, in seq order; logBytes
	// is their on-DFS volume — what a recovery replay must re-read after a
	// tablet-server crash. Records are truncated only once the flush that
	// made them durable has completed, never at snapshot time.
	log      []logRec
	logBytes int64
	// nextSeq is the next commit-log sequence number (1-based); durableSeq is
	// the highest sequence known durable in SSTables. Replaying a record with
	// seq <= durableSeq is the duplicate-replay safety violation.
	nextSeq    int64
	durableSeq int64
	// epoch is bumped on every reassignment; in-flight flushes from an older
	// epoch abort instead of promoting a snapshot the crash already lost.
	epoch int
	// flushPending holds the snapshot seqs of in-flight flushes in start
	// order; flushDone marks the completed ones, so durableSeq advances over
	// the completed prefix even when async flushes finish out of order.
	flushPending []int64
	flushDone    map[int64]bool
	imm          []*sstable // flushing memtable snapshots, newest first
	ssts         []*sstable // on-DFS sstables, newest first
	flushes      int
	nextSST      int
	// compacting is non-nil while a major compaction blocks the tablet.
	compacting *sim.Signal
	// recovering is non-nil while a post-crash log replay blocks the tablet.
	recovering *sim.Signal
}

// New builds and starts a deployment on the environment.
func New(env *platform.Env, cfg Config) (*DB, error) {
	if cfg.Tablets <= 0 || cfg.TabletServers <= 0 || cfg.RowsPerTablet <= 0 {
		return nil, fmt.Errorf("bigtable: invalid config %+v", cfg)
	}
	if cfg.Chunkservers < 3 {
		return nil, fmt.Errorf("bigtable: need >= 3 chunkservers, got %d", cfg.Chunkservers)
	}
	ramR, ssdR, hddR := platform.PaperStorageRatio(taxonomy.BigTable)
	// RAM sized so caches hold a few percent of the resident data.
	dataPerServer := int64(cfg.Tablets) * int64(cfg.RowsPerTablet) * cfg.ValueBytes / int64(cfg.TabletServers)
	ram := dataPerServer/32 + 256<<10
	caps := storage.Capacities{
		storage.RAM: ram,
		storage.SSD: ram * ssdR / ramR,
		storage.HDD: ram * hddR / ramR,
	}
	spec := cluster.Spec{
		Regions:         1,
		RacksPerRegion:  2,
		MachinesPerRack: (cfg.TabletServers + 1) / 2,
		CoresPerMachine: 16,
		Storage:         caps,
	}
	mgr, err := cluster.NewManager(env.Net, spec)
	if err != nil {
		return nil, err
	}
	dfs, err := storage.NewDFS(storage.DFSConfig{
		Chunkservers:     cfg.Chunkservers,
		Replication:      3,
		ChunkSize:        1 << 20,
		ServerCapacities: caps,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		env:         env,
		cfg:         cfg,
		mgr:         mgr,
		dfs:         dfs,
		taxes:       platform.TaxTablesFor(taxonomy.BigTable),
		rng:         stats.NewRNG(cfg.Seed),
		downServers: map[int]bool{},
		partitioned: map[int]bool{},
	}
	db.zipf = stats.NewZipf(db.rng.Fork(), cfg.RowsPerTablet, 1.1)
	db.initGate()
	db.registerClassifier()
	db.buildRecipes()
	if err := db.load(); err != nil {
		return nil, err
	}
	db.enableObs(env.Obs)
	return db, nil
}

// enableObs registers the deployment's series with the environment's
// observability plane. A nil registry leaves all handles nil, so every
// record site is a single-branch no-op.
func (db *DB) enableObs(r *obs.Registry) {
	if r == nil {
		return
	}
	db.dfs.EnableMetrics(r)
	db.mMinorCompactions = r.Counter("bigtable.compactions.minor")
	db.mMajorCompactions = r.Counter("bigtable.compactions.major")
	db.mTabletMoves = r.Counter("bigtable.tablet.moves")
	db.mRecoveries = r.Counter("bigtable.recoveries")
	db.mGetLat = r.Histogram("bigtable.get.latency")
	db.mPutLat = r.Histogram("bigtable.put.latency")
	db.enableGateObs(r)
}

func (db *DB) registerClassifier() {
	c := db.env.Prof.Classifier()
	c.Register("bigtable.read.", taxonomy.Read)
	c.Register("bigtable.write.", taxonomy.Write)
	c.Register("bigtable.consensus.", taxonomy.Consensus)
	c.Register("bigtable.query.", taxonomy.Query)
	c.Register("bigtable.compaction.", taxonomy.Compaction)
	c.Register("bigtable.misc.", taxonomy.MiscCore)
}

func (db *DB) buildRecipes() {
	cc := platform.PaperMicro(taxonomy.BigTable, taxonomy.CoreCompute)
	mk := func(budget time.Duration, split platform.Split) platform.Recipe {
		micros := platform.MicroFor(cc, split.Keys()...)
		r := platform.BuildRecipe(budget, split, micros)
		dct, st := platform.TaxBudgets(taxonomy.BigTable, float64(budget))
		return append(r, db.taxes.TaxRecipe(time.Duration(dct), time.Duration(st))...)
	}
	db.getRecipe = mk(getCoreBudget, platform.Split{
		"bigtable.read.Seek": 0.70, "bigtable.misc.Bloom": 0.15, "bigtable.runtime.Glue": 0.15,
	})
	db.putRecipe = mk(putCoreBudget, platform.Split{
		"bigtable.write.MemInsert": 0.45, "bigtable.consensus.LogAck": 0.25,
		"bigtable.misc.Bloom": 0.15, "bigtable.runtime.Glue": 0.15,
	})
	db.scanRecipe = mk(scanCoreBudget, platform.Split{
		"bigtable.query.ScanMerge": 0.45, "bigtable.read.Seek": 0.25,
		"bigtable.misc.Bloom": 0.15, "bigtable.runtime.Glue": 0.15,
	})
	db.minorRecipe = mk(minorCoreBudget, platform.Split{
		"bigtable.compaction.Flush": 0.75, "bigtable.misc.Bloom": 0.12, "bigtable.runtime.Glue": 0.13,
	})
	db.majorRecipe = mk(majorCoreBudget, platform.Split{
		"bigtable.compaction.Merge": 0.75, "bigtable.misc.Bloom": 0.12, "bigtable.runtime.Glue": 0.13,
	})
}

// load places tablets on servers and bootstraps a base SSTable per tablet.
func (db *DB) load() error {
	machines := db.mgr.Machines()
	for t := 0; t < db.cfg.Tablets; t++ {
		tab := &tablet{
			id:        t,
			server:    machines[t%len(machines)],
			serverIdx: t % len(machines),
			mem:       map[string][]byte{},
			nextSeq:   1,
			flushDone: map[int64]bool{},
		}
		base := &sstable{
			file: fmt.Sprintf("bt/tablet%d/base", t),
			data: map[string][]byte{},
		}
		for i := 0; i < db.cfg.RowsPerTablet; i++ {
			base.data[rowKey(t, i)] = bootstrapValue(t, i, int(db.cfg.ValueBytes))
		}
		base.seal()
		if _, err := db.dfs.Create(base.file, base.bytes); err != nil {
			return err
		}
		tab.ssts = []*sstable{base}
		tab.nextSST = 1
		db.tablets = append(db.tablets, tab)
	}
	return nil
}

func rowKey(tablet, row int) string { return fmt.Sprintf("t%d/k%d", tablet, row) }

// bootstrapValue generates a row's initial content: a deterministic first
// byte (tests and scan predicates rely on it) followed by incompressible
// per-row noise — bootstrap data models already-compressed historical
// payloads, so base SSTables do not shrink further under block compression.
func bootstrapValue(t, i, n int) []byte {
	val := make([]byte, n)
	if n == 0 {
		return val
	}
	val[0] = byte(uint64(t)*11 + uint64(i)*17)
	x := uint64(t)*2654435761 + uint64(i)*40503 + 12345
	for j := 1; j < n; j++ {
		x = x*6364136223846793005 + 1442695040888963407
		val[j] = byte(x >> 33)
	}
	return val
}

// NumTablets returns the tablet count.
func (db *DB) NumTablets() int { return db.cfg.Tablets }

// RowsPerTablet returns the rows per tablet.
func (db *DB) RowsPerTablet() int { return db.cfg.RowsPerTablet }

// PickRow draws a Zipf-popular row index.
func (db *DB) PickRow() int { return db.zipf.Next() }

// Machines exposes the tablet-server fleet.
func (db *DB) Machines() []*cluster.Machine { return db.mgr.Machines() }

// DFS exposes the backing file system (for inventory and stats).
func (db *DB) DFS() *storage.DFS { return db.dfs }

// SSTableCount returns the number of live SSTables for a tablet (tests).
func (db *DB) SSTableCount(t int) int { return len(db.tablets[t].ssts) }

// waitIfCompacting blocks the op while the tablet's major compaction runs,
// annotating the wait as remote work (compaction happens in remote storage).
func (db *DB) waitIfCompacting(p *sim.Proc, tr *trace.Trace, tab *tablet) {
	for tab.compacting != nil && !tab.compacting.Fired() {
		start := p.Now()
		p.Wait(tab.compacting)
		platform.AnnotateRemote(tr, start, p.Now())
	}
	// A tablet freshly reassigned after a server crash is unavailable until
	// its commit-log replay completes; the wait is remote work too.
	for tab.recovering != nil && !tab.recovering.Fired() {
		start := p.Now()
		p.Wait(tab.recovering)
		platform.AnnotateRemote(tr, start, p.Now())
	}
}

// ErrPartitioned reports an operation refused because the tablet's server is
// partitioned away from the cluster and recovery is off (or has nowhere to
// move the tablet). The failure is definite: nothing executed.
var ErrPartitioned = fmt.Errorf("bigtable: tablet server partitioned")

// partitionCheck gates an operation on the tablet's server connectivity.
// With the BrokenPartitionWrites fixture the isolated server (wrongly) keeps
// serving; otherwise ops against a partitioned server fail definite —
// PartitionRecovery moves tablets off partitioned servers at cut time, so
// under recovery this only fires in the window before reassignment.
func (db *DB) partitionCheck(tab *tablet) error {
	if db.partitioned[tab.serverIdx] && !db.cfg.BrokenPartitionWrites {
		return fmt.Errorf("%w: server %d owns tablet %d", ErrPartitioned, tab.serverIdx, tab.id)
	}
	return nil
}

// get is the un-recorded implementation of Get.
func (db *DB) get(p *sim.Proc, tr *trace.Trace, t, row int) ([]byte, error) {
	if t < 0 || t >= len(db.tablets) {
		return nil, fmt.Errorf("bigtable: tablet %d out of range", t)
	}
	tab := db.tablets[t]
	if err := db.partitionCheck(tab); err != nil {
		return nil, err
	}
	db.waitIfCompacting(p, tr, tab)
	db.env.ExecRecipe(p, taxonomy.BigTable, tab.server.Node, tr, db.getRecipe)
	key := rowKey(t, row)
	if v, ok := tab.mem[key]; ok {
		db.Gets++
		return v, nil
	}
	for _, s := range tab.imm {
		if v, ok := s.data[key]; ok {
			db.Gets++
			return v, nil
		}
	}
	// Probe SSTables newest-first; each probe reads one 16 KiB block. The
	// per-table Bloom filter skips tables that cannot contain the key.
	for _, s := range tab.ssts {
		if s.filter != nil && !s.filter.MayContain(key) {
			db.BloomSkips++
			continue
		}
		v, ok := s.data[key]
		ioStart := p.Now()
		blockOff := int64(0)
		if s.bytes > 16<<10 {
			blockOff = int64(db.rng.Intn(int(s.bytes>>14))) << 14
		}
		blockLen := min64(16<<10, s.bytes)
		d, _, err := db.dfs.Read(s.file, blockOff, blockLen)
		if err != nil {
			return nil, err
		}
		p.Sleep(d)
		platform.AnnotateIO(tr, ioStart, p.Now())
		if ok {
			db.Gets++
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", storage.ErrNotFound, key)
}

// put is the un-recorded implementation of Put.
func (db *DB) put(p *sim.Proc, tr *trace.Trace, t, row int, value []byte) error {
	if t < 0 || t >= len(db.tablets) {
		return fmt.Errorf("bigtable: tablet %d out of range", t)
	}
	tab := db.tablets[t]
	if err := db.partitionCheck(tab); err != nil {
		return err
	}
	db.waitIfCompacting(p, tr, tab)
	db.env.ExecRecipe(p, taxonomy.BigTable, tab.server.Node, tr, db.putRecipe)

	key := rowKey(t, row)
	cp := make([]byte, len(value))
	copy(cp, value)
	if db.partitioned[tab.serverIdx] {
		// BROKEN (fixture, BrokenPartitionWrites): the isolated server cannot
		// reach the shared commit log but acknowledges the write from its
		// local memtable anyway. The heal-time fencing rebuild replays only
		// the log, so this acknowledged write is doomed to vanish.
		old := int64(len(tab.mem[key]))
		tab.mem[key] = cp
		tab.memSize += int64(len(cp)) - old
		db.Puts++
		return nil
	}

	// Commit-log append: replicated write into the shared storage layer,
	// failing over to the next live chunkserver if the tablet's usual log
	// server is down.
	ioStart := p.Now()
	logBytes := int64(len(value)) + 64
	p.Sleep(db.logServer(tab).RawAccess(storage.SSD, logBytes, true))
	platform.AnnotateIO(tr, ioStart, p.Now())

	// The record and the memtable insert land atomically after the log IO
	// (the kernel only switches procs at park points), so a crash either
	// sees both or neither.
	seq := tab.nextSeq
	tab.nextSeq++
	tab.log = append(tab.log, logRec{seq: seq, key: key, value: cp})
	tab.logBytes += logBytes
	old := int64(len(tab.mem[key]))
	tab.mem[key] = cp
	tab.memSize += int64(len(cp)) - old
	tab.memPuts++
	db.Puts++
	if tab.memPuts >= db.cfg.FlushEvery {
		db.flush(tab)
	}
	return nil
}

// Scan merges rows [start, start+ScanRows) across memtable and SSTables and
// returns the count matching a real predicate (first byte odd).
func (db *DB) Scan(p *sim.Proc, tr *trace.Trace, t, start int) (int, error) {
	release, admitErr := db.admitOp(t)
	if admitErr != nil {
		return 0, admitErr
	}
	defer release()
	if t < 0 || t >= len(db.tablets) {
		return 0, fmt.Errorf("bigtable: tablet %d out of range", t)
	}
	tab := db.tablets[t]
	if err := db.partitionCheck(tab); err != nil {
		return 0, err
	}
	db.waitIfCompacting(p, tr, tab)
	db.env.ExecRecipe(p, taxonomy.BigTable, tab.server.Node, tr, db.scanRecipe)

	// Stream the scanned range from the base sstable: the logical range is
	// scaled down by the table's compression ratio to the on-DFS bytes.
	ioStart := p.Now()
	base := tab.ssts[len(tab.ssts)-1]
	scanBytes := int64(db.cfg.ScanRows) * db.cfg.ValueBytes
	if base.rawBytes > 0 {
		scanBytes = scanBytes * base.bytes / base.rawBytes
	}
	off := int64(start%db.cfg.RowsPerTablet) * db.cfg.ValueBytes
	if off+scanBytes > base.bytes {
		off = 0
	}
	d, _, err := db.dfs.Read(base.file, off, min64(scanBytes, base.bytes))
	if err != nil {
		return 0, err
	}
	p.Sleep(d)
	platform.AnnotateIO(tr, ioStart, p.Now())

	matched := 0
	for i := 0; i < db.cfg.ScanRows; i++ {
		v := db.lookup(tab, rowKey(t, (start+i)%db.cfg.RowsPerTablet))
		if len(v) > 0 && v[0]%2 == 1 {
			matched++
		}
	}
	db.Scans++
	return matched, nil
}

// lookup resolves a key through the merge hierarchy without IO (used by
// scans after the range has been streamed).
func (db *DB) lookup(tab *tablet, key string) []byte {
	if v, ok := tab.mem[key]; ok {
		return v
	}
	for _, s := range tab.imm {
		if v, ok := s.data[key]; ok {
			return v
		}
	}
	for _, s := range tab.ssts {
		if v, ok := s.data[key]; ok {
			return v
		}
	}
	return nil
}

// flush snapshots the memtable and writes it to the DFS as a new SSTable in
// the background (minor compaction). Serving continues from the immutable
// snapshot meanwhile. The commit log is truncated only once the flush is
// durable — truncating at snapshot time would lose the snapshotted writes if
// the server crashed mid-flush (the brokenLogTruncateEarly fixture).
func (db *DB) flush(tab *tablet) {
	snap := &sstable{
		file: fmt.Sprintf("bt/tablet%d/sst%d", tab.id, tab.nextSST),
		data: tab.mem,
	}
	snapSeq := tab.nextSeq - 1
	epoch := tab.epoch
	tab.nextSST++
	tab.mem = map[string][]byte{}
	tab.memSize = 0
	tab.memPuts = 0
	tab.imm = append([]*sstable{snap}, tab.imm...)
	tab.flushPending = append(tab.flushPending, snapSeq)
	if db.brokenLogTruncateEarly {
		// BROKEN (fixture): drop the snapshotted records before they are
		// durable.
		db.truncateLog(tab, snapSeq)
	}

	db.env.K.Go("bt-minor-compaction", func(p *sim.Proc) {
		db.env.ExecRecipe(p, taxonomy.BigTable, tab.server.Node, nil, db.minorRecipe)
		snap.seal() // real block compression + Bloom filter
		db.CompressedBytes += snap.bytes
		db.RawBytes += snap.rawBytes
		if _, err := db.dfs.Create(snap.file, snap.bytes); err != nil {
			panic(fmt.Sprintf("bigtable: flush: %v", err))
		}
		if tab.epoch != epoch {
			// The tablet was reassigned mid-flush: the crash already rebuilt
			// this snapshot's writes from the commit log on the new server, so
			// promoting the orphan would resurrect a stale epoch's state.
			db.dfs.Delete(snap.file)
			return
		}
		// Promote snapshot to a real SSTable.
		for i, s := range tab.imm {
			if s == snap {
				tab.imm = append(tab.imm[:i], tab.imm[i+1:]...)
				break
			}
		}
		tab.ssts = append([]*sstable{snap}, tab.ssts...)
		tab.flushes++
		db.MinorCompactions++
		db.mMinorCompactions.Inc()
		// The snapshot is durable: advance durableSeq over the completed
		// prefix of pending flushes (they can finish out of order) and
		// truncate the replay log up to it.
		tab.flushDone[snapSeq] = true
		for len(tab.flushPending) > 0 && tab.flushDone[tab.flushPending[0]] {
			seq := tab.flushPending[0]
			delete(tab.flushDone, seq)
			tab.flushPending = tab.flushPending[1:]
			if seq > tab.durableSeq {
				tab.durableSeq = seq
			}
			if !db.brokenReplayDup {
				db.truncateLog(tab, seq)
			}
		}
		if tab.flushes%db.cfg.MajorEvery == 0 && tab.compacting == nil {
			db.major(tab)
		}
	})
}

// truncateLog drops commit-log records with seq <= upto.
func (db *DB) truncateLog(tab *tablet, upto int64) {
	i := 0
	for i < len(tab.log) && tab.log[i].seq <= upto {
		tab.logBytes -= int64(len(tab.log[i].value)) + 64
		i++
	}
	tab.log = tab.log[i:]
}

// major merges a tablet's SSTables into one in remote storage, blocking the
// tablet's operations until it completes. The input set is snapshotted up
// front: a minor compaction already in flight when the major starts can
// complete mid-merge and prepend a new SSTable, which must survive —
// replacing the live list wholesale would silently drop its acknowledged
// writes.
func (db *DB) major(tab *tablet) {
	tab.compacting = sim.NewSignal(db.env.K)
	inputs := append([]*sstable(nil), tab.ssts...)
	db.env.K.Go("bt-major-compaction", func(p *sim.Proc) {
		merged := &sstable{
			file: fmt.Sprintf("bt/tablet%d/sst%d", tab.id, tab.nextSST),
			data: map[string][]byte{},
		}
		tab.nextSST++
		// Merge oldest-to-newest so newer values win.
		var readTime time.Duration
		for i := len(inputs) - 1; i >= 0; i-- {
			s := inputs[i]
			d, _, err := db.dfs.Read(s.file, 0, s.bytes)
			if err != nil {
				panic(fmt.Sprintf("bigtable: major read: %v", err))
			}
			readTime += d
			for k, v := range s.data {
				merged.data[k] = v
			}
		}
		p.Sleep(readTime)
		db.env.ExecRecipe(p, taxonomy.BigTable, tab.server.Node, nil, db.majorRecipe)
		merged.seal()
		if _, err := db.dfs.Create(merged.file, merged.bytes); err != nil {
			panic(fmt.Sprintf("bigtable: major write: %v", err))
		}
		for _, s := range inputs {
			if err := db.dfs.Delete(s.file); err != nil {
				panic(fmt.Sprintf("bigtable: major delete: %v", err))
			}
		}
		// Keep any SSTables flushed since the merge started (newest first),
		// with the merged table as the new oldest.
		inputSet := map[*sstable]bool{}
		for _, s := range inputs {
			inputSet[s] = true
		}
		var kept []*sstable
		for _, s := range tab.ssts {
			if !inputSet[s] {
				kept = append(kept, s)
			}
		}
		tab.ssts = append(kept, merged)
		db.MajorCompactions++
		db.mMajorCompactions.Inc()
		tab.compacting.Fire()
		tab.compacting = nil
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// logServer returns the chunkserver holding the tablet's commit log,
// failing over to the next live one when it is down (all down: fall back to
// the home server — the write stalls on nothing, modeling a buffered log).
func (db *DB) logServer(tab *tablet) *storage.TieredStore {
	home := tab.id % db.cfg.Chunkservers
	for off := 0; off < db.cfg.Chunkservers; off++ {
		i := (home + off) % db.cfg.Chunkservers
		if !db.dfs.ServerDown(i) {
			return db.dfs.Servers()[i]
		}
	}
	return db.dfs.Servers()[home]
}

// TabletServer returns the machine index currently serving tablet t.
func (db *DB) TabletServer(t int) (int, error) {
	if t < 0 || t >= len(db.tablets) {
		return 0, fmt.Errorf("bigtable: tablet %d out of range", t)
	}
	return db.tablets[t].serverIdx, nil
}

// TabletServerDown reports whether tablet server i is failed.
func (db *DB) TabletServerDown(i int) bool { return db.downServers[i] }

// FailTabletServer injects a tablet-server crash: the server's memtables are
// lost with it, so every tablet it owned is reassigned round-robin to the
// surviving servers, and each reassigned tablet replays its un-flushed
// commit log from the DFS before serving again (ops arriving mid-recovery
// block on the replay, annotated as remote work). Durable state — SSTables
// and the commit log — lives in the DFS and survives, so no acknowledged
// write is lost. Fails if it would take down the last live server.
func (db *DB) FailTabletServer(i int) error {
	machines := db.mgr.Machines()
	if i < 0 || i >= len(machines) {
		return fmt.Errorf("bigtable: tablet server %d out of range", i)
	}
	if db.downServers[i] {
		return nil
	}
	if len(db.liveServers(i)) == 0 {
		return fmt.Errorf("bigtable: cannot fail server %d: no live servers remain", i)
	}
	db.downServers[i] = true
	db.reassignFrom(i)
	return nil
}

// liveServers returns the machine indices that are neither down nor
// partitioned, excluding `except` — the servers the master can actually hand
// tablets to.
func (db *DB) liveServers(except int) []int {
	var live []int
	for m := range db.mgr.Machines() {
		if m != except && !db.downServers[m] && !db.partitioned[m] {
			live = append(live, m)
		}
	}
	return live
}

// reassignFrom moves every tablet owned by server i to the reachable live
// servers, rebuilding each from its commit log (crash semantics: epoch
// fencing aborts the old owner's in-flight flushes, the replay dedup check
// flags records already durable). Tablets stay put if no server can take
// them.
func (db *DB) reassignFrom(i int) {
	live := db.liveServers(i)
	if len(live) == 0 {
		return
	}
	machines := db.mgr.Machines()
	for _, tab := range db.tablets {
		if tab.serverIdx != i {
			continue
		}
		ni := live[tab.id%len(live)]
		tab.serverIdx = ni
		tab.server = machines[ni]
		db.Reassignments++
		db.mTabletMoves.Inc()
		db.rebuildFromLog(tab)
		db.recoverTablet(tab)
	}
}

// PartitionTabletServer cuts tablet server i off from the cluster: the
// master, DFS and clients cannot reach it (and it cannot reach them). With
// PartitionRecovery the master immediately reassigns its tablets to reachable
// servers through the commit-log replay path; otherwise the tablets ride out
// the partition unavailable. The BrokenPartitionWrites fixture instead lets
// the isolated server keep acknowledging writes (see put).
func (db *DB) PartitionTabletServer(i int) error {
	if i < 0 || i >= len(db.mgr.Machines()) {
		return fmt.Errorf("bigtable: tablet server %d out of range", i)
	}
	if db.partitioned[i] {
		return nil
	}
	db.partitioned[i] = true
	if db.cfg.PartitionRecovery && !db.cfg.BrokenPartitionWrites {
		db.reassignFrom(i)
	}
	return nil
}

// HealTabletServer reconnects a partitioned tablet server. Under the
// BrokenPartitionWrites fixture the master fences the returning server by
// rebuilding its tablets from the shared commit log — the split-brain
// resolution that discards the isolated memtable, including any writes the
// server wrongly acknowledged without logging them.
func (db *DB) HealTabletServer(i int) error {
	if i < 0 || i >= len(db.mgr.Machines()) {
		return fmt.Errorf("bigtable: tablet server %d out of range", i)
	}
	if !db.partitioned[i] {
		return nil
	}
	delete(db.partitioned, i)
	if db.cfg.BrokenPartitionWrites {
		for _, tab := range db.tablets {
			if tab.serverIdx == i {
				db.rebuildFromLog(tab)
				db.recoverTablet(tab)
			}
		}
	}
	return nil
}

// TabletServerPartitioned reports whether tablet server i is partitioned.
func (db *DB) TabletServerPartitioned(i int) bool { return db.partitioned[i] }

// rebuildFromLog applies crash semantics to a reassigned tablet: the crashed
// server's volatile state — the active memtable and any still-flushing
// snapshots — is lost, and the new server's memtable is rebuilt by replaying
// the commit log in sequence order. SSTables live in the DFS and survive.
// The rebuild itself is instantaneous state surgery; recoverTablet separately
// burns the replay's IO and CPU time while the tablet blocks.
func (db *DB) rebuildFromLog(tab *tablet) {
	tab.epoch++ // aborts in-flight flush promotions from the dead server
	tab.mem = map[string][]byte{}
	tab.memSize = 0
	tab.imm = nil
	tab.flushPending = nil
	tab.flushDone = map[int64]bool{}
	dups := 0
	for _, rec := range tab.log {
		if rec.seq <= tab.durableSeq {
			// Replaying a record that is already durable in an SSTable: for
			// last-writer-wins puts the replay happens to be idempotent, but
			// it is a protocol violation (re-applied increments or appends
			// would corrupt state), so it is flagged structurally.
			dups++
		}
		old := int64(len(tab.mem[rec.key]))
		tab.mem[rec.key] = rec.value
		tab.memSize += int64(len(rec.value)) - old
	}
	tab.memPuts = len(tab.log)
	if dups > 0 {
		db.ReplayDups += dups
		if db.rec != nil {
			db.rec.Violate("duplicate-replay", fmt.Sprintf("t%d", tab.id),
				"tablet %d replayed %d commit-log records already durable (durableSeq %d)",
				tab.id, dups, tab.durableSeq)
		}
	}
}

// RecoverTabletServer brings a failed tablet server back into the live set.
// Tablets stay where they were reassigned (like production, rebalancing is a
// separate concern); the server is simply eligible for future reassignments.
func (db *DB) RecoverTabletServer(i int) error {
	if i < 0 || i >= len(db.mgr.Machines()) {
		return fmt.Errorf("bigtable: tablet server %d out of range", i)
	}
	delete(db.downServers, i)
	return nil
}

// recoverTablet replays the tablet's un-flushed commit log on its new server:
// re-read the log bytes from the DFS chunkserver and burn the minor-
// compaction recipe to rebuild the memtable. The tablet blocks ops until the
// replay finishes.
func (db *DB) recoverTablet(tab *tablet) {
	if tab.recovering != nil && !tab.recovering.Fired() {
		return
	}
	sig := sim.NewSignal(db.env.K)
	tab.recovering = sig
	replay := tab.logBytes
	db.env.K.Go("bt-log-recovery", func(p *sim.Proc) {
		if replay > 0 {
			p.Sleep(db.logServer(tab).RawAccess(storage.SSD, replay, false))
		}
		db.env.ExecRecipe(p, taxonomy.BigTable, tab.server.Node, nil, db.minorRecipe)
		db.Recoveries++
		db.mRecoveries.Inc()
		sig.Fire()
		if tab.recovering == sig {
			tab.recovering = nil
		}
	})
}
