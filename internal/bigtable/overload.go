package bigtable

// Front-door admission gate. BigTable operations execute directly on the
// tablet server's node (there is no RPC queue to bound), so overload control
// happens at the front door instead: a per-tablet-server in-flight bound with
// utilization-driven adaptive shedding, reusing netsim.Admission as the knob
// bundle. Target/Interval (the CoDel parameters) are ignored here — with no
// queue there is no sojourn to bound; MaxQueue is interpreted as the maximum
// concurrent operations per tablet server.

import (
	"fmt"

	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/stats"
)

// releaseNop is the release function for unadmitted (gate-disabled) ops.
func releaseNop() {}

// admitOp runs the front-door gate for one operation against tablet t's
// server. It returns a release function to call when the operation completes,
// or a netsim.ErrOverloaded-wrapped error when the op is shed. With the gate
// disabled (zero Admission) it admits everything for free.
func (db *DB) admitOp(t int) (func(), error) {
	a := db.cfg.Admission
	if a.MaxQueue <= 0 || t < 0 || t >= len(db.tablets) {
		return releaseNop, nil
	}
	idx := db.tablets[t].serverIdx
	depth := db.gateInFlight[idx]
	if depth >= a.MaxQueue {
		db.Shed++
		db.mSheds.Inc()
		return nil, fmt.Errorf("%w: tablet server %d (in-flight %d)", netsim.ErrOverloaded, idx, depth)
	}
	if a.ShedStartFrac > 0 {
		frac := float64(depth) / float64(a.MaxQueue)
		if frac >= a.ShedStartFrac {
			p := (frac - a.ShedStartFrac) / (1 - a.ShedStartFrac)
			if db.gateRNG.Bool(p) {
				db.ShedAdaptive++
				db.mShedsAdaptive.Inc()
				return nil, fmt.Errorf("%w: tablet server %d (adaptive shed at %d in-flight)", netsim.ErrOverloaded, idx, depth)
			}
		}
	}
	db.gateInFlight[idx]++
	released := false
	return func() {
		if !released {
			released = true
			db.gateInFlight[idx]--
		}
	}, nil
}

// initGate arms the front-door gate from the config; called at construction.
func (db *DB) initGate() {
	if db.cfg.Admission.MaxQueue <= 0 {
		return
	}
	db.gateInFlight = map[int]int{}
	if db.cfg.Admission.ShedStartFrac > 0 {
		db.gateRNG = stats.NewRNG(db.cfg.Admission.Seed ^ 0x42544744) // "BTGD"
	}
}

// enableGateObs registers the gate's series; a nil registry is a no-op.
func (db *DB) enableGateObs(r *obs.Registry) {
	if r == nil {
		return
	}
	db.mSheds = r.Counter("bigtable.admission.sheds")
	db.mShedsAdaptive = r.Counter("bigtable.admission.sheds_adaptive")
	r.GaugeFunc("bigtable.admission.inflight", func() int64 {
		var total int64
		for _, n := range db.gateInFlight {
			total += int64(n)
		}
		return total
	})
}
