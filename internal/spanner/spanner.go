// Package spanner simulates a Spanner-like globally distributed,
// synchronously replicated SQL database (§2.2.1): tablet groups replicated
// across regions, a Paxos-style commit protocol (leader log append, parallel
// follower replication, majority acknowledgment), strong reads that confirm
// leadership with a quorum round, SQL-ish scans, and background compaction.
// Row data is real — reads return the bytes writes stored — while CPU costs
// come from the calibrated recipes in internal/platform.
package spanner

import (
	"errors"
	"fmt"
	"time"

	"hyperprof/internal/check"
	"hyperprof/internal/cluster"
	"hyperprof/internal/netsim"
	"hyperprof/internal/obs"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// Config sizes a Spanner deployment.
type Config struct {
	// Groups is the number of Paxos tablet groups.
	Groups int
	// Regions is the replication span; each group has one replica per
	// region and commits wait for a majority.
	Regions int
	// RowsPerGroup and RowBytes size the dataset.
	RowsPerGroup int
	RowBytes     int64
	// StrongReadFrac is the fraction of reads that confirm a quorum lease.
	StrongReadFrac float64
	// CompactionEvery triggers a group compaction after this many commits.
	CompactionEvery int
	// QueryScanRows is the number of rows a SQL query scans.
	QueryScanRows int
	// Seed drives all randomness in the deployment.
	Seed uint64
	// RPC is the client-side resilience policy applied to consensus RPCs
	// (replication and lease rounds). The zero value is a plain call with no
	// retries and changes nothing about fault-free runs.
	RPC netsim.Policy
	// Admission is the server-side overload admission control installed on
	// every replica RPC server (bounded queue, CoDel expiry, adaptive shed).
	// The zero value disables it and changes nothing about existing runs.
	Admission netsim.Admission
	// ClockEps is each replica clock's TrueTime-style uncertainty bound.
	// Commits mint their timestamp from the leader's (possibly skewed) local
	// clock and wait the bound out before acknowledging — commit wait, the
	// mechanism that buys external consistency. Zero keeps perfect clocks and
	// skips the wait, leaving existing runs untouched.
	ClockEps time.Duration
	// DisableCommitWait is a broken-knob fixture: commits are still stamped
	// from the skewed local clock but acknowledged without waiting out the
	// uncertainty bound. Under injected clock skew the external-consistency
	// checker must flag the resulting timestamp inversions.
	DisableCommitWait bool
	// PartitionRecovery enables partition-aware leadership: a leader cut off
	// from a quorum of its group steps down and the election runs over the
	// majority-connected component, restoring availability without ever
	// committing on the minority side. Off, a partitioned leader just keeps
	// failing its replication rounds — safe but unavailable.
	PartitionRecovery bool
}

// DefaultConfig returns a laptop-scale deployment that preserves the
// paper-relevant behaviour: caches smaller than the working set, majority
// commit across regions, Zipf-skewed access.
func DefaultConfig() Config {
	return Config{
		Groups:          9,
		Regions:         3,
		RowsPerGroup:    4000,
		RowBytes:        1024,
		StrongReadFrac:  0.15,
		CompactionEvery: 10,
		QueryScanRows:   200,
		Seed:            1,
	}
}

// Core-compute CPU budgets per operation (pre-tax), solved so the aggregate
// core split under the default workload mix lands on Figure 4's Spanner bar.
const (
	readCoreBudget       = 605 * time.Microsecond
	writeCoreBudget      = 1170 * time.Microsecond
	queryCoreBudget      = 1400 * time.Microsecond
	compactionCoreBudget = 3700 * time.Microsecond
	followerConsensus    = 117 * time.Microsecond
	leaseCheckBudget     = 50 * time.Microsecond
)

// DB is a running Spanner deployment.
type DB struct {
	env    *platform.Env
	cfg    Config
	mgr    *cluster.Manager
	taxes  platform.TaxTables
	groups []*group
	rng    *stats.RNG
	zipf   *stats.Zipf
	client *netsim.Client

	// rec, when non-nil, records every Read/Commit into an operation history
	// for the safety checker (see safety.go).
	rec *check.History
	// brokenElectAnyReplica is a test-only fault: elections pick the first
	// live replica with no up-to-dateness or majority requirement,
	// reintroducing the unsafe election the checker exists to catch.
	brokenElectAnyReplica bool

	readRecipe     platform.Recipe
	writeRecipe    platform.Recipe
	queryRecipe    platform.Recipe
	compactRecipe  platform.Recipe
	followerRecipe platform.Recipe
	leaseRecipe    platform.Recipe

	// Counters for tests and reports.
	Reads, Writes, Queries, Compactions, Elections int

	// Observability handles (nil when env.Obs is disabled; see enableObs).
	mConsensusRounds *obs.Counter
	mElections       *obs.Counter
	mCompactions     *obs.Counter
	mReadLat         *obs.Histogram
	mCommitLat       *obs.Histogram
}

type group struct {
	id       int
	replicas []*replica // one per region
	leader   int        // index of the current leader replica
	term     int        // bumped on every election
	commits  int
	// committed is the length of the majority-acknowledged log prefix. It is
	// monotone by construction (only ever raised, on the commit path) and is
	// what the election-safety and committed-prefix invariants are checked
	// against.
	committed int
	// lastTS is the group's commit-timestamp high-water mark, bumped at mint
	// time (not at ack: an indeterminate commit may still replicate later and
	// its successor must not reuse the timestamp), keeping timestamps
	// strictly monotone per group even under backwards clock skew.
	lastTS time.Duration
}

func (g *group) leaderRep() *replica { return g.replicas[g.leader] }

// logEntry is one replicated write. The term stamps which leadership wrote
// it, so elections can order logs by recency (Raft's up-to-date rule) and the
// invariant checker can tell a stale divergent suffix from a committed entry.
type logEntry struct {
	key   string
	value []byte
	term  int
	// ts is the commit timestamp minted from the leader's local clock when
	// the entry was created; it rides replication so a later leader serves
	// the same timestamps the original commit acknowledged.
	ts time.Duration
}

type replica struct {
	machine *cluster.Machine
	srv     *netsim.Server
	region  int
	// log is the replica's replicated write log; rows is its applied state
	// (bootstrap rows are virtual: see bootstrapValue). Entries are applied
	// to rows strictly at commit, in log order: applied counts the applied
	// prefix and never exceeds the group's commit index. Applying at append
	// time would let an uncommitted entry leak into reads and then vanish
	// across a failover — a dirty read.
	log     []logEntry
	rows    map[string][]byte
	applied int
	// clock is the replica's local wall clock: true time plus whatever skew
	// the nemesis injected, known only up to the config's uncertainty bound.
	clock *sim.Clock
}

// applyUpTo applies the replica's log prefix [applied, n) to its row state,
// in log order. n is clamped to the log length; applied never regresses.
func applyUpTo(rep *replica, n int) {
	if n > len(rep.log) {
		n = len(rep.log)
	}
	for i := rep.applied; i < n; i++ {
		e := rep.log[i]
		rep.rows[e.key] = e.value
	}
	if n > rep.applied {
		rep.applied = n
	}
}

// New builds and starts a deployment on the environment. The environment's
// network should use metro-scale cross-region RTTs (see RecommendedNetConfig)
// for paper-shaped commit latencies.
func New(env *platform.Env, cfg Config) (*DB, error) {
	if cfg.Groups <= 0 || cfg.Regions < 3 || cfg.RowsPerGroup <= 0 {
		return nil, fmt.Errorf("spanner: invalid config %+v", cfg)
	}
	ramR, ssdR, hddR := platform.PaperStorageRatio(taxonomy.Spanner)
	// Provision RAM so roughly 3% of a machine's resident rows fit, keeping
	// the Table 1 ratio for the other tiers.
	perMachineGroups := (cfg.Groups + machinesPerRegion(cfg) - 1) / machinesPerRegion(cfg)
	ram := int64(perMachineGroups)*int64(cfg.RowsPerGroup)*cfg.RowBytes/32 + 1<<20
	spec := cluster.Spec{
		Regions:         cfg.Regions,
		RacksPerRegion:  1,
		MachinesPerRack: machinesPerRegion(cfg),
		CoresPerMachine: 16,
		Storage: storage.Capacities{
			storage.RAM: ram,
			storage.SSD: ram * ssdR / ramR,
			storage.HDD: ram * hddR / ramR,
		},
	}
	mgr, err := cluster.NewManager(env.Net, spec)
	if err != nil {
		return nil, err
	}
	db := &DB{
		env:   env,
		cfg:   cfg,
		mgr:   mgr,
		taxes: platform.TaxTablesFor(taxonomy.Spanner),
		rng:   stats.NewRNG(cfg.Seed),
	}
	db.zipf = stats.NewZipf(db.rng.Fork(), cfg.RowsPerGroup, 1.1)
	// The RPC client seed is derived from the config seed without touching
	// db.rng, so enabling a policy cannot shift the workload's random streams.
	db.client = netsim.NewClient(cfg.RPC, cfg.Seed^0x52504353) // "RPCS"
	db.registerClassifier()
	db.buildRecipes()
	if err := db.place(); err != nil {
		return nil, err
	}
	db.load()
	db.enableObs(env.Obs)
	return db, nil
}

// enableObs registers the deployment's series with the environment's
// observability plane. A nil registry leaves all handles nil, so every
// record site is a single-branch no-op.
func (db *DB) enableObs(r *obs.Registry) {
	if r == nil {
		return
	}
	db.mConsensusRounds = r.Counter("spanner.consensus.rounds")
	db.mElections = r.Counter("spanner.elections")
	db.mCompactions = r.Counter("spanner.compactions")
	db.mReadLat = r.Histogram("spanner.read.latency")
	db.mCommitLat = r.Histogram("spanner.commit.latency")
	// Apply lag: committed entries the current leaders have not applied to
	// their row state yet, summed over groups — the replication plane's
	// freshness debt at each sampling instant.
	r.GaugeFunc("spanner.apply.lag", func() int64 {
		var lag int64
		for _, grp := range db.groups {
			if d := grp.committed - grp.leaderRep().applied; d > 0 {
				lag += int64(d)
			}
		}
		return lag
	})
}

func machinesPerRegion(cfg Config) int {
	m := cfg.Groups / 3
	if m < 1 {
		m = 1
	}
	return m
}

// RecommendedNetConfig returns network parameters for a metro-replicated
// Spanner deployment (quorums within a continent, not across oceans).
func RecommendedNetConfig() netsim.Config {
	c := netsim.DefaultConfig()
	c.CrossRegionRTT = 3 * time.Millisecond
	return c
}

func (db *DB) registerClassifier() {
	c := db.env.Prof.Classifier()
	c.Register("spanner.read.", taxonomy.Read)
	c.Register("spanner.write.", taxonomy.Write)
	c.Register("spanner.consensus.", taxonomy.Consensus)
	c.Register("spanner.query.", taxonomy.Query)
	c.Register("spanner.compaction.", taxonomy.Compaction)
	c.Register("spanner.misc.", taxonomy.MiscCore)
	// spanner.runtime.* is intentionally unregistered: it lands in
	// Uncategorized, modeling unlabeled compute.
}

func (db *DB) buildRecipes() {
	cc := platform.PaperMicro(taxonomy.Spanner, taxonomy.CoreCompute)
	mk := func(budget time.Duration, split platform.Split) platform.Recipe {
		micros := platform.MicroFor(cc, split.Keys()...)
		r := platform.BuildRecipe(budget, split, micros)
		dct, st := platform.TaxBudgets(taxonomy.Spanner, float64(budget))
		return append(r, db.taxes.TaxRecipe(time.Duration(dct), time.Duration(st))...)
	}
	db.readRecipe = mk(readCoreBudget, platform.Split{
		"spanner.read.RowLookup": 0.78, "spanner.misc.Validate": 0.11, "spanner.runtime.Glue": 0.11,
	})
	db.writeRecipe = mk(writeCoreBudget, platform.Split{
		"spanner.write.Apply": 0.52, "spanner.consensus.Propose": 0.40,
		"spanner.misc.Validate": 0.04, "spanner.runtime.Glue": 0.04,
	})
	db.queryRecipe = mk(queryCoreBudget, platform.Split{
		"spanner.query.Eval": 0.72, "spanner.read.Scan": 0.10,
		"spanner.misc.Validate": 0.09, "spanner.runtime.Glue": 0.09,
	})
	db.compactRecipe = mk(compactionCoreBudget, platform.Split{
		"spanner.compaction.Merge": 0.72, "spanner.misc.Validate": 0.14, "spanner.runtime.Glue": 0.14,
	})
	db.followerRecipe = mk(followerConsensus, platform.Split{"spanner.consensus.Append": 1})
	db.leaseRecipe = mk(leaseCheckBudget, platform.Split{"spanner.consensus.LeaseCheck": 1})
}

// place assigns each group one replica per region and starts RPC servers.
func (db *DB) place() error {
	byRegion := map[int][]*cluster.Machine{}
	for _, m := range db.mgr.Machines() {
		byRegion[m.Node.Region] = append(byRegion[m.Node.Region], m)
	}
	for g := 0; g < db.cfg.Groups; g++ {
		grp := &group{id: g}
		for r := 0; r < db.cfg.Regions; r++ {
			ms := byRegion[r]
			if len(ms) == 0 {
				return fmt.Errorf("spanner: no machines in region %d", r)
			}
			m := ms[g%len(ms)]
			rep := &replica{
				machine: m, region: r, rows: map[string][]byte{},
				clock: sim.NewClock(db.env.K, db.cfg.ClockEps),
			}
			db.startServer(grp, rep)
			grp.replicas = append(grp.replicas, rep)
		}
		db.groups = append(db.groups, grp)
	}
	return nil
}

// load bootstraps the replica stores with the initial row objects (outside
// simulated time). Bootstrap row *contents* are virtual — bootstrapValue
// computes them on demand — so memory scales with written rows only.
func (db *DB) load() {
	for _, g := range db.groups {
		for i := 0; i < db.cfg.RowsPerGroup; i++ {
			key := rowKey(g.id, i)
			for _, rep := range g.replicas {
				if _, err := rep.machine.Store.Write(key, db.cfg.RowBytes); err != nil {
					panic(fmt.Sprintf("spanner: bootstrap overflow: %v", err))
				}
			}
		}
	}
}

// bootstrapValue returns the deterministic initial content of a row.
func (db *DB) bootstrapValue(g, row int) []byte {
	val := make([]byte, db.cfg.RowBytes)
	for j := range val {
		val[j] = byte(uint64(g)*7 + uint64(row)*13 + uint64(j))
	}
	return val
}

// lookupRow resolves a row through a replica's applied state, falling back
// to the virtual bootstrap content.
func (db *DB) lookupRow(rep *replica, g, row int) ([]byte, error) {
	if row < 0 || row >= db.cfg.RowsPerGroup {
		return nil, fmt.Errorf("spanner: row %d out of range", row)
	}
	if v, ok := rep.rows[rowKey(g, row)]; ok {
		return v, nil
	}
	return db.bootstrapValue(g, row), nil
}

func rowKey(group, row int) string { return fmt.Sprintf("g%d/r%d", group, row) }

// NumGroups returns the number of tablet groups.
func (db *DB) NumGroups() int { return db.cfg.Groups }

// RowsPerGroup returns the rows per group.
func (db *DB) RowsPerGroup() int { return db.cfg.RowsPerGroup }

// PickRow draws a Zipf-popular row index.
func (db *DB) PickRow() int { return db.zipf.Next() }

// Machines exposes the fleet for inventory accounting.
func (db *DB) Machines() []*cluster.Machine { return db.mgr.Machines() }

// Stop shuts down all replica RPC servers.
func (db *DB) Stop() {
	for _, g := range db.groups {
		for _, rep := range g.replicas {
			rep.srv.Stop()
		}
	}
}

func (db *DB) handleLease(rep *replica) netsim.Handler {
	return func(p *sim.Proc, req netsim.Request) netsim.Response {
		db.env.ExecRecipe(p, taxonomy.Spanner, rep.machine.Node, nil, db.leaseRecipe)
		return netsim.Response{Bytes: 32}
	}
}

// read is the un-recorded implementation of Read.
func (db *DB) read(p *sim.Proc, tr *trace.Trace, g, row int, strong bool) ([]byte, error) {
	if g < 0 || g >= len(db.groups) {
		return nil, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	leader, err := db.ensureLeader(grp)
	if err != nil {
		return nil, err
	}
	if strong {
		if err := db.quorumRound(p, tr, grp, "consensus.lease", 32); err != nil {
			return nil, err
		}
	}
	db.env.ExecRecipe(p, taxonomy.Spanner, leader.machine.Node, tr, db.readRecipe)
	key := rowKey(g, row)
	ioStart := p.Now()
	d, _, err := leader.machine.Store.Read(key)
	if err != nil {
		return nil, err
	}
	p.Sleep(d)
	platform.AnnotateIO(tr, ioStart, p.Now())
	val, err := db.lookupRow(leader, g, row)
	if err != nil {
		return nil, err
	}
	db.Reads++
	return val, nil
}

// commit is the un-recorded implementation of Commit. The appended result
// reports whether the entry reached the leader's log before the error: a
// pre-append failure definitely had no effect, while a post-append failure is
// indeterminate — a later catch-up can still replicate and commit the entry.
// ts is the commit timestamp minted for the entry (zero when minting never
// happened).
func (db *DB) commit(p *sim.Proc, tr *trace.Trace, g, row int, value []byte) (appended bool, ts time.Duration, err error) {
	if g < 0 || g >= len(db.groups) {
		return false, 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	if row < 0 || row >= db.cfg.RowsPerGroup {
		return false, 0, fmt.Errorf("spanner: row %d out of range", row)
	}
	grp := db.groups[g]
	leader, err := db.ensureLeader(grp)
	if err != nil {
		return false, 0, err
	}
	// Capture the leadership term alongside the leader: an election can land
	// during any park point below (the recipe, the log IO), and the entry must
	// be stamped with the term it was *minted* under. Reading grp.term at
	// append time instead would let a deposed leader stamp the new term, pass
	// the followers' stale-term check, and mint an entry conflicting with the
	// new leader's at the same (index, term) — losing an acknowledged write.
	term := grp.term
	db.env.ExecRecipe(p, taxonomy.Spanner, leader.machine.Node, tr, db.writeRecipe)

	// Mint the commit timestamp from the leader's local clock: the latest
	// edge of its uncertainty interval (never in the node's believed past),
	// pushed above the group's high-water mark so timestamps stay strictly
	// monotone per group even when skew runs a clock backwards.
	ts = leader.clock.Latest()
	if ts <= grp.lastTS {
		ts = grp.lastTS + 1
	}
	grp.lastTS = ts

	// Leader durable log append.
	key := rowKey(g, row)
	cp := make([]byte, len(value))
	copy(cp, value)
	entry := logEntry{key: key, value: cp, term: term, ts: ts}
	leader.log = append(leader.log, entry)
	prevIndex := len(leader.log) - 1
	ioStart := p.Now()
	p.Sleep(leader.machine.Store.RawAccess(storage.SSD, int64(len(value))+64, true))
	platform.AnnotateIO(tr, ioStart, p.Now())

	// Parallel replication; majority = leader + 1 follower ack.
	if err := db.replicateEntry(p, tr, grp, leader, prevIndex); err != nil {
		return true, ts, err
	}
	if prevIndex+1 > grp.committed {
		grp.committed = prevIndex + 1
	}

	// Apply the committed prefix on the leader, in log order. Applying
	// grp.committed rather than just this entry also covers entries that
	// became committed through a *later* entry's replication (a failed
	// majority round leaves its entry in the log; the next successful round
	// commits the whole prefix) and keeps concurrent same-key commits applied
	// in log order, not completion order.
	applyStart := p.Now()
	d, err := leader.machine.Store.Write(key, int64(len(value)))
	if err != nil {
		return true, ts, err
	}
	p.Sleep(d)
	platform.AnnotateIO(tr, applyStart, p.Now())
	applyUpTo(leader, grp.committed)
	if cur := grp.leaderRep(); cur != leader {
		// An election landed while this round was in flight (every ack
		// predates it, or the followers would have refused the stale term).
		// The acking followers held this entry at election time, so the
		// most-up-to-date winner holds it too — but its row state was only
		// caught up to the commit index as of the election. Re-apply so the
		// write this client is about to ack is readable through the new
		// leader.
		applyUpTo(cur, grp.committed)
	}
	db.Writes++

	grp.commits++
	if db.cfg.CompactionEvery > 0 && grp.commits%db.cfg.CompactionEvery == 0 {
		db.startCompaction(grp)
	}

	// Commit wait: hold the acknowledgment until the leader's uncertainty
	// interval has wholly passed ts, so every operation invoked anywhere
	// after this ack observes a strictly larger timestamp (external
	// consistency). The DisableCommitWait fixture skips the wait, which the
	// external-consistency checker must flag under injected skew.
	if db.cfg.ClockEps > 0 && !db.cfg.DisableCommitWait {
		leader.clock.CommitWait(p, ts)
	}
	return true, ts, nil
}

// ErrNoQuorum is returned when too many replicas are down to reach a
// majority.
var ErrNoQuorum = errors.New("spanner: quorum unavailable")

// quorumRound sends an RPC to every follower in parallel and waits for
// enough acknowledgments to form a majority with the leader, annotating the
// wait as remote work. Followers whose servers are down count as failures;
// the round errors out as soon as a majority becomes impossible.
func (db *DB) quorumRound(p *sim.Proc, tr *trace.Trace, grp *group, method string, bytes int64) error {
	return db.quorum(p, tr, grp, func(rep *replica, cp *sim.Proc) error {
		// Lease/health rounds ride the priority lane: under a brownout they
		// overtake the user-traffic backlog and bypass shedding, so the
		// control plane keeps functioning while the data plane degrades.
		resp, _ := db.client.Call(cp, grp.leaderRep().machine.Node, rep.srv,
			netsim.Request{Method: method, Bytes: bytes, Priority: true})
		return resp.Err
	})
}

// quorum runs fn against every follower in parallel and waits until a
// majority (with the leader) has succeeded, annotating the wait as remote
// work. It errors out as soon as a majority becomes impossible.
func (db *DB) quorum(p *sim.Proc, tr *trace.Trace, grp *group, fn func(rep *replica, cp *sim.Proc) error) error {
	db.mConsensusRounds.Inc()
	start := p.Now()
	followers := make([]*replica, 0, len(grp.replicas)-1)
	for i, rep := range grp.replicas {
		if i != grp.leader {
			followers = append(followers, rep)
		}
	}
	need := len(grp.replicas) / 2 // follower acks for majority incl. leader
	acks, nacks := 0, 0
	decided := sim.NewSignal(db.env.K)
	for _, rep := range followers {
		rep := rep
		db.env.K.Go("spanner-replicate", func(cp *sim.Proc) {
			if err := fn(rep, cp); err != nil {
				nacks++
			} else {
				acks++
			}
			if acks >= need || nacks > len(followers)-need {
				decided.Fire()
			}
		})
	}
	if need > 0 {
		p.Wait(decided)
	}
	platform.AnnotateRemote(tr, start, p.Now())
	if acks < need {
		return fmt.Errorf("%w: group %d got %d/%d follower acks", ErrNoQuorum, grp.id, acks, need)
	}
	return nil
}

// StopReplica injects a failure: it stops the RPC server of group g's
// replica in the given region (region 0 is the leader). Reads and commits
// keep succeeding while a majority of replicas remains up.
func (db *DB) StopReplica(g, region int) error {
	if g < 0 || g >= len(db.groups) {
		return fmt.Errorf("spanner: group %d out of range", g)
	}
	if region < 0 || region >= len(db.groups[g].replicas) {
		return fmt.Errorf("spanner: region %d out of range", region)
	}
	db.groups[g].replicas[region].srv.Stop()
	return nil
}

// CrashReplica injects a hard failure: the replica's server crashes, failing
// its queued and in-flight RPCs immediately (unlike StopReplica's graceful
// drain). Use RestartReplica to bring it back.
func (db *DB) CrashReplica(g, region int) error {
	if g < 0 || g >= len(db.groups) {
		return fmt.Errorf("spanner: group %d out of range", g)
	}
	if region < 0 || region >= len(db.groups[g].replicas) {
		return fmt.Errorf("spanner: region %d out of range", region)
	}
	db.groups[g].replicas[region].srv.Crash()
	return nil
}

// SetReplicaSlowdown injects (or clears, with factor <= 1) a straggler on the
// replica's RPC server.
func (db *DB) SetReplicaSlowdown(g, region int, factor float64) error {
	if g < 0 || g >= len(db.groups) {
		return fmt.Errorf("spanner: group %d out of range", g)
	}
	if region < 0 || region >= len(db.groups[g].replicas) {
		return fmt.Errorf("spanner: region %d out of range", region)
	}
	db.groups[g].replicas[region].srv.SetSlowdown(factor)
	return nil
}

// ReplicaDown reports whether group g's replica in the given region is
// stopped or crashed.
func (db *DB) ReplicaDown(g, region int) bool {
	if g < 0 || g >= len(db.groups) || region < 0 || region >= len(db.groups[g].replicas) {
		return false
	}
	return db.groups[g].replicas[region].srv.Stopped()
}

// RPCClient exposes the consensus RPC client's counters for reports.
func (db *DB) RPCClient() *netsim.Client { return db.client }

// OverloadStats sums the replica servers' admission-control counters:
// requests shed at the hard queue bound, shed adaptively below it, and
// expired by the CoDel queue deadline.
func (db *DB) OverloadStats() (shed, adaptive, expired int) {
	for _, grp := range db.groups {
		for _, rep := range grp.replicas {
			shed += rep.srv.Shed
			adaptive += rep.srv.ShedAdaptive
			expired += rep.srv.Expired
		}
	}
	return
}

// ensureLeader returns the group's current leader, electing a new one first
// if the incumbent's server is down — this is how client operations fail over
// across replicas: the read/commit retries land on the freshly elected
// leader instead of erroring against the dead one. With PartitionRecovery, a
// leader cut off from a quorum of its group (asymmetric link blocks count in
// either direction) steps down the same way, and the election runs over the
// majority-connected component — so the minority side never commits and the
// majority side regains availability without waiting for the heal.
func (db *DB) ensureLeader(grp *group) (*replica, error) {
	lead := grp.leaderRep()
	if lead.srv.Stopped() || (db.cfg.PartitionRecovery && !db.quorumConnected(grp, grp.leader)) {
		if _, err := db.elect(grp); err != nil {
			return nil, err
		}
	}
	return grp.leaderRep(), nil
}

// quorumConnected reports whether group grp's replica i is live and can
// reach a majority of the group (itself included) over unblocked links. Gray
// (slow, lossy) links still count as reachable: only a full block in either
// direction justifies treating a peer as partitioned away.
func (db *DB) quorumConnected(grp *group, i int) bool {
	rep := grp.replicas[i]
	if rep.srv.Stopped() {
		return false
	}
	reach := 1
	for j, other := range grp.replicas {
		if j == i || other.srv.Stopped() {
			continue
		}
		if db.env.Net.Reachable(rep.machine.Node, other.machine.Node) {
			reach++
		}
	}
	return reach >= len(grp.replicas)/2+1
}

// SetClockSkew injects clock skew on group g's replica in the given region:
// an absolute offset plus a drift rate (seconds of skew per true second)
// accruing from now. Re-injection replaces the previous skew; zero values
// restore a true clock.
func (db *DB) SetClockSkew(g, region int, offset time.Duration, drift float64) error {
	if g < 0 || g >= len(db.groups) {
		return fmt.Errorf("spanner: group %d out of range", g)
	}
	if region < 0 || region >= len(db.groups[g].replicas) {
		return fmt.Errorf("spanner: region %d out of range", region)
	}
	db.groups[g].replicas[region].clock.SetSkew(offset, drift)
	return nil
}

// ReplicaNodeName returns the name of the netsim node hosting group g's
// replica in the given region, for addressing link-level faults (machines
// are shared across groups, so a link fault on one name can affect several
// groups — exactly like a real rack cut).
func (db *DB) ReplicaNodeName(g, region int) (string, error) {
	if g < 0 || g >= len(db.groups) {
		return "", fmt.Errorf("spanner: group %d out of range", g)
	}
	if region < 0 || region >= len(db.groups[g].replicas) {
		return "", fmt.Errorf("spanner: region %d out of range", region)
	}
	return db.groups[g].replicas[region].machine.Node.Name, nil
}

// Query runs a SQL-ish scan over QueryScanRows consecutive rows of group g
// starting at row start, returning how many rows satisfy a real predicate
// (first byte odd).
func (db *DB) Query(p *sim.Proc, tr *trace.Trace, g, start int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	leader, err := db.ensureLeader(grp)
	if err != nil {
		return 0, err
	}
	db.env.ExecRecipe(p, taxonomy.Spanner, leader.machine.Node, tr, db.queryRecipe)

	matched := 0
	ioStart := p.Now()
	var ioTime time.Duration
	for i := 0; i < db.cfg.QueryScanRows; i++ {
		row := (start + i) % db.cfg.RowsPerGroup
		key := rowKey(g, row)
		d, _, err := leader.machine.Store.Read(key)
		if err != nil {
			return 0, err
		}
		ioTime += d
		v, err := db.lookupRow(leader, g, row)
		if err != nil {
			return 0, err
		}
		if len(v) > 0 && v[0]%2 == 1 {
			matched++
		}
	}
	p.Sleep(ioTime)
	platform.AnnotateIO(tr, ioStart, p.Now())
	db.Queries++
	return matched, nil
}

// startCompaction launches a background compaction of the group on the
// leader machine: it reads and rewrites the group's resident bytes and burns
// the compaction CPU recipe. Queries are not blocked (unlike BigTable).
func (db *DB) startCompaction(grp *group) {
	leader := grp.leaderRep()
	size := int64(db.cfg.RowsPerGroup) * db.cfg.RowBytes
	db.env.K.Go("spanner-compaction", func(p *sim.Proc) {
		p.Sleep(leader.machine.Store.RawAccess(storage.HDD, size, false))
		db.env.ExecRecipe(p, taxonomy.Spanner, leader.machine.Node, nil, db.compactRecipe)
		p.Sleep(leader.machine.Store.RawAccess(storage.HDD, size, true))
		db.Compactions++
		db.mCompactions.Inc()
	})
}
