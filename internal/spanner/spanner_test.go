package spanner

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

func testEnv(seed uint64) *platform.Env {
	env := platform.NewEnv(seed, 1)
	env.Net = netsim.New(env.K, RecommendedNetConfig())
	return env
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Groups = 3
	cfg.RowsPerGroup = 500
	cfg.QueryScanRows = 50
	return cfg
}

func TestNewValidation(t *testing.T) {
	env := testEnv(1)
	bad := DefaultConfig()
	bad.Groups = 0
	if _, err := New(env, bad); err == nil {
		t.Fatal("zero groups accepted")
	}
	bad = DefaultConfig()
	bad.Regions = 2
	if _, err := New(env, bad); err == nil {
		t.Fatal("two regions accepted (majority needs 3)")
	}
}

func TestReadReturnsStoredValue(t *testing.T) {
	env := testEnv(2)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		tr := env.Tracer.Start(taxonomy.Spanner, p.Now())
		got, err = db.Read(p, tr, 1, 7, false)
		env.Tracer.Finish(tr, p.Now())
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 {
		t.Fatalf("value len = %d", len(got))
	}
	// Deterministic bootstrap pattern.
	if got[0] != byte(1*7+7*13) {
		t.Fatalf("value[0] = %d", got[0])
	}
	if db.Reads != 1 {
		t.Fatalf("reads = %d", db.Reads)
	}
}

func TestCommitThenReadRoundTrip(t *testing.T) {
	env := testEnv(3)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("hello spanner, this is new row content")
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		tr := env.Tracer.Start(taxonomy.Spanner, p.Now())
		if err = db.Commit(p, tr, 0, 3, want); err != nil {
			return
		}
		got, err = db.Read(p, tr, 0, 3, false)
		env.Tracer.Finish(tr, p.Now())
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q", got)
	}
}

func TestCommitAnnotatesRemoteWork(t *testing.T) {
	env := testEnv(4)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var tr *trace.Trace
	env.K.Go("client", func(p *sim.Proc) {
		tr = env.Tracer.Start(taxonomy.Spanner, p.Now())
		err = db.Commit(p, tr, 0, 1, []byte("v"))
		env.Tracer.Finish(tr, p.Now())
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := tr.ComputeBreakdown()
	if b.Remote <= 0 {
		t.Fatalf("commit breakdown has no remote work: %+v", b)
	}
	// Majority wait spans at least one cross-region RTT.
	if b.Remote < 3*time.Millisecond {
		t.Fatalf("remote = %v, want >= one cross-region RTT", b.Remote)
	}
	if b.CPU <= 0 || b.IO <= 0 {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestStrongReadAddsRemote(t *testing.T) {
	env := testEnv(5)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var weak, strong trace.Breakdown
	env.K.Go("client", func(p *sim.Proc) {
		tr1 := env.Tracer.Start(taxonomy.Spanner, p.Now())
		db.Read(p, tr1, 0, 1, false)
		env.Tracer.Finish(tr1, p.Now())
		weak = tr1.ComputeBreakdown()

		tr2 := env.Tracer.Start(taxonomy.Spanner, p.Now())
		db.Read(p, tr2, 0, 1, true)
		env.Tracer.Finish(tr2, p.Now())
		strong = tr2.ComputeBreakdown()
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if weak.Remote != 0 {
		t.Fatalf("weak read has remote work: %+v", weak)
	}
	if strong.Remote <= 0 {
		t.Fatalf("strong read has no remote work: %+v", strong)
	}
}

func TestQueryEvaluatesPredicate(t *testing.T) {
	env := testEnv(6)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var matched int
	env.K.Go("client", func(p *sim.Proc) {
		matched, err = db.Query(p, nil, 2, 0)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Predicate: first byte odd. Bootstrap byte = g*7 + r*13; over 50
	// consecutive rows exactly half are odd (13 is odd).
	if matched != 25 {
		t.Fatalf("matched = %d, want 25", matched)
	}
}

func TestCompactionTriggersEveryN(t *testing.T) {
	env := testEnv(7)
	cfg := smallConfig()
	cfg.CompactionEvery = 3
	db, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			if err = db.Commit(p, nil, 0, i, []byte("x")); err != nil {
				return
			}
		}
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if db.Compactions != 2 {
		t.Fatalf("compactions = %d, want 2 (7 commits / every 3)", db.Compactions)
	}
	// Compaction cycles must show up in the profile.
	cb := env.Prof.CategoryBreakdown(taxonomy.Spanner, taxonomy.CoreCompute)
	if cb[taxonomy.Compaction] <= 0 {
		t.Fatal("no compaction cycles profiled")
	}
}

func TestProfiledCategoriesCoverTable4(t *testing.T) {
	env := testEnv(8)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			db.Read(p, nil, i%3, db.PickRow(), i%7 == 0)
			if i%3 == 0 {
				db.Commit(p, nil, i%3, i, []byte("value"))
			}
			if i%10 == 0 {
				db.Query(p, nil, i%3, i)
			}
		}
		db.Stop()
	})
	env.K.Run()
	cb := env.Prof.CategoryBreakdown(taxonomy.Spanner, taxonomy.CoreCompute)
	for _, cat := range []taxonomy.Category{taxonomy.Read, taxonomy.Write, taxonomy.Consensus, taxonomy.Query, taxonomy.MiscCore, taxonomy.Uncategorized} {
		if cb[cat] <= 0 {
			t.Errorf("category %q has no cycles: %v", cat, cb)
		}
	}
	// Reads dominate the default mix.
	if cb[taxonomy.Read] <= cb[taxonomy.Write] {
		t.Errorf("read %.3f <= write %.3f", cb[taxonomy.Read], cb[taxonomy.Write])
	}
	// Taxes are present in roughly the Figure 3 proportion.
	bb := env.Prof.BroadBreakdown(taxonomy.Spanner)
	if bb[taxonomy.DatacenterTax] < 0.2 || bb[taxonomy.SystemTax] < 0.2 {
		t.Errorf("broad breakdown = %v", bb)
	}
}

func TestOutOfRangeGroup(t *testing.T) {
	env := testEnv(9)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		if _, e := db.Read(p, nil, 99, 0, false); e == nil {
			t.Error("read of bad group accepted")
		}
		if e := db.Commit(p, nil, -1, 0, nil); e == nil {
			t.Error("commit to bad group accepted")
		}
		if _, e := db.Query(p, nil, 99, 0); e == nil {
			t.Error("query of bad group accepted")
		}
		db.Stop()
	})
	env.K.Run()
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		env := testEnv(42)
		db, err := New(env, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		env.K.Go("client", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				db.Read(p, nil, i%3, db.PickRow(), false)
				db.Commit(p, nil, i%3, i, []byte("abc"))
			}
			db.Stop()
		})
		end := env.K.Run()
		return end, db.Compactions
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, c1, e2, c2)
	}
}

func TestCommitSurvivesOneReplicaFailure(t *testing.T) {
	env := testEnv(20)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.StopReplica(0, 2); err != nil {
			return
		}
		if err = db.Commit(p, nil, 0, 5, []byte("majority-still-works")); err != nil {
			return
		}
		got, err = db.Read(p, nil, 0, 5, false)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "majority-still-works" {
		t.Fatalf("read back %q", got)
	}
}

func TestCommitFailsWithoutQuorum(t *testing.T) {
	env := testEnv(21)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var commitErr error
	env.K.Go("client", func(p *sim.Proc) {
		db.StopReplica(1, 1)
		db.StopReplica(1, 2)
		commitErr = db.Commit(p, nil, 1, 5, []byte("doomed"))
		db.Stop()
	})
	env.K.Run()
	if !errors.Is(commitErr, ErrNoQuorum) {
		t.Fatalf("commit err = %v, want ErrNoQuorum", commitErr)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

func TestStrongReadFailsWithoutQuorum(t *testing.T) {
	env := testEnv(22)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var readErr error
	env.K.Go("client", func(p *sim.Proc) {
		db.StopReplica(2, 1)
		db.StopReplica(2, 2)
		_, readErr = db.Read(p, nil, 2, 1, true)
		// Weak reads are served from the leader and still work.
		if _, e := db.Read(p, nil, 2, 1, false); e != nil {
			t.Errorf("weak read failed: %v", e)
		}
		db.Stop()
	})
	env.K.Run()
	if !errors.Is(readErr, ErrNoQuorum) {
		t.Fatalf("strong read err = %v, want ErrNoQuorum", readErr)
	}
}

func TestStopReplicaValidation(t *testing.T) {
	env := testEnv(23)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.StopReplica(99, 0); err == nil {
		t.Error("bad group accepted")
	}
	if err := db.StopReplica(0, 99); err == nil {
		t.Error("bad region accepted")
	}
	db.Stop()
	env.K.Run()
}
