package spanner

import (
	"fmt"

	"hyperprof/internal/netsim"
	"hyperprof/internal/sim"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file implements the group replication protocol: a leader-driven
// replicated log with follower catch-up (Raft-flavored log matching), and
// leader election by longest log among live replicas. The paper's §4.1
// remote-work category for Spanner is precisely the time spent waiting on
// these rounds.

// appendArgs is the payload of a consensus.append RPC: entries starting at
// FromIndex of the leader's log.
type appendArgs struct {
	FromIndex int
	Entries   []logEntry
	Term      int
}

// appendReply is returned via Response.Payload.
type appendReply struct {
	// OK reports whether the entries were appended.
	OK bool
	// NeedFrom is the follower's log length when a gap was detected; the
	// leader retries from that index.
	NeedFrom int
}

// startServer (re)creates and starts a replica's RPC server, registering
// the consensus handlers. It is used at placement time and by
// RestartReplica.
func (db *DB) startServer(grp *group, rep *replica) {
	rep.srv = netsim.NewServer(rep.machine.Node, 16)
	rep.srv.Handle("consensus.append", db.handleAppend(grp, rep))
	rep.srv.Handle("consensus.lease", db.handleLease(rep))
	rep.srv.Start()
}

// handleAppend is the follower side of replication: verify log continuity,
// truncate-and-append (the leader's log is authoritative), apply to the
// replica's row state, and persist to the local log device.
func (db *DB) handleAppend(grp *group, rep *replica) netsim.Handler {
	return func(p *sim.Proc, req netsim.Request) netsim.Response {
		args := req.Payload.(appendArgs)
		db.env.ExecRecipe(p, taxonomy.Spanner, rep.machine.Node, nil, db.followerRecipe)
		if args.FromIndex > len(rep.log) {
			// Gap: this follower missed earlier entries (it was down).
			return netsim.Response{Bytes: 64, Payload: appendReply{OK: false, NeedFrom: len(rep.log)}}
		}
		// Log matching: drop any divergent suffix, then append.
		rep.log = rep.log[:args.FromIndex]
		var bytes int64
		for _, e := range args.Entries {
			rep.log = append(rep.log, e)
			rep.rows[e.key] = e.value
			rep.machine.Store.Write(e.key, int64(len(e.value)))
			bytes += int64(len(e.value)) + 64
		}
		p.Sleep(rep.machine.Store.RawAccess(storage.SSD, bytes, true))
		return netsim.Response{Bytes: 64, Payload: appendReply{OK: true}}
	}
}

// replicateEntry ships the leader's log entry at index to every follower in
// parallel and waits for a majority, retrying once with a catch-up batch
// for followers that report a gap.
func (db *DB) replicateEntry(p *sim.Proc, tr *trace.Trace, grp *group, leader *replica, index int) error {
	return db.quorum(p, tr, grp, func(rep *replica, cp *sim.Proc) error {
		send := func(from int) (netsim.Response, bool) {
			entries := make([]logEntry, len(leader.log[from:index+1]))
			copy(entries, leader.log[from:index+1])
			var bytes int64
			for _, e := range entries {
				bytes += int64(len(e.value)) + 64
			}
			resp, _ := db.client.Call(cp, leader.machine.Node, rep.srv, netsim.Request{
				Method:  "consensus.append",
				Bytes:   bytes,
				Payload: appendArgs{FromIndex: from, Entries: entries, Term: grp.term},
			})
			if resp.Err != nil {
				return resp, false
			}
			return resp, resp.Payload.(appendReply).OK
		}
		resp, ok := send(index)
		if resp.Err != nil {
			return resp.Err
		}
		if !ok {
			// Catch the follower up from its reported log length.
			resp, ok = send(resp.Payload.(appendReply).NeedFrom)
			if resp.Err != nil {
				return resp.Err
			}
			if !ok {
				return fmt.Errorf("spanner: follower rejected catch-up for group %d", grp.id)
			}
		}
		return nil
	})
}

// Leader returns the region index of group g's current leader.
func (db *DB) Leader(g int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	return grp.leaderRep().region, nil
}

// LogLen returns the replicated-log length of group g's replica in the
// given region (tests and monitoring).
func (db *DB) LogLen(g, region int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	if region < 0 || region >= len(grp.replicas) {
		return 0, fmt.Errorf("spanner: region %d out of range", region)
	}
	return len(grp.replicas[region].log), nil
}

// FailLeader injects a leader failure for group g: the leader's server is
// stopped and a new leader is elected among the live replicas — the one
// with the longest log (ties break toward the lowest region), which
// preserves every majority-acknowledged write. It returns the new leader's
// region.
func (db *DB) FailLeader(g int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	grp.leaderRep().srv.Stop()
	return db.elect(grp)
}

// elect picks the live replica with the longest log as the new leader.
func (db *DB) elect(grp *group) (int, error) {
	best := -1
	for i, rep := range grp.replicas {
		if rep.srv.Stopped() {
			continue
		}
		if best == -1 || len(rep.log) > len(grp.replicas[best].log) {
			best = i
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: group %d has no live replicas", ErrNoQuorum, grp.id)
	}
	grp.leader = best
	grp.term++
	db.Elections++
	return grp.replicas[best].region, nil
}

// RestartReplica brings a previously stopped replica back: a fresh server
// is started on the same machine with the replica's log intact, so it
// catches up through the normal append path.
func (db *DB) RestartReplica(g, region int) error {
	if g < 0 || g >= len(db.groups) {
		return fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	if region < 0 || region >= len(grp.replicas) {
		return fmt.Errorf("spanner: region %d out of range", region)
	}
	rep := grp.replicas[region]
	if !rep.srv.Stopped() {
		return fmt.Errorf("spanner: group %d region %d is already running", g, region)
	}
	db.startServer(grp, rep)
	return nil
}
