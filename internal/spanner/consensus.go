package spanner

import (
	"fmt"
	"hash/fnv"

	"hyperprof/internal/netsim"
	"hyperprof/internal/sim"
	"hyperprof/internal/storage"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// This file implements the group replication protocol: a leader-driven
// replicated log with follower catch-up (Raft-flavored log matching), and
// leader election by longest log among live replicas. The paper's §4.1
// remote-work category for Spanner is precisely the time spent waiting on
// these rounds.

// appendArgs is the payload of a consensus.append RPC: entries starting at
// FromIndex of the leader's log.
type appendArgs struct {
	FromIndex int
	Entries   []logEntry
	Term      int
	// PrevTerm is the term of the leader's entry just before FromIndex (-1
	// when FromIndex is 0). A follower whose entry there carries a different
	// term has a divergent prefix — appending on top of it would graft a
	// matching suffix over conflicting history — so it rejects and the leader
	// backs up (Raft's AppendEntries consistency check).
	PrevTerm int
	// Commit is the leader's commit index at send time; the follower applies
	// its log prefix up to it (apply-at-commit, never at append).
	Commit int
}

// appendReply is returned via Response.Payload.
type appendReply struct {
	// OK reports whether the entries were appended.
	OK bool
	// Stale reports that the append came from a deposed leadership (its term
	// is older than the group's current term) and was refused outright.
	Stale bool
	// NeedFrom is the follower's log length when a gap was detected; the
	// leader retries from that index.
	NeedFrom int
}

// startServer (re)creates and starts a replica's RPC server, registering
// the consensus handlers. It is used at placement time and by
// RestartReplica.
func (db *DB) startServer(grp *group, rep *replica) {
	rep.srv = netsim.NewServer(rep.machine.Node, 16)
	if db.cfg.Admission != (netsim.Admission{}) {
		// Decorrelate each replica's shed stream by its node name, keeping
		// the whole deployment a pure function of the config seed.
		a := db.cfg.Admission
		h := fnv.New64a()
		h.Write([]byte(rep.machine.Node.Name))
		a.Seed ^= h.Sum64()
		rep.srv.SetAdmission(a)
	}
	rep.srv.Handle("consensus.append", db.handleAppend(grp, rep))
	rep.srv.Handle("consensus.lease", db.handleLease(rep))
	rep.srv.Start()
}

// handleAppend is the follower side of replication: verify log continuity,
// truncate-and-append (the leader's log is authoritative), apply to the
// replica's row state, and persist to the local log device.
func (db *DB) handleAppend(grp *group, rep *replica) netsim.Handler {
	return func(p *sim.Proc, req netsim.Request) netsim.Response {
		args := req.Payload.(appendArgs)
		db.env.ExecRecipe(p, taxonomy.Spanner, rep.machine.Node, nil, db.followerRecipe)
		if args.Term < grp.term {
			// Append from a deposed leadership: an election happened while this
			// round was in flight. Accepting it would let the old leader count
			// the ack toward a majority and commit an entry the new leader may
			// not hold — the commit must fail as indeterminate instead.
			return netsim.Response{Bytes: 64, Payload: appendReply{Stale: true}}
		}
		if args.FromIndex > len(rep.log) {
			// Gap: this follower missed earlier entries (it was down).
			return netsim.Response{Bytes: 64, Payload: appendReply{OK: false, NeedFrom: len(rep.log)}}
		}
		if args.FromIndex > 0 && rep.log[args.FromIndex-1].term != args.PrevTerm {
			// Divergent prefix: this follower's entry before FromIndex is not
			// the leader's. Back the leader up one entry so the catch-up batch
			// covers (and truncates) the divergence.
			return netsim.Response{Bytes: 64, Payload: appendReply{OK: false, NeedFrom: args.FromIndex - 1}}
		}
		// Log matching: truncate only on *conflict* (same index, different
		// term), then append what is new. An entry already present with the
		// incoming term is the same entry — a delayed or client-retried round
		// must be idempotent, or it would discard committed entries that newer
		// rounds already replicated behind it. Only the committed prefix is
		// applied to rows — an entry applied at append time could be read
		// through a later leader and then vanish when the divergent suffix it
		// sat on is truncated.
		var bytes int64
		for j, e := range args.Entries {
			idx := args.FromIndex + j
			if idx < len(rep.log) {
				if rep.log[idx].term == e.term {
					continue
				}
				rep.log = rep.log[:idx]
				if rep.applied > idx {
					rep.applied = idx // defensive: committed entries never conflict
				}
			}
			rep.log = append(rep.log, e)
			rep.machine.Store.Write(e.key, int64(len(e.value)))
			bytes += int64(len(e.value)) + 64
		}
		applyUpTo(rep, args.Commit)
		p.Sleep(rep.machine.Store.RawAccess(storage.SSD, bytes, true))
		return netsim.Response{Bytes: 64, Payload: appendReply{OK: true}}
	}
}

// replicateEntry ships the leader's log entry at index to every follower in
// parallel and waits for a majority, retrying once with a catch-up batch
// for followers that report a gap.
func (db *DB) replicateEntry(p *sim.Proc, tr *trace.Trace, grp *group, leader *replica, index int) error {
	// The round is stamped with the leadership term the entry was appended
	// under, NOT the live grp.term: if an election lands mid-round, followers
	// must recognize the remaining appends as coming from a deposed leader and
	// refuse them, or the old round could commit an entry the new leader does
	// not hold.
	term := leader.log[index].term
	return db.quorum(p, tr, grp, func(rep *replica, cp *sim.Proc) error {
		send := func(from int) (netsim.Response, bool) {
			entries := make([]logEntry, len(leader.log[from:index+1]))
			copy(entries, leader.log[from:index+1])
			var bytes int64
			for _, e := range entries {
				bytes += int64(len(e.value)) + 64
			}
			prevTerm := -1
			if from > 0 {
				prevTerm = leader.log[from-1].term
			}
			resp, _ := db.client.Call(cp, leader.machine.Node, rep.srv, netsim.Request{
				Method:  "consensus.append",
				Bytes:   bytes,
				Payload: appendArgs{FromIndex: from, Entries: entries, Term: term, PrevTerm: prevTerm, Commit: grp.committed},
			})
			if resp.Err != nil {
				return resp, false
			}
			return resp, resp.Payload.(appendReply).OK
		}
		// Back the follower up until logs agree: each rejection reports a
		// strictly smaller NeedFrom (a gap reports the follower's log length,
		// a divergent prefix reports FromIndex-1), so this terminates — at
		// index 0 there is no prefix left to disagree on.
		for from := index; ; {
			resp, ok := send(from)
			if resp.Err != nil {
				return resp.Err
			}
			if ok {
				return nil
			}
			reply := resp.Payload.(appendReply)
			if reply.Stale {
				return fmt.Errorf("spanner: group %d leadership lost mid-replication (term %d superseded)", grp.id, term)
			}
			if reply.NeedFrom >= from {
				return fmt.Errorf("spanner: group %d catch-up made no progress at index %d", grp.id, from)
			}
			from = reply.NeedFrom
		}
	})
}

// Leader returns the region index of group g's current leader.
func (db *DB) Leader(g int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	return grp.leaderRep().region, nil
}

// LogLen returns the replicated-log length of group g's replica in the
// given region (tests and monitoring).
func (db *DB) LogLen(g, region int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	if region < 0 || region >= len(grp.replicas) {
		return 0, fmt.Errorf("spanner: region %d out of range", region)
	}
	return len(grp.replicas[region].log), nil
}

// FailLeader injects a leader failure for group g: the leader's server is
// stopped and a new leader is elected among the live replicas — the most
// up-to-date one by (last log term, log length), ties breaking toward the
// lowest region — which preserves every majority-acknowledged write. It
// returns the new leader's region.
func (db *DB) FailLeader(g int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	grp.leaderRep().srv.Stop()
	return db.elect(grp)
}

// elect picks a new leader among the live replicas. Two rules make this safe
// (Raft's election restriction): the election needs a *majority* of the
// group alive, and the winner is the most up-to-date live replica ordered by
// (term of last entry, log length). Any committed entry lives on a majority
// of replicas, and any live majority intersects it, so the most up-to-date
// member of a live majority is guaranteed to hold every committed entry
// (leader completeness). Log length alone is not enough: a deposed leader
// can carry a *longer* log whose tail is an uncommitted divergent suffix
// from an older term.
func (db *DB) elect(grp *group) (int, error) {
	// With PartitionRecovery the candidate pool shrinks further to replicas
	// that can reach a live majority over unblocked links: the voters a real
	// election would gather are exactly that component, and any committed
	// entry's majority intersects any live-majority component, so the most
	// up-to-date member of the component still holds every committed entry.
	// Without a quorum-connected candidate the election fails — the minority
	// side stays leaderless rather than splitting the brain.
	live, best := 0, -1
	for i, rep := range grp.replicas {
		if rep.srv.Stopped() {
			continue
		}
		live++
		if db.brokenElectAnyReplica {
			if best == -1 {
				best = i
			}
			continue
		}
		if db.cfg.PartitionRecovery && !db.quorumConnected(grp, i) {
			continue
		}
		if best == -1 || moreUpToDate(rep, grp.replicas[best]) {
			best = i
		}
	}
	if best == -1 {
		if live > 0 {
			return 0, fmt.Errorf("%w: group %d has no replica connected to a live majority", ErrNoQuorum, grp.id)
		}
		return 0, fmt.Errorf("%w: group %d has no live replicas", ErrNoQuorum, grp.id)
	}
	if !db.brokenElectAnyReplica && live < len(grp.replicas)/2+1 {
		return 0, fmt.Errorf("%w: group %d has %d/%d replicas live, election needs a majority",
			ErrNoQuorum, grp.id, live, len(grp.replicas))
	}
	grp.leader = best
	grp.term++
	db.Elections++
	db.mElections.Inc()
	if !db.brokenElectAnyReplica {
		// The winner may hold committed entries it has not applied yet (it
		// acked them before their commit was known). Catch its row state up to
		// the commit index before it serves reads; leader completeness
		// guarantees the prefix is present.
		applyUpTo(grp.replicas[best], grp.committed)
	}
	// Standing assertion (leader completeness): the winner's log must cover
	// every committed entry. Under the honest rules above this cannot fire;
	// it catches regressions and the brokenElectAnyReplica fixture.
	if win := grp.leaderRep(); len(win.log) < grp.committed && db.rec != nil {
		db.rec.Violate("election-safety", fmt.Sprintf("g%d", grp.id),
			"group %d elected region %d whose log (%d entries) misses committed entries (%d)",
			grp.id, win.region, len(win.log), grp.committed)
	}
	return grp.replicas[best].region, nil
}

// moreUpToDate reports whether a's log is strictly more up-to-date than b's:
// higher last-entry term, or equal term and longer log.
func moreUpToDate(a, b *replica) bool {
	at, bt := lastTerm(a), lastTerm(b)
	if at != bt {
		return at > bt
	}
	return len(a.log) > len(b.log)
}

// lastTerm returns the term of a replica's last log entry (0 when empty).
func lastTerm(r *replica) int {
	if len(r.log) == 0 {
		return 0
	}
	return r.log[len(r.log)-1].term
}

// RestartReplica brings a previously stopped replica back: a fresh server
// is started on the same machine with the replica's log intact, so it
// catches up through the normal append path.
func (db *DB) RestartReplica(g, region int) error {
	if g < 0 || g >= len(db.groups) {
		return fmt.Errorf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	if region < 0 || region >= len(grp.replicas) {
		return fmt.Errorf("spanner: region %d out of range", region)
	}
	rep := grp.replicas[region]
	if !rep.srv.Stopped() {
		return fmt.Errorf("spanner: group %d region %d is already running", g, region)
	}
	db.startServer(grp, rep)
	return nil
}
