package spanner

import (
	"fmt"
	"strings"

	"hyperprof/internal/check"
	"hyperprof/internal/sim"
	"hyperprof/internal/trace"
)

// This file is the safety-checking surface of the Spanner simulation: opt-in
// operation-history recording around Read/Commit (one nil test per operation
// when disabled) and the standing consensus invariants the torture harness
// asserts after every run.

// SetRecorder attaches an operation-history recorder. Pass nil to detach.
// Reads and commits are recorded against the per-row register keyed by
// rowKey, with values stored as digests; commit failures distinguish definite
// no-effects from indeterminate outcomes (entry appended but not known
// committed), which the linearizability checker treats as writes that may
// apply at any later time or never.
func (db *DB) SetRecorder(h *check.History) { db.rec = h }

// Recorder returns the attached recorder, if any.
func (db *DB) Recorder() *check.History { return db.rec }

// Read performs a point read of row `row` in group g, returning the value.
// A StrongReadFrac fraction of reads (decided by the strong argument)
// confirms the leader's lease with a quorum round first.
func (db *DB) Read(p *sim.Proc, tr *trace.Trace, g, row int, strong bool) ([]byte, error) {
	var op *check.Op
	if db.rec != nil && g >= 0 && g < len(db.groups) && row >= 0 && row < db.cfg.RowsPerGroup {
		key := rowKey(g, row)
		db.rec.Initial(key, check.Digest(db.bootstrapValue(g, row)))
		op = db.rec.Invoke(p.Name(), "read", key, 0)
	}
	start := p.Now()
	val, err := db.read(p, tr, g, row, strong)
	db.mReadLat.RecordSince(start, p.Now())
	if op != nil {
		if err != nil {
			db.rec.Fail(op)
		} else {
			db.rec.OK(op, check.Digest(val))
		}
	}
	return val, err
}

// Commit writes value to row `row` of group g through the replication
// protocol: the leader appends to its replicated log, ships the entry to
// every follower in parallel, waits for a majority of acknowledgments, and
// then applies the write.
func (db *DB) Commit(p *sim.Proc, tr *trace.Trace, g, row int, value []byte) error {
	var op *check.Op
	if db.rec != nil && g >= 0 && g < len(db.groups) && row >= 0 && row < db.cfg.RowsPerGroup {
		key := rowKey(g, row)
		db.rec.Initial(key, check.Digest(db.bootstrapValue(g, row)))
		op = db.rec.Invoke(p.Name(), "write", key, check.Digest(value))
	}
	start := p.Now()
	appended, ts, err := db.commit(p, tr, g, row, value)
	db.mCommitLat.RecordSince(start, p.Now())
	if op != nil {
		switch {
		case err == nil:
			// Record the commit timestamp the leader minted from its (possibly
			// skewed) local clock — the input to the external-consistency check.
			db.rec.OKAt(op, 0, ts)
		case appended:
			db.rec.Indeterminate(op)
		default:
			db.rec.Fail(op)
		}
	}
	return err
}

// RegisterInvariants registers the deployment's standing invariants with a
// checker registry under one name per invariant family.
func (db *DB) RegisterInvariants(reg *check.Registry) {
	reg.Register("spanner-consensus", db.CheckInvariants)
}

// CheckInvariants verifies the standing consensus invariants at a quiescent
// instant and returns one description per breach:
//
//   - quorum intersection: the ack count the commit path waits for forms a
//     majority of the replica set (any two quorums share a replica);
//   - leader completeness: the current leader's log covers every committed
//     entry (a violation means an election picked a stale replica);
//   - committed-prefix durability: each committed entry is held, with the
//     leader's (key, term), by a majority of replicas;
//   - log matching: two replicas holding an entry with the same index and
//     term agree on what that entry is;
//   - apply-at-commit: no replica has applied past its log or past the
//     group's commit index (an over-applied replica has leaked uncommitted
//     entries into its readable row state), and the leader's applied state
//     covers every committed entry.
//
// A deposed replica may transiently hold a divergent *uncommitted* suffix
// with an older term — that is legal (catch-up repairs it) and is not
// flagged, which is why the committed-prefix checks compare terms.
func (db *DB) CheckInvariants() []string {
	var out []string
	for _, grp := range db.groups {
		n := len(grp.replicas)
		need := n/2 + 1
		if 2*need <= n {
			out = append(out, fmt.Sprintf("group %d: quorum of %d among %d replicas does not self-intersect", grp.id, need, n))
		}
		lead := grp.leaderRep()
		if len(lead.log) < grp.committed {
			out = append(out, fmt.Sprintf("group %d: leader (region %d) log has %d entries < %d committed — committed writes lost",
				grp.id, lead.region, len(lead.log), grp.committed))
			continue
		}
		for idx := 0; idx < grp.committed; idx++ {
			ref := lead.log[idx]
			holders := 0
			for _, rep := range grp.replicas {
				if idx >= len(rep.log) {
					continue
				}
				e := rep.log[idx]
				if e.key == ref.key && e.term == ref.term {
					holders++
				} else if e.term == ref.term {
					out = append(out, fmt.Sprintf("group %d: index %d term %d names %s on region %d but %s on the leader",
						grp.id, idx, e.term, e.key, rep.region, ref.key))
				}
			}
			if holders < need {
				out = append(out, fmt.Sprintf("group %d: committed index %d (%s, term %d) held by %d/%d replicas, needs a majority",
					grp.id, idx, ref.key, ref.term, holders, n))
			}
		}
		for _, rep := range grp.replicas {
			if rep.applied > len(rep.log) {
				out = append(out, fmt.Sprintf("group %d: region %d applied %d entries but logs only %d",
					grp.id, rep.region, rep.applied, len(rep.log)))
			}
			if rep.applied > grp.committed {
				out = append(out, fmt.Sprintf("group %d: region %d applied %d entries past commit index %d — uncommitted data is readable",
					grp.id, rep.region, rep.applied, grp.committed))
			}
		}
		if lead.applied < grp.committed {
			out = append(out, fmt.Sprintf("group %d: leader (region %d) applied %d of %d committed entries — committed writes unreadable",
				grp.id, lead.region, lead.applied, grp.committed))
		}
	}
	return out
}

// DumpGroup renders group g's replication state — term, commit index, leader
// and each replica's log entries (key@term), applied count and liveness —
// for diagnosing checker violations.
func (db *DB) DumpGroup(g int) string {
	if g < 0 || g >= len(db.groups) {
		return fmt.Sprintf("spanner: group %d out of range", g)
	}
	grp := db.groups[g]
	var b strings.Builder
	fmt.Fprintf(&b, "group %d: term=%d committed=%d leader=region %d\n",
		grp.id, grp.term, grp.committed, grp.leaderRep().region)
	for _, rep := range grp.replicas {
		state := "live"
		if rep.srv.Stopped() {
			state = "down"
		}
		fmt.Fprintf(&b, "  region %d (%s): applied=%d log=[", rep.region, state, rep.applied)
		for i, e := range rep.log {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s@%d", e.key, e.term)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Committed returns the majority-acknowledged log length of group g (tests
// and monitoring).
func (db *DB) Committed(g int) (int, error) {
	if g < 0 || g >= len(db.groups) {
		return 0, fmt.Errorf("spanner: group %d out of range", g)
	}
	return db.groups[g].committed, nil
}
