package spanner

import (
	"bytes"
	"testing"
	"time"

	"hyperprof/internal/sim"
)

func TestLeaderFailoverPreservesCommittedData(t *testing.T) {
	env := testEnv(30)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("committed before failover")
	var got []byte
	var newLeader int
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.Commit(p, nil, 0, 7, want); err != nil {
			return
		}
		// Commit waited for a majority; give the straggling replication
		// proc a beat so every replica holds the entry.
		p.Sleep(50 * time.Millisecond)
		newLeader, err = db.FailLeader(0)
		if err != nil {
			return
		}
		got, err = db.Read(p, nil, 0, 7, false)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if newLeader == 0 {
		t.Fatalf("new leader region = %d, want != 0", newLeader)
	}
	if lr, _ := db.Leader(0); lr != newLeader {
		t.Fatalf("Leader() = %d, want %d", lr, newLeader)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read after failover = %q", got)
	}
	if db.Elections != 1 {
		t.Fatalf("elections = %d", db.Elections)
	}
}

func TestCommitsContinueAfterFailover(t *testing.T) {
	env := testEnv(31)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		if _, err = db.FailLeader(1); err != nil {
			return
		}
		if err = db.Commit(p, nil, 1, 3, []byte("post-failover write")); err != nil {
			return
		}
		got, err = db.Read(p, nil, 1, 3, false)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "post-failover write" {
		t.Fatalf("got %q", got)
	}
}

func TestElectionTieBreaksToLowestRegion(t *testing.T) {
	env := testEnv(32)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var newLeader int
	env.K.Go("client", func(p *sim.Proc) {
		// Both followers have identical (empty) logs: tie -> region 1.
		newLeader, err = db.FailLeader(2)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if newLeader != 1 {
		t.Fatalf("new leader = %d, want 1", newLeader)
	}
}

func TestFailoverWithNoLiveReplicas(t *testing.T) {
	env := testEnv(33)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var failErr error
	env.K.Go("client", func(p *sim.Proc) {
		db.StopReplica(0, 1)
		db.StopReplica(0, 2)
		_, failErr = db.FailLeader(0)
		db.Stop()
	})
	env.K.Run()
	if failErr == nil {
		t.Fatal("election with no live replicas succeeded")
	}
}

func TestFollowerCatchUpAfterRestart(t *testing.T) {
	env := testEnv(34)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	const downCommits = 5
	env.K.Go("client", func(p *sim.Proc) {
		// Take region 2 down and commit while it is missing entries.
		if err = db.StopReplica(0, 2); err != nil {
			return
		}
		for i := 0; i < downCommits; i++ {
			if err = db.Commit(p, nil, 0, i, []byte("while-down")); err != nil {
				return
			}
		}
		// Bring it back; the next commit triggers the gap -> catch-up path.
		if err = db.RestartReplica(0, 2); err != nil {
			return
		}
		if err = db.Commit(p, nil, 0, 90, []byte("after-restart")); err != nil {
			return
		}
		// The commit returns at majority; let the catch-up RPC to the
		// restarted follower complete before shutting servers down.
		p.Sleep(100 * time.Millisecond)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	leaderLen, _ := db.LogLen(0, 0)
	lagLen, _ := db.LogLen(0, 2)
	if leaderLen != downCommits+1 {
		t.Fatalf("leader log = %d", leaderLen)
	}
	if lagLen != leaderLen {
		t.Fatalf("restarted follower log = %d, want %d (catch-up)", lagLen, leaderLen)
	}
}

func TestRestartValidation(t *testing.T) {
	env := testEnv(35)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RestartReplica(0, 1); err == nil {
		t.Error("restart of running replica accepted")
	}
	if err := db.RestartReplica(99, 0); err == nil {
		t.Error("bad group accepted")
	}
	if _, err := db.Leader(99); err == nil {
		t.Error("bad group accepted by Leader")
	}
	if _, err := db.LogLen(0, 99); err == nil {
		t.Error("bad region accepted by LogLen")
	}
	db.Stop()
	env.K.Run()
}

func TestLogsConvergeAcrossReplicas(t *testing.T) {
	env := testEnv(36)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err = db.Commit(p, nil, 0, i%5, []byte("converge")); err != nil {
				return
			}
		}
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All replication procs ran to completion: every replica has all 10
	// entries even though commits only waited for a majority.
	for r := 0; r < 3; r++ {
		if n, _ := db.LogLen(0, r); n != 10 {
			t.Fatalf("region %d log = %d, want 10", r, n)
		}
	}
}
