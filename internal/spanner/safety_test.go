package spanner

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hyperprof/internal/check"
	"hyperprof/internal/netsim"
	"hyperprof/internal/sim"
)

// divergedGroup drives group 0 into the classic unsafe-election setup:
//
//  1. both followers down, leader r0 appends X but cannot commit it
//     (indeterminate outcome; X stays as r0's uncommitted suffix);
//  2. r0 crashes, the followers come back, r1 is elected and commits Y at
//     the same index (acked by r2 — a real committed write);
//  3. r0 restarts with its stale log, r1 stops.
//
// The next election chooses between r0 (log [X], old term) and r2 (log [Y],
// newer term). Term-blind longest-log election ties toward r0 and loses the
// committed Y.
func divergedGroup(t *testing.T, db *DB, k *sim.Kernel, h *check.History) (yVal []byte) {
	t.Helper()
	yVal = []byte("committed-Y")
	var failed error
	k.Go("safety-client", func(p *sim.Proc) {
		fail := func(err error) {
			if failed == nil {
				failed = err
			}
		}
		if err := db.StopReplica(0, 1); err != nil {
			fail(err)
			return
		}
		if err := db.StopReplica(0, 2); err != nil {
			fail(err)
			return
		}
		if err := db.Commit(p, nil, 0, 7, []byte("uncommitted-X")); err == nil {
			fail(errors.New("commit with both followers down unexpectedly succeeded"))
			return
		}
		if err := db.CrashReplica(0, 0); err != nil {
			fail(err)
			return
		}
		if err := db.RestartReplica(0, 1); err != nil {
			fail(err)
			return
		}
		if err := db.RestartReplica(0, 2); err != nil {
			fail(err)
			return
		}
		// ensureLeader elects among {r1, r2}; the tie breaks to r1.
		if err := db.Commit(p, nil, 0, 7, yVal); err != nil {
			fail(err)
			return
		}
		p.Sleep(10 * time.Millisecond) // let straggling replication drain
		if err := db.RestartReplica(0, 0); err != nil {
			fail(err)
			return
		}
		if err := db.StopReplica(0, 1); err != nil {
			fail(err)
			return
		}
	})
	k.Run()
	if failed != nil {
		t.Fatal(failed)
	}
	return yVal
}

func TestElectionPrefersHigherTermOverLongerLog(t *testing.T) {
	// Regression for the unsafe term-blind election: after divergedGroup the
	// election must pick r2 (committed Y, newer term) over the stale r0, and
	// the read must return the committed value.
	env := testEnv(61)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	want := divergedGroup(t, db, env.K, h)

	var got []byte
	env.K.Go("reader", func(p *sim.Proc) {
		got, err = db.Read(p, nil, 0, 7, false)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if leader, _ := db.Leader(0); leader != 2 {
		t.Fatalf("leader region = %d, want 2 (the replica holding the committed write)", leader)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read after elections = %q, want the committed %q", got, want)
	}
	if vs := h.CheckLinearizability(); len(vs) != 0 {
		t.Fatalf("history not linearizable:\n%v", vs)
	}
	if vs := h.Structural(); len(vs) != 0 {
		t.Fatalf("structural violations: %v", vs)
	}
	if br := db.CheckInvariants(); len(br) != 0 {
		t.Fatalf("invariants broken: %v", br)
	}
}

func TestBrokenElectionCaughtByChecker(t *testing.T) {
	// The intentionally broken recovery path: elections pick the first live
	// replica, term- and majority-blind. The checker must catch the lost
	// committed write with a minimal violating history, and the standing
	// invariants must flag the stale leader.
	env := testEnv(62)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.brokenElectAnyReplica = true
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	divergedGroup(t, db, env.K, h)

	env.K.Go("reader", func(p *sim.Proc) {
		// The broken election installs stale r0; this read misses Y.
		db.Read(p, nil, 0, 7, false)
		db.Stop()
	})
	env.K.Run()
	if leader, _ := db.Leader(0); leader != 0 {
		t.Fatalf("leader region = %d, want the stale 0 under the broken election", leader)
	}
	vs := h.CheckLinearizability()
	if len(vs) != 1 {
		t.Fatalf("linearizability violations = %d, want 1:\n%v", len(vs), vs)
	}
	v := vs[0]
	if v.Key != rowKey(0, 7) {
		t.Fatalf("violation key = %q", v.Key)
	}
	if len(v.History) == 0 || len(v.History) > 3 {
		t.Fatalf("minimal history has %d ops, want a small core:\n%s", len(v.History), check.FormatOps(v.History))
	}
	if br := db.CheckInvariants(); len(br) == 0 {
		t.Fatal("CheckInvariants found nothing: stale leader must break committed-prefix durability")
	}
}

func TestCommitOutcomesRecorded(t *testing.T) {
	env := testEnv(63)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	env.K.Go("client", func(p *sim.Proc) {
		db.Commit(p, nil, 1, 1, []byte("ok-write"))
		db.StopReplica(1, 1)
		db.StopReplica(1, 2)
		db.Commit(p, nil, 1, 2, []byte("stuck-write")) // errors post-append
		db.Commit(p, nil, 1, 999999, nil)              // rejected pre-append
		db.Stop()
	})
	env.K.Run()
	var outcomes []check.Outcome
	for _, op := range h.Ops() {
		if op.Kind == "write" {
			outcomes = append(outcomes, op.Outcome)
		}
	}
	want := []check.Outcome{check.OutcomeOK, check.OutcomeIndeterminate}
	if len(outcomes) != len(want) {
		t.Fatalf("recorded %d writes (%v), want %d — out-of-range ops are not recorded", len(outcomes), outcomes, len(want))
	}
	for i, o := range outcomes {
		if o != want[i] {
			t.Fatalf("write %d outcome = %v, want %v", i, o, want[i])
		}
	}
}

func TestFollowerAppliesOnlyCommittedPrefix(t *testing.T) {
	// Regression for the dirty-read bug: followers used to apply entries to
	// their readable row state at *append* time, before the entry was known
	// committed — an aborted entry could be read through a later leader and
	// then vanish. Now application strictly trails the commit index, and an
	// election catches the winner's row state up to it.
	env := testEnv(65)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory(env.K)
	db.SetRecorder(h)
	w1, w2 := []byte("first-commit"), []byte("second-commit")
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		if err := db.Commit(p, nil, 0, 1, w1); err != nil {
			t.Error(err)
			return
		}
		grp := db.groups[0]
		for _, rep := range grp.replicas {
			if rep == grp.leaderRep() {
				continue
			}
			// W1's append carried commit index 0: logged but not applied.
			if len(rep.log) != 1 || rep.applied != 0 {
				t.Errorf("region %d after W1: log=%d applied=%d, want 1/0", rep.region, len(rep.log), rep.applied)
			}
			if _, leaked := rep.rows[rowKey(0, 1)]; leaked {
				t.Errorf("region %d applied W1 before it was committed", rep.region)
			}
		}
		if err := db.Commit(p, nil, 0, 2, w2); err != nil {
			t.Error(err)
			return
		}
		for _, rep := range grp.replicas {
			if rep == grp.leaderRep() {
				continue
			}
			// W2's append carried commit index 1: W1 applied, W2 pending.
			if rep.applied != 1 {
				t.Errorf("region %d after W2: applied=%d, want 1", rep.region, rep.applied)
			}
		}
		// The new leader acked W2 before learning its commit; the election
		// must catch its rows up so the committed write is readable.
		if _, err := db.FailLeader(0); err != nil {
			t.Error(err)
			return
		}
		got, err = db.Read(p, nil, 0, 2, false)
		if err != nil {
			t.Error(err)
		}
		db.Stop()
	})
	env.K.Run()
	if !bytes.Equal(got, w2) {
		t.Fatalf("read after failover = %q, want %q", got, w2)
	}
	if vs := h.CheckLinearizability(); len(vs) != 0 {
		t.Fatalf("history not linearizable:\n%v", vs)
	}
	if br := db.CheckInvariants(); len(br) != 0 {
		t.Fatalf("invariants broken: %v", br)
	}
}

func TestStaleTermAppendRefused(t *testing.T) {
	// Regression for the mid-commit deposition race (found by the safety
	// torture study at seed 2): an election landing while a replication round
	// is in flight must cause the remaining appends to be refused as stale.
	// Otherwise the deposed leader's round can reach a majority and commit an
	// entry the new leader does not hold, and reads through the new leader
	// miss an acknowledged write.
	env := testEnv(66)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		grp := db.groups[0]
		staleTerm := grp.term
		if _, err := db.FailLeader(0); err != nil { // bumps grp.term
			t.Error(err)
			return
		}
		follower := grp.replicas[2]
		wantLog := len(follower.log)
		resp, _ := db.client.Call(p, grp.leaderRep().machine.Node, follower.srv, netsim.Request{
			Method: "consensus.append",
			Bytes:  128,
			Payload: appendArgs{
				FromIndex: wantLog,
				Entries:   []logEntry{{key: rowKey(0, 7), value: []byte("from-deposed-leader"), term: staleTerm}},
				Term:      staleTerm,
				Commit:    grp.committed,
			},
		})
		if resp.Err != nil {
			t.Errorf("append RPC failed: %v", resp.Err)
			return
		}
		reply := resp.Payload.(appendReply)
		if reply.OK || !reply.Stale {
			t.Errorf("stale-term append reply = %+v, want refused as Stale", reply)
		}
		if len(follower.log) != wantLog {
			t.Errorf("follower log grew to %d entries, stale append must not append", len(follower.log))
		}
		db.Stop()
	})
	env.K.Run()
}

func TestDivergentPrefixAppendBackedUp(t *testing.T) {
	// Regression for the grafted-suffix bug (found by the safety torture
	// study at seed 20): a replica that rejoins with a divergent uncommitted
	// entry at index i must not accept appends starting at i+1 — the matching
	// suffix would sit on top of conflicting history and the divergence would
	// never be repaired. The append must be refused with a back-up hint so
	// the leader's catch-up batch covers (and truncates) the conflict.
	env := testEnv(67)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		if err := db.Commit(p, nil, 0, 3, []byte("seed-entry")); err != nil {
			t.Error(err)
			return
		}
		grp := db.groups[0]
		follower := grp.replicas[1]
		// An append claiming a different term for the follower's last entry
		// must be backed up, not appended.
		resp, _ := db.client.Call(p, grp.leaderRep().machine.Node, follower.srv, netsim.Request{
			Method: "consensus.append",
			Bytes:  128,
			Payload: appendArgs{
				FromIndex: len(follower.log),
				Entries:   []logEntry{{key: rowKey(0, 4), value: []byte("on-top"), term: grp.term}},
				Term:      grp.term,
				PrevTerm:  grp.term + 7, // deliberately wrong
				Commit:    grp.committed,
			},
		})
		if resp.Err != nil {
			t.Errorf("append RPC failed: %v", resp.Err)
			return
		}
		reply := resp.Payload.(appendReply)
		if reply.OK || reply.Stale {
			t.Errorf("divergent-prefix append reply = %+v, want refused with a back-up hint", reply)
		}
		if want := len(follower.log) - 1; reply.NeedFrom != want {
			t.Errorf("NeedFrom = %d, want %d (one entry back)", reply.NeedFrom, want)
		}
		db.Stop()
	})
	env.K.Run()
}

func TestElectionRequiresMajority(t *testing.T) {
	// One live replica out of three must not be electable: serving from a
	// minority could miss committed writes it never saw.
	env := testEnv(64)
	db, err := New(env, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.K.Go("client", func(p *sim.Proc) {
		db.StopReplica(2, 0)
		db.StopReplica(2, 1)
		if _, err := db.Read(p, nil, 2, 1, false); !errors.Is(err, ErrNoQuorum) {
			t.Errorf("read with 1/3 live = %v, want ErrNoQuorum", err)
		}
		db.Stop()
	})
	env.K.Run()
}
