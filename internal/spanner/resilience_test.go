package spanner

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hyperprof/internal/netsim"
	"hyperprof/internal/sim"
)

// TestRepeatedLeaderFailureConverges drives the full crash/recover loop the
// resilience study leans on: repeatedly fail the leader, commit writes under
// the new leader, restart the old one, and verify at the end that every
// acknowledged write survived (election by longest log) and elections were
// counted — no lost majority-committed data, ever.
func TestRepeatedLeaderFailureConverges(t *testing.T) {
	env := testEnv(33)
	cfg := smallConfig()
	cfg.CompactionEvery = 0
	db, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds, writesPerRound = 4, 3
	acked := map[int][]byte{}
	var failed int
	env.K.Go("client", func(p *sim.Proc) {
		row := 0
		for round := 0; round < rounds; round++ {
			var old int
			if old, err = db.Leader(0); err != nil {
				return
			}
			if _, err = db.FailLeader(0); err != nil {
				return
			}
			for j := 0; j < writesPerRound; j++ {
				val := []byte(fmt.Sprintf("round-%d-write-%d", round, j))
				if e := db.Commit(p, nil, 0, row, val); e != nil {
					failed++
				} else {
					acked[row] = val
				}
				row++
			}
			if err = db.RestartReplica(0, old); err != nil {
				return
			}
			// Let straggling replication procs settle before the next bounce.
			p.Sleep(20 * time.Millisecond)
		}
		// Every acknowledged write must read back intact from whoever leads now.
		for r := 0; r < row; r++ {
			want, ok := acked[r]
			if !ok {
				continue
			}
			got, e := db.Read(p, nil, 0, r, false)
			if e != nil {
				err = fmt.Errorf("read row %d: %w", r, e)
				return
			}
			if !bytes.Equal(got, want) {
				err = fmt.Errorf("row %d = %q, want %q (lost acknowledged write)", r, got, want)
				return
			}
		}
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("%d commits failed; with one replica down a majority is always available", failed)
	}
	if len(acked) != rounds*writesPerRound {
		t.Fatalf("acked %d writes, want %d", len(acked), rounds*writesPerRound)
	}
	if db.Elections != rounds {
		t.Fatalf("Elections = %d, want %d", db.Elections, rounds)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

// TestReadFailsOverWhenLeaderDown pins the client-side failover path: when
// the leader's server is stopped out from under the group (no explicit
// FailLeader), the next read elects a new leader and succeeds, including the
// strong-read quorum round under a retrying RPC policy.
func TestReadFailsOverWhenLeaderDown(t *testing.T) {
	env := testEnv(34)
	cfg := smallConfig()
	cfg.RPC = netsim.Policy{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond}
	db, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		leader, _ := db.Leader(0)
		if err = db.StopReplica(0, leader); err != nil {
			return
		}
		got, err = db.Read(p, nil, 0, 5, true)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("read returned no data after failover")
	}
	if db.Elections != 1 {
		t.Fatalf("Elections = %d, want 1 (ensureLeader)", db.Elections)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

// TestCommitSurvivesReplicaCrash verifies the hard-crash path: a follower
// crash (in-flight RPC failures, no drain) must not block or fail commits
// while a majority remains.
func TestCommitSurvivesReplicaCrash(t *testing.T) {
	env := testEnv(35)
	cfg := smallConfig()
	cfg.RPC = netsim.Policy{MaxAttempts: 2, BackoffBase: time.Millisecond}
	db, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("after-crash")
	var got []byte
	env.K.Go("client", func(p *sim.Proc) {
		if err = db.CrashReplica(0, 2); err != nil {
			return
		}
		if !db.ReplicaDown(0, 2) {
			err = fmt.Errorf("ReplicaDown false after crash")
			return
		}
		if err = db.Commit(p, nil, 0, 1, want); err != nil {
			return
		}
		got, err = db.Read(p, nil, 0, 1, false)
		db.Stop()
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %q, want %q", got, want)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}
