package profile

import (
	"math"
	"testing"
	"time"

	"hyperprof/internal/taxonomy"
)

var testMicro = Micro{IPC: 1.0, BR: 5, L1I: 15, L2I: 8, LLC: 1, ITLB: 0.5, DTLBLD: 2}

func TestExactAccountingTotals(t *testing.T) {
	p := New(nil, 1)
	p.Record(Work{Platform: taxonomy.Spanner, Function: "snappy.Compress", Duration: 30 * time.Millisecond, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "stubby.Call", Duration: 70 * time.Millisecond, Micro: testMicro})
	if got := p.TotalCPU(taxonomy.Spanner); got != 100*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
	if got := p.TotalCPU(taxonomy.BigQuery); got != 0 {
		t.Fatalf("other platform total = %v", got)
	}
}

func TestZeroAndNegativeDurationIgnored(t *testing.T) {
	p := New(nil, 1)
	p.Record(Work{Platform: taxonomy.Spanner, Function: "x", Duration: 0})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "x", Duration: -time.Second})
	if p.TotalCPU(taxonomy.Spanner) != 0 {
		t.Fatal("zero-duration work recorded")
	}
}

func TestBroadBreakdown(t *testing.T) {
	p := New(nil, 1)
	c := p.Classifier()
	c.Register("myplat.read", taxonomy.Read)
	p.Record(Work{Platform: taxonomy.Spanner, Function: "myplat.read", Duration: 50 * time.Millisecond, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "snappy.Compress", Duration: 30 * time.Millisecond, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "syscall.read", Duration: 20 * time.Millisecond, Micro: testMicro})
	b := p.BroadBreakdown(taxonomy.Spanner)
	if math.Abs(b[taxonomy.CoreCompute]-0.5) > 1e-9 {
		t.Errorf("core = %v", b[taxonomy.CoreCompute])
	}
	if math.Abs(b[taxonomy.DatacenterTax]-0.3) > 1e-9 {
		t.Errorf("dct = %v", b[taxonomy.DatacenterTax])
	}
	if math.Abs(b[taxonomy.SystemTax]-0.2) > 1e-9 {
		t.Errorf("st = %v", b[taxonomy.SystemTax])
	}
}

func TestCategoryBreakdown(t *testing.T) {
	p := New(nil, 1)
	p.Record(Work{Platform: taxonomy.BigQuery, Function: "snappy.Uncompress", Duration: 60 * time.Millisecond, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.BigQuery, Function: "proto.Decode", Duration: 40 * time.Millisecond, Micro: testMicro})
	cb := p.CategoryBreakdown(taxonomy.BigQuery, taxonomy.DatacenterTax)
	if math.Abs(cb[taxonomy.Compression]-0.6) > 1e-9 || math.Abs(cb[taxonomy.Protobuf]-0.4) > 1e-9 {
		t.Fatalf("breakdown = %v", cb)
	}
	if len(p.CategoryBreakdown(taxonomy.BigQuery, taxonomy.SystemTax)) != 0 {
		t.Fatal("unexpected system tax categories")
	}
}

func TestPlatformStatsIPCAndMPKI(t *testing.T) {
	p := New(nil, 1) // default 2 GHz
	p.Record(Work{Platform: taxonomy.BigTable, Function: "f", Duration: time.Second, Micro: testMicro})
	s := p.PlatformStats(taxonomy.BigTable)
	if math.Abs(s.IPC-1.0) > 1e-9 {
		t.Errorf("IPC = %v", s.IPC)
	}
	if math.Abs(s.BR-5) > 1e-9 || math.Abs(s.DTLBLD-2) > 1e-9 {
		t.Errorf("MPKIs = %+v", s.Micro)
	}
	if s.CPU != time.Second {
		t.Errorf("cpu = %v", s.CPU)
	}
}

func TestStatsCycleWeightedAggregation(t *testing.T) {
	p := New(nil, 1)
	// Equal durations, different IPCs: aggregate IPC is the cycle-weighted
	// mean (1.0+2.0)/2 = 1.5 because cycles are equal.
	p.Record(Work{Platform: taxonomy.Spanner, Function: "a", Duration: time.Second, Micro: Micro{IPC: 1.0, BR: 10}})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "b", Duration: time.Second, Micro: Micro{IPC: 2.0, BR: 1}})
	s := p.PlatformStats(taxonomy.Spanner)
	if math.Abs(s.IPC-1.5) > 1e-9 {
		t.Errorf("aggregate IPC = %v, want 1.5", s.IPC)
	}
	// MPKI must be instruction-weighted: (1e9*10 + 2e9*1)/(3e9) per kilo.
	wantBR := (1e9*2*10 + 2e9*2*1) / (3e9 * 2)
	if math.Abs(s.BR-wantBR) > 1e-9 {
		t.Errorf("aggregate BR = %v, want %v", s.BR, wantBR)
	}
}

func TestBroadStats(t *testing.T) {
	p := New(nil, 1)
	c := p.Classifier()
	c.Register("plat.scan", taxonomy.Filter)
	p.Record(Work{Platform: taxonomy.BigQuery, Function: "plat.scan", Duration: time.Second, Micro: Micro{IPC: 1.4, BR: 2}})
	p.Record(Work{Platform: taxonomy.BigQuery, Function: "proto.Encode", Duration: time.Second, Micro: Micro{IPC: 1.0, BR: 4}})
	bs := p.BroadStats(taxonomy.BigQuery)
	if math.Abs(bs[taxonomy.CoreCompute].IPC-1.4) > 1e-9 {
		t.Errorf("core IPC = %v", bs[taxonomy.CoreCompute].IPC)
	}
	if math.Abs(bs[taxonomy.DatacenterTax].IPC-1.0) > 1e-9 {
		t.Errorf("dct IPC = %v", bs[taxonomy.DatacenterTax].IPC)
	}
	if _, ok := bs[taxonomy.SystemTax]; ok {
		t.Error("unexpected system tax stats")
	}
}

func TestSamplingApproximatesExact(t *testing.T) {
	exact := New(nil, 1)
	sampled := New(nil, 1, WithSampling(time.Millisecond))
	// Many small work items around the sampling period.
	for i := 0; i < 20000; i++ {
		w := Work{
			Platform: taxonomy.Spanner,
			Function: "snappy.Compress",
			Duration: time.Duration(100+i%1900) * time.Microsecond,
			Micro:    testMicro,
		}
		exact.Record(w)
		sampled.Record(w)
	}
	e := exact.TotalCPU(taxonomy.Spanner).Seconds()
	s := sampled.TotalCPU(taxonomy.Spanner).Seconds()
	if rel := math.Abs(e-s) / e; rel > 0.05 {
		t.Fatalf("sampled total off by %.1f%% (exact %.3fs sampled %.3fs)", rel*100, e, s)
	}
}

func TestSamplingDropsRareTinyWork(t *testing.T) {
	p := New(nil, 42, WithSampling(time.Second))
	p.Record(Work{Platform: taxonomy.Spanner, Function: "x", Duration: time.Nanosecond, Micro: testMicro})
	// With probability 1-1e-9 the sample is dropped; total is 0 or 1s.
	got := p.TotalCPU(taxonomy.Spanner)
	if got != 0 && got != time.Second {
		t.Fatalf("total = %v", got)
	}
}

func TestJitterPreservesMeans(t *testing.T) {
	p := New(nil, 7, WithJitter(0.2))
	for i := 0; i < 5000; i++ {
		p.Record(Work{Platform: taxonomy.BigTable, Function: "f", Duration: time.Millisecond, Micro: testMicro})
	}
	s := p.PlatformStats(taxonomy.BigTable)
	if math.Abs(s.IPC-1.0) > 0.02 {
		t.Errorf("jittered IPC mean = %v", s.IPC)
	}
	if math.Abs(s.BR-5) > 0.2 {
		t.Errorf("jittered BR mean = %v", s.BR)
	}
}

func TestTopFunctions(t *testing.T) {
	p := New(nil, 1)
	p.Record(Work{Platform: taxonomy.Spanner, Function: "hot", Duration: 3 * time.Second, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "warm", Duration: 2 * time.Second, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "cold", Duration: 1 * time.Second, Micro: testMicro})
	top := p.TopFunctions(taxonomy.Spanner, 2)
	if len(top) != 2 || top[0].Function != "hot" || top[1].Function != "warm" {
		t.Fatalf("top = %+v", top)
	}
	all := p.TopFunctions(taxonomy.Spanner, 0)
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
}

func TestTopFunctionsDeterministicTieBreak(t *testing.T) {
	p := New(nil, 1)
	for _, fn := range []string{"zeta", "alpha", "mid"} {
		p.Record(Work{Platform: taxonomy.Spanner, Function: fn, Duration: time.Second, Micro: testMicro})
	}
	top := p.TopFunctions(taxonomy.Spanner, 3)
	if top[0].Function != "alpha" || top[1].Function != "mid" || top[2].Function != "zeta" {
		t.Fatalf("tie-break order: %+v", top)
	}
}

func TestEmptyPlatformStats(t *testing.T) {
	p := New(nil, 1)
	s := p.PlatformStats(taxonomy.BigQuery)
	if s.IPC != 0 || s.CPU != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	if len(p.BroadBreakdown(taxonomy.BigQuery)) != 0 {
		t.Fatal("empty breakdown should have no entries")
	}
}
