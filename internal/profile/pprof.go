package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"time"

	"hyperprof/internal/protowire"
	"hyperprof/internal/taxonomy"
)

// This file exports a platform's profile in the pprof protobuf format
// (github.com/google/pprof/proto/profile.proto), encoded with this
// repository's own protowire implementation, so a simulated GWP profile can
// be inspected with the standard `go tool pprof` workflow:
//
//	go run ./cmd/hyperprof -pprof spanner.pb.gz
//	go tool pprof -top spanner.pb.gz

// pprof message descriptors (field numbers from profile.proto).
var (
	pprofValueType = protowire.MustDescriptor("ValueType", []protowire.Field{
		{Num: 1, Name: "type", Kind: protowire.Int64Kind},
		{Num: 2, Name: "unit", Kind: protowire.Int64Kind},
	})
	pprofLine = protowire.MustDescriptor("Line", []protowire.Field{
		{Num: 1, Name: "function_id", Kind: protowire.Int64Kind},
		{Num: 2, Name: "line", Kind: protowire.Int64Kind},
	})
	pprofLocation = protowire.MustDescriptor("Location", []protowire.Field{
		{Num: 1, Name: "id", Kind: protowire.Int64Kind},
		{Num: 4, Name: "line", Kind: protowire.MessageKind, Repeated: true, Msg: pprofLine},
	})
	pprofFunction = protowire.MustDescriptor("Function", []protowire.Field{
		{Num: 1, Name: "id", Kind: protowire.Int64Kind},
		{Num: 2, Name: "name", Kind: protowire.Int64Kind},
		{Num: 3, Name: "system_name", Kind: protowire.Int64Kind},
		{Num: 4, Name: "filename", Kind: protowire.Int64Kind},
	})
	pprofLabel = protowire.MustDescriptor("Label", []protowire.Field{
		{Num: 1, Name: "key", Kind: protowire.Int64Kind},
		{Num: 2, Name: "str", Kind: protowire.Int64Kind},
	})
	pprofSample = protowire.MustDescriptor("Sample", []protowire.Field{
		{Num: 1, Name: "location_id", Kind: protowire.Int64Kind, Repeated: true},
		{Num: 2, Name: "value", Kind: protowire.Int64Kind, Repeated: true},
		{Num: 3, Name: "label", Kind: protowire.MessageKind, Repeated: true, Msg: pprofLabel},
	})
	pprofProfile = protowire.MustDescriptor("Profile", []protowire.Field{
		{Num: 1, Name: "sample_type", Kind: protowire.MessageKind, Repeated: true, Msg: pprofValueType},
		{Num: 2, Name: "sample", Kind: protowire.MessageKind, Repeated: true, Msg: pprofSample},
		{Num: 4, Name: "location", Kind: protowire.MessageKind, Repeated: true, Msg: pprofLocation},
		{Num: 5, Name: "function", Kind: protowire.MessageKind, Repeated: true, Msg: pprofFunction},
		{Num: 6, Name: "string_table", Kind: protowire.StringKind, Repeated: true},
		{Num: 10, Name: "duration_nanos", Kind: protowire.Int64Kind},
		{Num: 11, Name: "period_type", Kind: protowire.MessageKind, Msg: pprofValueType},
		{Num: 12, Name: "period", Kind: protowire.Int64Kind},
	})
)

// ExportPprof serializes one platform's flat profile as a gzip-compressed
// pprof protobuf. Each leaf function becomes a one-frame sample carrying its
// total CPU nanoseconds, labeled with its taxonomy category.
func (p *Profiler) ExportPprof(platform taxonomy.Platform) ([]byte, error) {
	rows := p.TopFunctions(platform, 0)
	if len(rows) == 0 {
		return nil, fmt.Errorf("profile: no samples for %s", platform)
	}

	msg := protowire.NewMessage(pprofProfile)
	strs := []string{""} // index 0 must be the empty string
	intern := map[string]uint64{"": 0}
	s := func(v string) uint64 {
		if i, ok := intern[v]; ok {
			return i
		}
		i := uint64(len(strs))
		strs = append(strs, v)
		intern[v] = i
		return i
	}

	msg.SetMsg(1, protowire.NewMessage(pprofValueType).
		SetInt(1, s("cpu")).SetInt(2, s("nanoseconds")))
	msg.SetMsg(11, protowire.NewMessage(pprofValueType).
		SetInt(1, s("cpu")).SetInt(2, s("nanoseconds")))
	msg.SetInt(12, 1)

	var total time.Duration
	catKey := s("category")
	for i, row := range rows {
		id := uint64(i + 1)
		fn := protowire.NewMessage(pprofFunction).
			SetInt(1, id).
			SetInt(2, s(row.Function)).
			SetInt(3, s(row.Function)).
			SetInt(4, s(string(platform)+"/"+string(row.Category)))
		msg.SetMsg(5, fn)
		loc := protowire.NewMessage(pprofLocation).
			SetInt(1, id).
			SetMsg(4, protowire.NewMessage(pprofLine).SetInt(1, id).SetInt(2, 1))
		msg.SetMsg(4, loc)
		sample := protowire.NewMessage(pprofSample).
			SetInt(1, id).
			SetInt(2, uint64(row.CPU.Nanoseconds())).
			SetMsg(3, protowire.NewMessage(pprofLabel).
				SetInt(1, catKey).SetInt(2, s(string(row.Category))))
		msg.SetMsg(2, sample)
		total += row.CPU
	}
	msg.SetInt(10, uint64(total.Nanoseconds()))
	for _, v := range strs {
		msg.SetBytes(6, []byte(v))
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(msg.Marshal(nil)); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
