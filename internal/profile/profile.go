// Package profile is the repository's Google-Wide-Profiling equivalent
// (§5.1): it observes the CPU work simulated platforms execute, samples it in
// virtual time, buckets samples by leaf function through the taxonomy
// classifier, and aggregates cycle breakdowns (Figures 3–6) and
// microarchitectural statistics (Tables 6–7).
package profile

import (
	"sort"
	"time"

	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
)

// Micro is a per-function microarchitecture profile: instructions per cycle
// and misses per kilo-instruction for the six counters of Tables 6–7.
type Micro struct {
	IPC    float64
	BR     float64 // branch MPKI
	L1I    float64
	L2I    float64
	LLC    float64
	ITLB   float64
	DTLBLD float64
}

// Work is one unit of CPU execution reported by a platform: a leaf function
// that ran for Duration of CPU time with the given microarchitectural
// behaviour.
type Work struct {
	Platform taxonomy.Platform
	Function string
	Duration time.Duration
	Micro    Micro
}

// agg accumulates cycle- and instruction-weighted counter totals.
type agg struct {
	cpu    time.Duration
	instr  float64 // total instructions
	misses [6]float64
}

func (a *agg) add(cycles float64, m Micro, w time.Duration) {
	a.cpu += w
	in := cycles * m.IPC
	a.instr += in
	for i, mpki := range [6]float64{m.BR, m.L1I, m.L2I, m.LLC, m.ITLB, m.DTLBLD} {
		a.misses[i] += in * mpki / 1000
	}
}

// Stats is an aggregated microarchitecture report (one row of Table 6 or 7).
type Stats struct {
	CPU time.Duration
	Micro
}

func (a *agg) stats(hz float64) Stats {
	s := Stats{CPU: a.cpu}
	cycles := a.cpu.Seconds() * hz
	if cycles > 0 {
		s.IPC = a.instr / cycles
	}
	if a.instr > 0 {
		k := 1000 / a.instr
		s.BR = a.misses[0] * k
		s.L1I = a.misses[1] * k
		s.L2I = a.misses[2] * k
		s.LLC = a.misses[3] * k
		s.ITLB = a.misses[4] * k
		s.DTLBLD = a.misses[5] * k
	}
	return s
}

type key struct {
	platform taxonomy.Platform
	category taxonomy.Category
}

// Profiler collects and aggregates Work reports.
type Profiler struct {
	classifier *taxonomy.Classifier
	rng        *stats.RNG
	hz         float64
	period     time.Duration // sampling period; 0 = exact accounting
	jitter     float64       // relative noise applied per sample to counters

	byCategory map[key]*agg
	byFunction map[taxonomy.Platform]map[string]*agg
}

// Option configures a Profiler.
type Option func(*Profiler)

// WithSampling makes the profiler keep work with probability proportional to
// its duration relative to the sampling period, like a real timer-based
// profiler; work shorter than the period is kept probabilistically with
// matching expected weight.
func WithSampling(period time.Duration) Option {
	return func(p *Profiler) { p.period = period }
}

// WithJitter applies relative noise frac to each sample's counters, modelling
// measurement variance.
func WithJitter(frac float64) Option {
	return func(p *Profiler) { p.jitter = frac }
}

// WithClockHz sets the modeled core frequency used to convert CPU time to
// cycles. The default is 2 GHz.
func WithClockHz(hz float64) Option {
	return func(p *Profiler) { p.hz = hz }
}

// New creates a profiler using the given classifier (nil for the fleet
// default) and seed.
func New(classifier *taxonomy.Classifier, seed uint64, opts ...Option) *Profiler {
	if classifier == nil {
		classifier = taxonomy.NewClassifier()
	}
	p := &Profiler{
		classifier: classifier,
		rng:        stats.NewRNG(seed),
		hz:         2e9,
		byCategory: map[key]*agg{},
		byFunction: map[taxonomy.Platform]map[string]*agg{},
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Classifier exposes the profiler's classifier so platforms can register
// their function tables.
func (p *Profiler) Classifier() *taxonomy.Classifier { return p.classifier }

// Record reports one unit of CPU work.
func (p *Profiler) Record(w Work) {
	if w.Duration <= 0 {
		return
	}
	weight := w.Duration
	if p.period > 0 {
		n := float64(w.Duration) / float64(p.period)
		whole := int(n)
		if p.rng.Float64() < n-float64(whole) {
			whole++
		}
		if whole == 0 {
			return
		}
		weight = time.Duration(whole) * p.period
	}
	m := w.Micro
	if p.jitter > 0 {
		m.IPC = p.rng.Jitter(m.IPC, p.jitter)
		m.BR = p.rng.Jitter(m.BR, p.jitter)
		m.L1I = p.rng.Jitter(m.L1I, p.jitter)
		m.L2I = p.rng.Jitter(m.L2I, p.jitter)
		m.LLC = p.rng.Jitter(m.LLC, p.jitter)
		m.ITLB = p.rng.Jitter(m.ITLB, p.jitter)
		m.DTLBLD = p.rng.Jitter(m.DTLBLD, p.jitter)
	}
	cat := p.classifier.Classify(w.Function)
	cycles := weight.Seconds() * p.hz

	k := key{w.Platform, cat}
	a := p.byCategory[k]
	if a == nil {
		a = &agg{}
		p.byCategory[k] = a
	}
	a.add(cycles, m, weight)

	fns := p.byFunction[w.Platform]
	if fns == nil {
		fns = map[string]*agg{}
		p.byFunction[w.Platform] = fns
	}
	fa := fns[w.Function]
	if fa == nil {
		fa = &agg{}
		fns[w.Function] = fa
	}
	fa.add(cycles, m, weight)
}

// TotalCPU returns the total profiled CPU time for a platform.
func (p *Profiler) TotalCPU(platform taxonomy.Platform) time.Duration {
	var total time.Duration
	for k, a := range p.byCategory {
		if k.platform == platform {
			total += a.cpu
		}
	}
	return total
}

// BroadBreakdown returns the fraction of a platform's cycles in each broad
// class (the content of Figure 3).
func (p *Profiler) BroadBreakdown(platform taxonomy.Platform) map[taxonomy.Broad]float64 {
	// Accumulate integer durations first: Duration addition is associative, so
	// the totals are identical regardless of map iteration order, and the
	// float conversion happens once per key.
	cpu := map[taxonomy.Broad]time.Duration{}
	for k, a := range p.byCategory {
		if k.platform == platform {
			cpu[taxonomy.BroadOf(k.category)] += a.cpu
		}
	}
	w := make(map[taxonomy.Broad]float64, len(cpu))
	for b, d := range cpu {
		w[b] = d.Seconds()
	}
	return stats.Fractions(w)
}

// CategoryBreakdown returns, for one platform and broad class, each fine
// category's fraction of that class's cycles (the content of Figures 4–6).
func (p *Profiler) CategoryBreakdown(platform taxonomy.Platform, broad taxonomy.Broad) map[taxonomy.Category]float64 {
	cpu := map[taxonomy.Category]time.Duration{}
	for k, a := range p.byCategory {
		if k.platform == platform && taxonomy.BroadOf(k.category) == broad {
			cpu[k.category] += a.cpu
		}
	}
	w := make(map[taxonomy.Category]float64, len(cpu))
	for c, d := range cpu {
		w[c] = d.Seconds()
	}
	return stats.Fractions(w)
}

// sortedKeys returns the byCategory keys for one platform in category order.
// The instruction and miss totals are float64, and float addition is not
// associative, so summing in Go's randomized map order would drift by an ulp
// between otherwise identical runs. A fixed order makes the stats bit-exact.
func (p *Profiler) sortedKeys(platform taxonomy.Platform) []key {
	var ks []key
	for k := range p.byCategory {
		if k.platform == platform {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].category < ks[j].category })
	return ks
}

// EachCategoryCPU invokes emit for every taxonomy category the platform has
// accumulated CPU time in, in ascending category order. It is the
// continuous-profiling hook: the obs sampling tick calls it to snapshot the
// live per-category cycle attribution, so the deterministic iteration order
// here directly determines the obs series creation order.
func (p *Profiler) EachCategoryCPU(platform taxonomy.Platform, emit func(cat taxonomy.Category, cpu time.Duration)) {
	for _, k := range p.sortedKeys(platform) {
		emit(k.category, p.byCategory[k].cpu)
	}
}

// PlatformStats returns the platform-wide microarchitecture statistics
// (one column of Table 6).
func (p *Profiler) PlatformStats(platform taxonomy.Platform) Stats {
	var total agg
	for _, k := range p.sortedKeys(platform) {
		a := p.byCategory[k]
		total.cpu += a.cpu
		total.instr += a.instr
		for i := range total.misses {
			total.misses[i] += a.misses[i]
		}
	}
	return total.stats(p.hz)
}

// BroadStats returns per-broad-class microarchitecture statistics (one
// platform's columns of Table 7).
func (p *Profiler) BroadStats(platform taxonomy.Platform) map[taxonomy.Broad]Stats {
	accs := map[taxonomy.Broad]*agg{}
	for _, k := range p.sortedKeys(platform) {
		a := p.byCategory[k]
		b := taxonomy.BroadOf(k.category)
		t := accs[b]
		if t == nil {
			t = &agg{}
			accs[b] = t
		}
		t.cpu += a.cpu
		t.instr += a.instr
		for i := range t.misses {
			t.misses[i] += a.misses[i]
		}
	}
	out := map[taxonomy.Broad]Stats{}
	for b, a := range accs {
		out[b] = a.stats(p.hz)
	}
	return out
}

// FunctionCPU is one row of a hot-function report.
type FunctionCPU struct {
	Function string
	Category taxonomy.Category
	CPU      time.Duration
}

// TopFunctions returns the n hottest leaf functions for a platform by CPU
// time, descending; ties break by name for determinism.
func (p *Profiler) TopFunctions(platform taxonomy.Platform, n int) []FunctionCPU {
	var rows []FunctionCPU
	for fn, a := range p.byFunction[platform] {
		rows = append(rows, FunctionCPU{Function: fn, Category: p.classifier.Classify(fn), CPU: a.cpu})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CPU != rows[j].CPU {
			return rows[i].CPU > rows[j].CPU
		}
		return rows[i].Function < rows[j].Function
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}
