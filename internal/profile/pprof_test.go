package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
	"time"

	"hyperprof/internal/protowire"
	"hyperprof/internal/taxonomy"
)

func TestExportPprofRoundTrip(t *testing.T) {
	p := New(nil, 1)
	p.Record(Work{Platform: taxonomy.Spanner, Function: "snappy.Compress", Duration: 30 * time.Millisecond, Micro: testMicro})
	p.Record(Work{Platform: taxonomy.Spanner, Function: "stubby.Call", Duration: 70 * time.Millisecond, Micro: testMicro})

	gz, err := p.ExportPprof(taxonomy.Spanner)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := protowire.Unmarshal(pprofProfile, raw)
	if err != nil {
		t.Fatal(err)
	}

	// String table: index 0 empty, functions present.
	strs := msg.Get(6)
	if len(strs) < 5 || len(strs[0].S) != 0 {
		t.Fatalf("string table = %d entries", len(strs))
	}
	lookup := func(idx uint64) string { return string(strs[idx].S) }

	// Two samples whose values sum to the recorded CPU time.
	samples := msg.Get(2)
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	var sum int64
	for _, sv := range samples {
		sum += int64(sv.M.Get(2)[0].I)
	}
	if sum != (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("sample values sum to %d", sum)
	}

	// Functions resolve through the string table; hottest first.
	fns := msg.Get(5)
	if len(fns) != 2 {
		t.Fatalf("functions = %d", len(fns))
	}
	if got := lookup(fns[0].M.Get(2)[0].I); got != "stubby.Call" {
		t.Fatalf("first function = %q", got)
	}

	// Sample type is cpu/nanoseconds.
	st := msg.Get(1)[0].M
	if lookup(st.Get(1)[0].I) != "cpu" || lookup(st.Get(2)[0].I) != "nanoseconds" {
		t.Fatal("sample type wrong")
	}

	// Category labels attached.
	label := samples[0].M.Get(3)[0].M
	if lookup(label.Get(1)[0].I) != "category" {
		t.Fatal("label key wrong")
	}
	if lookup(label.Get(2)[0].I) != string(taxonomy.RPC) {
		t.Fatalf("label value = %q", lookup(label.Get(2)[0].I))
	}

	// Duration covers the total.
	if got := int64(msg.Get(10)[0].I); got != sum {
		t.Fatalf("duration_nanos = %d", got)
	}
}

func TestExportPprofEmptyPlatform(t *testing.T) {
	p := New(nil, 1)
	if _, err := p.ExportPprof(taxonomy.BigQuery); err == nil {
		t.Fatal("empty profile exported")
	}
}
