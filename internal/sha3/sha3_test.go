package sha3

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// Reference digests generated with an independent implementation
// (CPython hashlib, which wraps the XKCP reference code).
var sha3_256Vectors = []struct {
	in  string
	out string
}{
	{"", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
	{"abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	{"The quick brown fox jumps over the lazy dog", "69070dda01975c8c120c3aada1b282394e7f032fa9cf32f4cb2259a0897dfc04"},
	// rate-1 bytes, exactly rate bytes, rate+1 bytes: padding edge cases.
	{strings.Repeat("a", 135), "8094bb53c44cfb1e67b7c30447f9a1c33696d2463ecc1d9c92538913392843c9"},
	{strings.Repeat("a", 136), "3fc5559f14db8e453a0a3091edbd2bc25e11528d81c66fa570a4efdcc2695ee1"},
	{strings.Repeat("a", 137), "f8d6846cedd2ccfadf15c5879ef95af724d799eed7391fb1c91f95344e738614"},
}

func TestSum256Vectors(t *testing.T) {
	for _, v := range sha3_256Vectors {
		got := Sum256([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Sum256(%.20q... len %d) = %x, want %s", v.in, len(v.in), got, v.out)
		}
	}
}

func TestSum256ByteRange(t *testing.T) {
	in := make([]byte, 256)
	for i := range in {
		in[i] = byte(i)
	}
	got := Sum256(in)
	want := "9b04c091da96b997afb8f2585d608aebe9c4a904f7d52c8f28c7e4d2dd9fba5f"
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("Sum256(0..255) = %x", got)
	}
}

func TestSum256Million(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	got := Sum256(bytes.Repeat([]byte("a"), 1000000))
	want := "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1"
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("million-a digest = %x", got)
	}
}

func TestOtherWidths(t *testing.T) {
	abc := []byte("abc")
	if got := Sum224(abc); hex.EncodeToString(got[:]) != "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf" {
		t.Errorf("Sum224 = %x", got)
	}
	if got := Sum384(abc); hex.EncodeToString(got[:]) != "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b298d88cea927ac7f539f1edf228376d25" {
		t.Errorf("Sum384 = %x", got)
	}
	if got := Sum512(abc); hex.EncodeToString(got[:]) != "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0" {
		t.Errorf("Sum512 = %x", got)
	}
}

func TestShake(t *testing.T) {
	s := NewShake128()
	s.Write([]byte("abc"))
	out := make([]byte, 32)
	s.Read(out)
	if hex.EncodeToString(out) != "5881092dd818bf5cf8a3ddb793fbcba74097d5c526a6d35f97b83351940f2cc8" {
		t.Errorf("shake128 = %x", out)
	}
	s2 := NewShake256()
	s2.Write([]byte("abc"))
	out2 := make([]byte, 64)
	s2.Read(out2)
	if hex.EncodeToString(out2) != "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739d5a15bef186a5386c75744c0527e1faa9f8726e462a12a4feb06bd8801e751e4" {
		t.Errorf("shake256 = %x", out2)
	}
}

func TestShakeIncrementalRead(t *testing.T) {
	// Reading 500 bytes one byte at a time must match one large read (spans
	// multiple squeeze permutations).
	a := NewShake128()
	a.Write([]byte("incremental"))
	big := make([]byte, 500)
	a.Read(big)

	b := NewShake128()
	b.Write([]byte("incremental"))
	small := make([]byte, 500)
	for i := range small {
		b.Read(small[i : i+1])
	}
	if !bytes.Equal(big, small) {
		t.Fatal("incremental squeeze differs from bulk squeeze")
	}
}

func TestIncrementalWrite(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789"), 100)
	whole := Sum256(data)
	h := New256()
	for i := 0; i < len(data); i += 7 {
		end := i + 7
		if end > len(data) {
			end = len(data)
		}
		h.Write(data[i:end])
	}
	if !bytes.Equal(h.Sum(nil), whole[:]) {
		t.Fatal("chunked write digest differs")
	}
}

func TestSumDoesNotFinalize(t *testing.T) {
	h := New256()
	h.Write([]byte("ab"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum not idempotent")
	}
	h.Write([]byte("c"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Fatal("Write after Sum gave wrong digest")
	}
}

func TestReset(t *testing.T) {
	h := New256()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Fatal("Reset did not clear state")
	}
}

func TestSizeAndBlockSize(t *testing.T) {
	cases := []struct {
		h interface {
			Size() int
			BlockSize() int
		}
		size, rate int
	}{
		{New224(), 28, 144}, {New256(), 32, 136}, {New384(), 48, 104}, {New512(), 64, 72},
	}
	for _, c := range cases {
		if c.h.Size() != c.size || c.h.BlockSize() != c.rate {
			t.Errorf("size=%d rate=%d, want %d/%d", c.h.Size(), c.h.BlockSize(), c.size, c.rate)
		}
	}
}

func TestChunkingInvariance(t *testing.T) {
	// Property: digest is independent of how input is split across writes.
	if err := quick.Check(func(data []byte, split uint8) bool {
		h1 := New256()
		h1.Write(data)
		cut := 0
		if len(data) > 0 {
			cut = int(split) % (len(data) + 1)
		}
		h2 := New256()
		h2.Write(data[:cut])
		h2.Write(data[cut:])
		return bytes.Equal(h1.Sum(nil), h2.Sum(nil))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctInputsDistinctDigests(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, v := range sha3_256Vectors {
		d := Sum256([]byte(v.in))
		if prev, dup := seen[d]; dup {
			t.Fatalf("collision between %q and %q", prev, v.in)
		}
		seen[d] = v.in
	}
}
