// Package sha3 implements the FIPS-202 SHA-3 hash family and the SHAKE
// extendable-output functions from first principles on top of the
// Keccak-f[1600] permutation. It is the hashing workload chained after
// protobuf serialization in the paper's Table 8 validation (the open-source
// SHA3 RTL accelerator of Schmidt & Izraelevitz), reimplemented here in
// software so the SoC model can execute it functionally.
package sha3

import (
	"encoding/binary"
	"hash"
)

// rc holds the 24 round constants of Keccak-f[1600].
var rc = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

func rotl64(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// keccakF1600 applies the full 24-round permutation to the state in place.
// State layout: a[x + 5*y] as in the FIPS-202 reference.
func keccakF1600(a *[25]uint64) {
	var b [25]uint64
	var c, d [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = rotl64(a[x+5*y], rotc[x][y])
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// iota
		a[0] ^= rc[round]
	}
}

// state is a Keccak sponge.
type state struct {
	a       [25]uint64
	buf     []byte // absorbed input not yet permuted; len < rate
	rate    int    // bytes absorbed/squeezed per permutation
	outLen  int    // digest size for the fixed-output functions
	dsbyte  byte   // domain separation + first padding bit
	squeeze []byte // pending squeeze output
}

func newState(rate, outLen int, dsbyte byte) *state {
	return &state{rate: rate, outLen: outLen, dsbyte: dsbyte}
}

// Write absorbs input into the sponge. It never returns an error.
func (s *state) Write(p []byte) (int, error) {
	if s.squeeze != nil {
		panic("sha3: Write after Sum/Read")
	}
	n := len(p)
	for len(p) > 0 {
		space := s.rate - len(s.buf)
		if space > len(p) {
			space = len(p)
		}
		s.buf = append(s.buf, p[:space]...)
		p = p[space:]
		if len(s.buf) == s.rate {
			s.absorb()
		}
	}
	return n, nil
}

func (s *state) absorb() {
	for i := 0; i < s.rate/8; i++ {
		s.a[i] ^= binary.LittleEndian.Uint64(s.buf[i*8:])
	}
	keccakF1600(&s.a)
	s.buf = s.buf[:0]
}

// pad applies the pad10*1 rule with the domain-separation byte and permutes.
func (s *state) pad() {
	block := make([]byte, s.rate)
	copy(block, s.buf)
	block[len(s.buf)] = s.dsbyte
	block[s.rate-1] |= 0x80
	s.buf = block
	s.absorb()
}

// squeezeBlock appends one rate-sized block of output.
func (s *state) squeezeBlock() {
	block := make([]byte, s.rate)
	for i := 0; i < s.rate/8; i++ {
		binary.LittleEndian.PutUint64(block[i*8:], s.a[i])
	}
	s.squeeze = append(s.squeeze, block...)
}

// Read squeezes len(p) bytes of output, finalizing the sponge on first call.
func (s *state) Read(p []byte) (int, error) {
	if s.squeeze == nil {
		s.pad()
		s.squeeze = []byte{}
		s.squeezeBlock()
	}
	n := len(p)
	for len(p) > 0 {
		if len(s.squeeze) == 0 {
			keccakF1600(&s.a)
			s.squeezeBlock()
		}
		c := copy(p, s.squeeze)
		s.squeeze = s.squeeze[c:]
		p = p[c:]
	}
	return n, nil
}

// Sum appends the digest to b without disturbing further writes on a copy.
func (s *state) Sum(b []byte) []byte {
	dup := *s
	dup.buf = append([]byte(nil), s.buf...)
	dup.squeeze = nil
	out := make([]byte, s.outLen)
	if _, err := dup.Read(out); err != nil {
		panic(err)
	}
	return append(b, out...)
}

// Reset returns the sponge to its initial state.
func (s *state) Reset() {
	s.a = [25]uint64{}
	s.buf = s.buf[:0]
	s.squeeze = nil
}

// Size returns the digest length in bytes.
func (s *state) Size() int { return s.outLen }

// BlockSize returns the sponge rate in bytes.
func (s *state) BlockSize() int { return s.rate }

const (
	dsSHA3  = 0x06
	dsShake = 0x1f
)

// New224 returns a SHA3-224 hash.
func New224() hash.Hash { return newState(144, 28, dsSHA3) }

// New256 returns a SHA3-256 hash.
func New256() hash.Hash { return newState(136, 32, dsSHA3) }

// New384 returns a SHA3-384 hash.
func New384() hash.Hash { return newState(104, 48, dsSHA3) }

// New512 returns a SHA3-512 hash.
func New512() hash.Hash { return newState(72, 64, dsSHA3) }

// Sum224 returns the SHA3-224 digest of data.
func Sum224(data []byte) [28]byte { var d [28]byte; sum(New224(), data, d[:]); return d }

// Sum256 returns the SHA3-256 digest of data.
func Sum256(data []byte) [32]byte { var d [32]byte; sum(New256(), data, d[:]); return d }

// Sum384 returns the SHA3-384 digest of data.
func Sum384(data []byte) [48]byte { var d [48]byte; sum(New384(), data, d[:]); return d }

// Sum512 returns the SHA3-512 digest of data.
func Sum512(data []byte) [64]byte { var d [64]byte; sum(New512(), data, d[:]); return d }

func sum(h hash.Hash, data, out []byte) {
	h.Write(data)
	copy(out, h.Sum(nil))
}

// ShakeHash is a SHAKE extendable-output function: absorb with Write, then
// squeeze arbitrarily many bytes with Read.
type ShakeHash interface {
	Write(p []byte) (int, error)
	Read(p []byte) (int, error)
	Reset()
}

// NewShake128 returns a SHAKE128 XOF.
func NewShake128() ShakeHash { return newState(168, 0, dsShake) }

// NewShake256 returns a SHAKE256 XOF.
func NewShake256() ShakeHash { return newState(136, 0, dsShake) }
