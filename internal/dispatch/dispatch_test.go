package dispatch_test

// The coordinator tests re-exec this test binary as the worker subprocess
// (the standard os/exec helper-process pattern): TestMain checks an
// environment variable before running any tests and, when set, serves the
// worker protocol on stdin/stdout instead. Misbehaviour is selected per-unit
// by the request kind, so one worker binary covers the crash, hang, garbage
// and application-error paths.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"hyperprof/internal/dispatch"
)

const workerEnv = "HYPERPROF_DISPATCH_TEST_WORKER"

func TestMain(m *testing.M) {
	switch os.Getenv(workerEnv) {
	case "":
		os.Exit(m.Run())
	case "serve":
		if err := dispatch.Serve(os.Stdin, os.Stdout, testHandler); err != nil {
			fmt.Fprintln(os.Stderr, "test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	default:
		os.Exit(7)
	}
}

// markerBody parameterizes the fail-once kinds: the first worker to see a
// given marker path misbehaves and records the fact on disk, so the
// respawned worker that retries the unit succeeds.
type markerBody struct {
	Marker string `json:"marker"`
	Value  string `json:"value"`
}

// tripped reports whether the marker was already planted, planting it if not.
func tripped(path string) bool {
	if _, err := os.Stat(path); err == nil {
		return true
	}
	os.WriteFile(path, []byte("x"), 0o644)
	return false
}

func testHandler(kind string, body json.RawMessage) (json.RawMessage, error) {
	var mb markerBody
	json.Unmarshal(body, &mb)
	switch kind {
	case "echo":
		return body, nil
	case "apperr":
		return nil, fmt.Errorf("application rejected %s", string(body))
	case "panic":
		panic("deterministic worker panic")
	case "exit":
		os.Exit(3)
	case "crash-once":
		if !tripped(mb.Marker) {
			os.Exit(3)
		}
		return json.Marshal(mb.Value)
	case "garbage-once":
		if !tripped(mb.Marker) {
			// Corrupt the protocol stream: the coordinator must reject the
			// malformed frame and recycle this worker, not hang or crash.
			os.Stdout.WriteString("this is not a length-prefixed frame")
			os.Exit(0)
		}
		return json.Marshal(mb.Value)
	case "hang":
		time.Sleep(time.Hour)
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

// pool builds a coordinator that re-execs this test binary as its worker.
func pool(t *testing.T, workers, retries int, timeout time.Duration) *dispatch.Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return &dispatch.Pool{
		Command:     []string{exe},
		Env:         []string{workerEnv + "=serve"},
		Workers:     workers,
		Retries:     retries,
		UnitTimeout: timeout,
	}
}

func raw(s string) json.RawMessage { return json.RawMessage(s) }

func TestPoolEchoInOrder(t *testing.T) {
	p := pool(t, 4, 1, 0)
	var units []dispatch.Unit
	for i := 0; i < 32; i++ {
		units = append(units, dispatch.Unit{Kind: "echo", Body: raw(fmt.Sprintf(`{"i":%d}`, i))})
	}
	got, err := p.Run(units)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(units) {
		t.Fatalf("got %d results, want %d", len(got), len(units))
	}
	for i, g := range got {
		if want := fmt.Sprintf(`{"i":%d}`, i); string(g) != want {
			t.Fatalf("unit %d: got %s, want %s", i, g, want)
		}
	}
}

func TestWorkerCrashMidUnitRetriesThenSucceeds(t *testing.T) {
	p := pool(t, 2, 2, 0)
	body, _ := json.Marshal(markerBody{Marker: t.TempDir() + "/crashed", Value: "recovered"})
	units := []dispatch.Unit{
		{Kind: "echo", Body: raw(`"a"`)},
		{Kind: "crash-once", Body: body},
		{Kind: "echo", Body: raw(`"b"`)},
	}
	got, err := p.Run(units)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[1]) != `"recovered"` {
		t.Fatalf("retried unit returned %s, want %q", got[1], "recovered")
	}
}

func TestWorkerCrashExhaustsRetriesDeterministically(t *testing.T) {
	p := pool(t, 4, 1, 0)
	// Units 1 and 3 always crash their worker; with dynamic scheduling either
	// may fail first, but the surfaced error must be unit 1's.
	units := []dispatch.Unit{
		{Kind: "echo", Body: raw(`"a"`)},
		{Kind: "exit", Body: raw(`{}`)},
		{Kind: "echo", Body: raw(`"b"`)},
		{Kind: "exit", Body: raw(`{}`)},
	}
	_, err := p.Run(units)
	if err == nil {
		t.Fatal("want error from crashing units")
	}
	if !strings.Contains(err.Error(), "unit 1") {
		t.Fatalf("error should name lowest failing unit 1: %v", err)
	}
}

func TestApplicationErrorNotRetried(t *testing.T) {
	p := pool(t, 1, 3, 0)
	marker := t.TempDir() + "/apperr"
	body, _ := json.Marshal(markerBody{Marker: marker})
	// If the pool (wrongly) retried application errors, the marker trick
	// would make a second attempt succeed; instead the first in-band error
	// must surface as-is.
	_, err := p.Run([]dispatch.Unit{{Kind: "apperr", Body: body}})
	if err == nil || !strings.Contains(err.Error(), "application rejected") {
		t.Fatalf("want in-band application error, got %v", err)
	}
}

func TestWorkerPanicIsInBandError(t *testing.T) {
	p := pool(t, 1, 0, 0)
	_, err := p.Run([]dispatch.Unit{{Kind: "panic", Body: raw(`{}`)}})
	if err == nil || !strings.Contains(err.Error(), "deterministic worker panic") {
		t.Fatalf("want panic surfaced as in-band error, got %v", err)
	}
}

func TestMalformedFrameRecyclesWorker(t *testing.T) {
	p := pool(t, 2, 2, 0)
	body, _ := json.Marshal(markerBody{Marker: t.TempDir() + "/garbled", Value: "clean"})
	units := []dispatch.Unit{
		{Kind: "garbage-once", Body: body},
		{Kind: "echo", Body: raw(`"after"`)},
	}
	got, err := p.Run(units)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != `"clean"` || string(got[1]) != `"after"` {
		t.Fatalf("got %s / %s after garbled frame recovery", got[0], got[1])
	}
}

func TestUnitTimeoutKillsUnitNotStudy(t *testing.T) {
	p := pool(t, 2, 1, 300*time.Millisecond)
	units := []dispatch.Unit{
		{Kind: "hang", Body: raw(`{}`)},
		{Kind: "echo", Body: raw(`"alive"`)},
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(units)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want timeout error for hanging unit")
		}
		if !strings.Contains(err.Error(), "unit 0") || !strings.Contains(err.Error(), "timed out") {
			t.Fatalf("want deterministic timeout error naming unit 0, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pool hung instead of timing out the unit")
	}
}

func TestSpawnFailureSurfaces(t *testing.T) {
	p := &dispatch.Pool{Command: []string{"/nonexistent-hyperprof-worker"}, Workers: 1, Retries: 1}
	_, err := p.Run([]dispatch.Unit{{Kind: "echo", Body: raw(`{}`)}})
	if err == nil {
		t.Fatal("want spawn error")
	}
	var pathErr *os.PathError
	if !strings.Contains(err.Error(), "start worker") && !errors.As(err, &pathErr) {
		t.Fatalf("unexpected spawn error: %v", err)
	}
}
