// Package dispatch fans work units out across worker subprocesses. It is
// the process-level counterpart of the experiments package's in-process
// worker pool: a coordinator (Pool) partitions a slice of serialized work
// units among `hyperprof -worker` subprocesses, each speaking a
// length-prefixed JSON job/result protocol over stdin/stdout, and merges the
// results back in unit order. Workers are stateless between units, so a
// crashed, hung or garbled worker is killed, respawned and its unit retried
// a bounded number of times; whatever still fails is reported with the error
// of the lowest-indexed failing unit, so the surfaced error is deterministic
// regardless of worker interleaving — the same contract the in-process
// runner keeps for goroutine workers.
//
// The protocol is deliberately minimal: every frame is a 4-byte big-endian
// length followed by that many bytes of JSON. Requests carry a unit id, a
// kind tag and an opaque body; responses echo the id and carry either a
// result body or an error string. Application errors (the handler returned
// an error) travel in-band as response frames and are never retried — a
// deterministic job failure must surface identically on every backend.
// Transport errors (worker exit, truncated or oversized frame, id mismatch,
// timeout) are environmental, so those trigger the respawn-and-retry path.
package dispatch

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// MaxFrame bounds a single protocol frame. A length prefix beyond this is a
// malformed frame (a worker writing garbage to stdout decodes as an absurd
// length long before it allocates anything), so the coordinator rejects it
// and recycles the worker instead of attempting the allocation.
const MaxFrame = 1 << 28 // 256 MiB

// request is one unit of work sent coordinator -> worker.
type request struct {
	ID   int             `json:"id"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// response is one completed unit sent worker -> coordinator. Exactly one of
// Body and Error is meaningful; Error carries application errors in-band so
// they are not confused with worker crashes.
type response struct {
	ID    int             `json:"id"`
	Body  json.RawMessage `json:"body,omitempty"`
	Error string          `json:"error,omitempty"`
}

// writeFrame marshals v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dispatch: marshal frame: %w", err)
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("dispatch: frame of %d bytes exceeds limit %d", len(data), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// readFrame reads one length-prefixed frame and unmarshals it into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return fmt.Errorf("dispatch: malformed frame length %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("dispatch: truncated frame: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("dispatch: malformed frame payload: %w", err)
	}
	return nil
}

// Handler executes one work unit inside a worker process and returns the
// serialized result.
type Handler func(kind string, body json.RawMessage) (json.RawMessage, error)

// Serve runs the worker side of the protocol: read request frames from r
// until EOF, execute each through h, and write a response frame per request
// to w. Handler errors — including recovered panics — are reported in-band
// as response frames, so a deterministic job failure is an answered unit,
// not a dead worker. Serve returns nil on clean EOF.
func Serve(r io.Reader, w io.Writer, h Handler) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		var req request
		if err := readFrame(br, &req); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		resp := response{ID: req.ID}
		body, err := serveOne(h, req)
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Body = body
		}
		if err := writeFrame(bw, resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// serveOne runs the handler with panics converted to in-band errors: a
// deterministic panic must fail the unit identically on every attempt rather
// than kill the worker and look like an environmental crash.
func serveOne(h Handler, req request) (body json.RawMessage, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("worker panic on unit %d: %v", req.ID, p)
		}
	}()
	return h(req.Kind, req.Body)
}

// Unit is one serialized work unit for a Pool run.
type Unit struct {
	// Kind routes the unit to a handler in the worker.
	Kind string
	// Body is the unit's opaque JSON payload.
	Body json.RawMessage
}

// Pool executes work units across worker subprocesses.
type Pool struct {
	// Command is the worker argv. Empty means "this executable with a
	// -worker argument", which is what cmd/hyperprof serves.
	Command []string
	// Env is appended to the inherited environment of every worker.
	Env []string
	// Workers bounds the concurrent subprocesses (<= 0: one per CPU is the
	// caller's job to resolve; the pool treats it as 1).
	Workers int
	// UnitTimeout bounds one unit's wall-clock time per attempt; on expiry
	// the worker is killed and the unit retried. 0 disables the timeout.
	UnitTimeout time.Duration
	// Retries is how many times a unit is re-dispatched after a transport
	// failure (crash, timeout, malformed frame). Application errors returned
	// by the handler are deterministic and never retried.
	Retries int
	// Stderr receives the workers' stderr (default os.Stderr).
	Stderr io.Writer
}

// workerProc is one live worker subprocess owned by a single pool worker
// goroutine, so its pipes are never shared.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Reader
}

// start spawns a fresh worker subprocess.
func (p *Pool) start() (*workerProc, error) {
	argv := p.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dispatch: resolve worker executable: %w", err)
		}
		argv = []string{exe, "-worker"}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	if len(p.Env) > 0 {
		cmd.Env = append(os.Environ(), p.Env...)
	}
	if p.Stderr != nil {
		cmd.Stderr = p.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dispatch: start worker %q: %w", argv[0], err)
	}
	return &workerProc{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)}, nil
}

// stop kills the worker and reaps it.
func (wp *workerProc) stop() {
	if wp == nil {
		return
	}
	wp.stdin.Close()
	wp.cmd.Process.Kill()
	wp.cmd.Wait()
}

// errTimeout marks an attempt abandoned by the per-unit timer.
var errTimeout = fmt.Errorf("unit timed out")

// do runs one request on the worker and waits for its response, bounded by
// timeout. On timeout the process is killed, which unblocks the pending
// read; the caller must discard the worker either way a transport error is
// returned.
func (wp *workerProc) do(req request, timeout time.Duration) (response, error) {
	if err := writeFrame(wp.stdin, req); err != nil {
		return response{}, fmt.Errorf("dispatch: send unit %d: %w", req.ID, err)
	}
	type outcome struct {
		resp response
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		var resp response
		err := readFrame(wp.out, &resp)
		ch <- outcome{resp, err}
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-timer:
		wp.cmd.Process.Kill()
		<-ch // the killed pipe errors out promptly; reap the reader
		return response{}, fmt.Errorf("dispatch: unit %d: %w after %v", req.ID, errTimeout, timeout)
	case o := <-ch:
		if o.err != nil {
			return response{}, fmt.Errorf("dispatch: unit %d: %w", req.ID, o.err)
		}
		if o.resp.ID != req.ID {
			return response{}, fmt.Errorf("dispatch: unit %d: response for unit %d out of order", req.ID, o.resp.ID)
		}
		return o.resp, nil
	}
}

// Run executes the units and returns their result bodies in unit order. If
// any unit ultimately fails — after bounded retries for transport failures,
// immediately for application errors — the error of the lowest-indexed
// failing unit is returned, so the reported failure is deterministic
// regardless of which worker hit it first. All units are attempted before
// Run returns: one poisoned unit does not abandon the rest of the study.
func (p *Pool) Run(units []Unit) ([]json.RawMessage, error) {
	results := make([]json.RawMessage, len(units))
	errs := make([]error, len(units))
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(units) {
		workers = len(units)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var proc *workerProc
			defer func() { proc.stop() }()
			for i := range next {
				results[i], errs[i] = p.runUnit(&proc, i, units[i])
			}
		}()
	}
	for i := range units {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dispatch: unit %d (%s): %w", i, units[i].Kind, err)
		}
	}
	return results, nil
}

// runUnit drives one unit through attempt/respawn cycles on the goroutine's
// worker process, replacing *proc as processes are recycled.
func (p *Pool) runUnit(proc **workerProc, id int, u Unit) (json.RawMessage, error) {
	retries := p.Retries
	if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if *proc == nil {
			fresh, err := p.start()
			if err != nil {
				// Spawning failed outright (bad command, fork limits);
				// retrying with the same command is still worth one shot.
				lastErr = err
				continue
			}
			*proc = fresh
		}
		resp, err := (*proc).do(request{ID: id, Kind: u.Kind, Body: u.Body}, p.UnitTimeout)
		if err != nil {
			// Transport failure: the worker is in an unknown state, so
			// recycle it and burn one retry.
			(*proc).stop()
			*proc = nil
			lastErr = err
			continue
		}
		if resp.Error != "" {
			// Application error: deterministic, never retried.
			return nil, fmt.Errorf("%s", resp.Error)
		}
		return resp.Body, nil
	}
	return nil, fmt.Errorf("%w (after %d attempts)", lastErr, retries+1)
}
