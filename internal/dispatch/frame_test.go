package dispatch

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{ID: 7, Kind: "safety/arm", Body: []byte(`{"seed":3}`)}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Kind != in.Kind || string(out.Body) != string(in.Body) {
		t.Fatalf("round trip mangled frame: %+v -> %+v", in, out)
	}
}

func TestFrameRejectsAbsurdLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var out request
	err := readFrame(bytes.NewReader(hdr[:]), &out)
	if err == nil || !strings.Contains(err.Error(), "malformed frame length") {
		t.Fatalf("want malformed-length error, got %v", err)
	}
}

func TestFrameRejectsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString(`{"id":1`) // far fewer than 100 bytes, then EOF
	var out request
	err := readFrame(&buf, &out)
	if err == nil || !strings.Contains(err.Error(), "truncated frame") {
		t.Fatalf("want truncated-frame error, got %v", err)
	}
}

func TestFrameRejectsGarbagePayload(t *testing.T) {
	var buf bytes.Buffer
	payload := "not json at all, definitely"
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.WriteString(payload)
	var out request
	err := readFrame(&buf, &out)
	if err == nil || !strings.Contains(err.Error(), "malformed frame payload") {
		t.Fatalf("want malformed-payload error, got %v", err)
	}
}

func TestServeAnswersUntilEOF(t *testing.T) {
	var in, out bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := writeFrame(&in, request{ID: i, Kind: "echo", Body: []byte(`"x"`)}); err != nil {
			t.Fatal(err)
		}
	}
	echo := Handler(func(kind string, body json.RawMessage) (json.RawMessage, error) { return body, nil })
	if err := Serve(&in, &out, echo); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var resp response
		if err := readFrame(&out, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID != i || string(resp.Body) != `"x"` || resp.Error != "" {
			t.Fatalf("response %d wrong: %+v", i, resp)
		}
	}
}
