package soc

import (
	"fmt"
	"math"
	"time"

	"hyperprof/internal/compress"
	"hyperprof/internal/model"
	"hyperprof/internal/sha3"
	"hyperprof/internal/sim"
)

// This file extends the §6.4 validation along the paper's stated future
// work ("additional synthetic data ... careful identification of common
// sequential patterns"): a three-accelerator chain that serializes each
// message, block-compresses the wire bytes (the paper's biggest datacenter
// tax), and hashes the compressed block. All three stages run real code —
// protowire, compress, sha3 — and the result digests are verified against a
// serial reference.

// Chain3Config extends the SoC cost model with the compression stage.
type Chain3Config struct {
	SoC Config
	// CompressCPUNsPerByte is the CPU cost of block compression.
	CompressCPUNsPerByte float64
	// CompressAccelSpeedup/Setup parameterize the compression accelerator
	// (modeled on the IBM z15 on-chip compression unit: large speedup,
	// small setup).
	CompressAccelSpeedup float64
	CompressAccelSetup   time.Duration
}

// DefaultChain3Config returns the calibrated three-stage setup.
func DefaultChain3Config() Chain3Config {
	return Chain3Config{
		SoC:                  DefaultConfig(),
		CompressCPUNsPerByte: 6.5,
		CompressAccelSpeedup: 40,
		CompressAccelSetup:   25 * time.Microsecond,
	}
}

// Chain3Result is the outcome of the extended validation.
type Chain3Result struct {
	// Measured phase times from the serial run.
	OtherCPU    time.Duration
	ProtoCPU    time.Duration
	CompressCPU time.Duration
	SHA3CPU     time.Duration
	// Measured chained execution and the model's estimate.
	MeasuredChained time.Duration
	ModeledChained  time.Duration
	DiffFrac        float64
	// Compression facts (real codec).
	WireBytes       int64
	CompressedBytes int64
	Ratio           float64
	Messages        int
}

// ValidateChain3 runs the serial and chained three-stage benchmarks and
// compares the measurement against the chained model (Eqs 9-12 with C = 3).
func ValidateChain3(seed uint64, n int, cfg Chain3Config) (*Chain3Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("soc: corpus size must be positive")
	}
	corpus := Corpus(seed, n)
	res := &Chain3Result{Messages: n}

	// Serial reference on one core: init, serialize, compress, hash.
	k := sim.New()
	s := New(k, cfg.SoC)
	wires := make([][]byte, n)
	blocks := make([][]byte, n)
	refDigests := make([][32]byte, n)
	k.Go("chain3-serial", func(p *sim.Proc) {
		p.Acquire(s.cores, 1)
		defer s.cores.Release(1)
		start := p.Now()
		for _, m := range corpus {
			p.Sleep(s.otherCPU(m.Size()))
		}
		res.OtherCPU = p.Now() - start

		start = p.Now()
		for i, m := range corpus {
			wires[i] = m.Marshal(nil)
			res.WireBytes += int64(len(wires[i]))
			p.Sleep(s.protoCPU(len(wires[i])))
		}
		res.ProtoCPU = p.Now() - start

		start = p.Now()
		for i, w := range wires {
			enc, err := compress.Encode(w)
			if err != nil {
				panic(err)
			}
			blocks[i] = enc
			res.CompressedBytes += int64(len(enc))
			p.Sleep(time.Duration(cfg.CompressCPUNsPerByte * float64(len(w))))
		}
		res.CompressCPU = p.Now() - start

		start = p.Now()
		for i, blk := range blocks {
			refDigests[i] = sha3.Sum256(blk)
			p.Sleep(s.sha3CPU(len(blk)))
		}
		res.SHA3CPU = p.Now() - start
	})
	k.Run()
	if res.WireBytes > 0 {
		res.Ratio = float64(res.WireBytes) / float64(res.CompressedBytes)
	}

	// Chained run: init completes, then the three accelerators pipeline.
	k2 := sim.New()
	s2 := &SoC{k: k2, cfg: cfg.SoC, cores: sim.NewResource(k2, "soc/cores", 4)}
	protoQ := sim.NewQueue[*Item](k2)
	compQ := sim.NewQueue[*Item](k2)
	sha3Q := sim.NewQueue[*Item](k2)
	initDone := sim.NewSignal(k2)
	gotDigests := make([][32]byte, 0, n)
	var start, end time.Duration

	k2.Go("chain3-init", func(p *sim.Proc) {
		p.Acquire(s2.cores, 1)
		start = p.Now()
		for _, m := range corpus {
			p.Sleep(s2.otherCPU(m.Size()))
			protoQ.Put(&Item{Msg: m})
		}
		s2.cores.Release(1)
		initDone.Fire()
	})
	k2.Go("chain3-proto", func(p *sim.Proc) {
		p.Wait(initDone)
		p.Acquire(s2.cores, 1)
		defer s2.cores.Release(1)
		p.Sleep(cfg.SoC.ProtoAccelSetup)
		for i := 0; i < n; i++ {
			it := sim.GetQueue(p, protoQ)
			it.Wire = it.Msg.Marshal(nil)
			p.Sleep(time.Duration(float64(s2.protoCPU(len(it.Wire))) / cfg.SoC.ProtoAccelSpeedup))
			p.Sleep(cfg.SoC.HandoffOverhead)
			compQ.Put(it)
		}
	})
	k2.Go("chain3-compress", func(p *sim.Proc) {
		p.Wait(initDone)
		p.Acquire(s2.cores, 1)
		defer s2.cores.Release(1)
		p.Sleep(cfg.CompressAccelSetup)
		for i := 0; i < n; i++ {
			it := sim.GetQueue(p, compQ)
			enc, err := compress.Encode(it.Wire)
			if err != nil {
				panic(err)
			}
			cpuCost := time.Duration(cfg.CompressCPUNsPerByte * float64(len(it.Wire)))
			p.Sleep(time.Duration(float64(cpuCost) / cfg.CompressAccelSpeedup))
			p.Sleep(cfg.SoC.HandoffOverhead)
			it.Wire = enc
			sha3Q.Put(it)
		}
	})
	k2.Go("chain3-sha3", func(p *sim.Proc) {
		p.Wait(initDone)
		p.Acquire(s2.cores, 1)
		defer s2.cores.Release(1)
		p.Sleep(cfg.SoC.SHA3AccelSetup)
		for i := 0; i < n; i++ {
			it := sim.GetQueue(p, sha3Q)
			p.Sleep(time.Duration(float64(s2.sha3CPU(len(it.Wire))) / cfg.SoC.SHA3AccelSpeedup))
			gotDigests = append(gotDigests, sha3.Sum256(it.Wire))
		}
		end = p.Now()
	})
	k2.Run()
	if k2.Live() != 0 {
		return nil, fmt.Errorf("soc: chain3 pipeline deadlocked with %d live procs", k2.Live())
	}
	res.MeasuredChained = end - start

	// Verify digests against the serial reference.
	if len(gotDigests) != n {
		return nil, fmt.Errorf("soc: chain3 produced %d digests, want %d", len(gotDigests), n)
	}
	for i := range refDigests {
		if gotDigests[i] != refDigests[i] {
			return nil, fmt.Errorf("soc: chain3 digest %d differs from serial reference", i)
		}
	}

	// Model the three-component chain.
	sys := model.System{
		CPUTime: (res.OtherCPU + res.ProtoCPU + res.CompressCPU + res.SHA3CPU).Seconds(),
		F:       1,
		Components: []model.Component{
			{Name: "proto-ser", Time: res.ProtoCPU.Seconds(), Accelerated: true,
				Speedup: cfg.SoC.ProtoAccelSpeedup, Setup: cfg.SoC.ProtoAccelSetup.Seconds(), Chained: true},
			{Name: "compress", Time: res.CompressCPU.Seconds(), Accelerated: true,
				Speedup: cfg.CompressAccelSpeedup, Setup: cfg.CompressAccelSetup.Seconds(), Chained: true},
			{Name: "sha3", Time: res.SHA3CPU.Seconds(), Accelerated: true,
				Speedup: cfg.SoC.SHA3AccelSpeedup, Setup: cfg.SoC.SHA3AccelSetup.Seconds(), Chained: true},
		},
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	res.ModeledChained = time.Duration(sys.AcceleratedE2E() * float64(time.Second))
	if res.MeasuredChained > 0 {
		res.DiffFrac = math.Abs(float64(res.ModeledChained-res.MeasuredChained)) / float64(res.MeasuredChained)
	}
	return res, nil
}
