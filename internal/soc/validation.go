package soc

import (
	"fmt"
	"math"
	"time"

	"hyperprof/internal/model"
	"hyperprof/internal/sim"
)

// Table8 holds the model-validation results in the paper's Table 8 layout:
// the measured SoC parameters, the measured chained execution, and the
// model's estimate.
type Table8 struct {
	// Measured SoC results (the table's upper half).
	ProtoSubTime time.Duration // t_sub for protobuf serialization
	ProtoSpeedup float64       // s_sub
	ProtoSetup   time.Duration // t_setup
	SHA3SubTime  time.Duration
	SHA3Speedup  float64
	SHA3Setup    time.Duration
	NonAccelCPU  time.Duration // t_sub of the unaccelerated component
	// B_i and t_dep are zero: everything fits on-chip (§6.4).
	MeasuredChained time.Duration

	// Model-estimated result (the table's lower half).
	ModeledChained time.Duration

	// DiffFrac is |modeled-measured|/measured (the paper reports 6.1%).
	DiffFrac float64

	// Corpus facts for the report.
	Messages  int
	WireBytes int64
}

// Validate reproduces the §6.4 experiment: generate a fleet-representative
// corpus, run the three SoC benchmarks, feed the measured parameters into
// the analytical chained model (Eqs 9–12), and compare against the measured
// chained execution. It also cross-checks that the chained pipeline's SHA3
// digests are identical to the unaccelerated run's (the software is real).
func Validate(seed uint64, n int, cfg Config) (*Table8, error) {
	if n <= 0 {
		return nil, fmt.Errorf("soc: corpus size must be positive")
	}
	corpus := Corpus(seed, n)

	k := sim.New()
	s := New(k, cfg)
	base := s.MeasureUnaccelerated(corpus)
	accel := s.MeasureAccelerated(base)
	chained := s.MeasureChained(corpus)

	if len(chained.Digests) != len(base.Digests) {
		return nil, fmt.Errorf("soc: chained produced %d digests, want %d", len(chained.Digests), len(base.Digests))
	}
	for i := range base.Digests {
		if chained.Digests[i] != base.Digests[i] {
			return nil, fmt.Errorf("soc: digest %d differs between chained and unaccelerated runs", i)
		}
	}

	sys := model.System{
		CPUTime: (base.OtherCPU + base.ProtoCPU + base.SHA3CPU).Seconds(),
		DepTime: 0, // everything fits on-chip; no IO
		F:       1,
		Components: []model.Component{
			{
				Name:        "proto-ser",
				Time:        base.ProtoCPU.Seconds(),
				Accelerated: true,
				Speedup:     accel.ProtoSpeedup,
				Setup:       accel.ProtoSetup.Seconds(),
				Chained:     true,
			},
			{
				Name:        "sha3",
				Time:        base.SHA3CPU.Seconds(),
				Accelerated: true,
				Speedup:     accel.SHA3Speedup,
				Setup:       accel.SHA3Setup.Seconds(),
				Chained:     true,
			},
		},
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	modeled := time.Duration(sys.AcceleratedE2E() * float64(time.Second))

	t8 := &Table8{
		ProtoSubTime:    base.ProtoCPU,
		ProtoSpeedup:    accel.ProtoSpeedup,
		ProtoSetup:      accel.ProtoSetup,
		SHA3SubTime:     base.SHA3CPU,
		SHA3Speedup:     accel.SHA3Speedup,
		SHA3Setup:       accel.SHA3Setup,
		NonAccelCPU:     base.OtherCPU,
		MeasuredChained: chained.E2E,
		ModeledChained:  modeled,
		Messages:        n,
		WireBytes:       base.Bytes,
	}
	if chained.E2E > 0 {
		t8.DiffFrac = math.Abs(float64(modeled-chained.E2E)) / float64(chained.E2E)
	}
	return t8, nil
}
