// Package soc models the heterogeneous RISC-V system-on-chip of the paper's
// §6.4 validation (a Chipyard SoC with a protobuf-serialization accelerator
// and a SHA3 accelerator, simulated there with FireSim): three cores, two
// accelerators, and the three measurement benchmarks — unaccelerated,
// accelerated, and software-chained execution over a fleet-representative
// protobuf corpus. The software under test is real: messages are serialized
// with internal/protowire and hashed with internal/sha3, and the chained
// pipeline's digests are checked against direct computation. Only cycle
// timing is a cost model rather than RTL.
package soc

import (
	"fmt"
	"time"

	"hyperprof/internal/protowire"
	"hyperprof/internal/sha3"
	"hyperprof/internal/sim"
)

// Config is the SoC cost model. Per-byte CPU costs are calibrated so a
// default corpus lands near Table 8's measured magnitudes; accelerator
// speedups and setups are the paper's measured values.
type Config struct {
	// CPU costs for running each phase on a Rocket-class in-order core.
	ProtoCPUNsPerByte float64
	SHA3CPUNsPerByte  float64
	// OtherCPUNsPerByte covers the unaccelerated component: protobuf
	// message initialization, threading and measurement overheads.
	OtherCPUNsPerByte float64
	// PerMsgOverhead is a fixed unaccelerated cost per message.
	PerMsgOverhead time.Duration

	// Accelerator parameters (Table 8: 31x / 51.3x, 1488.9µs / 4.1µs).
	ProtoAccelSpeedup float64
	SHA3AccelSpeedup  float64
	ProtoAccelSetup   time.Duration
	SHA3AccelSetup    time.Duration

	// HandoffOverhead is the per-element cost of the software chain's
	// queue/thread handoff between accelerators.
	HandoffOverhead time.Duration
}

// DefaultConfig returns the Table 8 calibration.
func DefaultConfig() Config {
	return Config{
		ProtoCPUNsPerByte: 4.3,
		SHA3CPUNsPerByte:  9.3,
		OtherCPUNsPerByte: 38,
		PerMsgOverhead:    2 * time.Microsecond,
		ProtoAccelSpeedup: 31,
		SHA3AccelSpeedup:  51.3,
		ProtoAccelSetup:   time.Duration(1488.9 * float64(time.Microsecond)),
		SHA3AccelSetup:    time.Duration(4.1 * float64(time.Microsecond)),
		// Chained handoffs use pipeline-FIFO-style queues rather than
		// shared-memory synchronization (§6.3.2), so the per-element cost
		// is tens of nanoseconds, not microseconds.
		HandoffOverhead: 50 * time.Nanosecond,
	}
}

// SoC is the simulated system-on-chip.
type SoC struct {
	k     *sim.Kernel
	cfg   Config
	cores *sim.Resource
}

// New creates a SoC with three cores on the given kernel (one per chain
// stage, as in the paper's validation platform).
func New(k *sim.Kernel, cfg Config) *SoC {
	return &SoC{k: k, cfg: cfg, cores: sim.NewResource(k, "soc/cores", 3)}
}

// Item is one workload element: a message and its serialized form.
type Item struct {
	Msg  *protowire.Message
	Wire []byte
}

// Corpus generates a deterministic fleet-representative protobuf corpus of n
// messages.
func Corpus(seed uint64, n int) []*protowire.Message {
	gen := protowire.NewGenerator(seed, protowire.DefaultGenConfig())
	return gen.Corpus(3, n)
}

func (s *SoC) protoCPU(bytes int) time.Duration {
	return time.Duration(s.cfg.ProtoCPUNsPerByte * float64(bytes))
}

func (s *SoC) sha3CPU(bytes int) time.Duration {
	return time.Duration(s.cfg.SHA3CPUNsPerByte * float64(bytes))
}

func (s *SoC) otherCPU(bytes int) time.Duration {
	return time.Duration(s.cfg.OtherCPUNsPerByte*float64(bytes)) + s.cfg.PerMsgOverhead
}

// Unaccelerated is the first benchmark: on one core, initialize and
// serialize every message, then hash every serialized message. It returns
// the three phase times (t_sub values) and the real digests.
type Unaccelerated struct {
	OtherCPU time.Duration
	ProtoCPU time.Duration
	SHA3CPU  time.Duration
	Wire     [][]byte
	Digests  [][32]byte
	Bytes    int64
}

// MeasureUnaccelerated runs the unaccelerated benchmark to completion.
func (s *SoC) MeasureUnaccelerated(corpus []*protowire.Message) *Unaccelerated {
	out := &Unaccelerated{}
	s.k.Go("soc-unaccel", func(p *sim.Proc) {
		p.Acquire(s.cores, 1)
		defer s.cores.Release(1)
		// Phase 0: message initialization and benchmark overhead.
		start := p.Now()
		sizes := make([]int, len(corpus))
		for i, m := range corpus {
			sizes[i] = m.Size()
			p.Sleep(s.otherCPU(sizes[i]))
		}
		out.OtherCPU = p.Now() - start

		// Phase 1: serialize (real encoding).
		start = p.Now()
		for i, m := range corpus {
			wire := m.Marshal(nil)
			out.Wire = append(out.Wire, wire)
			out.Bytes += int64(len(wire))
			p.Sleep(s.protoCPU(len(wire)))
			_ = i
		}
		out.ProtoCPU = p.Now() - start

		// Phase 2: hash (real Keccak).
		start = p.Now()
		for _, w := range out.Wire {
			out.Digests = append(out.Digests, sha3.Sum256(w))
			p.Sleep(s.sha3CPU(len(w)))
		}
		out.SHA3CPU = p.Now() - start
	})
	s.k.Run()
	return out
}

// Accelerated is the second benchmark: each phase offloaded to its
// accelerator (synchronously), yielding measured speedups and setup times.
type Accelerated struct {
	ProtoTime    time.Duration // accelerated serialization phase (incl. setup)
	SHA3Time     time.Duration
	ProtoSpeedup float64 // measured against the CPU phase
	SHA3Speedup  float64
	ProtoSetup   time.Duration
	SHA3Setup    time.Duration
}

// MeasureAccelerated runs the accelerated benchmark given the unaccelerated
// baseline measurement.
func (s *SoC) MeasureAccelerated(base *Unaccelerated) *Accelerated {
	out := &Accelerated{ProtoSetup: s.cfg.ProtoAccelSetup, SHA3Setup: s.cfg.SHA3AccelSetup}
	s.k.Go("soc-accel", func(p *sim.Proc) {
		p.Acquire(s.cores, 1)
		defer s.cores.Release(1)
		start := p.Now()
		p.Sleep(s.cfg.ProtoAccelSetup)
		for _, w := range base.Wire {
			p.Sleep(time.Duration(float64(s.protoCPU(len(w))) / s.cfg.ProtoAccelSpeedup))
		}
		out.ProtoTime = p.Now() - start

		start = p.Now()
		p.Sleep(s.cfg.SHA3AccelSetup)
		for _, w := range base.Wire {
			p.Sleep(time.Duration(float64(s.sha3CPU(len(w))) / s.cfg.SHA3AccelSpeedup))
		}
		out.SHA3Time = p.Now() - start
	})
	s.k.Run()
	if d := out.ProtoTime - out.ProtoSetup; d > 0 {
		out.ProtoSpeedup = float64(base.ProtoCPU) / float64(d)
	}
	if d := out.SHA3Time - out.SHA3Setup; d > 0 {
		out.SHA3Speedup = float64(base.SHA3CPU) / float64(d)
	}
	return out
}

// Chained is the third benchmark: initialization, the protobuf accelerator
// and the SHA3 accelerator run as a three-stage pipeline on separate cores,
// elements flowing through queues — software-centric accelerator chaining.
type Chained struct {
	E2E     time.Duration
	Digests [][32]byte
}

// MeasureChained runs the chained benchmark over the corpus. Mirroring the
// paper's benchmark construction ("we first serialized identical fleet-wide
// representative protobuf messages then computed their SHA3 hash"), the
// unaccelerated initialization phase completes before the accelerator chain
// begins; the two accelerators then pipeline element-by-element on parallel
// threads, with their setups overlapping each other and each handoff paying
// a thread/queue synchronization cost.
func (s *SoC) MeasureChained(corpus []*protowire.Message) *Chained {
	out := &Chained{}
	protoQ := sim.NewQueue[*Item](s.k)
	sha3Q := sim.NewQueue[*Item](s.k)
	initDone := sim.NewSignal(s.k)
	done := sim.NewBarrier(s.k, 1)
	var start, end time.Duration
	n := len(corpus)

	// Phase 0: initialization (the unaccelerated component).
	s.k.Go("soc-chain-init", func(p *sim.Proc) {
		p.Acquire(s.cores, 1)
		start = p.Now()
		for _, m := range corpus {
			p.Sleep(s.otherCPU(m.Size()))
			protoQ.Put(&Item{Msg: m})
		}
		s.cores.Release(1)
		initDone.Fire()
	})
	// Stage 1: protobuf serialization accelerator.
	s.k.Go("soc-chain-proto", func(p *sim.Proc) {
		p.Wait(initDone)
		p.Acquire(s.cores, 1)
		defer s.cores.Release(1)
		p.Sleep(s.cfg.ProtoAccelSetup)
		for i := 0; i < n; i++ {
			it := sim.GetQueue(p, protoQ)
			it.Wire = it.Msg.Marshal(nil)
			p.Sleep(time.Duration(float64(s.protoCPU(len(it.Wire))) / s.cfg.ProtoAccelSpeedup))
			p.Sleep(s.cfg.HandoffOverhead)
			sha3Q.Put(it)
		}
	})
	// Stage 2: SHA3 accelerator (sets up concurrently with stage 1).
	s.k.Go("soc-chain-sha3", func(p *sim.Proc) {
		p.Wait(initDone)
		p.Acquire(s.cores, 1)
		defer s.cores.Release(1)
		p.Sleep(s.cfg.SHA3AccelSetup)
		for i := 0; i < n; i++ {
			it := sim.GetQueue(p, sha3Q)
			p.Sleep(time.Duration(float64(s.sha3CPU(len(it.Wire))) / s.cfg.SHA3AccelSpeedup))
			out.Digests = append(out.Digests, sha3.Sum256(it.Wire))
		}
		end = p.Now()
		done.Done()
	})
	s.k.Run()
	if done.Pending() != 0 {
		panic(fmt.Sprintf("soc: chained pipeline deadlocked with %d live procs", s.k.Live()))
	}
	out.E2E = end - start
	return out
}
