package soc

import (
	"testing"
	"time"

	"hyperprof/internal/sha3"
	"hyperprof/internal/sim"
)

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(5, 50)
	b := Corpus(5, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("corpus size")
	}
	for i := range a {
		if string(a[i].Marshal(nil)) != string(b[i].Marshal(nil)) {
			t.Fatalf("corpus diverged at %d", i)
		}
	}
}

func TestUnacceleratedPhases(t *testing.T) {
	corpus := Corpus(1, 60)
	s := New(sim.New(), DefaultConfig())
	base := s.MeasureUnaccelerated(corpus)
	if base.OtherCPU <= 0 || base.ProtoCPU <= 0 || base.SHA3CPU <= 0 {
		t.Fatalf("phases: %+v", base)
	}
	// Calibration shape: SHA3 > proto (9.3 vs 4.3 ns/B) and other dominates.
	if base.SHA3CPU <= base.ProtoCPU {
		t.Errorf("sha3 %v <= proto %v", base.SHA3CPU, base.ProtoCPU)
	}
	if base.OtherCPU <= base.SHA3CPU+base.ProtoCPU {
		t.Errorf("other %v should dominate accelerable phases", base.OtherCPU)
	}
	if len(base.Digests) != 60 || len(base.Wire) != 60 {
		t.Fatal("missing outputs")
	}
	// Digests are real.
	for i, w := range base.Wire {
		if sha3.Sum256(w) != base.Digests[i] {
			t.Fatalf("digest %d not a real SHA3", i)
		}
	}
}

func TestAcceleratedSpeedupsMatchConfig(t *testing.T) {
	corpus := Corpus(2, 60)
	k := sim.New()
	s := New(k, DefaultConfig())
	base := s.MeasureUnaccelerated(corpus)
	acc := s.MeasureAccelerated(base)
	if acc.ProtoSpeedup < 30 || acc.ProtoSpeedup > 32 {
		t.Errorf("proto speedup = %.1f, want ~31", acc.ProtoSpeedup)
	}
	if acc.SHA3Speedup < 50 || acc.SHA3Speedup > 53 {
		t.Errorf("sha3 speedup = %.1f, want ~51.3", acc.SHA3Speedup)
	}
	if acc.ProtoSetup <= acc.SHA3Setup {
		t.Error("proto setup should dominate sha3 setup")
	}
}

func TestChainedDigestsMatchUnaccelerated(t *testing.T) {
	corpus := Corpus(3, 40)
	k := sim.New()
	s := New(k, DefaultConfig())
	base := s.MeasureUnaccelerated(corpus)
	ch := s.MeasureChained(corpus)
	if len(ch.Digests) != len(base.Digests) {
		t.Fatalf("digests = %d", len(ch.Digests))
	}
	for i := range base.Digests {
		if ch.Digests[i] != base.Digests[i] {
			t.Fatalf("digest %d mismatch", i)
		}
	}
	if ch.E2E <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestChainedBeatsFullySerializedAcceleration(t *testing.T) {
	// The chain pays the largest setup once and pipelines the two
	// accelerators; it must beat paying both setups and both accelerated
	// phases back to back.
	// Sized so the accelerable time exceeds the proto accelerator's setup,
	// as in the paper's corpus (1.63ms of accelerable CPU vs 1.49ms setup).
	corpus := Corpus(4, 400)
	k := sim.New()
	s := New(k, DefaultConfig())
	base := s.MeasureUnaccelerated(corpus)
	acc := s.MeasureAccelerated(base)
	ch := s.MeasureChained(corpus)
	serialAccel := base.OtherCPU + acc.ProtoTime + acc.SHA3Time
	if ch.E2E >= serialAccel {
		t.Fatalf("chained %v >= serialized accelerated %v", ch.E2E, serialAccel)
	}
	// And it beats the pure-CPU serial run, as in Table 8 (6,075.7µs
	// chained vs 6,579.5µs serial).
	serialCPU := base.OtherCPU + base.ProtoCPU + base.SHA3CPU
	if ch.E2E >= serialCPU {
		t.Fatalf("chained %v >= serial CPU %v", ch.E2E, serialCPU)
	}
}

func TestValidateTable8(t *testing.T) {
	t8, err := Validate(7, 400, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions mirroring Table 8.
	if t8.SHA3SubTime <= t8.ProtoSubTime {
		t.Error("SHA3 compute should exceed serialization compute")
	}
	if t8.NonAccelCPU <= 2*(t8.ProtoSubTime+t8.SHA3SubTime) {
		t.Errorf("non-accel CPU %v should be several times the accelerable time", t8.NonAccelCPU)
	}
	if t8.ProtoSpeedup < 25 || t8.SHA3Speedup < 45 {
		t.Errorf("speedups %.1f / %.1f", t8.ProtoSpeedup, t8.SHA3Speedup)
	}
	// The paper reports a 6.1% model-vs-measured difference; we accept the
	// same order (under 15%).
	if t8.DiffFrac > 0.15 {
		t.Errorf("model vs measured difference %.1f%%, want < 15%%", t8.DiffFrac*100)
	}
	if t8.ModeledChained <= 0 || t8.MeasuredChained <= 0 {
		t.Fatalf("times: %+v", t8)
	}
}

func TestValidateDeterministic(t *testing.T) {
	a, err := Validate(9, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Validate(9, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasuredChained != b.MeasuredChained || a.ModeledChained != b.ModeledChained {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.MeasuredChained, a.ModeledChained, b.MeasuredChained, b.ModeledChained)
	}
}

func TestValidateRejectsEmptyCorpus(t *testing.T) {
	if _, err := Validate(1, 0, DefaultConfig()); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestChainedSetupOverlap(t *testing.T) {
	// The proto accelerator's large setup overlaps stage-0 initialization;
	// e2e should be far less than setup + serial time.
	cfg := DefaultConfig()
	cfg.ProtoAccelSetup = 10 * time.Millisecond
	corpus := Corpus(11, 40)
	k := sim.New()
	s := New(k, cfg)
	base := s.MeasureUnaccelerated(corpus)
	ch := s.MeasureChained(corpus)
	serialPlusSetup := base.OtherCPU + base.ProtoCPU + base.SHA3CPU + cfg.ProtoAccelSetup
	if ch.E2E >= serialPlusSetup {
		t.Fatalf("no pipeline overlap: %v >= %v", ch.E2E, serialPlusSetup)
	}
}
