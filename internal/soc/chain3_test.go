package soc

import (
	"testing"
	"time"
)

func TestValidateChain3(t *testing.T) {
	res, err := ValidateChain3(5, 300, DefaultChain3Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 300 {
		t.Fatalf("messages = %d", res.Messages)
	}
	// All four phases consumed time.
	for name, d := range map[string]time.Duration{
		"other": res.OtherCPU, "proto": res.ProtoCPU,
		"compress": res.CompressCPU, "sha3": res.SHA3CPU,
	} {
		if d <= 0 {
			t.Errorf("%s phase has no time", name)
		}
	}
	// Real compression happened and helped.
	if res.Ratio <= 1.0 {
		t.Errorf("compression ratio = %.2f", res.Ratio)
	}
	if res.CompressedBytes >= res.WireBytes {
		t.Errorf("compressed %d >= wire %d", res.CompressedBytes, res.WireBytes)
	}
	// SHA3 hashed the compressed blocks: its time is below the 2-stage
	// version's proportionally to the ratio.
	if res.SHA3CPU >= time.Duration(float64(res.WireBytes)*DefaultChain3Config().SoC.SHA3CPUNsPerByte) {
		t.Error("sha3 phase did not shrink with compression")
	}
	// Model tracks measurement.
	if res.DiffFrac > 0.15 {
		t.Errorf("model vs measured = %.1f%%", res.DiffFrac*100)
	}
	if res.ModeledChained <= 0 || res.MeasuredChained <= 0 {
		t.Fatalf("times: %+v", res)
	}
}

func TestValidateChain3Deterministic(t *testing.T) {
	a, err := ValidateChain3(9, 100, DefaultChain3Config())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValidateChain3(9, 100, DefaultChain3Config())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasuredChained != b.MeasuredChained || a.CompressedBytes != b.CompressedBytes {
		t.Fatal("nondeterministic chain3")
	}
}

func TestValidateChain3RejectsEmpty(t *testing.T) {
	if _, err := ValidateChain3(1, 0, DefaultChain3Config()); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestChain3FasterThanSerialAccelerated(t *testing.T) {
	// The three-stage chain pays one (largest) setup instead of three and
	// pipelines the stages.
	cfg := DefaultChain3Config()
	res, err := ValidateChain3(7, 400, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialAccel := res.OtherCPU +
		cfg.SoC.ProtoAccelSetup + time.Duration(float64(res.ProtoCPU)/cfg.SoC.ProtoAccelSpeedup) +
		cfg.CompressAccelSetup + time.Duration(float64(res.CompressCPU)/cfg.CompressAccelSpeedup) +
		cfg.SoC.SHA3AccelSetup + time.Duration(float64(res.SHA3CPU)/cfg.SoC.SHA3AccelSpeedup)
	if res.MeasuredChained >= serialAccel {
		t.Fatalf("chained %v >= serialized accelerated %v", res.MeasuredChained, serialAccel)
	}
}
