package columnar

import (
	"testing"
	"testing/quick"

	"hyperprof/internal/stats"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitmap")
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d", b.Count())
	}
	if b.Get(1) || b.Get(65) {
		t.Fatal("unset bits read as set")
	}
}

func TestBitmapAnd(t *testing.T) {
	a, b := NewBitmap(70), NewBitmap(70)
	a.Set(1)
	a.Set(69)
	b.Set(69)
	b.Set(3)
	got, err := a.And(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 1 || !got.Get(69) {
		t.Fatalf("and = %d bits", got.Count())
	}
	if _, err := a.And(NewBitmap(71)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFilters(t *testing.T) {
	col := []int64{5, 10, 15, 20, 25}
	ge := FilterGE(col, 15)
	if ge.Count() != 3 || !ge.Get(2) || ge.Get(1) {
		t.Fatalf("FilterGE: %d", ge.Count())
	}
	lt := FilterLT(col, 15)
	if lt.Count() != 2 || !lt.Get(0) || lt.Get(2) {
		t.Fatalf("FilterLT: %d", lt.Count())
	}
	// GE and LT partition the column.
	both, _ := ge.And(lt)
	if both.Count() != 0 {
		t.Fatal("GE and LT overlap")
	}
	if ge.Count()+lt.Count() != len(col) {
		t.Fatal("GE and LT do not partition")
	}
}

func TestHashAggregate(t *testing.T) {
	keys := []int64{1, 2, 1, 3, 2, 1}
	vals := []int64{10, 20, 30, 40, 50, 60}
	got, err := HashAggregate(keys, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{1: 100, 2: 70, 3: 40}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %d = %d, want %d", k, got[k], v)
		}
	}
	// With selection.
	sel := FilterGE(vals, 30)
	got, err = HashAggregate(keys, vals, sel)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 90 || got[2] != 50 || got[3] != 40 {
		t.Fatalf("selected agg = %v", got)
	}
	// Length validation.
	if _, err := HashAggregate(keys, vals[:2], nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := HashAggregate(keys, vals, NewBitmap(3)); err == nil {
		t.Fatal("selection mismatch accepted")
	}
}

func TestCountAggregate(t *testing.T) {
	keys := []int64{7, 7, 8}
	got, err := CountAggregate(keys, nil)
	if err != nil || got[7] != 2 || got[8] != 1 {
		t.Fatalf("count agg = %v err=%v", got, err)
	}
	if _, err := CountAggregate(keys, NewBitmap(2)); err == nil {
		t.Fatal("selection mismatch accepted")
	}
}

func TestMergeGroups(t *testing.T) {
	dst := map[int64]int64{1: 5}
	MergeGroups(dst, map[int64]int64{1: 10, 2: 3})
	if dst[1] != 15 || dst[2] != 3 {
		t.Fatalf("merged = %v", dst)
	}
}

func TestHashJoin(t *testing.T) {
	groups := map[int64]int64{1: 10, 2: 20, 99: 5}
	dim := map[int64]string{1: "a", 2: "b", 3: "c"}
	got := HashJoin(groups, dim)
	if got["a"] != 10 || got["b"] != 20 {
		t.Fatalf("join = %v", got)
	}
	if _, ok := got["c"]; ok {
		t.Fatal("unmatched dimension row joined")
	}
	if len(got) != 2 {
		t.Fatalf("inner join kept %d rows", len(got))
	}
}

func TestCompute(t *testing.T) {
	vals := []int64{1, 2, 3}
	sel := NewBitmap(3)
	sel.Set(1)
	got := Compute(vals, sel, 10, 5)
	if got[0] != 0 || got[1] != 25 || got[2] != 0 {
		t.Fatalf("compute = %v", got)
	}
	all := Compute(vals, nil, 2, 0)
	if all[2] != 6 {
		t.Fatalf("compute all = %v", all)
	}
}

func TestSortAndTopN(t *testing.T) {
	m := map[int64]int64{1: 50, 2: 100, 3: 50, 4: 10}
	order := SortKeysByValueDesc(m)
	want := []int64{2, 1, 3, 4} // ties (1,3) break by ascending key
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	top := TopN(m, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 1 {
		t.Fatalf("top2 = %v", top)
	}
	if n := len(TopN(m, 99)); n != 4 {
		t.Fatalf("topN overflow = %d", n)
	}
}

func TestAggregateMatchesReferenceProperty(t *testing.T) {
	// Property: vectorized filter+aggregate equals the naive row loop.
	rng := stats.NewRNG(5)
	if err := quick.Check(func(seed uint16) bool {
		n := 1 + rng.Intn(500)
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(10))
			vals[i] = int64(rng.Intn(1000))
		}
		threshold := int64(rng.Intn(1000))

		sel := FilterGE(vals, threshold)
		got, err := HashAggregate(keys, vals, sel)
		if err != nil {
			return false
		}
		want := map[int64]int64{}
		for i := range keys {
			if vals[i] >= threshold {
				want[keys[i]] += vals[i]
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
