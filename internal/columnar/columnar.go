// Package columnar implements the vectorized relational kernels a
// BigQuery-class engine executes per batch: selection bitmaps over typed
// columns, hash aggregation, hash join, and ordering. These are the "core
// compute" operators of Table 5 (filter, aggregate, join, sort, compute) as
// real code; internal/bigquery executes its queries through them.
package columnar

import (
	"fmt"
	"math/bits"
	"sort"
)

// Bitmap is a selection vector: bit i set means row i is selected.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap creates an empty selection over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i selected.
func (b *Bitmap) Set(i int) { b.words[i/64] |= 1 << (i % 64) }

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool { return b.words[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of selected rows.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// And intersects two bitmaps of equal length into a new one.
func (b *Bitmap) And(o *Bitmap) (*Bitmap, error) {
	if b.n != o.n {
		return nil, fmt.Errorf("columnar: bitmap lengths %d != %d", b.n, o.n)
	}
	out := NewBitmap(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] & o.words[i]
	}
	return out, nil
}

// FilterGE selects rows where col[i] >= threshold (the engine's scan
// predicate).
func FilterGE(col []int64, threshold int64) *Bitmap {
	b := NewBitmap(len(col))
	for i, v := range col {
		if v >= threshold {
			b.Set(i)
		}
	}
	return b
}

// FilterLT selects rows where col[i] < threshold.
func FilterLT(col []int64, threshold int64) *Bitmap {
	b := NewBitmap(len(col))
	for i, v := range col {
		if v < threshold {
			b.Set(i)
		}
	}
	return b
}

// HashAggregate computes SUM(vals) grouped by keys over the selected rows.
func HashAggregate(keys, vals []int64, sel *Bitmap) (map[int64]int64, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("columnar: column lengths %d != %d", len(keys), len(vals))
	}
	if sel != nil && sel.Len() != len(keys) {
		return nil, fmt.Errorf("columnar: selection length %d != %d", sel.Len(), len(keys))
	}
	out := map[int64]int64{}
	for i := range keys {
		if sel == nil || sel.Get(i) {
			out[keys[i]] += vals[i]
		}
	}
	return out, nil
}

// CountAggregate counts selected rows per key.
func CountAggregate(keys []int64, sel *Bitmap) (map[int64]int64, error) {
	if sel != nil && sel.Len() != len(keys) {
		return nil, fmt.Errorf("columnar: selection length %d != %d", sel.Len(), len(keys))
	}
	out := map[int64]int64{}
	for i, k := range keys {
		if sel == nil || sel.Get(i) {
			out[k]++
		}
	}
	return out, nil
}

// MergeGroups folds src into dst (the stage-2 reduction).
func MergeGroups(dst, src map[int64]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// HashJoin probes each group key against a dimension table, summing values
// per dimension payload — the engine's aggregate-then-join pattern. Keys
// missing from the dimension are dropped (inner join).
func HashJoin(groups map[int64]int64, dim map[int64]string) map[string]int64 {
	out := map[string]int64{}
	for k, v := range groups {
		if label, ok := dim[k]; ok {
			out[label] += v
		}
	}
	return out
}

// Compute applies a column-wise arithmetic transform (val*scale + offset)
// over the selected rows, returning a new column aligned with the input.
func Compute(vals []int64, sel *Bitmap, scale, offset int64) []int64 {
	out := make([]int64, len(vals))
	for i, v := range vals {
		if sel == nil || sel.Get(i) {
			out[i] = v*scale + offset
		}
	}
	return out
}

// SortKeysByValueDesc orders group keys by descending aggregate, breaking
// ties by ascending key so results are deterministic.
func SortKeysByValueDesc(m map[int64]int64) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// TopN returns the first n keys of the descending-sum ordering.
func TopN(m map[int64]int64, n int) []int64 {
	keys := SortKeysByValueDesc(m)
	if n < len(keys) {
		keys = keys[:n]
	}
	return keys
}
