package storage

import (
	"strings"
	"testing"
)

func TestReplicaConsistencyCleanAfterCreate(t *testing.T) {
	d, err := NewDFS(dfsConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"a/part-0", "a/part-1", "b/small"} {
		if _, err := d.Create(f, 3<<20); err != nil {
			t.Fatal(err)
		}
	}
	if br := d.CheckReplicaConsistency(); len(br) != 0 {
		t.Fatalf("fresh DFS inconsistent: %v", br)
	}
}

func TestReplicaConsistencySurvivesSingleFailure(t *testing.T) {
	// One failed server out of eight leaves every chunk with live replicas
	// (replication 3, consecutive placement), so the invariant stays clean.
	d, _ := NewDFS(dfsConfig())
	if _, err := d.Create("a/part-0", 5<<20); err != nil {
		t.Fatal(err)
	}
	if err := d.FailServer(2); err != nil {
		t.Fatal(err)
	}
	if br := d.CheckReplicaConsistency(); len(br) != 0 {
		t.Fatalf("single failure broke consistency: %v", br)
	}
}

func TestReplicaConsistencyFlagsStaleOnlyChunks(t *testing.T) {
	// A file created while a server was down skips that replica. When the
	// *other* replicas of one of its chunks later fail, the chunk survives
	// only on servers that never held it or are down — the invariant must
	// name that chunk.
	d, _ := NewDFS(dfsConfig())
	if _, err := d.Create("a/part-0", 1<<20); err != nil {
		t.Fatal(err)
	}
	// Fail every replica of chunk 0: the chunk's copies all sit on failed
	// servers now.
	for _, si := range d.replicaServers("a/part-0", 0) {
		if err := d.FailServer(si); err != nil {
			t.Fatal(err)
		}
	}
	br := d.CheckReplicaConsistency()
	if len(br) != 1 {
		t.Fatalf("breaches = %v, want exactly the dead chunk", br)
	}
	if !strings.Contains(br[0], "a/part-0 chunk 0") || !strings.Contains(br[0], "failed servers") {
		t.Fatalf("breach text = %q", br[0])
	}
	// Recovery restores the invariant.
	for _, si := range d.replicaServers("a/part-0", 0) {
		if err := d.RecoverServer(si); err != nil {
			t.Fatal(err)
		}
	}
	if br := d.CheckReplicaConsistency(); len(br) != 0 {
		t.Fatalf("still inconsistent after recovery: %v", br)
	}
}

func TestReplicaConsistencyFlagsLostChunks(t *testing.T) {
	// Deleting a chunk's objects behind the DFS's back (simulating replica
	// loss) must be caught: the file is still in the namespace but one of its
	// chunks has no copies anywhere.
	d, _ := NewDFS(dfsConfig())
	if _, err := d.Create("a/part-0", 2<<20); err != nil {
		t.Fatal(err)
	}
	for _, si := range d.replicaServers("a/part-0", 1) {
		d.servers[si].Delete(chunkKey("a/part-0", 1))
	}
	br := d.CheckReplicaConsistency()
	if len(br) != 1 || !strings.Contains(br[0], "no replica holds the chunk") {
		t.Fatalf("breaches = %v, want the lost chunk", br)
	}
}
