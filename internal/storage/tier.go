// Package storage models the disaggregated storage substrate the paper's
// platforms sit on (§2.1, §3): per-server tiered stores (RAM read
// caches/write buffers over SSD caches over HDD), a chunked replicated
// distributed file system, and the fleet inventory accounting behind the
// storage-to-storage ratios of Table 1.
package storage

import (
	"fmt"
	"time"
)

// Tier identifies a storage medium.
type Tier int

// The three media of Table 1.
const (
	RAM Tier = iota
	SSD
	HDD
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case RAM:
		return "RAM"
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	}
	return "Unknown"
}

// Tiers lists the tiers fastest-first.
func Tiers() []Tier { return []Tier{RAM, SSD, HDD} }

// TierParams models a medium's access cost: a fixed per-access latency plus
// a size-proportional transfer time.
type TierParams struct {
	Latency     time.Duration
	BytesPerSec float64
}

// AccessTime returns the modeled time to read or write size bytes.
func (p TierParams) AccessTime(size int64) time.Duration {
	if size < 0 {
		size = 0
	}
	xfer := time.Duration(float64(size) / p.BytesPerSec * float64(time.Second))
	return p.Latency + xfer
}

// DefaultTierParams returns representative 2022 datacenter media parameters:
// DRAM at ~1µs effective access and 10 GB/s, NVMe SSD at ~80µs and 1.5 GB/s,
// and HDD at ~8ms seek and 180 MB/s.
func DefaultTierParams() map[Tier]TierParams {
	return map[Tier]TierParams{
		RAM: {Latency: time.Microsecond, BytesPerSec: 10e9},
		SSD: {Latency: 80 * time.Microsecond, BytesPerSec: 1.5e9},
		HDD: {Latency: 8 * time.Millisecond, BytesPerSec: 180e6},
	}
}

// Capacities is a per-tier byte budget.
type Capacities map[Tier]int64

// Validate checks all capacities are positive.
func (c Capacities) Validate() error {
	for _, t := range Tiers() {
		if c[t] <= 0 {
			return fmt.Errorf("storage: %v capacity must be positive, got %d", t, c[t])
		}
	}
	return nil
}
