package storage

import "hash/fnv"

// This file implements a frequency-aware cache admission policy in the
// TinyLFU family, the practical form of §3's suggestion to place data
// between storage tiers with learned/frequency signals instead of pure
// recency. A compact count-min sketch estimates each key's access
// frequency; on insertion pressure, a new key is admitted only if it is
// estimated hotter than the eviction victim. Under the Zipf access skew of
// big-data workloads this protects the hot head from scan pollution.

// freqSketch is a 4-row count-min sketch with halving decay.
type freqSketch struct {
	rows    [4][]uint8
	mask    uint64
	adds    int
	decayAt int
}

// newFreqSketch sizes the sketch for roughly the given key population.
func newFreqSketch(keys int) *freqSketch {
	size := uint64(1)
	for size < uint64(keys)*2 {
		size <<= 1
	}
	if size < 64 {
		size = 64
	}
	s := &freqSketch{mask: size - 1, decayAt: int(size) * 8}
	for i := range s.rows {
		s.rows[i] = make([]uint8, size)
	}
	return s
}

func (s *freqSketch) hashes(key string) [4]uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	a := h.Sum64()
	b := a>>32 | a<<32
	return [4]uint64{a, a + b, a + 2*b, a + 3*b}
}

// Touch records one access.
func (s *freqSketch) Touch(key string) {
	hs := s.hashes(key)
	for i := range s.rows {
		idx := hs[i] & s.mask
		if s.rows[i][idx] < 255 {
			s.rows[i][idx]++
		}
	}
	s.adds++
	if s.adds >= s.decayAt {
		s.decay()
	}
}

// Estimate returns the minimum-counter frequency estimate.
func (s *freqSketch) Estimate(key string) uint8 {
	hs := s.hashes(key)
	est := uint8(255)
	for i := range s.rows {
		if v := s.rows[i][hs[i]&s.mask]; v < est {
			est = v
		}
	}
	return est
}

// decay halves all counters, aging out stale popularity.
func (s *freqSketch) decay() {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] >>= 1
		}
	}
	s.adds = 0
}

// admissionCache wraps an LRU with TinyLFU-style admission: every access
// feeds the sketch, and a candidate only displaces the LRU victim when the
// sketch says it is at least as hot.
type admissionCache struct {
	lru    *lruCache
	sketch *freqSketch
}

func newAdmissionCache(capacity int64, expectedKeys int) *admissionCache {
	return &admissionCache{lru: newLRU(capacity), sketch: newFreqSketch(expectedKeys)}
}

// Contains reports and records an access.
func (c *admissionCache) Contains(key string) bool {
	c.sketch.Touch(key)
	return c.lru.Contains(key)
}

// Add inserts the key if it deserves the space: when the cache has room it
// always enters; when full, it must beat the current LRU victim's estimated
// frequency. Returns whether the key is resident afterwards.
func (c *admissionCache) Add(key string, size int64) bool {
	c.sketch.Touch(key)
	if c.lru.Peek(key) {
		c.lru.Add(key, size)
		return true
	}
	if c.lru.Used()+size <= c.lru.capacity || size > c.lru.capacity {
		c.lru.Add(key, size)
		return c.lru.Peek(key)
	}
	victim := c.lru.tail
	if victim != nil && c.sketch.Estimate(key) < c.sketch.Estimate(victim.key) {
		return false // candidate is colder than what it would displace
	}
	c.lru.Add(key, size)
	return c.lru.Peek(key)
}

// Used returns resident bytes.
func (c *admissionCache) Used() int64 { return c.lru.Used() }
