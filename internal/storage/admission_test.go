package storage

import (
	"fmt"
	"testing"

	"hyperprof/internal/stats"
)

func TestFreqSketchCountsAndDecays(t *testing.T) {
	s := newFreqSketch(100)
	for i := 0; i < 10; i++ {
		s.Touch("hot")
	}
	s.Touch("cold")
	if s.Estimate("hot") <= s.Estimate("cold") {
		t.Fatalf("hot=%d cold=%d", s.Estimate("hot"), s.Estimate("cold"))
	}
	if s.Estimate("never") != 0 {
		// Collisions possible but a fresh sketch this sparse should be clean.
		t.Fatalf("never-seen estimate = %d", s.Estimate("never"))
	}
	before := s.Estimate("hot")
	s.decay()
	if after := s.Estimate("hot"); after != before/2 {
		t.Fatalf("decay: %d -> %d", before, after)
	}
}

func TestFreqSketchSaturates(t *testing.T) {
	s := newFreqSketch(10)
	for i := 0; i < 1000; i++ {
		s.Touch("x")
	}
	if s.Estimate("x") > 255 {
		t.Fatal("counter overflow")
	}
}

func TestAdmissionProtectsHotKeys(t *testing.T) {
	// A small cache under a Zipf stream with scan pollution: the admission
	// policy must keep a better hot-key hit ratio than plain LRU.
	const capacity = 50 * 1000 // 50 objects of 1000 bytes
	run := func(admission bool) float64 {
		lru := newLRU(capacity)
		adm := newAdmissionCache(capacity, 2000)
		rng := stats.NewRNG(77)
		zipf := stats.NewZipf(rng, 500, 1.2)
		hits, lookups := 0, 0
		for i := 0; i < 30000; i++ {
			var key string
			if i%5 == 4 {
				// One-off scan key (pollution).
				key = fmt.Sprintf("scan-%d", i)
			} else {
				key = fmt.Sprintf("hot-%d", zipf.Next())
				lookups++
			}
			var hit bool
			if admission {
				hit = adm.Contains(key)
				if !hit {
					adm.Add(key, 1000)
				}
			} else {
				hit = lru.Contains(key)
				if !hit {
					lru.Add(key, 1000)
				}
			}
			if hit && key[0] == 'h' {
				hits++
			}
		}
		return float64(hits) / float64(lookups)
	}
	lruRatio := run(false)
	admRatio := run(true)
	if admRatio <= lruRatio {
		t.Fatalf("admission hit ratio %.3f <= LRU %.3f", admRatio, lruRatio)
	}
	// And the improvement is substantial under this pollution level.
	if admRatio < lruRatio*1.1 {
		t.Fatalf("admission gain too small: %.3f vs %.3f", admRatio, lruRatio)
	}
}

func TestAdmissionCacheBasics(t *testing.T) {
	c := newAdmissionCache(100, 50)
	if !c.Add("a", 60) {
		t.Fatal("empty-cache add rejected")
	}
	if !c.Contains("a") {
		t.Fatal("resident key missed")
	}
	// Updating a resident key always succeeds.
	if !c.Add("a", 80) {
		t.Fatal("resident update rejected")
	}
	if c.Used() != 80 {
		t.Fatalf("used = %d", c.Used())
	}
	// A cold candidate that would displace a hotter victim is rejected.
	for i := 0; i < 8; i++ {
		c.Contains("a")
	}
	if c.Add("coldling", 80) {
		t.Fatal("cold candidate displaced hot victim")
	}
	if !c.Contains("a") {
		t.Fatal("hot victim evicted")
	}
	// But a candidate hotter than the victim gets in.
	for i := 0; i < 20; i++ {
		c.sketch.Touch("rising-star")
	}
	if !c.Add("rising-star", 80) {
		t.Fatal("hot candidate rejected")
	}
}

func TestAdmissionOversized(t *testing.T) {
	c := newAdmissionCache(100, 10)
	if c.Add("giant", 500) {
		t.Fatal("oversized object admitted")
	}
}
