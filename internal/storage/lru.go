package storage

// lruCache is a byte-budgeted LRU cache of string keys with per-entry sizes.
// It is hand-rolled (intrusive doubly-linked list + map) so eviction order
// and memory accounting are fully deterministic.
type lruCache struct {
	capacity int64
	used     int64
	entries  map[string]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
}

type lruEntry struct {
	key        string
	size       int64
	prev, next *lruEntry
}

func newLRU(capacity int64) *lruCache {
	return &lruCache{capacity: capacity, entries: map[string]*lruEntry{}}
}

// Contains reports whether key is cached and, if so, marks it most recently
// used.
func (c *lruCache) Contains(key string) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.moveToFront(e)
	return true
}

// Peek reports presence without touching recency.
func (c *lruCache) Peek(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Add inserts or refreshes key with the given size, evicting LRU entries to
// fit. It returns the evicted keys (oldest first). Entries larger than the
// whole capacity are not cached.
func (c *lruCache) Add(key string, size int64) (evicted []string) {
	if size > c.capacity {
		// Too big to ever fit; also drop a stale smaller entry if present.
		if e, ok := c.entries[key]; ok {
			c.remove(e)
			evicted = append(evicted, key)
		}
		return evicted
	}
	if e, ok := c.entries[key]; ok {
		c.used += size - e.size
		e.size = size
		c.moveToFront(e)
	} else {
		e := &lruEntry{key: key, size: size}
		c.entries[key] = e
		c.pushFront(e)
		c.used += size
	}
	for c.used > c.capacity && c.tail != nil {
		victim := c.tail
		c.remove(victim)
		evicted = append(evicted, victim.key)
	}
	return evicted
}

// Remove deletes key if present.
func (c *lruCache) Remove(key string) {
	if e, ok := c.entries[key]; ok {
		c.remove(e)
	}
}

// Used returns the bytes currently cached.
func (c *lruCache) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *lruCache) Len() int { return len(c.entries) }

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.head == e {
		c.head = e.next
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) remove(e *lruEntry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.used -= e.size
}
