package storage

import (
	"fmt"
	"sort"
)

// This file is the safety-checking surface of the DFS: a standing
// replica-consistency invariant the torture harness asserts after every run.

// CheckReplicaConsistency verifies that every chunk of every file is readable
// from at least one live replica, and that no chunk has silently lost all its
// copies (a file whose chunks exist only on failed or stale servers would
// return ErrAllReplicasDown on the next read). It returns one description per
// breach, in deterministic file order.
func (d *DFS) CheckReplicaConsistency() []string {
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		size := d.files[name]
		nChunks := (size + d.chunkSize - 1) / d.chunkSize
		if nChunks == 0 {
			nChunks = 1
		}
		for idx := int64(0); idx < nChunks; idx++ {
			key := chunkKey(name, idx)
			liveCopies, copies := 0, 0
			for _, si := range d.replicaServers(name, idx) {
				if !d.servers[si].Has(key) {
					continue
				}
				copies++
				if !d.down[si] {
					liveCopies++
				}
			}
			switch {
			case copies == 0:
				out = append(out, fmt.Sprintf("%s chunk %d: no replica holds the chunk", name, idx))
			case liveCopies == 0:
				out = append(out, fmt.Sprintf("%s chunk %d: all %d replicas on failed servers", name, idx, copies))
			}
		}
	}
	return out
}
