package storage

import (
	"errors"
	"fmt"
	"time"
)

// Errors returned by TieredStore operations.
var (
	ErrNotFound = errors.New("storage: object not found")
	ErrFull     = errors.New("storage: backing store full")
)

// TierStats counts accesses and bytes moved at one tier.
type TierStats struct {
	Reads     int64
	Writes    int64
	BytesRead int64
	BytesWrit int64
}

// TieredStore is one server's storage stack: a RAM read-cache/write-buffer
// over an SSD cache over HDD backing, the structure §3 describes. Reads probe
// RAM, then SSD, then HDD, promoting on miss; writes land in the RAM buffer
// and are durably accounted against HDD backing (the platforms model their
// own log/flush costs explicitly).
type TieredStore struct {
	params  map[Tier]TierParams
	ram     *lruCache
	ssd     *lruCache
	hddCap  int64
	hddUsed int64
	objects map[string]int64 // backing-store object sizes
	stats   map[Tier]*TierStats
	// sketch, when non-nil, gates RAM admission by estimated frequency
	// (the TinyLFU policy).
	sketch *freqSketch
}

// Policy selects the RAM tier's cache-management policy.
type Policy int

// The available policies.
const (
	// LRUPolicy is plain recency-based caching (the default).
	LRUPolicy Policy = iota
	// TinyLFUPolicy adds frequency-sketch admission, §3's
	// learned-placement direction: cold insertions cannot displace
	// estimated-hotter residents.
	TinyLFUPolicy
)

// NewTieredStore creates a store with the given per-tier capacities and
// access parameters (nil params selects DefaultTierParams), using the
// default LRU policy.
func NewTieredStore(caps Capacities, params map[Tier]TierParams) (*TieredStore, error) {
	return NewTieredStoreWithPolicy(caps, params, LRUPolicy)
}

// NewTieredStoreWithPolicy creates a store with an explicit RAM policy.
func NewTieredStoreWithPolicy(caps Capacities, params map[Tier]TierParams, policy Policy) (*TieredStore, error) {
	if err := caps.Validate(); err != nil {
		return nil, err
	}
	if params == nil {
		params = DefaultTierParams()
	}
	s := &TieredStore{
		params:  params,
		ram:     newLRU(caps[RAM]),
		ssd:     newLRU(caps[SSD]),
		hddCap:  caps[HDD],
		objects: map[string]int64{},
		stats:   map[Tier]*TierStats{RAM: {}, SSD: {}, HDD: {}},
	}
	if policy == TinyLFUPolicy {
		// Size the sketch for the number of RAM-cacheable objects.
		keys := int(caps[RAM] / 1024)
		if keys < 256 {
			keys = 256
		}
		s.sketch = newFreqSketch(keys)
	}
	return s, nil
}

// admitRAM inserts a key into the RAM cache subject to the policy.
func (s *TieredStore) admitRAM(key string, size int64) {
	if s.sketch != nil {
		s.sketch.Touch(key)
		if !s.ram.Peek(key) && s.ram.Used()+size > s.ram.capacity && size <= s.ram.capacity {
			if v := s.ram.tail; v != nil && s.sketch.Estimate(key) < s.sketch.Estimate(v.key) {
				return // colder than the victim it would displace
			}
		}
	}
	s.ram.Add(key, size)
}

// Capacity returns the configured capacity of a tier.
func (s *TieredStore) Capacity(t Tier) int64 {
	switch t {
	case RAM:
		return s.ram.capacity
	case SSD:
		return s.ssd.capacity
	default:
		return s.hddCap
	}
}

// Used returns the bytes resident at a tier.
func (s *TieredStore) Used(t Tier) int64 {
	switch t {
	case RAM:
		return s.ram.Used()
	case SSD:
		return s.ssd.Used()
	default:
		return s.hddUsed
	}
}

// Stats returns the access statistics for a tier.
func (s *TieredStore) Stats(t Tier) TierStats { return *s.stats[t] }

// Has reports whether the object exists in the backing store.
func (s *TieredStore) Has(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Size returns the object's size, or an error if it does not exist.
func (s *TieredStore) Size(key string) (int64, error) {
	sz, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return sz, nil
}

// Read fetches an object, returning the modeled access time and the tier
// that served it. Lower-tier hits promote the object into the caches above.
func (s *TieredStore) Read(key string) (time.Duration, Tier, error) {
	size, ok := s.objects[key]
	if !ok {
		return 0, HDD, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if s.sketch != nil {
		s.sketch.Touch(key)
	}
	switch {
	case s.ram.Contains(key):
		s.account(RAM, size, false)
		return s.params[RAM].AccessTime(size), RAM, nil
	case s.ssd.Contains(key):
		s.account(SSD, size, false)
		s.admitRAM(key, size)
		return s.params[SSD].AccessTime(size), SSD, nil
	default:
		s.account(HDD, size, false)
		s.ssd.Add(key, size)
		s.admitRAM(key, size)
		return s.params[HDD].AccessTime(size), HDD, nil
	}
}

// Write stores an object: it is accounted against HDD backing immediately
// (durability is the platform's concern) and lands in the RAM write buffer
// and SSD cache. The returned duration is the RAM buffer access; flush and
// log costs are modeled by callers via RawAccess.
func (s *TieredStore) Write(key string, size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("storage: negative size %d", size)
	}
	old := s.objects[key]
	if s.hddUsed-old+size > s.hddCap {
		return 0, fmt.Errorf("%w: need %d bytes", ErrFull, size)
	}
	s.hddUsed += size - old
	s.objects[key] = size
	s.admitRAM(key, size)
	s.ssd.Add(key, size)
	s.account(RAM, size, true)
	s.account(HDD, size, true)
	return s.params[RAM].AccessTime(size), nil
}

// Delete removes an object from backing store and caches.
func (s *TieredStore) Delete(key string) {
	if size, ok := s.objects[key]; ok {
		s.hddUsed -= size
		delete(s.objects, key)
	}
	s.ram.Remove(key)
	s.ssd.Remove(key)
}

// RawAccess returns the modeled time for a raw transfer of size bytes at a
// tier and accounts it, without touching object bookkeeping. Platforms use
// it for log appends, flushes, and compaction streams.
func (s *TieredStore) RawAccess(t Tier, size int64, write bool) time.Duration {
	s.account(t, size, write)
	return s.params[t].AccessTime(size)
}

func (s *TieredStore) account(t Tier, size int64, write bool) {
	st := s.stats[t]
	if write {
		st.Writes++
		st.BytesWrit += size
	} else {
		st.Reads++
		st.BytesRead += size
	}
}
