package storage

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"hyperprof/internal/taxonomy"
)

func TestTierAccessTime(t *testing.T) {
	p := TierParams{Latency: time.Millisecond, BytesPerSec: 1e6}
	if got := p.AccessTime(0); got != time.Millisecond {
		t.Fatalf("zero-byte access = %v", got)
	}
	if got := p.AccessTime(1e6); got != time.Millisecond+time.Second {
		t.Fatalf("1MB access = %v", got)
	}
	if got := p.AccessTime(-5); got != time.Millisecond {
		t.Fatalf("negative size access = %v", got)
	}
}

func TestDefaultTierOrdering(t *testing.T) {
	params := DefaultTierParams()
	const size = 1 << 20
	ram := params[RAM].AccessTime(size)
	ssd := params[SSD].AccessTime(size)
	hdd := params[HDD].AccessTime(size)
	if !(ram < ssd && ssd < hdd) {
		t.Fatalf("tier ordering violated: ram=%v ssd=%v hdd=%v", ram, ssd, hdd)
	}
}

func TestCapacitiesValidate(t *testing.T) {
	good := Capacities{RAM: 1, SSD: 1, HDD: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Capacities{RAM: 1, SSD: 0, HDD: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero SSD capacity should fail")
	}
}

func TestLRUBasics(t *testing.T) {
	c := newLRU(100)
	c.Add("a", 40)
	c.Add("b", 40)
	if !c.Contains("a") || !c.Contains("b") {
		t.Fatal("entries missing")
	}
	if c.Used() != 80 || c.Len() != 2 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	// Touch "a" so "b" is least recently used; adding 40 more evicts "b".
	c.Contains("a")
	evicted := c.Add("c", 40)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if c.Contains("b") {
		t.Fatal("b should be evicted")
	}
}

func TestLRUUpdateSize(t *testing.T) {
	c := newLRU(100)
	c.Add("a", 30)
	c.Add("a", 60)
	if c.Used() != 60 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestLRUOversizedEntryNotCached(t *testing.T) {
	c := newLRU(100)
	c.Add("big", 200)
	if c.Peek("big") || c.Used() != 0 {
		t.Fatal("oversized entry cached")
	}
	// Replacing an existing entry with an oversized one drops it.
	c.Add("x", 50)
	ev := c.Add("x", 500)
	if c.Peek("x") || len(ev) != 1 {
		t.Fatalf("stale entry kept, evicted=%v", ev)
	}
}

func TestLRURemove(t *testing.T) {
	c := newLRU(100)
	c.Add("a", 10)
	c.Remove("a")
	c.Remove("missing") // no-op
	if c.Used() != 0 || c.Peek("a") {
		t.Fatal("remove failed")
	}
}

func TestLRUInvariantProperty(t *testing.T) {
	// Property: used never exceeds capacity, and used equals the sum of
	// resident entry sizes, under arbitrary operation sequences.
	if err := quick.Check(func(ops []uint16) bool {
		c := newLRU(500)
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%37)
			switch op % 3 {
			case 0:
				c.Add(key, int64(op%120))
			case 1:
				c.Contains(key)
			case 2:
				c.Remove(key)
			}
			if c.Used() > 500 {
				return false
			}
			var sum int64
			for _, e := range c.entries {
				sum += e.size
			}
			if sum != c.Used() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func testStore(t *testing.T) *TieredStore {
	t.Helper()
	s, err := NewTieredStore(Capacities{RAM: 1 << 20, SSD: 8 << 20, HDD: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTieredReadPromotion(t *testing.T) {
	s := testStore(t)
	if _, err := s.Write("obj", 1000); err != nil {
		t.Fatal(err)
	}
	// First read: RAM (write landed in the buffer).
	_, tier, err := s.Read("obj")
	if err != nil || tier != RAM {
		t.Fatalf("read after write: tier=%v err=%v", tier, err)
	}
	// Evict from RAM by filling it.
	for i := 0; i < 2000; i++ {
		if _, err := s.Write(fmt.Sprintf("fill%d", i), 1000); err != nil {
			t.Fatal(err)
		}
	}
	if s.ram.Peek("obj") {
		t.Fatal("obj should be evicted from RAM")
	}
	// Next read hits SSD and promotes back to RAM.
	_, tier, err = s.Read("obj")
	if err != nil || tier != SSD {
		t.Fatalf("ssd read: tier=%v err=%v", tier, err)
	}
	if _, tier, _ = s.Read("obj"); tier != RAM {
		t.Fatalf("promotion failed: tier=%v", tier)
	}
}

func TestTieredHDDReadAfterFullEviction(t *testing.T) {
	s := testStore(t)
	s.Write("cold", 1000)
	// Flood both caches.
	for i := 0; i < 20000; i++ {
		s.Write(fmt.Sprintf("hot%d", i), 1000)
	}
	_, tier, err := s.Read("cold")
	if err != nil || tier != HDD {
		t.Fatalf("cold read: tier=%v err=%v", tier, err)
	}
	stats := s.Stats(HDD)
	if stats.Reads != 1 || stats.BytesRead != 1000 {
		t.Fatalf("hdd stats = %+v", stats)
	}
}

func TestTieredReadMissing(t *testing.T) {
	s := testStore(t)
	if _, _, err := s.Read("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTieredWriteErrors(t *testing.T) {
	s, err := NewTieredStore(Capacities{RAM: 100, SSD: 100, HDD: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("x", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := s.Write("big", 2000); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull write err = %v", err)
	}
	// Rewriting the same key accounts the delta, not the sum.
	if _, err := s.Write("a", 600); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("a", 900); err != nil {
		t.Fatalf("rewrite should fit: %v", err)
	}
	if s.Used(HDD) != 900 {
		t.Fatalf("hdd used = %d", s.Used(HDD))
	}
}

func TestTieredDelete(t *testing.T) {
	s := testStore(t)
	s.Write("x", 500)
	s.Delete("x")
	if s.Has("x") || s.Used(HDD) != 0 {
		t.Fatal("delete incomplete")
	}
	if _, err := s.Size("x"); !errors.Is(err, ErrNotFound) {
		t.Fatal("size after delete")
	}
	s.Delete("x") // idempotent
}

func TestRawAccessAccounting(t *testing.T) {
	s := testStore(t)
	d := s.RawAccess(HDD, 1<<20, true)
	if d <= 8*time.Millisecond {
		t.Fatalf("raw hdd write = %v, should include seek+transfer", d)
	}
	if st := s.Stats(HDD); st.Writes != 1 || st.BytesWrit != 1<<20 {
		t.Fatalf("stats = %+v", st)
	}
}

func dfsConfig() DFSConfig {
	return DFSConfig{
		Chunkservers:     8,
		Replication:      3,
		ChunkSize:        1 << 20,
		ServerCapacities: Capacities{RAM: 4 << 20, SSD: 32 << 20, HDD: 10 << 30},
	}
}

func TestDFSCreateReadDelete(t *testing.T) {
	d, err := NewDFS(dfsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("table/part-0", 5<<20); err != nil {
		t.Fatal(err)
	}
	if !d.Exists("table/part-0") {
		t.Fatal("file missing")
	}
	sz, err := d.FileSize("table/part-0")
	if err != nil || sz != 5<<20 {
		t.Fatalf("size = %d err=%v", sz, err)
	}
	dur, tier, err := d.Read("table/part-0", 0, 5<<20)
	if err != nil || dur <= 0 {
		t.Fatalf("read: %v %v", dur, err)
	}
	if tier != RAM {
		t.Fatalf("fresh write should hit RAM buffers, got %v", tier)
	}
	if err := d.Delete("table/part-0"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("table/part-0") {
		t.Fatal("file still exists")
	}
	for _, s := range d.Servers() {
		if s.Used(HDD) != 0 {
			t.Fatal("replica bytes leaked after delete")
		}
	}
}

func TestDFSReadBounds(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	d.Create("f", 100)
	if _, _, err := d.Read("f", 50, 100); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if _, _, err := d.Read("f", -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := d.Read("ghost", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if dur, _, err := d.Read("f", 10, 0); err != nil || dur != 0 {
		t.Fatalf("zero-length read: %v %v", dur, err)
	}
}

func TestDFSCreateValidation(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	if _, err := d.Create("f", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	d.Create("f", 10)
	if _, err := d.Create("f", 10); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestDFSReplication(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	d.Create("f", 1<<20) // one chunk, 3 replicas
	var total int64
	for _, s := range d.Servers() {
		total += s.Used(HDD)
	}
	if total != 3<<20 {
		t.Fatalf("replicated bytes = %d, want 3MiB", total)
	}
	// Placement must be deterministic.
	r1 := d.replicaServers("f", 0)
	r2 := d.replicaServers("f", 0)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("placement not deterministic")
		}
	}
	seen := map[int]bool{}
	for _, s := range r1 {
		if seen[s] {
			t.Fatal("replica placed twice on same server")
		}
		seen[s] = true
	}
}

func TestDFSConfigValidation(t *testing.T) {
	cfg := dfsConfig()
	cfg.Chunkservers = 2 // < replication 3
	if _, err := NewDFS(cfg); err == nil {
		t.Fatal("too few chunkservers accepted")
	}
}

func TestDFSTierHitsImproveWithReuse(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	d.Create("hot", 1<<20)
	for i := 0; i < 10; i++ {
		if _, _, err := d.Read("hot", 0, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	hits := d.TierHits()
	if hits[RAM] < 9 {
		t.Fatalf("RAM hits = %d, want >= 9", hits[RAM])
	}
}

func TestInventoryRatios(t *testing.T) {
	inv := NewInventory()
	// Provision Spanner-like ratio 1:16:164.
	inv.AddServers(taxonomy.Spanner, Capacities{RAM: 1 << 30, SSD: 16 << 30, HDD: 164 << 30}, 100)
	ram, ssd, hdd := inv.Ratios(taxonomy.Spanner)
	if ram != 1 || ssd != 16 || hdd != 164 {
		t.Fatalf("ratios = %v:%v:%v", ram, ssd, hdd)
	}
	if s := inv.RatioString(taxonomy.Spanner); s != "1:16:164" {
		t.Fatalf("ratio string = %q", s)
	}
	if got := inv.Owned(taxonomy.Spanner, RAM); got != 100<<30 {
		t.Fatalf("owned RAM = %d", got)
	}
}

func TestInventoryEmptyPlatform(t *testing.T) {
	inv := NewInventory()
	if r, s, h := inv.Ratios(taxonomy.BigQuery); r != 0 || s != 0 || h != 0 {
		t.Fatal("empty platform should be zeros")
	}
	if inv.RatioString(taxonomy.BigQuery) != "-" {
		t.Fatal("empty ratio string")
	}
}

func TestInventoryAddStore(t *testing.T) {
	inv := NewInventory()
	s, _ := NewTieredStore(Capacities{RAM: 10, SSD: 20, HDD: 30}, nil)
	inv.AddStore(taxonomy.BigTable, s)
	if inv.Owned(taxonomy.BigTable, SSD) != 20 {
		t.Fatal("AddStore did not record capacities")
	}
}

func TestDFSReadFailsOverToSurvivingReplica(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	d.Create("ha-file", 1<<20)
	primary := d.replicaServers("ha-file", 0)[0]
	if err := d.FailServer(primary); err != nil {
		t.Fatal(err)
	}
	if got := d.DownServers(); len(got) != 1 || got[0] != primary {
		t.Fatalf("down = %v", got)
	}
	if _, _, err := d.Read("ha-file", 0, 1<<20); err != nil {
		t.Fatalf("read with one replica down: %v", err)
	}
	// Fail the remaining replicas.
	for _, si := range d.replicaServers("ha-file", 0)[1:] {
		d.FailServer(si)
	}
	if _, _, err := d.Read("ha-file", 0, 1<<20); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("err = %v, want ErrAllReplicasDown", err)
	}
	// Recovery restores service.
	if err := d.RecoverServer(primary); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read("ha-file", 0, 1<<20); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestDFSCreateSkipsDownServers(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	d.FailServer(0)
	if _, err := d.Create("f", 1<<20); err != nil {
		t.Fatalf("create with one server down: %v", err)
	}
	// Bytes only landed on live replicas.
	if used := d.servers[0].Used(HDD); used != 0 {
		t.Fatalf("down server stored %d bytes", used)
	}
	for i := 1; i < len(d.servers); i++ {
		d.FailServer(i)
	}
	if _, err := d.Create("g", 1<<20); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("err = %v", err)
	}
}

func TestDFSWriteWhileDownReadableAfterRecovery(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	primary := d.replicaServers("outage-file", 0)[0]
	if err := d.FailServer(primary); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("outage-file", 1<<20); err != nil {
		t.Fatalf("create during outage: %v", err)
	}
	if err := d.RecoverServer(primary); err != nil {
		t.Fatal(err)
	}
	// The recovered primary holds a stale (empty) replica; the read must
	// fall through to a replica that actually has the chunk.
	if _, _, err := d.Read("outage-file", 0, 1<<20); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestDFSDeleteWhileServerDown(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	if _, err := d.Create("doomed", 1<<20); err != nil {
		t.Fatal(err)
	}
	victim := d.replicaServers("doomed", 0)[0]
	if err := d.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("doomed"); err != nil {
		t.Fatalf("delete during outage: %v", err)
	}
	if d.Exists("doomed") {
		t.Fatal("file still exists after delete")
	}
	// The name is immediately reusable, and the fresh file's bytes land
	// only on live replicas.
	if _, err := d.Create("doomed", 2<<20); err != nil {
		t.Fatalf("re-create during outage: %v", err)
	}
	if used := d.servers[victim].Used(HDD); used != 0 {
		t.Fatalf("down server stored %d bytes", used)
	}
	if err := d.RecoverServer(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read("doomed", 0, 2<<20); err != nil {
		t.Fatalf("read re-created file after recovery: %v", err)
	}
}

func TestDFSFailServerValidation(t *testing.T) {
	d, _ := NewDFS(dfsConfig())
	if err := d.FailServer(-1); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := d.RecoverServer(99); err == nil {
		t.Fatal("bad index accepted")
	}
}
