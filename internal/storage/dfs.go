package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"hyperprof/internal/obs"
)

// DFS is a chunked, replicated distributed file system in the mold of
// Colossus: files are split into fixed-size chunks, each chunk is replicated
// onto R chunkservers chosen deterministically, and every chunkserver is a
// TieredStore so hot chunks are served from RAM or SSD.
type DFS struct {
	servers     []*TieredStore
	down        []bool // failure-injection flags per chunkserver
	replication int
	chunkSize   int64
	files       map[string]int64 // file sizes

	// Observability handles (nil when disabled): replicaReads counts chunk
	// reads served, replicaFailovers counts replicas skipped on the way (down
	// or stale) before a chunk was served.
	replicaReads, replicaFailovers *obs.Counter
}

// EnableMetrics registers the DFS's replica-read counters ("dfs.replica.*")
// with an observability registry. A nil registry is a no-op.
func (d *DFS) EnableMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	d.replicaReads = r.Counter("dfs.replica.reads")
	d.replicaFailovers = r.Counter("dfs.replica.failovers")
}

// ErrAllReplicasDown is returned when every replica of a chunk sits on a
// failed chunkserver.
var ErrAllReplicasDown = errors.New("storage: all replicas down")

// DFSConfig configures a DFS.
type DFSConfig struct {
	// Chunkservers is the number of storage servers (must be >= Replication).
	Chunkservers int
	// Replication is the number of replicas per chunk (default 3).
	Replication int
	// ChunkSize is the chunk granularity in bytes (default 64 MiB).
	ChunkSize int64
	// ServerCapacities provisions each chunkserver's tiers.
	ServerCapacities Capacities
	// TierParams overrides media parameters (nil = defaults).
	TierParams map[Tier]TierParams
}

// NewDFS creates a distributed file system.
func NewDFS(cfg DFSConfig) (*DFS, error) {
	if cfg.Replication == 0 {
		cfg.Replication = 3
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 64 << 20
	}
	if cfg.Chunkservers < cfg.Replication {
		return nil, fmt.Errorf("storage: %d chunkservers < replication %d", cfg.Chunkservers, cfg.Replication)
	}
	d := &DFS{
		replication: cfg.Replication,
		chunkSize:   cfg.ChunkSize,
		files:       map[string]int64{},
		down:        make([]bool, cfg.Chunkservers),
	}
	for i := 0; i < cfg.Chunkservers; i++ {
		s, err := NewTieredStore(cfg.ServerCapacities, cfg.TierParams)
		if err != nil {
			return nil, err
		}
		d.servers = append(d.servers, s)
	}
	return d, nil
}

// FailServer marks a chunkserver as down: reads fail over to surviving
// replicas; writes skip it (its replicas go stale until RecoverServer).
func (d *DFS) FailServer(i int) error {
	if i < 0 || i >= len(d.servers) {
		return fmt.Errorf("storage: chunkserver %d out of range", i)
	}
	d.down[i] = true
	return nil
}

// RecoverServer brings a failed chunkserver back.
func (d *DFS) RecoverServer(i int) error {
	if i < 0 || i >= len(d.servers) {
		return fmt.Errorf("storage: chunkserver %d out of range", i)
	}
	d.down[i] = false
	return nil
}

// ServerDown reports whether chunkserver i is currently failed.
func (d *DFS) ServerDown(i int) bool {
	return i >= 0 && i < len(d.down) && d.down[i]
}

// DownServers returns the indices of failed chunkservers.
func (d *DFS) DownServers() []int {
	var out []int
	for i, dn := range d.down {
		if dn {
			out = append(out, i)
		}
	}
	return out
}

// Servers returns the chunkserver stores (for inventory and stats).
func (d *DFS) Servers() []*TieredStore { return d.servers }

// ChunkSize returns the chunk granularity.
func (d *DFS) ChunkSize() int64 { return d.chunkSize }

// chunkKey names a chunk replica object.
func chunkKey(file string, idx int64) string { return fmt.Sprintf("%s#%d", file, idx) }

// replicaServers returns the deterministic replica placement for a chunk.
func (d *DFS) replicaServers(file string, idx int64) []int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", file, idx)
	start := int(h.Sum64() % uint64(len(d.servers)))
	out := make([]int, d.replication)
	for i := range out {
		out[i] = (start + i) % len(d.servers)
	}
	return out
}

// Exists reports whether the file exists.
func (d *DFS) Exists(name string) bool {
	_, ok := d.files[name]
	return ok
}

// FileSize returns a file's size or an error.
func (d *DFS) FileSize(name string) (int64, error) {
	sz, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: file %q", ErrNotFound, name)
	}
	return sz, nil
}

// Create allocates a file of the given size, writing all chunk replicas. The
// returned duration models the client-visible write: chunks stream
// sequentially, replicas write in parallel (max across replicas per chunk).
func (d *DFS) Create(name string, size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("storage: negative file size")
	}
	if d.Exists(name) {
		return 0, fmt.Errorf("storage: file %q exists", name)
	}
	d.files[name] = size
	var total time.Duration
	for idx, remaining := int64(0), size; remaining > 0 || idx == 0; idx++ {
		sz := min64(remaining, d.chunkSize)
		if size == 0 {
			sz = 0
		}
		var worst time.Duration
		placed := 0
		for _, si := range d.replicaServers(name, idx) {
			if d.down[si] {
				continue // re-replication after recovery is out of scope
			}
			dur, err := d.servers[si].Write(chunkKey(name, idx), sz)
			if err != nil {
				return 0, err
			}
			placed++
			if dur > worst {
				worst = dur
			}
		}
		if placed == 0 {
			return 0, fmt.Errorf("%w: %s chunk %d", ErrAllReplicasDown, name, idx)
		}
		total += worst
		remaining -= sz
		if remaining <= 0 {
			break
		}
	}
	return total, nil
}

// Read reads [offset, offset+length) of a file, returning the modeled time:
// the affected chunks are fetched sequentially, each from its first replica.
// It also returns the slowest tier touched, which callers use to decide
// whether an access counted as a cache hit.
func (d *DFS) Read(name string, offset, length int64) (time.Duration, Tier, error) {
	size, ok := d.files[name]
	if !ok {
		return 0, HDD, fmt.Errorf("%w: file %q", ErrNotFound, name)
	}
	if offset < 0 || length < 0 || offset+length > size {
		return 0, HDD, fmt.Errorf("storage: read [%d,%d) out of bounds for %q (size %d)", offset, offset+length, name, size)
	}
	if length == 0 {
		return 0, RAM, nil
	}
	var total time.Duration
	worstTier := RAM
	for idx := offset / d.chunkSize; idx <= (offset+length-1)/d.chunkSize; idx++ {
		// Serve from the first live replica that actually holds the chunk. A
		// recovered server may hold stale replicas (chunks written while it
		// was down were skipped, not re-replicated), so a miss falls through
		// to the next replica rather than failing the read.
		var dur time.Duration
		var tier Tier
		served := false
		for _, cand := range d.replicaServers(name, idx) {
			if d.down[cand] {
				d.replicaFailovers.Inc()
				continue
			}
			var err error
			dur, tier, err = d.servers[cand].Read(chunkKey(name, idx))
			if err == nil {
				served = true
				break
			}
			if !errors.Is(err, ErrNotFound) {
				return 0, HDD, err
			}
			d.replicaFailovers.Inc() // stale replica: fall through to the next
		}
		if !served {
			return 0, HDD, fmt.Errorf("%w: %s chunk %d", ErrAllReplicasDown, name, idx)
		}
		d.replicaReads.Inc()
		total += dur
		if tier > worstTier {
			worstTier = tier
		}
	}
	return total, worstTier, nil
}

// Delete removes a file and all chunk replicas.
func (d *DFS) Delete(name string) error {
	size, ok := d.files[name]
	if !ok {
		return fmt.Errorf("%w: file %q", ErrNotFound, name)
	}
	nChunks := (size + d.chunkSize - 1) / d.chunkSize
	if nChunks == 0 {
		nChunks = 1
	}
	for idx := int64(0); idx < nChunks; idx++ {
		for _, si := range d.replicaServers(name, idx) {
			d.servers[si].Delete(chunkKey(name, idx))
		}
	}
	delete(d.files, name)
	return nil
}

// TierHits sums read counts per tier across all chunkservers.
func (d *DFS) TierHits() map[Tier]int64 {
	out := map[Tier]int64{}
	for _, s := range d.servers {
		for _, t := range Tiers() {
			out[t] += s.Stats(t).Reads
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
