package storage

import (
	"fmt"

	"hyperprof/internal/taxonomy"
)

// Inventory aggregates per-platform storage ownership across the fleet, the
// accounting behind Table 1's storage-to-storage ratios. Production derives
// these from internal logging over a week; here they derive from the
// capacities each platform's servers are provisioned with.
type Inventory struct {
	owned map[taxonomy.Platform]Capacities
}

// NewInventory creates an empty inventory.
func NewInventory() *Inventory {
	return &Inventory{owned: map[taxonomy.Platform]Capacities{}}
}

// AddServer records that platform owns one server with the given capacities.
func (inv *Inventory) AddServer(p taxonomy.Platform, caps Capacities) {
	inv.AddServers(p, caps, 1)
}

// AddServers records n identical servers.
func (inv *Inventory) AddServers(p taxonomy.Platform, caps Capacities, n int) {
	cur := inv.owned[p]
	if cur == nil {
		cur = Capacities{}
		inv.owned[p] = cur
	}
	for _, t := range Tiers() {
		cur[t] += caps[t] * int64(n)
	}
}

// AddStore records a TieredStore's configured capacities.
func (inv *Inventory) AddStore(p taxonomy.Platform, s *TieredStore) {
	inv.AddServer(p, Capacities{RAM: s.Capacity(RAM), SSD: s.Capacity(SSD), HDD: s.Capacity(HDD)})
}

// Owned returns total bytes owned by a platform at a tier.
func (inv *Inventory) Owned(p taxonomy.Platform, t Tier) int64 {
	return inv.owned[p][t]
}

// Ratios returns the platform's RAM:SSD:HDD ratio normalized to RAM = 1
// (the presentation of Table 1). It returns zeros when the platform owns no
// RAM.
func (inv *Inventory) Ratios(p taxonomy.Platform) (ram, ssd, hdd float64) {
	caps := inv.owned[p]
	if caps == nil || caps[RAM] == 0 {
		return 0, 0, 0
	}
	base := float64(caps[RAM])
	return 1, float64(caps[SSD]) / base, float64(caps[HDD]) / base
}

// RatioString renders the Table 1 cell, e.g. "1:16:164".
func (inv *Inventory) RatioString(p taxonomy.Platform) string {
	ram, ssd, hdd := inv.Ratios(p)
	if ram == 0 {
		return "-"
	}
	return fmt.Sprintf("1:%.0f:%.0f", ssd, hdd)
}
