// Pipeline workload: the cross-platform scenario from the ROADMAP — a
// BigTable ingest stage feeding a BigQuery iterative-analytics stage
// (PageRank over the shuffle plane) feeding a Spanner serving stage, all in
// ONE simulation. Each logical record owns one trace ID: the ingest span,
// the analytics span and the serving span are children sharing that ID, so
// the Chrome export renders a single end-to-end request crossing all three
// platform process lanes. A lineage ledger tracks every record across the
// stage boundaries and exposes the exactly-once handoff invariant to the
// safety checker.
package workload

import (
	"fmt"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/check"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/taxonomy"
	"hyperprof/internal/trace"
)

// PipelineConfig sizes and shapes a pipeline run.
type PipelineConfig struct {
	// Records is the number of logical records flowing end to end
	// (<= 0 means 64).
	Records int
	// Batches is the number of analytic batches the records are grouped
	// into; each batch runs one iterative PageRank query when its last
	// record lands (<= 0 means 4, clamped to Records).
	Batches int
	// Clients is the ingest client count (<= 0 means 4, clamped to Records).
	Clients int
	// Iterations is the PageRank round count per batch query
	// (<= 0 means the engine default).
	Iterations int
	// ForceReplay deterministically re-runs batch 0's analytics and handoff
	// after its first pass completes, exercising the dedup latch at the
	// BigQuery→Spanner boundary the way an at-least-once upstream would.
	ForceReplay bool
	// DisableHandoffDedup is the broken-knob fixture: replayed batches
	// re-serve their outputs, double-writing every record in the batch. The
	// pipeline-handoff invariant convicts it.
	DisableHandoffDedup bool
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Records <= 0 {
		c.Records = 64
	}
	if c.Batches <= 0 {
		c.Batches = 4
	}
	if c.Batches > c.Records {
		c.Batches = c.Records
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Clients > c.Records {
		c.Clients = c.Records
	}
	return c
}

// PipelineLedger is the per-record lineage record across stage boundaries.
// The handoff invariant it enforces: every record is ingested exactly once,
// every batch is analyzed at least once (replays are legal), and every
// record is served exactly once — a replayed batch must be deduplicated at
// the BigQuery→Spanner boundary, never double-written.
type PipelineLedger struct {
	ingested []int
	analyzed []int
	served   []int
	// servedBatch counts serve passes that actually wrote; deduped counts
	// serve passes suppressed by the handoff latch.
	servedBatch []int
	deduped     int
	done        bool
}

func newPipelineLedger(records, batches int) *PipelineLedger {
	return &PipelineLedger{
		ingested:    make([]int, records),
		analyzed:    make([]int, batches),
		served:      make([]int, records),
		servedBatch: make([]int, batches),
	}
}

// beginServe is the handoff dedup latch: the first serve pass for a batch
// proceeds, later passes are suppressed — unless the broken knob disables
// the latch, in which case every pass writes.
func (l *PipelineLedger) beginServe(b int, dedupDisabled bool) bool {
	if l.servedBatch[b] > 0 && !dedupDisabled {
		l.deduped++
		return false
	}
	l.servedBatch[b]++
	return true
}

// Replays counts analytic passes beyond the first, summed over batches.
func (l *PipelineLedger) Replays() int {
	n := 0
	for _, a := range l.analyzed {
		if a > 1 {
			n += a - 1
		}
	}
	return n
}

// Deduped counts serve passes suppressed by the handoff latch.
func (l *PipelineLedger) Deduped() int { return l.deduped }

// RegisterInvariants registers the exactly-once handoff invariant with a
// checker registry. The check only reports once the pipeline has drained, so
// a mid-run snapshot of partially-flowed records is not a violation.
func (l *PipelineLedger) RegisterInvariants(reg *check.Registry) {
	reg.Register("pipeline-handoff", l.checkHandoff)
}

func (l *PipelineLedger) checkHandoff() []string {
	if !l.done {
		return nil
	}
	var out []string
	for r, n := range l.ingested {
		if n != 1 {
			out = append(out, fmt.Sprintf("record %d ingested %d times, want exactly 1", r, n))
		}
	}
	for b, n := range l.analyzed {
		if n < 1 {
			out = append(out, fmt.Sprintf("batch %d analyzed %d times, want at least 1", b, n))
		}
	}
	for r, n := range l.served {
		if n != 1 {
			out = append(out, fmt.Sprintf("record %d served %d times across the BigQuery→Spanner handoff, want exactly 1", r, n))
		}
	}
	return out
}

// PipelineRun is the handle to a scheduled pipeline workload.
type PipelineRun struct {
	*Run
	// Ledger is the lineage ledger; register its invariants with the run's
	// checker registry before env.K.Run().
	Ledger *PipelineLedger
	// EndToEnd holds, per record, the ingest-start to serving-finish
	// latency (zero for records that never completed the last stage).
	EndToEnd []time.Duration
}

// Pipeline schedules the three-stage cross-platform workload. All three
// platforms must have been built on environments sharing env.K (see
// platform.NewEnvOn), and env.Tracer must be the tracer every stage reports
// to, so the stage spans of one record share a trace ID. Call env.K.Run()
// afterwards to execute; the serving and analytics tiers are stopped when
// the pipeline drains.
func Pipeline(env *platform.Env, ingest *bigtable.DB, analytics *bigquery.Engine, serving *spanner.DB, cfg PipelineConfig) *PipelineRun {
	cfg = cfg.withDefaults()
	run := &PipelineRun{
		Run:      &Run{Done: sim.NewSignal(env.K)},
		Ledger:   newPipelineLedger(cfg.Records, cfg.Batches),
		EndToEnd: make([]time.Duration, cfg.Records),
	}
	// Records are grouped into contiguous batches; the first Records%Batches
	// batches take one extra record.
	per, extra := cfg.Records/cfg.Batches, cfg.Records%cfg.Batches
	batchStart := make([]int, cfg.Batches+1)
	for b := 0; b < cfg.Batches; b++ {
		n := per
		if b < extra {
			n++
		}
		batchStart[b+1] = batchStart[b] + n
	}
	batchOf := func(r int) int {
		for b := 0; b < cfg.Batches; b++ {
			if r < batchStart[b+1] {
				return b
			}
		}
		return cfg.Batches - 1
	}

	roots := make([]*trace.Trace, cfg.Records)
	batchLeft := make([]int, cfg.Batches)
	batchReady := make([]*sim.Signal, cfg.Batches)
	for b := range batchReady {
		batchLeft[b] = batchStart[b+1] - batchStart[b]
		batchReady[b] = sim.NewSignal(env.K)
	}

	// Stage 1: ingest clients write records into BigTable, each record under
	// its own root span. A batch's analytics unblocks when its last record
	// lands, so the stages overlap in time like a streaming pipeline.
	ingestBar := sim.NewBarrier(env.K, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		c := c
		rng := env.RNG.Fork()
		env.K.Go(fmt.Sprintf("pipeline-ingest-%d", c), func(p *sim.Proc) {
			defer ingestBar.Done()
			for r := c; r < cfg.Records; r += cfg.Clients {
				t := r % ingest.NumTablets()
				row := rng.Intn(ingest.RowsPerTablet())
				val := []byte(fmt.Sprintf("pipeline-record-%04d", r))
				root := env.Tracer.Start(taxonomy.BigTable, p.Now())
				err := ingest.Put(p, root, t, row, val)
				env.Tracer.Finish(root, p.Now())
				roots[r] = root
				run.Ledger.ingested[r]++
				run.Completed++
				if err != nil {
					run.fail("pipeline-ingest", err)
				}
				b := batchOf(r)
				if batchLeft[b]--; batchLeft[b] == 0 {
					batchReady[b].Fire()
				}
				p.Sleep(time.Duration(rng.Exp(float64(time.Millisecond))))
			}
		})
	}

	// Stages 2+3: one process per batch waits for its records, runs the
	// iterative analytics query, then hands the derived results to Spanner
	// through the dedup latch.
	analyze := func(p *sim.Proc, b int) {
		recs := batchStart[b+1] - batchStart[b]
		leader := batchStart[b]
		qStart := p.Now()
		// The batch leader's child span rides the query for real intervals;
		// the other records in the batch observe the shared query as remote
		// work on their own spans.
		qtr := env.Tracer.StartChild(roots[leader], taxonomy.BigQuery, qStart)
		q := bigquery.Query{Kind: bigquery.PageRank, Iterations: cfg.Iterations}
		var res *bigquery.Result
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if res, err = analytics.Run(p, qtr, q); err == nil {
				break
			}
		}
		env.Tracer.Finish(qtr, p.Now())
		for r := leader + 1; r < leader+recs; r++ {
			tr := env.Tracer.StartChild(roots[r], taxonomy.BigQuery, qStart)
			tr.Annotate(qStart, p.Now(), trace.Remote)
			env.Tracer.Finish(tr, p.Now())
		}
		run.Completed++
		if err != nil {
			run.fail("pipeline-analytics", err)
			return
		}
		run.Ledger.analyzed[b]++

		// Handoff: serve each record's derived value unless the latch says
		// this batch already served.
		if !run.Ledger.beginServe(b, cfg.DisableHandoffDedup) {
			return
		}
		top := int64(-1)
		if len(res.SortedKeys) > 0 {
			top = res.SortedKeys[0]
		}
		for r := leader; r < leader+recs; r++ {
			str := env.Tracer.StartChild(roots[r], taxonomy.Spanner, p.Now())
			g := r % serving.NumGroups()
			row := r % serving.RowsPerGroup()
			val := []byte(fmt.Sprintf("pipeline-serve-%04d-top-%03d-rank-%d", r, top, res.Groups[top]))
			var serr error
			for attempt := 0; attempt < 3; attempt++ {
				if serr = serving.Commit(p, str, g, row, val); serr == nil {
					break
				}
			}
			env.Tracer.Finish(str, p.Now())
			run.Completed++
			if serr != nil {
				run.fail("pipeline-serving", serr)
				continue
			}
			run.Ledger.served[r]++
			run.EndToEnd[r] = p.Now() - roots[r].Start
		}
	}
	batchBar := sim.NewBarrier(env.K, cfg.Batches)
	for b := 0; b < cfg.Batches; b++ {
		b := b
		env.K.Go(fmt.Sprintf("pipeline-batch-%d", b), func(p *sim.Proc) {
			defer batchBar.Done()
			p.Wait(batchReady[b])
			analyze(p, b)
			if cfg.ForceReplay && b == 0 {
				analyze(p, b)
			}
		})
	}

	env.K.Go("pipeline-shutdown", func(p *sim.Proc) {
		p.WaitBarrier(ingestBar)
		p.WaitBarrier(batchBar)
		run.Ledger.done = true
		analytics.Stop()
		serving.Stop()
		run.Done.Fire()
	})
	return run
}
