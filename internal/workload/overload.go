package workload

// Multi-tenant open-loop overload driver: each tenant is an independent
// Poisson arrival process whose rate can be scaled mid-run (the flash-crowd
// hook for the fault engine), optionally gated by a netsim.TenantGovernor so
// per-tenant QoS shares are enforced at the front door. Goodput is accounted
// in fixed windows of virtual time, which is what the metastability analysis
// needs: a collapsed system shows near-zero windows long after the trigger
// cleared, a protected one recovers. Everything is a pure function of the sim
// clock and the forked RNG streams.

import (
	"fmt"
	"time"

	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/stats"
)

// OverloadTenant describes one tenant of an overload workload.
type OverloadTenant struct {
	Name string
	// Weight is the tenant's QoS weight (relative admission share when a
	// governor is attached, and the normalization for the fairness index).
	Weight float64
	// RatePerSec is the tenant's base Poisson arrival rate.
	RatePerSec float64
}

// OverloadConfig configures the overload driver.
type OverloadConfig struct {
	// Duration is the arrival horizon: arrivals stop once the sim clock
	// passes it (operations in flight still complete).
	Duration time.Duration
	// Window is the goodput accounting bucket width.
	Window time.Duration
	// Tenants are the arrival processes, registered in order.
	Tenants []OverloadTenant
	// Governor, when non-nil, gates every arrival through weighted per-tenant
	// admission; the driver registers the tenants (in order) with it.
	Governor *netsim.TenantGovernor
	// Shape modulates every tenant's arrival process (each tenant gets an
	// independent burst envelope from its own RNG stream). The zero value
	// keeps the exact legacy homogeneous-Poisson draw sequence, and the
	// flash-crowd rate multiplier composes with the envelope either way.
	Shape ArrivalShape
}

// OverloadWindow aggregates one accounting window. Arrivals and Throttled
// are counted at arrival time, Successes and Failures at completion time.
type OverloadWindow struct {
	Start                                    time.Duration
	Arrivals, Successes, Failures, Throttled int
}

// OverloadTenantStats is the per-tenant accounting of an overload run.
type OverloadTenantStats struct {
	Name                                     string
	Weight                                   float64
	Arrivals, Successes, Failures, Throttled int
}

// OverloadRun is a handle to a scheduled overload workload.
type OverloadRun struct {
	// Done fires when every generator has stopped and every operation in
	// flight has completed.
	Done *sim.Signal
	// Windows holds the goodput accounting buckets in time order.
	Windows []OverloadWindow
	// Tenants holds per-tenant stats in registration order.
	Tenants []*OverloadTenantStats

	window      time.Duration
	mult        map[string]float64
	byName      map[string]*OverloadTenantStats
	gensLeft    int
	outstanding int
}

// SetRateMult scales a tenant's arrival rate mid-run: the flash-crowd hook
// the fault engine drives. mult <= 0 restores the base rate. Unknown tenants
// are ignored.
func (r *OverloadRun) SetRateMult(tenant string, mult float64) {
	if _, ok := r.byName[tenant]; !ok {
		return
	}
	if mult <= 0 {
		mult = 1
	}
	r.mult[tenant] = mult
}

// win returns the accounting window covering instant at, growing the slice
// as needed.
func (r *OverloadRun) win(at time.Duration) *OverloadWindow {
	idx := int(at / r.window)
	for len(r.Windows) <= idx {
		r.Windows = append(r.Windows, OverloadWindow{Start: time.Duration(len(r.Windows)) * r.window})
	}
	return &r.Windows[idx]
}

// GoodputBetween sums successful completions in windows starting within
// [from, to).
func (r *OverloadRun) GoodputBetween(from, to time.Duration) int {
	total := 0
	for _, w := range r.Windows {
		if w.Start >= from && w.Start < to {
			total += w.Successes
		}
	}
	return total
}

// Totals sums arrivals, successes, failures and throttles across tenants.
func (r *OverloadRun) Totals() (arrivals, successes, failures, throttled int) {
	for _, t := range r.Tenants {
		arrivals += t.Arrivals
		successes += t.Successes
		failures += t.Failures
		throttled += t.Throttled
	}
	return
}

// Fairness returns Jain's index over the tenants' weight-normalized success
// counts (1.0 = goodput exactly proportional to weights).
func (r *OverloadRun) Fairness() float64 {
	var sum, sumSq float64
	for _, t := range r.Tenants {
		x := float64(t.Successes) / t.Weight
		sum += x
		sumSq += x * x
	}
	if len(r.Tenants) == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(r.Tenants)) * sumSq)
}

func (r *OverloadRun) maybeFinish() {
	if r.gensLeft == 0 && r.outstanding == 0 {
		r.Done.Fire()
	}
}

// Overload schedules a multi-tenant open-loop workload. setup is called once
// per tenant (in registration order, with that tenant's forked RNG) and
// returns the per-arrival prepare function; as in openLoop, prepare runs on
// the tenant's arrival process and returns the operation to execute in its
// own process. Call env.K.Run() afterwards to execute.
func Overload(env *platform.Env, cfg OverloadConfig,
	setup func(tenant string, rng *stats.RNG) func() func(p *sim.Proc) error) *OverloadRun {
	if cfg.Window <= 0 {
		cfg.Window = 100 * time.Millisecond
	}
	run := &OverloadRun{
		Done:     sim.NewSignal(env.K),
		window:   cfg.Window,
		mult:     map[string]float64{},
		byName:   map[string]*OverloadTenantStats{},
		gensLeft: len(cfg.Tenants),
	}
	if cfg.Duration <= 0 || len(cfg.Tenants) == 0 {
		run.Done.Fire()
		return run
	}
	for _, tn := range cfg.Tenants {
		w := tn.Weight
		if w <= 0 {
			w = 1
		}
		st := &OverloadTenantStats{Name: tn.Name, Weight: w}
		run.Tenants = append(run.Tenants, st)
		run.byName[tn.Name] = st
		run.mult[tn.Name] = 1
	}
	for i, tn := range cfg.Tenants {
		tn := tn
		st := run.Tenants[i]
		var gov *netsim.Tenant
		if cfg.Governor != nil {
			gov = cfg.Governor.AddTenant(tn.Name, st.Weight)
		}
		if tn.RatePerSec <= 0 {
			run.gensLeft--
			run.maybeFinish()
			continue
		}
		rng := env.RNG.Fork()
		prepare := setup(tn.Name, rng)
		baseGap := float64(time.Second) / tn.RatePerSec
		shaped := cfg.Shape.enabled()
		sh := cfg.Shape.withDefaults()
		maxMult := sh.maxMult()
		var burst *burstEnv
		if shaped && sh.Burst {
			burst = newBurstEnv(rng, sh)
		}
		// nextArrival sleeps until the tenant's next accepted arrival or the
		// horizon, whichever comes first. Unshaped it is the legacy single Exp
		// gap; shaped it thins an envelope process at the peak rate, exactly
		// as openLoop does, with the flash-crowd multiplier folded into the
		// candidate rate so SetRateMult keeps working mid-run.
		nextArrival := func(p *sim.Proc) bool {
			for {
				gap := baseGap / run.mult[tn.Name]
				if shaped {
					gap /= maxMult
				}
				p.Sleep(time.Duration(rng.Exp(gap)))
				if p.Now() >= cfg.Duration {
					return false
				}
				if !shaped {
					return true
				}
				m := 1.0
				if burst != nil {
					m *= burst.mult(p.Now())
				}
				if sh.Diurnal {
					m *= sh.diurnalMult(p.Now())
				}
				if rng.Float64()*maxMult < m {
					return true
				}
			}
		}
		env.K.Go(fmt.Sprintf("overload-%s-arrivals", tn.Name), func(p *sim.Proc) {
			defer func() {
				run.gensLeft--
				run.maybeFinish()
			}()
			for {
				if !nextArrival(p) {
					return
				}
				at := p.Now()
				st.Arrivals++
				run.win(at).Arrivals++
				if gov != nil && !cfg.Governor.Admit(gov) {
					st.Throttled++
					run.win(at).Throttled++
					continue
				}
				op := prepare()
				run.outstanding++
				env.K.Go(fmt.Sprintf("overload-%s-op", tn.Name), func(op2 *sim.Proc) {
					err := op(op2)
					done := op2.Now()
					if err == nil {
						st.Successes++
						run.win(done).Successes++
					} else {
						st.Failures++
						run.win(done).Failures++
					}
					if gov != nil {
						cfg.Governor.Done(gov, err == nil)
					}
					run.outstanding--
					run.maybeFinish()
				})
			}
		})
	}
	return run
}
