package workload

import (
	"testing"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/spanner"
	"hyperprof/internal/trace"
)

func spannerFixture(t *testing.T, seed uint64) (*platform.Env, *spanner.DB) {
	t.Helper()
	env := platform.NewEnv(seed, 1)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	cfg := spanner.DefaultConfig()
	cfg.Groups = 3
	cfg.RowsPerGroup = 500
	cfg.QueryScanRows = 40
	db, err := spanner.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, db
}

func TestSpannerWorkload(t *testing.T) {
	env, db := spannerFixture(t, 10)
	run := Spanner(env, db, DefaultSpannerMix(), 4, 120)
	env.K.Run()
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if run.Completed != 120 {
		t.Fatalf("completed = %d", run.Completed)
	}
	if !run.Done.Fired() {
		t.Fatal("done signal not fired")
	}
	if got := env.Tracer.Total(); got != 120 {
		t.Fatalf("traces = %d", got)
	}
	// The default mix must have exercised all three op types.
	if db.Reads == 0 || db.Writes == 0 || db.Queries == 0 {
		t.Fatalf("op counts: r=%d w=%d q=%d", db.Reads, db.Writes, db.Queries)
	}
	if db.Reads <= db.Writes {
		t.Fatalf("mix skew wrong: reads=%d writes=%d", db.Reads, db.Writes)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

func TestSpannerWorkloadGroupShape(t *testing.T) {
	env, db := spannerFixture(t, 11)
	run := Spanner(env, db, DefaultSpannerMix(), 8, 600)
	env.K.Run()
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	rows := trace.Aggregate(env.Tracer.Sampled())
	byGroup := map[trace.Group]trace.GroupStats{}
	for _, r := range rows {
		byGroup[r.Group] = r
	}
	// Paper shape: Spanner is primarily CPU heavy (>60% of queries).
	if f := byGroup[trace.GroupCPUHeavy].QueryFrac; f < 0.5 {
		t.Errorf("CPU-heavy fraction = %.2f, want >= 0.5", f)
	}
	// Remote-heavy queries (commit quorums) exist.
	if byGroup[trace.GroupRemoteHeavy].Queries == 0 {
		t.Error("no remote-heavy queries")
	}
	ov := byGroup[trace.GroupOverall]
	if ov.CPUFrac < 0.35 {
		t.Errorf("overall CPU frac = %.2f, want >= 0.35", ov.CPUFrac)
	}
}

func TestBigTableWorkload(t *testing.T) {
	env := platform.NewEnv(12, 1)
	cfg := bigtable.DefaultConfig()
	cfg.Tablets = 4
	cfg.TabletServers = 2
	cfg.RowsPerTablet = 400
	cfg.ScanRows = 40
	db, err := bigtable.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := BigTable(env, db, DefaultBigTableMix(), 4, 200)
	env.K.Run()
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if run.Completed != 200 {
		t.Fatalf("completed = %d", run.Completed)
	}
	if db.Gets == 0 || db.Puts == 0 || db.Scans == 0 {
		t.Fatalf("op counts: g=%d p=%d s=%d", db.Gets, db.Puts, db.Scans)
	}
	// Compactions should have occurred under 70 puts.
	if db.MinorCompactions == 0 {
		t.Error("no minor compactions under sustained puts")
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

func TestBigQueryWorkload(t *testing.T) {
	env := platform.NewEnv(13, 1)
	cfg := bigquery.DefaultConfig()
	cfg.FactPartitions = 8
	cfg.RowsPerPartition = 300
	cfg.Workers = 4
	e, err := bigquery.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := BigQuery(env, e, DefaultBigQueryMix(), 3, 30)
	env.K.Run()
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if run.Completed != 30 {
		t.Fatalf("completed = %d", run.Completed)
	}
	total := 0
	for _, n := range e.Queries {
		total += n
	}
	if total != 30 {
		t.Fatalf("engine queries = %d", total)
	}
	// ScanAgg dominates the default mix.
	if e.Queries[bigquery.ScanAgg] < e.Queries[bigquery.Report] {
		t.Fatalf("mix skew: %v", e.Queries)
	}
	rows := trace.Aggregate(env.Tracer.Sampled())
	var overall trace.GroupStats
	for _, r := range rows {
		if r.Group == trace.GroupOverall {
			overall = r
		}
	}
	// Paper shape: BigQuery is IO/remote dominated, not CPU dominated.
	if overall.CPUFrac > 0.55 {
		t.Errorf("overall CPU frac = %.2f, want IO/remote dominated", overall.CPUFrac)
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	runOnce := func() int {
		env, db := spannerFixture(t, 99)
		run := Spanner(env, db, DefaultSpannerMix(), 3, 60)
		env.K.Run()
		if err := run.Err(); err != nil {
			t.Fatal(err)
		}
		return db.Reads*1000000 + db.Writes*1000 + db.Queries
	}
	if runOnce() != runOnce() {
		t.Fatal("workload nondeterministic")
	}
}

func TestRunErrHelper(t *testing.T) {
	r := &Run{}
	if r.Err() != nil {
		t.Fatal("empty run has error")
	}
	r.fail("op", errSentinel)
	if r.Err() == nil || len(r.Errors) != 1 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

var errSentinel = sentinelErr{}

type sentinelErr struct{}

func (sentinelErr) Error() string { return "sentinel" }

func TestSpannerOpenLoop(t *testing.T) {
	env, db := spannerFixture(t, 50)
	res := SpannerOpenLoop(env, db, DefaultSpannerMix(), 2000, 150)
	env.K.Run()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Latencies.N() != 150 {
		t.Fatalf("latencies = %d", res.Latencies.N())
	}
	if res.Latencies.Quantile(0.5) <= 0 {
		t.Fatal("zero median latency")
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}

func TestSpannerOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	p99At := func(rate float64) float64 {
		env, db := spannerFixture(t, 51)
		res := SpannerOpenLoop(env, db, DefaultSpannerMix(), rate, 250)
		env.K.Run()
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return res.Latencies.Quantile(0.99)
	}
	light := p99At(500)
	heavy := p99At(40000)
	if heavy <= light {
		t.Fatalf("p99 under heavy load (%.4fs) <= light load (%.4fs)", heavy, light)
	}
}

func TestSpannerOpenLoopValidation(t *testing.T) {
	env, db := spannerFixture(t, 52)
	res := SpannerOpenLoop(env, db, DefaultSpannerMix(), 0, 10)
	if res.Err() == nil {
		t.Fatal("zero rate accepted")
	}
	db.Stop()
	env.K.Run()
}

func TestBigTableOpenLoop(t *testing.T) {
	env := platform.NewEnv(60, 1)
	cfg := bigtable.DefaultConfig()
	cfg.Tablets = 4
	cfg.TabletServers = 2
	cfg.RowsPerTablet = 400
	db, err := bigtable.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := BigTableOpenLoop(env, db, DefaultBigTableMix(), 2000, 120)
	env.K.Run()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 || res.Latencies.N() != 120 {
		t.Fatalf("completed=%d latencies=%d", res.Completed, res.Latencies.N())
	}
	if env.K.Live() != 0 {
		t.Fatalf("leaked procs: %d", env.K.Live())
	}
}
