package workload

import "testing"

// BenchmarkPipelineHandoff measures the cross-platform pipeline's handoff
// ledger hot path: the dedup latch every BigQuery→Spanner serve pass rides.
// One op is a full replayed serve pass over every batch — after the first
// pass each call takes the suppression branch, the path replayed handoffs
// take under fault injection — and it must stay allocation-free: the
// faulted arms call it once per replayed serve attempt, inside the
// simulation's critical path. A whole pass per op keeps the measurement
// above the sub-nanosecond noise floor of the single latch check.
func BenchmarkPipelineHandoff(b *testing.B) {
	b.ReportAllocs()
	const batches = 64
	l := newPipelineLedger(256, batches)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for bi := 0; bi < batches; bi++ {
			l.beginServe(bi, false)
		}
	}
}
