package workload

import (
	"testing"
	"time"

	"hyperprof/internal/netsim"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
)

// arrivalTrace drives the open-loop helper with an instantaneous no-op
// operation and returns the arrival instants, exposing the arrival process
// itself for shape assertions.
func arrivalTrace(t *testing.T, seed uint64, rate float64, total int, opts OpenLoopOpts) []time.Duration {
	t.Helper()
	env := platform.NewEnv(seed, 1)
	var arrivals []time.Duration
	res := openLoop(env, "shape-probe", rate, total, opts,
		func(rng *stats.RNG) func() func(p *sim.Proc) error {
			return func() func(p *sim.Proc) error {
				return func(p *sim.Proc) error {
					arrivals = append(arrivals, p.Now())
					return nil
				}
			}
		}, nil)
	env.K.Run()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != total {
		t.Fatalf("recorded %d arrivals, want %d", len(arrivals), total)
	}
	return arrivals
}

// dispersion returns the variance-to-mean ratio of per-window arrival
// counts — 1 for Poisson, > 1 for bursty traffic.
func dispersion(arrivals []time.Duration, window time.Duration) float64 {
	last := arrivals[len(arrivals)-1]
	counts := make([]float64, int(last/window)+1)
	for _, a := range arrivals {
		counts[int(a/window)]++
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	var varsum float64
	for _, c := range counts {
		varsum += (c - mean) * (c - mean)
	}
	return varsum / float64(len(counts)) / mean
}

// TestArrivalShapeDeterminism pins the satellite requirement: a shaped run
// is a pure function of the seed — identical arrival instants on replay,
// different instants under a different seed.
func TestArrivalShapeDeterminism(t *testing.T) {
	opts := OpenLoopOpts{Shape: ArrivalShape{Burst: true, Diurnal: true}}
	a := arrivalTrace(t, 7, 4000, 2000, opts)
	b := arrivalTrace(t, 7, 4000, 2000, opts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := arrivalTrace(t, 8, 4000, 2000, opts)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shaped arrivals")
	}
}

// TestArrivalShapeBurstIsBurstier checks the Pareto on–off envelope
// actually produces over-dispersed (self-similar-style) arrivals while
// preserving the configured mean rate.
func TestArrivalShapeBurstIsBurstier(t *testing.T) {
	const rate, total = 4000.0, 4000
	plain := arrivalTrace(t, 11, rate, total, OpenLoopOpts{})
	burst := arrivalTrace(t, 11, rate, total, OpenLoopOpts{Shape: ArrivalShape{Burst: true}})

	window := 20 * time.Millisecond
	dPlain, dBurst := dispersion(plain, window), dispersion(burst, window)
	if dBurst < 2*dPlain {
		t.Fatalf("burst dispersion %.2f not clearly above Poisson dispersion %.2f", dBurst, dPlain)
	}

	// The OFF-multiplier compensation keeps the long-run rate in the right
	// ballpark. Convergence of the time-average is slow by construction —
	// infinite-variance period lengths are what make the aggregate
	// self-similar — so this is a coarse corridor, not an equality: the
	// makespan must stay within ~3x of the unshaped run (the envelope peaks
	// at 4x, so an uncompensated envelope would approach that bound over a
	// run that starts ON).
	mPlain, mBurst := plain[len(plain)-1], burst[len(burst)-1]
	if mBurst > 3*mPlain || mBurst < mPlain/3 {
		t.Fatalf("burst makespan %v vs plain %v: mean rate not even coarsely preserved", mBurst, mPlain)
	}
}

// TestArrivalShapeDiurnalFollowsEnvelope checks the sinusoidal envelope:
// with a full period spanning the run, the rising half-period must receive
// more arrivals than the falling one.
func TestArrivalShapeDiurnalFollowsEnvelope(t *testing.T) {
	shape := ArrivalShape{Diurnal: true, DiurnalAmp: 0.9, DiurnalPeriod: time.Second}
	arrivals := arrivalTrace(t, 13, 4000, 3000, OpenLoopOpts{Shape: shape})
	var high, low int
	for _, a := range arrivals {
		phase := a % time.Second
		if phase < 500*time.Millisecond {
			high++ // sin positive: above-mean rate
		} else {
			low++ // sin negative: below-mean rate
		}
	}
	if high <= low*2 {
		t.Fatalf("arrivals high-half=%d low-half=%d: diurnal envelope not expressed", high, low)
	}
}

// TestOpenLoopSketchRecorder checks the Recorder override: a sketch-backed
// open-loop run records every latency into the sketch instead of an exact
// summary.
func TestOpenLoopSketchRecorder(t *testing.T) {
	env := platform.NewEnv(17, 1)
	sk := stats.NewSketch(0.01)
	res := openLoop(env, "sketch-probe", 2000, 500, OpenLoopOpts{Latencies: sk},
		func(rng *stats.RNG) func() func(p *sim.Proc) error {
			return func() func(p *sim.Proc) error {
				d := time.Duration(1+rng.Intn(1000)) * time.Microsecond
				return func(p *sim.Proc) error {
					p.Sleep(d)
					return nil
				}
			}
		}, nil)
	env.K.Run()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if sk.N() != 500 {
		t.Fatalf("sketch recorded %d latencies, want 500", sk.N())
	}
	if res.Latencies != stats.Recorder(sk) {
		t.Fatal("result does not expose the caller's recorder")
	}
	if p50 := sk.Quantile(0.5); p50 <= 0 || p50 > 0.0012 {
		t.Fatalf("sketch p50 %.6fs outside the sleep range", p50)
	}
}

// closedLoopElapsed runs a shaped closed-loop Spanner workload and returns
// its drain time.
func closedLoopElapsed(t *testing.T, seed uint64, opts ClosedLoopOpts) time.Duration {
	t.Helper()
	env := platform.NewEnv(seed, 1)
	env.Net = netsim.New(env.K, spanner.RecommendedNetConfig())
	db, err := spanner.New(env, spanner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := Spanner(env, db, DefaultSpannerMix(), 4, 200, opts)
	env.K.Run()
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if run.Completed != 200 {
		t.Fatalf("completed = %d", run.Completed)
	}
	var at time.Duration
	// Done has fired; the kernel's final event time bounds the drain, so use
	// the trace horizon instead: the last finished operation's end.
	for _, tr := range env.Tracer.Sampled() {
		if tr.End > at {
			at = tr.End
		}
	}
	return at
}

// TestClosedLoopShapeDeterministicAndDistinct pins the satellite wiring for
// the closed-loop drivers: a shaped run replays bit-identically under the
// same seed, and shaping actually changes the schedule relative to the
// legacy homogeneous think times.
func TestClosedLoopShapeDeterministicAndDistinct(t *testing.T) {
	shaped := ClosedLoopOpts{Shape: ArrivalShape{Burst: true, Diurnal: true}}
	a := closedLoopElapsed(t, 21, shaped)
	b := closedLoopElapsed(t, 21, shaped)
	if a != b {
		t.Fatalf("shaped closed-loop run not deterministic: %v vs %v", a, b)
	}
	plain := closedLoopElapsed(t, 21, ClosedLoopOpts{})
	if plain == a {
		t.Fatalf("shaping had no effect on the closed-loop schedule (both drained at %v)", a)
	}
}
