// Package workload drives the platform simulations with calibrated
// operation mixes — the synthetic stand-in for the live production traffic
// the paper profiles (see the substitution table in DESIGN.md). Each driver
// spawns closed-loop clients that issue traced operations with exponential
// think times until a global budget is exhausted, then shuts the platform
// down so the simulation drains.
package workload

import (
	"fmt"
	"time"

	"hyperprof/internal/bigquery"
	"hyperprof/internal/bigtable"
	"hyperprof/internal/platform"
	"hyperprof/internal/sim"
	"hyperprof/internal/spanner"
	"hyperprof/internal/stats"
	"hyperprof/internal/taxonomy"
)

// Run is a handle to a scheduled workload. Errors are collected rather than
// aborting the simulation.
type Run struct {
	// Completed counts operations that finished (successfully or not).
	Completed int
	// Errors holds every operation error encountered.
	Errors []error
	// Done fires when all clients have exited.
	Done *sim.Signal
}

func (r *Run) fail(op string, err error) {
	r.Errors = append(r.Errors, fmt.Errorf("%s: %w", op, err))
}

// Err returns the first error, or nil.
func (r *Run) Err() error {
	if len(r.Errors) > 0 {
		return r.Errors[0]
	}
	return nil
}

// SpannerMix is the Spanner operation mix. Weights need not sum to 1.
type SpannerMix struct {
	Reads, Writes, Queries float64
	StrongReadFrac         float64
}

// DefaultSpannerMix returns the calibrated default: read-dominated OLTP.
func DefaultSpannerMix() SpannerMix {
	return SpannerMix{Reads: 0.60, Writes: 0.28, Queries: 0.12, StrongReadFrac: 0.10}
}

// Spanner schedules a Spanner workload of total operations over the given
// client count. Call env.K.Run() afterwards to execute it. Optional opts
// shape the clients' think times; omitted, the legacy homogeneous Exp
// schedule is reproduced exactly.
func Spanner(env *platform.Env, db *spanner.DB, mix SpannerMix, clients, total int, opts ...ClosedLoopOpts) *Run {
	run := &Run{Done: sim.NewSignal(env.K)}
	remaining := total
	bar := sim.NewBarrier(env.K, clients)
	for c := 0; c < clients; c++ {
		rng := env.RNG.Fork()
		picker := stats.NewWeighted(rng, []float64{mix.Reads, mix.Writes, mix.Queries})
		think := closedLoopShape(opts).thinkShaper(rng)
		env.K.Go(fmt.Sprintf("spanner-client-%d", c), func(p *sim.Proc) {
			defer bar.Done()
			val := []byte("spanner-workload-value-0123456789abcdef")
			for remaining > 0 {
				remaining--
				g := rng.Intn(db.NumGroups())
				row := db.PickRow()
				tr := env.Tracer.Start(taxonomy.Spanner, p.Now())
				var err error
				switch picker.Next() {
				case 0:
					strong := rng.Bool(mix.StrongReadFrac)
					_, err = db.Read(p, tr, g, row, strong)
				case 1:
					err = db.Commit(p, tr, g, row, val)
				default:
					_, err = db.Query(p, tr, g, row)
				}
				env.Tracer.Finish(tr, p.Now())
				run.Completed++
				if err != nil {
					run.fail("spanner", err)
				}
				p.Sleep(think(p.Now(), float64(time.Millisecond)))
			}
		})
	}
	env.K.Go("spanner-shutdown", func(p *sim.Proc) {
		p.WaitBarrier(bar)
		db.Stop()
		run.Done.Fire()
	})
	return run
}

// BigTableMix is the BigTable operation mix.
type BigTableMix struct {
	Gets, Puts, Scans float64
}

// DefaultBigTableMix returns the calibrated default.
func DefaultBigTableMix() BigTableMix {
	return BigTableMix{Gets: 0.55, Puts: 0.35, Scans: 0.10}
}

// BigTable schedules a BigTable workload.
func BigTable(env *platform.Env, db *bigtable.DB, mix BigTableMix, clients, total int, opts ...ClosedLoopOpts) *Run {
	run := &Run{Done: sim.NewSignal(env.K)}
	remaining := total
	bar := sim.NewBarrier(env.K, clients)
	for c := 0; c < clients; c++ {
		rng := env.RNG.Fork()
		picker := stats.NewWeighted(rng, []float64{mix.Gets, mix.Puts, mix.Scans})
		think := closedLoopShape(opts).thinkShaper(rng)
		env.K.Go(fmt.Sprintf("bigtable-client-%d", c), func(p *sim.Proc) {
			defer bar.Done()
			val := []byte("bigtable-workload-value-0123456789abcdef")
			for remaining > 0 {
				remaining--
				t := rng.Intn(db.NumTablets())
				row := db.PickRow()
				tr := env.Tracer.Start(taxonomy.BigTable, p.Now())
				var err error
				switch picker.Next() {
				case 0:
					_, err = db.Get(p, tr, t, row)
				case 1:
					err = db.Put(p, tr, t, row, val)
				default:
					_, err = db.Scan(p, tr, t, row)
				}
				env.Tracer.Finish(tr, p.Now())
				run.Completed++
				if err != nil {
					run.fail("bigtable", err)
				}
				p.Sleep(think(p.Now(), float64(time.Millisecond)))
			}
		})
	}
	env.K.Go("bigtable-shutdown", func(p *sim.Proc) {
		p.WaitBarrier(bar)
		run.Done.Fire()
	})
	return run
}

// BigQueryMix is the BigQuery query mix.
type BigQueryMix struct {
	ScanAgg, Join, Report float64
}

// DefaultBigQueryMix returns the calibrated default: mostly large analytic
// scans, some joins, a tail of small dashboard queries.
func DefaultBigQueryMix() BigQueryMix {
	return BigQueryMix{ScanAgg: 0.50, Join: 0.35, Report: 0.15}
}

// BigQuery schedules a BigQuery workload.
func BigQuery(env *platform.Env, e *bigquery.Engine, mix BigQueryMix, clients, total int, opts ...ClosedLoopOpts) *Run {
	run := &Run{Done: sim.NewSignal(env.K)}
	remaining := total
	bar := sim.NewBarrier(env.K, clients)
	for c := 0; c < clients; c++ {
		rng := env.RNG.Fork()
		picker := stats.NewWeighted(rng, []float64{mix.ScanAgg, mix.Join, mix.Report})
		think := closedLoopShape(opts).thinkShaper(rng)
		env.K.Go(fmt.Sprintf("bigquery-client-%d", c), func(p *sim.Proc) {
			defer bar.Done()
			for remaining > 0 {
				remaining--
				q := bigquery.Query{Threshold: int64(rng.Intn(900))}
				switch picker.Next() {
				case 0:
					q.Kind = bigquery.ScanAgg
				case 1:
					q.Kind = bigquery.JoinQuery
				default:
					q.Kind = bigquery.Report
				}
				tr := env.Tracer.Start(taxonomy.BigQuery, p.Now())
				_, err := e.Run(p, tr, q)
				env.Tracer.Finish(tr, p.Now())
				run.Completed++
				if err != nil {
					run.fail("bigquery", err)
				}
				p.Sleep(think(p.Now(), float64(5*time.Millisecond)))
			}
		})
	}
	env.K.Go("bigquery-shutdown", func(p *sim.Proc) {
		p.WaitBarrier(bar)
		e.Stop()
		run.Done.Fire()
	})
	return run
}

// OpenLoopResult extends Run with latency observations.
type OpenLoopResult struct {
	*Run
	// Latencies collects per-operation end-to-end latencies (seconds): an
	// exact stats.Summary by default, or whatever Recorder the caller passed
	// via OpenLoopOpts (fleet-scale studies use a bounded-memory sketch).
	Latencies stats.Recorder
}

// openLoop is the shared Poisson arrival helper behind the per-platform
// open-loop drivers: operations arrive at ratePerSec regardless of
// completions — the arrival model behind latency SLOs (queueing grows with
// load instead of self-throttling as in the closed-loop drivers).
//
// setup receives the driver's forked RNG and returns the per-arrival prepare
// function; prepare is called on the arrival process after each gap sleep (so
// parameter draws interleave with gap draws in arrival order, keeping the
// schedule a pure function of the seed) and returns the operation to run in
// its own process. shutdown runs after the last operation completes.
//
// With opts.Shape enabled the arrival instants come from thinning an
// envelope Poisson process at the shape's peak rate (see ArrivalShape);
// with the zero shape the draw sequence is exactly one Exp gap per arrival,
// unchanged from the legacy driver.
func openLoop(env *platform.Env, name string, ratePerSec float64, total int, opts OpenLoopOpts,
	setup func(rng *stats.RNG) func() func(p *sim.Proc) error, shutdown func()) *OpenLoopResult {
	lat := opts.Latencies
	if lat == nil {
		lat = &stats.Summary{}
	}
	res := &OpenLoopResult{
		Run:       &Run{Done: sim.NewSignal(env.K)},
		Latencies: lat,
	}
	if ratePerSec <= 0 || total <= 0 {
		res.Run.fail(name, fmt.Errorf("invalid rate %v or total %d", ratePerSec, total))
		res.Done.Fire()
		return res
	}
	rng := env.RNG.Fork()
	prepare := setup(rng)
	bar := sim.NewBarrier(env.K, total)
	meanGap := float64(time.Second) / ratePerSec

	launch := func(p *sim.Proc) {
		op := prepare()
		env.K.Go(name+"-op", func(op2 *sim.Proc) {
			defer bar.Done()
			start := op2.Now()
			err := op(op2)
			res.Completed++
			if err != nil {
				res.fail(name, err)
			}
			res.Latencies.Add((op2.Now() - start).Seconds())
		})
	}
	env.K.Go(name+"-arrivals", func(p *sim.Proc) {
		if !opts.Shape.enabled() {
			for i := 0; i < total; i++ {
				p.Sleep(time.Duration(rng.Exp(meanGap)))
				launch(p)
			}
			return
		}
		sh := opts.Shape.withDefaults()
		maxMult := sh.maxMult()
		candGap := meanGap / maxMult
		var burst *burstEnv
		if sh.Burst {
			burst = newBurstEnv(rng, sh)
		}
		for accepted := 0; accepted < total; {
			p.Sleep(time.Duration(rng.Exp(candGap)))
			m := 1.0
			if burst != nil {
				m *= burst.mult(p.Now())
			}
			if sh.Diurnal {
				m *= sh.diurnalMult(p.Now())
			}
			if rng.Float64()*maxMult < m {
				accepted++
				launch(p)
			}
		}
	})
	env.K.Go(name+"-shutdown", func(p *sim.Proc) {
		p.WaitBarrier(bar)
		if shutdown != nil {
			shutdown()
		}
		res.Done.Fire()
	})
	return res
}

// SpannerOpenLoop schedules an open-loop Spanner workload (Poisson arrivals
// at ratePerSec).
func SpannerOpenLoop(env *platform.Env, db *spanner.DB, mix SpannerMix, ratePerSec float64, total int) *OpenLoopResult {
	return SpannerOpenLoopWithOpts(env, db, mix, ratePerSec, total, OpenLoopOpts{})
}

// SpannerOpenLoopWithOpts is SpannerOpenLoop with arrival shaping and
// recorder selection.
func SpannerOpenLoopWithOpts(env *platform.Env, db *spanner.DB, mix SpannerMix, ratePerSec float64, total int, opts OpenLoopOpts) *OpenLoopResult {
	return openLoop(env, "spanner-openloop", ratePerSec, total, opts,
		func(rng *stats.RNG) func() func(p *sim.Proc) error {
			picker := stats.NewWeighted(rng, []float64{mix.Reads, mix.Writes, mix.Queries})
			val := []byte("spanner-openloop-value-0123456789abcdef")
			return func() func(p *sim.Proc) error {
				g := rng.Intn(db.NumGroups())
				row := db.PickRow()
				op := picker.Next()
				strong := rng.Bool(mix.StrongReadFrac)
				return func(p *sim.Proc) error {
					tr := env.Tracer.Start(taxonomy.Spanner, p.Now())
					var err error
					switch op {
					case 0:
						_, err = db.Read(p, tr, g, row, strong)
					case 1:
						err = db.Commit(p, tr, g, row, val)
					default:
						_, err = db.Query(p, tr, g, row)
					}
					env.Tracer.Finish(tr, p.Now())
					return err
				}
			}
		},
		db.Stop)
}

// BigTableOpenLoop schedules an open-loop BigTable workload (Poisson
// arrivals at ratePerSec).
func BigTableOpenLoop(env *platform.Env, db *bigtable.DB, mix BigTableMix, ratePerSec float64, total int) *OpenLoopResult {
	return BigTableOpenLoopWithOpts(env, db, mix, ratePerSec, total, OpenLoopOpts{})
}

// BigTableOpenLoopWithOpts is BigTableOpenLoop with arrival shaping and
// recorder selection.
func BigTableOpenLoopWithOpts(env *platform.Env, db *bigtable.DB, mix BigTableMix, ratePerSec float64, total int, opts OpenLoopOpts) *OpenLoopResult {
	return openLoop(env, "bigtable-openloop", ratePerSec, total, opts,
		func(rng *stats.RNG) func() func(p *sim.Proc) error {
			picker := stats.NewWeighted(rng, []float64{mix.Gets, mix.Puts, mix.Scans})
			val := []byte("bigtable-openloop-value-0123456789abcdef")
			return func() func(p *sim.Proc) error {
				tb := rng.Intn(db.NumTablets())
				row := db.PickRow()
				op := picker.Next()
				return func(p *sim.Proc) error {
					tr := env.Tracer.Start(taxonomy.BigTable, p.Now())
					var err error
					switch op {
					case 0:
						_, err = db.Get(p, tr, tb, row)
					case 1:
						err = db.Put(p, tr, tb, row, val)
					default:
						_, err = db.Scan(p, tr, tb, row)
					}
					env.Tracer.Finish(tr, p.Now())
					return err
				}
			}
		},
		nil)
}

// BigQueryOpenLoop schedules an open-loop BigQuery workload (Poisson
// arrivals at ratePerSec), completing the open-loop driver set across all
// three platforms.
func BigQueryOpenLoop(env *platform.Env, e *bigquery.Engine, mix BigQueryMix, ratePerSec float64, total int) *OpenLoopResult {
	return BigQueryOpenLoopWithOpts(env, e, mix, ratePerSec, total, OpenLoopOpts{})
}

// BigQueryOpenLoopWithOpts is BigQueryOpenLoop with arrival shaping and
// recorder selection.
func BigQueryOpenLoopWithOpts(env *platform.Env, e *bigquery.Engine, mix BigQueryMix, ratePerSec float64, total int, opts OpenLoopOpts) *OpenLoopResult {
	return openLoop(env, "bigquery-openloop", ratePerSec, total, opts,
		func(rng *stats.RNG) func() func(p *sim.Proc) error {
			picker := stats.NewWeighted(rng, []float64{mix.ScanAgg, mix.Join, mix.Report})
			return func() func(p *sim.Proc) error {
				q := bigquery.Query{Threshold: int64(rng.Intn(900))}
				switch picker.Next() {
				case 0:
					q.Kind = bigquery.ScanAgg
				case 1:
					q.Kind = bigquery.JoinQuery
				default:
					q.Kind = bigquery.Report
				}
				return func(p *sim.Proc) error {
					tr := env.Tracer.Start(taxonomy.BigQuery, p.Now())
					_, err := e.Run(p, tr, q)
					env.Tracer.Finish(tr, p.Now())
					return err
				}
			}
		},
		e.Stop)
}
