package taxonomy

import "testing"

func TestBroadOfCoversAllCategories(t *testing.T) {
	all := [][]Category{DatacenterTaxes(), SystemTaxes(), DatabaseCoreCompute(), BigQueryCoreCompute()}
	want := []Broad{DatacenterTax, SystemTax, CoreCompute, CoreCompute}
	for i, list := range all {
		for _, c := range list {
			if !Known(c) {
				t.Errorf("category %q not known", c)
			}
			if BroadOf(c) != want[i] {
				t.Errorf("BroadOf(%q) = %v, want %v", c, BroadOf(c), want[i])
			}
		}
	}
}

func TestBroadOfUnknownDefaultsToCoreCompute(t *testing.T) {
	if BroadOf(Category("nonsense")) != CoreCompute {
		t.Fatal("unknown category should default to core compute")
	}
	if Known(Category("nonsense")) {
		t.Fatal("nonsense should not be known")
	}
}

func TestDescriptionsComplete(t *testing.T) {
	for _, list := range [][]Category{DatacenterTaxes(), SystemTaxes(), DatabaseCoreCompute(), BigQueryCoreCompute()} {
		for _, c := range list {
			if Descriptions[c] == "" {
				t.Errorf("missing description for %q", c)
			}
		}
	}
}

func TestTableSizesMatchPaper(t *testing.T) {
	if n := len(DatacenterTaxes()); n != 6 {
		t.Errorf("Table 2 has %d categories, want 6", n)
	}
	if n := len(SystemTaxes()); n != 8 {
		t.Errorf("Table 3 has %d categories, want 8", n)
	}
	if n := len(DatabaseCoreCompute()); n != 7 {
		t.Errorf("Table 4 has %d categories, want 7", n)
	}
	// Table 5 proper has 8; Figure 4 adds Misc. and Uncategorized tails.
	if n := len(BigQueryCoreCompute()); n != 10 {
		t.Errorf("BigQuery core list has %d categories, want 10", n)
	}
}

func TestCoreComputeFor(t *testing.T) {
	if got := CoreComputeFor(Spanner); got[0] != Read {
		t.Errorf("Spanner core compute starts with %q", got[0])
	}
	if got := CoreComputeFor(BigQuery); got[0] != Aggregate {
		t.Errorf("BigQuery core compute starts with %q", got[0])
	}
}

func TestBroadString(t *testing.T) {
	cases := map[Broad]string{CoreCompute: "Core Compute", DatacenterTax: "Datacenter Taxes", SystemTax: "System Taxes", Broad(99): "Unknown"}
	for b, want := range cases {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), want)
		}
	}
}

func TestClassifierFleetRules(t *testing.T) {
	c := NewClassifier()
	cases := map[string]Category{
		"tcmalloc.allocate":        MemAllocation,
		"memcpy_avx2":              DataMovement,
		"snappy.RawCompress":       Compression,
		"proto.WireFormat.Encode":  Protobuf,
		"stubby.ServerCall":        RPC,
		"sha.SHA3_256":             Cryptography,
		"crc32c.Extend":            EDAC,
		"colossus.ReadChunk":       FileSystems,
		"futex_wait":               Multithreading,
		"tcp.SendMsg":              Networking,
		"syscall.read":             OperatingSystems,
		"std.sort":                 STL,
		"memset_erms":              OtherMemoryOps,
		"totally.unknown.function": Uncategorized,
	}
	for fn, want := range cases {
		if got := c.Classify(fn); got != want {
			t.Errorf("Classify(%q) = %q, want %q", fn, got, want)
		}
	}
}

func TestClassifierLongestPrefixWins(t *testing.T) {
	c := NewClassifier()
	c.Register("spanner.", MiscCore)
	c.Register("spanner.read.", Read)
	if got := c.Classify("spanner.read.RowLookup"); got != Read {
		t.Fatalf("got %q, want Read", got)
	}
	if got := c.Classify("spanner.other"); got != MiscCore {
		t.Fatalf("got %q, want MiscCore", got)
	}
}

func TestClassifierRegisterAfterClassify(t *testing.T) {
	c := NewClassifier()
	if got := c.Classify("myplatform.scan"); got != Uncategorized {
		t.Fatalf("got %q before registration", got)
	}
	c.Register("myplatform.", Filter)
	if got := c.Classify("myplatform.scan"); got != Filter {
		t.Fatalf("got %q after registration, want Filter", got)
	}
}

func TestPlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 3 || ps[0] != Spanner || ps[1] != BigTable || ps[2] != BigQuery {
		t.Fatalf("Platforms() = %v", ps)
	}
}
