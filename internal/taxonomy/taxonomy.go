// Package taxonomy defines the profiling vocabulary of the paper: the three
// broad cycle classes (core compute, datacenter tax, system tax), the
// fine-grained categories of Tables 2–5, and a leaf-function classifier used
// by the fleet profiler to bucket samples, mirroring the manual
// categorization of GWP samples described in §5.1.
package taxonomy

import (
	"sort"
	"strings"
)

// Platform identifies one of the three profiled big-data processing systems.
type Platform string

// The three platforms characterized by the paper (§2.2).
const (
	Spanner  Platform = "Spanner"
	BigTable Platform = "BigTable"
	BigQuery Platform = "BigQuery"
)

// Platforms lists all platforms in presentation order.
func Platforms() []Platform { return []Platform{Spanner, BigTable, BigQuery} }

// Broad is one of the three top-level cycle classes of Figure 3.
type Broad int

const (
	// CoreCompute is the platform's essential business logic (§5.2).
	CoreCompute Broad = iota
	// DatacenterTax covers the hyperscale-common functions of Table 2.
	DatacenterTax
	// SystemTax covers the shared overheads of Table 3.
	SystemTax
)

// String implements fmt.Stringer.
func (b Broad) String() string {
	switch b {
	case CoreCompute:
		return "Core Compute"
	case DatacenterTax:
		return "Datacenter Taxes"
	case SystemTax:
		return "System Taxes"
	}
	return "Unknown"
}

// Broads lists the broad classes in presentation order.
func Broads() []Broad { return []Broad{CoreCompute, DatacenterTax, SystemTax} }

// Category is a fine-grained cycle category from Tables 2–5.
type Category string

// Datacenter tax categories (Table 2).
const (
	Compression   Category = "Compression"
	Cryptography  Category = "Cryptography"
	DataMovement  Category = "Data Movement"
	MemAllocation Category = "Mem. Allocation"
	Protobuf      Category = "Protobuf"
	RPC           Category = "RPC"
)

// System tax categories (Table 3).
const (
	EDAC             Category = "EDAC"
	FileSystems      Category = "File Systems"
	OtherMemoryOps   Category = "Other Memory Ops."
	Multithreading   Category = "Multithreading"
	Networking       Category = "Networking"
	OperatingSystems Category = "Operating Systems"
	STL              Category = "STL"
	MiscSystem       Category = "Misc. System Taxes"
)

// Database core-compute categories (Table 4, Spanner and BigTable).
const (
	Read          Category = "Read"
	Write         Category = "Write"
	Compaction    Category = "Compaction"
	Consensus     Category = "Consensus"
	Query         Category = "Query"
	MiscCore      Category = "Misc."
	Uncategorized Category = "Uncategorized"
)

// BigQuery core-compute categories (Table 5).
const (
	Aggregate   Category = "Aggregate"
	Compute     Category = "Compute"
	Destructure Category = "Destructure"
	Filter      Category = "Filter"
	Join        Category = "Join"
	Materialize Category = "Materialize"
	Project     Category = "Project"
	Sort        Category = "Sort"
)

// Descriptions carries the category descriptions of Tables 2–5 verbatim.
var Descriptions = map[Category]string{
	Compression:   "(De)compression ops.",
	Cryptography:  "Hashing, security tools/infra., etc.",
	DataMovement:  "mem{cpy,move}, copy_user ops.",
	MemAllocation: "Mem. reservation ops. (malloc, etc.)",
	Protobuf:      "(De)serialization setup and ops.",
	RPC:           "Remote procedure calls",

	EDAC:             "Error handling (checksums, etc.)",
	FileSystems:      "IO backend client compute",
	OtherMemoryOps:   "Non-data-movement mem. ops.",
	Multithreading:   "Thread management overheads",
	Networking:       "Packet, web, server processing",
	OperatingSystems: "Kernel, syscalls, time ops.",
	STL:              "Standard fleet-wide libraries",
	MiscSystem:       "Uncategorized ops.",

	Read:          "Read operations",
	Write:         "Write/commit operations",
	Compaction:    "Revision control/cleanup",
	Consensus:     "Replication and consensus protocols",
	Query:         "SQL-like compute",
	MiscCore:      "Long-tail of labeled misc. compute",
	Uncategorized: "Unlabeled compute",

	Aggregate:   "Compute/data-mov. for hash/sort aggs.",
	Compute:     "Col.-wise ops on pre-grouped aggs.",
	Destructure: "Structured element field access",
	Filter:      "Scan/selection of rows",
	Join:        "Compute/data-mov. of hash/sort joins",
	Materialize: "Construction of in-memory tables",
	Project:     "Retrieval of individual table columns",
	Sort:        "Non agg./join sort operations",
}

// DatacenterTaxes lists the Table 2 categories in presentation order.
func DatacenterTaxes() []Category {
	return []Category{Compression, Cryptography, DataMovement, MemAllocation, Protobuf, RPC}
}

// SystemTaxes lists the Table 3 categories in presentation order.
func SystemTaxes() []Category {
	return []Category{EDAC, FileSystems, OtherMemoryOps, Multithreading, Networking, OperatingSystems, STL, MiscSystem}
}

// DatabaseCoreCompute lists the Table 4 categories in presentation order.
func DatabaseCoreCompute() []Category {
	return []Category{Read, Write, Compaction, Consensus, Query, MiscCore, Uncategorized}
}

// BigQueryCoreCompute lists the Table 5 categories (plus the misc/uncategorized
// tails shown in Figure 4) in presentation order.
func BigQueryCoreCompute() []Category {
	return []Category{Aggregate, Compute, Destructure, Filter, Join, Materialize, Project, Sort, MiscCore, Uncategorized}
}

// CoreComputeFor returns the core-compute category list for a platform.
func CoreComputeFor(p Platform) []Category {
	if p == BigQuery {
		return BigQueryCoreCompute()
	}
	return DatabaseCoreCompute()
}

var broadOf = map[Category]Broad{}

func init() {
	for _, c := range DatacenterTaxes() {
		broadOf[c] = DatacenterTax
	}
	for _, c := range SystemTaxes() {
		broadOf[c] = SystemTax
	}
	for _, c := range DatabaseCoreCompute() {
		broadOf[c] = CoreCompute
	}
	for _, c := range BigQueryCoreCompute() {
		broadOf[c] = CoreCompute
	}
}

// BroadOf returns the broad class a category belongs to. Unknown categories
// are treated as core compute's Uncategorized bucket.
func BroadOf(c Category) Broad {
	if b, ok := broadOf[c]; ok {
		return b
	}
	return CoreCompute
}

// Known reports whether c is one of the paper's categories.
func Known(c Category) bool {
	_, ok := broadOf[c]
	return ok
}

// Classifier maps leaf function names (as they appear in profile samples) to
// categories by longest-prefix match, mirroring the manual categorization of
// §5.1. A '*' registered as the final byte of a prefix matches any suffix;
// exact names are just prefixes that happen to match fully.
type Classifier struct {
	rules map[string]Category
	// sorted prefixes, longest first, rebuilt lazily
	prefixes []string
	dirty    bool
}

// NewClassifier returns a classifier preloaded with the fleet-wide rules
// shared by all platforms (allocator, runtime, kernel, RPC stack and friends).
func NewClassifier() *Classifier {
	c := &Classifier{rules: map[string]Category{}, dirty: true}
	for prefix, cat := range fleetRules {
		c.rules[prefix] = cat
	}
	return c
}

// fleetRules classify the shared infrastructure functions every platform
// binary links in.
var fleetRules = map[string]Category{
	"tcmalloc.":    MemAllocation,
	"malloc":       MemAllocation,
	"operator.new": MemAllocation,
	"memcpy":       DataMovement,
	"memmove":      DataMovement,
	"copy_user":    DataMovement,
	"snappy.":      Compression,
	"zlib.":        Compression,
	"zstd.":        Compression,
	"brotli.":      Compression,
	"proto.":       Protobuf,
	"protobuf.":    Protobuf,
	"stubby.":      RPC,
	"rpc.":         RPC,
	"grpc.":        RPC,
	"crypto.":      Cryptography,
	"sha.":         Cryptography,
	"aes.":         Cryptography,
	"tls.":         Cryptography,
	"crc32c.":      EDAC,
	"checksum.":    EDAC,
	"ecc.":         EDAC,
	"fsclient.":    FileSystems,
	"colossus.":    FileSystems,
	"dfs.":         FileSystems,
	"thread.":      Multithreading,
	"pthread":      Multithreading,
	"futex":        Multithreading,
	"sched.":       Multithreading,
	"net.":         Networking,
	"tcp.":         Networking,
	"packet.":      Networking,
	"kernel.":      OperatingSystems,
	"syscall.":     OperatingSystems,
	"vdso.":        OperatingSystems,
	"time.":        OperatingSystems,
	"page_fault":   OperatingSystems,
	"std.":         STL,
	"absl.":        STL,
	"string.":      STL,
	"hashmap.":     STL,
	"sys.misc.":    MiscSystem,
	"mem.other.":   OtherMemoryOps,
	"memset":       OtherMemoryOps,
	"memcmp":       OtherMemoryOps,
}

// Register adds a classification rule: any function whose name begins with
// prefix maps to cat. Longer prefixes win over shorter ones.
func (c *Classifier) Register(prefix string, cat Category) {
	c.rules[prefix] = cat
	c.dirty = true
}

// Classify returns the category for a leaf function name, or Uncategorized
// when no rule matches.
func (c *Classifier) Classify(fn string) Category {
	if c.dirty {
		c.prefixes = c.prefixes[:0]
		for p := range c.rules {
			c.prefixes = append(c.prefixes, p)
		}
		sort.Slice(c.prefixes, func(i, j int) bool {
			if len(c.prefixes[i]) != len(c.prefixes[j]) {
				return len(c.prefixes[i]) > len(c.prefixes[j])
			}
			return c.prefixes[i] < c.prefixes[j]
		})
		c.dirty = false
	}
	for _, p := range c.prefixes {
		if strings.HasPrefix(fn, p) {
			return c.rules[p]
		}
	}
	return Uncategorized
}
